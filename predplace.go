// Package predplace is a self-contained object-relational query engine built
// to reproduce "Practical Predicate Placement" (Hellerstein, SIGMOD 1994).
//
// It bundles a paged storage engine with B-tree indexes, a Volcano executor
// with predicate caching, a SQL front-end for conjunctive queries with
// expensive user-defined predicates and correlated IN-subqueries, and a
// System R-style optimizer offering the paper's placement algorithms:
// PushDown+, PullUp, PullRank, Predicate Migration, LDL, and an Exhaustive
// oracle.
//
// Quick start:
//
//	db, _ := predplace.Open(predplace.Config{Scale: 0.05})
//	res, _ := db.Query("SELECT * FROM t3, t10 WHERE t3.ua1 = t10.ua1 AND costly100(t10.u20)",
//		predplace.Migration)
//	fmt.Println(res.Plan)
//	fmt.Println(res.Stats)
package predplace

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"predplace/internal/btree"
	"predplace/internal/catalog"
	"predplace/internal/datagen"
	"predplace/internal/exec"
	"predplace/internal/expr"
	"predplace/internal/optimizer"
	"predplace/internal/pcache"
	"predplace/internal/plan"
	"predplace/internal/query"
	"predplace/internal/sqlparse"
	"predplace/internal/storage"
)

// Algorithm selects the predicate-placement scheme.
type Algorithm = optimizer.Algorithm

// The available placement algorithms (see Table 1 of the paper).
const (
	NaivePushDown = optimizer.NaivePushDown
	PushDown      = optimizer.PushDown
	PullUp        = optimizer.PullUp
	PullRank      = optimizer.PullRank
	Migration     = optimizer.Migration
	LDL           = optimizer.LDL
	LDLIKKBZ      = optimizer.LDLIKKBZ
	Exhaustive    = optimizer.Exhaustive
	// ExhaustiveBushy extends the oracle to bushy join trees.
	ExhaustiveBushy = optimizer.ExhaustiveBushy
	// Robust picks the plan minimizing worst-case cost over an estimate-error
	// interval [sel/e, sel·e] (see Config.RobustE) instead of the point
	// estimate.
	Robust = optimizer.Robust
)

// Algorithms lists every implemented placement algorithm.
func Algorithms() []Algorithm { return optimizer.Algorithms() }

// Config controls database creation.
type Config struct {
	// Scale multiplies the benchmark database's cardinalities
	// (1.0 reproduces the paper's ~110 MB database; 0 skips loading the
	// benchmark tables entirely, for user-defined schemas).
	Scale float64
	// Tables selects which benchmark relations tN to load (nil = t1…t10).
	Tables []int
	// PoolPages sets the buffer pool size in 8 KiB pages (0 = derived).
	PoolPages int
	// Caching enables predicate caching (§5.1).
	Caching bool
	// PerFunctionCache switches from Montage's per-predicate caching to the
	// per-function alternative of [Jhi88]/[HS93a]: predicates calling the
	// same function share cache entries.
	PerFunctionCache bool
	// CacheMaxEntries bounds each predicate's cache table (0 = unbounded);
	// when full an arbitrary entry is evicted (§5.1 notes caches "can be
	// limited in size, using any of a variety of replacement schemes").
	CacheMaxEntries int
	// Budget aborts queries whose charged cost exceeds it (0 = unlimited) —
	// used to reproduce the paper's did-not-finish result for Query 5.
	Budget float64
	// Parallelism sets the intra-query worker fan-out: heap scans are
	// range-partitioned across workers, expensive filters evaluate on a
	// worker pool, and hash joins build/probe partitioned tables in
	// parallel. 0 or 1 keeps the classic serial executor (the default —
	// every figure reproduction runs serially); < 0 uses GOMAXPROCS.
	// Charged cost with caching off is identical at any setting.
	Parallelism int
	// BatchSize sets the rows-per-batch width of the executor's vectorized
	// NextBatch fast path. 0 uses the tuned default (exec.DefaultBatchSize);
	// 1 disables batching entirely, running the exact legacy tuple-at-a-time
	// loops; > 1 sets the batch width. Results, row order, and charged cost
	// are identical at every setting — batching only amortizes per-row
	// interface calls, lock acquisitions, and allocations.
	BatchSize int
	// Timeout bounds each query's wall-clock execution time (0 = none).
	// A timed-out query unwinds through the executor's ordinary error path
	// and returns an error satisfying errors.Is(err, context.DeadlineExceeded).
	Timeout time.Duration
	// Profile enables per-operator runtime profiling for every query:
	// Result.Profile carries an OpProfile tree pairing the optimizer's
	// per-node estimates with actual rows, wall time, attributed I/O, and
	// predicate/cache counters. Profiling is observational — results, row
	// order, and charged cost are byte-identical with it on or off (wall
	// time is never charged). Off by default; EXPLAIN ANALYZE profiles its
	// one statement regardless of this setting.
	Profile bool
	// Transfer enables predicate transfer: before execution, a serial
	// prepass scans the joined tables smallest-first, building a Bloom
	// filter per join-key equivalence class from each table's survivors
	// (cheap local predicates always applied; cacheable expensive ones when
	// caching is on) and probing the filters built so far, forward then
	// backward across the join graph. Main scans then probe the received
	// filters before decoding, pruning rows that cannot join. Results are
	// identical with it on or off; filter builds and probes are charged into
	// the cost (never free), and the optimizer plans under transfer-adjusted
	// cardinalities. Off by default — every figure reproduction runs without
	// it.
	Transfer bool
	// TopK enables top-k-aware execution: a query with ORDER BY and LIMIT
	// plans a bounded-heap TopK root (n·log k comparisons, only k rows flow
	// upstream) — or, when an ascending index scan on a unique ORDER BY key
	// already delivers the order, an early-terminating Limit that stops
	// pulling after k rows, so the pages and predicate invocations the limit
	// cuts off are never paid. Results are identical with it on or off
	// (equal-key ties break on the full projected row either way); charged
	// cost can only shrink. Off by default — byte-identical planning and
	// execution, with ORDER BY/LIMIT applied in the facade as before.
	TopK bool
	// PlanCacheSize bounds the shared LRU plan cache (0 = the
	// DefaultPlanCacheSize of 64 entries; negative disables plan caching).
	// Cached plans are keyed on normalized SQL, algorithm, the
	// planning-affecting knobs, and the catalog version, so a hit is always
	// the plan that planning would have produced.
	PlanCacheSize int
	// Feedback enables feedback-driven statistics: every query runs with the
	// per-operator profile on, observed per-predicate/per-join selectivities
	// and measured real-work function costs are harvested into the catalog's
	// feedback store at query end, and when any observation's error factor
	// exceeds FeedbackThreshold the batch is promoted — future planning uses
	// the observed selectivities ahead of histogram/default guesses,
	// registered functions' metadata is refreshed from the measured actuals,
	// and the catalog version bump re-optimizes every cached plan. Results,
	// row order, and charged cost of any single query are identical with it
	// on or off (harvesting is observational); only subsequent plans change.
	// Off by default — planning and execution are byte-identical to a
	// feedback-less build.
	Feedback bool
	// FeedbackThreshold is the ×err estimation-error factor above which
	// harvested observations are promoted into planning statistics
	// (0 = DefaultFeedbackThreshold). Always compared against finite,
	// capped error factors — a zero estimate against a nonzero actual
	// reports the cap, never ±Inf.
	FeedbackThreshold float64
	// RobustE is the Robust algorithm's estimate-error interval half-width e:
	// candidate plans are scored over selectivities [sel/e, sel·e] and
	// expensive predicate costs [cost/e, cost·e], and the plan with the best
	// worst case wins (0 = DefaultRobustE). Planning-affecting: part of the
	// plan-cache key.
	RobustE float64
}

// knobs is the per-query execution configuration. Every statement entry
// point (QueryContext, Prepare, PreparedStatement.Exec, Exec) copies the
// DB's current knobs once, under the DB mutex, and runs entirely from the
// copy — a concurrent Set* on the handle can never tear a running query's
// configuration, and one query observes one consistent setting of every
// knob from plan to finish.
type knobs struct {
	caching     bool
	cacheScope  pcache.Scope
	cacheMax    int
	budget      float64
	parallelism int
	batchSize   int
	timeout     time.Duration
	profile     bool
	transfer    bool
	topk        bool
	feedback    bool
	fbThreshold float64
	robustE     float64
}

// DB is an open database handle, safe for concurrent use: any number of
// goroutines may run queries at once. Each query executes in its own
// exec.Env — private I/O accounting, UDF invocation counters, and
// predicate-cache scope — so concurrent queries' results and charged costs
// are identical to running each alone. Knob setters (SetCaching, SetBudget,
// …) apply to statements that begin after the call.
type DB struct {
	inner *datagen.DB
	// mu guards k; see knobs.
	mu sync.Mutex
	k  knobs
	// validate is the PPLINT_VALIDATE environment knob, read once at Open
	// so the per-statement hot path never consults the process environment.
	validate bool
	subSeq   atomic.Int64
	// plans is the shared LRU plan cache (nil = disabled).
	plans *planCache
}

// Open creates a database. With Scale > 0 the paper's benchmark schema is
// generated and the costlyN function family registered.
func Open(cfg Config) (*DB, error) {
	workers := resolveParallelism(cfg.Parallelism)
	var inner *datagen.DB
	var err error
	if cfg.Scale > 0 {
		inner, err = datagen.Build(datagen.Config{
			Scale:      cfg.Scale,
			Tables:     cfg.Tables,
			PoolPages:  cfg.PoolPages,
			PoolShards: poolShards(workers),
		})
	} else {
		pool := cfg.PoolPages
		if pool == 0 {
			pool = 256
		}
		acct := &storage.Accountant{}
		disk := storage.NewDisk(acct)
		inner = &datagen.DB{
			Disk: disk,
			Pool: storage.NewShardedBufferPool(disk, pool, poolShards(workers)),
			Cat:  catalog.New(),
		}
		err = datagen.RegisterStandardFuncs(inner.Cat)
	}
	if err != nil {
		return nil, err
	}
	planEntries := cfg.PlanCacheSize
	if planEntries == 0 {
		planEntries = DefaultPlanCacheSize
	}
	return &DB{
		inner: inner,
		k: knobs{
			caching: cfg.Caching, cacheScope: pcacheScope(cfg),
			cacheMax: cfg.CacheMaxEntries, budget: cfg.Budget,
			parallelism: workers, batchSize: cfg.BatchSize,
			timeout: cfg.Timeout, profile: cfg.Profile,
			transfer: cfg.Transfer, topk: cfg.TopK,
			feedback:    cfg.Feedback,
			fbThreshold: resolveThreshold(cfg.FeedbackThreshold),
			robustE:     resolveRobustE(cfg.RobustE),
		},
		validate: os.Getenv("PPLINT_VALIDATE") == "1",
		plans:    newPlanCache(planEntries),
	}, nil
}

// snapshot copies the current knobs under the DB mutex; the statement runs
// from the copy.
func (d *DB) snapshot() knobs {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.k
}

// resolveParallelism normalizes a Config.Parallelism value: negative means
// "use every processor".
func resolveParallelism(p int) int {
	if p < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if p == 0 {
		return 1
	}
	return p
}

// poolShards picks the buffer-pool stripe count for a worker fan-out: one
// shard per worker, capped at 16, and exactly 1 for serial databases so the
// classic single-LRU replacement behavior (and therefore every figure
// reproduction) is untouched.
func poolShards(workers int) int {
	if workers <= 1 {
		return 1
	}
	if workers > 16 {
		return 16
	}
	return workers
}

// pcacheScope maps the config to a predicate-cache scope.
func pcacheScope(cfg Config) pcache.Scope {
	if cfg.PerFunctionCache {
		return pcache.ByFunction
	}
	return pcache.ByPredicate
}

// Catalog exposes the underlying catalog (tables, statistics, functions).
func (d *DB) Catalog() *catalog.Catalog { return d.inner.Cat }

// SetCaching toggles predicate caching for subsequent queries.
func (d *DB) SetCaching(on bool) {
	d.mu.Lock()
	d.k.caching = on
	d.mu.Unlock()
}

// SetBudget changes the charged-cost abort threshold (0 = unlimited).
func (d *DB) SetBudget(b float64) {
	d.mu.Lock()
	d.k.budget = b
	d.mu.Unlock()
}

// SetCacheLimit bounds each predicate's cache table for subsequent queries
// (0 = unbounded).
func (d *DB) SetCacheLimit(n int) {
	d.mu.Lock()
	d.k.cacheMax = n
	d.mu.Unlock()
}

// SetParallelism changes the intra-query worker fan-out for subsequent
// queries (1 = serial; < 0 = GOMAXPROCS). The buffer pool keeps the shard
// layout it was opened with, so toggling parallelism on one handle compares
// executors over identical storage.
func (d *DB) SetParallelism(p int) {
	w := resolveParallelism(p)
	d.mu.Lock()
	d.k.parallelism = w
	d.mu.Unlock()
}

// Parallelism reports the current worker fan-out.
func (d *DB) Parallelism() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.k.parallelism
}

// DefaultBatchSize is the batch width used when Config.BatchSize is 0.
const DefaultBatchSize = exec.DefaultBatchSize

// SetBatchSize changes the executor's batch width for subsequent queries
// (0 = tuned default, 1 = legacy tuple-at-a-time, > 1 = that many rows per
// batch). Results and charged cost are identical at every setting.
func (d *DB) SetBatchSize(n int) {
	d.mu.Lock()
	d.k.batchSize = n
	d.mu.Unlock()
}

// BatchSize reports the configured batch width (0 = tuned default).
func (d *DB) BatchSize() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.k.batchSize
}

// SetTimeout bounds each subsequent query's wall-clock time (0 = none).
func (d *DB) SetTimeout(t time.Duration) {
	d.mu.Lock()
	d.k.timeout = t
	d.mu.Unlock()
}

// SetProfile toggles per-operator runtime profiling for subsequent queries
// (see Config.Profile). Profiling never changes results or charged cost.
func (d *DB) SetProfile(on bool) {
	d.mu.Lock()
	d.k.profile = on
	d.mu.Unlock()
}

// Profiling reports whether per-operator profiling is currently enabled.
func (d *DB) Profiling() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.k.profile
}

// SetTransfer toggles predicate transfer for subsequent queries (see
// Config.Transfer). Transfer never changes results — only which rows reach
// the join operators and what the query charges for getting them there.
func (d *DB) SetTransfer(on bool) {
	d.mu.Lock()
	d.k.transfer = on
	d.mu.Unlock()
}

// Transfer reports whether predicate transfer is currently enabled.
func (d *DB) Transfer() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.k.transfer
}

// SetTopK toggles top-k-aware execution for subsequent queries (see
// Config.TopK). Top-k planning never changes results — only how much of the
// pre-LIMIT input is materialized, sorted, and paid for.
func (d *DB) SetTopK(on bool) {
	d.mu.Lock()
	d.k.topk = on
	d.mu.Unlock()
}

// TopK reports whether top-k-aware execution is currently enabled.
func (d *DB) TopK() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.k.topk
}

// DefaultFeedbackThreshold is the ×err factor above which harvested
// feedback observations are promoted when Config.FeedbackThreshold is 0:
// an estimate off by more than 2× either way triggers re-optimization.
const DefaultFeedbackThreshold = 2.0

// DefaultRobustE is the Robust algorithm's error-interval half-width when
// Config.RobustE is 0.
const DefaultRobustE = optimizer.DefaultRobustE

// resolveThreshold normalizes a Config.FeedbackThreshold value.
func resolveThreshold(t float64) float64 {
	if t <= 0 {
		return DefaultFeedbackThreshold
	}
	return t
}

// resolveRobustE normalizes a Config.RobustE value.
func resolveRobustE(e float64) float64 {
	if e <= 1 {
		return DefaultRobustE
	}
	return e
}

// SetFeedback toggles feedback-driven statistics for subsequent queries
// (see Config.Feedback). Each query's own results and charged cost are
// unaffected; the plans of later queries are what change.
func (d *DB) SetFeedback(on bool) {
	d.mu.Lock()
	d.k.feedback = on
	d.mu.Unlock()
}

// Feedback reports whether feedback-driven statistics are currently enabled.
func (d *DB) Feedback() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.k.feedback
}

// SetFeedbackThreshold changes the promotion threshold for subsequent
// queries (≤ 0 = DefaultFeedbackThreshold); see Config.FeedbackThreshold.
func (d *DB) SetFeedbackThreshold(t float64) {
	d.mu.Lock()
	d.k.fbThreshold = resolveThreshold(t)
	d.mu.Unlock()
}

// SetRobustE changes the Robust algorithm's error-interval half-width for
// subsequent queries (≤ 1 = DefaultRobustE); see Config.RobustE.
func (d *DB) SetRobustE(e float64) {
	d.mu.Lock()
	d.k.robustE = resolveRobustE(e)
	d.mu.Unlock()
}

// FeedbackStats snapshots the catalog feedback store's counters: harvested
// observations, pending and applied entries, promotions, and the largest
// pending error factor (always finite).
func (d *DB) FeedbackStats() catalog.FeedbackStats {
	return d.inner.Cat.Feedback().Stats()
}

// FaultConfig configures the deterministic storage fault injector; see
// SetFaults.
type FaultConfig = storage.FaultConfig

// ErrInjectedFault is the sentinel every injected storage fault wraps;
// match it with errors.Is.
var ErrInjectedFault = storage.ErrInjectedFault

// ErrCanceled is the sentinel the executor wraps around a context
// cancellation or deadline; the context cause (context.Canceled or
// context.DeadlineExceeded) is also reachable through errors.Is.
var ErrCanceled = exec.ErrCanceled

// SetFaults installs a deterministic fault injector beneath the buffer pool
// for subsequent queries: page reads and writes fail according to cfg
// (the Nth I/O, a seeded probability per I/O, or both). Injected failures
// surface as errors wrapping ErrInjectedFault; a failed I/O is never charged
// to the cost accountant. Passing nil removes the injector.
func (d *DB) SetFaults(cfg *FaultConfig) {
	if cfg == nil {
		d.inner.Disk.SetFaults(nil)
		return
	}
	d.inner.Disk.SetFaults(storage.NewFaultInjector(*cfg))
}

// FaultCounts reports the installed injector's counters — page reads and
// writes observed, and faults injected — all zero when no injector is set.
func (d *DB) FaultCounts() (reads, writes, injected int64) {
	if fi := d.inner.Disk.Faults(); fi != nil {
		return fi.Counts()
	}
	return 0, 0, 0
}

// PinnedFrames reports how many buffer-pool frames are currently pinned.
// Between queries it must be zero — any other value is a page leak; the
// test harness asserts this after every query, including aborted ones.
func (d *DB) PinnedFrames() int { return d.inner.Pool.PinnedFrames() }

// EvictPool drops every unpinned page from the buffer pool, returning it
// to a cold state. Benchmarks call it before a measured run so the run's
// physical I/O — and therefore its charged cost — never depends on what
// the previous query happened to leave cached.
func (d *DB) EvictPool() error { return d.inner.Pool.EvictUnpinned() }

// ColumnSpec declares a column of a user-created table.
type ColumnSpec struct {
	// Name of the column.
	Name string
	// String marks a string column of width Len; otherwise the column is a
	// 64-bit integer.
	String bool
	// Len is the fixed width of string columns.
	Len int
	// Indexed builds a B-tree over the column (integers only).
	Indexed bool
}

// CreateTable creates an empty user table.
func (d *DB) CreateTable(name string, cols []ColumnSpec) error {
	ccols := make([]catalog.Column, len(cols))
	for i, c := range cols {
		if c.String {
			if c.Len <= 0 {
				return fmt.Errorf("predplace: string column %s needs Len", c.Name)
			}
			ccols[i] = catalog.Column{Name: c.Name, Type: expr.TString, FixedLen: c.Len}
		} else {
			ccols[i] = catalog.Column{Name: c.Name, Type: expr.TInt, Distinct: 1}
		}
	}
	codec, err := catalog.NewRowCodec(ccols)
	if err != nil {
		return err
	}
	tab := &catalog.Table{
		Name:       name,
		Columns:    ccols,
		Heap:       storage.NewHeapFile(d.inner.Pool),
		Indexes:    map[string]*btree.Tree{},
		Codec:      codec,
		TupleBytes: codec.Width(),
	}
	for i, c := range cols {
		if c.Indexed {
			if c.String {
				return fmt.Errorf("predplace: string columns cannot be indexed")
			}
			tab.Indexes[ccols[i].Name] = btree.New(d.inner.Disk.Accountant())
		}
	}
	return d.inner.Cat.AddTable(tab)
}

// Insert appends one row. Values must be int64/int or string per column.
func (d *DB) Insert(table string, values ...interface{}) error {
	tab, err := d.inner.Cat.Table(table)
	if err != nil {
		return err
	}
	if len(values) != len(tab.Columns) {
		return fmt.Errorf("predplace: %s has %d columns, got %d values", table, len(tab.Columns), len(values))
	}
	row := make(expr.Row, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case int:
			row[i] = expr.I(int64(x))
		case int64:
			row[i] = expr.I(x)
		case string:
			row[i] = expr.S(x)
		case nil:
			row[i] = expr.Null
		default:
			return fmt.Errorf("predplace: unsupported value type %T", v)
		}
	}
	rec, err := tab.Codec.Encode(row)
	if err != nil {
		return err
	}
	tid, err := tab.Heap.Insert(rec)
	if err != nil {
		return err
	}
	for i := range tab.Columns {
		if tree, ok := tab.Indexes[tab.Columns[i].Name]; ok && row[i].Kind == expr.TInt {
			tree.Insert(row[i].I, tid)
		}
	}
	tab.Card++
	d.inner.Cat.BumpVersion()
	return nil
}

// Analyze recomputes a table's statistics from its data and forgets any
// loading I/O, preparing it for measured queries.
func (d *DB) Analyze(table string) error {
	if err := datagen.ComputeStats(d.inner, table); err != nil {
		return err
	}
	d.inner.Disk.Accountant().Reset()
	d.inner.Cat.BumpVersion()
	return nil
}

// RegisterFunc registers a user-defined boolean predicate function with its
// cost metadata (per-call cost in random-I/O units and selectivity).
func (d *DB) RegisterFunc(name string, arity int, costPerCall, selectivity float64,
	eval func(args []Value) Value) error {
	return d.inner.Cat.RegisterFunc(&expr.FuncDef{
		Name: name, Arity: arity, Cost: costPerCall, Selectivity: selectivity,
		Cacheable: true, Eval: eval,
	})
}

// Value is a runtime datum; see the expr helpers re-exported below.
type Value = expr.Value

// Int wraps an integer as a Value.
func Int(v int64) Value { return expr.I(v) }

// Str wraps a string as a Value.
func Str(s string) Value { return expr.S(s) }

// Bool wraps a boolean as a Value.
func Bool(b bool) Value { return expr.B(b) }

// NullValue is the SQL NULL.
var NullValue = expr.Null

// Stats reports the resources one query consumed; Charged() is the paper's
// measurement (page I/Os + invocations × per-call cost).
type Stats = exec.Stats

// PlanInfo carries the optimizer's diagnostics.
type PlanInfo = optimizer.Info

// OpProfile is one operator's runtime profile; see Result.Profile. The tree
// mirrors the plan and has a stable JSON encoding (ppsql -profile emits it).
type OpProfile = exec.OpProfile

// Result is the outcome of Query.
type Result struct {
	// Cols names the output columns.
	Cols []string
	// Rows holds the output (nil for EXPLAIN or DNF). With top-k execution
	// off (the default), LIMIT truncates this slice only: Stats.Rows keeps
	// the executor's pre-LIMIT row count (the measurement), so len(Rows) ≤
	// Stats.Rows under a LIMIT. With Config.TopK on and a TopK/Limit plan
	// root, the executor itself stops at the limit and Stats.Rows is the
	// post-limit count — see Stats.Rows.
	Rows [][]Value
	// Plan is the chosen plan rendered as a tree.
	Plan string
	// EstCost is the optimizer's estimate for the chosen plan.
	EstCost float64
	// Stats reports execution resource usage (zero for EXPLAIN). Stats.Rows
	// counts rows the executor produced: the full pre-LIMIT cardinality
	// with top-k execution off, the ≤ LIMIT post-limit count when a
	// TopK/Limit plan root terminated early.
	Stats Stats
	// Info reports planning diagnostics.
	Info PlanInfo
	// Profile is the per-operator runtime profile (non-nil when profiling
	// was on — Config.Profile/SetProfile — or the statement was EXPLAIN
	// ANALYZE).
	Profile *OpProfile
	// DNF marks queries aborted by the charged-cost budget.
	DNF bool
	// Explained marks EXPLAIN statements (not executed).
	Explained bool
}

// Query parses, optimizes with the given algorithm, and (unless the
// statement has an EXPLAIN prefix) executes the SQL text.
func (d *DB) Query(sql string, algo Algorithm) (*Result, error) {
	return d.QueryContext(context.Background(), sql, algo)
}

// QueryContext is Query with a context: cancellation or deadline expiry
// aborts the running query promptly — serial, parallel, and batched
// executors alike observe the context on the executor's budget-check
// cadence and unwind through the ordinary error path (iterators close,
// pages unpin, workers exit). The returned error wraps the context cause,
// so errors.Is(err, context.Canceled) / context.DeadlineExceeded hold. A
// configured Timeout applies on top of ctx.
func (d *DB) QueryContext(ctx context.Context, sql string, algo Algorithm) (*Result, error) {
	k := d.snapshot()
	p, err := d.prepare(sql, algo, k)
	if err != nil {
		return nil, err
	}
	return d.execPrepared(ctx, p, k)
}

// PreparedStatement is a statement that has been parsed, bound, and
// optimized once, ready to execute any number of times without repeating
// that work. The plan tree is immutable; every execution builds its own
// execution environment, so one PreparedStatement may be executed from many
// goroutines concurrently. The plan is fixed at Prepare time: schema or
// statistics changes after Prepare do not re-plan it (Query/QueryContext,
// whose cache is catalog-versioned, pick up such changes automatically).
type PreparedStatement struct {
	db    *DB
	sql   string
	algo  Algorithm
	root  plan.Node
	bound *sqlparse.Bound
	info  *optimizer.Info
}

// Prepare parses, binds, and optimizes sql under the given algorithm,
// consulting the shared plan cache. The planning-affecting knobs (caching,
// transfer, top-k) are snapshotted at this call.
func (d *DB) Prepare(sql string, algo Algorithm) (*PreparedStatement, error) {
	return d.prepare(sql, algo, d.snapshot())
}

// SQL returns the statement's original text.
func (p *PreparedStatement) SQL() string { return p.sql }

// Plan renders the prepared plan tree.
func (p *PreparedStatement) Plan() string { return plan.Render(p.root) }

// Exec executes the prepared statement; execution knobs (budget,
// parallelism, batching, timeout, profiling) are snapshotted per call.
func (p *PreparedStatement) Exec() (*Result, error) {
	return p.ExecContext(context.Background())
}

// ExecContext is Exec with a context; see DB.QueryContext for the
// cancellation contract.
func (p *PreparedStatement) ExecContext(ctx context.Context) (*Result, error) {
	return p.db.execPrepared(ctx, p, p.db.snapshot())
}

// prepare resolves sql to a prepared statement: a plan-cache hit reuses the
// cached plan outright; a miss runs parse/bind/optimize and publishes the
// result for the next caller.
func (d *DB) prepare(sql string, algo Algorithm, k knobs) (*PreparedStatement, error) {
	key := planKey{
		sql: normalizeSQL(sql), algo: algo,
		caching: k.caching, transfer: k.transfer, topk: k.topk,
		feedback: k.feedback, robustE: k.robustE,
		catVer: d.inner.Cat.Version(),
	}
	if d.plans != nil {
		if e, ok := d.plans.get(key); ok {
			return &PreparedStatement{db: d, sql: sql, algo: algo,
				root: e.root, bound: e.bound, info: e.info}, nil
		}
	}
	root, bound, info, err := d.plan(sql, algo, k)
	if err != nil {
		return nil, err
	}
	if d.plans != nil {
		d.plans.put(&planEntry{key: key, root: root, bound: bound, info: info})
	}
	return &PreparedStatement{db: d, sql: sql, algo: algo,
		root: root, bound: bound, info: info}, nil
}

// execPrepared executes a prepared statement under the knob snapshot k.
func (d *DB) execPrepared(ctx context.Context, p *PreparedStatement, k knobs) (*Result, error) {
	root, bound, info := p.root, p.bound, p.info
	// EstCost comes from the planner's Info, not the root node: with
	// transfer on it includes the prepass's estimated cost (identical to
	// root.Cost() otherwise).
	res := &Result{
		Plan:    plan.Render(root) + robustSummary(info),
		EstCost: info.EstCost,
		Info:    *info,
	}
	if bound.Explain && !bound.Analyze {
		res.Explained = true
		return res, nil
	}
	ctx, cancel := execCtx(ctx, k.timeout)
	defer cancel()
	env := d.newEnv(ctx, k)
	// EXPLAIN ANALYZE always profiles its statement: the profile is the
	// point of the command, and every plan node then has an actual row
	// count (probe-driven inner chains and never-reached subtrees
	// included), so "actual=n/a" cannot appear. Feedback harvesting needs
	// the same per-operator actuals, so it forces profiling too — but only
	// an explicit request surfaces the profile on the Result below.
	env.Profile = k.profile || bound.Explain || k.feedback
	out, err := exec.Run(env, root)
	if err != nil {
		return nil, err
	}
	res.Stats = out.Stats
	res.DNF = out.DNF
	if k.profile || bound.Explain {
		res.Profile = out.Profile
	}
	// Harvest observed selectivities and measured function costs into the
	// catalog's feedback store, then promote the batch when any observation
	// is off by more than the threshold. A DNF query stopped mid-stream, so
	// its per-operator ratios are truncation artifacts, not selectivities.
	if k.feedback && out.Profile != nil && !out.DNF {
		fb := d.inner.Cat.Feedback()
		harvestFeedback(fb, root, out.Profile)
		if fb.MaxPendingErr() > k.fbThreshold {
			d.inner.Cat.ApplyFeedback()
		}
	}
	if bound.Explain { // EXPLAIN ANALYZE: annotated plan, no result rows
		res.Explained = true
		res.Plan = analyzedPlan(root, out) + robustSummary(info)
		return res, nil
	}
	res.Cols, res.Rows = project(root, bound, out)
	if err := finishResult(bound, res, planHasTopK(root)); err != nil {
		return nil, err
	}
	return res, nil
}

// planHasTopK reports whether the plan root already applies the query's
// ORDER BY and LIMIT (top-k planning wrapped it), so finishResult must not
// re-sort or re-truncate.
func planHasTopK(root plan.Node) bool {
	switch root.(type) {
	case *plan.TopK, *plan.Limit:
		return true
	}
	return false
}

// analyzedPlan renders the EXPLAIN ANALYZE tree: each node carries the
// optimizer's row estimate, the measured row count, and the estimation-error
// factor; a summary line totals the profile underneath.
func analyzedPlan(root plan.Node, out *exec.Result) string {
	topkProf := map[plan.Node]*exec.OpProfile{}
	if out.Profile != nil {
		zipTopKProfile(root, out.Profile, topkProf)
	}
	rendered := plan.RenderWith(root, func(n plan.Node) string {
		rows, ok := out.NodeRows[n]
		if !ok {
			return " actual=n/a"
		}
		s := fmt.Sprintf(" est=%.0f actual=%d (%s)", n.Card(), rows, errFactorString(n.Card(), rows))
		if p := topkProf[n]; p != nil {
			if p.HeapPushed > 0 || p.HeapEvicted > 0 {
				s += fmt.Sprintf(" heap(pushed=%d evicted=%d)", p.HeapPushed, p.HeapEvicted)
			}
			if p.ShortCircuit > 0 {
				s += " short-circuit"
			}
		}
		return s
	})
	if out.Profile != nil {
		rendered += profileSummary(out.Profile)
	}
	if t := out.Stats.Transfer; t != nil {
		rendered += transferSummary(t)
	}
	return rendered
}

// zipTopKProfile pairs the plan's TopK/Limit nodes with their OpProfile
// entries by walking the two trees in lockstep (the profile tree mirrors the
// plan node for node), so EXPLAIN ANALYZE can annotate heap traffic and
// short-circuits on the right lines.
func zipTopKProfile(n plan.Node, p *exec.OpProfile, m map[plan.Node]*exec.OpProfile) {
	if p == nil {
		return
	}
	switch n.(type) {
	case *plan.TopK, *plan.Limit:
		m[n] = p
	}
	children := n.Children()
	if len(children) != len(p.Children) {
		return
	}
	for i, c := range children {
		zipTopKProfile(c, p.Children[i], m)
	}
}

// transferSummary is the predicate-transfer line under an EXPLAIN ANALYZE
// tree: prepass filters and their measured effect. FP rates print only when
// measured (profiling tracks exact key sets; -1 means unmeasured).
func transferSummary(t *exec.TransferStats) string {
	s := fmt.Sprintf("transfer: classes=%d filters=%d built=%d probes=%d pruned=%d charged=%.1f",
		t.Classes, t.FiltersBuilt, t.BuildRows, t.Probes, t.Pruned, t.PrepassCharged+t.ProbeCharge)
	if t.FPActual >= 0 {
		s += fmt.Sprintf(" fp=%.4f (est %.4f)", t.FPActual, t.FPEst)
	}
	return s + "\n"
}

// errFactorString renders the symmetric estimation-error factor ×max(a/e, e/a).
func errFactorString(est float64, act int64) string {
	a := float64(act)
	if est <= 0 && a <= 0 {
		return "×1.00"
	}
	if est <= 0 || a <= 0 {
		return "×inf"
	}
	f := a / est
	if f < 1 {
		f = 1 / f
	}
	return maxErrString(f)
}

// profileSummary is the per-query summary line under an EXPLAIN ANALYZE
// tree: inclusive wall time and I/O from the root window, predicate totals,
// and the worst cardinality estimate in the tree.
func profileSummary(p *OpProfile) string {
	evals, inv, hits, misses := p.Totals()
	maxErr, at := p.MaxErr()
	s := fmt.Sprintf("total: wall=%.1fms io=%d predEvals=%d invocations=%d",
		float64(p.WallNs)/1e6, p.IO.Total(), evals, inv)
	if hits != 0 || misses != 0 {
		s += fmt.Sprintf(" cache=%d/%d", hits, hits+misses)
	}
	return s + fmt.Sprintf(" maxErr=%s @ %s\n", maxErrString(maxErr), at)
}

// maxErrString formats an error factor, printing anything at or beyond the
// profiler's cap as ×inf.
func maxErrString(f float64) string {
	if f >= exec.ErrFactorCap {
		return "×inf"
	}
	return fmt.Sprintf("×%.2f", f)
}

// finishResult applies the post-plan result shaping: COUNT(*), ORDER BY,
// and LIMIT. These operate on the result set (the optimizer's plan space is
// the paper's — conjunctive filtering and joins); ORDER BY on large results
// is an in-memory sort. An ORDER BY column that is not among the projected
// output columns is an error: silently returning unsorted rows — or sorting
// by a column position taken from the un-projected plan row layout — is a
// wrong answer, not a degraded one. With topkPlanned set, the plan root
// already emitted the ORDER BY's first LIMIT rows in order (and top-k
// planning only engages when the ORDER BY column is projected), so the
// facade passes the rows through untouched.
func finishResult(bound *sqlparse.Bound, res *Result, topkPlanned bool) error {
	if bound.CountStar {
		res.Cols = []string{"count"}
		res.Rows = [][]Value{{Int(int64(res.Stats.Rows))}}
		res.Stats.Rows = 1 // one aggregate row is the result
		return nil
	}
	if topkPlanned {
		return nil
	}
	if bound.OrderBy != nil {
		idx := -1
		for i, c := range res.Cols {
			if c == bound.OrderBy.String() {
				idx = i
			}
		}
		if idx < 0 {
			return fmt.Errorf("predplace: ORDER BY column %s is not in the select list", bound.OrderBy)
		}
		sort.SliceStable(res.Rows, func(a, b int) bool {
			ra, rb := res.Rows[a], res.Rows[b]
			if c := ra[idx].Compare(rb[idx]); c != 0 {
				if bound.Desc {
					return c > 0
				}
				return c < 0
			}
			// Deterministic tie-break: equal keys order by the full projected
			// row, ascending regardless of Desc. Parallel operators do not
			// preserve input order, and a bare stable sort would expose their
			// arrival order in the result — equal-key rows must compare the
			// same way on every run, in every executor mode.
			for i := range ra {
				if c := ra[i].Compare(rb[i]); c != 0 {
					return c < 0
				}
			}
			return false
		})
	}
	if bound.Limit >= 0 && int64(len(res.Rows)) > bound.Limit {
		res.Rows = res.Rows[:bound.Limit]
	}
	return nil
}

// Explain returns the plan chosen by the given algorithm without executing.
func (d *DB) Explain(sql string, algo Algorithm) (string, error) {
	p, err := d.prepare(sql, algo, d.snapshot())
	if err != nil {
		return "", err
	}
	return plan.Render(p.root) + robustSummary(p.info), nil
}

// robustSummary is the EXPLAIN line describing the Robust algorithm's
// error-interval scoring: the interval the candidates were scored over, the
// chosen plan's worst-case cost across it, and how many distinct plan shapes
// competed. Empty for every other algorithm — their EXPLAIN output stays
// byte-identical.
func robustSummary(info *optimizer.Info) string {
	if info.Algorithm != optimizer.Robust || info.RobustE <= 0 {
		return ""
	}
	return fmt.Sprintf("robust interval=[sel/%g, sel×%g] worst-case=%.0f candidates=%d\n",
		info.RobustE, info.RobustE, info.RobustWorst, info.RobustCandidates)
}

// execCtx layers a per-query timeout onto ctx; the returned cancel function
// must be called when the query finishes (it is a release, not an abort,
// once the query is done).
func execCtx(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(ctx, timeout)
	}
	return ctx, func() {}
}

// newEnv builds a fresh execution environment bound to ctx, configured
// entirely from the knob snapshot k.
func (d *DB) newEnv(ctx context.Context, k knobs) *exec.Env {
	return &exec.Env{
		Ctx:         ctx,
		Cat:         d.inner.Cat,
		Pool:        d.inner.Pool,
		Cache:       pcache.NewManagerScoped(k.caching, k.cacheMax, k.cacheScope),
		Budget:      k.budget,
		Parallelism: k.parallelism,
		BatchSize:   k.batchSize,
		Validate:    d.validate,
		Transfer:    k.transfer,
	}
}

func (d *DB) plan(sql string, algo Algorithm, k knobs) (plan.Node, *sqlparse.Bound, *optimizer.Info, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil, nil, err
	}
	binder := &sqlparse.Binder{Cat: d.inner.Cat, CompileSubquery: d.compileSubquery}
	bound, err := binder.Bind(stmt)
	if err != nil {
		return nil, nil, nil, err
	}
	opt := optimizer.New(d.inner.Cat, optimizer.Options{
		Algorithm: algo, Caching: k.caching, Transfer: k.transfer,
		TopK:     topkSpec(bound, k.topk),
		Feedback: k.feedback, RobustE: k.robustE,
	})
	root, info, err := opt.Plan(bound.Query)
	if err != nil {
		return nil, nil, nil, err
	}
	// With PPLINT_VALIDATE=1 (snapshotted at Open) every planned tree —
	// whether it is about to be executed, explained, or compared — is held
	// to plan.Validate's invariants before leaving the planner.
	if d.validate {
		if err := plan.Validate(root); err != nil {
			return nil, nil, nil, fmt.Errorf("predplace: %s produced an invalid plan: %w", algo, err)
		}
	}
	return root, bound, info, nil
}

// topkSpec lifts a bound ORDER BY + LIMIT into the optimizer's top-k
// specification. Nil — leaving ORDER BY/LIMIT to the facade exactly as with
// TopK off — when the knob is off, the query has no ORDER BY or no positive
// LIMIT, it is a COUNT(*) (the aggregate consumes every row; nothing to
// bound), or the ORDER BY column is not among the projected columns (the
// facade rejects that query, and the rejection must survive the knob).
func topkSpec(bound *sqlparse.Bound, topk bool) *optimizer.TopKSpec {
	if !topk || bound.CountStar || bound.OrderBy == nil || bound.Limit < 1 {
		return nil
	}
	spec := &optimizer.TopKSpec{Key: *bound.OrderBy, Desc: bound.Desc, K: bound.Limit}
	if !bound.Star && len(bound.Projection) > 0 {
		found := false
		for _, ref := range bound.Projection {
			if ref == *bound.OrderBy {
				found = true
			}
		}
		if !found {
			return nil
		}
		// Tie-break on the projected columns in projection order: the heap's
		// comparator then matches the facade sort's, and rows it cannot
		// distinguish are identical after projection.
		spec.Tie = bound.Projection
	}
	return spec
}

// project applies the SELECT list to executor output.
func project(root plan.Node, bound *sqlparse.Bound, out *exec.Result) ([]string, [][]Value) {
	if bound.Star || len(bound.Projection) == 0 {
		rows := make([][]Value, len(out.Rows))
		for i, r := range out.Rows {
			rows[i] = r
		}
		return out.Cols, rows
	}
	idx := make([]int, len(bound.Projection))
	names := make([]string, len(bound.Projection))
	for i, ref := range bound.Projection {
		idx[i] = plan.ColIndex(root, ref)
		names[i] = ref.String()
	}
	rows := make([][]Value, len(out.Rows))
	for i, r := range out.Rows {
		pr := make([]Value, len(idx))
		for k, j := range idx {
			if j >= 0 {
				pr[k] = r[j]
			}
		}
		rows[i] = pr
	}
	return names, rows
}

// compileSubquery lowers an IN-subquery into an expensive predicate whose
// evaluation runs the (single-table) subquery through the executor with the
// correlated outer columns bound — Montage's treatment of subqueries as
// expensive selections, with the whole predicate's tri-state result cached
// on the binding (§5.1).
func (d *DB) compileSubquery(sub *sqlparse.SelectStmt, not bool, args []query.ColRef) (*expr.FuncDef, error) {
	if len(sub.Tables) != 1 {
		return nil, fmt.Errorf("predplace: IN-subqueries over joins are unsupported")
	}
	if sub.Star || len(sub.Columns) != 1 {
		return nil, fmt.Errorf("predplace: IN-subquery must select exactly one column")
	}
	subTable := sub.Tables[0]
	tab, err := d.inner.Cat.Table(subTable)
	if err != nil {
		return nil, err
	}
	outIdx := tab.ColIndex(sub.Columns[0].Col)
	if outIdx < 0 {
		return nil, fmt.Errorf("predplace: no column %s in %s", sub.Columns[0].Col, subTable)
	}

	// Split subquery WHERE into local conjuncts and correlated equalities.
	var locals []subLocal
	var corrs []subCorr
	argPos := map[query.ColRef]int{}
	for i, a := range args {
		argPos[a] = i
	}
	for _, w := range sub.Where {
		cmp, ok := w.(*sqlparse.CmpPred)
		if !ok {
			return nil, fmt.Errorf("predplace: IN-subqueries support only comparison predicates")
		}
		op, err := sqlCmpOp(cmp.Op)
		if err != nil {
			return nil, err
		}
		// Orient the comparison so the subquery column is on the left.
		left, right := cmp.Left, cmp.Right
		if left.IsCol && left.Col.Table != subTable && left.Col.Table != "" {
			left, right, op = right, left, op.Flip()
		}
		if err := classifyCorr(left, right, op, tab, argPos, &corrs, &locals); err != nil {
			return nil, err
		}
	}

	name := fmt.Sprintf("in_%s_%d", subTable, d.subSeq.Add(1))
	f := &expr.FuncDef{
		Name:        name,
		Arity:       len(args),
		Cost:        float64(tab.Pages()), // optimizer estimate: one scan per call
		Selectivity: 0.5,
		Cacheable:   true,
		RealWork:    true,
	}
	f.EvalIO = func(tr *storage.IOTracker, vals []expr.Value) (expr.Value, error) {
		if vals[0].IsNull() {
			return expr.Null, nil
		}
		// The scan reads through the shared buffer pool; the executor passes
		// the running query's I/O tracker, so the subquery's page traffic is
		// charged to that query alone. A scan or decode failure propagates
		// instead of folding into a truth value — under injected faults a
		// silently-wrong answer would be worse than the fault itself.
		it := tab.Heap.WithTracker(tr).Scan()
		defer it.Close()
		for {
			rec, _, ok, err := it.Next()
			if err != nil {
				return expr.Null, fmt.Errorf("predplace: subquery scan of %s: %w", subTable, err)
			}
			if !ok {
				break
			}
			row, err := tab.Codec.Decode(rec)
			if err != nil {
				return expr.Null, fmt.Errorf("predplace: subquery decode of %s: %w", subTable, err)
			}
			match := true
			for _, lc := range locals {
				if b, known := lc.op.Apply(row[lc.colIdx], lc.value).Bool(); !known || !b {
					match = false
					break
				}
			}
			if match {
				for _, cc := range corrs {
					if b, known := cc.op.Apply(row[cc.colIdx], vals[cc.argIdx]).Bool(); !known || !b {
						match = false
						break
					}
				}
			}
			if match && row[outIdx].Equal(vals[0]) {
				return expr.B(!not), nil
			}
		}
		return expr.B(not), nil
	}
	if err := d.inner.Cat.RegisterFunc(f); err != nil {
		return nil, err
	}
	return f, nil
}

// subLocal is a subquery-local comparison against a constant.
type subLocal struct {
	colIdx int
	op     expr.CmpOp
	value  expr.Value
}

// subCorr compares a subquery column against a correlated outer binding.
type subCorr struct {
	colIdx int
	op     expr.CmpOp
	argIdx int // index into the predicate's argument list
}

func classifyCorr(colSide, otherSide sqlparse.Operand, op expr.CmpOp,
	tab *catalog.Table, argPos map[query.ColRef]int,
	corrs *[]subCorr, locals *[]subLocal) error {
	if !colSide.IsCol {
		return fmt.Errorf("predplace: IN-subquery comparison needs a subquery column")
	}
	ci := tab.ColIndex(colSide.Col.Col)
	if ci < 0 {
		return fmt.Errorf("predplace: no column %s in %s", colSide.Col.Col, tab.Name)
	}
	if otherSide.IsCol {
		ref := query.ColRef{Table: otherSide.Col.Table, Col: otherSide.Col.Col}
		ai, ok := argPos[ref]
		if !ok {
			return fmt.Errorf("predplace: unresolved correlated reference %s", ref)
		}
		*corrs = append(*corrs, subCorr{ci, op, ai})
		return nil
	}
	*locals = append(*locals, subLocal{ci, op, sqlOperandValue(otherSide)})
	return nil
}

func sqlCmpOp(s string) (expr.CmpOp, error) {
	switch s {
	case "=":
		return expr.OpEQ, nil
	case "<>":
		return expr.OpNE, nil
	case "<":
		return expr.OpLT, nil
	case "<=":
		return expr.OpLE, nil
	case ">":
		return expr.OpGT, nil
	case ">=":
		return expr.OpGE, nil
	}
	return 0, fmt.Errorf("predplace: bad operator %q", s)
}

func sqlOperandValue(o sqlparse.Operand) expr.Value {
	switch {
	case o.IsString:
		return expr.S(o.Str)
	case o.IsNull:
		return expr.Null
	case o.IsBool:
		return expr.B(o.Bool)
	default:
		return expr.I(o.Int)
	}
}

// CompareAll runs the SQL text under every algorithm in algos (defaults to
// all) and returns one Result per algorithm in order — the harness the paper
// used to debug its optimizer ("running the same query under the various
// heuristics and comparing the estimated costs and running times").
func (d *DB) CompareAll(sql string, algos ...Algorithm) ([]*Result, error) {
	if len(algos) == 0 {
		algos = Algorithms()
	}
	out := make([]*Result, 0, len(algos))
	for _, a := range algos {
		r, err := d.Query(sql, a)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", a, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// FormatComparison renders CompareAll results as an aligned table with costs
// normalized to the best algorithm — the textual analog of the paper's
// relative-time bar charts.
func FormatComparison(algos []Algorithm, results []*Result) string {
	best := 0.0
	for _, r := range results {
		c := r.Stats.Charged()
		if !r.DNF && (best == 0 || c < best) {
			best = c
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %14s %10s %14s %8s\n", "algorithm", "charged-cost", "relative", "est-cost", "rows")
	for i, r := range results {
		rel := "DNF"
		charged := r.Stats.Charged()
		if !r.DNF && best > 0 {
			rel = fmt.Sprintf("%.2fx", charged/best)
		}
		fmt.Fprintf(&b, "%-18s %14.0f %10s %14.0f %8d\n",
			algos[i].String(), charged, rel, r.EstCost, r.Stats.Rows)
	}
	return b.String()
}

// Exec runs a data-modification statement (currently DELETE FROM … WHERE …)
// and returns the number of affected rows. Selections are rank-ordered
// before evaluation, so expensive predicates benefit from the same ordering
// discipline as queries; statistics become stale after large deletes —
// re-run Analyze.
func (d *DB) Exec(sql string) (int, error) {
	stmt, err := sqlparse.ParseAny(sql)
	if err != nil {
		return 0, err
	}
	del, ok := stmt.(*sqlparse.DeleteStmt)
	if !ok {
		return 0, fmt.Errorf("predplace: Exec handles DELETE; use Query for SELECT")
	}
	binder := &sqlparse.Binder{Cat: d.inner.Cat, CompileSubquery: d.compileSubquery}
	q, err := binder.BindDelete(del)
	if err != nil {
		return 0, err
	}
	tab, err := d.inner.Cat.Table(del.Table)
	if err != nil {
		return 0, err
	}
	// Rank-order the predicates (cheap first, then ascending rank).
	preds := append([]*query.Predicate(nil), q.Preds...)
	sortPredsByRank(preds)

	k := d.snapshot()
	ctx, cancel := execCtx(context.Background(), k.timeout)
	defer cancel()
	env := d.newEnv(ctx, k)
	tids, err := exec.MatchingTIDs(env, del.Table, preds)
	if err != nil {
		return 0, err
	}
	for _, tid := range tids {
		rec, err := tab.Heap.Get(tid)
		if err != nil {
			return 0, err
		}
		row, err := tab.Codec.Decode(rec)
		if err != nil {
			return 0, err
		}
		if err := tab.Heap.Delete(tid); err != nil {
			return 0, err
		}
		for i := range tab.Columns {
			if tree, ok := tab.Indexes[tab.Columns[i].Name]; ok && row[i].Kind == expr.TInt {
				tree.Delete(row[i].I, tid)
			}
		}
	}
	tab.Card -= int64(len(tids))
	if len(tids) > 0 {
		d.inner.Cat.BumpVersion()
	}
	return len(tids), nil
}

// sortPredsByRank orders predicates ascending by (selectivity−1)/cost.
func sortPredsByRank(preds []*query.Predicate) {
	sort.SliceStable(preds, func(i, j int) bool {
		ri, rj := preds[i].Rank(), preds[j].Rank()
		if ri != rj {
			return ri < rj
		}
		return preds[i].ID < preds[j].ID
	})
}
