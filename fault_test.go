package predplace_test

// The randomized fault sweep: benchmark queries run under deterministic
// injected read faults and aggressive deadlines across the executor's
// serial/parallel × tuple/batched configurations. Per seed, every run must
// end in an accepted outcome — clean rows identical to the fault-free
// baseline, an error wrapping the injected fault, a DNF, or a deadline
// error — with zero pinned buffer-pool frames and the goroutine baseline
// restored afterwards. check.sh runs this under -race, so the abort paths'
// synchronization is exercised too.

import (
	"context"
	"errors"
	"testing"
	"time"

	"predplace"
	"predplace/internal/harness"
)

func TestFaultSweep(t *testing.T) {
	h, err := harness.New(0.02)
	if err != nil {
		t.Fatal(err)
	}
	seeds := 3
	if testing.Short() {
		seeds = 1
	}
	b, err := h.RunFaultBench(4, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Pass {
		t.Fatalf("fault sweep violated the failure contract:\n%s", b.String())
	}
}

// TestQueryContextCancel covers the facade surface directly: a canceled
// context aborts the query with an error reaching context.Canceled, and a
// configured timeout surfaces context.DeadlineExceeded; afterwards no
// frame stays pinned.
func TestQueryContextCancel(t *testing.T) {
	db, err := predplace.Open(predplace.Config{Scale: 0.02, Tables: []int{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	sql := "SELECT * FROM t1, t3 WHERE t1.ua1 = t3.ua1 AND costly100(t1.u10)"

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, sql, predplace.Migration); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context: want context.Canceled, got %v", err)
	}

	db.SetTimeout(time.Nanosecond)
	if _, err := db.Query(sql, predplace.Migration); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout: want context.DeadlineExceeded, got %v", err)
	}
	db.SetTimeout(0)

	if got := db.PinnedFrames(); got != 0 {
		t.Fatalf("%d frames pinned after aborted queries", got)
	}

	// The same query without faults or deadline still runs cleanly.
	res, err := db.Query(sql, predplace.Migration)
	if err != nil || res.DNF {
		t.Fatalf("clean rerun failed: res=%+v err=%v", res, err)
	}
}

// TestFaultEveryReadSite exhaustively fails each page read of one join
// query, serially and in parallel: whichever operator the fault lands in —
// scan, join build, probe, rebuilt nested-loop inner — the query must
// return a wrapped injected-fault error or a clean result, and teardown
// must leave zero pinned frames and no stranded goroutines. This is the
// regression net over every mid-query error site the pin/goroutine audit
// found (half-opened nested-loop inners, abandoned fan-in batches).
func TestFaultEveryReadSite(t *testing.T) {
	db, err := predplace.Open(predplace.Config{Scale: 0.01, Tables: []int{1, 2}, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	sql := "SELECT * FROM t1, t2 WHERE t1.ua1 = t2.ua1 AND costly10(t1.u10)"

	// Faults fire on physical reads, so every run starts from a cold pool:
	// eviction is explicit now (query entry no longer flushes the shared
	// pool), and it happens before arming the injector so eviction
	// write-backs never consume fault sites.
	if err := db.EvictPool(); err != nil {
		t.Fatal(err)
	}
	db.SetFaults(&predplace.FaultConfig{}) // count-only: no injection
	if _, err := db.Query(sql, predplace.Migration); err != nil {
		t.Fatal(err)
	}
	reads, _, _ := db.FaultCounts()
	db.SetFaults(nil)
	if reads == 0 {
		t.Fatal("no page reads observed")
	}

	for _, p := range []int{1, 4} {
		db.SetParallelism(p)
		for n := int64(1); n <= reads; n++ {
			audit := harness.StartLeakAudit()
			if err := db.EvictPool(); err != nil {
				t.Fatal(err)
			}
			db.SetFaults(&predplace.FaultConfig{FailReadN: n})
			_, err := db.Query(sql, predplace.Migration)
			db.SetFaults(nil)
			if err != nil && !errors.Is(err, predplace.ErrInjectedFault) {
				t.Fatalf("P=%d failN=%d: error does not wrap the injected fault: %v", p, n, err)
			}
			if err := audit.Verify(db); err != nil {
				t.Fatalf("P=%d failN=%d: %v", p, n, err)
			}
		}
	}
	db.SetParallelism(1)
}

// TestFaultTransferPrepass walks an injected read fault through every page
// read of a transfer-enabled query — the Bloom-filter build scans included.
// A fault landing in the prepass must abort the whole query cleanly (error
// wrapping the injected fault, zero pinned frames, goroutine baseline
// restored), never leave a half-built filter pruning rows of a later query,
// and never charge the failed I/O. A run the fault misses must return rows
// identical to the fault-free baseline.
func TestFaultTransferPrepass(t *testing.T) {
	db, err := predplace.Open(predplace.Config{Scale: 0.01, Tables: []int{1, 2}, Transfer: true})
	if err != nil {
		t.Fatal(err)
	}
	sql := "SELECT * FROM t1, t2 WHERE t1.ua1 = t2.ua1 AND costly10(t1.u10)"

	// Cold pool before every run: faults fire on physical reads, and query
	// entry no longer flushes the shared pool.
	if err := db.EvictPool(); err != nil {
		t.Fatal(err)
	}
	db.SetFaults(&predplace.FaultConfig{}) // count-only: no injection
	base, err := db.Query(sql, predplace.Migration)
	if err != nil {
		t.Fatal(err)
	}
	reads, _, _ := db.FaultCounts()
	db.SetFaults(nil)
	if reads == 0 {
		t.Fatal("no page reads observed")
	}
	baseRows := canonRows(base)
	baseCharged := base.Stats.Charged()

	for _, p := range []int{1, 4} {
		db.SetParallelism(p)
		for n := int64(1); n <= reads; n++ {
			audit := harness.StartLeakAudit()
			if err := db.EvictPool(); err != nil {
				t.Fatal(err)
			}
			db.SetFaults(&predplace.FaultConfig{FailReadN: n})
			res, err := db.Query(sql, predplace.Migration)
			db.SetFaults(nil)
			if err != nil && !errors.Is(err, predplace.ErrInjectedFault) {
				t.Fatalf("P=%d failN=%d: error does not wrap the injected fault: %v", p, n, err)
			}
			if err == nil {
				got := canonRows(res)
				if len(got) != len(baseRows) {
					t.Fatalf("P=%d failN=%d: clean run returned %d rows, baseline %d", p, n, len(got), len(baseRows))
				}
				for k := range got {
					if got[k] != baseRows[k] {
						t.Fatalf("P=%d failN=%d: clean run row %d differs from baseline", p, n, k)
					}
				}
				// Charged cost is deterministic; a survived fault must not
				// have charged anything extra (failed I/O is never charged).
				if c := res.Stats.Charged(); c > baseCharged+1e-6 || c < baseCharged-1e-6 {
					t.Fatalf("P=%d failN=%d: charged %v, baseline %v", p, n, c, baseCharged)
				}
			}
			if err := audit.Verify(db); err != nil {
				t.Fatalf("P=%d failN=%d: %v", p, n, err)
			}
		}
	}
	db.SetParallelism(1)

	// A charged-cost budget the prepass itself exceeds must surface as a
	// DNF — the paper's did-not-finish outcome — not an error, with nothing
	// pinned afterwards.
	audit := harness.StartLeakAudit()
	db.SetBudget(0.5)
	res, err := db.Query(sql, predplace.Migration)
	db.SetBudget(0)
	if err != nil {
		t.Fatalf("budget abort during prepass: %v", err)
	}
	if !res.DNF {
		t.Fatal("budget abort during prepass: want DNF")
	}
	if err := audit.Verify(db); err != nil {
		t.Fatal(err)
	}
}
