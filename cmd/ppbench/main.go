// Command ppbench regenerates every table and figure of "Practical Predicate
// Placement" (Hellerstein, SIGMOD 1994) against the reproduction's benchmark
// database.
//
// Usage:
//
//	ppbench [-scale 0.1] [-exp all|table1|table2|fig1|fig3|fig4|fig5|fig6|fig8|fig9|fig10|plantime|caching]
//	ppbench -parallel [-workers N] [-json] [-scale 0.1]
//
// Measurements are charged costs in random-I/O units (page I/Os plus
// function invocations × per-call cost — the paper's methodology), reported
// relative to the best plan per query.
//
// With -parallel, Queries 1–5 run serially and with N-way intra-query
// parallelism on the same database (Migration plans, caching off), comparing
// wall time, result sets, and charged cost; -json additionally writes
// BENCH_parallel.json. Exits nonzero if the parallel executor's results or
// charged cost diverge from serial.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"predplace/internal/harness"
)

func main() {
	scale := flag.Float64("scale", 0.1, "database scale factor (1.0 = the paper's ~110 MB)")
	exp := flag.String("exp", "all", "experiment id or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	parallel := flag.Bool("parallel", false, "run the serial-vs-parallel execution bench instead of the figures")
	workers := flag.Int("workers", 0, "parallel worker fan-out (0 = max(4, GOMAXPROCS))")
	jsonOut := flag.Bool("json", false, "with -parallel, also write BENCH_parallel.json")
	flag.Parse()

	if *list {
		fmt.Println("experiments: all", strings.Join(experimentIDs(), " "))
		return
	}

	if *parallel {
		runParallelBench(*scale, *workers, *jsonOut)
		return
	}

	fmt.Fprintf(os.Stderr, "building benchmark database at scale %.3f…\n", *scale)
	h, err := harness.New(*scale)
	if err != nil {
		fatal(err)
	}

	var reports []*harness.Report
	if *exp == "all" {
		reports, err = h.RunAll()
	} else {
		run, ok := h.Experiments()[*exp]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q; try -list", *exp))
		}
		var r *harness.Report
		r, err = run()
		reports = []*harness.Report{r}
	}
	if err != nil {
		fatal(err)
	}

	failed := 0
	for _, r := range reports {
		fmt.Println(r)
		if !r.Passed() {
			failed++
		}
	}
	fmt.Printf("%d/%d experiments reproduced the paper's shape\n", len(reports)-failed, len(reports))
	if failed > 0 {
		os.Exit(1)
	}
}

// runParallelBench executes the serial-vs-parallel comparison and exits
// nonzero when the parallel executor diverges from the serial one.
func runParallelBench(scale float64, workers int, jsonOut bool) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers < 4 {
			// Exercise the parallel operators even on small machines; extra
			// workers beyond the core count still validate correctness.
			workers = 4
		}
	}
	fmt.Fprintf(os.Stderr, "building benchmark database at scale %.3f (%d workers)…\n", scale, workers)
	h, err := harness.NewParallel(scale, workers)
	if err != nil {
		fatal(err)
	}
	bench, err := h.RunParallelBench(workers)
	if err != nil {
		fatal(err)
	}
	fmt.Print(bench)
	if jsonOut {
		data, err := bench.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile("BENCH_parallel.json", append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "wrote BENCH_parallel.json")
	}
	if !bench.Pass {
		os.Exit(1)
	}
}

func experimentIDs() []string {
	h := &harness.Harness{}
	ids := make([]string, 0, 12)
	for id := range h.Experiments() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppbench:", err)
	os.Exit(1)
}
