// Command ppbench regenerates every table and figure of "Practical Predicate
// Placement" (Hellerstein, SIGMOD 1994) against the reproduction's benchmark
// database.
//
// Usage:
//
//	ppbench [-scale 0.1] [-exp all|table1|table2|fig1|fig3|fig4|fig5|fig6|fig8|fig9|fig10|plantime|caching]
//	ppbench -parallel [-workers N] [-iters N] [-json] [-scale 0.1 | -scales 0.02,0.1]
//	ppbench -batch [-workers N] [-iters N] [-json] [-scale 0.1 | -scales 0.02,0.1]
//	ppbench -faults [-seeds N] [-workers N] [-json] [-scale 0.1]
//	ppbench -profile [-iters N] [-json] [-scale 0.1]
//	ppbench -transfer [-workers N] [-iters N] [-json] [-scale 0.1]
//	ppbench -topk [-workers N] [-iters N] [-json] [-scale 0.1]
//	ppbench -feedback [-json] [-scale 0.1]
//	ppbench -server [-sessions 1,2,4,8] [-iters N] [-json] [-scale 0.1]
//
// Measurements are charged costs in random-I/O units (page I/Os plus
// function invocations × per-call cost — the paper's methodology), reported
// relative to the best plan per query.
//
// With -parallel, Queries 1–5 run serially and with N-way intra-query
// parallelism on the same database (Migration plans, caching off), comparing
// wall time, result sets, and charged cost; -json additionally writes
// BENCH_parallel.json. With -batch, the same queries run tuple-at-a-time
// (BatchSize 1), batched serial, and batched parallel, additionally
// comparing allocation counts and (for the serial modes) exact row order;
// -json writes BENCH_batch.json. Both modes exit nonzero if any executor's
// results or charged cost diverge. -iters times each mode best-of-N so
// millisecond-scale queries are not noise-dominated, and -scales sweeps a
// comma-separated list of scale factors (the JSON payload becomes an array
// when more than one scale is swept).
//
// With -faults, Queries 1–5 run under deterministic injected storage read
// faults (-seeds fault sites per query) and aggressive deadlines, across
// serial/parallel × tuple/batched configurations. Every run must end in an
// accepted outcome — clean baseline-identical rows, an error wrapping the
// injected fault, a DNF, or a deadline error — with zero pinned buffer-pool
// frames afterwards; -json writes BENCH_faults.json. Fault and timeout runs
// never contribute to the figure reproductions.
//
// With -profile, Queries 1–5 plus the §3.1 Figure 1 example each run
// unprofiled and then with per-operator profiling on; results and charged
// costs must match exactly (profiling is observational). The profiled runs'
// per-operator est-vs-actual trees are printed and, with -json, written to
// BENCH_profile.json.
//
// With -transfer, Queries 3–5 run with predicate transfer off and on across
// tuple/batched × serial/parallel configurations: a serial prepass builds a
// Bloom filter per join-key equivalence class and the main scans probe the
// received filters before decoding. Transfer-on results must be identical to
// transfer-off in every configuration; the report compares wall time,
// charged cost (filter builds and probes are charged — transfer is never
// free), rows pruned, and filter false-positive rates. -json writes
// BENCH_transfer.json.
//
// With -server, Queries 1–5 run through predplace.Server from each listed
// session count's worth of concurrent client goroutines (-iters queries per
// session), comparing every result's rows and charged cost against the
// single-session baseline, reporting throughput, tail latency, and the plan
// cache's hit ratio, then exercising admission control (a burst against a
// one-slot, no-queue server must shed with ErrOverloaded) and the tenant
// quota clamp (DNF at the boundary, then ErrQuotaExceeded); -json writes
// BENCH_server.json.
//
// With -topk, ORDER BY … LIMIT k queries run with top-k execution off (full
// facade sort) and on (bounded-heap TopK, or an early-terminating Limit over
// an index-order scan when the ORDER BY key is a unique indexed column)
// across tuple/batched × serial/parallel configurations and k ∈ {1, 10, 100,
// 1000}. Top-k-on results must be row-for-row identical to top-k-off in
// every configuration, and the ordered-index flagship at k=10 must cut the
// charged cost at least 2× — the limit has to reach the scan, not just the
// sort. -json writes BENCH_topk.json.
//
// With -feedback, a zero-cost stub predicate with a fixed true selectivity is
// re-registered with declared selectivities wrong by factors e ∈ {1, 2, 4, 8}
// in both directions, and PushDown, Migration, and Robust run the same join
// query under each misdeclaration. Results must be identical everywhere; at
// e=1 all three algorithms' charged costs must agree, and at e ≥ 4 Robust's
// worst-case charged cost must beat both point-estimate algorithms. A final
// leg runs the worst misdeclaration twice with feedback-driven statistics on:
// the harvested observation must be promoted and the re-planned second run
// must charge no more than the first. -json writes BENCH_feedback.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"predplace/internal/harness"
)

func main() {
	scale := flag.Float64("scale", 0.1, "database scale factor (1.0 = the paper's ~110 MB)")
	scales := flag.String("scales", "", "comma-separated scale sweep for -parallel/-batch (overrides -scale)")
	exp := flag.String("exp", "all", "experiment id or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	parallel := flag.Bool("parallel", false, "run the serial-vs-parallel execution bench instead of the figures")
	batch := flag.Bool("batch", false, "run the tuple-vs-batch-vs-parallel execution bench instead of the figures")
	faults := flag.Bool("faults", false, "run the fault/timeout sweep instead of the figures")
	profile := flag.Bool("profile", false, "run the per-operator profiling bench instead of the figures")
	transfer := flag.Bool("transfer", false, "run the predicate-transfer off-vs-on bench instead of the figures")
	topk := flag.Bool("topk", false, "run the top-k-execution off-vs-on bench instead of the figures")
	feedback := flag.Bool("feedback", false, "run the estimate-error/feedback bench instead of the figures")
	server := flag.Bool("server", false, "run the multi-session server bench instead of the figures")
	sessions := flag.String("sessions", "1,2,4,8", "with -server, comma-separated session counts to sweep")
	seeds := flag.Int("seeds", 3, "with -faults, fault sites tried per query")
	workers := flag.Int("workers", 0, "parallel worker fan-out (0 = max(4, GOMAXPROCS))")
	iters := flag.Int("iters", 1, "with -parallel/-batch, time each mode best-of-N runs")
	jsonOut := flag.Bool("json", false, "with -parallel/-batch/-faults, also write BENCH_<mode>.json")
	flag.Parse()

	if *list {
		fmt.Println("experiments: all", strings.Join(experimentIDs(), " "))
		return
	}

	if *faults {
		runFaultBench(*scale, resolveWorkers(*workers), *seeds, *jsonOut)
		return
	}

	if *profile {
		runProfileBench(*scale, *iters, *jsonOut)
		return
	}

	if *transfer {
		runTransferBench(*scale, resolveWorkers(*workers), *iters, *jsonOut)
		return
	}

	if *topk {
		runTopKBench(*scale, resolveWorkers(*workers), *iters, *jsonOut)
		return
	}

	if *feedback {
		runFeedbackBench(*scale, *jsonOut)
		return
	}

	if *server {
		runServerBench(*scale, *sessions, *iters, *jsonOut)
		return
	}

	if *parallel || *batch {
		sweep, err := parseScales(*scales, *scale)
		if err != nil {
			fatal(err)
		}
		runExecBench(*batch, sweep, *workers, *iters, *jsonOut)
		return
	}

	fmt.Fprintf(os.Stderr, "building benchmark database at scale %.3f…\n", *scale)
	h, err := harness.New(*scale)
	if err != nil {
		fatal(err)
	}

	var reports []*harness.Report
	if *exp == "all" {
		reports, err = h.RunAll()
	} else {
		run, ok := h.Experiments()[*exp]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q; try -list", *exp))
		}
		var r *harness.Report
		r, err = run()
		reports = []*harness.Report{r}
	}
	if err != nil {
		fatal(err)
	}

	failed := 0
	for _, r := range reports {
		fmt.Println(r)
		if !r.Passed() {
			failed++
		}
	}
	fmt.Printf("%d/%d experiments reproduced the paper's shape\n", len(reports)-failed, len(reports))
	if failed > 0 {
		os.Exit(1)
	}
}

// parseScales turns the -scales list into a sweep, falling back to the
// single -scale value.
func parseScales(list string, single float64) ([]float64, error) {
	if list == "" {
		return []float64{single}, nil
	}
	var out []float64
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad -scales entry %q", s)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-scales lists no scale factors")
	}
	return out, nil
}

// runExecBench executes the serial-vs-parallel comparison (or, with
// batchMode, the tuple-vs-batch-vs-parallel comparison) at each scale in
// the sweep and exits nonzero when any executor mode diverges.
func runExecBench(batchMode bool, sweep []float64, workers, iters int, jsonOut bool) {
	workers = resolveWorkers(workers)
	if iters < 1 {
		iters = 1
	}
	name, file := "parallel", "BENCH_parallel.json"
	if batchMode {
		name, file = "batch", "BENCH_batch.json"
	}
	pass := true
	var payloads []any
	for _, scale := range sweep {
		fmt.Fprintf(os.Stderr, "building benchmark database at scale %.3f (%d workers, %d iters)…\n",
			scale, workers, iters)
		h, err := harness.NewParallel(scale, workers)
		if err != nil {
			fatal(err)
		}
		if batchMode {
			bench, err := h.RunBatchBench(workers, iters)
			if err != nil {
				fatal(err)
			}
			fmt.Print(bench)
			pass = pass && bench.Pass
			payloads = append(payloads, bench)
		} else {
			bench, err := h.RunParallelBenchIters(workers, iters)
			if err != nil {
				fatal(err)
			}
			fmt.Print(bench)
			pass = pass && bench.Pass
			payloads = append(payloads, bench)
		}
	}
	if jsonOut {
		data, err := marshalSweep(payloads)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(file, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "wrote", file)
	}
	if !pass {
		fmt.Fprintf(os.Stderr, "ppbench: %s executor diverged\n", name)
		os.Exit(1)
	}
}

// resolveWorkers maps the -workers flag to an effective fan-out.
func resolveWorkers(workers int) int {
	if workers > 0 {
		return workers
	}
	workers = runtime.GOMAXPROCS(0)
	if workers < 4 {
		// Exercise the parallel operators even on small machines; extra
		// workers beyond the core count still validate correctness.
		workers = 4
	}
	return workers
}

// runFaultBench executes the fault/timeout sweep and exits nonzero when any
// run violates the executor's failure contract.
func runFaultBench(scale float64, workers, seeds int, jsonOut bool) {
	fmt.Fprintf(os.Stderr, "building benchmark database at scale %.3f (%d workers, %d seeds)…\n",
		scale, workers, seeds)
	h, err := harness.NewParallel(scale, workers)
	if err != nil {
		fatal(err)
	}
	bench, err := h.RunFaultBench(workers, seeds)
	if err != nil {
		fatal(err)
	}
	fmt.Print(bench)
	if jsonOut {
		data, err := bench.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile("BENCH_faults.json", append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "wrote BENCH_faults.json")
	}
	if !bench.Pass {
		fmt.Fprintln(os.Stderr, "ppbench: fault sweep violated the failure contract")
		os.Exit(1)
	}
}

// runProfileBench executes the per-operator profiling bench (Queries 1–5
// plus the Figure 1 example, each unprofiled then profiled) and exits
// nonzero when profiling changes any result or charged cost.
func runProfileBench(scale float64, iters int, jsonOut bool) {
	fmt.Fprintf(os.Stderr, "building benchmark database at scale %.3f (%d iters)…\n", scale, iters)
	h, err := harness.New(scale)
	if err != nil {
		fatal(err)
	}
	bench, err := h.RunProfileBench(iters)
	if err != nil {
		fatal(err)
	}
	fmt.Print(bench)
	if jsonOut {
		data, err := bench.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile("BENCH_profile.json", append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "wrote BENCH_profile.json")
	}
	if !bench.Pass {
		fmt.Fprintln(os.Stderr, "ppbench: profiling changed results or charged costs")
		os.Exit(1)
	}
}

// runTransferBench executes the predicate-transfer off-vs-on comparison and
// exits nonzero when transfer changed any result set.
func runTransferBench(scale float64, workers, iters int, jsonOut bool) {
	fmt.Fprintf(os.Stderr, "building benchmark database at scale %.3f (%d workers, %d iters)…\n",
		scale, workers, iters)
	h, err := harness.NewParallel(scale, workers)
	if err != nil {
		fatal(err)
	}
	bench, err := h.RunTransferBench(workers, iters)
	if err != nil {
		fatal(err)
	}
	fmt.Print(bench)
	if jsonOut {
		data, err := bench.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile("BENCH_transfer.json", append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "wrote BENCH_transfer.json")
	}
	if !bench.Pass {
		fmt.Fprintln(os.Stderr, "ppbench: predicate transfer changed a result set")
		os.Exit(1)
	}
}

// runTopKBench executes the top-k-execution off-vs-on comparison and exits
// nonzero when it changed any result set or missed the flagship reduction.
func runTopKBench(scale float64, workers, iters int, jsonOut bool) {
	fmt.Fprintf(os.Stderr, "building benchmark database at scale %.3f (%d workers, %d iters)…\n",
		scale, workers, iters)
	h, err := harness.NewParallel(scale, workers)
	if err != nil {
		fatal(err)
	}
	bench, err := h.RunTopKBench(workers, iters)
	if err != nil {
		fatal(err)
	}
	fmt.Print(bench)
	if jsonOut {
		data, err := bench.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile("BENCH_topk.json", append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "wrote BENCH_topk.json")
	}
	if !bench.Pass {
		fmt.Fprintln(os.Stderr, "ppbench: top-k execution changed a result set or missed the 2x flagship reduction")
		os.Exit(1)
	}
}

// runFeedbackBench executes the estimate-error sweep plus the closed
// feedback loop and exits nonzero when any criterion fails.
func runFeedbackBench(scale float64, jsonOut bool) {
	fmt.Fprintf(os.Stderr, "building benchmark database at scale %.3f…\n", scale)
	h, err := harness.New(scale)
	if err != nil {
		fatal(err)
	}
	bench, err := h.RunFeedbackBench()
	if err != nil {
		fatal(err)
	}
	fmt.Print(bench)
	if jsonOut {
		data, err := bench.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile("BENCH_feedback.json", append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "wrote BENCH_feedback.json")
	}
	if !bench.Pass {
		fmt.Fprintln(os.Stderr, "ppbench: estimate-error/feedback bench failed a criterion")
		os.Exit(1)
	}
}

// runServerBench executes the multi-session server bench (N concurrent
// sessions over one DB through predplace.Server) and exits nonzero when any
// concurrent result diverged from its single-session baseline, the plan
// cache never hit, or admission control misbehaved.
func runServerBench(scale float64, sessionList string, iters int, jsonOut bool) {
	sessions, err := parseSessions(sessionList)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "building benchmark database at scale %.3f (sessions %v, %d iters)…\n",
		scale, sessions, iters)
	h, err := harness.New(scale)
	if err != nil {
		fatal(err)
	}
	bench, err := h.RunServerBench(sessions, iters)
	if err != nil {
		fatal(err)
	}
	fmt.Print(bench)
	if jsonOut {
		data, err := bench.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile("BENCH_server.json", append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "wrote BENCH_server.json")
	}
	if !bench.Pass {
		fmt.Fprintln(os.Stderr, "ppbench: multi-session server bench diverged or misbehaved")
		os.Exit(1)
	}
}

// parseSessions turns "1,2,4,8" into session counts.
func parseSessions(list string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -sessions entry %q", s)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-sessions lists no session counts")
	}
	return out, nil
}

// marshalSweep renders one bench as a single object (the historical file
// shape) and a multi-scale sweep as an array.
func marshalSweep(payloads []any) ([]byte, error) {
	if len(payloads) == 1 {
		return json.MarshalIndent(payloads[0], "", "  ")
	}
	return json.MarshalIndent(payloads, "", "  ")
}

func experimentIDs() []string {
	h := &harness.Harness{}
	ids := make([]string, 0, 12)
	for id := range h.Experiments() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppbench:", err)
	os.Exit(1)
}
