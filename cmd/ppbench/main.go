// Command ppbench regenerates every table and figure of "Practical Predicate
// Placement" (Hellerstein, SIGMOD 1994) against the reproduction's benchmark
// database.
//
// Usage:
//
//	ppbench [-scale 0.1] [-exp all|table1|table2|fig1|fig3|fig4|fig5|fig6|fig8|fig9|fig10|plantime|caching]
//
// Measurements are charged costs in random-I/O units (page I/Os plus
// function invocations × per-call cost — the paper's methodology), reported
// relative to the best plan per query.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"predplace/internal/harness"
)

func main() {
	scale := flag.Float64("scale", 0.1, "database scale factor (1.0 = the paper's ~110 MB)")
	exp := flag.String("exp", "all", "experiment id or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		fmt.Println("experiments: all", strings.Join(experimentIDs(), " "))
		return
	}

	fmt.Fprintf(os.Stderr, "building benchmark database at scale %.3f…\n", *scale)
	h, err := harness.New(*scale)
	if err != nil {
		fatal(err)
	}

	var reports []*harness.Report
	if *exp == "all" {
		reports, err = h.RunAll()
	} else {
		run, ok := h.Experiments()[*exp]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q; try -list", *exp))
		}
		var r *harness.Report
		r, err = run()
		reports = []*harness.Report{r}
	}
	if err != nil {
		fatal(err)
	}

	failed := 0
	for _, r := range reports {
		fmt.Println(r)
		if !r.Passed() {
			failed++
		}
	}
	fmt.Printf("%d/%d experiments reproduced the paper's shape\n", len(reports)-failed, len(reports))
	if failed > 0 {
		os.Exit(1)
	}
}

func experimentIDs() []string {
	h := &harness.Harness{}
	ids := make([]string, 0, 12)
	for id := range h.Experiments() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppbench:", err)
	os.Exit(1)
}
