// Command ppserver serves the predplace engine over HTTP: one shared
// database, any number of concurrent sessions, admission control with
// graceful shedding, and per-tenant charged-cost quotas.
//
// Usage:
//
//	ppserver [-addr :8080] [-scale 0.05] [-tables 1,2,3] [-caching]
//	         [-transfer] [-topk] [-parallelism N] [-budget F]
//	         [-max-concurrent N] [-max-queue N] [-queue-wait D]
//	         [-plan-cache N] [-quota tenant=F,...]
//
// API:
//
//	POST /query   {"tenant":"t","sql":"SELECT …","algorithm":"migration"}
//	GET  /stats   admission/quota/plan-cache counters
//	GET  /healthz liveness
//
// A shed query answers 503 with Retry-After; an exhausted tenant quota
// answers 429. SIGINT/SIGTERM drain in-flight queries before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"predplace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.Float64("scale", 0.05, "benchmark database scale factor")
	tables := flag.String("tables", "", "comma-separated benchmark tables to load (empty = all)")
	caching := flag.Bool("caching", false, "enable predicate caching")
	transfer := flag.Bool("transfer", false, "enable predicate transfer")
	topk := flag.Bool("topk", false, "enable top-k execution")
	parallelism := flag.Int("parallelism", 1, "intra-query worker fan-out (<0 = GOMAXPROCS)")
	budget := flag.Float64("budget", 0, "per-query charged-cost budget (0 = unlimited)")
	maxConc := flag.Int("max-concurrent", 0, "queries executing at once (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "admission queue depth (0 = 2x concurrent, <0 = none)")
	queueWait := flag.Duration("queue-wait", 100*time.Millisecond, "max wait for an execution slot")
	planCache := flag.Int("plan-cache", 0, "plan cache entries (0 = default 64, <0 = disabled)")
	quotas := flag.String("quota", "", "per-tenant quotas, tenant=cost comma-separated")
	flag.Parse()

	tabs, err := parseTables(*tables)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "building benchmark database at scale %.3f…\n", *scale)
	db, err := predplace.Open(predplace.Config{
		Scale: *scale, Tables: tabs,
		Caching: *caching, Transfer: *transfer, TopK: *topk,
		Parallelism: *parallelism, Budget: *budget,
		PlanCacheSize: *planCache,
	})
	if err != nil {
		fatal(err)
	}
	srv := predplace.NewServer(db, predplace.ServerConfig{
		MaxConcurrent: *maxConc,
		MaxQueue:      *maxQueue,
		QueueWait:     *queueWait,
	})
	if err := applyQuotas(srv, *quotas); err != nil {
		fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ppserver listening on %s\n", *addr)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	// Drain: stop accepting, let in-flight queries finish.
	fmt.Fprintln(os.Stderr, "ppserver draining…")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "ppserver served=%d shed=%d quota-rejected=%d dnf=%d plan-cache=%d/%d\n",
		st.Served, st.Shed, st.QuotaRejected, st.DNF, st.PlanHits, st.PlanHits+st.PlanMisses)
}

// parseTables turns "1,3,10" into table numbers.
func parseTables(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -tables entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// applyQuotas parses "alice=500,bob=100" and installs each quota.
func applyQuotas(srv *predplace.Server, s string) error {
	if s == "" {
		return nil
	}
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		name, val, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("bad -quota entry %q (want tenant=cost)", f)
		}
		q, err := strconv.ParseFloat(val, 64)
		if err != nil || q < 0 {
			return fmt.Errorf("bad -quota value %q", val)
		}
		srv.SetTenantQuota(name, q)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppserver:", err)
	os.Exit(1)
}
