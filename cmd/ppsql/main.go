// Command ppsql is an interactive SQL shell over the benchmark database.
// Statements are optimized with Predicate Migration by default; meta
// commands switch algorithms and toggle predicate caching:
//
//	\algo pushdown|pullup|pullrank|migration|ldl|ldl-ikkbz|exhaustive|robust|naive
//	\caching on|off
//	\transfer on|off
//	\topk on|off
//	\feedback on|off
//	\tables   \funcs   \help   \q
//
// Prefix a query with EXPLAIN to see its plan without running it, or with
// COMPARE to run it under every algorithm and tabulate relative costs.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"predplace"
	"predplace/internal/shell"
)

func main() {
	scale := flag.Float64("scale", 0.05, "database scale factor")
	caching := flag.Bool("caching", false, "start with predicate caching enabled")
	timeout := flag.Duration("timeout", 0, "per-query wall-clock deadline (e.g. 5s; 0 = none)")
	profile := flag.Bool("profile", false, "profile every query and print the per-operator tree as JSON")
	transfer := flag.Bool("transfer", false, "start with predicate transfer (Bloom pre-filtering) enabled")
	topk := flag.Bool("topk", false, "start with top-k execution (bounded-heap ORDER BY/LIMIT) enabled")
	feedback := flag.Bool("feedback", false, "start with feedback-driven statistics enabled")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "loading benchmark database at scale %.3f…\n", *scale)
	db, err := predplace.Open(predplace.Config{Scale: *scale, Caching: *caching, Timeout: *timeout, Profile: *profile, Transfer: *transfer, TopK: *topk, Feedback: *feedback})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppsql:", err)
		os.Exit(1)
	}
	sess := shell.New(db)
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("ppsql> ")
	for in.Scan() {
		if !sess.Execute(in.Text(), os.Stdout) {
			return
		}
		fmt.Print("ppsql> ")
	}
}
