// Command ppexplain shows the plan every placement algorithm chooses for one
// SQL query over the benchmark database, with estimated costs — the fastest
// way to see the algorithms disagree.
//
// Usage:
//
//	ppexplain [-scale 0.05] [-caching] 'SELECT * FROM t3, t10 WHERE t3.ua1 = t10.ua1 AND costly100(t10.u20)'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"predplace"
)

func main() {
	scale := flag.Float64("scale", 0.05, "database scale factor")
	caching := flag.Bool("caching", false, "plan with predicate caching enabled")
	transfer := flag.Bool("transfer", false, "plan and run with predicate transfer (Bloom pre-filtering) enabled")
	topk := flag.Bool("topk", false, "plan and run with top-k execution (bounded-heap ORDER BY/LIMIT) enabled")
	run := flag.Bool("run", false, "also execute each plan and report charged costs")
	analyze := flag.Bool("analyze", false, "execute each plan and annotate nodes with est/actual rows (EXPLAIN ANALYZE)")
	jsonOut := flag.Bool("json", false, "with -analyze, also print each per-operator profile tree as JSON")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ppexplain [flags] 'SELECT …'")
		os.Exit(2)
	}
	sql := flag.Arg(0)

	db, err := predplace.Open(predplace.Config{Scale: *scale, Caching: *caching, Transfer: *transfer, TopK: *topk})
	if err != nil {
		fatal(err)
	}

	if *analyze {
		for _, a := range predplace.Algorithms() {
			res, err := db.Query("EXPLAIN ANALYZE "+sql, a)
			if err != nil {
				fatal(fmt.Errorf("%v: %w", a, err))
			}
			fmt.Printf("-- %s\n%s\n", a, res.Plan)
			if *jsonOut && res.Profile != nil {
				buf, err := json.MarshalIndent(res.Profile, "", "  ")
				if err != nil {
					fatal(err)
				}
				fmt.Printf("%s\n", buf)
			}
		}
		return
	}
	if *run {
		algos := predplace.Algorithms()
		results, err := db.CompareAll(sql, algos...)
		if err != nil {
			fatal(err)
		}
		for i, a := range algos {
			fmt.Printf("-- %s (est %.0f, charged %.0f)\n%s\n",
				a, results[i].EstCost, results[i].Stats.Charged(), results[i].Plan)
		}
		fmt.Println(predplace.FormatComparison(algos, results))
		return
	}
	for _, a := range predplace.Algorithms() {
		p, err := db.Explain(sql, a)
		if err != nil {
			fatal(fmt.Errorf("%v: %w", a, err))
		}
		fmt.Printf("-- %s\n%s\n", a, p)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppexplain:", err)
	os.Exit(1)
}
