// Command pplint runs the repository's static-analysis suite (internal/lint)
// over every package of the module: float-equality hazards in rank/cost
// code, iterator Close-chain leaks, dropped errors, non-exhaustive enum
// switches, and plan.Node contract violations.
//
// Usage:
//
//	go run ./cmd/pplint ./...
//	go run ./cmd/pplint -disable errdrop ./...
//	go run ./cmd/pplint -enable floatcmp,closechain ./internal/...
//	go run ./cmd/pplint -list
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load/usage failure.
// Diagnostics print as file:line:col: [analyzer] message. Suppress a single
// finding with a `//pplint:ignore <analyzer> <reason>` comment on or above
// the flagged line.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"predplace/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("pplint", flag.ContinueOnError)
	var (
		enable  = fs.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable = fs.String("disable", "", "comma-separated analyzers to skip")
		list    = fs.Bool("list", false, "list available analyzers and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pplint [-enable a,b] [-disable a,b] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pplint:", err)
		return 2
	}

	// Package patterns narrow which loaded packages are inspected; the whole
	// module is always loaded (type-checking needs every dependency anyway).
	start := "."
	if fs.NArg() > 0 {
		start = strings.TrimSuffix(strings.TrimSuffix(fs.Arg(0), "..."), "/")
		if start == "" {
			start = "."
		}
	}
	root, err := lint.FindModuleRoot(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pplint:", err)
		return 2
	}
	pkgs, err := lint.LoadRepo(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pplint:", err)
		return 2
	}
	pkgs = filterPackages(pkgs, fs.Args())
	if len(pkgs) == 0 {
		fmt.Fprintf(os.Stderr, "pplint: no packages match %s\n", strings.Join(fs.Args(), " "))
		return 2
	}

	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pplint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pplint: %d issue(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers applies -enable/-disable to the registry.
func selectAnalyzers(enable, disable string) ([]*lint.Analyzer, error) {
	chosen := lint.Analyzers()
	if enable != "" {
		chosen = chosen[:0]
		for _, name := range splitList(enable) {
			a, ok := lint.ByName(name)
			if !ok {
				return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			chosen = append(chosen, a)
		}
	}
	if disable != "" {
		skip := map[string]bool{}
		for _, name := range splitList(disable) {
			if _, ok := lint.ByName(name); !ok {
				return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			skip[name] = true
		}
		kept := chosen[:0]
		for _, a := range chosen {
			if !skip[a.Name] {
				kept = append(kept, a)
			}
		}
		chosen = kept
	}
	if len(chosen) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return chosen, nil
}

// filterPackages keeps packages whose directory falls under any of the
// argument patterns (a `...` suffix means the whole subtree; no args or
// `./...` means everything).
func filterPackages(pkgs []*lint.Package, patterns []string) []*lint.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var prefixes []string
	for _, p := range patterns {
		p = strings.TrimSuffix(p, "...")
		p = strings.TrimSuffix(p, "/")
		p = strings.TrimPrefix(p, "./")
		if p == "" || p == "." {
			return pkgs
		}
		prefixes = append(prefixes, p)
	}
	var out []*lint.Package
	for _, pkg := range pkgs {
		for _, pre := range prefixes {
			// Match against the import-path tail below the module.
			tail := pkg.Path
			if i := strings.Index(tail, "/"); i >= 0 {
				tail = tail[i+1:]
			} else {
				tail = "."
			}
			if tail == pre || strings.HasPrefix(tail, pre+"/") || strings.HasPrefix(tail, pre) {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

// splitList splits a comma-separated flag value.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
