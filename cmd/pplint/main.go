// Command pplint runs the repository's static-analysis suite (internal/lint)
// over every package of the module: the per-statement matchers (float
// equality, Close chains, dropped errors, enum switches, plan/exec
// contracts) plus the CFG/dataflow analyzers (pin balance, charge-once
// accounting, atomic consistency, lock balance) and the suppression audit.
//
// Usage:
//
//	go run ./cmd/pplint ./...
//	go run ./cmd/pplint -skip errdrop ./...
//	go run ./cmd/pplint -only pinbalance,lockbalance ./internal/...
//	go run ./cmd/pplint -json ./... | jq .
//	go run ./cmd/pplint -list
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load/usage failure.
// Diagnostics print as file:line:col: [analyzer] message, or as a JSON array
// of objects with file/line/col/analyzer/message fields under -json (an
// empty run prints []). Suppress a single finding with a
// `//pplint:ignore <analyzer> <reason>` comment on or above the flagged
// line; the suppress audit requires the reason and flags stale directives.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"predplace/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("pplint", flag.ContinueOnError)
	var (
		only    = fs.String("only", "", "comma-separated analyzers to run (default: all)")
		skip    = fs.String("skip", "", "comma-separated analyzers to skip")
		enable  = fs.String("enable", "", "alias for -only (kept for compatibility)")
		disable = fs.String("disable", "", "alias for -skip (kept for compatibility)")
		jsonOut = fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
		list    = fs.Bool("list", false, "list available analyzers and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pplint [-only a,b] [-skip a,b] [-json] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	onlyList, err := mergeFilter("-only/-enable", *only, *enable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pplint:", err)
		return 2
	}
	skipList, err := mergeFilter("-skip/-disable", *skip, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pplint:", err)
		return 2
	}
	analyzers, err := selectAnalyzers(onlyList, skipList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pplint:", err)
		return 2
	}

	// Package patterns narrow which loaded packages are inspected; the whole
	// module is always loaded (type-checking needs every dependency anyway).
	start := "."
	if fs.NArg() > 0 {
		start = strings.TrimSuffix(strings.TrimSuffix(fs.Arg(0), "..."), "/")
		if start == "" {
			start = "."
		}
	}
	root, err := lint.FindModuleRoot(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pplint:", err)
		return 2
	}
	pkgs, err := lint.LoadRepo(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pplint:", err)
		return 2
	}
	pkgs = filterPackages(pkgs, fs.Args())
	if len(pkgs) == 0 {
		fmt.Fprintf(os.Stderr, "pplint: no packages match %s\n", strings.Join(fs.Args(), " "))
		return 2
	}

	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pplint:", err)
		return 2
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "pplint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pplint: %d issue(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonDiagnostic is the machine-readable diagnostic shape, stable for CI and
// editor consumers.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits the diagnostics as one JSON array ([] when clean).
func writeJSON(w *os.File, diags []lint.Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// mergeFilter combines a primary flag with its compatibility alias; setting
// both to different lists is ambiguous and rejected.
func mergeFilter(label, primary, alias string) (string, error) {
	switch {
	case primary == "":
		return alias, nil
	case alias == "" || alias == primary:
		return primary, nil
	default:
		return "", fmt.Errorf("conflicting %s values %q and %q", label, primary, alias)
	}
}

// selectAnalyzers applies -only/-skip to the registry.
func selectAnalyzers(only, skip string) ([]*lint.Analyzer, error) {
	chosen := lint.Analyzers()
	if only != "" {
		chosen = chosen[:0]
		for _, name := range splitList(only) {
			a, ok := lint.ByName(name)
			if !ok {
				return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			chosen = append(chosen, a)
		}
	}
	if skip != "" {
		skipSet := map[string]bool{}
		for _, name := range splitList(skip) {
			if _, ok := lint.ByName(name); !ok {
				return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			skipSet[name] = true
		}
		kept := chosen[:0]
		for _, a := range chosen {
			if !skipSet[a.Name] {
				kept = append(kept, a)
			}
		}
		chosen = kept
	}
	if len(chosen) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return chosen, nil
}

// filterPackages keeps packages whose directory falls under any of the
// argument patterns (a `...` suffix means the whole subtree; no args or
// `./...` means everything).
func filterPackages(pkgs []*lint.Package, patterns []string) []*lint.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var prefixes []string
	for _, p := range patterns {
		p = strings.TrimSuffix(p, "...")
		p = strings.TrimSuffix(p, "/")
		p = strings.TrimPrefix(p, "./")
		if p == "" || p == "." {
			return pkgs
		}
		prefixes = append(prefixes, p)
	}
	var out []*lint.Package
	for _, pkg := range pkgs {
		for _, pre := range prefixes {
			// Match against the import-path tail below the module.
			tail := pkg.Path
			if i := strings.Index(tail, "/"); i >= 0 {
				tail = tail[i+1:]
			} else {
				tail = "."
			}
			if tail == pre || strings.HasPrefix(tail, pre+"/") || strings.HasPrefix(tail, pre) {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

// splitList splits a comma-separated flag value.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
