package predplace_test

// The multi-session stress test: N goroutines run a mixed query workload
// on one DB while another goroutine churns the execution knobs, and every
// result must equal its serial baseline — rows and charged cost both. This
// is the engine's isolation contract under the race detector (check.sh
// runs the package with -race): per-query I/O accounting, UDF counters,
// predicate-cache scope, and knob snapshots never let one session's
// activity leak into another's measurement.

import (
	"sync"
	"testing"

	"predplace"
)

var sessionQueries = []string{
	"SELECT * FROM t1, t2 WHERE t1.ua1 = t2.ua1 AND costly10(t1.u10)",
	"SELECT * FROM t1 WHERE costly10(t1.u10) AND t1.u20 < 15",
	"SELECT COUNT(*) FROM t2 WHERE costly100(t2.u20)",
	"SELECT t2.a1, t2.ua1 FROM t2 WHERE t2.u10 = 3",
}

func TestConcurrentSessionsMatchSerial(t *testing.T) {
	db, err := predplace.Open(predplace.Config{Scale: 0.01, Tables: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	sessions, iters := 8, 10
	if testing.Short() {
		sessions, iters = 4, 4
	}

	for _, caching := range []bool{false, true} {
		// Serial baselines under this leg's caching setting, default knobs.
		db.SetCaching(caching)
		db.SetParallelism(1)
		db.SetBatchSize(0)
		db.SetProfile(false)
		type baseline struct {
			rows    []string
			charged float64
		}
		base := make([]baseline, len(sessionQueries))
		for i, sql := range sessionQueries {
			res, err := db.Query(sql, predplace.Migration)
			if err != nil {
				t.Fatalf("caching=%v baseline %q: %v", caching, sql, err)
			}
			base[i] = baseline{rows: canonRows(res), charged: res.Stats.Charged()}
		}

		// Knob churn: batching and profiling never change results or charged
		// cost; neither does parallelism with caching off. With caching on,
		// parallel workers' interleaving changes which tuple warms a cache
		// entry first, so that leg pins parallelism at 1 and churns only the
		// invariant knobs.
		stop := make(chan struct{})
		var churn sync.WaitGroup
		churn.Add(1)
		go func() {
			defer churn.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				db.SetBatchSize([]int{0, 1, 7, 64}[i%4])
				db.SetProfile(i%3 == 0)
				if !caching {
					db.SetParallelism([]int{1, 2, 4}[i%3])
				}
			}
		}()

		var wg sync.WaitGroup
		errs := make(chan error, sessions)
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func(offset int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					qi := (offset + i) % len(sessionQueries)
					res, err := db.Query(sessionQueries[qi], predplace.Migration)
					if err != nil {
						errs <- err
						return
					}
					if got := res.Stats.Charged(); got != base[qi].charged {
						t.Errorf("caching=%v session %d %q: charged %v, serial %v",
							caching, offset, sessionQueries[qi], got, base[qi].charged)
						return
					}
					got := canonRows(res)
					want := base[qi].rows
					if len(got) != len(want) {
						t.Errorf("caching=%v session %d %q: %d rows, serial %d",
							caching, offset, sessionQueries[qi], len(got), len(want))
						return
					}
					for k := range got {
						if got[k] != want[k] {
							t.Errorf("caching=%v session %d %q: row %d differs from serial",
								caching, offset, sessionQueries[qi], k)
							return
						}
					}
				}
			}(s)
		}
		wg.Wait()
		close(stop)
		churn.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("caching=%v: %v", caching, err)
		}
		db.SetParallelism(1)
		db.SetBatchSize(0)
		db.SetProfile(false)
		if got := db.PinnedFrames(); got != 0 {
			t.Fatalf("caching=%v: %d frames pinned after the stress", caching, got)
		}
	}
}

// TestConcurrentPreparedExec executes one PreparedStatement from many
// goroutines at once: the shared immutable plan must produce the serial
// result in every execution.
func TestConcurrentPreparedExec(t *testing.T) {
	db, err := predplace.Open(predplace.Config{Scale: 0.01, Tables: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	sql := "SELECT * FROM t1, t2 WHERE t1.ua1 = t2.ua1 AND costly10(t1.u10)"
	p, err := db.Prepare(sql, predplace.Migration)
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	baseRows, baseCharged := canonRows(base), base.Stats.Charged()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := p.Exec()
				if err != nil {
					t.Error(err)
					return
				}
				if res.Stats.Charged() != baseCharged {
					t.Errorf("charged %v, want %v", res.Stats.Charged(), baseCharged)
					return
				}
				got := canonRows(res)
				for k := range got {
					if got[k] != baseRows[k] {
						t.Errorf("row %d differs across concurrent Exec", k)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
