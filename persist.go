package predplace

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"

	"predplace/internal/btree"
	"predplace/internal/catalog"
	"predplace/internal/datagen"
	"predplace/internal/expr"
	"predplace/internal/storage"
)

// snapshot is the persisted database manifest: table metadata plus a raw
// disk image. User-defined functions are code and must be re-registered
// after OpenFile; the costlyN benchmark family is restored automatically.
type snapshot struct {
	Tables []tableManifest
}

// tableManifest is one table's persisted metadata.
type tableManifest struct {
	Name       string
	Columns    []catalog.Column
	Card       int64
	TupleBytes int
	HeapFile   uint32
	IndexCols  []string
}

// Save writes the database (catalog metadata and every page) to path. The
// snapshot is self-contained except for user-defined functions, which must
// be re-registered after OpenFile.
func (d *DB) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var snap snapshot
	for _, tab := range d.inner.Cat.Tables() {
		if tab.Heap == nil {
			return fmt.Errorf("predplace: table %s has no storage; cannot snapshot", tab.Name)
		}
		m := tableManifest{
			Name:       tab.Name,
			Columns:    tab.Columns,
			Card:       tab.Card,
			TupleBytes: tab.TupleBytes,
			HeapFile:   uint32(tab.Heap.FileID()),
		}
		for col := range tab.Indexes {
			m.IndexCols = append(m.IndexCols, col)
		}
		sort.Strings(m.IndexCols)
		snap.Tables = append(snap.Tables, m)
	}
	// The manifest is length-prefixed: gob decoders read ahead, which would
	// otherwise swallow the start of the page image.
	var manifest bytes.Buffer
	if err := gob.NewEncoder(&manifest).Encode(&snap); err != nil {
		return fmt.Errorf("predplace: encoding manifest: %w", err)
	}
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(manifest.Len()))
	if _, err := f.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := f.Write(manifest.Bytes()); err != nil {
		return err
	}
	if err := d.inner.Disk.Serialize(f); err != nil {
		return fmt.Errorf("predplace: writing pages: %w", err)
	}
	return f.Sync()
}

// OpenFile restores a database saved with Save. Indexes are rebuilt from the
// heap data (they are derived state); statistics come from the manifest.
// Standard benchmark functions are registered; user-defined functions must
// be re-registered by the caller.
func OpenFile(path string, cfg Config) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var lenBuf [8]byte
	if _, err := io.ReadFull(f, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("predplace: truncated snapshot: %w", err)
	}
	mlen := binary.LittleEndian.Uint64(lenBuf[:])
	if mlen > 1<<30 {
		return nil, fmt.Errorf("predplace: implausible manifest size %d", mlen)
	}
	manifest := make([]byte, mlen)
	if _, err := io.ReadFull(f, manifest); err != nil {
		return nil, fmt.Errorf("predplace: truncated manifest: %w", err)
	}
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(manifest)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("predplace: decoding manifest: %w", err)
	}
	acct := &storage.Accountant{}
	disk, err := storage.ReadDisk(f, acct)
	if err != nil {
		return nil, err
	}
	pool := cfg.PoolPages
	if pool == 0 {
		pool = 1024
	}
	workers := resolveParallelism(cfg.Parallelism)
	inner := &datagen.DB{
		Disk: disk,
		Pool: storage.NewShardedBufferPool(disk, pool, poolShards(workers)),
		Cat:  catalog.New(),
	}
	if err := datagen.RegisterStandardFuncs(inner.Cat); err != nil {
		return nil, err
	}
	for _, m := range snap.Tables {
		heap, err := storage.OpenHeapFile(inner.Pool, storage.FileID(m.HeapFile))
		if err != nil {
			return nil, fmt.Errorf("predplace: table %s: %w", m.Name, err)
		}
		codec, err := catalog.NewRowCodec(m.Columns)
		if err != nil {
			return nil, fmt.Errorf("predplace: table %s: %w", m.Name, err)
		}
		tab := &catalog.Table{
			Name:       m.Name,
			Columns:    m.Columns,
			Heap:       heap,
			Indexes:    map[string]*btree.Tree{},
			Card:       m.Card,
			TupleBytes: m.TupleBytes,
			Codec:      codec,
		}
		if err := rebuildIndexes(inner, tab, m.IndexCols); err != nil {
			return nil, err
		}
		if err := inner.Cat.AddTable(tab); err != nil {
			return nil, err
		}
	}
	// Restoration I/O is not part of any measured query.
	inner.Disk.Accountant().Reset()
	inner.Pool.ResetCounters()
	planEntries := cfg.PlanCacheSize
	if planEntries == 0 {
		planEntries = DefaultPlanCacheSize
	}
	return &DB{
		inner: inner,
		k: knobs{
			caching: cfg.Caching, cacheScope: pcacheScope(cfg),
			cacheMax: cfg.CacheMaxEntries, budget: cfg.Budget,
			parallelism: workers, batchSize: cfg.BatchSize,
			timeout: cfg.Timeout, profile: cfg.Profile,
			transfer: cfg.Transfer, topk: cfg.TopK,
		},
		validate: os.Getenv("PPLINT_VALIDATE") == "1",
		plans:    newPlanCache(planEntries),
	}, nil
}

// rebuildIndexes scans the heap and reconstructs each index column's B-tree.
func rebuildIndexes(db *datagen.DB, tab *catalog.Table, cols []string) error {
	if len(cols) == 0 {
		return nil
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		ci := tab.ColIndex(c)
		if ci < 0 {
			return fmt.Errorf("predplace: table %s: index column %s missing", tab.Name, c)
		}
		idx[i] = ci
		tab.Indexes[c] = btree.New(db.Disk.Accountant())
	}
	it := tab.Heap.Scan()
	defer it.Close()
	for {
		rec, tid, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		for i, c := range cols {
			v, err := tab.Codec.DecodeCol(rec, idx[i])
			if err != nil {
				return err
			}
			if v.Kind == expr.TInt {
				tab.Indexes[c].Insert(v.I, tid)
			}
		}
	}
}
