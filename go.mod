module predplace

go 1.22
