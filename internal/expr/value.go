// Package expr defines the runtime value model shared by the storage engine,
// the executor, and the optimizer: typed values, rows, comparison operators,
// and user-defined function descriptors with per-call cost metadata and
// invocation counting (the measurement methodology of Hellerstein, SIGMOD '94:
// expensive functions perform no work; the harness counts invocations and
// multiplies by the function's declared cost in random-I/O units).
package expr

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strconv"
)

// Type identifies the runtime type of a Value.
type Type uint8

// Supported value types. The benchmark schema uses integers for all join and
// predicate columns and a fixed-width string filler, matching the paper's
// 100-byte tuples.
const (
	TNull Type = iota
	TInt
	TString
	TBool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TNull:
		return "null"
	case TInt:
		return "int"
	case TString:
		return "string"
	case TBool:
		return "bool"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Value is a single typed datum. The zero Value is NULL.
type Value struct {
	Kind Type
	I    int64
	S    string
}

// Null is the NULL value.
var Null = Value{Kind: TNull}

// I returns an integer Value.
func I(v int64) Value { return Value{Kind: TInt, I: v} }

// S returns a string Value.
func S(s string) Value { return Value{Kind: TString, S: s} }

// B returns a boolean Value.
func B(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{Kind: TBool, I: i}
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == TNull }

// Bool interprets v as a three-valued boolean: (truth, known). NULL and
// non-boolean values are unknown.
func (v Value) Bool() (bool, bool) {
	if v.Kind == TBool {
		return v.I != 0, true
	}
	return false, false
}

// Compare orders two values. NULLs sort first; values of different types
// compare by type tag (the planner never produces mixed-type comparisons for
// well-typed queries, but sorting must be total).
func (v Value) Compare(o Value) int {
	if v.Kind != o.Kind {
		return int(v.Kind) - int(o.Kind)
	}
	switch v.Kind {
	case TNull:
		return 0
	case TInt, TBool:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
		return 0
	case TString:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
		return 0
	}
	return 0
}

// Equal reports whether two values are equal under Compare.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Hash returns a stable 64-bit hash of the value, suitable for hash joins and
// predicate-cache keys.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	var buf [9]byte
	buf[0] = byte(v.Kind)
	switch v.Kind {
	case TInt, TBool:
		binary.LittleEndian.PutUint64(buf[1:], uint64(v.I))
		h.Write(buf[:])
	case TString:
		h.Write(buf[:1])
		h.Write([]byte(v.S))
	default:
		h.Write(buf[:1])
	}
	return h.Sum64()
}

// AppendKey appends a self-delimiting encoding of v to dst; used for
// predicate-cache keys and hash-join buckets over multi-column bindings.
func (v Value) AppendKey(dst []byte) []byte {
	dst = append(dst, byte(v.Kind))
	switch v.Kind {
	case TNull:
		// The kind byte alone encodes NULL.
	case TInt, TBool:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(v.I))
		dst = append(dst, buf[:]...)
	case TString:
		var buf [4]byte
		binary.BigEndian.PutUint32(buf[:], uint32(len(v.S)))
		dst = append(dst, buf[:]...)
		dst = append(dst, v.S...)
	}
	return dst
}

// String renders the value for EXPLAIN output and error messages.
func (v Value) String() string {
	switch v.Kind {
	case TNull:
		return "NULL"
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case TString:
		return strconv.Quote(v.S)
	}
	return "?"
}

// Row is a sequence of values, one per output column of an operator.
type Row []Value

// Clone returns a copy of the row that does not alias r's backing array.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Concat returns a new row holding r followed by s.
func (r Row) Concat(s Row) Row {
	out := make(Row, 0, len(r)+len(s))
	out = append(out, r...)
	out = append(out, s...)
	return out
}

// CmpOp is a comparison operator in a simple predicate.
type CmpOp uint8

// Comparison operators supported in WHERE clauses.
const (
	OpEQ CmpOp = iota + 1
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	}
	return "?"
}

// Apply evaluates `a op b` with SQL NULL semantics (NULL operand => NULL).
func (op CmpOp) Apply(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	c := a.Compare(b)
	switch op {
	case OpEQ:
		return B(c == 0)
	case OpNE:
		return B(c != 0)
	case OpLT:
		return B(c < 0)
	case OpLE:
		return B(c <= 0)
	case OpGT:
		return B(c > 0)
	case OpGE:
		return B(c >= 0)
	}
	return Null
}

// Flip returns the operator with operands swapped: a op b == b op.Flip() a.
func (op CmpOp) Flip() CmpOp {
	switch op {
	case OpEQ, OpNE:
		return op // symmetric
	case OpLT:
		return OpGT
	case OpLE:
		return OpGE
	case OpGT:
		return OpLT
	case OpGE:
		return OpLE
	}
	return op
}
