package expr

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructors(t *testing.T) {
	if v := I(42); v.Kind != TInt || v.I != 42 {
		t.Fatalf("I(42) = %+v", v)
	}
	if v := S("x"); v.Kind != TString || v.S != "x" {
		t.Fatalf("S(x) = %+v", v)
	}
	if v := B(true); v.Kind != TBool || v.I != 1 {
		t.Fatalf("B(true) = %+v", v)
	}
	if v := B(false); v.I != 0 {
		t.Fatalf("B(false) = %+v", v)
	}
	if !Null.IsNull() || Null.Kind != TNull {
		t.Fatalf("Null = %+v", Null)
	}
	var zero Value
	if !zero.IsNull() {
		t.Fatal("zero Value should be NULL")
	}
}

func TestBool(t *testing.T) {
	if b, ok := B(true).Bool(); !ok || !b {
		t.Fatal("B(true).Bool()")
	}
	if b, ok := B(false).Bool(); !ok || b {
		t.Fatal("B(false).Bool()")
	}
	if _, ok := Null.Bool(); ok {
		t.Fatal("Null.Bool() should be unknown")
	}
	if _, ok := I(1).Bool(); ok {
		t.Fatal("int is not a boolean")
	}
}

func TestCompareInts(t *testing.T) {
	cases := []struct {
		a, b int64
		want int
	}{
		{1, 2, -1}, {2, 1, 1}, {5, 5, 0},
		{math.MinInt64, math.MaxInt64, -1},
	}
	for _, c := range cases {
		got := I(c.a).Compare(I(c.b))
		if sign(got) != c.want {
			t.Errorf("Compare(%d,%d) = %d, want sign %d", c.a, c.b, got, c.want)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestCompareStrings(t *testing.T) {
	if S("a").Compare(S("b")) >= 0 {
		t.Fatal("a < b")
	}
	if S("b").Compare(S("a")) <= 0 {
		t.Fatal("b > a")
	}
	if !S("a").Equal(S("a")) {
		t.Fatal("a == a")
	}
}

func TestCompareMixedTypesTotal(t *testing.T) {
	// Mixed-type comparisons must be antisymmetric so sorting is total.
	vals := []Value{Null, I(1), S("x"), B(true)}
	for _, a := range vals {
		for _, b := range vals {
			if sign(a.Compare(b)) != -sign(b.Compare(a)) {
				t.Errorf("Compare not antisymmetric for %v,%v", a, b)
			}
		}
	}
}

func TestCompareAntisymmetricQuick(t *testing.T) {
	f := func(a, b int64) bool {
		return sign(I(a).Compare(I(b))) == -sign(I(b).Compare(I(a)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareTransitiveQuick(t *testing.T) {
	f := func(a, b, c int64) bool {
		x, y, z := I(a), I(b), I(c)
		if x.Compare(y) <= 0 && y.Compare(z) <= 0 {
			return x.Compare(z) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashEqualValuesQuick(t *testing.T) {
	f := func(a int64) bool { return I(a).Hash() == I(a).Hash() }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(s string) bool { return S(s).Hash() == S(s).Hash() }
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashDistinguishesKinds(t *testing.T) {
	if I(1).Hash() == B(true).Hash() {
		t.Fatal("int 1 and bool true should hash differently")
	}
}

func TestAppendKeyInjectiveQuick(t *testing.T) {
	f := func(a, b int64, s, u string) bool {
		ka := I(a).AppendKey(S(s).AppendKey(nil))
		kb := I(b).AppendKey(S(u).AppendKey(nil))
		same := a == b && s == u
		return same == (string(ka) == string(kb))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendKeySelfDelimiting(t *testing.T) {
	// ("ab","c") must not collide with ("a","bc").
	k1 := S("c").AppendKey(S("ab").AppendKey(nil))
	k2 := S("bc").AppendKey(S("a").AppendKey(nil))
	if string(k1) == string(k2) {
		t.Fatal("AppendKey is not self-delimiting")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL": Null, "7": I(7), `"hi"`: S("hi"), "true": B(true), "false": B(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%+v) = %q, want %q", v, got, want)
		}
	}
}

func TestTypeString(t *testing.T) {
	for ty, want := range map[Type]string{TNull: "null", TInt: "int", TString: "string", TBool: "bool"} {
		if ty.String() != want {
			t.Errorf("Type(%d).String() = %q want %q", ty, ty.String(), want)
		}
	}
}

func TestRowCloneConcat(t *testing.T) {
	r := Row{I(1), I(2)}
	c := r.Clone()
	c[0] = I(9)
	if r[0].I != 1 {
		t.Fatal("Clone aliases original")
	}
	cat := r.Concat(Row{S("x")})
	if len(cat) != 3 || cat[2].S != "x" || cat[0].I != 1 {
		t.Fatalf("Concat = %v", cat)
	}
}

func TestCmpOpApply(t *testing.T) {
	type tc struct {
		op   CmpOp
		a, b int64
		want bool
	}
	cases := []tc{
		{OpEQ, 1, 1, true}, {OpEQ, 1, 2, false},
		{OpNE, 1, 2, true}, {OpNE, 1, 1, false},
		{OpLT, 1, 2, true}, {OpLT, 2, 2, false},
		{OpLE, 2, 2, true}, {OpLE, 3, 2, false},
		{OpGT, 3, 2, true}, {OpGT, 2, 2, false},
		{OpGE, 2, 2, true}, {OpGE, 1, 2, false},
	}
	for _, c := range cases {
		got, ok := c.op.Apply(I(c.a), I(c.b)).Bool()
		if !ok || got != c.want {
			t.Errorf("%d %s %d = %v (known=%v), want %v", c.a, c.op, c.b, got, ok, c.want)
		}
	}
}

func TestCmpOpNullSemantics(t *testing.T) {
	for _, op := range []CmpOp{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE} {
		if !op.Apply(Null, I(1)).IsNull() || !op.Apply(I(1), Null).IsNull() {
			t.Errorf("op %s should yield NULL on NULL operand", op)
		}
	}
}

func TestCmpOpFlipQuick(t *testing.T) {
	ops := []CmpOp{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE}
	f := func(a, b int64, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		x, y := I(a), I(b)
		return op.Apply(x, y).Equal(op.Flip().Apply(y, x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCmpOpString(t *testing.T) {
	want := map[CmpOp]string{OpEQ: "=", OpNE: "<>", OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">="}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("CmpOp(%d).String() = %q want %q", op, op.String(), s)
		}
	}
}
