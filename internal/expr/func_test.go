package expr

import (
	"math"
	"testing"
)

func TestFuncInvokeCounts(t *testing.T) {
	f := NewCostly("costly10", 1, 10, 0.5, 1)
	if f.Calls() != 0 {
		t.Fatal("fresh function should have zero calls")
	}
	for i := 0; i < 7; i++ {
		f.Invoke([]Value{I(int64(i))})
	}
	if f.Calls() != 7 {
		t.Fatalf("Calls = %d, want 7", f.Calls())
	}
	if got := f.ChargedCost(); got != 70 {
		t.Fatalf("ChargedCost = %v, want 70", got)
	}
	f.ResetCalls()
	if f.Calls() != 0 {
		t.Fatal("ResetCalls failed")
	}
}

func TestBoolStubDeterministic(t *testing.T) {
	f := BoolStub(0.5, 99)
	for i := int64(0); i < 100; i++ {
		a := f([]Value{I(i)})
		b := f([]Value{I(i)})
		if !a.Equal(b) {
			t.Fatalf("stub not deterministic at %d: %v vs %v", i, a, b)
		}
	}
}

func TestBoolStubNullPropagation(t *testing.T) {
	f := BoolStub(0.5, 1)
	if !f([]Value{Null}).IsNull() {
		t.Fatal("NULL argument should yield NULL")
	}
	if !f([]Value{I(1), Null}).IsNull() {
		t.Fatal("any NULL argument should yield NULL")
	}
}

func TestBoolStubSelectivity(t *testing.T) {
	for _, sel := range []float64{0.1, 0.3, 0.5, 0.9} {
		f := BoolStub(sel, 7)
		n, hits := 20000, 0
		for i := 0; i < n; i++ {
			if b, ok := f([]Value{I(int64(i))}).Bool(); ok && b {
				hits++
			}
		}
		got := float64(hits) / float64(n)
		if math.Abs(got-sel) > 0.02 {
			t.Errorf("selectivity %v: observed %v", sel, got)
		}
	}
}

func TestBoolStubSeedsDiffer(t *testing.T) {
	f1 := BoolStub(0.5, 1)
	f2 := BoolStub(0.5, 2)
	same := 0
	for i := int64(0); i < 1000; i++ {
		if f1([]Value{I(i)}).Equal(f2([]Value{I(i)})) {
			same++
		}
	}
	if same > 700 || same < 300 {
		t.Fatalf("seeds should decorrelate stubs; %d/1000 agreed", same)
	}
}

func TestNewCostlyMetadata(t *testing.T) {
	f := NewCostly("costly100", 2, 100, 0.25, 3)
	if f.Name != "costly100" || f.Arity != 2 || f.Cost != 100 || f.Selectivity != 0.25 || !f.Cacheable {
		t.Fatalf("metadata wrong: %+v", f)
	}
	if f.String() == "" {
		t.Fatal("String should render")
	}
}
