package expr

import (
	"fmt"
	"sync/atomic"

	"predplace/internal/storage"
)

// FuncDef describes a user-defined function usable in predicates. The paper's
// methodology (§2) benchmarks expensive functions without executing real
// work: each function carries a declared per-call cost in units of random
// database I/Os, the executor counts invocations, and the harness charges
// invocations × cost on top of measured page I/Os.
type FuncDef struct {
	// Name is the function's identifier as written in queries (e.g. "costly100").
	Name string
	// Arity is the number of arguments the function accepts.
	Arity int
	// Cost is the per-invocation cost in random-I/O units, stored in system
	// metadata exactly as Montage stored per-predicate cost.
	Cost float64
	// Selectivity is the expected fraction of input tuples for which a
	// boolean function returns true; ignored for non-predicate functions.
	Selectivity float64
	// Cacheable marks functions whose results may be memoized by the
	// predicate cache (deterministic functions of their arguments).
	Cacheable bool
	// RealWork marks functions whose evaluation performs real, separately
	// charged work (e.g. subquery predicates that read pages through the
	// buffer pool). Cost then serves only the optimizer's estimates and is
	// excluded from the charged-cost measurement to avoid double counting.
	RealWork bool
	// Eval computes the function. It must be deterministic when Cacheable.
	Eval func(args []Value) Value
	// EvalErr, when set, is used instead of Eval by error-aware callers
	// (the executor): functions whose evaluation performs fallible real work
	// — subquery predicates reading pages through the buffer pool — report
	// failures here instead of silently folding them into a truth value.
	EvalErr func(args []Value) (Value, error)
	// EvalIO, when set, takes precedence over EvalErr for callers that carry
	// a per-query I/O tracker (the executor): functions whose real work reads
	// pages — subquery predicates — charge that traffic to the running
	// query's private ledger instead of a shared accountant, so concurrent
	// sessions never observe each other's subquery I/O. Callers without a
	// tracker pass nil, which degrades to untracked shared-pool access.
	EvalIO func(tr *storage.IOTracker, args []Value) (Value, error)

	calls atomic.Int64
}

// Invoke evaluates the function on args, counting the invocation. Functions
// defined with EvalErr yield NULL here when evaluation fails; error-aware
// callers (the executor) use InvokeErr instead.
func (f *FuncDef) Invoke(args []Value) Value {
	v, err := f.InvokeErr(args)
	if err != nil {
		return Null
	}
	return v
}

// InvokeErr evaluates the function on args, counting the invocation and
// propagating an evaluation error when the function defines EvalErr or
// EvalIO (the latter runs untracked here; the executor invokes it with the
// running query's tracker instead).
func (f *FuncDef) InvokeErr(args []Value) (Value, error) {
	f.calls.Add(1)
	if f.EvalIO != nil {
		return f.EvalIO(nil, args)
	}
	if f.EvalErr != nil {
		return f.EvalErr(args)
	}
	return f.Eval(args), nil
}

// Calls returns the number of invocations since the last ResetCalls.
func (f *FuncDef) Calls() int64 { return f.calls.Load() }

// ResetCalls zeroes the invocation counter (done by the harness per query).
func (f *FuncDef) ResetCalls() { f.calls.Store(0) }

// ChargedCost returns Calls() × Cost — the I/O-unit charge attributed to this
// function since the last reset. RealWork functions charge zero here because
// their work is metered directly.
func (f *FuncDef) ChargedCost() float64 {
	if f.RealWork {
		return 0
	}
	return float64(f.calls.Load()) * f.Cost
}

// String renders the function signature for EXPLAIN output.
func (f *FuncDef) String() string {
	return fmt.Sprintf("%s/%d cost=%.1f sel=%.3f", f.Name, f.Arity, f.Cost, f.Selectivity)
}

// hash64 mixes a 64-bit value (splitmix64 finalizer); used to derive
// deterministic pseudo-random booleans for stub predicate functions.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// BoolStub builds the Eval body of a deterministic boolean stub predicate
// with the given selectivity: it returns true for approximately
// selectivity×100% of distinct argument bindings, NULL never, and performs no
// real work (per the paper, the cost is charged by invocation count, not by
// actually burning I/O).
func BoolStub(selectivity float64, seed uint64) func(args []Value) Value {
	threshold := uint64(selectivity * float64(^uint64(0)>>1) * 2)
	return func(args []Value) Value {
		h := seed
		for _, a := range args {
			if a.IsNull() {
				return Null
			}
			h = hash64(h ^ a.Hash())
		}
		return B(hash64(h) < threshold)
	}
}

// NewCostly returns the benchmark function costlyN used throughout the
// paper's example queries: per-call cost of `cost` random I/Os and the given
// selectivity, deterministic in its arguments.
func NewCostly(name string, arity int, cost, selectivity float64, seed uint64) *FuncDef {
	return &FuncDef{
		Name:        name,
		Arity:       arity,
		Cost:        cost,
		Selectivity: selectivity,
		Cacheable:   true,
		Eval:        BoolStub(selectivity, seed),
	}
}
