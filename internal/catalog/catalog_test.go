package catalog

import (
	"testing"
	"testing/quick"

	"predplace/internal/expr"
)

func testCols() []Column {
	return []Column{
		{Name: "a1", Type: expr.TInt, Distinct: 100, Min: 0, Max: 99},
		{Name: "u20", Type: expr.TInt, Distinct: 5, Min: 0, Max: 4},
		{Name: "str", Type: expr.TString, FixedLen: 16},
	}
}

func TestCatalogTables(t *testing.T) {
	c := New()
	tb := &Table{Name: "t1", Columns: testCols(), Card: 100}
	if err := c.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(&Table{Name: "t1"}); err == nil {
		t.Fatal("duplicate table should fail")
	}
	got, err := c.Table("t1")
	if err != nil || got != tb {
		t.Fatalf("Table lookup: %v %v", got, err)
	}
	if _, err := c.Table("nope"); err == nil {
		t.Fatal("missing table should error")
	}
	c.AddTable(&Table{Name: "a_first"})
	names := []string{}
	for _, tab := range c.Tables() {
		names = append(names, tab.Name)
	}
	if len(names) != 2 || names[0] != "a_first" || names[1] != "t1" {
		t.Fatalf("Tables() order: %v", names)
	}
}

func TestTableColumnLookup(t *testing.T) {
	tb := &Table{Name: "t", Columns: testCols()}
	if tb.ColIndex("u20") != 1 {
		t.Fatal("ColIndex wrong")
	}
	if tb.ColIndex("zzz") != -1 {
		t.Fatal("missing column should be -1")
	}
	col, err := tb.Column("a1")
	if err != nil || col.Name != "a1" {
		t.Fatal("Column lookup failed")
	}
	if _, err := tb.Column("zzz"); err == nil {
		t.Fatal("missing column should error")
	}
}

func TestPagesEstimateWithoutHeap(t *testing.T) {
	tb := &Table{Name: "t", Card: 10000, TupleBytes: 100}
	// ~78 tuples/page -> ~129 pages
	p := tb.Pages()
	if p < 120 || p > 140 {
		t.Fatalf("Pages() = %d", p)
	}
}

func TestFuncRegistry(t *testing.T) {
	c := New()
	f := expr.NewCostly("costly10", 1, 10, 0.5, 1)
	if err := c.RegisterFunc(f); err != nil {
		t.Fatal(err)
	}
	if c.Version() != 0 {
		t.Fatal("first registration must not bump the version")
	}
	// Re-registration replaces the definition and bumps the version: plans
	// placed with the old metadata are stale.
	f2 := expr.NewCostly("costly10", 1, 10, 0.25, 1)
	if err := c.RegisterFunc(f2); err != nil {
		t.Fatalf("re-registration: %v", err)
	}
	if c.Version() != 1 {
		t.Fatalf("re-registration must bump the version, got %d", c.Version())
	}
	got, err := c.Func("costly10")
	if err != nil || got != f2 {
		t.Fatal("Func lookup should return the replacement")
	}
	f = f2
	if _, err := c.Func("nope"); err == nil {
		t.Fatal("missing function should error")
	}
	f.Invoke([]expr.Value{expr.I(1)})
	f.Invoke([]expr.Value{expr.I(2)})
	if f.ChargedCost() != 20 {
		t.Fatalf("ChargedCost = %v", f.ChargedCost())
	}
	f.ResetCalls()
	if f.ChargedCost() != 0 {
		t.Fatal("ResetCalls failed")
	}
	if len(c.Funcs()) != 1 {
		t.Fatal("Funcs() wrong")
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	rc, err := NewRowCodec(testCols())
	if err != nil {
		t.Fatal(err)
	}
	rows := []expr.Row{
		{expr.I(5), expr.I(2), expr.S("hello")},
		{expr.I(-9), expr.Null, expr.S("")},
		{expr.Null, expr.I(0), expr.Null},
	}
	for _, row := range rows {
		rec, err := rc.Encode(row)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec) != rc.Width() {
			t.Fatalf("record width %d, want %d", len(rec), rc.Width())
		}
		got, err := rc.Decode(rec)
		if err != nil {
			t.Fatal(err)
		}
		for i := range row {
			if !got[i].Equal(row[i]) {
				t.Fatalf("col %d: %v != %v", i, got[i], row[i])
			}
		}
	}
}

func TestRowCodecRoundTripQuick(t *testing.T) {
	rc, err := NewRowCodec(testCols())
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b int64, s string) bool {
		if len(s) > 16 {
			s = s[:16]
		}
		// avoid trailing NULs (padding is not distinguishable from them)
		for len(s) > 0 && s[len(s)-1] == 0 {
			s = s[:len(s)-1]
		}
		row := expr.Row{expr.I(a), expr.I(b), expr.S(s)}
		rec, err := rc.Encode(row)
		if err != nil {
			return false
		}
		got, err := rc.Decode(rec)
		if err != nil {
			return false
		}
		return got[0].Equal(row[0]) && got[1].Equal(row[1]) && got[2].Equal(row[2])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRowCodecErrors(t *testing.T) {
	rc, _ := NewRowCodec(testCols())
	if _, err := rc.Encode(expr.Row{expr.I(1)}); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	if _, err := rc.Encode(expr.Row{expr.S("x"), expr.I(1), expr.S("y")}); err == nil {
		t.Fatal("type mismatch should fail")
	}
	if _, err := rc.Encode(expr.Row{expr.I(1), expr.I(2), expr.S("this string is way too long for 16")}); err == nil {
		t.Fatal("overlong string should fail")
	}
	if _, err := rc.Decode(make([]byte, 3)); err == nil {
		t.Fatal("short record should fail")
	}
	if _, err := NewRowCodec([]Column{{Name: "s", Type: expr.TString}}); err == nil {
		t.Fatal("string without FixedLen should fail")
	}
}

func TestDecodeCol(t *testing.T) {
	rc, _ := NewRowCodec(testCols())
	row := expr.Row{expr.I(7), expr.Null, expr.S("abc")}
	rec, _ := rc.Encode(row)
	for i := range row {
		got, err := rc.DecodeCol(rec, i)
		if err != nil || !got.Equal(row[i]) {
			t.Fatalf("DecodeCol(%d) = %v, %v", i, got, err)
		}
	}
	if _, err := rc.DecodeCol(rec, 9); err == nil {
		t.Fatal("out-of-range column should fail")
	}
}

func TestCodec100ByteTuples(t *testing.T) {
	// The benchmark schema must produce exactly 100-byte tuples: 7 int
	// columns (63 bytes) + 1 string filler of 36 bytes (37 with flag).
	cols := []Column{
		{Name: "a1", Type: expr.TInt}, {Name: "a10", Type: expr.TInt},
		{Name: "a100", Type: expr.TInt}, {Name: "ua1", Type: expr.TInt},
		{Name: "u10", Type: expr.TInt}, {Name: "u20", Type: expr.TInt},
		{Name: "u100", Type: expr.TInt},
		{Name: "str", Type: expr.TString, FixedLen: 36},
	}
	rc, err := NewRowCodec(cols)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Width() != 100 {
		t.Fatalf("tuple width = %d, want 100", rc.Width())
	}
}
