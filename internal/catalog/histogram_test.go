package catalog

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramUniform(t *testing.T) {
	values := make([]int64, 1000)
	for i := range values {
		values[i] = int64(i)
	}
	h := BuildHistogram(values, 16)
	if h == nil || h.Total != 1000 {
		t.Fatalf("histogram = %v", h)
	}
	for _, c := range []struct {
		v    int64
		want float64
	}{{0, 0}, {250, 0.25}, {500, 0.5}, {999, 0.999}, {2000, 1}} {
		got := h.SelLT(c.v)
		if math.Abs(got-c.want) > 0.03 {
			t.Errorf("SelLT(%d) = %v, want ~%v", c.v, got, c.want)
		}
	}
	if h.SelGE(500)+h.SelLT(500) != 1 {
		t.Fatal("SelGE and SelLT must complement")
	}
}

func TestHistogramSkewBeatsUniform(t *testing.T) {
	// 90% of values at 0..9, 10% spread to 10..9999: the uniform [min,max]
	// interpolation wildly underestimates SelLT(10); the histogram does not.
	rng := rand.New(rand.NewSource(5))
	values := make([]int64, 0, 10000)
	for i := 0; i < 9000; i++ {
		values = append(values, int64(rng.Intn(10)))
	}
	for i := 0; i < 1000; i++ {
		values = append(values, int64(10+rng.Intn(9990)))
	}
	h := BuildHistogram(values, 32)
	truth := 0.9
	histEst := h.SelLT(10)
	uniformEst := float64(10) / float64(10000) // (v-min)/(max-min)
	if math.Abs(histEst-truth) > 0.05 {
		t.Fatalf("histogram estimate %v, truth %v", histEst, truth)
	}
	if math.Abs(uniformEst-truth) < 0.5 {
		t.Fatalf("test premise broken: uniform estimate %v too good", uniformEst)
	}
}

func TestHistogramDuplicateHeavyValue(t *testing.T) {
	// One value holds half the mass; bucket boundaries must not split it.
	values := make([]int64, 0, 2000)
	for i := 0; i < 1000; i++ {
		values = append(values, 42)
	}
	for i := 0; i < 1000; i++ {
		values = append(values, int64(i*3))
	}
	h := BuildHistogram(values, 8)
	// All duplicates of 42 are ≤ 42; SelLE(42) − SelLT(42) ≈ their mass.
	mass := h.SelLE(42) - h.SelLT(42)
	if mass < 0.4 {
		t.Fatalf("heavy value mass estimated at %v, want >= 0.4", mass)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	if BuildHistogram(nil, 8) != nil {
		t.Fatal("empty input should yield nil")
	}
	if BuildHistogram([]int64{5}, 0) != nil {
		t.Fatal("zero buckets should yield nil")
	}
	h := BuildHistogram([]int64{7}, 8)
	if h == nil || h.SelLT(7) != 0 || h.SelLT(8) != 1 {
		t.Fatalf("single-value histogram wrong: %v", h)
	}
	var nilHist *Histogram
	if nilHist.SelLT(3) != 1.0/3.0 {
		t.Fatal("nil histogram should fall back to 1/3")
	}
	if nilHist.String() != "hist(none)" {
		t.Fatal("nil String")
	}
	if h.String() == "" {
		t.Fatal("String should render")
	}
}

func TestHistogramMonotoneQuick(t *testing.T) {
	values := make([]int64, 500)
	rng := rand.New(rand.NewSource(9))
	for i := range values {
		values[i] = int64(rng.Intn(1000)) * int64(rng.Intn(7))
	}
	h := BuildHistogram(values, 16)
	f := func(a, b int16) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return h.SelLT(x) <= h.SelLT(y)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramInt64Extremes(t *testing.T) {
	// SelLE(v) is implemented as SelLT(v+1); at v = MaxInt64 the increment
	// would wrap to MinInt64 and report 0 for a predicate every row satisfies
	// (and SelGT(MaxInt64), its complement, would report 1). Pin all four
	// estimators at both int64 extremes.
	values := []int64{-5, 0, 3, 3, 7, 100}
	h := BuildHistogram(values, 4)
	max, min := int64(math.MaxInt64), int64(math.MinInt64)

	if got := h.SelLE(max); got != 1 {
		t.Errorf("SelLE(MaxInt64) = %v, want 1", got)
	}
	if got := h.SelGT(max); got != 0 {
		t.Errorf("SelGT(MaxInt64) = %v, want 0", got)
	}
	if got := h.SelLT(max); got != 1 {
		t.Errorf("SelLT(MaxInt64) = %v, want 1", got)
	}
	if got := h.SelGE(max); got != 0 {
		t.Errorf("SelGE(MaxInt64) = %v, want 0", got)
	}
	if got := h.SelLT(min); got != 0 {
		t.Errorf("SelLT(MinInt64) = %v, want 0", got)
	}
	if got := h.SelLE(min); got != 0 {
		t.Errorf("SelLE(MinInt64) = %v, want 0", got)
	}
	if got := h.SelGE(min); got != 1 {
		t.Errorf("SelGE(MinInt64) = %v, want 1", got)
	}
	if got := h.SelGT(min); got != 1 {
		t.Errorf("SelGT(MinInt64) = %v, want 1", got)
	}
	// The extremes as actual data: a histogram whose last bound is MaxInt64
	// must still satisfy SelLE(MaxInt64) = 1.
	he := BuildHistogram([]int64{min, -1, 0, 1, max}, 3)
	if got := he.SelLE(max); got != 1 {
		t.Errorf("extreme-valued SelLE(MaxInt64) = %v, want 1", got)
	}
	if got := he.SelGT(max); got != 0 {
		t.Errorf("extreme-valued SelGT(MaxInt64) = %v, want 0", got)
	}
	if got := he.SelLT(min); got != 0 {
		t.Errorf("extreme-valued SelLT(MinInt64) = %v, want 0", got)
	}
	// Nil receivers keep the 1/3 fallback on every estimator, extremes
	// included.
	var nilHist *Histogram
	for name, got := range map[string]float64{
		"SelLE(max)": nilHist.SelLE(max), "SelGT(max)": nilHist.SelGT(max),
		"SelLT(min)": nilHist.SelLT(min), "SelGE(min)": nilHist.SelGE(min),
	} {
		want := 1.0 / 3.0
		if name == "SelGT(max)" || name == "SelGE(min)" {
			want = 2.0 / 3.0 // complements of the 1/3 fallback
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("nil histogram %s = %v, want %v", name, got, want)
		}
	}
}

func TestHistogramBoundsCoverage(t *testing.T) {
	values := []int64{1, 2, 2, 3, 5, 8, 13, 21, 34, 55}
	h := BuildHistogram(values, 4)
	var total int64
	for _, c := range h.Counts {
		total += c
	}
	if total != int64(len(values)) {
		t.Fatalf("bucket counts sum to %d, want %d", total, len(values))
	}
	if h.Bounds[0] != 1 || h.Bounds[len(h.Bounds)-1] != 55 {
		t.Fatalf("bounds = %v", h.Bounds)
	}
	if len(h.Bounds) != len(h.Counts)+1 {
		t.Fatal("bounds/counts length mismatch")
	}
}
