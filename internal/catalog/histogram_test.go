package catalog

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramUniform(t *testing.T) {
	values := make([]int64, 1000)
	for i := range values {
		values[i] = int64(i)
	}
	h := BuildHistogram(values, 16)
	if h == nil || h.Total != 1000 {
		t.Fatalf("histogram = %v", h)
	}
	for _, c := range []struct {
		v    int64
		want float64
	}{{0, 0}, {250, 0.25}, {500, 0.5}, {999, 0.999}, {2000, 1}} {
		got := h.SelLT(c.v)
		if math.Abs(got-c.want) > 0.03 {
			t.Errorf("SelLT(%d) = %v, want ~%v", c.v, got, c.want)
		}
	}
	if h.SelGE(500)+h.SelLT(500) != 1 {
		t.Fatal("SelGE and SelLT must complement")
	}
}

func TestHistogramSkewBeatsUniform(t *testing.T) {
	// 90% of values at 0..9, 10% spread to 10..9999: the uniform [min,max]
	// interpolation wildly underestimates SelLT(10); the histogram does not.
	rng := rand.New(rand.NewSource(5))
	values := make([]int64, 0, 10000)
	for i := 0; i < 9000; i++ {
		values = append(values, int64(rng.Intn(10)))
	}
	for i := 0; i < 1000; i++ {
		values = append(values, int64(10+rng.Intn(9990)))
	}
	h := BuildHistogram(values, 32)
	truth := 0.9
	histEst := h.SelLT(10)
	uniformEst := float64(10) / float64(10000) // (v-min)/(max-min)
	if math.Abs(histEst-truth) > 0.05 {
		t.Fatalf("histogram estimate %v, truth %v", histEst, truth)
	}
	if math.Abs(uniformEst-truth) < 0.5 {
		t.Fatalf("test premise broken: uniform estimate %v too good", uniformEst)
	}
}

func TestHistogramDuplicateHeavyValue(t *testing.T) {
	// One value holds half the mass; bucket boundaries must not split it.
	values := make([]int64, 0, 2000)
	for i := 0; i < 1000; i++ {
		values = append(values, 42)
	}
	for i := 0; i < 1000; i++ {
		values = append(values, int64(i*3))
	}
	h := BuildHistogram(values, 8)
	// All duplicates of 42 are ≤ 42; SelLE(42) − SelLT(42) ≈ their mass.
	mass := h.SelLE(42) - h.SelLT(42)
	if mass < 0.4 {
		t.Fatalf("heavy value mass estimated at %v, want >= 0.4", mass)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	if BuildHistogram(nil, 8) != nil {
		t.Fatal("empty input should yield nil")
	}
	if BuildHistogram([]int64{5}, 0) != nil {
		t.Fatal("zero buckets should yield nil")
	}
	h := BuildHistogram([]int64{7}, 8)
	if h == nil || h.SelLT(7) != 0 || h.SelLT(8) != 1 {
		t.Fatalf("single-value histogram wrong: %v", h)
	}
	var nilHist *Histogram
	if nilHist.SelLT(3) != 1.0/3.0 {
		t.Fatal("nil histogram should fall back to 1/3")
	}
	if nilHist.String() != "hist(none)" {
		t.Fatal("nil String")
	}
	if h.String() == "" {
		t.Fatal("String should render")
	}
}

func TestHistogramMonotoneQuick(t *testing.T) {
	values := make([]int64, 500)
	rng := rand.New(rand.NewSource(9))
	for i := range values {
		values[i] = int64(rng.Intn(1000)) * int64(rng.Intn(7))
	}
	h := BuildHistogram(values, 16)
	f := func(a, b int16) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return h.SelLT(x) <= h.SelLT(y)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBoundsCoverage(t *testing.T) {
	values := []int64{1, 2, 2, 3, 5, 8, 13, 21, 34, 55}
	h := BuildHistogram(values, 4)
	var total int64
	for _, c := range h.Counts {
		total += c
	}
	if total != int64(len(values)) {
		t.Fatalf("bucket counts sum to %d, want %d", total, len(values))
	}
	if h.Bounds[0] != 1 || h.Bounds[len(h.Bounds)-1] != 55 {
		t.Fatalf("bounds = %v", h.Bounds)
	}
	if len(h.Bounds) != len(h.Counts)+1 {
		t.Fatal("bounds/counts length mismatch")
	}
}
