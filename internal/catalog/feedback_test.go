package catalog

import (
	"encoding/json"
	"math"
	"testing"

	"predplace/internal/expr"
)

func TestErrFactorZeroHandling(t *testing.T) {
	// The re-optimize decision compares error factors against a threshold;
	// a zero estimate (or observation) must yield the finite cap, never
	// ±Inf or NaN, and a correctly-zero estimate is a perfect 1.
	cases := []struct {
		est, obs, want float64
	}{
		{0, 0, 1},
		{-1, 0, 1}, // negative garbage treated as zero
		{0, 0.5, FeedbackErrCap},
		{0.5, 0, FeedbackErrCap},
		{1e-300, 1, FeedbackErrCap}, // beyond the cap: capped, not overflowed
		{0.1, 0.1, 1},
		{0.1, 0.4, 4},
		{0.4, 0.1, 4},
		{math.NaN(), 0.5, FeedbackErrCap}, // NaN compares false with ≤0 paths? see below
	}
	for _, c := range cases {
		got := ErrFactor(c.est, c.obs)
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("ErrFactor(%v, %v) = %v: not finite", c.est, c.obs, got)
		}
		if math.IsNaN(c.est) {
			// NaN input: any finite answer ≥ 1 is acceptable; the invariant
			// is finiteness, pinned above.
			continue
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("ErrFactor(%v, %v) = %v, want %v", c.est, c.obs, got, c.want)
		}
	}
}

func TestFeedbackStoreZeroEstimateStaysFinite(t *testing.T) {
	s := newFeedbackStore()
	// A predicate estimated at 0 selectivity that matched rows anyway: the
	// classic unbounded-error case.
	s.Observe("t1.u10 = 7", 0, 0.3)
	s.ObserveFunc("f", 0, 0.25, 0, 0, false)
	if worst := s.MaxPendingErr(); math.IsInf(worst, 0) || math.IsNaN(worst) {
		t.Fatalf("MaxPendingErr = %v: not finite", worst)
	} else if worst != FeedbackErrCap {
		t.Fatalf("MaxPendingErr = %v, want the cap %v", worst, FeedbackErrCap)
	}
	// The stats — and therefore the JSON surface — must marshal cleanly:
	// encoding/json rejects ±Inf and NaN.
	st := s.Stats()
	if _, err := json.Marshal(st); err != nil {
		t.Fatalf("stats with capped errors must marshal: %v", err)
	}
	if st.Observations != 2 || st.PendingPreds != 1 || st.PendingFuncs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFeedbackApplyPromotesAndBumpsOnce(t *testing.T) {
	c := New()
	if err := c.RegisterFunc(expr.NewCostly("fx", 1, 10, 0.5, 7)); err != nil {
		t.Fatal(err)
	}
	v0 := c.Version()
	fb := c.Feedback()
	fb.Observe("t1.u10 < 3", 0.3, 0.06)
	fb.Observe("t1.u10 < 3", 0.3, 0.10) // second run folds into the mean
	fb.ObserveFunc("fx", 0.5, 0.125, 10, 0, false)
	if n := c.ApplyFeedback(); n != 2 {
		t.Fatalf("applied %d entries, want 2", n)
	}
	if c.Version() != v0+1 {
		t.Fatalf("ApplyFeedback must bump the version exactly once, got %d bumps", c.Version()-v0)
	}
	if sel, ok := fb.AppliedSel("t1.u10 < 3"); !ok || math.Abs(sel-0.08) > 1e-12 {
		t.Fatalf("applied selectivity = %v, %v; want mean 0.08", sel, ok)
	}
	f, err := c.Func("fx")
	if err != nil {
		t.Fatal(err)
	}
	if f.Selectivity != 0.125 {
		t.Fatalf("refreshed selectivity = %v, want 0.125", f.Selectivity)
	}
	if f.Cost != 10 {
		t.Fatalf("declared-cost stub's cost must survive refresh, got %v", f.Cost)
	}
	// An empty apply is a no-op: no version churn, no refresh counted.
	if n := c.ApplyFeedback(); n != 0 {
		t.Fatalf("empty apply promoted %d entries", n)
	}
	if c.Version() != v0+1 {
		t.Fatal("empty apply must not bump the version")
	}
	if st := fb.Stats(); st.Refreshes != 1 || st.AppliedPreds != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFeedbackRefreshRealWorkCost(t *testing.T) {
	c := New()
	if err := c.RegisterFunc(&expr.FuncDef{
		Name: "rw", Arity: 1, Cost: 100, Selectivity: 0.5,
		Cacheable: true, RealWork: true,
		EvalErr: func(args []expr.Value) (expr.Value, error) { return expr.B(true), nil },
	}); err != nil {
		t.Fatal(err)
	}
	c.Feedback().ObserveFunc("rw", 0.5, 0.9, 100, 12.5, true)
	if n := c.ApplyFeedback(); n != 1 {
		t.Fatalf("applied %d", n)
	}
	f, err := c.Func("rw")
	if err != nil {
		t.Fatal(err)
	}
	if f.Cost != 12.5 || f.Selectivity != 0.9 {
		t.Fatalf("real-work refresh: cost=%v sel=%v, want 12.5/0.9", f.Cost, f.Selectivity)
	}
	if !f.RealWork || !f.Cacheable || f.EvalErr == nil {
		t.Fatal("refresh must preserve evaluation fields and flags")
	}
}
