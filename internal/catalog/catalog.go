// Package catalog holds schema metadata, table statistics, and the
// user-defined function registry — the "system metadata" the paper's
// optimizer consults for predicate costs and selectivities.
package catalog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"predplace/internal/btree"
	"predplace/internal/expr"
	"predplace/internal/storage"
)

// Column describes one attribute of a table.
type Column struct {
	// Name of the column. Per the benchmark convention, names beginning
	// with 'u' are unindexed; a numeric suffix gives the approximate number
	// of times each value repeats.
	Name string
	// Type of the column's values.
	Type expr.Type
	// FixedLen is the encoded width in bytes for string columns (tuples are
	// fixed-width, 100 bytes, per the paper's schema). Ignored for ints.
	FixedLen int
	// Distinct estimates the number of distinct values (statistics).
	Distinct int64
	// Min and Max bound integer column values (statistics).
	Min, Max int64
	// Hist is an optional equi-depth histogram (built by ANALYZE) used for
	// range-selectivity estimation under skew.
	Hist *Histogram
}

// Table is a stored relation: schema, heap file, indexes, and statistics.
type Table struct {
	Name    string
	Columns []Column
	Heap    *storage.HeapFile
	// Indexes maps column name → B-tree over that column (int columns only).
	Indexes map[string]*btree.Tree
	// Card is the tuple count.
	Card int64
	// TupleBytes is the fixed encoded tuple width.
	TupleBytes int
	// Codec encodes and decodes this table's rows.
	Codec *RowCodec
}

// Pages returns the number of heap pages (for cost estimation).
func (t *Table) Pages() int64 {
	if t.Heap == nil {
		perPage := int64(1)
		if t.TupleBytes > 0 {
			perPage = int64((storage.PageSize - 8) / (t.TupleBytes + 4))
		}
		if perPage < 1 {
			perPage = 1
		}
		return (t.Card + perPage - 1) / perPage
	}
	return int64(t.Heap.NumPages())
}

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i := range t.Columns {
		if t.Columns[i].Name == name {
			return i
		}
	}
	return -1
}

// Column returns the named column's metadata.
func (t *Table) Column(name string) (*Column, error) {
	i := t.ColIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("catalog: table %s has no column %s", t.Name, name)
	}
	return &t.Columns[i], nil
}

// HasIndex reports whether the named column has a B-tree index.
func (t *Table) HasIndex(col string) bool {
	_, ok := t.Indexes[col]
	return ok
}

// Catalog is the collection of tables and registered functions.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	funcs  map[string]*expr.FuncDef
	// version counts schema- and statistics-affecting changes (table
	// creation, data modification, ANALYZE, feedback promotion, and
	// re-registration of an existing function with new metadata). Cached
	// query plans embed the version they were planned against and are
	// invalidated when it moves. First-time function registration
	// deliberately does NOT bump it: binding an IN-subquery registers a
	// (uniquely named) function as a side effect, and bumping there would
	// make every subquery-bearing plan evict itself from the cache.
	version atomic.Int64
	// fb accumulates observed selectivities and measured costs between
	// feedback promotions; see feedback.go.
	fb *FeedbackStore
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]*Table),
		funcs:  make(map[string]*expr.FuncDef),
		fb:     newFeedbackStore(),
	}
}

// AddTable registers a table. The name must be unused.
func (c *Catalog) AddTable(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[t.Name]; dup {
		return fmt.Errorf("catalog: table %s already exists", t.Name)
	}
	if t.Indexes == nil {
		t.Indexes = make(map[string]*btree.Tree)
	}
	c.tables[t.Name] = t
	c.version.Add(1)
	return nil
}

// Version returns the current schema/statistics version; see the version
// field for what moves it.
func (c *Catalog) Version() int64 { return c.version.Load() }

// BumpVersion records a change that can affect planning — an insert, a
// delete, an ANALYZE — so version-keyed plan caches drop their stale
// entries.
func (c *Catalog) BumpVersion() { c.version.Add(1) }

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no such table %q", name)
	}
	return t, nil
}

// Tables returns all tables sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RegisterFunc adds a user-defined function to the metadata. Re-registering
// an existing name replaces its definition and bumps the catalog version:
// plans placed with the old cost/selectivity metadata are stale, and a
// version-keyed plan cache must not keep serving them. First registrations
// do not bump — subquery binding registers a uniquely named function per
// statement, and bumping there would evict every subquery-bearing plan.
func (c *Catalog) RegisterFunc(f *expr.FuncDef) error {
	c.mu.Lock()
	_, replaced := c.funcs[f.Name]
	c.funcs[f.Name] = f
	c.mu.Unlock()
	if replaced {
		c.version.Add(1)
	}
	return nil
}

// Func looks up a registered function.
func (c *Catalog) Func(name string) (*expr.FuncDef, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.funcs[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no such function %q", name)
	}
	return f, nil
}

// Funcs returns all registered functions sorted by name.
func (c *Catalog) Funcs() []*expr.FuncDef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*expr.FuncDef, 0, len(c.funcs))
	for _, f := range c.funcs {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
