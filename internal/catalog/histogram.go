package catalog

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is an equi-depth histogram over an integer column: each bucket
// holds (approximately) the same number of values, so selectivity estimates
// stay accurate under skew where the System R min/max interpolation (which
// assumes uniformity) degrades. The harness's uniform benchmark data does
// not need them; user tables loaded through Analyze get them for free.
type Histogram struct {
	// Bounds has len(Counts)+1 entries; bucket i covers values v with
	// Bounds[i] <= v <= Bounds[i+1] (the last bucket's upper bound is the
	// column maximum, inclusive).
	Bounds []int64
	// Counts holds the number of values per bucket.
	Counts []int64
	// HiCounts holds, per bucket, how many values equal the bucket's upper
	// bound ("end-biased" refinement: because buckets never split a value
	// run, the upper bound's whole run lies in its bucket, making estimates
	// at bucket boundaries — where heavy values land — exact).
	HiCounts []int64
	// Total is the number of values summarized.
	Total int64
}

// BuildHistogram constructs an equi-depth histogram with at most `buckets`
// buckets from a sample of column values. It returns nil for empty input.
func BuildHistogram(values []int64, buckets int) *Histogram {
	if len(values) == 0 || buckets < 1 {
		return nil
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if buckets > len(sorted) {
		buckets = len(sorted)
	}
	h := &Histogram{Total: int64(len(sorted))}
	h.Bounds = append(h.Bounds, sorted[0])
	per := len(sorted) / buckets
	rem := len(sorted) % buckets
	idx := 0
	for b := 0; b < buckets && idx < len(sorted); b++ {
		n := per
		if b < rem {
			n++
		}
		if b == buckets-1 || idx+n > len(sorted) {
			n = len(sorted) - idx // last bucket (or duplicate overrun) takes the rest
		}
		if n <= 0 {
			n = 1
		}
		idx += n
		// Extend the bucket so equal values never straddle a boundary.
		for idx < len(sorted) && sorted[idx] == sorted[idx-1] {
			idx++
			n++
		}
		h.Bounds = append(h.Bounds, sorted[idx-1])
		h.Counts = append(h.Counts, int64(n))
		run := int64(1)
		for k := idx - 1; k > 0 && sorted[k-1] == sorted[idx-1]; k-- {
			run++
		}
		if run > int64(n) {
			run = int64(n)
		}
		h.HiCounts = append(h.HiCounts, run)
	}
	return h
}

// SelLT estimates the fraction of values strictly less than v, interpolating
// linearly inside the containing bucket.
func (h *Histogram) SelLT(v int64) float64 {
	if h == nil || h.Total == 0 {
		return 1.0 / 3.0
	}
	if v <= h.Bounds[0] {
		return 0
	}
	if v > h.Bounds[len(h.Bounds)-1] {
		return 1
	}
	var below int64
	for i, c := range h.Counts {
		lo, hi := h.Bounds[i], h.Bounds[i+1]
		if v > hi {
			below += c
			continue
		}
		if v == hi {
			// Exact at bucket boundaries: everything in the bucket except
			// the upper bound's own run is below it.
			return (float64(below) + float64(c-h.HiCounts[i])) / float64(h.Total)
		}
		// v falls strictly inside bucket i: interpolate over the mass that
		// is not pinned to the upper bound.
		width := hi - lo
		if width <= 0 {
			return float64(below) / float64(h.Total)
		}
		frac := float64(v-lo) / float64(width)
		return (float64(below) + frac*float64(c-h.HiCounts[i])) / float64(h.Total)
	}
	return 1
}

// SelLE estimates the fraction of values ≤ v. For integer columns x ≤ v is
// x < v+1 — except at v = MaxInt64, where v+1 would wrap to MinInt64 and a
// predicate every row satisfies would estimate selectivity 0 (and, through
// SelGT's complement, x > MaxInt64 would estimate 1).
func (h *Histogram) SelLE(v int64) float64 {
	if h == nil || h.Total == 0 {
		return 1.0 / 3.0
	}
	if v == math.MaxInt64 {
		return 1
	}
	return h.SelLT(v + 1)
}

// SelGT estimates the fraction of values > v.
func (h *Histogram) SelGT(v int64) float64 { return 1 - h.SelLE(v) }

// SelGE estimates the fraction of values ≥ v.
func (h *Histogram) SelGE(v int64) float64 { return 1 - h.SelLT(v) }

// String summarizes the histogram for catalogs and debugging.
func (h *Histogram) String() string {
	if h == nil {
		return "hist(none)"
	}
	return fmt.Sprintf("hist(%d buckets, %d values, [%d..%d])",
		len(h.Counts), h.Total, h.Bounds[0], h.Bounds[len(h.Bounds)-1])
}
