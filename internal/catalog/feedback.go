package catalog

// Feedback-driven statistics (ROADMAP item 2, after arXiv 1806.08384): the
// executor's per-operator profile pairs every estimate with what actually
// happened, and this store closes the loop. Observations harvested at query
// end accumulate as *pending* feedback; once any pending observation's error
// factor crosses the configured threshold, Catalog.ApplyFeedback promotes
// the batch — overriding predicate selectivities ahead of histogram/default
// guesses and refreshing registered functions' cost/selectivity metadata —
// and bumps the catalog version exactly once, so version-keyed plan caches
// re-optimize against the corrected statistics.

import (
	"math"
	"sync"

	"predplace/internal/expr"
)

// FeedbackErrCap bounds every error factor the store computes or reports.
// It mirrors the profiler's ErrFactorCap: a zero estimate against a nonzero
// actual is off by an unbounded factor, and the threshold comparison (and
// the JSON stats) must see this finite cap, never ±Inf or NaN.
const FeedbackErrCap = 1e9

// ErrFactor is the symmetric estimation-error factor max(obs/est, est/obs),
// ≥ 1, total over all inputs: both sides zero (a correct zero estimate) is a
// perfect 1; one side zero (an unboundedly wrong estimate) is FeedbackErrCap;
// everything else is capped there. Negative inputs are treated as zero —
// selectivities and costs are never negative, and a garbage input must not
// smuggle a negative or NaN factor into the re-optimize decision.
func ErrFactor(est, obs float64) float64 {
	if math.IsNaN(est) || math.IsNaN(obs) {
		return FeedbackErrCap
	}
	if est <= 0 && obs <= 0 {
		return 1
	}
	if est <= 0 || obs <= 0 {
		return FeedbackErrCap
	}
	f := obs / est
	if f < 1 {
		f = 1 / f
	}
	if f > FeedbackErrCap {
		return FeedbackErrCap
	}
	return f
}

// FeedbackEntry is one predicate's accumulated observation, keyed by the
// predicate's rendered fingerprint (query.Predicate.String — stable across
// sessions for the same WHERE conjunct).
type FeedbackEntry struct {
	// Fingerprint is the predicate's rendered text (e.g. "t3.ua1 = t1.a1").
	Fingerprint string `json:"fingerprint"`
	// EstSel is the estimate the optimizer used on the last observed run.
	EstSel float64 `json:"est_sel"`
	// ObsSel is the mean observed selectivity across observations.
	ObsSel float64 `json:"obs_sel"`
	// Err is ErrFactor(EstSel, ObsSel), always finite (≤ FeedbackErrCap).
	Err float64 `json:"err"`
	// Queries counts the runs that contributed to ObsSel.
	Queries int64 `json:"queries"`
}

// FuncFeedback is one registered function's accumulated observation.
type FuncFeedback struct {
	// Name is the function's catalog name.
	Name string `json:"name"`
	// ObsSel is the mean observed selectivity of the function's predicate.
	ObsSel float64 `json:"obs_sel"`
	// ObsCost is the mean measured per-invocation cost in I/O units; only
	// meaningful when HasCost (real-work functions whose evaluation is
	// metered — declared-cost stubs have no measurable cost).
	ObsCost float64 `json:"obs_cost,omitempty"`
	HasCost bool    `json:"has_cost,omitempty"`
	// Err is the max of the selectivity and cost error factors, finite.
	Err float64 `json:"err"`
	// Queries counts the runs that contributed.
	Queries int64 `json:"queries"`
}

// FeedbackStats is the JSON-safe summary of a store's state.
type FeedbackStats struct {
	// Observations counts harvested predicate/function observations.
	Observations int64 `json:"observations"`
	// PendingPreds and PendingFuncs count unapplied accumulated entries.
	PendingPreds int `json:"pending_preds"`
	PendingFuncs int `json:"pending_funcs"`
	// AppliedPreds counts fingerprints with an active selectivity override.
	AppliedPreds int `json:"applied_preds"`
	// Refreshes counts ApplyFeedback promotions (each bumped the catalog
	// version once).
	Refreshes int64 `json:"refreshes"`
	// MaxPendingErr is the largest error factor among pending entries
	// (1 when nothing is pending), always finite.
	MaxPendingErr float64 `json:"max_pending_err"`
}

// FeedbackStore accumulates observed selectivities and costs between
// ApplyFeedback promotions. All methods are safe for concurrent use.
type FeedbackStore struct {
	mu           sync.Mutex
	pending      map[string]*FeedbackEntry
	pendingFuncs map[string]*FuncFeedback
	// applied maps predicate fingerprint → selectivity override consulted by
	// query analysis ahead of histogram/default guesses.
	applied      map[string]float64
	observations int64
	refreshes    int64
}

// newFeedbackStore creates an empty store.
func newFeedbackStore() *FeedbackStore {
	return &FeedbackStore{
		pending:      make(map[string]*FeedbackEntry),
		pendingFuncs: make(map[string]*FuncFeedback),
		applied:      make(map[string]float64),
	}
}

// Observe records one run's observed selectivity for a predicate
// fingerprint. Estimates and observations outside [0, 1] are clamped; the
// mean across runs is what ApplyFeedback promotes.
func (s *FeedbackStore) Observe(fingerprint string, estSel, obsSel float64) {
	estSel, obsSel = clamp01(estSel), clamp01(obsSel)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observations++
	e := s.pending[fingerprint]
	if e == nil {
		e = &FeedbackEntry{Fingerprint: fingerprint}
		s.pending[fingerprint] = e
	}
	e.ObsSel = runningMean(e.ObsSel, e.Queries, obsSel)
	e.Queries++
	e.EstSel = estSel
	e.Err = ErrFactor(e.EstSel, e.ObsSel)
}

// ObserveFunc records one run's observed selectivity — and, for real-work
// functions with metered evaluation, measured per-invocation cost — for a
// registered function. estSel/estCost are the metadata the run planned with.
func (s *FeedbackStore) ObserveFunc(name string, estSel, obsSel float64, estCost, obsCost float64, hasCost bool) {
	estSel, obsSel = clamp01(estSel), clamp01(obsSel)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observations++
	f := s.pendingFuncs[name]
	if f == nil {
		f = &FuncFeedback{Name: name}
		s.pendingFuncs[name] = f
	}
	f.ObsSel = runningMean(f.ObsSel, f.Queries, obsSel)
	if hasCost {
		if obsCost < 0 {
			obsCost = 0
		}
		var costRuns int64
		if f.HasCost {
			costRuns = f.Queries
		}
		f.ObsCost = runningMean(f.ObsCost, costRuns, obsCost)
		f.HasCost = true
	}
	f.Queries++
	f.Err = ErrFactor(estSel, f.ObsSel)
	if f.HasCost {
		if ce := ErrFactor(estCost, f.ObsCost); ce > f.Err {
			f.Err = ce
		}
	}
}

// MaxPendingErr returns the largest error factor among pending observations
// (1 when nothing is pending). The result is always finite — the threshold
// comparison in the facade never sees ±Inf or NaN.
func (s *FeedbackStore) MaxPendingErr() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	worst := 1.0
	for _, e := range s.pending {
		if e.Err > worst {
			worst = e.Err
		}
	}
	for _, f := range s.pendingFuncs {
		if f.Err > worst {
			worst = f.Err
		}
	}
	return worst
}

// AppliedSel returns the active selectivity override for a predicate
// fingerprint, if one has been promoted.
func (s *FeedbackStore) AppliedSel(fingerprint string) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sel, ok := s.applied[fingerprint]
	return sel, ok
}

// Stats snapshots the store's counters.
func (s *FeedbackStore) Stats() FeedbackStats {
	s.mu.Lock()
	st := FeedbackStats{
		Observations: s.observations,
		PendingPreds: len(s.pending),
		PendingFuncs: len(s.pendingFuncs),
		AppliedPreds: len(s.applied),
		Refreshes:    s.refreshes,
	}
	s.mu.Unlock()
	st.MaxPendingErr = s.MaxPendingErr()
	return st
}

// takePending drains the pending maps for promotion (under the store lock),
// recording the refresh.
func (s *FeedbackStore) takePending() (map[string]*FeedbackEntry, map[string]*FuncFeedback) {
	s.mu.Lock()
	defer s.mu.Unlock()
	preds, funcs := s.pending, s.pendingFuncs
	s.pending = make(map[string]*FeedbackEntry)
	s.pendingFuncs = make(map[string]*FuncFeedback)
	for fp, e := range preds {
		s.applied[fp] = e.ObsSel
	}
	if len(preds)+len(funcs) > 0 {
		s.refreshes++
	}
	return preds, funcs
}

// clamp01 clamps a selectivity into [0, 1]; NaN clamps to 0.
func clamp01(v float64) float64 {
	if !(v > 0) { // catches NaN too
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// runningMean folds one more sample into a mean over n prior samples.
func runningMean(mean float64, n int64, sample float64) float64 {
	return (mean*float64(n) + sample) / float64(n+1)
}

// Feedback returns the catalog's feedback store.
func (c *Catalog) Feedback() *FeedbackStore { return c.fb }

// ApplyFeedback promotes every pending observation: predicate selectivity
// overrides become active for query analysis, and each observed registered
// function is re-registered with refreshed metadata — observed selectivity
// for every function, measured per-invocation cost for real-work functions
// only (declared-cost stubs charge invocations × declared cost by
// definition; overwriting their cost with the 0 a costless evaluation
// "measures" would corrupt the charged-cost accounting). The catalog version
// bumps exactly once when anything was promoted, invalidating version-keyed
// cached plans. It returns the number of promoted entries.
func (c *Catalog) ApplyFeedback() int {
	if c.fb == nil {
		return 0
	}
	preds, funcs := c.fb.takePending()
	applied := len(preds)
	c.mu.Lock()
	for name, obs := range funcs {
		old, ok := c.funcs[name]
		if !ok {
			continue
		}
		// Build the refreshed definition field by field: FuncDef carries an
		// atomic invocation counter and must never be copied by value.
		nf := &expr.FuncDef{
			Name:        old.Name,
			Arity:       old.Arity,
			Cost:        old.Cost,
			Selectivity: obs.ObsSel,
			Cacheable:   old.Cacheable,
			RealWork:    old.RealWork,
			Eval:        old.Eval,
			EvalErr:     old.EvalErr,
			EvalIO:      old.EvalIO,
		}
		if old.RealWork && obs.HasCost {
			nf.Cost = obs.ObsCost
		}
		c.funcs[name] = nf
		applied++
	}
	c.mu.Unlock()
	if applied > 0 {
		c.version.Add(1)
	}
	return applied
}
