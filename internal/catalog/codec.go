package catalog

import (
	"encoding/binary"
	"fmt"

	"predplace/internal/expr"
)

// RowCodec encodes rows of a table's schema into fixed-width byte records.
// Integers take 9 bytes (1 null flag + 8 value); strings take 1 null flag +
// FixedLen bytes, NUL-padded. The benchmark schema pads every tuple to the
// paper's 100 bytes via a trailing string filler column.
type RowCodec struct {
	cols  []Column
	width int
}

// NewRowCodec builds a codec for the given columns.
func NewRowCodec(cols []Column) (*RowCodec, error) {
	w := 0
	for _, c := range cols {
		switch c.Type {
		case expr.TInt, expr.TBool:
			w += 9
		case expr.TString:
			if c.FixedLen <= 0 {
				return nil, fmt.Errorf("catalog: string column %s needs FixedLen", c.Name)
			}
			w += 1 + c.FixedLen
		default:
			return nil, fmt.Errorf("catalog: unsupported column type %v for %s", c.Type, c.Name)
		}
	}
	return &RowCodec{cols: append([]Column(nil), cols...), width: w}, nil
}

// Width returns the fixed encoded record width in bytes.
func (rc *RowCodec) Width() int { return rc.width }

// Encode serializes row (which must match the schema arity) into a record.
func (rc *RowCodec) Encode(row expr.Row) ([]byte, error) {
	if len(row) != len(rc.cols) {
		return nil, fmt.Errorf("catalog: row arity %d, schema arity %d", len(row), len(rc.cols))
	}
	out := make([]byte, 0, rc.width)
	for i, c := range rc.cols {
		v := row[i]
		if v.IsNull() {
			out = append(out, 0)
			switch c.Type {
			case expr.TInt, expr.TBool:
				out = append(out, make([]byte, 8)...)
			case expr.TString:
				out = append(out, make([]byte, c.FixedLen)...)
			default:
				return nil, fmt.Errorf("catalog: column %s has unsupported type %v", c.Name, c.Type)
			}
			continue
		}
		out = append(out, 1)
		switch c.Type {
		case expr.TInt, expr.TBool:
			if v.Kind != expr.TInt && v.Kind != expr.TBool {
				return nil, fmt.Errorf("catalog: column %s wants int, got %v", c.Name, v.Kind)
			}
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], uint64(v.I))
			out = append(out, buf[:]...)
		case expr.TString:
			if v.Kind != expr.TString {
				return nil, fmt.Errorf("catalog: column %s wants string, got %v", c.Name, v.Kind)
			}
			if len(v.S) > c.FixedLen {
				return nil, fmt.Errorf("catalog: value %q exceeds column %s width %d", v.S, c.Name, c.FixedLen)
			}
			buf := make([]byte, c.FixedLen)
			copy(buf, v.S)
			out = append(out, buf...)
		default:
			return nil, fmt.Errorf("catalog: column %s has unsupported type %v", c.Name, c.Type)
		}
	}
	return out, nil
}

// Decode deserializes a record into a freshly allocated row.
func (rc *RowCodec) Decode(rec []byte) (expr.Row, error) {
	row := make(expr.Row, len(rc.cols))
	if err := rc.DecodeInto(rec, row); err != nil {
		return nil, err
	}
	return row, nil
}

// DecodeMemo caches the most recently decoded string per column so repeated
// values (the benchmark's constant filler column, low-cardinality strings)
// decode without allocating. Each scan owns its memo — the codec itself is
// shared across concurrent scans and stays immutable.
type DecodeMemo struct {
	last []string
}

// DecodeInto deserializes a record into row, which must have exactly one
// slot per column — the allocation-free decode batched scans use to fill
// slab-carved rows. rec may alias pinned page memory: every decoded value
// (including string columns) is copied out, so row does not retain rec.
func (rc *RowCodec) DecodeInto(rec []byte, row expr.Row) error {
	return rc.DecodeIntoMemo(rec, row, nil)
}

// DecodeIntoMemo is DecodeInto with string-value memoization: when a string
// column's bytes match the previous record's value for that column, the
// prior string is reused instead of allocating a copy.
func (rc *RowCodec) DecodeIntoMemo(rec []byte, row expr.Row, memo *DecodeMemo) error {
	if len(rec) != rc.width {
		return fmt.Errorf("catalog: record length %d, want %d", len(rec), rc.width)
	}
	if len(row) != len(rc.cols) {
		return fmt.Errorf("catalog: row has %d slots, want %d", len(row), len(rc.cols))
	}
	off := 0
	for i, c := range rc.cols {
		notNull := rec[off] == 1
		off++
		switch c.Type {
		case expr.TInt, expr.TBool:
			if notNull {
				v := int64(binary.LittleEndian.Uint64(rec[off : off+8]))
				if c.Type == expr.TBool {
					row[i] = expr.B(v != 0)
				} else {
					row[i] = expr.I(v)
				}
			} else {
				row[i] = expr.Null
			}
			off += 8
		case expr.TString:
			if notNull {
				b := rec[off : off+c.FixedLen]
				end := len(b)
				for end > 0 && b[end-1] == 0 {
					end--
				}
				if memo != nil {
					if memo.last == nil {
						memo.last = make([]string, len(rc.cols))
					}
					// The conversion inside a == comparison does not allocate.
					if memo.last[i] != string(b[:end]) {
						memo.last[i] = string(b[:end])
					}
					row[i] = expr.S(memo.last[i])
				} else {
					row[i] = expr.S(string(b[:end]))
				}
			} else {
				row[i] = expr.Null
			}
			off += c.FixedLen
		default:
			return fmt.Errorf("catalog: column %s has unsupported type %v", c.Name, c.Type)
		}
	}
	return nil
}

// DecodeCol extracts a single column's value from a record without decoding
// the whole row (used by index builds and key probes).
func (rc *RowCodec) DecodeCol(rec []byte, idx int) (expr.Value, error) {
	if idx < 0 || idx >= len(rc.cols) {
		return expr.Null, fmt.Errorf("catalog: column index %d out of range", idx)
	}
	off := 0
	for i := 0; i < idx; i++ {
		switch rc.cols[i].Type {
		case expr.TInt, expr.TBool:
			off += 9
		case expr.TString:
			off += 1 + rc.cols[i].FixedLen
		default:
			return expr.Null, fmt.Errorf("catalog: column %s has unsupported type %v", rc.cols[i].Name, rc.cols[i].Type)
		}
	}
	c := rc.cols[idx]
	if rec[off] == 0 {
		return expr.Null, nil
	}
	off++
	switch c.Type {
	case expr.TInt:
		return expr.I(int64(binary.LittleEndian.Uint64(rec[off : off+8]))), nil
	case expr.TBool:
		return expr.B(binary.LittleEndian.Uint64(rec[off:off+8]) != 0), nil
	default:
		b := rec[off : off+c.FixedLen]
		end := len(b)
		for end > 0 && b[end-1] == 0 {
			end--
		}
		return expr.S(string(b[:end])), nil
	}
}
