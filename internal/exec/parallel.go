package exec

// Intra-query parallel operators (Env.Parallelism > 1): an exchange that
// range-partitions a heap scan across workers, and a filter that evaluates
// an expensive predicate on a bounded worker pool. Both deliver rows to the
// consumer through a fan-in channel in batches; row order is not preserved
// (the serial Volcano tree, the default, is untouched). Charged cost is
// parallelism-invariant: every page is read once per scan pass and every
// row is evaluated exactly once, on atomic counters — only wall-clock time
// changes. With predicate caching ON, concurrent misses on one binding may
// invoke the function more than once (each invocation is still counted);
// see DESIGN.md §11.

import (
	"fmt"
	"sync"

	"predplace/internal/catalog"
	"predplace/internal/expr"
	"predplace/internal/plan"
	"predplace/internal/storage"
)

// parallelBatch is the number of rows grouped per channel send, amortizing
// synchronization across the pipeline.
const parallelBatch = 64

// rowBatch is one channel message from a parallel worker: rows, or a
// terminal error.
type rowBatch struct {
	rows []expr.Row
	err  error
}

// fanIn is the consumer side shared by all parallel operators: workers send
// rowBatches into out; the single consumer drains them via next. shutdown
// tears the pipeline down without leaking goroutines.
type fanIn struct {
	out     chan rowBatch
	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup
	cur     []expr.Row
	pos     int
	done    bool
	err     error
}

// init sizes the fan-in channels; buffers is the channel capacity in
// batches.
func (f *fanIn) init(buffers int) {
	f.out = make(chan rowBatch, buffers)
	f.stop = make(chan struct{})
	f.cur, f.pos, f.done, f.err = nil, 0, false, nil
}

// goCloser spawns the goroutine that closes out once every producer
// registered on wg has finished. Call after all wg.Add calls.
func (f *fanIn) goCloser() {
	go func() {
		f.wg.Wait()
		close(f.out)
	}()
}

// send delivers a batch unless the consumer has shut down; reports whether
// the batch was accepted.
func (f *fanIn) send(b rowBatch) bool {
	select {
	case f.out <- b:
		return true
	case <-f.stop:
		return false
	}
}

// next yields the next row produced by the workers (order unspecified).
func (f *fanIn) next() (expr.Row, bool, error) {
	for {
		if f.pos < len(f.cur) {
			row := f.cur[f.pos]
			f.pos++
			return row, true, nil
		}
		if !f.refill(true) {
			return nil, false, f.err
		}
	}
}

// nextBatch copies up to len(dst) rows out of the workers' fan-in. Once at
// least one row is buffered it refills without blocking, so a partially
// filled batch flows downstream instead of stalling on slow workers.
func (f *fanIn) nextBatch(dst []expr.Row) (int, error) {
	n := 0
	for n < len(dst) {
		if f.pos < len(f.cur) {
			c := copy(dst[n:], f.cur[f.pos:])
			f.pos += c
			n += c
			continue
		}
		if !f.refill(n == 0) {
			if f.err != nil {
				return 0, f.err
			}
			break
		}
	}
	return n, nil
}

// refill consumes the next worker batch into cur, recycling the drained
// buffer. With block=false it returns immediately when no batch is ready.
// Returns false on exhaustion, error (stored in f.err), or would-block.
func (f *fanIn) refill(block bool) bool {
	if f.done {
		return false
	}
	if f.cur != nil {
		putRowBuf(f.cur)
		f.cur = nil
		f.pos = 0
	}
	var b rowBatch
	var ok bool
	if block {
		b, ok = <-f.out
	} else {
		select {
		case b, ok = <-f.out:
		default:
			return false
		}
	}
	if !ok {
		f.done = true
		return false
	}
	if b.err != nil {
		f.done = true
		f.err = b.err
		return false
	}
	f.cur, f.pos = b.rows, 0
	return true
}

// shutdown signals the workers to stop, drains the output channel so
// blocked senders unblock, and waits for every goroutine to exit. In-flight
// and half-consumed batches are recycled to the buffer pool — an abandoned
// pipeline (consumer error, budget abort, cancellation) must not strand
// pooled buffers. Safe to call more than once, and a no-op if the operator
// was never opened.
func (f *fanIn) shutdown() {
	if f.out == nil {
		return
	}
	f.stopped.Do(func() { close(f.stop) })
	for b := range f.out {
		// recycle in-flight batches until the closer closes the channel
		putRowBuf(b.rows)
	}
	f.wg.Wait()
	if f.cur != nil {
		putRowBuf(f.cur)
		f.cur, f.pos = nil, 0
	}
	f.done = true
}

// parallelScanIter is the exchange operator over a heap scan: the file's
// pages are split into one contiguous range per worker, each worker scans
// and decodes its range independently, and decoded rows fan in to the
// consumer. Every page is still read exactly once, so physical I/O matches
// the serial scan (the sequential/random split may shift — the charged
// total does not).
type parallelScanIter struct {
	e   *Env
	tab *catalog.Table
	// heap is the table's heap viewed through the query's I/O tracker,
	// resolved once before the workers spawn (the tracker is sharded and
	// concurrency-safe, so workers share one view).
	heap   *storage.HeapFile
	fan    fanIn
	probes []tableProbe
	tc     *opCounters
}

func newParallelSeqScan(e *Env, s *plan.SeqScan) (Iterator, error) {
	tab, err := e.Cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	if tab.Heap == nil || tab.Codec == nil {
		return nil, fmt.Errorf("exec: table %s has no storage", s.Table)
	}
	it := &parallelScanIter{e: e, tab: tab}
	if e.prof != nil {
		it.tc = e.nodeProf(s)
	}
	return it, nil
}

func (s *parallelScanIter) Open() error {
	// Resolved once before the workers spawn; the probe list and its
	// filters are immutable after the transfer prepass, so workers share
	// them without locks.
	s.probes = s.e.transferProbes(s.tab.Name)
	s.heap = s.e.heap(s.tab)
	n := s.tab.Heap.NumPages()
	w := s.e.workers()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	s.fan.init(w * 2)
	base, extra := n/w, n%w
	start := 0
	for i := 0; i < w; i++ {
		size := base
		if i < extra {
			size++
		}
		lo, hi := start, start+size
		start = hi
		s.fan.wg.Add(1)
		go s.scanPartition(lo, hi)
	}
	s.fan.goCloser()
	return nil
}

// scanPartition scans pages [lo, hi), decoding rows straight from pinned
// page memory into per-worker slab rows and batching them to the consumer
// in exchangeBatch-sized messages (pooled buffers).
func (s *parallelScanIter) scanPartition(lo, hi int) {
	defer s.fan.wg.Done()
	it := s.heap.ScanRange(lo, hi)
	defer it.Close()
	bs := s.e.exchangeBatch()
	width := len(s.tab.Columns)
	var alloc rowAlloc
	var memo catalog.DecodeMemo
	buf := getRowBuf(bs)[:0]
	count := 0
	for {
		rec, _, ok, err := it.NextRef()
		if err != nil {
			putRowBuf(buf)
			s.fan.send(rowBatch{err: err})
			return
		}
		if !ok {
			break
		}
		count++
		if count%1024 == 0 {
			if err := s.e.checkAbort(); err != nil {
				putRowBuf(buf)
				s.fan.send(rowBatch{err: err})
				return
			}
		}
		if len(s.probes) > 0 {
			keep, err := s.e.probeRecord(s.tab.Codec, rec, s.probes, s.tc)
			if err != nil {
				putRowBuf(buf)
				s.fan.send(rowBatch{err: err})
				return
			}
			if !keep {
				continue
			}
		}
		row := alloc.next(width)
		if err := s.tab.Codec.DecodeIntoMemo(rec, row, &memo); err != nil {
			putRowBuf(buf)
			s.fan.send(rowBatch{err: err})
			return
		}
		buf = append(buf, row)
		if len(buf) == bs {
			if !s.fan.send(rowBatch{rows: buf}) {
				putRowBuf(buf)
				return
			}
			buf = getRowBuf(bs)[:0]
		}
	}
	if len(buf) > 0 {
		if !s.fan.send(rowBatch{rows: buf}) {
			putRowBuf(buf)
		}
	} else {
		putRowBuf(buf)
	}
}

func (s *parallelScanIter) Next() (expr.Row, bool, error) {
	if s.fan.out == nil {
		return nil, false, fmt.Errorf("exec: Next before Open on SeqScan(%s)", s.tab.Name)
	}
	return s.fan.next()
}

// NextBatch drains whole exchange messages per call instead of one row per
// call, amortizing the channel hop that made parallel scans slower than
// serial ones at tuple granularity.
func (s *parallelScanIter) NextBatch(dst []expr.Row) (int, error) {
	if s.fan.out == nil {
		return 0, fmt.Errorf("exec: NextBatch before Open on SeqScan(%s)", s.tab.Name)
	}
	return s.fan.nextBatch(dst)
}

func (s *parallelScanIter) Close() error {
	s.fan.shutdown()
	return nil
}

// parallelFilterIter evaluates one expensive predicate on a bounded worker
// pool: a router drains the input into batches and the workers evaluate the
// predicate concurrently, so costly invocations overlap. Each input row is
// evaluated exactly once, keeping invocation counts (and charged cost, with
// caching off) identical to the serial filter.
type parallelFilterIter struct {
	e     *Env
	in    Iterator
	pred  *compiledPred
	tasks chan []expr.Row
	fan   fanIn
}

func newParallelFilter(e *Env, in Iterator, cp *compiledPred) Iterator {
	return &parallelFilterIter{e: e, in: in, pred: cp}
}

func (f *parallelFilterIter) Open() error {
	if err := f.in.Open(); err != nil {
		return err
	}
	w := f.e.workers()
	f.fan.init(w)
	f.tasks = make(chan []expr.Row, w)
	f.fan.wg.Add(1)
	go f.route()
	for i := 0; i < w; i++ {
		f.fan.wg.Add(1)
		go f.evalWorker()
	}
	f.fan.goCloser()
	return nil
}

// route drains the input batch-at-a-time (one NextBatch call per task
// batch instead of one Next call per row) and hands pooled batches to the
// worker pool.
func (f *parallelFilterIter) route() {
	defer f.fan.wg.Done()
	defer close(f.tasks)
	bs := f.e.exchangeBatch()
	for {
		buf := getRowBuf(bs)
		m, err := nextBatch(f.in, buf)
		if err != nil {
			putRowBuf(buf)
			f.fan.send(rowBatch{err: err})
			return
		}
		if m == 0 {
			putRowBuf(buf)
			return
		}
		select {
		case f.tasks <- buf[:m]:
		case <-f.fan.stop:
			putRowBuf(buf)
			return
		}
	}
}

// evalWorker applies the predicate to whole batches (one holdsBatch — and
// thus one predicate-cache shard-lock round — per batch), compacting
// passing rows in place and forwarding them. Each input row is still
// evaluated exactly once.
func (f *parallelFilterIter) evalWorker() {
	defer f.fan.wg.Done()
	count := 0
	var keep []bool
	var sc predScratch
	for batch := range f.tasks {
		if cap(keep) < len(batch) {
			keep = make([]bool, len(batch))
		}
		if err := f.pred.holdsBatch(f.e, batch, keep[:len(batch)], &count, &sc); err != nil {
			putRowBuf(batch)
			f.fan.send(rowBatch{err: err})
			return
		}
		out := batch[:0]
		for i, row := range batch {
			if keep[i] {
				out = append(out, row)
			}
		}
		if len(out) > 0 {
			if !f.fan.send(rowBatch{rows: out}) {
				putRowBuf(batch)
				return
			}
		} else {
			putRowBuf(batch)
		}
	}
}

func (f *parallelFilterIter) Next() (expr.Row, bool, error) {
	if f.fan.out == nil {
		return nil, false, fmt.Errorf("exec: Next before Open on parallel Filter")
	}
	return f.fan.next()
}

// NextBatch forwards the fan-in's batch path to batched consumers.
func (f *parallelFilterIter) NextBatch(dst []expr.Row) (int, error) {
	if f.fan.out == nil {
		return 0, fmt.Errorf("exec: NextBatch before Open on parallel Filter")
	}
	return f.fan.nextBatch(dst)
}

func (f *parallelFilterIter) Close() error {
	f.fan.shutdown()
	return f.in.Close()
}
