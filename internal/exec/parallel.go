package exec

// Intra-query parallel operators (Env.Parallelism > 1): an exchange that
// range-partitions a heap scan across workers, and a filter that evaluates
// an expensive predicate on a bounded worker pool. Both deliver rows to the
// consumer through a fan-in channel in batches; row order is not preserved
// (the serial Volcano tree, the default, is untouched). Charged cost is
// parallelism-invariant: every page is read once per scan pass and every
// row is evaluated exactly once, on atomic counters — only wall-clock time
// changes. With predicate caching ON, concurrent misses on one binding may
// invoke the function more than once (each invocation is still counted);
// see DESIGN.md §11.

import (
	"fmt"
	"sync"

	"predplace/internal/catalog"
	"predplace/internal/expr"
	"predplace/internal/plan"
)

// parallelBatch is the number of rows grouped per channel send, amortizing
// synchronization across the pipeline.
const parallelBatch = 64

// rowBatch is one channel message from a parallel worker: rows, or a
// terminal error.
type rowBatch struct {
	rows []expr.Row
	err  error
}

// fanIn is the consumer side shared by all parallel operators: workers send
// rowBatches into out; the single consumer drains them via next. shutdown
// tears the pipeline down without leaking goroutines.
type fanIn struct {
	out     chan rowBatch
	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup
	cur     []expr.Row
	pos     int
	done    bool
}

// init sizes the fan-in channels; buffers is the channel capacity in
// batches.
func (f *fanIn) init(buffers int) {
	f.out = make(chan rowBatch, buffers)
	f.stop = make(chan struct{})
	f.cur, f.pos, f.done = nil, 0, false
}

// goCloser spawns the goroutine that closes out once every producer
// registered on wg has finished. Call after all wg.Add calls.
func (f *fanIn) goCloser() {
	go func() {
		f.wg.Wait()
		close(f.out)
	}()
}

// send delivers a batch unless the consumer has shut down; reports whether
// the batch was accepted.
func (f *fanIn) send(b rowBatch) bool {
	select {
	case f.out <- b:
		return true
	case <-f.stop:
		return false
	}
}

// next yields the next row produced by the workers (order unspecified).
func (f *fanIn) next() (expr.Row, bool, error) {
	for {
		if f.pos < len(f.cur) {
			row := f.cur[f.pos]
			f.pos++
			return row, true, nil
		}
		if f.done {
			return nil, false, nil
		}
		b, ok := <-f.out
		if !ok {
			f.done = true
			return nil, false, nil
		}
		if b.err != nil {
			f.done = true
			return nil, false, b.err
		}
		f.cur, f.pos = b.rows, 0
	}
}

// shutdown signals the workers to stop, drains the output channel so
// blocked senders unblock, and waits for every goroutine to exit. Safe to
// call more than once, and a no-op if the operator was never opened.
func (f *fanIn) shutdown() {
	if f.out == nil {
		return
	}
	f.stopped.Do(func() { close(f.stop) })
	for range f.out {
		// discard in-flight batches until the closer closes the channel
	}
	f.wg.Wait()
}

// parallelScanIter is the exchange operator over a heap scan: the file's
// pages are split into one contiguous range per worker, each worker scans
// and decodes its range independently, and decoded rows fan in to the
// consumer. Every page is still read exactly once, so physical I/O matches
// the serial scan (the sequential/random split may shift — the charged
// total does not).
type parallelScanIter struct {
	e   *Env
	tab *catalog.Table
	fan fanIn
}

func newParallelSeqScan(e *Env, s *plan.SeqScan) (Iterator, error) {
	tab, err := e.Cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	if tab.Heap == nil || tab.Codec == nil {
		return nil, fmt.Errorf("exec: table %s has no storage", s.Table)
	}
	return &parallelScanIter{e: e, tab: tab}, nil
}

func (s *parallelScanIter) Open() error {
	n := s.tab.Heap.NumPages()
	w := s.e.workers()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	s.fan.init(w * 2)
	base, extra := n/w, n%w
	start := 0
	for i := 0; i < w; i++ {
		size := base
		if i < extra {
			size++
		}
		lo, hi := start, start+size
		start = hi
		s.fan.wg.Add(1)
		go s.scanPartition(lo, hi)
	}
	s.fan.goCloser()
	return nil
}

// scanPartition scans pages [lo, hi), decoding rows and batching them to
// the consumer.
func (s *parallelScanIter) scanPartition(lo, hi int) {
	defer s.fan.wg.Done()
	it := s.tab.Heap.ScanRange(lo, hi)
	defer it.Close()
	buf := make([]expr.Row, 0, parallelBatch)
	count := 0
	for {
		rec, _, ok, err := it.Next()
		if err != nil {
			s.fan.send(rowBatch{err: err})
			return
		}
		if !ok {
			break
		}
		count++
		if count%1024 == 0 {
			if err := s.e.checkBudget(); err != nil {
				s.fan.send(rowBatch{err: err})
				return
			}
		}
		row, err := s.tab.Codec.Decode(rec)
		if err != nil {
			s.fan.send(rowBatch{err: err})
			return
		}
		buf = append(buf, row)
		if len(buf) == parallelBatch {
			if !s.fan.send(rowBatch{rows: buf}) {
				return
			}
			buf = make([]expr.Row, 0, parallelBatch)
		}
	}
	if len(buf) > 0 {
		s.fan.send(rowBatch{rows: buf})
	}
}

func (s *parallelScanIter) Next() (expr.Row, bool, error) {
	if s.fan.out == nil {
		return nil, false, fmt.Errorf("exec: Next before Open on SeqScan(%s)", s.tab.Name)
	}
	return s.fan.next()
}

func (s *parallelScanIter) Close() error {
	s.fan.shutdown()
	return nil
}

// parallelFilterIter evaluates one expensive predicate on a bounded worker
// pool: a router drains the input into batches and the workers evaluate the
// predicate concurrently, so costly invocations overlap. Each input row is
// evaluated exactly once, keeping invocation counts (and charged cost, with
// caching off) identical to the serial filter.
type parallelFilterIter struct {
	e     *Env
	in    Iterator
	pred  *compiledPred
	tasks chan []expr.Row
	fan   fanIn
}

func newParallelFilter(e *Env, in Iterator, cp *compiledPred) Iterator {
	return &parallelFilterIter{e: e, in: in, pred: cp}
}

func (f *parallelFilterIter) Open() error {
	if err := f.in.Open(); err != nil {
		return err
	}
	w := f.e.workers()
	f.fan.init(w)
	f.tasks = make(chan []expr.Row, w)
	f.fan.wg.Add(1)
	go f.route()
	for i := 0; i < w; i++ {
		f.fan.wg.Add(1)
		go f.evalWorker()
	}
	f.fan.goCloser()
	return nil
}

// route drains the input serially and hands batches to the worker pool.
func (f *parallelFilterIter) route() {
	defer f.fan.wg.Done()
	defer close(f.tasks)
	buf := make([]expr.Row, 0, parallelBatch)
	for {
		row, ok, err := f.in.Next()
		if err != nil {
			f.fan.send(rowBatch{err: err})
			return
		}
		if !ok {
			break
		}
		buf = append(buf, row)
		if len(buf) == parallelBatch {
			select {
			case f.tasks <- buf:
			case <-f.fan.stop:
				return
			}
			buf = make([]expr.Row, 0, parallelBatch)
		}
	}
	if len(buf) > 0 {
		select {
		case f.tasks <- buf:
		case <-f.fan.stop:
		}
	}
}

// evalWorker applies the predicate to each batch, forwarding passing rows.
func (f *parallelFilterIter) evalWorker() {
	defer f.fan.wg.Done()
	count := 0
	for batch := range f.tasks {
		out := batch[:0]
		for _, row := range batch {
			count++
			if count%32 == 0 {
				if err := f.e.checkBudget(); err != nil {
					f.fan.send(rowBatch{err: err})
					return
				}
			}
			pass, err := f.pred.holds(f.e, row)
			if err != nil {
				f.fan.send(rowBatch{err: err})
				return
			}
			if pass {
				out = append(out, row)
			}
		}
		if len(out) > 0 {
			if !f.fan.send(rowBatch{rows: out}) {
				return
			}
		}
	}
}

func (f *parallelFilterIter) Next() (expr.Row, bool, error) {
	if f.fan.out == nil {
		return nil, false, fmt.Errorf("exec: Next before Open on parallel Filter")
	}
	return f.fan.next()
}

func (f *parallelFilterIter) Close() error {
	f.fan.shutdown()
	return f.in.Close()
}
