// Package exec is the Volcano-style execution engine: it interprets physical
// plan trees over the paged storage substrate, evaluates predicates with
// optional predicate caching, counts user-defined function invocations, and
// reports the paper's measurement: charged cost = physical page I/Os +
// synthetic spill I/Os + Σ (invocations × per-call cost).
package exec

import (
	"errors"
	"fmt"

	"predplace/internal/catalog"
	"predplace/internal/pcache"
	"predplace/internal/plan"
	"predplace/internal/storage"
)

// ErrBudgetExceeded aborts a query whose charged cost passed the budget —
// how the harness reproduces the paper's "PullUp used up all available swap
// space and never completed" for Query 5.
var ErrBudgetExceeded = errors.New("exec: charged-cost budget exceeded")

// Env is the execution context of one query. An Env is not safe for
// concurrent use; run one query at a time per Env.
type Env struct {
	// Cat resolves tables and functions.
	Cat *catalog.Catalog
	// Pool is the buffer pool all page access goes through.
	Pool *storage.BufferPool
	// Acct is the physical I/O accountant.
	Acct *storage.Accountant
	// Cache is the predicate cache (may be nil or disabled).
	Cache *pcache.Manager
	// Budget aborts execution when the charged cost exceeds it (0 = none).
	Budget float64
	// CountOnly discards result rows, keeping only the count.
	CountOnly bool

	baseIO      storage.IOStats
	syntheticIO float64
	trace       map[plan.Node]*int64
}

// begin snapshots counters at query start. The buffer pool is flushed so
// every query is measured cold, the way the paper's I/O-dominated runs were.
// A flush failure is fatal to the measurement (the baseline I/O snapshot
// would be wrong), so it aborts the query instead of being dropped.
func (e *Env) begin() error {
	e.Cat.ResetFuncCounters()
	if e.Cache != nil {
		e.Cache.Reset()
	}
	if err := e.Pool.FlushAll(); err != nil {
		return fmt.Errorf("exec: flushing buffer pool at query start: %w", err)
	}
	e.baseIO = e.Acct.Stats()
	e.syntheticIO = 0
	e.trace = map[plan.Node]*int64{}
	return nil
}

// ChargeSynthetic adds simulated spill I/O (external sort runs, hash
// partitions) in random-I/O units.
func (e *Env) ChargeSynthetic(units float64) { e.syntheticIO += units }

// Charged returns the charged cost so far: page I/Os since begin plus
// synthetic I/O plus function-invocation charges.
func (e *Env) Charged() float64 {
	io := e.Acct.Stats().Sub(e.baseIO)
	return float64(io.Total()) + e.syntheticIO + e.Cat.ChargedFuncCost()
}

// checkBudget returns ErrBudgetExceeded when past the budget.
func (e *Env) checkBudget() error {
	if e.Budget > 0 && e.Charged() > e.Budget {
		return ErrBudgetExceeded
	}
	return nil
}

// Stats reports the resources consumed by one executed query.
type Stats struct {
	// IO is the physical page traffic.
	IO storage.IOStats
	// SyntheticIO is simulated spill traffic in I/O units.
	SyntheticIO float64
	// FuncCharge is Σ invocations × per-call cost.
	FuncCharge float64
	// Invocations maps function name → call count.
	Invocations map[string]int64
	// CacheHits and CacheMisses report predicate-cache traffic.
	CacheHits, CacheMisses int64
	// CacheEntries is the number of cached bindings at query end (the
	// paper's §5.1 hash tables are per-query, so this is their peak size).
	CacheEntries int
	// Rows is the number of result rows.
	Rows int
}

// Charged is the paper's single-number measurement in random-I/O units.
func (s Stats) Charged() float64 {
	return float64(s.IO.Total()) + s.SyntheticIO + s.FuncCharge
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("charged=%.0f (io=%d synth=%.0f func=%.0f) rows=%d",
		s.Charged(), s.IO.Total(), s.SyntheticIO, s.FuncCharge, s.Rows)
}

// finish assembles the stats at query end.
func (e *Env) finish(rows int) Stats {
	inv := map[string]int64{}
	var charge float64
	for _, f := range e.Cat.Funcs() {
		if n := f.Calls(); n > 0 {
			inv[f.Name] = n
		}
		charge += f.ChargedCost()
	}
	var hits, misses int64
	var entries int
	if e.Cache != nil {
		hits, misses, entries = e.Cache.Stats()
	}
	return Stats{
		IO:           e.Acct.Stats().Sub(e.baseIO),
		SyntheticIO:  e.syntheticIO,
		FuncCharge:   charge,
		Invocations:  inv,
		CacheHits:    hits,
		CacheMisses:  misses,
		CacheEntries: entries,
		Rows:         rows,
	}
}
