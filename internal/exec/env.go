// Package exec is the Volcano-style execution engine: it interprets physical
// plan trees over the paged storage substrate, evaluates predicates with
// optional predicate caching, counts user-defined function invocations, and
// reports the paper's measurement: charged cost = physical page I/Os +
// synthetic spill I/Os + Σ (invocations × per-call cost).
//
// With Env.Parallelism > 1 the engine adds intra-query parallelism: heap
// scans are range-partitioned across workers (an exchange operator),
// expensive filters evaluate predicates on a bounded worker pool, and hash
// joins build and probe hash-partitioned tables in parallel. Charged-cost
// accounting is parallelism-invariant: page I/O, spill, and invocation
// counters are atomic and tuple-exact, so with predicate caching off a
// parallel run charges bit-for-bit what the serial run charges.
package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"predplace/internal/btree"
	"predplace/internal/catalog"
	"predplace/internal/cost"
	"predplace/internal/expr"
	"predplace/internal/pcache"
	"predplace/internal/plan"
	"predplace/internal/storage"
)

// ErrBudgetExceeded aborts a query whose charged cost passed the budget —
// how the harness reproduces the paper's "PullUp used up all available swap
// space and never completed" for Query 5.
var ErrBudgetExceeded = errors.New("exec: charged-cost budget exceeded")

// ErrCanceled wraps the context's cause when a query is aborted by
// cancellation or deadline; callers unwrap it (errors.Is) to reach
// context.Canceled or context.DeadlineExceeded.
var ErrCanceled = errors.New("exec: query canceled")

// Env is the execution context of one query. Run one query at a time per
// Env; within a query, the engine's own parallel operators may consume the
// Env from multiple goroutines (its accounting is concurrency-safe). All
// per-query mutable state — I/O accounting, synthetic charges, UDF
// invocation counters, predicate-cache contents — lives here, so any number
// of Envs over one catalog, pool, and disk execute concurrently without
// observing each other's charges.
type Env struct {
	// Ctx, when non-nil, cancels the query: every operator observes it on
	// the same cadence as the charged-cost budget check (checkAbort), so a
	// canceled or timed-out query unwinds promptly through the ordinary
	// error path — serial, parallel, and batched alike — with no extra
	// charges on the fault-free path.
	Ctx context.Context
	// Cat resolves tables and functions.
	Cat *catalog.Catalog
	// Pool is the buffer pool all page access goes through. It is shared
	// between sessions; the query's own I/O accounting comes from the
	// per-Env tracker (see Charged), never from shared pool state.
	Pool *storage.BufferPool
	// Cache is the predicate cache (may be nil or disabled).
	Cache *pcache.Manager
	// Budget aborts execution when the charged cost exceeds it (0 = none).
	Budget float64
	// CountOnly discards result rows, keeping only the count.
	CountOnly bool
	// Parallelism caps the worker fan-out of parallel operators (exchange
	// scans, parallel filters, partitioned hash joins). 0 or 1 executes
	// the classic serial Volcano tree — the default, which reproduces the
	// paper's figures byte-for-byte.
	Parallelism int
	// BatchSize sets the rows-per-batch width of the vectorized NextBatch
	// fast path: 0 uses DefaultBatchSize, 1 disables batching entirely
	// (exact legacy tuple-at-a-time execution), larger values batch that
	// many rows per call. Charged cost is per-tuple and batched operators
	// preserve serial evaluation order, so results and charged cost are
	// identical at every setting.
	BatchSize int
	// Profile enables per-operator runtime profiling (EXPLAIN ANALYZE v2):
	// every operator is wrapped in an instrumented iterator measuring wall
	// time and attributing physical I/O, and predicates count evaluations,
	// invocations, and cache traffic per plan node. Profiling is
	// observational only — charged cost, results, and row order are
	// byte-identical with it on or off; wall time is never charged. Off by
	// default, keeping the hot paths allocation-free.
	Profile bool
	// Validate, when set, checks every plan tree against plan.Validate's
	// structural invariants before execution. The facade snapshots it once
	// from PPLINT_VALIDATE at Open — not per query — so execution never
	// reads the process environment on the hot path.
	Validate bool
	// Transfer enables the predicate-transfer pre-filter pass: before the
	// main plan runs, Bloom filters flood selectivity across the join
	// graph's equality classes and the plan's scans consult them to drop
	// non-joining rows early (DESIGN.md §16). Filter builds and probes are
	// charged into the cost model (never free), and the pass is serial and
	// deterministic, so results and charged cost stay invariant across
	// Parallelism and BatchSize. Off by default: byte-identical execution.
	Transfer bool

	// tracker is the query's private I/O ledger: a cold-pool simulation with
	// the shared pool's exact replacement geometry, charging a read exactly
	// where a solo run on a freshly flushed pool would have paid one. It
	// makes charged cost independent of what other sessions keep resident —
	// and byte-identical to the query's single-session figure.
	tracker *storage.IOTracker
	// funcCalls counts this query's UDF invocations per function — the state
	// that used to live (shared, racy across sessions) on the catalog's
	// FuncDef objects. Guarded by funcMu; per-function counters are atomics
	// so parallel workers bump them without re-entering the map lock.
	funcMu    sync.Mutex
	funcCalls map[*expr.FuncDef]*atomic.Int64
	// syntheticIO accumulates bulk synthetic charges (external-sort spill);
	// spillTuples counts per-tuple hash-partition charges so their total is
	// a single count×constant product — identical in any evaluation order.
	syntheticMu sync.Mutex
	syntheticIO float64
	spillTuples atomic.Int64
	// bloomAdds and bloomProbes count predicate-transfer filter operations;
	// like spillTuples, totals are count×constant products, so the charge is
	// exact in any evaluation order (parallelism/batching-invariant).
	bloomAdds   atomic.Int64
	bloomProbes atomic.Int64
	// transfer holds the prepass's filters and counters for the running
	// query (nil when Transfer is off or the plan has no transferable join).
	transfer *transferState
	// buildSerial forces serial operators while building an ordered Limit's
	// subtree: parallel scans and filters do not preserve row order, and the
	// Limit's early termination is only correct on an order-preserving
	// chain. Set and restored around the recursive child build (which runs
	// single-threaded before execution starts; nested-loop runtime rebuilds
	// only read it, and ordered chains contain no joins).
	buildSerial bool

	traceMu sync.Mutex
	trace   map[plan.Node]*int64
	// prof holds per-node runtime counters; non-nil only while Profile is
	// on, so the default path never consults or allocates it per row.
	prof map[plan.Node]*opCounters
}

// workers returns the effective parallel fan-out (1 = serial).
func (e *Env) workers() int {
	if e.Parallelism > 1 {
		return e.Parallelism
	}
	return 1
}

// batchSize returns the effective NextBatch width (1 = tuple-at-a-time).
func (e *Env) batchSize() int {
	if e.BatchSize == 0 {
		return DefaultBatchSize
	}
	if e.BatchSize < 1 {
		return 1
	}
	return e.BatchSize
}

// exchangeBatch is the rows-per-message width of parallel operators'
// channels. Batched configurations reuse the batch width so one exchange
// hop moves one full batch; with batching off it falls back to the classic
// parallelBatch grouping (channel sends were always batched — per-row
// sends would drown the pipeline in synchronization).
func (e *Env) exchangeBatch() int {
	if bs := e.batchSize(); bs > 1 {
		return bs
	}
	return parallelBatch
}

// begin resets the per-query state at query start: a fresh private I/O
// tracker, fresh UDF counters, a cleared predicate cache. The query is
// *measured* cold — the tracker simulates a freshly flushed private pool —
// without flushing the shared pool other sessions are reading, so the
// figures match the paper's cold runs while sessions keep their warm pages.
// Callers that need a *physically* cold start (fault-injection determinism)
// evict explicitly via DB.EvictPool.
func (e *Env) begin() {
	e.tracker = storage.NewIOTracker(e.Pool)
	e.funcMu.Lock()
	e.funcCalls = map[*expr.FuncDef]*atomic.Int64{}
	e.funcMu.Unlock()
	if e.Cache != nil {
		e.Cache.Reset()
	}
	e.syntheticIO = 0
	e.spillTuples.Store(0)
	e.bloomAdds.Store(0)
	e.bloomProbes.Store(0)
	e.transfer = nil
	e.buildSerial = false
	e.trace = map[plan.Node]*int64{}
	if e.Profile {
		e.prof = map[plan.Node]*opCounters{}
	} else {
		e.prof = nil
	}
}

// trk returns the query's private I/O tracker, creating one lazily for
// entry points that bypass begin (MatchingTIDs). Lazy creation is safe:
// every entry point starts single-threaded, before parallel operators fan
// out.
func (e *Env) trk() *storage.IOTracker {
	if e.tracker == nil {
		e.tracker = storage.NewIOTracker(e.Pool)
	}
	return e.tracker
}

// heap returns tab's heap file as a view whose page accesses charge into
// this query's private ledger. All executor table access goes through it.
func (e *Env) heap(tab *catalog.Table) *storage.HeapFile {
	return tab.Heap.WithTracker(e.trk())
}

// index returns t as a probe view charging leaf I/Os into this query's
// private ledger instead of the shared tree's accountant.
func (e *Env) index(t *btree.Tree) *btree.Tree {
	return t.WithAcct(e.trk().Acct())
}

// ioStats returns the page I/O charged to this query so far; the profiler
// diffs it around operator calls to attribute I/O per plan node.
func (e *Env) ioStats() storage.IOStats {
	return e.trk().Stats()
}

// invoke evaluates f on args, counting the invocation in the query's own
// counters (never the catalog's shared FuncDef state) and routing any real
// I/O the function performs — subquery predicates reading pages — into the
// query's private tracker.
func (e *Env) invoke(f *expr.FuncDef, args []expr.Value) (expr.Value, error) {
	e.funcCount(f).Add(1)
	if f.EvalIO != nil {
		return f.EvalIO(e.tracker, args)
	}
	if f.EvalErr != nil {
		return f.EvalErr(args)
	}
	return f.Eval(args), nil
}

// funcCount returns this query's invocation counter for f, creating it (and
// the map itself, for entry points that bypass begin) on first use.
func (e *Env) funcCount(f *expr.FuncDef) *atomic.Int64 {
	e.funcMu.Lock()
	if e.funcCalls == nil {
		e.funcCalls = map[*expr.FuncDef]*atomic.Int64{}
	}
	c, ok := e.funcCalls[f]
	if !ok {
		c = new(atomic.Int64)
		e.funcCalls[f] = c
	}
	e.funcMu.Unlock()
	return c
}

// funcCharge returns Σ invocations × per-call cost over this query's own
// counters. RealWork functions charge zero: their page traffic is metered
// directly through the tracker.
func (e *Env) funcCharge() float64 {
	e.funcMu.Lock()
	defer e.funcMu.Unlock()
	var total float64
	for f, c := range e.funcCalls {
		if !f.RealWork {
			total += float64(c.Load()) * f.Cost
		}
	}
	return total
}

// ChargeSynthetic adds simulated spill I/O (external sort runs, hash
// partitions) in random-I/O units.
func (e *Env) ChargeSynthetic(units float64) {
	e.syntheticMu.Lock()
	e.syntheticIO += units
	e.syntheticMu.Unlock()
}

// ChargeSpillTuple charges one tuple's worth of Grace-hash partition spill.
// The charge is a counter, not a float accumulation, so the total is exact
// and independent of the order parallel workers charge it in.
func (e *Env) ChargeSpillTuple() { e.spillTuples.Add(1) }

// ChargeBloomAdd charges n predicate-transfer filter insertions
// (cost.BloomAddPerTuple each); counter-based like ChargeSpillTuple, so the
// total is exact in any evaluation order.
func (e *Env) ChargeBloomAdd(n int) { e.bloomAdds.Add(int64(n)) }

// ChargeBloomProbe charges n predicate-transfer filter probes
// (cost.BloomProbePerTuple each).
func (e *Env) ChargeBloomProbe(n int) { e.bloomProbes.Add(int64(n)) }

// synthetic returns the synthetic I/O charged so far.
func (e *Env) synthetic() float64 {
	e.syntheticMu.Lock()
	bulk := e.syntheticIO
	e.syntheticMu.Unlock()
	return bulk + float64(e.spillTuples.Load())*cost.HashSpillPerTuple +
		float64(e.bloomAdds.Load())*cost.BloomAddPerTuple +
		float64(e.bloomProbes.Load())*cost.BloomProbePerTuple
}

// Charged returns the charged cost so far: the query's page I/Os plus
// synthetic I/O plus function-invocation charges — all read from per-Env
// state, so concurrent sessions' figures never bleed into each other. Safe
// to call from parallel workers.
func (e *Env) Charged() float64 {
	return float64(e.trk().Stats().Total()) + e.synthetic() + e.funcCharge()
}

// checkAbort is the per-operator abort check, called on each operator's
// existing budget-check cadence: it returns ErrBudgetExceeded when the
// charged cost passed the budget, and an ErrCanceled-wrapped context cause
// when Ctx is canceled. Both conditions abort through the ordinary error
// path, so iterator teardown (Close, unpin, worker shutdown) runs exactly
// as it does for any other execution error.
func (e *Env) checkAbort() error {
	if e.Budget > 0 && e.Charged() > e.Budget {
		return ErrBudgetExceeded
	}
	if e.Ctx != nil {
		select {
		case <-e.Ctx.Done():
			return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(e.Ctx))
		default:
		}
	}
	return nil
}

// nodeCounter returns the per-node row counter for EXPLAIN ANALYZE,
// creating it on first use. Safe for concurrent Build calls (nested-loop
// joins rebuild their inner subtree mid-query, possibly from a parallel
// operator's worker goroutine).
func (e *Env) nodeCounter(n plan.Node) *int64 {
	e.traceMu.Lock()
	defer e.traceMu.Unlock()
	counter, ok := e.trace[n]
	if !ok {
		counter = new(int64)
		e.trace[n] = counter
	}
	return counter
}

// nodeProf returns the per-node profiling counters, creating them on first
// use. Only called while profiling is on (e.prof non-nil); safe for
// concurrent Build calls, like nodeCounter.
func (e *Env) nodeProf(n plan.Node) *opCounters {
	e.traceMu.Lock()
	defer e.traceMu.Unlock()
	c, ok := e.prof[n]
	if !ok {
		c = &opCounters{}
		e.prof[n] = c
	}
	return c
}

// Stats reports the resources consumed by one executed query.
type Stats struct {
	// IO is the physical page traffic.
	IO storage.IOStats
	// SyntheticIO is simulated spill traffic in I/O units.
	SyntheticIO float64
	// FuncCharge is Σ invocations × per-call cost.
	FuncCharge float64
	// Invocations maps function name → call count.
	Invocations map[string]int64
	// CacheHits and CacheMisses report predicate-cache traffic.
	CacheHits, CacheMisses int64
	// CacheEntries is the number of cached bindings at query end (the
	// paper's §5.1 hash tables are per-query, so this is their peak size).
	CacheEntries int
	// Rows is the number of rows the executor produced. This is an executor
	// measurement, not the size of the delivered result set: with top-k
	// planning off, the SQL facade's LIMIT truncates Result.Rows after
	// execution without touching this count (Rows is the full pre-LIMIT
	// cardinality), while with a TopK/Limit plan root the executor itself
	// stops at the LIMIT bound and Rows is that post-limit count (≤ k) —
	// fewer rows were genuinely produced, which is the point of early
	// termination. COUNT(*) replaces it with the single aggregate row.
	Rows int
	// Transfer summarizes the predicate-transfer stage (nil unless
	// Env.Transfer was on and the plan had a transferable join).
	Transfer *TransferStats
}

// TransferStats summarizes one query's predicate-transfer stage.
type TransferStats struct {
	// Classes is the number of join-key equivalence classes spanning two or
	// more tables; FiltersBuilt counts filter (re)builds across both passes
	// and BuildRows the keys inserted into them.
	Classes      int   `json:"classes"`
	FiltersBuilt int   `json:"filters_built"`
	BuildRows    int64 `json:"build_rows"`
	// Probes counts every filter test (prepass and main scans); Pruned the
	// rows those tests rejected.
	Probes int64 `json:"probes"`
	Pruned int64 `json:"pruned"`
	// PrepassCharged is the charged cost of the prepass itself (its page
	// I/O, filter builds and probes, and any cache-warming invocations);
	// ProbeCharge is the charged cost of the main scans' probes. Both are
	// part of Stats.Charged — transfer's overhead is never free.
	PrepassCharged float64 `json:"prepass_charged"`
	ProbeCharge    float64 `json:"probe_charge"`
	// FPEst is the analytic false-positive estimate averaged over the final
	// class filters; FPActual the measured rate over the main scans'
	// non-member probes (−1 unless profiling captured the key sets).
	FPEst    float64 `json:"fp_est"`
	FPActual float64 `json:"fp_actual"`
}

// Charged is the paper's single-number measurement in random-I/O units.
func (s Stats) Charged() float64 {
	return float64(s.IO.Total()) + s.SyntheticIO + s.FuncCharge
}

// String renders the stats compactly. Predicate-cache traffic is appended
// when there was any, so ppsql and ppbench output shows cache behavior
// without JSON; cache-free runs render exactly as before.
func (s Stats) String() string {
	base := fmt.Sprintf("charged=%.0f (io=%d synth=%.0f func=%.0f) rows=%d",
		s.Charged(), s.IO.Total(), s.SyntheticIO, s.FuncCharge, s.Rows)
	if s.CacheHits != 0 || s.CacheMisses != 0 || s.CacheEntries != 0 {
		base += fmt.Sprintf(" cache(hits=%d misses=%d entries=%d)",
			s.CacheHits, s.CacheMisses, s.CacheEntries)
	}
	if t := s.Transfer; t != nil {
		base += fmt.Sprintf(" transfer(classes=%d built=%d probes=%d pruned=%d)",
			t.Classes, t.FiltersBuilt, t.Probes, t.Pruned)
	}
	return base
}

// finish assembles the stats at query end from the query's own counters.
func (e *Env) finish(rows int) Stats {
	inv := map[string]int64{}
	var charge float64
	e.funcMu.Lock()
	for f, c := range e.funcCalls {
		n := c.Load()
		if n > 0 {
			inv[f.Name] = n
		}
		if !f.RealWork {
			charge += float64(n) * f.Cost
		}
	}
	e.funcMu.Unlock()
	var hits, misses int64
	var entries int
	if e.Cache != nil {
		hits, misses, entries = e.Cache.Stats()
	}
	s := Stats{
		IO:           e.trk().Stats(),
		SyntheticIO:  e.synthetic(),
		FuncCharge:   charge,
		Invocations:  inv,
		CacheHits:    hits,
		CacheMisses:  misses,
		CacheEntries: entries,
		Rows:         rows,
	}
	if e.transfer != nil {
		s.Transfer = e.transfer.stats(e)
	}
	return s
}
