package exec

import (
	"sort"
	"strings"
	"testing"

	"predplace/internal/catalog"
	"predplace/internal/datagen"
	"predplace/internal/expr"
	"predplace/internal/pcache"
	"predplace/internal/plan"
	"predplace/internal/query"
	"predplace/internal/storage"
)

// newEnv builds a small benchmark database and an Env over it.
func newEnv(t *testing.T, tables []int, caching bool) (*datagen.DB, *Env) {
	t.Helper()
	db, err := datagen.Build(datagen.Config{Scale: 0.02, Tables: tables})
	if err != nil {
		t.Fatal(err)
	}
	return db, &Env{
		Cat:   db.Cat,
		Pool:  db.Pool,
		Cache: pcache.NewManager(caching, 0),
	}
}

func scanNode(t *testing.T, cat *catalog.Catalog, table string) *plan.SeqScan {
	t.Helper()
	tab, err := cat.Table(table)
	if err != nil {
		t.Fatal(err)
	}
	cols := make([]query.ColRef, len(tab.Columns))
	for i, c := range tab.Columns {
		cols[i] = query.ColRef{Table: table, Col: c.Name}
	}
	return &plan.SeqScan{Table: table, ColRefs: cols}
}

// naiveRows loads a whole table as rows (reference evaluator input).
func naiveRows(t *testing.T, cat *catalog.Catalog, table string) []expr.Row {
	t.Helper()
	tab, _ := cat.Table(table)
	var out []expr.Row
	it := tab.Heap.Scan()
	defer it.Close()
	for {
		rec, _, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		row, err := tab.Codec.Decode(rec)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, row)
	}
}

// rowKey canonicalizes a row for set comparison.
func rowKey(r expr.Row) string {
	var b strings.Builder
	for _, v := range r {
		b.WriteString(v.String())
		b.WriteByte('|')
	}
	return b.String()
}

func sameRowMultiset(t *testing.T, got, want []expr.Row) {
	t.Helper()
	g := make([]string, len(got))
	w := make([]string, len(want))
	for i, r := range got {
		g[i] = rowKey(r)
	}
	for i, r := range want {
		w[i] = rowKey(r)
	}
	sort.Strings(g)
	sort.Strings(w)
	if len(g) != len(w) {
		t.Fatalf("row count: got %d want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("row multiset mismatch at %d:\n got %s\nwant %s", i, g[i], w[i])
		}
	}
}

func TestSeqScanAllRows(t *testing.T) {
	db, env := newEnv(t, []int{1}, false)
	res, err := Run(env, scanNode(t, db.Cat, "t1"))
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Cat.Table("t1")
	if res.Stats.Rows != int(tab.Card) {
		t.Fatalf("rows = %d, want %d", res.Stats.Rows, tab.Card)
	}
	if res.Stats.IO.Total() == 0 {
		t.Fatal("scan should cost I/O")
	}
}

func TestIndexScanEquality(t *testing.T) {
	db, env := newEnv(t, []int{2}, false)
	v := expr.I(3)
	node := &plan.IndexScan{
		Table: "t2", Col: "a10", Eq: &v,
		ColRefs: scanNode(t, db.Cat, "t2").ColRefs,
	}
	res, err := Run(env, node)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rows != 10 {
		t.Fatalf("rows = %d, want 10 (dup factor)", res.Stats.Rows)
	}
	tab, _ := db.Cat.Table("t2")
	idx := tab.ColIndex("a10")
	for _, r := range res.Rows {
		if r[idx].I != 3 {
			t.Fatalf("row with a10=%d leaked through index scan", r[idx].I)
		}
	}
}

func TestIndexScanRange(t *testing.T) {
	db, env := newEnv(t, []int{2}, false)
	lo, hi := expr.I(10), expr.I(19)
	node := &plan.IndexScan{
		Table: "t2", Col: "a1", Lo: &lo, Hi: &hi,
		ColRefs: scanNode(t, db.Cat, "t2").ColRefs,
	}
	res, err := Run(env, node)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rows != 10 {
		t.Fatalf("rows = %d, want 10", res.Stats.Rows)
	}
}

func TestFilterCheapPredicate(t *testing.T) {
	db, env := newEnv(t, []int{1}, false)
	scan := scanNode(t, db.Cat, "t1")
	q, err := query.NewQuery([]string{"t1"}, []*query.Predicate{{
		Kind: query.KindSelCmp, Op: expr.OpLT,
		Left: query.ColRef{Table: "t1", Col: "ua1"}, Value: expr.I(50),
	}})
	if err != nil {
		t.Fatal(err)
	}
	query.Analyze(db.Cat, q)
	res, err := Run(env, &plan.Filter{Input: scan, Pred: q.Preds[0]})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rows != 50 {
		t.Fatalf("rows = %d, want 50", res.Stats.Rows)
	}
	if res.Stats.FuncCharge != 0 {
		t.Fatal("cheap predicate should not charge function cost")
	}
}

func TestFilterCountsInvocations(t *testing.T) {
	db, env := newEnv(t, []int{1}, false)
	f, _ := db.Cat.Func("costly10")
	q, _ := query.NewQuery([]string{"t1"}, []*query.Predicate{{
		Kind: query.KindFunc, Func: f, Args: []query.ColRef{{Table: "t1", Col: "u10"}},
	}})
	query.Analyze(db.Cat, q)
	res, err := Run(env, &plan.Filter{Input: scanNode(t, db.Cat, "t1"), Pred: q.Preds[0]})
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Cat.Table("t1")
	if res.Stats.Invocations["costly10"] != tab.Card {
		t.Fatalf("invocations = %d, want %d", res.Stats.Invocations["costly10"], tab.Card)
	}
	if res.Stats.FuncCharge != float64(tab.Card)*10 {
		t.Fatalf("charge = %v", res.Stats.FuncCharge)
	}
}

func TestFilterCachingReducesInvocations(t *testing.T) {
	db, env := newEnv(t, []int{1}, true)
	f, _ := db.Cat.Func("costly10")
	q, _ := query.NewQuery([]string{"t1"}, []*query.Predicate{{
		Kind: query.KindFunc, Func: f, Args: []query.ColRef{{Table: "t1", Col: "u10"}},
	}})
	query.Analyze(db.Cat, q)
	res, err := Run(env, &plan.Filter{Input: scanNode(t, db.Cat, "t1"), Pred: q.Preds[0]})
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Cat.Table("t1")
	distinct := tab.Card / 10
	if res.Stats.Invocations["costly10"] != distinct {
		t.Fatalf("cached invocations = %d, want %d (distinct values)",
			res.Stats.Invocations["costly10"], distinct)
	}
	if res.Stats.CacheHits != tab.Card-distinct {
		t.Fatalf("cache hits = %d, want %d", res.Stats.CacheHits, tab.Card-distinct)
	}
}

// joinOfMethod builds t1 ⋈ t3 on ua1 with the given method and checks the
// result against the naive reference join.
func testJoinMethod(t *testing.T, method plan.JoinMethod, indexCol string) {
	db, env := newEnv(t, []int{1, 3}, false)
	joinCol := "ua1"
	if indexCol != "" {
		joinCol = indexCol
	}
	q, _ := query.NewQuery([]string{"t1", "t3"}, []*query.Predicate{{
		Kind: query.KindJoinCmp, Op: expr.OpEQ,
		Left: query.ColRef{Table: "t1", Col: joinCol}, Right: query.ColRef{Table: "t3", Col: joinCol},
	}})
	query.Analyze(db.Cat, q)
	outer := scanNode(t, db.Cat, "t1")
	inner := scanNode(t, db.Cat, "t3")
	j := &plan.Join{
		Method: method, Outer: outer, Inner: inner, Primary: q.Preds[0],
		InnerIndexCol: indexCol,
		SortOuter:     true, SortInner: true,
	}
	j.ColRefs = plan.ConcatCols(outer, inner)
	res, err := Run(env, j)
	if err != nil {
		t.Fatal(err)
	}

	// Reference nested-loop join in pure Go.
	r1 := naiveRows(t, db.Cat, "t1")
	r3 := naiveRows(t, db.Cat, "t3")
	t1tab, _ := db.Cat.Table("t1")
	t3tab, _ := db.Cat.Table("t3")
	i1, i3 := t1tab.ColIndex(joinCol), t3tab.ColIndex(joinCol)
	var want []expr.Row
	for _, a := range r1 {
		for _, b := range r3 {
			if !a[i1].IsNull() && a[i1].Equal(b[i3]) {
				want = append(want, a.Concat(b))
			}
		}
	}
	sameRowMultiset(t, res.Rows, want)
}

func TestHashJoinMatchesReference(t *testing.T)  { testJoinMethod(t, plan.HashJoin, "") }
func TestMergeJoinMatchesReference(t *testing.T) { testJoinMethod(t, plan.MergeJoin, "") }
func TestNLJoinMatchesReference(t *testing.T)    { testJoinMethod(t, plan.NestLoop, "") }
func TestIndexNLJoinMatchesReference(t *testing.T) {
	testJoinMethod(t, plan.IndexNestLoop, "a1")
}

func TestJoinMethodsAgree(t *testing.T) {
	// All four methods must return identical multisets on a duplicating join.
	db, env := newEnv(t, []int{1, 2}, false)
	q, _ := query.NewQuery([]string{"t1", "t2"}, []*query.Predicate{{
		Kind: query.KindJoinCmp, Op: expr.OpEQ,
		Left: query.ColRef{Table: "t1", Col: "a10"}, Right: query.ColRef{Table: "t2", Col: "a10"},
	}})
	query.Analyze(db.Cat, q)
	var ref []expr.Row
	for i, m := range []plan.JoinMethod{plan.HashJoin, plan.MergeJoin, plan.NestLoop, plan.IndexNestLoop} {
		outer := scanNode(t, db.Cat, "t1")
		inner := scanNode(t, db.Cat, "t2")
		j := &plan.Join{
			Method: m, Outer: outer, Inner: inner, Primary: q.Preds[0],
			SortOuter: true, SortInner: true,
		}
		if m == plan.IndexNestLoop {
			j.InnerIndexCol = "a10"
		}
		j.ColRefs = plan.ConcatCols(outer, inner)
		res, err := Run(env, j)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if i == 0 {
			ref = res.Rows
			if len(ref) == 0 {
				t.Fatal("join should produce rows")
			}
			continue
		}
		sameRowMultiset(t, res.Rows, ref)
	}
}

func TestIndexNLJoinAppliesInnerResidualFilters(t *testing.T) {
	db, env := newEnv(t, []int{1, 3}, false)
	q, _ := query.NewQuery([]string{"t1", "t3"}, []*query.Predicate{
		{Kind: query.KindJoinCmp, Op: expr.OpEQ,
			Left: query.ColRef{Table: "t1", Col: "a1"}, Right: query.ColRef{Table: "t3", Col: "a1"}},
		{Kind: query.KindSelCmp, Op: expr.OpLT,
			Left: query.ColRef{Table: "t3", Col: "u10"}, Value: expr.I(5)},
	})
	query.Analyze(db.Cat, q)
	outer := scanNode(t, db.Cat, "t1")
	innerScan := scanNode(t, db.Cat, "t3")
	inner := &plan.Filter{Input: innerScan, Pred: q.Preds[1]}
	j := &plan.Join{Method: plan.IndexNestLoop, Outer: outer, Inner: inner,
		Primary: q.Preds[0], InnerIndexCol: "a1"}
	j.ColRefs = plan.ConcatCols(outer, inner)
	res, err := Run(env, j)
	if err != nil {
		t.Fatal(err)
	}
	t3tab, _ := db.Cat.Table("t3")
	u10 := t3tab.ColIndex("u10") + len(outer.ColRefs)
	for _, r := range res.Rows {
		if r[u10].I >= 5 {
			t.Fatalf("residual filter not applied: u10=%d", r[u10].I)
		}
	}
	if res.Stats.Rows == 0 {
		t.Fatal("expected some matches")
	}
}

func TestNLJoinExpensivePrimary(t *testing.T) {
	db, env := newEnv(t, []int{1}, false)
	// Self-ish join: t1 × t1 with expensive primary? Use two tables instead.
	db2, env2 := newEnv(t, []int{1, 2}, false)
	_ = db
	_ = env
	f, _ := db2.Cat.Func("costly10join")
	q, _ := query.NewQuery([]string{"t1", "t2"}, []*query.Predicate{{
		Kind: query.KindFunc, Func: f,
		Args: []query.ColRef{{Table: "t1", Col: "u10"}, {Table: "t2", Col: "u10"}},
	}})
	query.Analyze(db2.Cat, q)
	outer := scanNode(t, db2.Cat, "t1")
	inner := scanNode(t, db2.Cat, "t2")
	j := &plan.Join{Method: plan.NestLoop, Outer: outer, Inner: inner,
		Primary: q.Preds[0], ExpensivePrimary: true}
	j.ColRefs = plan.ConcatCols(outer, inner)
	res, err := Run(env2, j)
	if err != nil {
		t.Fatal(err)
	}
	t1tab, _ := db2.Cat.Table("t1")
	t2tab, _ := db2.Cat.Table("t2")
	pairs := t1tab.Card * t2tab.Card
	if res.Stats.Invocations["costly10join"] != pairs {
		t.Fatalf("invocations = %d, want %d (all pairs)", res.Stats.Invocations["costly10join"], pairs)
	}
}

func TestBudgetAbortsAsDNF(t *testing.T) {
	db, env := newEnv(t, []int{1, 2}, false)
	f, _ := db.Cat.Func("costly100")
	q, _ := query.NewQuery([]string{"t1"}, []*query.Predicate{{
		Kind: query.KindFunc, Func: f, Args: []query.ColRef{{Table: "t1", Col: "ua1"}},
	}})
	query.Analyze(db.Cat, q)
	env.Budget = 500 // 200 tuples × 100 I/Os would be 20000
	res, err := Run(env, &plan.Filter{Input: scanNode(t, db.Cat, "t1"), Pred: q.Preds[0]})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DNF {
		t.Fatal("expected DNF on budget overrun")
	}
	if res.Stats.Charged() > 60000 {
		t.Fatalf("abort came far too late: %v", res.Stats.Charged())
	}
}

func TestCountOnlyDiscardsRows(t *testing.T) {
	db, env := newEnv(t, []int{1}, false)
	env.CountOnly = true
	res, err := Run(env, scanNode(t, db.Cat, "t1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != nil {
		t.Fatal("CountOnly should discard rows")
	}
	if res.Stats.Rows == 0 {
		t.Fatal("count should still be reported")
	}
}

func TestNullJoinKeysNeverMatch(t *testing.T) {
	// Build a tiny custom table with NULL keys.
	db, env := newEnv(t, []int{1}, false)
	_ = env
	cols := []catalog.Column{{Name: "k", Type: expr.TInt, Distinct: 2, Min: 0, Max: 1}}
	codec, _ := catalog.NewRowCodec(cols)
	tab := &catalog.Table{Name: "nulls", Columns: cols, Codec: codec, TupleBytes: codec.Width()}
	tab.Heap = storage.NewHeapFile(db.Pool)
	for _, v := range []expr.Value{expr.I(0), expr.Null, expr.I(1)} {
		rec, _ := codec.Encode(expr.Row{v})
		tab.Heap.Insert(rec)
	}
	tab.Card = 3
	db.Cat.AddTable(tab)

	q, _ := query.NewQuery([]string{"nulls", "t1"}, []*query.Predicate{{
		Kind: query.KindJoinCmp, Op: expr.OpEQ,
		Left: query.ColRef{Table: "nulls", Col: "k"}, Right: query.ColRef{Table: "t1", Col: "ua1"},
	}})
	query.Analyze(db.Cat, q)
	outer := &plan.SeqScan{Table: "nulls", ColRefs: []query.ColRef{{Table: "nulls", Col: "k"}}}
	inner := scanNode(t, db.Cat, "t1")
	for _, m := range []plan.JoinMethod{plan.HashJoin, plan.MergeJoin, plan.NestLoop} {
		j := &plan.Join{Method: m, Outer: outer, Inner: inner, Primary: q.Preds[0],
			SortOuter: true, SortInner: true}
		j.ColRefs = plan.ConcatCols(outer, inner)
		env2 := &Env{Cat: db.Cat, Pool: db.Pool, Cache: pcache.NewManager(false, 0)}
		res, err := Run(env2, j)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Stats.Rows != 2 {
			t.Fatalf("%v: rows = %d, want 2 (NULL key must not match)", m, res.Stats.Rows)
		}
	}
}
