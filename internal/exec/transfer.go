package exec

// Predicate transfer (DESIGN.md §16): before the main plan runs, a prepass
// walks the join graph's equality classes and floods selectivity sideways
// through Bloom filters. Each class keeps one current filter; tables are
// scanned smallest-estimated first (forward), then in reverse (backward),
// and every scan probes the class's previous filter, applies the table's own
// local predicates, and rebuilds the filter from its survivors. By
// induction, any value that can appear in the final join output survives
// every rebuild (the filter has no false negatives), so the main plan's
// scans can consult the final filters and drop non-matching rows before
// paying for the full-row decode.
//
// The prepass is always serial and deterministic regardless of
// Env.Parallelism/BatchSize, and every filter build and probe is charged
// into the cost model (ChargeBloomAdd/ChargeBloomProbe) — transfer is never
// free. A backward-pass rescan is skipped when none of the table's class
// filters changed since its forward scan (version counters), so the pass
// costs at most two heap scans per transferred table and usually less.

import (
	"sort"
	"sync/atomic"

	"predplace/internal/catalog"
	"predplace/internal/cost"
	"predplace/internal/expr"
	"predplace/internal/plan"
	"predplace/internal/query"
)

// transferBatch is the record granularity of the prepass scan loops: key
// hashes are buffered per slot and pushed through TestBatch/AddBatch once
// per batch.
const transferBatch = 256

// transferClass is one join-key equivalence class: the transitive closure of
// two-table equality join predicates. Every column in the class is equal in
// every output row, so a filter built from any member's surviving values is
// a sound pre-filter for every other member.
type transferClass struct {
	id int
	// cols maps table name → the table-schema column indexes in the class
	// (usually one; self-equalities can contribute several).
	cols map[string][]int
	// names lists the member columns as "table.col", sorted — the class's
	// deterministic identity, also used for EXPLAIN annotations.
	names []string
	// filter is the class's current filter (nil until the first build);
	// replaced wholesale after each contributing table scan.
	filter  *bloomFilter
	version int
	// keys mirrors the exact hash set behind filter — only captured while
	// profiling, to measure the actual false-positive rate.
	keys map[uint64]struct{}
}

// transferSlot binds one table column to its class, with the prepass's
// per-batch hash scratch.
type transferSlot struct {
	class  *transferClass
	colIdx int
	hs     []uint64
}

// cheapPred is a zero-cost single-table comparison the prepass applies
// directly to partially decoded records.
type cheapPred struct {
	colIdx int
	op     expr.CmpOp
	val    expr.Value
}

// tableProbe is one received filter a main-plan scan consults for a table.
type tableProbe struct {
	colIdx int
	class  *transferClass
}

// transferTable is one base table participating in the transfer schedule.
type transferTable struct {
	tab   *catalog.Table
	slots []transferSlot
	cheap []cheapPred
	// costly holds cacheable expensive single-table predicates, evaluated in
	// the prepass only when the predicate cache is on (the invocations warm
	// the same cache entries the main plan will hit, so the work is paid
	// once and the survivors sharpen every filter the table seeds).
	costly     []*compiledPred
	costlyCols []int
	est        float64 // estimated rows after local predicates
	seen       []int   // class versions at this table's last prepass scan
	probes     []tableProbe
}

// transferState carries the prepass's filters and counters through the rest
// of the query; main-plan scans read it (immutably) via Env.transferProbes.
type transferState struct {
	classes []*transferClass
	tables  map[string]*transferTable
	order   []*transferTable

	filtersBuilt   int
	buildRows      int64
	prepassCharged float64
	prepassProbes  int64

	pruned      atomic.Int64
	fpNonMember atomic.Int64
	fpFalse     atomic.Int64
}

// newTransferState derives the transfer schedule from a plan tree: join-key
// equivalence classes from its equality join predicates, local predicates
// per base table, and the smallest-first scan order. Returns nil when the
// plan has no class spanning two tables (single-table queries, pure
// expensive-join graphs) — transfer then has nothing to do.
func newTransferState(e *Env, root plan.Node) (*transferState, error) {
	var preds []*query.Predicate
	seenPred := map[*query.Predicate]bool{}
	baseTables := map[string]bool{}
	addPred := func(p *query.Predicate) {
		if p != nil && !seenPred[p] {
			seenPred[p] = true
			preds = append(preds, p)
		}
	}
	plan.Walk(root, func(n plan.Node) {
		switch t := n.(type) {
		case *plan.SeqScan:
			baseTables[t.Table] = true
		case *plan.IndexScan:
			baseTables[t.Table] = true
			addPred(t.Matched)
		case *plan.Filter:
			addPred(t.Pred)
		case *plan.Join:
			addPred(t.Primary)
		}
	})

	// Union-find over "table.col" keys, seeded by the equality join edges.
	parent := map[string]string{}
	refs := map[string]query.ColRef{}
	key := func(r query.ColRef) string {
		k := r.Table + "." + r.Col
		refs[k] = r
		return k
	}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if rb < ra { // smaller key roots, for deterministic class identity
			ra, rb = rb, ra
		}
		parent[rb] = ra
	}
	for _, p := range preds {
		if p.Kind == query.KindJoinCmp && p.Op == expr.OpEQ && len(p.Tables) == 2 &&
			baseTables[p.Left.Table] && baseTables[p.Right.Table] {
			union(key(p.Left), key(p.Right))
		}
	}

	groups := map[string][]string{}
	for k := range parent {
		r := find(k)
		groups[r] = append(groups[r], k)
	}
	roots := make([]string, 0, len(groups))
	for r, members := range groups {
		tabs := map[string]bool{}
		for _, m := range members {
			tabs[refs[m].Table] = true
		}
		if len(tabs) >= 2 {
			roots = append(roots, r)
		}
	}
	if len(roots) == 0 {
		return nil, nil
	}
	sort.Strings(roots)

	ts := &transferState{tables: map[string]*transferTable{}}
	table := func(name string) (*transferTable, error) {
		if t := ts.tables[name]; t != nil {
			return t, nil
		}
		tab, err := e.Cat.Table(name)
		if err != nil {
			return nil, err
		}
		t := &transferTable{tab: tab, est: float64(tab.Card)}
		ts.tables[name] = t
		return t, nil
	}
	for i, r := range roots {
		members := groups[r]
		sort.Strings(members)
		c := &transferClass{id: i, cols: map[string][]int{}, names: members}
		for _, m := range members {
			ref := refs[m]
			t, err := table(ref.Table)
			if err != nil {
				return nil, err
			}
			c.cols[ref.Table] = append(c.cols[ref.Table], t.tab.ColIndex(ref.Col))
			t.slots = append(t.slots, transferSlot{class: c, colIdx: t.tab.ColIndex(ref.Col), hs: make([]uint64, transferBatch)})
			t.seen = append(t.seen, 0)
		}
		ts.classes = append(ts.classes, c)
	}

	// Local predicates: cheap comparisons always; expensive cacheable
	// functions only when the cache will keep their main-plan cost at zero.
	for _, p := range preds {
		if len(p.Tables) != 1 {
			continue
		}
		t := ts.tables[p.Tables[0]]
		if t == nil {
			continue
		}
		switch p.Kind {
		case query.KindSelCmp:
			idx := t.tab.ColIndex(p.Left.Col)
			if idx < 0 {
				continue
			}
			t.cheap = append(t.cheap, cheapPred{colIdx: idx, op: p.Op, val: p.Value})
		case query.KindFunc:
			if p.Func == nil || !e.Cache.Enabled() || !p.Func.Cacheable {
				continue
			}
			cols := make([]query.ColRef, len(t.tab.Columns))
			for i, c := range t.tab.Columns {
				cols[i] = query.ColRef{Table: t.tab.Name, Col: c.Name}
			}
			cp, err := compilePred(p, cols)
			if err != nil {
				return nil, err
			}
			t.costly = append(t.costly, cp)
			for _, idx := range cp.argIdx {
				t.costlyCols = append(t.costlyCols, idx)
			}
		default: // single-table join predicates cannot occur
			continue
		}
		if s := p.Selectivity; s > 0 && s < 1 {
			t.est *= s
		}
	}

	ts.order = make([]*transferTable, 0, len(ts.tables))
	for _, t := range ts.tables {
		ts.order = append(ts.order, t)
	}
	sort.Slice(ts.order, func(i, j int) bool {
		a, b := ts.order[i], ts.order[j]
		if a.est != b.est {
			return a.est < b.est
		}
		return a.tab.Name < b.tab.Name
	})
	return ts, nil
}

// runTransferPrepass derives the transfer schedule from the plan and
// executes it: a forward pass over the tables smallest-first, then a
// backward pass that rescans only tables whose received filters changed.
// Errors (budget, cancellation, injected faults) propagate exactly as main
// execution errors do; the heap iterators are closed on every path.
func (e *Env) runTransferPrepass(root plan.Node) error {
	ts, err := newTransferState(e, root)
	if err != nil || ts == nil {
		return err
	}
	charged0 := e.Charged()
	probes0 := e.bloomProbes.Load()
	for _, t := range ts.order {
		if err := ts.scanTable(e, t); err != nil {
			return err
		}
	}
	for i := len(ts.order) - 1; i >= 0; i-- {
		t := ts.order[i]
		if !t.dirty() {
			continue
		}
		if err := ts.scanTable(e, t); err != nil {
			return err
		}
	}
	for _, t := range ts.order {
		for _, s := range t.slots {
			if s.class.filter != nil {
				t.probes = append(t.probes, tableProbe{colIdx: s.colIdx, class: s.class})
			}
		}
	}
	ts.prepassCharged = e.Charged() - charged0
	ts.prepassProbes = e.bloomProbes.Load() - probes0
	// Leave the query's I/O ledger cold: the prepass scans warm the
	// simulated LRU in a serial, schedule-dependent order, and the main
	// plan's charged hit pattern against that leftover state would vary with
	// executor mode (tuple vs batch, serial vs parallel partition
	// interleaving). Evicting the simulation makes each main-scan page miss
	// exactly once regardless of mode, keeping the charged cost
	// deterministic and parallelism/batching-invariant. The shared pool is
	// left alone — other sessions' resident pages are not ours to evict, and
	// physical residency no longer affects this query's measurement.
	e.trk().EvictUnpinned()
	e.transfer = ts
	return nil
}

// dirty reports whether any of the table's class filters was rebuilt since
// its last prepass scan — the backward pass's skip condition.
func (t *transferTable) dirty() bool {
	for i, s := range t.slots {
		if s.class.version != t.seen[i] {
			return true
		}
	}
	return false
}

// scanTable runs one prepass scan of a table: apply cheap local predicates
// to partially decoded records, probe each class's previous filter, evaluate
// cacheable expensive predicates on the survivors, and rebuild every class
// filter the table contributes to from what remains. The class filters are
// replaced only after the scan completes, so the scan consistently probes
// the pre-scan filters.
func (ts *transferState) scanTable(e *Env, t *transferTable) error {
	it := e.heap(t.tab).Scan()
	defer it.Close()

	builders := map[*transferClass]*bloomFilter{}
	var keysets map[*transferClass]map[uint64]struct{}
	if e.prof != nil {
		keysets = map[*transferClass]map[uint64]struct{}{}
	}
	for i := range t.slots {
		c := t.slots[i].class
		if builders[c] == nil {
			builders[c] = newBloomFilter(int64(t.est) + 1)
			if keysets != nil {
				keysets[c] = map[uint64]struct{}{}
			}
		}
	}

	width := len(t.tab.Columns)
	var (
		keep    [transferBatch]bool
		slotVal = make([]expr.Value, len(t.slots))
		rows    []expr.Row
		backing []expr.Value
	)
	if len(t.costly) > 0 {
		backing = make([]expr.Value, transferBatch*width)
		rows = make([]expr.Row, transferBatch)
		for i := range rows {
			rows[i] = backing[i*width : (i+1)*width]
		}
	}

	flush := func(m int) error {
		if m == 0 {
			return nil
		}
		for i := 0; i < m; i++ {
			keep[i] = true
		}
		probes := 0
		for si := range t.slots {
			s := &t.slots[si]
			if s.class.filter == nil {
				continue
			}
			probes += s.class.filter.TestBatch(s.hs[:m], keep[:m])
		}
		e.ChargeBloomProbe(probes)
		for i := 0; i < m; i++ {
			if !keep[i] {
				ts.pruned.Add(1)
			}
		}
		for _, cp := range t.costly {
			for i := 0; i < m; i++ {
				if !keep[i] {
					continue
				}
				pass, err := cp.holds(e, rows[i])
				if err != nil {
					return err
				}
				if !pass {
					keep[i] = false
				}
			}
		}
		added := 0
		for si := range t.slots {
			s := &t.slots[si]
			n := 0
			for i := 0; i < m; i++ {
				if keep[i] {
					s.hs[n] = s.hs[i]
					n++
				}
			}
			builders[s.class].AddBatch(s.hs[:n])
			added += n
			if ks := keysets[s.class]; ks != nil {
				for _, h := range s.hs[:n] {
					ks[h] = struct{}{}
				}
			}
		}
		e.ChargeBloomAdd(added)
		return nil
	}

	count, m := 0, 0
	for {
		rec, _, ok, err := it.NextRef()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		count++
		if count%1024 == 0 {
			if err := e.checkAbort(); err != nil {
				return err
			}
		}
		pass := true
		for _, cp := range t.cheap {
			v, err := t.tab.Codec.DecodeCol(rec, cp.colIdx)
			if err != nil {
				return err
			}
			b, known := cp.op.Apply(v, cp.val).Bool()
			if !known || !b {
				pass = false
				break
			}
		}
		if !pass {
			continue
		}
		for si := range t.slots {
			v, err := t.tab.Codec.DecodeCol(rec, t.slots[si].colIdx)
			if err != nil {
				return err
			}
			if v.IsNull() {
				// A NULL join key never equi-joins; the row cannot reach
				// the output, so it contributes to no filter.
				pass = false
				break
			}
			slotVal[si] = v
		}
		if !pass {
			continue
		}
		for si := range t.slots {
			t.slots[si].hs[m] = bloomHash(slotVal[si])
		}
		if rows != nil {
			for _, idx := range t.costlyCols {
				v, err := t.tab.Codec.DecodeCol(rec, idx)
				if err != nil {
					return err
				}
				rows[m][idx] = v
			}
		}
		m++
		if m == transferBatch {
			if err := flush(m); err != nil {
				return err
			}
			m = 0
		}
	}
	if err := flush(m); err != nil {
		return err
	}

	// Publish: replace each contributed class filter with this table's
	// rebuild and remember the versions this scan saw.
	done := map[*transferClass]bool{}
	for si := range t.slots {
		c := t.slots[si].class
		if !done[c] {
			done[c] = true
			c.filter = builders[c]
			c.keys = keysets[c]
			c.version++
			ts.filtersBuilt++
			ts.buildRows += builders[c].adds
		}
		t.seen[si] = c.version
	}
	return nil
}

// transferProbes returns the received-filter probe list for a base table —
// nil when transfer is off, the prepass built nothing, or the table is
// outside every class. Read-only after the prepass, so parallel scan
// workers share it without locks.
func (e *Env) transferProbes(table string) []tableProbe {
	if e.transfer == nil {
		return nil
	}
	if t := e.transfer.tables[table]; t != nil {
		return t.probes
	}
	return nil
}

// testFilter probes one class filter, feeding the exact-set false-positive
// measurement when profiling captured the filter's key set.
func (e *Env) testFilter(c *transferClass, h uint64) bool {
	pass := c.filter.Test(h)
	if c.keys != nil {
		if _, member := c.keys[h]; !member {
			e.transfer.fpNonMember.Add(1)
			if pass {
				e.transfer.fpFalse.Add(1)
			}
		}
	}
	return pass
}

// probeRecord consults every received filter for one raw heap record,
// decoding only the key columns — the caller skips the full-row decode when
// the record is pruned. A NULL join key prunes without a probe (NULL never
// equi-joins). Probes short-circuit in deterministic slot order, and the
// charge is counted after the loop so a short-circuited record still
// charges exactly the tests it performed.
func (e *Env) probeRecord(codec *catalog.RowCodec, rec []byte, probes []tableProbe, tc *opCounters) (bool, error) {
	keep := true
	tested := 0
	var derr error
	for i := range probes {
		p := &probes[i]
		v, err := codec.DecodeCol(rec, p.colIdx)
		if err != nil {
			derr = err
			break
		}
		if v.IsNull() {
			keep = false
			break
		}
		tested++
		if !e.testFilter(p.class, bloomHash(v)) {
			keep = false
			break
		}
	}
	e.ChargeBloomProbe(tested)
	if tc != nil {
		tc.transferProbes.Add(int64(tested))
	}
	if derr != nil {
		return false, derr
	}
	if !keep {
		e.transfer.pruned.Add(1)
		if tc != nil {
			tc.transferPruned.Add(1)
		}
	}
	return keep, nil
}

// probeRow is the decoded-row variant used by index scans, whose rows are
// already fetched and decoded — pruning saves the downstream operators, not
// the decode.
func (e *Env) probeRow(row expr.Row, probes []tableProbe, tc *opCounters) bool {
	keep := true
	tested := 0
	for i := range probes {
		p := &probes[i]
		v := row[p.colIdx]
		if v.IsNull() {
			keep = false
			break
		}
		tested++
		if !e.testFilter(p.class, bloomHash(v)) {
			keep = false
			break
		}
	}
	e.ChargeBloomProbe(tested)
	if tc != nil {
		tc.transferProbes.Add(int64(tested))
	}
	if !keep {
		e.transfer.pruned.Add(1)
		if tc != nil {
			tc.transferPruned.Add(1)
		}
	}
	return keep
}

// stats summarizes the transfer stage for Stats/EXPLAIN ANALYZE.
func (ts *transferState) stats(e *Env) *TransferStats {
	s := &TransferStats{
		Classes:        len(ts.classes),
		FiltersBuilt:   ts.filtersBuilt,
		BuildRows:      ts.buildRows,
		Probes:         e.bloomProbes.Load(),
		Pruned:         ts.pruned.Load(),
		PrepassCharged: ts.prepassCharged,
		ProbeCharge:    float64(e.bloomProbes.Load()-ts.prepassProbes) * cost.BloomProbePerTuple,
		FPActual:       -1,
	}
	for _, c := range ts.classes {
		if c.filter != nil {
			s.FPEst += c.filter.EstFPRate()
		}
	}
	if len(ts.classes) > 0 {
		s.FPEst /= float64(len(ts.classes))
	}
	if nm := ts.fpNonMember.Load(); nm > 0 {
		s.FPActual = float64(ts.fpFalse.Load()) / float64(nm)
	}
	return s
}
