package exec

import (
	"fmt"
	"sync"
	"testing"

	"predplace/internal/datagen"
	"predplace/internal/expr"
	"predplace/internal/pcache"
	"predplace/internal/plan"
	"predplace/internal/query"
	"predplace/internal/storage"
)

func TestBudgetAbortsDuringHashBuild(t *testing.T) {
	// The hash join builds its table in Open; an expensive inner filter must
	// trip the budget during the build, not after.
	db, env := newEnv(t, []int{1, 2}, false)
	f, _ := db.Cat.Func("costly100")
	q, _ := query.NewQuery([]string{"t1", "t2"}, []*query.Predicate{
		{Kind: query.KindJoinCmp, Op: expr.OpEQ,
			Left: query.ColRef{Table: "t1", Col: "ua1"}, Right: query.ColRef{Table: "t2", Col: "ua1"}},
		{Kind: query.KindFunc, Func: f, Args: []query.ColRef{{Table: "t2", Col: "ua1"}}},
	})
	query.Analyze(db.Cat, q)
	outer := scanNode(t, db.Cat, "t1")
	inner := &plan.Filter{Input: scanNode(t, db.Cat, "t2"), Pred: q.Preds[1]}
	j := &plan.Join{Method: plan.HashJoin, Outer: outer, Inner: inner, Primary: q.Preds[0]}
	j.ColRefs = plan.ConcatCols(outer, inner)
	env.Budget = 500
	res, err := Run(env, j)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DNF {
		t.Fatal("expected DNF during hash build")
	}
}

func TestMergeJoinDuplicateRunsBothSides(t *testing.T) {
	// a10 join: ~10 duplicates per key on each side — every pairing must be
	// produced exactly once.
	db, env := newEnv(t, []int{2}, false)
	_ = env
	db2, env2 := newEnv(t, []int{2, 4}, false)
	_ = db
	q, _ := query.NewQuery([]string{"t2", "t4"}, []*query.Predicate{
		{Kind: query.KindJoinCmp, Op: expr.OpEQ,
			Left: query.ColRef{Table: "t2", Col: "a10"}, Right: query.ColRef{Table: "t4", Col: "a10"}},
	})
	query.Analyze(db2.Cat, q)
	outer := scanNode(t, db2.Cat, "t2")
	inner := scanNode(t, db2.Cat, "t4")
	j := &plan.Join{Method: plan.MergeJoin, Outer: outer, Inner: inner,
		Primary: q.Preds[0], SortOuter: true, SortInner: true}
	j.ColRefs = plan.ConcatCols(outer, inner)
	res, err := Run(env2, j)
	if err != nil {
		t.Fatal(err)
	}
	// t2: 400 tuples, 40 a10-values ×10; t4: 800 tuples, 80 values ×10.
	// Shared values: 40 → 40 × 10 × 10 = 4000 output pairs.
	if res.Stats.Rows != 4000 {
		t.Fatalf("rows = %d, want 4000", res.Stats.Rows)
	}
}

func TestNextBeforeOpenFails(t *testing.T) {
	db, env := newEnv(t, []int{1}, false)
	it, err := Build(env, scanNode(t, db.Cat, "t1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := it.Next(); err == nil {
		t.Fatal("Next before Open should error")
	}
}

func TestExpensivePrimaryCached(t *testing.T) {
	// With caching on, the expensive join predicate's invocations collapse
	// to the distinct binding pairs.
	db, env := newEnv(t, []int{1, 2}, true)
	f, _ := db.Cat.Func("costly10join")
	q, _ := query.NewQuery([]string{"t1", "t2"}, []*query.Predicate{{
		Kind: query.KindFunc, Func: f,
		Args: []query.ColRef{{Table: "t1", Col: "u100"}, {Table: "t2", Col: "u100"}},
	}})
	query.Analyze(db.Cat, q)
	outer := scanNode(t, db.Cat, "t1")
	inner := scanNode(t, db.Cat, "t2")
	j := &plan.Join{Method: plan.NestLoop, Outer: outer, Inner: inner,
		Primary: q.Preds[0], ExpensivePrimary: true}
	j.ColRefs = plan.ConcatCols(outer, inner)
	res, err := Run(env, j)
	if err != nil {
		t.Fatal(err)
	}
	t1tab, _ := db.Cat.Table("t1")
	t2tab, _ := db.Cat.Table("t2")
	// distinct(t1.u100) × distinct(t2.u100) = 2 × 4 = 8 bindings.
	distinct := (t1tab.Card / 100) * (t2tab.Card / 100)
	if res.Stats.Invocations["costly10join"] != distinct {
		t.Fatalf("invocations = %d, want %d (distinct pairs)",
			res.Stats.Invocations["costly10join"], distinct)
	}
}

func TestCrossProductNLJoin(t *testing.T) {
	db, env := newEnv(t, []int{1, 2}, false)
	outer := scanNode(t, db.Cat, "t1")
	inner := scanNode(t, db.Cat, "t2")
	j := &plan.Join{Method: plan.NestLoop, Outer: outer, Inner: inner} // Primary nil
	j.ColRefs = plan.ConcatCols(outer, inner)
	env.CountOnly = true
	res, err := Run(env, j)
	if err != nil {
		t.Fatal(err)
	}
	t1tab, _ := db.Cat.Table("t1")
	t2tab, _ := db.Cat.Table("t2")
	if int64(res.Stats.Rows) != t1tab.Card*t2tab.Card {
		t.Fatalf("cross product rows = %d, want %d", res.Stats.Rows, t1tab.Card*t2tab.Card)
	}
}

func TestUnknownJoinMethodRejected(t *testing.T) {
	db, env := newEnv(t, []int{1}, false)
	outer := scanNode(t, db.Cat, "t1")
	j := &plan.Join{Method: plan.JoinMethod(99), Outer: outer, Inner: outer}
	if _, err := Build(env, j); err == nil {
		t.Fatal("unknown method should be rejected")
	}
}

func TestIndexNLRequiresEqualityPrimary(t *testing.T) {
	db, env := newEnv(t, []int{1, 2}, false)
	q, _ := query.NewQuery([]string{"t1", "t2"}, []*query.Predicate{{
		Kind: query.KindJoinCmp, Op: expr.OpLT,
		Left: query.ColRef{Table: "t1", Col: "a1"}, Right: query.ColRef{Table: "t2", Col: "a1"},
	}})
	query.Analyze(db.Cat, q)
	outer := scanNode(t, db.Cat, "t1")
	inner := scanNode(t, db.Cat, "t2")
	j := &plan.Join{Method: plan.IndexNestLoop, Outer: outer, Inner: inner,
		Primary: q.Preds[0], InnerIndexCol: "a1"}
	if _, err := Build(env, j); err == nil {
		t.Fatal("inequality primary should be rejected for index NL")
	}
}

func TestConcurrentReadOnlyQueries(t *testing.T) {
	// Separate Envs over the same storage must be able to scan concurrently
	// (the buffer pool and accountant are mutex-guarded).
	db, err := datagen.Build(datagen.Config{Scale: 0.02, Tables: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			env := &Env{Cat: db.Cat, Pool: db.Pool,
				Cache: pcache.NewManager(false, 0), CountOnly: true}
			tab, _ := db.Cat.Table("t3")
			cols := make([]query.ColRef, len(tab.Columns))
			for i, c := range tab.Columns {
				cols[i] = query.ColRef{Table: "t3", Col: c.Name}
			}
			it, err := Build(env, &plan.SeqScan{Table: "t3", ColRefs: cols})
			if err != nil {
				errs <- err
				return
			}
			if err := it.Open(); err != nil {
				errs <- err
				return
			}
			n := 0
			for {
				_, ok, err := it.Next()
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					break
				}
				n++
			}
			it.Close()
			if n != int(tab.Card) {
				errs <- fmt.Errorf("scanned %d, want %d", n, tab.Card)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{SyntheticIO: 5, FuncCharge: 100, Rows: 3,
		IO: storage.IOStats{SeqReads: 10, RandReads: 2}}
	out := s.String()
	if out == "" || s.Charged() != 117 {
		t.Fatalf("stats = %q charged=%v", out, s.Charged())
	}
}
