package exec

import (
	"testing"

	"predplace/internal/expr"
	"predplace/internal/plan"
	"predplace/internal/query"
)

// profNode finds the OpProfile node whose Op matches, depth-first.
func profNode(p *OpProfile, op string) *OpProfile {
	if p.Op == op {
		return p
	}
	for _, c := range p.Children {
		if got := profNode(c, op); got != nil {
			return got
		}
	}
	return nil
}

// TestProfileIndexNLInnerAttribution: an index-nested-loop join executes its
// inner side through direct B-tree probes — the inner plan nodes are never
// built as iterators. Profiling must still attribute actual row counts to
// them (the historical EXPLAIN ANALYZE "actual=n/a" bug).
func TestProfileIndexNLInnerAttribution(t *testing.T) {
	db, env := newEnv(t, []int{1, 3}, false)
	env.Profile = true
	q, _ := query.NewQuery([]string{"t1", "t3"}, []*query.Predicate{
		{Kind: query.KindJoinCmp, Op: expr.OpEQ,
			Left: query.ColRef{Table: "t1", Col: "a1"}, Right: query.ColRef{Table: "t3", Col: "a1"}},
		{Kind: query.KindSelCmp, Op: expr.OpLT,
			Left: query.ColRef{Table: "t3", Col: "u10"}, Value: expr.I(5)},
	})
	query.Analyze(db.Cat, q)
	outer := scanNode(t, db.Cat, "t1")
	innerScan := scanNode(t, db.Cat, "t3")
	inner := &plan.Filter{Input: innerScan, Pred: q.Preds[1]}
	j := &plan.Join{Method: plan.IndexNestLoop, Outer: outer, Inner: inner,
		Primary: q.Preds[0], InnerIndexCol: "a1"}
	j.ColRefs = plan.ConcatCols(outer, inner)
	res, err := Run(env, j)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rows == 0 {
		t.Fatal("expected matches")
	}
	if res.Profile == nil {
		t.Fatal("profiling on but no profile returned")
	}
	// Every plan node must have a trace entry — including the probe-driven
	// inner chain that was never built as an iterator tree.
	plan.Walk(j, func(n plan.Node) {
		if _, ok := res.NodeRows[n]; !ok {
			t.Errorf("node %s missing from NodeRows", n.Describe())
		}
	})
	fp := profNode(res.Profile, inner.Describe())
	if fp == nil {
		t.Fatalf("inner filter missing from profile:\n%+v", res.Profile)
	}
	if fp.ActRows == 0 {
		t.Error("inner residual filter attributed no rows")
	}
	if fp.PredEvals == 0 {
		t.Error("inner residual filter attributed no predicate evaluations")
	}
	sp := profNode(res.Profile, innerScan.Describe())
	if sp == nil || sp.ActRows == 0 {
		t.Errorf("inner base scan rows not attributed: %+v", sp)
	}
	// The probe loop fetches matching tuples then filters: the scan must see
	// at least as many rows as survive the residual.
	if sp.ActRows < fp.ActRows {
		t.Errorf("scan rows %d < filter rows %d", sp.ActRows, fp.ActRows)
	}
	if res.Profile.ActRows != int64(res.Stats.Rows) {
		t.Errorf("root profile rows %d != stats rows %d", res.Profile.ActRows, res.Stats.Rows)
	}
}

// TestProfileNestLoopEmptyOuter: a nested-loop inner under an empty outer is
// never opened; its profile nodes must still exist and report zero — not be
// absent (the facade renders absence as "actual=n/a").
func TestProfileNestLoopEmptyOuter(t *testing.T) {
	db, env := newEnv(t, []int{1, 2}, false)
	env.Profile = true
	q, _ := query.NewQuery([]string{"t1", "t2"}, []*query.Predicate{
		{Kind: query.KindJoinCmp, Op: expr.OpEQ,
			Left: query.ColRef{Table: "t1", Col: "a1"}, Right: query.ColRef{Table: "t2", Col: "a1"}},
		{Kind: query.KindSelCmp, Op: expr.OpLT,
			Left: query.ColRef{Table: "t1", Col: "ua1"}, Value: expr.I(0)},
	})
	query.Analyze(db.Cat, q)
	outerScan := scanNode(t, db.Cat, "t1")
	outer := &plan.Filter{Input: outerScan, Pred: q.Preds[1]} // ua1 < 0: empty
	innerScan := scanNode(t, db.Cat, "t2")
	j := &plan.Join{Method: plan.NestLoop, Outer: outer, Inner: innerScan, Primary: q.Preds[0]}
	j.ColRefs = plan.ConcatCols(outer, innerScan)
	res, err := Run(env, j)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rows != 0 {
		t.Fatalf("join should be empty, got %d rows", res.Stats.Rows)
	}
	if _, ok := res.NodeRows[innerScan]; !ok {
		t.Error("unreached inner scan missing from NodeRows")
	}
	sp := profNode(res.Profile, innerScan.Describe())
	if sp == nil {
		t.Fatal("unreached inner scan missing from profile")
	}
	if sp.ActRows != 0 || sp.Opens != 0 {
		t.Errorf("unreached inner reports rows=%d opens=%d, want 0/0", sp.ActRows, sp.Opens)
	}
}

// TestProfileObservational: the same plan charges byte-identical cost with
// profiling on and off, and the profile's per-node function charges sum to
// the run's total.
func TestProfileObservational(t *testing.T) {
	db, env := newEnv(t, []int{1}, false)
	f, err := db.Cat.Func("costly10")
	if err != nil {
		t.Fatal(err)
	}
	mk := func() plan.Node {
		q, _ := query.NewQuery([]string{"t1"}, []*query.Predicate{{
			Kind: query.KindFunc, Func: f, Args: []query.ColRef{{Table: "t1", Col: "u10"}},
		}})
		query.Analyze(db.Cat, q)
		return &plan.Filter{Input: scanNode(t, db.Cat, "t1"), Pred: q.Preds[0]}
	}
	plain, err := Run(env, mk())
	if err != nil {
		t.Fatal(err)
	}
	env2 := &Env{Cat: env.Cat, Pool: env.Pool, Cache: env.Cache}
	env2.Profile = true
	prof, err := Run(env2, mk())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.Charged() != prof.Stats.Charged() {
		t.Fatalf("profiling changed charged cost: %f vs %f",
			plain.Stats.Charged(), prof.Stats.Charged())
	}
	if plain.Stats.Rows != prof.Stats.Rows {
		t.Fatalf("profiling changed row count: %d vs %d", plain.Stats.Rows, prof.Stats.Rows)
	}
	var chargeSum float64
	var walk func(p *OpProfile)
	walk = func(p *OpProfile) {
		chargeSum += p.FuncCharge
		for _, c := range p.Children {
			walk(c)
		}
	}
	walk(prof.Profile)
	if chargeSum != prof.Stats.FuncCharge {
		t.Fatalf("profile func charges sum to %f, stats say %f", chargeSum, prof.Stats.FuncCharge)
	}
}
