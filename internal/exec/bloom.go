package exec

// Blocked Bloom filter for the predicate-transfer pre-filter pass (DESIGN.md
// §16). Each key touches exactly one cache-line-sized 512-bit block, chosen
// by the low bits of a single 64-bit hash; the k bit positions inside the
// block come from double hashing two further slices of the same hash, so one
// multiply-shift per key drives the whole probe. Stdlib-only, and both the
// Add and Test paths are allocation-free so batched scans keep the PR 3
// executor's alloc profile.
//
// Blocked filters trade a slightly worse false-positive rate (all k bits
// share 512 bits instead of the whole array) for one cache line per probe;
// EstFPRate reports the classic analytic bound, and the property test in
// bloom_test.go pins the measured rate to a small multiple of it.

import (
	"math"

	"predplace/internal/expr"
)

const (
	// bloomBlockBits is the bits per block: 512 = one 64-byte cache line.
	bloomBlockBits  = 512
	bloomBlockWords = bloomBlockBits / 64
	// bloomK is the number of bits set/tested per key.
	bloomK = 8
	// bloomBitsPerKey sizes a filter from its expected key count (~12 bits
	// per key ≈ 0.5% classic false-positive rate at k=8).
	bloomBitsPerKey = 12
	// bloomMaxBlocks caps one filter at 64 MiB regardless of the expected
	// key count (the filter degrades to a higher FP rate, never OOM).
	bloomMaxBlocks = 1 << 20
)

// bloomFilter is a blocked Bloom filter. Not safe for concurrent Add;
// concurrent Test against a finished filter is safe (reads only).
type bloomFilter struct {
	words     []uint64
	blockMask uint64
	adds      int64
}

// newBloomFilter sizes a filter for the expected number of distinct keys,
// rounding the block count up to a power of two so block selection is a
// single mask.
func newBloomFilter(expected int64) *bloomFilter {
	if expected < 1 {
		expected = 1
	}
	blocks := uint64(1)
	for blocks*bloomBlockBits < uint64(expected)*bloomBitsPerKey && blocks < bloomMaxBlocks {
		blocks <<= 1
	}
	return &bloomFilter{
		words:     make([]uint64, blocks*bloomBlockWords),
		blockMask: blocks - 1,
	}
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// high-quality 64-bit mixer (every input bit affects every output bit).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// bloomHash maps a join-key value to the single 64-bit hash the filter
// consumes. Equal values (expr.Value.Equal) hash identically — the filter's
// no-false-negative guarantee rests on that. Int and bool keys skip the FNV
// path entirely: the raw payload goes straight through the mixer.
func bloomHash(v expr.Value) uint64 {
	if v.Kind == expr.TInt || v.Kind == expr.TBool {
		return splitmix64(uint64(v.I) ^ uint64(v.Kind)<<56)
	}
	return splitmix64(v.Hash())
}

// Add sets the key's k bits in its block.
func (b *bloomFilter) Add(h uint64) {
	base := (h & b.blockMask) * bloomBlockWords
	g := uint32(h >> 17)
	d := uint32(h>>33) | 1
	for i := uint32(0); i < bloomK; i++ {
		bit := (g + i*d) & (bloomBlockBits - 1)
		b.words[base+uint64(bit>>6)] |= 1 << (bit & 63)
	}
	b.adds++
}

// Test reports whether the key may have been added (false positives
// possible, false negatives never).
func (b *bloomFilter) Test(h uint64) bool {
	base := (h & b.blockMask) * bloomBlockWords
	g := uint32(h >> 17)
	d := uint32(h>>33) | 1
	for i := uint32(0); i < bloomK; i++ {
		bit := (g + i*d) & (bloomBlockBits - 1)
		if b.words[base+uint64(bit>>6)]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// AddBatch adds a batch of key hashes.
func (b *bloomFilter) AddBatch(hs []uint64) {
	for _, h := range hs {
		b.Add(h)
	}
}

// TestBatch ANDs membership into keep: keep[i] stays true only if it was
// true and hs[i] passes the filter. Rows another filter already rejected are
// skipped, so the returned probe count is the number of tests actually
// performed (what the caller charges).
func (b *bloomFilter) TestBatch(hs []uint64, keep []bool) (probes int) {
	for i, h := range hs {
		if !keep[i] {
			continue
		}
		probes++
		if !b.Test(h) {
			keep[i] = false
		}
	}
	return probes
}

// EstFPRate is the classic analytic false-positive bound (1−e^(−kn/m))^k for
// the filter's current fill. Blocked filters run somewhat above it (bits
// concentrate in blocks); renderers label it as an estimate.
func (b *bloomFilter) EstFPRate() float64 {
	if b.adds == 0 {
		return 0
	}
	m := float64(len(b.words)) * 64
	n := float64(b.adds)
	return math.Pow(1-math.Exp(-float64(bloomK)*n/m), bloomK)
}
