package exec

import (
	"testing"

	"predplace/internal/expr"
	"predplace/internal/plan"
	"predplace/internal/query"
)

// runSerialAndParallel executes root twice on the same Env — serially, then
// with 4 workers — and returns both results.
func runSerialAndParallel(t *testing.T, env *Env, root plan.Node) (*Result, *Result) {
	t.Helper()
	env.Parallelism = 1
	serial, err := Run(env, root)
	if err != nil {
		t.Fatal(err)
	}
	env.Parallelism = 4
	par, err := Run(env, root)
	if err != nil {
		t.Fatal(err)
	}
	env.Parallelism = 1
	return serial, par
}

func TestParallelSeqScanMatchesSerial(t *testing.T) {
	db, env := newEnv(t, []int{3}, false)
	root := scanNode(t, db.Cat, "t3")
	serial, par := runSerialAndParallel(t, env, root)
	sameRowMultiset(t, par.Rows, serial.Rows)
	if got, want := par.Stats.IO.Total(), serial.Stats.IO.Total(); got != want {
		t.Fatalf("parallel scan I/O = %d, serial = %d", got, want)
	}
	if got, want := par.Stats.Charged(), serial.Stats.Charged(); got != want {
		t.Fatalf("parallel scan charged = %v, serial = %v", got, want)
	}
}

func TestParallelFilterMatchesSerial(t *testing.T) {
	db, env := newEnv(t, []int{1}, false)
	f, _ := db.Cat.Func("costly10")
	q, _ := query.NewQuery([]string{"t1"}, []*query.Predicate{{
		Kind: query.KindFunc, Func: f, Args: []query.ColRef{{Table: "t1", Col: "u10"}},
	}})
	query.Analyze(db.Cat, q)
	root := &plan.Filter{Input: scanNode(t, db.Cat, "t1"), Pred: q.Preds[0]}
	serial, par := runSerialAndParallel(t, env, root)
	sameRowMultiset(t, par.Rows, serial.Rows)
	if got, want := par.Stats.Invocations["costly10"], serial.Stats.Invocations["costly10"]; got != want {
		t.Fatalf("parallel invocations = %d, serial = %d", got, want)
	}
	if got, want := par.Stats.Charged(), serial.Stats.Charged(); got != want {
		t.Fatalf("parallel filter charged = %v, serial = %v", got, want)
	}
}

func TestParallelHashJoinMatchesSerial(t *testing.T) {
	db, env := newEnv(t, []int{1, 3}, false)
	q, _ := query.NewQuery([]string{"t1", "t3"}, []*query.Predicate{{
		Kind: query.KindJoinCmp, Op: expr.OpEQ,
		Left: query.ColRef{Table: "t1", Col: "ua1"}, Right: query.ColRef{Table: "t3", Col: "ua1"},
	}})
	query.Analyze(db.Cat, q)
	outer := scanNode(t, db.Cat, "t1")
	inner := scanNode(t, db.Cat, "t3")
	j := &plan.Join{Method: plan.HashJoin, Outer: outer, Inner: inner, Primary: q.Preds[0]}
	j.ColRefs = plan.ConcatCols(outer, inner)
	serial, par := runSerialAndParallel(t, env, j)
	sameRowMultiset(t, par.Rows, serial.Rows)
	// Grace-hash spill is charged per tuple on both sides; the parallel
	// operator must count exactly the same tuples.
	if got, want := par.Stats.SyntheticIO, serial.Stats.SyntheticIO; got != want {
		t.Fatalf("parallel spill = %v, serial = %v", got, want)
	}
	if got, want := par.Stats.Charged(), serial.Stats.Charged(); got != want {
		t.Fatalf("parallel join charged = %v, serial = %v", got, want)
	}
}

func TestParallelFilterBudgetDNF(t *testing.T) {
	db, env := newEnv(t, []int{1}, false)
	f, _ := db.Cat.Func("costly100")
	q, _ := query.NewQuery([]string{"t1"}, []*query.Predicate{{
		Kind: query.KindFunc, Func: f, Args: []query.ColRef{{Table: "t1", Col: "u10"}},
	}})
	query.Analyze(db.Cat, q)
	root := &plan.Filter{Input: scanNode(t, db.Cat, "t1"), Pred: q.Preds[0]}
	env.Parallelism = 4
	env.Budget = 500 // a handful of 100-unit calls
	res, err := Run(env, root)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DNF {
		t.Fatal("parallel filter past budget should report DNF")
	}
	env.Parallelism = 1
	env.Budget = 0
}

func TestParallelHashJoinBudgetDNFDuringBuild(t *testing.T) {
	// t9 (~1800 rows at this scale) keeps the build side past the budget
	// check's 1024-row cadence.
	db, env := newEnv(t, []int{1, 9}, false)
	q, _ := query.NewQuery([]string{"t1", "t9"}, []*query.Predicate{{
		Kind: query.KindJoinCmp, Op: expr.OpEQ,
		Left: query.ColRef{Table: "t1", Col: "ua1"}, Right: query.ColRef{Table: "t9", Col: "ua1"},
	}})
	query.Analyze(db.Cat, q)
	outer := scanNode(t, db.Cat, "t1")
	inner := scanNode(t, db.Cat, "t9")
	j := &plan.Join{Method: plan.HashJoin, Outer: outer, Inner: inner, Primary: q.Preds[0]}
	j.ColRefs = plan.ConcatCols(outer, inner)
	env.Parallelism = 4
	env.Budget = 3 // below even the inner scan's I/O
	res, err := Run(env, j)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DNF {
		t.Fatal("parallel hash join past budget should report DNF")
	}
	env.Parallelism = 1
	env.Budget = 0
}

// TestParallelCloseEarly abandons a parallel query mid-stream; shutdown must
// not deadlock or leak (the race detector and goroutine scheduler cover the
// rest).
func TestParallelCloseEarly(t *testing.T) {
	db, env := newEnv(t, []int{3}, false)
	env.Parallelism = 4
	env.begin()
	it, err := Build(env, scanNode(t, db.Cat, "t3"))
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, ok, err := it.Next(); err != nil || !ok {
			t.Fatalf("Next %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil { // Close must be idempotent
		t.Fatal(err)
	}
	env.Parallelism = 1
}
