package exec

import (
	"math/rand"
	"testing"

	"predplace/internal/expr"
)

// TestBloomNoFalseNegatives pins the filter's one hard guarantee: every
// added key tests positive.
func TestBloomNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int64{1, 100, 10000} {
		f := newBloomFilter(n)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = bloomHash(expr.I(rng.Int63()))
		}
		f.AddBatch(keys)
		for i, h := range keys {
			if !f.Test(h) {
				t.Fatalf("n=%d: added key %d tests negative", n, i)
			}
		}
	}
}

// TestBloomFPRateWithinAnalyticBound is the property test: the measured
// false-positive rate over a large non-member probe set must stay within a
// small multiple of the analytic estimate. Blocked filters concentrate bits
// per 512-bit block, so they run above the classic bound — 3x plus a small
// absolute floor is the accepted envelope (DESIGN.md §16).
func TestBloomFPRateWithinAnalyticBound(t *testing.T) {
	const (
		members = 10000
		probes  = 200000
	)
	f := newBloomFilter(members)
	seen := make(map[uint64]bool, members)
	for i := int64(0); i < members; i++ {
		h := bloomHash(expr.I(i))
		seen[h] = true
		f.Add(h)
	}
	est := f.EstFPRate()
	if est <= 0 || est >= 1 {
		t.Fatalf("EstFPRate = %g, want in (0,1)", est)
	}
	fp := 0
	for i := int64(0); i < probes; i++ {
		h := bloomHash(expr.I(members + 1 + i*7919))
		if seen[h] {
			continue
		}
		if f.Test(h) {
			fp++
		}
	}
	actual := float64(fp) / float64(probes)
	limit := 3*est + 0.002
	if actual > limit {
		t.Errorf("measured FP rate %.5f exceeds envelope %.5f (analytic est %.5f)", actual, limit, est)
	}
}

// TestBloomBatchMatchesScalar pins TestBatch to the scalar path: same
// verdicts, probe count excludes rows already rejected.
func TestBloomBatchMatchesScalar(t *testing.T) {
	f := newBloomFilter(64)
	for i := int64(0); i < 64; i += 2 {
		f.Add(bloomHash(expr.I(i)))
	}
	hs := make([]uint64, 128)
	keep := make([]bool, 128)
	for i := range hs {
		hs[i] = bloomHash(expr.I(int64(i)))
		keep[i] = i%3 != 0 // every third row pre-rejected by an earlier filter
	}
	wantProbes := 0
	want := make([]bool, 128)
	for i := range hs {
		if keep[i] {
			wantProbes++
			want[i] = f.Test(hs[i])
		}
	}
	probes := f.TestBatch(hs, keep)
	if probes != wantProbes {
		t.Errorf("TestBatch probes = %d, want %d", probes, wantProbes)
	}
	for i := range keep {
		if keep[i] != want[i] {
			t.Errorf("row %d: keep = %v, want %v", i, keep[i], want[i])
		}
	}
}

func BenchmarkBloomAdd(b *testing.B) {
	f := newBloomFilter(int64(b.N))
	hs := make([]uint64, 4096)
	for i := range hs {
		hs[i] = splitmix64(uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(hs[i&4095])
	}
}

func BenchmarkBloomTestBatch(b *testing.B) {
	const batch = 256
	f := newBloomFilter(100000)
	for i := uint64(0); i < 100000; i++ {
		f.Add(splitmix64(i))
	}
	hs := make([]uint64, batch)
	keep := make([]bool, batch)
	for i := range hs {
		hs[i] = splitmix64(uint64(i * 3))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range keep {
			keep[j] = true
		}
		f.TestBatch(hs, keep)
	}
}
