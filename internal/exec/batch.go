package exec

// Batch-at-a-time execution: the optional NextBatch fast path of the
// Volcano contract, plus the allocation discipline (slab row allocation,
// pooled batch buffers) that makes the batched hot paths allocation-free
// per tuple. Tuple-at-a-time Next remains the semantic ground truth: a
// batched operator must produce exactly the rows, order, and charged cost
// of its Next loop, because batching only amortizes per-row interface
// calls, lock acquisitions, and allocations — the paper's charged cost is
// per-tuple and independent of batch boundaries.

import (
	"sync"

	"predplace/internal/expr"
)

// DefaultBatchSize is the rows-per-NextBatch width used when Env.BatchSize
// is 0. Large enough to amortize per-batch costs (one slab allocation, one
// shard lock per predicate-cache shard, one channel hop per exchange
// message), small enough that a batch of 100-byte tuples stays cache-warm.
const DefaultBatchSize = 256

// BatchIterator is the optional batch fast path of the iterator contract.
//
// NextBatch fills dst with up to len(dst) rows and returns how many were
// produced. n == 0 with a nil error signals exhaustion (the analog of
// Next's ok=false); errors imply n == 0 — an erroring call produces no
// rows. Implementations must not retain dst (or any reslice of it) across
// calls; rows written into dst are owned by the caller. Open/Close
// semantics are unchanged from Iterator.
type BatchIterator interface {
	Iterator
	NextBatch(dst []expr.Row) (int, error)
}

// nextBatch fills dst from it, taking the batch fast path when the
// operator implements it and falling back to per-tuple Next calls
// otherwise, so every operator composes with batched consumers unmodified.
func nextBatch(it Iterator, dst []expr.Row) (int, error) {
	if b, ok := it.(BatchIterator); ok {
		return b.NextBatch(dst)
	}
	n := 0
	for n < len(dst) {
		row, ok, err := it.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		dst[n] = row
		n++
	}
	return n, nil
}

// slabValues is the size in values of one row-slab allocation.
const slabValues = 4096

// rowAlloc carves rows out of contiguous value slabs: one slab allocation
// amortizes across slabValues/width rows instead of one allocation per
// row. Carved rows are never recycled — consumers may retain them freely
// (result sets, hash-join builds) — the slab simply becomes garbage when
// its rows do.
type rowAlloc struct {
	slab []expr.Value
}

// next returns a zeroed row of the given width carved from the current
// slab, starting a fresh slab when the current one is exhausted.
func (a *rowAlloc) next(width int) expr.Row {
	if len(a.slab) < width {
		n := slabValues
		if n < width {
			n = width
		}
		a.slab = make([]expr.Value, n)
	}
	row := expr.Row(a.slab[:width:width])
	a.slab = a.slab[width:]
	return row
}

// rowBufPool recycles the []expr.Row batch buffers operators shuttle rows
// through (pump buffers, exchange messages, worker task batches). Only the
// slice headers are pooled — rows themselves are owned by whoever received
// them — so a buffer may be recycled as soon as its rows have been handed
// off.
var rowBufPool = sync.Pool{
	New: func() interface{} {
		buf := make([]expr.Row, DefaultBatchSize)
		return &buf
	},
}

// getRowBuf returns a row buffer of length n from the pool.
func getRowBuf(n int) []expr.Row {
	buf := *rowBufPool.Get().(*[]expr.Row)
	if cap(buf) < n {
		buf = make([]expr.Row, n)
	}
	return buf[:n]
}

// putRowBuf recycles a buffer obtained from getRowBuf. The caller must not
// touch buf afterwards; rows it referenced stay valid (only the slice
// header is reused).
func putRowBuf(buf []expr.Row) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:0]
	rowBufPool.Put(&buf)
}
