package exec

// Per-operator runtime profiling (EXPLAIN ANALYZE v2). With Env.Profile on,
// Build wraps every plan node's iterator in a profIter that measures wall
// time and attributes physical I/O around each Open/Next/NextBatch call, and
// compiled predicates count evaluations, invocations, and cache traffic into
// the plan node they belong to. The collected counters are assembled into an
// OpProfile tree mirroring the plan, pairing the optimizer's per-node
// estimates with what actually happened.
//
// Profiling is strictly observational: wall time is never part of the
// charged cost (the paper's measurement is deterministic I/O + invocation
// charges; wall clock would make it machine-dependent), and with Profile off
// none of this code runs — the default path stays allocation-free per row
// and charges byte-identical costs.

import (
	"math"
	"sync/atomic"
	"time"

	"predplace/internal/expr"
	"predplace/internal/plan"
	"predplace/internal/storage"
)

// opCounters accumulates one plan node's runtime counters. All fields are
// atomics because parallel operators (worker-pool filters, partitioned hash
// joins) update a node's counters from several goroutines at once.
type opCounters struct {
	opens   atomic.Int64
	batches atomic.Int64
	wallNs  atomic.Int64
	ioSeq   atomic.Int64
	ioRand  atomic.Int64
	ioWrite atomic.Int64
	// predicate-side counters, fed by compiledPred
	predEvals   atomic.Int64
	invocations atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	// predicate-transfer counters, fed by the scan's filter probes
	transferProbes atomic.Int64
	transferPruned atomic.Int64
	// top-k counters: heap admissions/evictions for TopK, input short-
	// circuits (the child was cut off with rows still unproduced) for Limit
	heapPushed   atomic.Int64
	heapEvicted  atomic.Int64
	shortCircuit atomic.Int64
	// funcCharge holds the float64 bits of Σ invocations × per-call cost
	// attributed to this node (CAS-accumulated).
	funcCharge atomic.Uint64
}

// addCharge accumulates per-call function cost into the node's counters.
func (c *opCounters) addCharge(v float64) {
	for {
		old := c.funcCharge.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if c.funcCharge.CompareAndSwap(old, nv) {
			return
		}
	}
}

// charge returns the accumulated function charge.
func (c *opCounters) charge() float64 {
	return math.Float64frombits(c.funcCharge.Load())
}

// addIO attributes an I/O delta to the node.
func (c *opCounters) addIO(d storage.IOStats) {
	if d.SeqReads != 0 {
		c.ioSeq.Add(d.SeqReads)
	}
	if d.RandReads != 0 {
		c.ioRand.Add(d.RandReads)
	}
	if d.Writes != 0 {
		c.ioWrite.Add(d.Writes)
	}
}

// io snapshots the attributed I/O.
func (c *opCounters) io() storage.IOStats {
	return storage.IOStats{
		SeqReads:  c.ioSeq.Load(),
		RandReads: c.ioRand.Load(),
		Writes:    c.ioWrite.Load(),
	}
}

// profIter is the instrumented tracing wrapper Build installs around every
// operator when profiling is on. It keeps the plain row-count trace (NodeRows
// stays authoritative for actual cardinalities) and additionally measures
// wall time and physical-I/O deltas around each call.
//
// Timings and I/O are inclusive: a parent's window spans its children's work,
// matching the cumulative semantics of the optimizer's per-node EstCost.
// Under parallelism the attribution of a page to one node is best-effort
// (workers overlap), but the root's window covers the whole query, so totals
// are exact.
type profIter struct {
	e    *Env
	in   Iterator
	rows *int64
	c    *opCounters
}

func (p *profIter) Open() error {
	p.c.opens.Add(1)
	t0 := time.Now()
	io0 := p.e.ioStats()
	err := p.in.Open()
	p.c.addIO(p.e.ioStats().Sub(io0))
	p.c.wallNs.Add(int64(time.Since(t0)))
	return err
}

func (p *profIter) Next() (expr.Row, bool, error) {
	t0 := time.Now()
	io0 := p.e.ioStats()
	row, ok, err := p.in.Next()
	p.c.addIO(p.e.ioStats().Sub(io0))
	p.c.wallNs.Add(int64(time.Since(t0)))
	if ok {
		*p.rows++
	}
	return row, ok, err
}

// NextBatch forwards the batch fast path through the profiler — like
// countIter, the wrapper must not degrade the tree to tuple-at-a-time.
func (p *profIter) NextBatch(dst []expr.Row) (int, error) {
	t0 := time.Now()
	io0 := p.e.ioStats()
	n, err := nextBatch(p.in, dst)
	p.c.addIO(p.e.ioStats().Sub(io0))
	p.c.wallNs.Add(int64(time.Since(t0)))
	if err != nil {
		return 0, err
	}
	if n > 0 {
		p.c.batches.Add(1)
		*p.rows += int64(n)
	}
	return n, nil
}

func (p *profIter) Close() error {
	t0 := time.Now()
	io0 := p.e.ioStats()
	err := p.in.Close()
	p.c.addIO(p.e.ioStats().Sub(io0))
	p.c.wallNs.Add(int64(time.Since(t0)))
	return err
}

// OpProfile is one plan node's runtime profile, mirroring the plan tree.
// Estimates come from the optimizer's per-node annotations; actuals from the
// executor's counters. WallNs and IO are inclusive of children (cumulative,
// like EstCost); predicate counters belong to the node alone.
type OpProfile struct {
	// Op is the node's one-line description (plan.Node.Describe).
	Op string `json:"op"`
	// EstRows and EstCost are the optimizer's estimates (EstCost cumulative).
	EstRows float64 `json:"est_rows"`
	EstCost float64 `json:"est_cost"`
	// EstSel is the estimated selectivity of the node's predicate (0 when
	// the node has none).
	EstSel float64 `json:"est_sel,omitempty"`
	// ActRows is the number of rows the node actually produced, accumulated
	// across nested-loop rescans (never n/a: a node that was not reached
	// reports 0).
	ActRows int64 `json:"actual_rows"`
	// RowsIn is the sum of the children's ActRows (0 for leaves).
	RowsIn int64 `json:"rows_in"`
	// ErrFactor is the cardinality estimation error max(act/est, est/act),
	// ≥ 1; 1 means a perfect estimate.
	ErrFactor float64 `json:"err_factor"`
	// Opens counts Open calls (nested-loop rescans reopen the inner).
	Opens int64 `json:"opens,omitempty"`
	// Batches counts non-empty NextBatch calls.
	Batches int64 `json:"batches,omitempty"`
	// WallNs is wall time inside the operator, children included. Wall time
	// is observational only — it is never part of the charged cost.
	WallNs int64 `json:"wall_ns"`
	// IO is the physical page traffic attributed to the operator (children
	// included; best-effort attribution under parallelism, exact at the root).
	IO storage.IOStats `json:"io"`
	// PredEvals counts predicate evaluations at this node.
	PredEvals int64 `json:"pred_evals,omitempty"`
	// Invocations counts user-defined function calls at this node.
	Invocations int64 `json:"invocations,omitempty"`
	// CacheHits and CacheMisses count this node's predicate-cache traffic.
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
	// FuncCharge is Σ invocations × per-call cost at this node.
	FuncCharge float64 `json:"func_charge,omitempty"`
	// TransferProbes and TransferPruned count this scan's received-filter
	// probes and the rows they rejected (predicate transfer only).
	TransferProbes int64 `json:"transfer_probes,omitempty"`
	TransferPruned int64 `json:"transfer_pruned,omitempty"`
	// HeapPushed and HeapEvicted count a TopK node's bounded-heap admissions
	// and displacements (pushed − evicted = rows retained at the end).
	HeapPushed  int64 `json:"heap_pushed,omitempty"`
	HeapEvicted int64 `json:"heap_evicted,omitempty"`
	// ShortCircuit is 1 when a Limit node stopped pulling with its child
	// still producing — the early termination actually cut work off.
	ShortCircuit int64 `json:"short_circuit,omitempty"`
	// Children mirror the plan node's inputs (outer first for joins).
	Children []*OpProfile `json:"children,omitempty"`
}

// ErrFactorCap is the ceiling of ErrFactor: an estimate that is off by an
// unbounded factor (one side zero) reports this value instead of +Inf, which
// encoding/json cannot marshal. Renderers print anything at the cap as ×inf.
const ErrFactorCap = 1e9

// errFactor is the symmetric cardinality-error ratio: max(a/e, e/a), with
// zero handled so a correct zero-estimate reports 1 and a wrong one reports
// ErrFactorCap.
func errFactor(est float64, act int64) float64 {
	a := float64(act)
	if est <= 0 && a <= 0 {
		return 1
	}
	if est <= 0 || a <= 0 {
		return ErrFactorCap
	}
	f := a / est
	if f < 1 {
		f = 1 / f
	}
	if f > ErrFactorCap {
		return ErrFactorCap
	}
	return f
}

// estSel returns the selectivity estimate attached to a node's predicate.
func estSel(n plan.Node) float64 {
	if f, ok := n.(*plan.Filter); ok {
		return f.Pred.Selectivity
	}
	return 0
}

// assembleProfile builds the OpProfile tree for a finished query from the
// trace and profiling counters (Run pre-registers every plan node, so every
// node has both).
func assembleProfile(e *Env, n plan.Node) *OpProfile {
	rows := *e.nodeCounter(n)
	c := e.nodeProf(n)
	p := &OpProfile{
		Op:          n.Describe(),
		EstRows:     n.Card(),
		EstCost:     n.Cost(),
		EstSel:      estSel(n),
		ActRows:     rows,
		ErrFactor:   errFactor(n.Card(), rows),
		Opens:       c.opens.Load(),
		Batches:     c.batches.Load(),
		WallNs:      c.wallNs.Load(),
		IO:          c.io(),
		PredEvals:   c.predEvals.Load(),
		Invocations: c.invocations.Load(),
		CacheHits:      c.cacheHits.Load(),
		CacheMisses:    c.cacheMisses.Load(),
		FuncCharge:     c.charge(),
		TransferProbes: c.transferProbes.Load(),
		TransferPruned: c.transferPruned.Load(),
		HeapPushed:     c.heapPushed.Load(),
		HeapEvicted:    c.heapEvicted.Load(),
		ShortCircuit:   c.shortCircuit.Load(),
	}
	for _, child := range n.Children() {
		cp := assembleProfile(e, child)
		p.RowsIn += cp.ActRows
		p.Children = append(p.Children, cp)
	}
	return p
}

// MaxErr returns the largest cardinality-error factor in the profile tree
// and the description of the node it occurs at.
func (p *OpProfile) MaxErr() (float64, string) {
	worst, at := p.ErrFactor, p.Op
	for _, c := range p.Children {
		if e, op := c.MaxErr(); e > worst {
			worst, at = e, op
		}
	}
	return worst, at
}

// Totals sums the tree's own-node predicate counters (evals, invocations,
// cache traffic). WallNs and IO are not summed — they are inclusive at the
// root already.
func (p *OpProfile) Totals() (evals, invocations, hits, misses int64) {
	evals, invocations, hits, misses = p.PredEvals, p.Invocations, p.CacheHits, p.CacheMisses
	for _, c := range p.Children {
		e, i, h, m := c.Totals()
		evals += e
		invocations += i
		hits += h
		misses += m
	}
	return evals, invocations, hits, misses
}
