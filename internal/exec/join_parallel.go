package exec

import (
	"errors"
	"fmt"
	"sync"

	"predplace/internal/expr"
	"predplace/internal/plan"
)

// hashPartition maps an encoded join key to one of w partitions (FNV-1a).
// Build and probe must agree on this mapping.
func hashPartition(key []byte, w int) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h % uint64(w))
}

// parallelHashJoinIter is the partitioned parallel hash join: the inner
// input is hash-partitioned by join key across W builder goroutines, each
// owning a private hash table, so the build runs without shared-map locking;
// then W probe workers stream batches of outer rows, each probing whichever
// partition a row's key hashes to (partition tables are read-only by then).
// Spill accounting mirrors the serial hash join exactly: one per-tuple
// charge for every inner and every outer row, counted atomically, so the
// charged cost is identical to the serial operator's.
type parallelHashJoinIter struct {
	e      *Env
	node   *plan.Join
	outer  Iterator
	inner  Iterator
	outIdx int
	inIdx  int
	parts  []map[string][]expr.Row
	tasks  chan []expr.Row
	fan    fanIn
}

func newParallelHashJoin(e *Env, j *plan.Join) (Iterator, error) {
	if j.Primary != nil && j.Primary.IsExpensive() {
		return nil, fmt.Errorf("exec: hash join cannot use an expensive primary predicate")
	}
	outer, err := Build(e, j.Outer)
	if err != nil {
		return nil, err
	}
	inner, err := Build(e, j.Inner)
	if err != nil {
		return nil, err
	}
	oi, ii, err := joinKeyIdx(j.Primary, j.Outer, j.Inner)
	if err != nil {
		return nil, err
	}
	return &parallelHashJoinIter{e: e, node: j, outer: outer, inner: inner, outIdx: oi, inIdx: ii}, nil
}

func (h *parallelHashJoinIter) Open() error {
	if err := h.inner.Open(); err != nil {
		return err
	}
	w := h.e.workers()
	h.parts = make([]map[string][]expr.Row, w)
	build := make([]chan []expr.Row, w)
	for i := range build {
		h.parts[i] = make(map[string][]expr.Row)
		build[i] = make(chan []expr.Row, 2)
	}
	var bwg sync.WaitGroup
	for i := 0; i < w; i++ {
		bwg.Add(1)
		go func(i int) {
			defer bwg.Done()
			m := h.parts[i]
			var keyBuf []byte
			for rows := range build[i] {
				for _, row := range rows {
					keyBuf = row[h.inIdx].AppendKey(keyBuf[:0])
					m[string(keyBuf)] = append(m[string(keyBuf)], row)
				}
				putRowBuf(rows)
			}
		}(i)
	}
	berr := h.routeBuild(build, w)
	for i := range build {
		close(build[i])
	}
	bwg.Wait()
	if berr != nil {
		return berr
	}
	if err := h.inner.Close(); err != nil {
		return err
	}
	if err := h.outer.Open(); err != nil {
		return err
	}
	h.fan.init(w)
	h.tasks = make(chan []expr.Row, w)
	h.fan.wg.Add(1)
	go h.routeProbe()
	for i := 0; i < w; i++ {
		h.fan.wg.Add(1)
		go h.probeWorker()
	}
	h.fan.goCloser()
	return nil
}

// routeBuild drains the inner input batch-at-a-time, charging spill per
// tuple (null keys included, matching the serial operator) and routing
// non-null rows to the builder that owns their partition. Partition keys are
// encoded into a reused buffer and per-partition pending batches use pooled
// buffers the builders recycle after insertion.
func (h *parallelHashJoinIter) routeBuild(build []chan []expr.Row, w int) error {
	bs := h.e.exchangeBatch()
	pend := make([][]expr.Row, w)
	for p := range pend {
		pend[p] = getRowBuf(bs)[:0]
	}
	recycle := func() {
		for _, rows := range pend {
			putRowBuf(rows)
		}
	}
	buf := getRowBuf(bs)
	defer putRowBuf(buf)
	var keyBuf []byte
	count := 0
	for {
		m, err := nextBatch(h.inner, buf)
		if err != nil {
			recycle()
			return err
		}
		if m == 0 {
			break
		}
		for _, row := range buf[:m] {
			h.e.ChargeSpillTuple()
			count++
			if count%1024 == 0 {
				if err := h.e.checkAbort(); err != nil {
					recycle()
					return err
				}
			}
			v := row[h.inIdx]
			if v.IsNull() {
				continue
			}
			keyBuf = v.AppendKey(keyBuf[:0])
			p := hashPartition(keyBuf, w)
			pend[p] = append(pend[p], row)
			if len(pend[p]) == bs {
				build[p] <- pend[p]
				pend[p] = getRowBuf(bs)[:0]
			}
		}
	}
	for p, rows := range pend {
		if len(rows) > 0 {
			build[p] <- rows
		} else {
			putRowBuf(rows)
		}
	}
	return nil
}

// routeProbe drains the outer input batch-at-a-time, charging spill per
// tuple, and hands pooled batches to the probe workers.
func (h *parallelHashJoinIter) routeProbe() {
	defer h.fan.wg.Done()
	defer close(h.tasks)
	bs := h.e.exchangeBatch()
	count := 0
	for {
		buf := getRowBuf(bs)
		m, err := nextBatch(h.outer, buf)
		if err != nil {
			putRowBuf(buf)
			h.fan.send(rowBatch{err: err})
			return
		}
		if m == 0 {
			putRowBuf(buf)
			return
		}
		for range buf[:m] {
			h.e.ChargeSpillTuple()
			count++
			if count%1024 == 0 {
				if err := h.e.checkAbort(); err != nil {
					putRowBuf(buf)
					h.fan.send(rowBatch{err: err})
					return
				}
			}
		}
		select {
		case h.tasks <- buf[:m]:
		case <-h.fan.stop:
			putRowBuf(buf)
			return
		}
	}
}

// probeWorker probes the read-only partition tables with each outer row in
// its batches: probe keys are encoded into a reused buffer (the map lookup
// on a []byte conversion is allocation-free) and output rows are carved
// from a per-worker value slab instead of one Concat allocation per match.
func (h *parallelHashJoinIter) probeWorker() {
	defer h.fan.wg.Done()
	w := len(h.parts)
	bs := h.e.exchangeBatch()
	var keyBuf []byte
	var alloc rowAlloc
	for batch := range h.tasks {
		out := getRowBuf(bs)[:0]
		for _, row := range batch {
			v := row[h.outIdx]
			if v.IsNull() {
				continue
			}
			keyBuf = v.AppendKey(keyBuf[:0])
			for _, irow := range h.parts[hashPartition(keyBuf, w)][string(keyBuf)] {
				orow := alloc.next(len(row) + len(irow))
				copy(orow, row)
				copy(orow[len(row):], irow)
				out = append(out, orow)
			}
		}
		putRowBuf(batch)
		if len(out) > 0 {
			if !h.fan.send(rowBatch{rows: out}) {
				putRowBuf(out)
				return
			}
		} else {
			putRowBuf(out)
		}
	}
}

func (h *parallelHashJoinIter) Next() (expr.Row, bool, error) {
	if h.fan.out == nil {
		return nil, false, fmt.Errorf("exec: Next before Open on parallel HashJoin")
	}
	return h.fan.next()
}

// NextBatch forwards the fan-in's batch path to batched consumers.
func (h *parallelHashJoinIter) NextBatch(dst []expr.Row) (int, error) {
	if h.fan.out == nil {
		return 0, fmt.Errorf("exec: NextBatch before Open on parallel HashJoin")
	}
	return h.fan.nextBatch(dst)
}

func (h *parallelHashJoinIter) Close() error {
	h.fan.shutdown()
	return errors.Join(h.outer.Close(), h.inner.Close())
}
