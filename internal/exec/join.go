package exec

import (
	"errors"
	"fmt"
	"sort"

	"predplace/internal/btree"
	"predplace/internal/catalog"
	"predplace/internal/cost"
	"predplace/internal/expr"
	"predplace/internal/plan"
	"predplace/internal/query"
	"predplace/internal/storage"
)

func buildJoin(e *Env, j *plan.Join) (Iterator, error) {
	switch j.Method {
	case plan.NestLoop:
		return newNLJoin(e, j)
	case plan.IndexNestLoop:
		return newIndexNLJoin(e, j)
	case plan.HashJoin:
		if e.workers() > 1 {
			return newParallelHashJoin(e, j)
		}
		return newHashJoin(e, j)
	case plan.MergeJoin:
		return newMergeJoin(e, j)
	}
	return nil, fmt.Errorf("exec: unknown join method %v", j.Method)
}

// nlJoinIter is the tuple-at-a-time nested-loop join: the inner subtree is
// re-opened (and physically re-read through the buffer pool) once per outer
// tuple, exactly the access pattern the paper's |S|-pages-per-outer-tuple
// cost term models. The primary join predicate — which may be an expensive
// function over both sides (Query 5) — is evaluated per pair.
type nlJoinIter struct {
	e        *Env
	node     *plan.Join
	outer    Iterator
	inner    Iterator
	primary  *compiledPred // nil for cross product
	outerRow expr.Row
	haveOut  bool
	count    int
	// batch state: candidate-pair scratch (reused — survivors are copied to
	// slab rows), inner batch buffer, verdicts, predicate scratch
	pairBuf []expr.Value
	pairs   []expr.Row
	ibuf    []expr.Row
	ipos    int
	ilen    int
	keep    []bool
	sc      predScratch
	alloc   rowAlloc
}

func newNLJoin(e *Env, j *plan.Join) (Iterator, error) {
	outer, err := Build(e, j.Outer)
	if err != nil {
		return nil, err
	}
	it := &nlJoinIter{e: e, node: j, outer: outer}
	if j.Primary != nil {
		cp, err := compilePred(j.Primary, joinCols(j))
		if err != nil {
			return nil, err
		}
		if e.prof != nil {
			cp.prof = e.nodeProf(j)
		}
		it.primary = cp
	}
	return it, nil
}

func joinCols(j *plan.Join) []query.ColRef { return plan.ConcatCols(j.Outer, j.Inner) }

func (n *nlJoinIter) Open() error { return n.outer.Open() }

func (n *nlJoinIter) Next() (expr.Row, bool, error) {
	for {
		if !n.haveOut {
			row, ok, err := n.outer.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			n.outerRow = row
			n.haveOut = true
			if n.inner != nil {
				if err := n.inner.Close(); err != nil {
					return nil, false, err
				}
			}
			inner, err := Build(n.e, n.node.Inner)
			if err != nil {
				return nil, false, err
			}
			// Store the rebuilt inner before opening it: if Open fails the
			// join's Close still reaches the new subtree (Close on a
			// half-opened iterator is safe), so a mid-query Open fault cannot
			// strand pinned pages or exchange goroutines.
			n.inner = inner
			if err := inner.Open(); err != nil {
				return nil, false, err
			}
		}
		for {
			irow, ok, err := n.inner.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				n.haveOut = false
				break
			}
			n.count++
			if n.count%64 == 0 {
				if err := n.e.checkAbort(); err != nil {
					return nil, false, err
				}
			}
			out := n.outerRow.Concat(irow)
			if n.primary != nil {
				pass, err := n.primary.holds(n.e, out)
				if err != nil {
					return nil, false, err
				}
				if !pass {
					continue
				}
			}
			return out, true, nil
		}
	}
}

// NextBatch vectorizes the nested loop's hottest flaw: the Next path
// concatenates every candidate pair before the primary predicate sees it,
// allocating a row per pair even though most pairs fail. Here candidate
// pairs are assembled in a reusable scratch block, the primary is evaluated
// over the whole batch (batched cache traffic included), and only the
// survivors are materialized into slab rows. Pair order, page I/O, and
// charged cost match the Next path; the inner subtree is drained through
// its own batch fast path.
func (n *nlJoinIter) NextBatch(dst []expr.Row) (int, error) {
	k := len(dst)
	if k == 0 {
		return 0, nil
	}
	w := len(n.node.Outer.Cols()) + len(n.node.Inner.Cols())
	if len(n.pairBuf) < k*w {
		n.pairBuf = make([]expr.Value, k*w)
		n.pairs = make([]expr.Row, k)
		for i := range n.pairs {
			n.pairs[i] = expr.Row(n.pairBuf[i*w : (i+1)*w : (i+1)*w])
		}
		n.keep = make([]bool, k)
	}
	if cap(n.ibuf) < n.e.batchSize() {
		n.ibuf = make([]expr.Row, n.e.batchSize())
	}
	for {
		// Gather up to k candidate pairs into the scratch block.
		cand := 0
		for cand < k {
			if !n.haveOut {
				row, ok, err := n.outer.Next()
				if err != nil {
					return 0, err
				}
				if !ok {
					break
				}
				n.outerRow = row
				n.haveOut = true
				if n.inner != nil {
					if err := n.inner.Close(); err != nil {
						return 0, err
					}
				}
				inner, err := Build(n.e, n.node.Inner)
				if err != nil {
					return 0, err
				}
				// As in Next: store before Open so Close reaches the new
				// subtree even when Open fails mid-rescan.
				n.inner = inner
				n.ipos, n.ilen = 0, 0
				if err := inner.Open(); err != nil {
					return 0, err
				}
			}
			if n.ipos >= n.ilen {
				m, err := nextBatch(n.inner, n.ibuf[:cap(n.ibuf)])
				if err != nil {
					return 0, err
				}
				if m == 0 {
					n.haveOut = false
					continue
				}
				n.ipos, n.ilen = 0, m
			}
			irow := n.ibuf[n.ipos]
			n.ipos++
			n.count++
			if n.count%64 == 0 {
				if err := n.e.checkAbort(); err != nil {
					return 0, err
				}
			}
			pair := n.pairs[cand]
			copy(pair, n.outerRow)
			copy(pair[len(n.outerRow):], irow)
			cand++
		}
		if cand == 0 {
			return 0, nil
		}
		out := 0
		if n.primary != nil {
			// The gather loop above already ran the join's every-64-pairs
			// budget cadence; holdsBatch's own ticking on this throwaway
			// counter only adds extra (harmless) abort checks.
			tick := 0
			if err := n.primary.holdsBatch(n.e, n.pairs[:cand], n.keep[:cand], &tick, &n.sc); err != nil {
				return 0, err
			}
			for i := 0; i < cand; i++ {
				if n.keep[i] {
					orow := n.alloc.next(w)
					copy(orow, n.pairs[i])
					dst[out] = orow
					out++
				}
			}
		} else {
			for i := 0; i < cand; i++ {
				orow := n.alloc.next(w)
				copy(orow, n.pairs[i])
				dst[out] = orow
				out++
			}
		}
		if out > 0 {
			return out, nil
		}
	}
}

func (n *nlJoinIter) Close() error {
	var cerr error
	if n.inner != nil {
		cerr = n.inner.Close()
		n.inner = nil
	}
	return errors.Join(cerr, n.outer.Close())
}

// indexNLJoinIter probes the inner base table's B-tree with each outer
// tuple's join value, fetches matching tuples, and applies the inner-side
// residual filters to each fetched match.
type indexNLJoinIter struct {
	e     *Env
	node  *plan.Join
	outer Iterator
	tab   *catalog.Table
	// tree and heap are the inner index and heap viewed through the query's
	// I/O tracker, resolved once at Open so per-probe access doesn't re-wrap.
	tree      *btree.Tree
	heap      *storage.HeapFile
	outKeyIdx int
	residual  []*compiledPred // inner-side filters, innermost first
	// Profiling attribution for the probe-driven inner chain, whose plan
	// nodes are never built as iterators: baseRows counts heap rows the
	// probes fetch (the base scan's output), residualRows[i] counts rows
	// surviving residual[i] (that filter node's output). Nil when profiling
	// is off — the default path is untouched.
	baseRows     *int64
	residualRows []*int64
	outerRow     expr.Row
	matches      []expr.Row
	pos          int
	haveOut      bool
	count        int
}

func newIndexNLJoin(e *Env, j *plan.Join) (Iterator, error) {
	table, filters, ok := plan.BaseTable(j.Inner)
	if !ok {
		return nil, fmt.Errorf("exec: index-nested-loop inner must be a (filtered) base table")
	}
	tab, err := e.Cat.Table(table)
	if err != nil {
		return nil, err
	}
	if !tab.HasIndex(j.InnerIndexCol) {
		return nil, fmt.Errorf("exec: no index on %s.%s", table, j.InnerIndexCol)
	}
	if j.Primary == nil || j.Primary.Kind != query.KindJoinCmp || j.Primary.Op != expr.OpEQ {
		return nil, fmt.Errorf("exec: index-nested-loop requires an equality primary predicate")
	}
	// Which side of the primary is the outer key?
	var outerKey query.ColRef
	innerRef := query.ColRef{Table: table, Col: j.InnerIndexCol}
	switch {
	case j.Primary.Right == innerRef:
		outerKey = j.Primary.Left
	case j.Primary.Left == innerRef:
		outerKey = j.Primary.Right
	default:
		return nil, fmt.Errorf("exec: primary %v does not match index column %s", j.Primary, innerRef)
	}
	outIdx := plan.ColIndex(j.Outer, outerKey)
	if outIdx < 0 {
		return nil, fmt.Errorf("exec: outer key %v not in outer schema", outerKey)
	}
	outer, err := Build(e, j.Outer)
	if err != nil {
		return nil, err
	}
	// Residual filters apply innermost (lowest) first.
	rev := make([]*query.Predicate, 0, len(filters))
	for i := len(filters) - 1; i >= 0; i-- {
		rev = append(rev, filters[i])
	}
	residual, err := compilePreds(rev, j.Inner.Cols())
	if err != nil {
		return nil, err
	}
	it := &indexNLJoinIter{
		e: e, node: j, outer: outer, tab: tab,
		outKeyIdx: outIdx, residual: residual,
	}
	if e.prof != nil {
		// Attribute the inner chain to its plan nodes: residual[i] was
		// reversed out of BaseTable's filters, so its node is predNodes
		// mirrored. When the base scan's own Matched predicate is part of
		// the chain, surviving it is the base node's output; otherwise every
		// fetched heap row is.
		if base, predNodes, ok := plan.BaseTableNodes(j.Inner); ok {
			it.residualRows = make([]*int64, len(residual))
			for i := range residual {
				node := predNodes[len(predNodes)-1-i]
				it.residualRows[i] = e.nodeCounter(node)
				residual[i].prof = e.nodeProf(node)
			}
			if len(predNodes) == 0 || predNodes[len(predNodes)-1] != base {
				it.baseRows = e.nodeCounter(base)
			}
		}
	}
	return it, nil
}

func (n *indexNLJoinIter) Open() error {
	n.tree = n.e.index(n.tab.Indexes[n.node.InnerIndexCol])
	n.heap = n.e.heap(n.tab)
	return n.outer.Open()
}

func (n *indexNLJoinIter) Next() (expr.Row, bool, error) {
	for {
		if !n.haveOut {
			row, ok, err := n.outer.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			n.outerRow, n.haveOut, n.pos = row, true, 0
			n.matches = n.matches[:0]
			key := row[n.outKeyIdx]
			if key.Kind == expr.TInt { // NULL or non-int keys match nothing
				for _, tid := range n.tree.Probe(key.I) {
					rec, err := n.heap.Get(tid)
					if err != nil {
						return nil, false, err
					}
					irow, err := n.tab.Codec.Decode(rec)
					if err != nil {
						return nil, false, err
					}
					if n.baseRows != nil {
						*n.baseRows++
					}
					keep := true
					for ri, f := range n.residual {
						pass, err := f.holds(n.e, irow)
						if err != nil {
							return nil, false, err
						}
						if !pass {
							keep = false
							break
						}
						if n.residualRows != nil {
							*n.residualRows[ri]++
						}
					}
					if keep {
						n.matches = append(n.matches, irow)
					}
				}
			}
			n.count++
			if n.count%64 == 0 {
				if err := n.e.checkAbort(); err != nil {
					return nil, false, err
				}
			}
		}
		if n.pos < len(n.matches) {
			irow := n.matches[n.pos]
			n.pos++
			return n.outerRow.Concat(irow), true, nil
		}
		n.haveOut = false
	}
}

func (n *indexNLJoinIter) Close() error { return n.outer.Close() }

// hashJoinIter builds an in-memory hash table on the inner input keyed by
// the join column, then streams the outer input probing it. Grace-hash
// partition traffic is charged synthetically per tuple on both sides so the
// measured cost matches the linear model's constants.
type hashJoinIter struct {
	e       *Env
	node    *plan.Join
	outer   Iterator
	inner   Iterator
	outIdx  int
	inIdx   int
	table   map[string][]expr.Row
	outRow  expr.Row
	bucket  []expr.Row
	pos     int
	haveOut bool
	count   int
	// batch state: current outer batch, probe key scratch, output row slab
	obuf   []expr.Row
	opos   int
	olen   int
	keyBuf []byte
	alloc  rowAlloc
}

func newHashJoin(e *Env, j *plan.Join) (Iterator, error) {
	if j.Primary != nil && j.Primary.IsExpensive() {
		return nil, fmt.Errorf("exec: hash join cannot use an expensive primary predicate")
	}
	outer, err := Build(e, j.Outer)
	if err != nil {
		return nil, err
	}
	inner, err := Build(e, j.Inner)
	if err != nil {
		return nil, err
	}
	oi, ii, err := joinKeyIdx(j.Primary, j.Outer, j.Inner)
	if err != nil {
		return nil, err
	}
	return &hashJoinIter{e: e, node: j, outer: outer, inner: inner, outIdx: oi, inIdx: ii}, nil
}

func (h *hashJoinIter) Open() error {
	if err := h.inner.Open(); err != nil {
		return err
	}
	h.table = make(map[string][]expr.Row)
	if bs := h.e.batchSize(); bs > 1 {
		if err := h.buildBatched(bs); err != nil {
			return err
		}
	} else if err := h.buildTupleAtATime(); err != nil {
		return err
	}
	if err := h.inner.Close(); err != nil {
		return err
	}
	return h.outer.Open()
}

// buildTupleAtATime is the legacy build loop (BatchSize 1).
func (h *hashJoinIter) buildTupleAtATime() error {
	for {
		row, ok, err := h.inner.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		h.e.ChargeSpillTuple()
		v := row[h.inIdx]
		if v.IsNull() {
			continue
		}
		k := string(v.AppendKey(nil))
		h.table[k] = append(h.table[k], row)
		h.count++
		if h.count%1024 == 0 {
			if err := h.e.checkAbort(); err != nil {
				return err
			}
		}
	}
}

// buildBatched drains the inner input batch-at-a-time, encoding join keys
// into a reused buffer (a string materializes only on map insert). Spill
// charges, skipped NULL keys, and budget cadence match the legacy loop.
func (h *hashJoinIter) buildBatched(bs int) error {
	buf := getRowBuf(bs)
	defer putRowBuf(buf)
	var keyBuf []byte
	for {
		m, err := nextBatch(h.inner, buf)
		if err != nil {
			return err
		}
		if m == 0 {
			return nil
		}
		for _, row := range buf[:m] {
			h.e.ChargeSpillTuple()
			v := row[h.inIdx]
			if v.IsNull() {
				continue
			}
			keyBuf = v.AppendKey(keyBuf[:0])
			h.table[string(keyBuf)] = append(h.table[string(keyBuf)], row)
			h.count++
			if h.count%1024 == 0 {
				if err := h.e.checkAbort(); err != nil {
					return err
				}
			}
		}
	}
}

func (h *hashJoinIter) Next() (expr.Row, bool, error) {
	for {
		if !h.haveOut {
			row, ok, err := h.outer.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			h.e.ChargeSpillTuple()
			h.outRow, h.haveOut, h.pos = row, true, 0
			v := row[h.outIdx]
			if v.IsNull() {
				h.bucket = nil
			} else {
				h.bucket = h.table[string(v.AppendKey(nil))]
			}
			h.count++
			if h.count%1024 == 0 {
				if err := h.e.checkAbort(); err != nil {
					return nil, false, err
				}
			}
		}
		if h.pos < len(h.bucket) {
			irow := h.bucket[h.pos]
			h.pos++
			return h.outRow.Concat(irow), true, nil
		}
		h.haveOut = false
	}
}

// NextBatch probes the hash table with a batch of outer rows at a time:
// probe keys are encoded into a reused buffer (map lookup on a []byte
// conversion is allocation-free), and output rows are carved from a value
// slab instead of one Concat allocation per match. Spill charges, probe
// order, and budget cadence match the Next path exactly.
func (h *hashJoinIter) NextBatch(dst []expr.Row) (int, error) {
	if cap(h.obuf) < h.e.batchSize() {
		h.obuf = make([]expr.Row, h.e.batchSize())
	}
	n := 0
	for n < len(dst) {
		if h.pos < len(h.bucket) {
			irow := h.bucket[h.pos]
			h.pos++
			out := h.alloc.next(len(h.outRow) + len(irow))
			copy(out, h.outRow)
			copy(out[len(h.outRow):], irow)
			dst[n] = out
			n++
			continue
		}
		if h.opos >= h.olen {
			m, err := nextBatch(h.outer, h.obuf[:h.e.batchSize()])
			if err != nil {
				return 0, err
			}
			if m == 0 {
				break
			}
			h.olen, h.opos = m, 0
		}
		row := h.obuf[h.opos]
		h.opos++
		h.e.ChargeSpillTuple()
		h.count++
		if h.count%1024 == 0 {
			if err := h.e.checkAbort(); err != nil {
				return 0, err
			}
		}
		v := row[h.outIdx]
		if v.IsNull() {
			h.bucket = nil
			continue
		}
		h.keyBuf = v.AppendKey(h.keyBuf[:0])
		h.bucket = h.table[string(h.keyBuf)]
		h.outRow, h.pos = row, 0
	}
	return n, nil
}

func (h *hashJoinIter) Close() error {
	return errors.Join(h.outer.Close(), h.inner.Close())
}

// mergeJoinIter materializes both inputs, sorts whichever sides the plan
// marks unsorted (charging external-sort spill), and merges equal-key
// groups.
type mergeJoinIter struct {
	e      *Env
	node   *plan.Join
	outIdx int
	inIdx  int
	orows  []expr.Row
	irows  []expr.Row
	oi, ii int
	group  []expr.Row // inner group matching current outer key
	gpos   int
	opened bool
}

func newMergeJoin(e *Env, j *plan.Join) (Iterator, error) {
	if j.Primary != nil && j.Primary.IsExpensive() {
		return nil, fmt.Errorf("exec: merge join cannot use an expensive primary predicate")
	}
	oi, ii, err := joinKeyIdx(j.Primary, j.Outer, j.Inner)
	if err != nil {
		return nil, err
	}
	return &mergeJoinIter{e: e, node: j, outIdx: oi, inIdx: ii}, nil
}

func drain(e *Env, n plan.Node) ([]expr.Row, error) {
	it, err := Build(e, n)
	if err != nil {
		return nil, err
	}
	if err := it.Open(); err != nil {
		return nil, errors.Join(err, it.Close())
	}
	var rows []expr.Row
	if bs := e.batchSize(); bs > 1 {
		buf := getRowBuf(bs)
		defer putRowBuf(buf)
		for {
			m, berr := nextBatch(it, buf)
			if berr != nil {
				return nil, errors.Join(berr, it.Close())
			}
			if m == 0 {
				return rows, it.Close()
			}
			rows = append(rows, buf[:m]...)
		}
	}
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, errors.Join(err, it.Close())
		}
		if !ok {
			return rows, it.Close()
		}
		rows = append(rows, row)
	}
}

func (m *mergeJoinIter) Open() error {
	var err error
	if m.orows, err = drain(m.e, m.node.Outer); err != nil {
		return err
	}
	if m.irows, err = drain(m.e, m.node.Inner); err != nil {
		return err
	}
	sortSide := func(rows []expr.Row, idx int) {
		m.e.ChargeSynthetic(float64(len(rows)) * cost.SortSpillPerTuple)
		sort.SliceStable(rows, func(a, b int) bool {
			return rows[a][idx].Compare(rows[b][idx]) < 0
		})
	}
	if m.node.SortOuter {
		sortSide(m.orows, m.outIdx)
	}
	if m.node.SortInner {
		sortSide(m.irows, m.inIdx)
	}
	m.opened = true
	return m.e.checkAbort()
}

func (m *mergeJoinIter) Next() (expr.Row, bool, error) {
	if !m.opened {
		return nil, false, fmt.Errorf("exec: Next before Open on MergeJoin")
	}
	for {
		if m.gpos < len(m.group) {
			out := m.orows[m.oi].Concat(m.group[m.gpos])
			m.gpos++
			return out, true, nil
		}
		// Group finished: advance outer; if its key matches the previous
		// group's key, reuse the group.
		if len(m.group) > 0 {
			prevKey := m.group[0][m.inIdx]
			m.oi++
			if m.oi < len(m.orows) && !m.orows[m.oi][m.outIdx].IsNull() &&
				m.orows[m.oi][m.outIdx].Equal(prevKey) {
				m.gpos = 0
				continue
			}
			m.group, m.gpos = nil, 0
		}
		if m.oi >= len(m.orows) {
			return nil, false, nil
		}
		okey := m.orows[m.oi][m.outIdx]
		if okey.IsNull() {
			m.oi++
			continue
		}
		// Advance inner to the first key >= okey.
		for m.ii < len(m.irows) && (m.irows[m.ii][m.inIdx].IsNull() || m.irows[m.ii][m.inIdx].Compare(okey) < 0) {
			m.ii++
		}
		if m.ii >= len(m.irows) {
			return nil, false, nil
		}
		if m.irows[m.ii][m.inIdx].Compare(okey) > 0 {
			m.oi++
			continue
		}
		// Collect the group of equal inner keys.
		start := m.ii
		for m.ii < len(m.irows) && m.irows[m.ii][m.inIdx].Equal(okey) {
			m.ii++
		}
		m.group = m.irows[start:m.ii]
		m.gpos = 0
		// The next outer with the same key must see this group again.
		m.ii = start
		// Advance past the group only when the outer key changes; handled by
		// the reuse branch above. To avoid rescanning forever, remember that
		// groups are re-found by key comparison: reset ii to start is safe
		// because the outer only moves forward.
		if err := m.e.checkAbort(); err != nil {
			return nil, false, err
		}
	}
}

func (m *mergeJoinIter) Close() error { return nil }
