package exec

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"predplace/internal/expr"
	"predplace/internal/plan"
	"predplace/internal/query"
)

// abortMatrix is the (Parallelism, BatchSize) grid every abort-path
// regression runs over: serial and parallel, tuple-at-a-time and batched.
var abortMatrix = []struct {
	parallelism int
	batchSize   int
}{
	{1, 1}, {1, 256}, {4, 1}, {4, 256},
}

// waitTeardown polls until the executor's teardown contract holds: zero
// pinned buffer-pool frames and the goroutine count back at (or below) the
// pre-query baseline. Parallel workers exit asynchronously after Close, so
// an instantaneous assertion would flake.
func waitTeardown(t *testing.T, env *Env, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		pinned := env.Pool.PinnedFrames()
		g := runtime.NumGoroutine()
		if pinned == 0 && g <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("teardown leak: %d pinned frames, %d goroutines (baseline %d)",
				pinned, g, baseline)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// costlyFilterPlan builds Filter(costly100(t1.u10), SeqScan(t1)) — enough
// work per row that a small budget aborts mid-stream.
func costlyFilterPlan(t *testing.T, env *Env) plan.Node {
	t.Helper()
	f, err := env.Cat.Func("costly100")
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.NewQuery([]string{"t1"}, []*query.Predicate{{
		Kind: query.KindFunc, Func: f, Args: []query.ColRef{{Table: "t1", Col: "u10"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	query.Analyze(env.Cat, q)
	return &plan.Filter{Input: scanNode(t, env.Cat, "t1"), Pred: q.Preds[0]}
}

// TestBudgetAbortTeardownMatrix is the regression for budget aborts raised
// inside workers: at every (Parallelism, BatchSize) combination the abort
// must fold into DNF, shut the whole fan-in down, unpin every frame, and
// strand no pooled row buffers or goroutines.
func TestBudgetAbortTeardownMatrix(t *testing.T) {
	_, env := newEnv(t, []int{1}, false)
	root := costlyFilterPlan(t, env)
	for _, m := range abortMatrix {
		env.Parallelism, env.BatchSize = m.parallelism, m.batchSize
		env.Budget = 500 // a handful of 100-unit calls
		baseline := runtime.NumGoroutine()
		res, err := Run(env, root)
		if err != nil {
			t.Fatalf("P=%d BS=%d: %v", m.parallelism, m.batchSize, err)
		}
		if !res.DNF {
			t.Fatalf("P=%d BS=%d: budget abort should report DNF", m.parallelism, m.batchSize)
		}
		waitTeardown(t, env, baseline)
	}
	env.Parallelism, env.BatchSize, env.Budget = 1, 0, 0
}

// TestCancelTeardownMatrix runs the same grid under an already-canceled
// context: Run must fail with an error reaching both ErrCanceled and
// context.Canceled, never DNF, and tear down cleanly.
func TestCancelTeardownMatrix(t *testing.T) {
	_, env := newEnv(t, []int{1}, false)
	root := costlyFilterPlan(t, env)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	env.Ctx = ctx
	for _, m := range abortMatrix {
		env.Parallelism, env.BatchSize = m.parallelism, m.batchSize
		baseline := runtime.NumGoroutine()
		_, err := Run(env, root)
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("P=%d BS=%d: want ErrCanceled wrapping context.Canceled, got %v",
				m.parallelism, m.batchSize, err)
		}
		waitTeardown(t, env, baseline)
	}
	env.Ctx, env.Parallelism, env.BatchSize = nil, 1, 0
}

// TestDeadlineTeardownMatrix covers the deadline flavor: an expired
// deadline surfaces as context.DeadlineExceeded through ErrCanceled.
func TestDeadlineTeardownMatrix(t *testing.T) {
	_, env := newEnv(t, []int{1}, false)
	root := costlyFilterPlan(t, env)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	env.Ctx = ctx
	for _, m := range abortMatrix {
		env.Parallelism, env.BatchSize = m.parallelism, m.batchSize
		baseline := runtime.NumGoroutine()
		_, err := Run(env, root)
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("P=%d BS=%d: want ErrCanceled wrapping DeadlineExceeded, got %v",
				m.parallelism, m.batchSize, err)
		}
		waitTeardown(t, env, baseline)
	}
	env.Ctx, env.Parallelism, env.BatchSize = nil, 1, 0
}

// TestCancelDuringJoin cancels mid-join (hash build past the 1024-row
// cadence) to exercise the join operators' abort paths, serial and
// parallel.
func TestCancelDuringJoin(t *testing.T) {
	db, env := newEnv(t, []int{1, 9}, false)
	q, err := query.NewQuery([]string{"t1", "t9"}, []*query.Predicate{{
		Kind: query.KindJoinCmp, Op: expr.OpEQ,
		Left: query.ColRef{Table: "t1", Col: "ua1"}, Right: query.ColRef{Table: "t9", Col: "ua1"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	query.Analyze(db.Cat, q)
	outer := scanNode(t, db.Cat, "t1")
	inner := scanNode(t, db.Cat, "t9")
	j := &plan.Join{Method: plan.HashJoin, Outer: outer, Inner: inner, Primary: q.Preds[0]}
	j.ColRefs = plan.ConcatCols(outer, inner)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	env.Ctx = ctx
	for _, p := range []int{1, 4} {
		env.Parallelism = p
		baseline := runtime.NumGoroutine()
		_, err := Run(env, j)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("P=%d: want context.Canceled, got %v", p, err)
		}
		waitTeardown(t, env, baseline)
	}
	env.Ctx, env.Parallelism = nil, 1
}
