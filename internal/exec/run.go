package exec

import (
	"errors"
	"fmt"

	"predplace/internal/expr"
	"predplace/internal/plan"
	"predplace/internal/query"
	"predplace/internal/storage"
)

// Result is an executed query's output.
type Result struct {
	// Cols names the output columns.
	Cols []string
	// Rows holds the result rows (nil when Env.CountOnly).
	Rows []expr.Row
	// Stats reports resource consumption.
	Stats Stats
	// DNF is set when the charged-cost budget aborted the query; Stats then
	// reflects consumption up to the abort.
	DNF bool
	// NodeRows maps plan nodes to the number of rows they actually produced
	// (accumulated across nested-loop rescans) — EXPLAIN ANALYZE's data.
	// With Env.Profile on every plan node has an entry (nodes the data flow
	// never reached report 0); with it off, only nodes the executor built.
	NodeRows map[plan.Node]int64
	// Profile is the per-operator runtime profile tree (nil unless
	// Env.Profile was on).
	Profile *OpProfile
}

// collectTrace snapshots the per-node row counters.
func collectTrace(e *Env) map[plan.Node]int64 {
	out := make(map[plan.Node]int64, len(e.trace))
	for n, c := range e.trace {
		out[n] = *c
	}
	return out
}

// Run executes a plan tree to completion, resetting the Env's per-query
// state first (each query is measured in isolation). With Env.Validate set
// (the facade snapshots PPLINT_VALIDATE at Open), the plan tree is checked
// against the structural invariants of plan.Validate before any execution.
func Run(e *Env, root plan.Node) (*Result, error) {
	if e.Validate {
		if err := plan.Validate(root); err != nil {
			return nil, fmt.Errorf("exec: refusing to run invalid plan: %w", err)
		}
	}
	e.begin()
	if e.prof != nil {
		// Pre-register every plan node's counters so the profile and
		// NodeRows cover the whole tree — including subtrees the data flow
		// never builds (an empty outer's nested-loop inner, the probe-driven
		// inner chain of an index nested loop). An unreached node truthfully
		// reports 0 rows instead of being absent ("actual=n/a").
		plan.Walk(root, func(n plan.Node) {
			e.nodeCounter(n)
			e.nodeProf(n)
		})
	}
	res := &Result{}
	for _, c := range root.Cols() {
		res.Cols = append(res.Cols, c.String())
	}
	if e.Transfer {
		// Predicate-transfer prepass: build and exchange the join graph's
		// Bloom filters before the main plan runs. A budget abort here is
		// the same measurement outcome as one mid-query (DNF below);
		// cancellation and injected faults surface as errors, as always.
		if err := e.runTransferPrepass(root); err != nil {
			if errors.Is(err, ErrBudgetExceeded) {
				res.DNF = true
				res.Stats = e.finish(0)
				res.NodeRows = collectTrace(e)
				if e.prof != nil {
					res.Profile = assembleProfile(e, root)
				}
				return res, nil
			}
			return nil, err
		}
	}
	it, err := Build(e, root)
	if err != nil {
		return nil, err
	}
	rows, err := pump(e, it, res)
	cerr := it.Close()
	if errors.Is(err, ErrBudgetExceeded) {
		// The abort is the measurement (the paper's "did not finish"); a
		// Close failure after it would still be a real engine error.
		// Cancellation and injected faults are NOT folded into DNF — they
		// surface as wrapped errors (the abort is an outcome of the run, not
		// part of the measurement).
		res.DNF = true
		err = nil
	}
	if err := errors.Join(err, cerr); err != nil {
		return nil, err
	}
	res.Stats = e.finish(rows)
	res.NodeRows = collectTrace(e)
	if e.prof != nil {
		res.Profile = assembleProfile(e, root)
	}
	return res, nil
}

// pump opens the iterator and drains it into res, returning the number of
// rows produced. The caller owns closing the iterator. With batching on
// (Env.BatchSize != 1) it drives the tree through the NextBatch fast path;
// BatchSize 1 runs the exact legacy tuple-at-a-time loop.
func pump(e *Env, it Iterator, res *Result) (int, error) {
	if err := it.Open(); err != nil {
		return 0, err
	}
	rows := 0
	if bs := e.batchSize(); bs > 1 {
		buf := getRowBuf(bs)
		defer putRowBuf(buf)
		for {
			n, err := nextBatch(it, buf)
			if err != nil {
				return rows, err
			}
			if n == 0 {
				return rows, nil
			}
			rows += n
			if !e.CountOnly {
				res.Rows = append(res.Rows, buf[:n]...)
			}
		}
	}
	for {
		row, ok, err := it.Next()
		if err != nil {
			return rows, err
		}
		if !ok {
			return rows, nil
		}
		rows++
		if !e.CountOnly {
			res.Rows = append(res.Rows, row)
		}
	}
}

// MatchingTIDs scans a base table and returns the tuple ids of rows
// satisfying every predicate — the lookup side of DML (DELETE). Predicates
// are evaluated in the given order with the usual caching behaviour.
func MatchingTIDs(e *Env, tableName string, preds []*query.Predicate) ([]storage.TID, error) {
	tab, err := e.Cat.Table(tableName)
	if err != nil {
		return nil, err
	}
	cols := make([]query.ColRef, len(tab.Columns))
	for i, c := range tab.Columns {
		cols[i] = query.ColRef{Table: tableName, Col: c.Name}
	}
	compiled, err := compilePreds(preds, cols)
	if err != nil {
		return nil, err
	}
	var out []storage.TID
	it := e.heap(tab).Scan()
	defer it.Close()
	count := 0
	for {
		rec, tid, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		count++
		if count%1024 == 0 {
			if err := e.checkAbort(); err != nil {
				return nil, err
			}
		}
		row, err := tab.Codec.Decode(rec)
		if err != nil {
			return nil, err
		}
		keep := true
		for _, cp := range compiled {
			pass, err := cp.holds(e, row)
			if err != nil {
				return nil, err
			}
			if !pass {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, tid)
		}
	}
}
