package exec

// The top-k operators. topkIter is a bounded heap: it consumes its whole
// input but holds at most k rows, then emits them in (key, tie) order —
// n·log k comparisons instead of the facade's full n·log n sort, and only k
// rows ever flow upstream. limitIter is pure early termination: it stops
// pulling from its child after k rows, so the subtree below never produces
// — or pays for — the rows the limit cuts off. Neither operator charges
// anything itself (the heap lives in memory, exactly like the facade sort
// it replaces); their effect on charged cost is entirely in what the
// subtree below no longer does.

import (
	"fmt"

	"predplace/internal/expr"
	"predplace/internal/plan"
)

// topkIter implements plan.TopK. The heap is a worst-at-root max-heap over
// the output ordering (heap[0] is the current k-th row): a new row is
// admitted only when it beats the current boundary, displacing it. The
// first Next/NextBatch call drains the input into the heap; emission is a
// copy out of the sorted pooled storage — the batch path allocates nothing.
type topkIter struct {
	e      *Env
	node   *plan.TopK
	in     Iterator
	keyIdx int
	tieIdx []int
	// heap is pooled storage holding ≤ k rows; after fill it is heapsorted
	// into output order and emitted from pos.
	heap   []expr.Row
	buf    []expr.Row // pooled input batch buffer (batched fill only)
	pos    int
	filled bool
	count  int
	tc     *opCounters // nil unless profiling
}

func newTopK(e *Env, t *plan.TopK) (Iterator, error) {
	in, err := Build(e, t.Input)
	if err != nil {
		return nil, err
	}
	keyIdx := plan.ColIndex(t.Input, t.Key)
	if keyIdx < 0 {
		return nil, fmt.Errorf("exec: TopK key %s not in input columns", t.Key)
	}
	tieIdx := make([]int, 0, len(t.Tie))
	for _, ref := range t.Tie {
		i := plan.ColIndex(t.Input, ref)
		if i < 0 {
			return nil, fmt.Errorf("exec: TopK tie column %s not in input columns", ref)
		}
		tieIdx = append(tieIdx, i)
	}
	it := &topkIter{e: e, node: t, in: in, keyIdx: keyIdx, tieIdx: tieIdx}
	if e.prof != nil {
		it.tc = e.nodeProf(t)
	}
	return it, nil
}

// less is the output ordering: key first (flipped under Desc), then the tie
// columns ascending regardless of direction — the same comparator the
// facade sort uses, so TopK-on results are byte-identical to TopK-off even
// when equal keys arrive in a parallel operator's nondeterministic order
// (rows equal under this comparator are identical after projection).
func (t *topkIter) less(a, b expr.Row) bool {
	c := a[t.keyIdx].Compare(b[t.keyIdx])
	if c != 0 {
		if t.node.Desc {
			return c > 0
		}
		return c < 0
	}
	for _, i := range t.tieIdx {
		if cc := a[i].Compare(b[i]); cc != 0 {
			return cc < 0
		}
	}
	return false
}

// siftUp restores the worst-at-root property after an append at i.
func (t *topkIter) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.less(t.heap[p], t.heap[i]) {
			return
		}
		t.heap[p], t.heap[i] = t.heap[i], t.heap[p]
		i = p
	}
}

// siftDown restores the property below i over the first n entries.
func (t *topkIter) siftDown(i, n int) {
	for {
		worst := i
		if l := 2*i + 1; l < n && t.less(t.heap[worst], t.heap[l]) {
			worst = l
		}
		if r := 2*i + 2; r < n && t.less(t.heap[worst], t.heap[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.heap[i], t.heap[worst] = t.heap[worst], t.heap[i]
		i = worst
	}
}

// offer admits a row into the bounded heap: appended while under k, and
// past k only by displacing the current boundary row when it beats it.
func (t *topkIter) offer(row expr.Row) {
	if len(t.heap) < int(t.node.K) {
		t.heap = append(t.heap, row)
		t.siftUp(len(t.heap) - 1)
		if t.tc != nil {
			t.tc.heapPushed.Add(1)
		}
		return
	}
	if !t.less(row, t.heap[0]) {
		return
	}
	t.heap[0] = row
	t.siftDown(0, len(t.heap))
	if t.tc != nil {
		t.tc.heapPushed.Add(1)
		t.tc.heapEvicted.Add(1)
	}
}

// fill drains the input into the heap (batched or tuple-at-a-time to match
// the configured executor mode), then heapsorts the survivors in place into
// output order. Runs once; Next/NextBatch afterwards only copy out.
func (t *topkIter) fill() error {
	if t.filled {
		return nil
	}
	t.filled = true
	if t.heap == nil {
		t.heap = getRowBuf(min(int(t.node.K), DefaultBatchSize))[:0]
	}
	if bs := t.e.batchSize(); bs > 1 {
		if t.buf == nil {
			t.buf = getRowBuf(bs)
		}
		for {
			n, err := nextBatch(t.in, t.buf)
			if err != nil {
				return err
			}
			if n == 0 {
				break
			}
			t.count += n
			if err := t.e.checkAbort(); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				t.offer(t.buf[i])
			}
		}
	} else {
		for {
			row, ok, err := t.in.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			t.count++
			if t.count%1024 == 0 {
				if err := t.e.checkAbort(); err != nil {
					return err
				}
			}
			t.offer(row)
		}
	}
	// In-place heapsort: repeatedly swap the worst (root) to the end. The
	// worst-at-root heap leaves the array ascending in output order.
	for n := len(t.heap); n > 1; n-- {
		t.heap[0], t.heap[n-1] = t.heap[n-1], t.heap[0]
		t.siftDown(0, n-1)
	}
	return nil
}

func (t *topkIter) Open() error {
	t.filled = false
	t.pos, t.count = 0, 0
	if t.heap != nil {
		t.heap = t.heap[:0]
	}
	return t.in.Open()
}

func (t *topkIter) Next() (expr.Row, bool, error) {
	if err := t.fill(); err != nil {
		return nil, false, err
	}
	if t.pos >= len(t.heap) {
		return nil, false, nil
	}
	row := t.heap[t.pos]
	t.pos++
	return row, true, nil
}

// NextBatch copies the next run of sorted survivors into dst — no
// allocation, no comparison; all the work happened in fill.
func (t *topkIter) NextBatch(dst []expr.Row) (int, error) {
	if err := t.fill(); err != nil {
		return 0, err
	}
	n := copy(dst, t.heap[t.pos:])
	t.pos += n
	return n, nil
}

func (t *topkIter) Close() error {
	if t.buf != nil {
		putRowBuf(t.buf)
		t.buf = nil
	}
	if t.heap != nil {
		putRowBuf(t.heap)
		t.heap = nil
	}
	return t.in.Close()
}

// limitIter implements plan.Limit: pass through k rows, then stop pulling.
// For an ordered limit the child subtree was built serial (Env.buildSerial),
// so the index scan's ascending key order survives to the root and the k
// rows delivered are exactly the ORDER BY's first k.
type limitIter struct {
	in   Iterator
	k    int64
	seen int64
	cut  bool
	tc   *opCounters // nil unless profiling
}

func newLimit(e *Env, l *plan.Limit) (Iterator, error) {
	restore := e.buildSerial
	if l.Ordered {
		e.buildSerial = true
	}
	in, err := Build(e, l.Input)
	e.buildSerial = restore
	if err != nil {
		return nil, err
	}
	it := &limitIter{in: in, k: l.K}
	if e.prof != nil {
		it.tc = e.nodeProf(l)
	}
	return it, nil
}

func (l *limitIter) Open() error {
	l.seen, l.cut = 0, false
	return l.in.Open()
}

// shortCircuit records (once) that the limit cut its child off early.
func (l *limitIter) shortCircuit() {
	if l.tc != nil && !l.cut {
		l.tc.shortCircuit.Add(1)
	}
	l.cut = true
}

func (l *limitIter) Next() (expr.Row, bool, error) {
	if l.seen >= l.k {
		l.shortCircuit()
		return nil, false, nil
	}
	row, ok, err := l.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}

// NextBatch clamps the requested batch to the rows still owed, so the child
// never overproduces past the limit by more than the last partial batch.
func (l *limitIter) NextBatch(dst []expr.Row) (int, error) {
	rem := l.k - l.seen
	if rem <= 0 {
		l.shortCircuit()
		return 0, nil
	}
	want := int64(len(dst))
	if want > rem {
		want = rem
	}
	n, err := nextBatch(l.in, dst[:want])
	if err != nil {
		return 0, err
	}
	l.seen += int64(n)
	return n, nil
}

func (l *limitIter) Close() error { return l.in.Close() }
