package exec

import (
	"fmt"

	"predplace/internal/btree"
	"predplace/internal/catalog"
	"predplace/internal/expr"
	"predplace/internal/plan"
	"predplace/internal/storage"
)

// Iterator is the Volcano operator interface.
type Iterator interface {
	// Open prepares the iterator for Next calls.
	Open() error
	// Next produces the next row; ok=false signals exhaustion.
	Next() (row expr.Row, ok bool, err error)
	// Close releases resources. Safe to call more than once.
	Close() error
}

// Build compiles a physical plan into an iterator tree. When the Env is
// tracing (Run always traces), every operator is wrapped with a per-node
// row counter so EXPLAIN ANALYZE can print actual cardinalities next to the
// optimizer's estimates. With profiling on the wrapper additionally measures
// wall time and attributes physical I/O per operator.
func Build(e *Env, n plan.Node) (Iterator, error) {
	it, err := build(e, n)
	if err != nil {
		return nil, err
	}
	if e.prof != nil {
		return &profIter{e: e, in: it, rows: e.nodeCounter(n), c: e.nodeProf(n)}, nil
	}
	if e.trace != nil {
		return &countIter{in: it, rows: e.nodeCounter(n)}, nil
	}
	return it, nil
}

func build(e *Env, n plan.Node) (Iterator, error) {
	switch t := n.(type) {
	case *plan.SeqScan:
		if e.workers() > 1 && !e.buildSerial {
			return newParallelSeqScan(e, t)
		}
		return newSeqScan(e, t)
	case *plan.IndexScan:
		return newIndexScan(e, t)
	case *plan.Filter:
		in, err := Build(e, t.Input)
		if err != nil {
			return nil, err
		}
		cp, err := compilePred(t.Pred, t.Input.Cols())
		if err != nil {
			return nil, err
		}
		if e.prof != nil {
			cp.prof = e.nodeProf(t)
		}
		if e.workers() > 1 && !e.buildSerial && t.Pred.IsExpensive() {
			return newParallelFilter(e, in, cp), nil
		}
		return &filterIter{e: e, in: in, pred: cp}, nil
	case *plan.Join:
		return buildJoin(e, t)
	case *plan.TopK:
		return newTopK(e, t)
	case *plan.Limit:
		return newLimit(e, t)
	}
	return nil, fmt.Errorf("exec: unknown plan node %T", n)
}

// seqScanIter reads a heap file front to back. With predicate transfer on,
// received Bloom filters are probed on the raw record (decoding only the
// join-key columns) before the full-row decode, so pruned rows cost one
// partial decode and a probe — never a row allocation.
type seqScanIter struct {
	e      *Env
	tab    *catalog.Table
	it     *storage.HeapIter
	count  int
	alloc  rowAlloc
	memo   catalog.DecodeMemo
	probes []tableProbe
	tc     *opCounters
}

func newSeqScan(e *Env, s *plan.SeqScan) (Iterator, error) {
	tab, err := e.Cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	if tab.Heap == nil || tab.Codec == nil {
		return nil, fmt.Errorf("exec: table %s has no storage", s.Table)
	}
	it := &seqScanIter{e: e, tab: tab}
	if e.prof != nil {
		it.tc = e.nodeProf(s)
	}
	return it, nil
}

func (s *seqScanIter) Open() error {
	s.it = s.e.heap(s.tab).Scan()
	s.probes = s.e.transferProbes(s.tab.Name)
	return nil
}

func (s *seqScanIter) Next() (expr.Row, bool, error) {
	if s.it == nil {
		return nil, false, fmt.Errorf("exec: Next before Open on SeqScan(%s)", s.tab.Name)
	}
	for {
		rec, _, ok, err := s.it.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		s.count++
		if s.count%1024 == 0 {
			if err := s.e.checkAbort(); err != nil {
				return nil, false, err
			}
		}
		if len(s.probes) > 0 {
			keep, err := s.e.probeRecord(s.tab.Codec, rec, s.probes, s.tc)
			if err != nil {
				return nil, false, err
			}
			if !keep {
				continue
			}
		}
		row, err := s.tab.Codec.Decode(rec)
		if err != nil {
			return nil, false, err
		}
		return row, true, nil
	}
}

// NextBatch is the vectorized scan: records are referenced in place on the
// pinned page (no per-record copy) and decoded straight into slab-carved
// rows — one slab allocation per ~slabValues values instead of two
// allocations per row. Page I/O, scan order, and budget-check cadence are
// identical to the Next path.
func (s *seqScanIter) NextBatch(dst []expr.Row) (int, error) {
	if s.it == nil {
		return 0, fmt.Errorf("exec: NextBatch before Open on SeqScan(%s)", s.tab.Name)
	}
	width := len(s.tab.Columns)
	n := 0
	for n < len(dst) {
		rec, _, ok, err := s.it.NextRef()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		s.count++
		if s.count%1024 == 0 {
			if err := s.e.checkAbort(); err != nil {
				return 0, err
			}
		}
		if len(s.probes) > 0 {
			keep, err := s.e.probeRecord(s.tab.Codec, rec, s.probes, s.tc)
			if err != nil {
				return 0, err
			}
			if !keep {
				continue
			}
		}
		row := s.alloc.next(width)
		if err := s.tab.Codec.DecodeIntoMemo(rec, row, &s.memo); err != nil {
			return 0, err
		}
		dst[n] = row
		n++
	}
	return n, nil
}

func (s *seqScanIter) Close() error {
	if s.it != nil {
		s.it.Close()
		s.it = nil
	}
	return nil
}

// indexScanIter drives a B-tree equality or range scan, fetching matching
// heap tuples (random I/O per fetch). Equality probes materialize the
// (typically small) TID list the B-tree returns; range scans stream from
// the B-tree's leaf iterator lazily, so a wide range never materializes
// every TID up front. Close releases both.
type indexScanIter struct {
	e    *Env
	node *plan.IndexScan
	tab  *catalog.Table
	// heap is the table's heap file viewed through the query's I/O tracker,
	// resolved once at Open so per-tuple fetches don't re-wrap it.
	heap   *storage.HeapFile
	tids   []storage.TID
	pos    int
	rng    *btree.Iter
	count  int
	alloc  rowAlloc
	memo   catalog.DecodeMemo
	probes []tableProbe
	tc     *opCounters
}

func newIndexScan(e *Env, s *plan.IndexScan) (Iterator, error) {
	tab, err := e.Cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	if !tab.HasIndex(s.Col) {
		return nil, fmt.Errorf("exec: no index on %s.%s", s.Table, s.Col)
	}
	it := &indexScanIter{e: e, node: s, tab: tab}
	if e.prof != nil {
		it.tc = e.nodeProf(s)
	}
	return it, nil
}

func (s *indexScanIter) Open() error {
	tree := s.e.index(s.tab.Indexes[s.node.Col])
	s.heap = s.e.heap(s.tab)
	s.tids = nil
	s.pos, s.count = 0, 0
	s.rng = nil
	s.probes = s.e.transferProbes(s.tab.Name)
	switch {
	case s.node.Eq != nil:
		if s.node.Eq.Kind != expr.TInt {
			return fmt.Errorf("exec: index scan requires int key")
		}
		s.tids = tree.Probe(s.node.Eq.I)
	default:
		lo := int64(-1) << 62
		hi := int64(1)<<62 - 1
		if s.node.Lo != nil {
			lo = s.node.Lo.I
		}
		if s.node.Hi != nil {
			hi = s.node.Hi.I
		}
		s.rng = tree.Range(lo, hi)
	}
	return nil
}

// nextTID yields the next matching TID: from the probe result for equality
// scans, streamed from the B-tree leaf chain for range scans.
func (s *indexScanIter) nextTID() (storage.TID, bool) {
	if s.rng != nil {
		ent, ok := s.rng.Next()
		return ent.TID, ok
	}
	if s.pos >= len(s.tids) {
		return storage.TID{}, false
	}
	tid := s.tids[s.pos]
	s.pos++
	return tid, true
}

func (s *indexScanIter) Next() (expr.Row, bool, error) {
	for {
		tid, ok := s.nextTID()
		if !ok {
			return nil, false, nil
		}
		s.count++
		if s.count%1024 == 0 {
			if err := s.e.checkAbort(); err != nil {
				return nil, false, err
			}
		}
		rec, err := s.heap.Get(tid)
		if err != nil {
			return nil, false, err
		}
		row, err := s.tab.Codec.Decode(rec)
		if err != nil {
			return nil, false, err
		}
		// Index fetches already paid the random I/O, so received filters are
		// probed on the decoded row; pruning saves the operators above.
		if len(s.probes) > 0 && !s.e.probeRow(row, s.probes, s.tc) {
			continue
		}
		return row, true, nil
	}
}

// NextBatch fetches matching heap tuples in batch, decoding each record in
// place under its page pin (HeapFile.View) into slab-carved rows instead
// of copying record bytes out. Fetch order, page I/O, and budget cadence
// match the Next path.
func (s *indexScanIter) NextBatch(dst []expr.Row) (int, error) {
	width := len(s.tab.Columns)
	var row expr.Row
	decode := func(rec []byte) error { return s.tab.Codec.DecodeIntoMemo(rec, row, &s.memo) }
	n := 0
	for n < len(dst) {
		tid, ok := s.nextTID()
		if !ok {
			break
		}
		s.count++
		if s.count%1024 == 0 {
			if err := s.e.checkAbort(); err != nil {
				return 0, err
			}
		}
		row = s.alloc.next(width)
		if err := s.heap.View(tid, decode); err != nil {
			return 0, err
		}
		if len(s.probes) > 0 && !s.e.probeRow(row, s.probes, s.tc) {
			continue
		}
		dst[n] = row
		n++
	}
	return n, nil
}

func (s *indexScanIter) Close() error {
	s.tids = nil
	s.rng = nil
	s.pos = 0
	return nil
}

// filterIter applies one predicate, dropping rows that fail it.
type filterIter struct {
	e     *Env
	in    Iterator
	pred  *compiledPred
	count int
	// batch state: input buffer, per-row verdicts, predicate scratch
	buf  []expr.Row
	keep []bool
	sc   predScratch
}

func (f *filterIter) Open() error { return f.in.Open() }

func (f *filterIter) Next() (expr.Row, bool, error) {
	for {
		row, ok, err := f.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		f.count++
		if f.count%32 == 0 {
			if err := f.e.checkAbort(); err != nil {
				return nil, false, err
			}
		}
		pass, err := f.pred.holds(f.e, row)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return row, true, nil
		}
	}
}

// NextBatch pulls a batch from the input and evaluates the predicate over
// the whole batch (holdsBatch), compacting survivors into dst. Looping
// until at least one row passes keeps the n==0-means-exhausted contract.
func (f *filterIter) NextBatch(dst []expr.Row) (int, error) {
	want := len(dst)
	if want == 0 {
		return 0, nil
	}
	if cap(f.buf) < want {
		f.buf = make([]expr.Row, want)
		f.keep = make([]bool, want)
	}
	for {
		m, err := nextBatch(f.in, f.buf[:want])
		if err != nil {
			return 0, err
		}
		if m == 0 {
			return 0, nil
		}
		if err := f.pred.holdsBatch(f.e, f.buf[:m], f.keep[:m], &f.count, &f.sc); err != nil {
			return 0, err
		}
		n := 0
		for i := 0; i < m; i++ {
			if f.keep[i] {
				dst[n] = f.buf[i]
				n++
			}
		}
		if n > 0 {
			return n, nil
		}
	}
}

func (f *filterIter) Close() error { return f.in.Close() }

// countIter counts the rows an operator produces (accumulating across
// nested-loop rescans) for EXPLAIN ANALYZE.
type countIter struct {
	in   Iterator
	rows *int64
}

func (c *countIter) Open() error { return c.in.Open() }

func (c *countIter) Next() (expr.Row, bool, error) {
	row, ok, err := c.in.Next()
	if ok {
		*c.rows++
	}
	return row, ok, err
}

// NextBatch forwards the batch fast path through the EXPLAIN ANALYZE
// counter — without this, the tracing wrapper Run installs around every
// operator would degrade the whole tree to tuple-at-a-time.
func (c *countIter) NextBatch(dst []expr.Row) (int, error) {
	n, err := nextBatch(c.in, dst)
	if err != nil {
		return 0, err
	}
	*c.rows += int64(n)
	return n, nil
}

func (c *countIter) Close() error { return c.in.Close() }
