package exec

import (
	"fmt"

	"predplace/internal/expr"
	"predplace/internal/pcache"
	"predplace/internal/plan"
	"predplace/internal/query"
)

// compiledPred is a predicate with its column references resolved to row
// positions for a specific operator's output schema.
type compiledPred struct {
	pred *query.Predicate
	// comparison predicates
	op       expr.CmpOp
	leftIdx  int
	rightIdx int        // -1 for col-vs-const
	constVal expr.Value // col-vs-const
	// function predicates
	argIdx []int
}

// compilePred resolves p's column references against cols.
func compilePred(p *query.Predicate, cols []query.ColRef) (*compiledPred, error) {
	find := func(ref query.ColRef) (int, error) {
		for i, c := range cols {
			if c == ref {
				return i, nil
			}
		}
		return -1, fmt.Errorf("exec: column %s not in operator schema %v", ref, cols)
	}
	cp := &compiledPred{pred: p, op: p.Op, rightIdx: -1}
	switch p.Kind {
	case query.KindSelCmp:
		i, err := find(p.Left)
		if err != nil {
			return nil, err
		}
		cp.leftIdx, cp.constVal = i, p.Value
	case query.KindJoinCmp:
		l, err := find(p.Left)
		if err != nil {
			return nil, err
		}
		r, err := find(p.Right)
		if err != nil {
			return nil, err
		}
		cp.leftIdx, cp.rightIdx = l, r
	case query.KindFunc:
		for _, a := range p.Args {
			i, err := find(a)
			if err != nil {
				return nil, err
			}
			cp.argIdx = append(cp.argIdx, i)
		}
	default:
		return nil, fmt.Errorf("exec: unknown predicate kind %d", p.Kind)
	}
	return cp, nil
}

// eval computes the predicate's tri-state result on a row, consulting the
// predicate cache for cacheable function predicates (the cache stores the
// result of the whole predicate keyed on the argument binding, §5.1).
func (cp *compiledPred) eval(e *Env, row expr.Row) (expr.Value, error) {
	p := cp.pred
	switch p.Kind {
	case query.KindSelCmp:
		return cp.op.Apply(row[cp.leftIdx], cp.constVal), nil
	case query.KindJoinCmp:
		return cp.op.Apply(row[cp.leftIdx], row[cp.rightIdx]), nil
	case query.KindFunc:
		args := make([]expr.Value, len(cp.argIdx))
		for i, idx := range cp.argIdx {
			args[i] = row[idx]
		}
		if e.Cache.Enabled() && p.Func.Cacheable {
			owner := e.Cache.Owner(p.ID, p.Func.Name)
			key := pcache.Key(args)
			if v, ok := e.Cache.Lookup(owner, key); ok {
				return v, nil
			}
			v := p.Func.Invoke(args)
			e.Cache.Store(owner, key, v)
			return v, nil
		}
		return p.Func.Invoke(args), nil
	}
	return expr.Null, fmt.Errorf("exec: unknown predicate kind %d", p.Kind)
}

// holds reports whether the predicate is satisfied (NULL and false both
// reject the row, per SQL WHERE semantics).
func (cp *compiledPred) holds(e *Env, row expr.Row) (bool, error) {
	v, err := cp.eval(e, row)
	if err != nil {
		return false, err
	}
	b, known := v.Bool()
	return known && b, nil
}

// compilePreds compiles a slice of predicates against one schema.
func compilePreds(ps []*query.Predicate, cols []query.ColRef) ([]*compiledPred, error) {
	out := make([]*compiledPred, 0, len(ps))
	for _, p := range ps {
		cp, err := compilePred(p, cols)
		if err != nil {
			return nil, err
		}
		out = append(out, cp)
	}
	return out, nil
}

// joinKeyIdx resolves which side of an equality join predicate lives in
// which child, returning the outer and inner column positions.
func joinKeyIdx(p *query.Predicate, outer, inner plan.Node) (outIdx, inIdx int, err error) {
	if p == nil || p.Kind != query.KindJoinCmp || p.Op != expr.OpEQ {
		return 0, 0, fmt.Errorf("exec: join method requires an equality join predicate, got %v", p)
	}
	lo := plan.ColIndex(outer, p.Left)
	ri := plan.ColIndex(inner, p.Right)
	if lo >= 0 && ri >= 0 {
		return lo, ri, nil
	}
	lo2 := plan.ColIndex(outer, p.Right)
	ri2 := plan.ColIndex(inner, p.Left)
	if lo2 >= 0 && ri2 >= 0 {
		return lo2, ri2, nil
	}
	return 0, 0, fmt.Errorf("exec: join predicate %v does not span the two inputs", p)
}
