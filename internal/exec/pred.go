package exec

import (
	"fmt"

	"predplace/internal/expr"
	"predplace/internal/pcache"
	"predplace/internal/plan"
	"predplace/internal/query"
)

// compiledPred is a predicate with its column references resolved to row
// positions for a specific operator's output schema.
type compiledPred struct {
	pred *query.Predicate
	// comparison predicates
	op       expr.CmpOp
	leftIdx  int
	rightIdx int        // -1 for col-vs-const
	constVal expr.Value // col-vs-const
	// function predicates
	argIdx []int
	// prof, when profiling is on, receives this predicate's evaluation,
	// invocation, and cache counters, attributed to the plan node the
	// predicate executes at. Nil on the default path (no per-row overhead).
	prof *opCounters
}

// compilePred resolves p's column references against cols.
func compilePred(p *query.Predicate, cols []query.ColRef) (*compiledPred, error) {
	find := func(ref query.ColRef) (int, error) {
		for i, c := range cols {
			if c == ref {
				return i, nil
			}
		}
		return -1, fmt.Errorf("exec: column %s not in operator schema %v", ref, cols)
	}
	cp := &compiledPred{pred: p, op: p.Op, rightIdx: -1}
	switch p.Kind {
	case query.KindSelCmp:
		i, err := find(p.Left)
		if err != nil {
			return nil, err
		}
		cp.leftIdx, cp.constVal = i, p.Value
	case query.KindJoinCmp:
		l, err := find(p.Left)
		if err != nil {
			return nil, err
		}
		r, err := find(p.Right)
		if err != nil {
			return nil, err
		}
		cp.leftIdx, cp.rightIdx = l, r
	case query.KindFunc:
		for _, a := range p.Args {
			i, err := find(a)
			if err != nil {
				return nil, err
			}
			cp.argIdx = append(cp.argIdx, i)
		}
	default:
		return nil, fmt.Errorf("exec: unknown predicate kind %d", p.Kind)
	}
	return cp, nil
}

// eval computes the predicate's tri-state result on a row, consulting the
// predicate cache for cacheable function predicates (the cache stores the
// result of the whole predicate keyed on the argument binding, §5.1).
func (cp *compiledPred) eval(e *Env, row expr.Row) (expr.Value, error) {
	p := cp.pred
	switch p.Kind {
	case query.KindSelCmp:
		return cp.op.Apply(row[cp.leftIdx], cp.constVal), nil
	case query.KindJoinCmp:
		return cp.op.Apply(row[cp.leftIdx], row[cp.rightIdx]), nil
	case query.KindFunc:
		args := make([]expr.Value, len(cp.argIdx))
		for i, idx := range cp.argIdx {
			args[i] = row[idx]
		}
		if e.Cache.Enabled() && p.Func.Cacheable {
			owner := e.Cache.Owner(p.ID, p.Func.Name)
			key := pcache.Key(args)
			if v, ok := e.Cache.Lookup(owner, key); ok {
				if cp.prof != nil {
					cp.prof.cacheHits.Add(1)
				}
				return v, nil
			}
			v, err := e.invoke(p.Func, args)
			if err != nil {
				return expr.Null, err
			}
			if cp.prof != nil {
				cp.prof.cacheMisses.Add(1)
				cp.noteInvocation()
			}
			e.Cache.Store(owner, key, v)
			return v, nil
		}
		if cp.prof != nil {
			cp.noteInvocation()
		}
		return e.invoke(p.Func, args)
	}
	return expr.Null, fmt.Errorf("exec: unknown predicate kind %d", p.Kind)
}

// noteInvocation counts one user-defined function call (and its per-call
// charge) into the predicate's plan node. Callers check cp.prof != nil.
func (cp *compiledPred) noteInvocation() {
	cp.prof.invocations.Add(1)
	if f := cp.pred.Func; !f.RealWork {
		// RealWork functions charge through the I/O accountant instead of a
		// per-call constant (expr.FuncDef.ChargedCost); mirror that here so
		// per-node FuncCharge sums to Stats.FuncCharge.
		cp.prof.addCharge(f.Cost)
	}
}

// holds reports whether the predicate is satisfied (NULL and false both
// reject the row, per SQL WHERE semantics).
func (cp *compiledPred) holds(e *Env, row expr.Row) (bool, error) {
	if cp.prof != nil {
		cp.prof.predEvals.Add(1)
	}
	v, err := cp.eval(e, row)
	if err != nil {
		return false, err
	}
	b, known := v.Bool()
	return known && b, nil
}

// budgetEvery is the input-row cadence of filter abort checks — budget and
// cancellation alike (matching the legacy tuple-at-a-time filter's
// every-32-rows check).
const budgetEvery = 32

// predScratch holds the reusable buffers of batched predicate evaluation,
// so the hot path allocates nothing per batch: binding keys are encoded
// into one contiguous byte buffer and sliced per row, cache outcomes land
// in a reused entry slice, and argument vectors are reused across rows.
type predScratch struct {
	keyBuf  []byte
	keyOff  []int
	keys    [][]byte
	entries []pcache.BatchEntry
	args    []expr.Value
}

// holdsBatch evaluates the predicate over a whole batch, writing keep[i]
// for each row — the vectorized analog of calling holds row by row, with
// identical results, invocation counts, cache statistics, and budget-check
// cadence (count persists across batches at the same every-32-rows rhythm).
// Cacheable function predicates batch their cache traffic through
// GetBatch/PutBatch when the cache qualifies (unbounded tables), taking
// each shard lock once per batch instead of twice per row.
func (cp *compiledPred) holdsBatch(e *Env, rows []expr.Row, keep []bool, count *int, sc *predScratch) error {
	p := cp.pred
	tick := func() error {
		*count++
		if *count%budgetEvery == 0 {
			return e.checkAbort()
		}
		return nil
	}
	switch p.Kind {
	case query.KindSelCmp:
		if cp.prof != nil {
			cp.prof.predEvals.Add(int64(len(rows)))
		}
		for i, row := range rows {
			if err := tick(); err != nil {
				return err
			}
			b, known := cp.op.Apply(row[cp.leftIdx], cp.constVal).Bool()
			keep[i] = known && b
		}
		return nil
	case query.KindJoinCmp:
		if cp.prof != nil {
			cp.prof.predEvals.Add(int64(len(rows)))
		}
		for i, row := range rows {
			if err := tick(); err != nil {
				return err
			}
			b, known := cp.op.Apply(row[cp.leftIdx], row[cp.rightIdx]).Bool()
			keep[i] = known && b
		}
		return nil
	case query.KindFunc:
		if e.Cache.Batchable() && p.Func.Cacheable {
			return cp.holdsBatchCached(e, rows, keep, count, sc)
		}
		// Uncached (or bounded-cache) path: evaluate row by row exactly as
		// holds would, reusing one argument vector across rows.
		if cap(sc.args) < len(cp.argIdx) {
			sc.args = make([]expr.Value, len(cp.argIdx))
		}
		args := sc.args[:len(cp.argIdx)]
		for i, row := range rows {
			if err := tick(); err != nil {
				return err
			}
			var v expr.Value
			if e.Cache.Enabled() && p.Func.Cacheable {
				if cp.prof != nil {
					cp.prof.predEvals.Add(1)
				}
				var err error
				if v, err = cp.eval(e, row); err != nil {
					return err
				}
			} else {
				for k, idx := range cp.argIdx {
					args[k] = row[idx]
				}
				if cp.prof != nil {
					cp.prof.predEvals.Add(1)
					cp.noteInvocation()
				}
				var err error
				if v, err = e.invoke(p.Func, args); err != nil {
					return err
				}
			}
			b, known := v.Bool()
			keep[i] = known && b
		}
		return nil
	}
	return fmt.Errorf("exec: unknown predicate kind %d", p.Kind)
}

// holdsBatchCached is the batched cache protocol for one batch of rows:
// encode every binding, look them all up with one GetBatch, invoke the
// function only for first-occurrence misses (duplicates within the batch
// reuse the earlier result, exactly as sequential execution would have hit
// the just-stored entry), then publish the new results with one PutBatch.
func (cp *compiledPred) holdsBatchCached(e *Env, rows []expr.Row, keep []bool, count *int, sc *predScratch) error {
	p := cp.pred
	n := len(rows)
	// Encode all bindings into one buffer; offsets first, slices after, so
	// buffer growth cannot invalidate earlier keys.
	sc.keyBuf = sc.keyBuf[:0]
	sc.keyOff = append(sc.keyOff[:0], 0)
	for _, row := range rows {
		for _, idx := range cp.argIdx {
			sc.keyBuf = row[idx].AppendKey(sc.keyBuf)
		}
		sc.keyOff = append(sc.keyOff, len(sc.keyBuf))
	}
	if cap(sc.keys) < n {
		sc.keys = make([][]byte, n)
	}
	keys := sc.keys[:n]
	for i := 0; i < n; i++ {
		keys[i] = sc.keyBuf[sc.keyOff[i]:sc.keyOff[i+1]]
	}
	if cap(sc.entries) < n {
		sc.entries = make([]pcache.BatchEntry, n)
	}
	entries := sc.entries[:n]
	owner := e.Cache.Owner(p.ID, p.Func.Name)
	e.Cache.GetBatch(owner, keys, entries)
	if cap(sc.args) < len(cp.argIdx) {
		sc.args = make([]expr.Value, len(cp.argIdx))
	}
	args := sc.args[:len(cp.argIdx)]
	if cp.prof != nil {
		cp.prof.predEvals.Add(int64(n))
	}
	for i := range entries {
		*count++
		if *count%budgetEvery == 0 {
			if err := e.checkAbort(); err != nil {
				return err
			}
		}
		switch entries[i].State {
		case pcache.BatchMiss:
			for k, idx := range cp.argIdx {
				args[k] = rows[i][idx]
			}
			if cp.prof != nil {
				cp.prof.cacheMisses.Add(1)
				cp.noteInvocation()
			}
			v, err := e.invoke(p.Func, args)
			if err != nil {
				return err
			}
			entries[i].Val = v
		case pcache.BatchDup:
			// pcache counts an in-batch duplicate as a hit (the sequential
			// execution it mirrors would have hit the just-stored entry).
			if cp.prof != nil {
				cp.prof.cacheHits.Add(1)
			}
			entries[i].Val = entries[entries[i].Dup].Val
		default: // BatchHit
			if cp.prof != nil {
				cp.prof.cacheHits.Add(1)
			}
		}
	}
	e.Cache.PutBatch(owner, keys, entries)
	for i := range entries {
		b, known := entries[i].Val.Bool()
		keep[i] = known && b
	}
	return nil
}

// compilePreds compiles a slice of predicates against one schema.
func compilePreds(ps []*query.Predicate, cols []query.ColRef) ([]*compiledPred, error) {
	out := make([]*compiledPred, 0, len(ps))
	for _, p := range ps {
		cp, err := compilePred(p, cols)
		if err != nil {
			return nil, err
		}
		out = append(out, cp)
	}
	return out, nil
}

// joinKeyIdx resolves which side of an equality join predicate lives in
// which child, returning the outer and inner column positions.
func joinKeyIdx(p *query.Predicate, outer, inner plan.Node) (outIdx, inIdx int, err error) {
	if p == nil || p.Kind != query.KindJoinCmp || p.Op != expr.OpEQ {
		return 0, 0, fmt.Errorf("exec: join method requires an equality join predicate, got %v", p)
	}
	lo := plan.ColIndex(outer, p.Left)
	ri := plan.ColIndex(inner, p.Right)
	if lo >= 0 && ri >= 0 {
		return lo, ri, nil
	}
	lo2 := plan.ColIndex(outer, p.Right)
	ri2 := plan.ColIndex(inner, p.Left)
	if lo2 >= 0 && ri2 >= 0 {
		return lo2, ri2, nil
	}
	return 0, 0, fmt.Errorf("exec: join predicate %v does not span the two inputs", p)
}
