package plan

import (
	"fmt"
	"math"

	"predplace/internal/query"
)

// validateTol absorbs floating-point rounding in the card/cost monotonicity
// checks. It matches cost.ApproxEqTol (the plan package cannot import cost —
// cost imports plan), and the two constants are cross-checked by a test.
const validateTol = 1e-9

// Validate checks a plan tree against the structural invariants every
// well-formed physical plan must satisfy, independent of which algorithm
// produced it:
//
//   - no nil nodes, inputs, or predicates where one is required;
//   - every estimated cardinality and cost is finite and non-negative;
//   - costs are cumulative: a Filter costs at least its input, a Join at
//     least its outer input, and Hash/Merge joins at least either input
//     (nested-loop variants re-read the inner base table directly, so the
//     inner subtree's own cost is deliberately not part of theirs);
//   - a Filter never outputs more tuples than it reads;
//   - every predicate's columns are bound by the schema below it: a Filter's
//     by its input, a Join primary's by the two inputs combined, an index
//     scan's matched predicate by its table;
//   - a Join's output columns are exactly outer-then-inner concatenation;
//   - nested-loop joins have a (filtered) base table inner, and
//     IndexNestLoop additionally an index column and an equality primary;
//   - TopK/Limit appear only as the plan root, with K ≥ 1, order/tie columns
//     bound by the input schema, and output cardinality at most min(input, K).
//     A TopK costs at least its input (the heap adds comparisons); a Limit
//     is the one sanctioned break in cost cumulativity — early termination
//     means the subtree below it is only partially paid, so its cost may be
//     anywhere in (0, input];
//   - no predicate is applied twice on any root-to-leaf path. The one
//     sanctioned repeat: an IndexNestLoop's primary also appears as the
//     inner index scan's matched predicate — that is the probe itself, and
//     the cost model skips it the same way.
//
// It is the dynamic counterpart of the pplint static analyzers: run it on
// optimizer output in tests, or on every executed plan via PPLINT_VALIDATE=1.
func Validate(root Node) error {
	if root == nil {
		return fmt.Errorf("plan: nil root node")
	}
	return validate(root, "root", map[*query.Predicate]bool{})
}

// validate walks one root-to-leaf path; applied is the set of predicates
// consumed above n on this path (backtracked on return).
func validate(n Node, path string, applied map[*query.Predicate]bool) error {
	if err := checkEstimates(n, path); err != nil {
		return err
	}
	switch t := n.(type) {
	case *SeqScan:
		if err := checkTransfer(t.TransferRecv, t.TransferSel, path); err != nil {
			return err
		}
		return checkScanCols(t.Table, t.ColRefs, path)

	case *IndexScan:
		if err := checkTransfer(t.TransferRecv, t.TransferSel, path); err != nil {
			return err
		}
		if err := checkScanCols(t.Table, t.ColRefs, path); err != nil {
			return err
		}
		if t.Matched != nil {
			if applied[t.Matched] {
				return fmt.Errorf("plan: %s: predicate %s applied above is matched again by the index scan", path, t.Matched)
			}
			if err := checkBound(t.Matched, t.ColRefs, path); err != nil {
				return err
			}
		}
		return nil

	case *Filter:
		if t.Input == nil {
			return fmt.Errorf("plan: %s: Filter has nil input", path)
		}
		if t.Pred == nil {
			return fmt.Errorf("plan: %s: Filter has nil predicate", path)
		}
		if applied[t.Pred] {
			return fmt.Errorf("plan: %s: predicate %s applied twice on this path", path, t.Pred)
		}
		if err := checkBound(t.Pred, t.Input.Cols(), path); err != nil {
			return err
		}
		if t.Card() > t.Input.Card()*(1+validateTol)+validateTol {
			return fmt.Errorf("plan: %s: Filter outputs %.3f tuples from a %.3f-tuple input",
				path, t.Card(), t.Input.Card())
		}
		if t.Cost()+validateTol < t.Input.Cost() {
			return fmt.Errorf("plan: %s: Filter cost %.3f below its input's %.3f (costs must be cumulative)",
				path, t.Cost(), t.Input.Cost())
		}
		applied[t.Pred] = true
		err := validate(t.Input, path+"/input", applied)
		delete(applied, t.Pred)
		return err

	case *Join:
		return validateJoin(t, path, applied)

	case *TopK:
		if path != "root" {
			return fmt.Errorf("plan: %s: TopK below the plan root", path)
		}
		if t.Input == nil {
			return fmt.Errorf("plan: %s: TopK has nil input", path)
		}
		if t.K < 1 {
			return fmt.Errorf("plan: %s: TopK with k=%d", path, t.K)
		}
		if err := checkColBound(t.Key, t.Input.Cols(), path, "TopK key"); err != nil {
			return err
		}
		for _, ref := range t.Tie {
			if err := checkColBound(ref, t.Input.Cols(), path, "TopK tie column"); err != nil {
				return err
			}
		}
		if limit := math.Min(t.Input.Card(), float64(t.K)); t.Card() > limit*(1+validateTol)+validateTol {
			return fmt.Errorf("plan: %s: TopK outputs %.3f tuples, at most min(input=%.3f, k=%d) allowed",
				path, t.Card(), t.Input.Card(), t.K)
		}
		if t.Cost()+validateTol < t.Input.Cost() {
			return fmt.Errorf("plan: %s: TopK cost %.3f below its input's %.3f (the heap consumes the whole input)",
				path, t.Cost(), t.Input.Cost())
		}
		return validate(t.Input, path+"/input", applied)

	case *Limit:
		if path != "root" {
			return fmt.Errorf("plan: %s: Limit below the plan root", path)
		}
		if t.Input == nil {
			return fmt.Errorf("plan: %s: Limit has nil input", path)
		}
		if t.K < 1 {
			return fmt.Errorf("plan: %s: Limit with k=%d", path, t.K)
		}
		if t.Ordered {
			if err := checkColBound(t.Key, t.Input.Cols(), path, "Limit order key"); err != nil {
				return err
			}
		}
		if limit := math.Min(t.Input.Card(), float64(t.K)); t.Card() > limit*(1+validateTol)+validateTol {
			return fmt.Errorf("plan: %s: Limit outputs %.3f tuples, at most min(input=%.3f, k=%d) allowed",
				path, t.Card(), t.Input.Card(), t.K)
		}
		// Early termination: the sanctioned exception to cost cumulativity.
		// The limit stops pulling after K rows, so the subtree below it is
		// only partially executed — its estimated cost may be below the
		// input's, but never above it.
		if t.Cost() > t.Input.Cost()*(1+validateTol)+validateTol {
			return fmt.Errorf("plan: %s: Limit cost %.3f above its input's %.3f (a limit never adds work)",
				path, t.Cost(), t.Input.Cost())
		}
		return validate(t.Input, path+"/input", applied)
	}
	return fmt.Errorf("plan: %s: unknown node type %T", path, n)
}

func validateJoin(j *Join, path string, applied map[*query.Predicate]bool) error {
	if j.Outer == nil || j.Inner == nil {
		return fmt.Errorf("plan: %s: %v join with nil child (outer=%v inner=%v)",
			path, j.Method, j.Outer != nil, j.Inner != nil)
	}
	switch j.Method {
	case NestLoop, IndexNestLoop, MergeJoin, HashJoin:
	default:
		return fmt.Errorf("plan: %s: unknown join method %d", path, j.Method)
	}
	if j.Primary != nil {
		if applied[j.Primary] {
			return fmt.Errorf("plan: %s: primary predicate %s already applied above on this path", path, j.Primary)
		}
		if err := checkBound(j.Primary, ConcatCols(j.Outer, j.Inner), path); err != nil {
			return err
		}
	}
	if err := checkConcat(j, path); err != nil {
		return err
	}
	// Cost cumulativity per method (matches cost.Model.annotateJoin).
	if j.Cost()+validateTol < j.Outer.Cost() {
		return fmt.Errorf("plan: %s: join cost %.3f below its outer input's %.3f", path, j.Cost(), j.Outer.Cost())
	}
	switch j.Method {
	case HashJoin, MergeJoin:
		if j.Cost()+validateTol < j.Inner.Cost() {
			return fmt.Errorf("plan: %s: %v cost %.3f below its inner input's %.3f",
				path, j.Method, j.Cost(), j.Inner.Cost())
		}
	case NestLoop, IndexNestLoop:
		// The executor rebuilds the inner from its base table per outer tuple
		// (or probes its index); the inner subtree's cost is not additive.
		if _, _, ok := BaseTable(j.Inner); !ok {
			return fmt.Errorf("plan: %s: %v inner must be a (filtered) base table", path, j.Method)
		}
	}
	if j.Method == IndexNestLoop {
		if j.InnerIndexCol == "" {
			return fmt.Errorf("plan: %s: IndexNestLoop without an inner index column", path)
		}
		if j.Primary == nil || j.Primary.Kind != query.KindJoinCmp {
			return fmt.Errorf("plan: %s: IndexNestLoop requires a join-comparison primary predicate", path)
		}
	}

	if j.Primary != nil {
		applied[j.Primary] = true
	}
	if err := validate(j.Outer, path+"/outer", applied); err != nil {
		return err
	}
	// Exception: an IndexNestLoop's primary legitimately reappears in the
	// inner chain as the index scan's matched predicate — it IS the probe
	// (cost.Model skips it there for the same reason).
	if j.Method == IndexNestLoop && j.Primary != nil {
		delete(applied, j.Primary)
	}
	err := validate(j.Inner, path+"/inner", applied)
	if j.Primary != nil {
		delete(applied, j.Primary)
	}
	return err
}

// checkEstimates rejects non-finite or negative cardinality/cost estimates.
func checkEstimates(n Node, path string) error {
	card, c := n.Card(), n.Cost()
	if math.IsNaN(card) || math.IsInf(card, 0) || card < 0 {
		return fmt.Errorf("plan: %s: invalid estimated cardinality %v", path, card)
	}
	if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
		return fmt.Errorf("plan: %s: invalid estimated cost %v", path, c)
	}
	return nil
}

// checkTransfer requires transfer annotations to be internally consistent: a
// scan with received filters must carry a usable selectivity estimate, and a
// scan without them must not claim one (TransferSel 0 or exactly 1 — the
// zero value, or a model that computed "no reduction").
func checkTransfer(recv []string, sel float64, path string) error {
	if len(recv) > 0 {
		if math.IsNaN(sel) || sel <= 0 || sel > 1 {
			return fmt.Errorf("plan: %s: scan receives transfer filters (%v) with invalid selectivity %v", path, recv, sel)
		}
		return nil
	}
	if sel != 0 && sel != 1 {
		return fmt.Errorf("plan: %s: scan receives no transfer filters but has selectivity %v", path, sel)
	}
	return nil
}

// checkScanCols requires a scan to expose at least one column, all of its
// own table.
func checkScanCols(table string, cols []query.ColRef, path string) error {
	if len(cols) == 0 {
		return fmt.Errorf("plan: %s: scan of %s exposes no columns", path, table)
	}
	for _, c := range cols {
		if c.Table != table {
			return fmt.Errorf("plan: %s: scan of %s exposes foreign column %s", path, table, c)
		}
	}
	return nil
}

// checkConcat requires a join's output schema to be exactly the outer
// columns followed by the inner columns.
func checkConcat(j *Join, path string) error {
	want := ConcatCols(j.Outer, j.Inner)
	if len(j.ColRefs) != len(want) {
		return fmt.Errorf("plan: %s: join exposes %d columns, inputs provide %d", path, len(j.ColRefs), len(want))
	}
	for i, c := range j.ColRefs {
		if c != want[i] {
			return fmt.Errorf("plan: %s: join column %d is %s, want %s (outer++inner order)", path, i, c, want[i])
		}
	}
	return nil
}

// checkBound requires every column the predicate reads to be present in the
// schema it is evaluated against.
func checkBound(p *query.Predicate, schema []query.ColRef, path string) error {
	for _, ref := range predCols(p) {
		found := false
		for _, c := range schema {
			if c == ref {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("plan: %s: predicate %s reads column %s not produced below it", path, p, ref)
		}
	}
	return nil
}

// checkColBound requires one column reference to be present in a schema.
func checkColBound(ref query.ColRef, schema []query.ColRef, path, what string) error {
	for _, c := range schema {
		if c == ref {
			return nil
		}
	}
	return fmt.Errorf("plan: %s: %s %s not produced below it", path, what, ref)
}

// predCols lists the columns a predicate reads.
func predCols(p *query.Predicate) []query.ColRef {
	switch p.Kind {
	case query.KindSelCmp:
		return []query.ColRef{p.Left}
	case query.KindJoinCmp:
		return []query.ColRef{p.Left, p.Right}
	case query.KindFunc:
		return p.Args
	}
	return nil
}
