package plan

// Top-k plan operators. Both are root-only: the optimizer wraps a finished
// plan with exactly one of them when the query carries ORDER BY + LIMIT and
// top-k planning is enabled, so ORDER BY/LIMIT run inside the executor
// instead of as a facade post-pass over the full pre-LIMIT result.

import (
	"fmt"
	"strings"

	"predplace/internal/query"
)

// TopK keeps the K first rows of its input under (Key, Tie) ordering using a
// bounded heap — the input is consumed completely, but only K rows are ever
// held (n·log k comparisons instead of an n·log n full sort) and only K rows
// flow upstream. Output is sorted: Key ascending (descending when Desc),
// ties broken by the Tie columns ascending.
type TopK struct {
	Input Node
	// K is the LIMIT bound (≥ 1).
	K int64
	// Key is the ORDER BY column; Desc flips its direction.
	Key  query.ColRef
	Desc bool
	// Tie lists the tie-break columns (the projected output columns, in
	// projection order): rows equal on Key and every Tie column are
	// identical after projection, which is what makes the operator's choice
	// among such rows invisible in the delivered result.
	Tie     []query.ColRef
	EstCard float64
	EstCost float64
}

// Cols implements Node.
func (t *TopK) Cols() []query.ColRef { return t.Input.Cols() }

// Children implements Node.
func (t *TopK) Children() []Node { return []Node{t.Input} }

// Card implements Node.
func (t *TopK) Card() float64 { return t.EstCard }

// Cost implements Node.
func (t *TopK) Cost() float64 { return t.EstCost }

// Describe implements Node.
func (t *TopK) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TopK %d by %s", t.K, t.Key)
	if t.Desc {
		b.WriteString(" desc")
	}
	return b.String()
}

// Limit passes through the first K rows of its input and stops pulling — the
// subtree beneath it never produces the rows the limit cuts off, so their
// page fetches and predicate invocations are never paid. Planned only when
// the input already arrives in the query's ORDER BY order (Ordered): an
// ascending index scan on a unique ORDER BY key, possibly under filters.
type Limit struct {
	Input Node
	// K is the LIMIT bound (≥ 1).
	K int64
	// Ordered marks that the input's order satisfies the query's ORDER BY;
	// the executor keeps the subtree serial so the order survives execution.
	Ordered bool
	// Key is the ORDER BY column the input's order satisfies.
	Key     query.ColRef
	EstCard float64
	EstCost float64
}

// Cols implements Node.
func (l *Limit) Cols() []query.ColRef { return l.Input.Cols() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Input} }

// Card implements Node.
func (l *Limit) Card() float64 { return l.EstCard }

// Cost implements Node.
func (l *Limit) Cost() float64 { return l.EstCost }

// Describe implements Node.
func (l *Limit) Describe() string {
	if l.Ordered {
		return fmt.Sprintf("Limit %d (index order %s)", l.K, l.Key)
	}
	return fmt.Sprintf("Limit %d", l.K)
}
