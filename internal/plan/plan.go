// Package plan defines physical query plan trees: scans, filters, and joins
// with their chosen methods, annotated with estimated cardinalities and
// cumulative costs. Plans are produced by the optimizer, costed by the cost
// package, rendered for EXPLAIN output (the paper's Figures 1, 2, 6, 7 are
// plan trees), and interpreted by the executor.
package plan

import (
	"fmt"
	"strings"

	"predplace/internal/expr"
	"predplace/internal/query"
)

// JoinMethod identifies the physical join algorithm.
type JoinMethod uint8

// Join methods. The linear cost model of the paper (§3.2) covers all of
// them; unindexed nested loop folds its |S|-pages term into the per-outer
// constant.
const (
	NestLoop JoinMethod = iota + 1
	IndexNestLoop
	MergeJoin
	HashJoin
)

// String names the method as shown in EXPLAIN output.
func (m JoinMethod) String() string {
	switch m {
	case NestLoop:
		return "NestLoop"
	case IndexNestLoop:
		return "IndexNestLoop"
	case MergeJoin:
		return "MergeJoin"
	case HashJoin:
		return "HashJoin"
	}
	return "?"
}

// Node is a physical plan operator.
type Node interface {
	// Cols lists the output columns in row order.
	Cols() []query.ColRef
	// Children returns the input operators (outer first for joins).
	Children() []Node
	// Card is the estimated output cardinality in tuples.
	Card() float64
	// Cost is the estimated cumulative cost in random-I/O units.
	Cost() float64
	// Describe renders a one-line operator description.
	Describe() string
}

// SeqScan reads every tuple of a base table in heap order.
type SeqScan struct {
	Table   string
	ColRefs []query.ColRef
	// TransferRecv lists the join-key columns for which this scan probes a
	// received predicate-transfer Bloom filter (sorted; nil when transfer is
	// off), and TransferSel is the estimated combined selectivity of those
	// probes. Set by the cost model's annotation under Model.Transfer.
	TransferRecv []string
	TransferSel  float64
	EstCard      float64
	EstCost      float64
}

// Cols implements Node.
func (s *SeqScan) Cols() []query.ColRef { return s.ColRefs }

// Children implements Node.
func (s *SeqScan) Children() []Node { return nil }

// Card implements Node.
func (s *SeqScan) Card() float64 { return s.EstCard }

// Cost implements Node.
func (s *SeqScan) Cost() float64 { return s.EstCost }

// Describe implements Node.
func (s *SeqScan) Describe() string {
	if len(s.TransferRecv) > 0 {
		return fmt.Sprintf("SeqScan %s bloom(%s sel=%.3f)",
			s.Table, strings.Join(s.TransferRecv, ","), s.TransferSel)
	}
	return fmt.Sprintf("SeqScan %s", s.Table)
}

// IndexScan reads tuples of a base table via a B-tree, optionally restricted
// to an equality value or a [Lo,Hi] range; output is ordered by Col.
type IndexScan struct {
	Table   string
	Col     string
	Eq      *expr.Value // equality probe, or nil
	Lo, Hi  *expr.Value // range bounds (either may be nil)
	Matched *query.Predicate
	ColRefs []query.ColRef
	// TransferRecv and TransferSel mirror SeqScan's: received transfer
	// filters probed on fetched rows, and their combined selectivity.
	TransferRecv []string
	TransferSel  float64
	EstCard      float64
	EstCost      float64
}

// Cols implements Node.
func (s *IndexScan) Cols() []query.ColRef { return s.ColRefs }

// Children implements Node.
func (s *IndexScan) Children() []Node { return nil }

// Card implements Node.
func (s *IndexScan) Card() float64 { return s.EstCard }

// Cost implements Node.
func (s *IndexScan) Cost() float64 { return s.EstCost }

// Describe implements Node.
func (s *IndexScan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "IndexScan %s.%s", s.Table, s.Col)
	switch {
	case s.Eq != nil:
		fmt.Fprintf(&b, " = %s", *s.Eq)
	case s.Lo != nil || s.Hi != nil:
		b.WriteString(" range")
		if s.Lo != nil {
			fmt.Fprintf(&b, " >= %s", *s.Lo)
		}
		if s.Hi != nil {
			fmt.Fprintf(&b, " <= %s", *s.Hi)
		}
	}
	if len(s.TransferRecv) > 0 {
		fmt.Fprintf(&b, " bloom(%s sel=%.3f)", strings.Join(s.TransferRecv, ","), s.TransferSel)
	}
	return b.String()
}

// Filter applies one predicate to its input stream. Expensive predicates are
// each a separate Filter node so the migration algorithm can move them
// individually.
type Filter struct {
	Input   Node
	Pred    *query.Predicate
	EstCard float64
	EstCost float64
}

// Cols implements Node.
func (f *Filter) Cols() []query.ColRef { return f.Input.Cols() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Input} }

// Card implements Node.
func (f *Filter) Card() float64 { return f.EstCard }

// Cost implements Node.
func (f *Filter) Cost() float64 { return f.EstCost }

// Describe implements Node.
func (f *Filter) Describe() string {
	kind := "Filter"
	if f.Pred.IsExpensive() {
		kind = "Filter*" // expensive predicate
	}
	return fmt.Sprintf("%s %s (cost=%.1f sel=%.3f)", kind, f.Pred, f.Pred.CostPerTuple, f.Pred.Selectivity)
}

// Join combines an outer and inner input with the given method. Primary is
// the join predicate intrinsic to the method (index match, sort/hash
// attribute, or — for predicate-only joins — the chosen minimal-rank
// predicate); Secondary predicates ride along as Filter nodes above.
type Join struct {
	Method JoinMethod
	Outer  Node
	Inner  Node
	// Primary is the primary join predicate (§2: every join has at least one).
	Primary *query.Predicate
	// InnerIndexCol names the inner index column for IndexNestLoop.
	InnerIndexCol string
	// ExpensivePrimary marks joins whose primary predicate has non-trivial
	// per-pair cost (breaks the linear cost model, §3.2 end).
	ExpensivePrimary bool
	// SortOuter and SortInner mark merge-join inputs that must be sorted
	// first (an input arriving in an interesting order skips its sort).
	SortOuter bool
	SortInner bool
	ColRefs   []query.ColRef
	EstCard   float64
	EstCost   float64
}

// Cols implements Node.
func (j *Join) Cols() []query.ColRef { return j.ColRefs }

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Outer, j.Inner} }

// Card implements Node.
func (j *Join) Card() float64 { return j.EstCard }

// Cost implements Node.
func (j *Join) Cost() float64 { return j.EstCost }

// Describe implements Node.
func (j *Join) Describe() string {
	extra := ""
	if j.ExpensivePrimary {
		extra = " [expensive primary]"
	}
	return fmt.Sprintf("%s on %s%s", j.Method, j.Primary, extra)
}

// ConcatCols builds a join's output column list (outer then inner).
func ConcatCols(outer, inner Node) []query.ColRef {
	oc, ic := outer.Cols(), inner.Cols()
	out := make([]query.ColRef, 0, len(oc)+len(ic))
	out = append(out, oc...)
	out = append(out, ic...)
	return out
}

// ColIndex locates a column in a node's output, or -1.
func ColIndex(n Node, ref query.ColRef) int {
	for i, c := range n.Cols() {
		if c == ref {
			return i
		}
	}
	return -1
}

// Render draws the plan tree with indentation, annotated with estimated
// cardinality and cumulative cost; the textual analog of the paper's
// plan-tree figures.
func Render(n Node) string {
	return RenderWith(n, nil)
}

// RenderWith draws the plan tree with an extra per-node annotation (used by
// EXPLAIN ANALYZE to print actual row counts next to the estimates — the
// estimated-vs-measured comparison the paper used to debug its optimizer).
func RenderWith(n Node, annotate func(Node) string) string {
	var b strings.Builder
	render(&b, n, 0, annotate)
	return b.String()
}

func render(b *strings.Builder, n Node, depth int, annotate func(Node) string) {
	b.WriteString(strings.Repeat("  ", depth))
	extra := ""
	if annotate != nil {
		extra = annotate(n)
	}
	fmt.Fprintf(b, "%s  (card=%.0f cost=%.0f%s)\n", n.Describe(), n.Card(), n.Cost(), extra)
	for _, c := range n.Children() {
		render(b, c, depth+1, annotate)
	}
}

// TopFilters returns the maximal chain of Filter nodes at the root of n
// (outermost first) and the first non-Filter node beneath them.
func TopFilters(n Node) ([]*Filter, Node) {
	var chain []*Filter
	for {
		f, ok := n.(*Filter)
		if !ok {
			return chain, n
		}
		chain = append(chain, f)
		n = f.Input
	}
}

// BaseTable descends through Filter nodes to find the underlying base-table
// scan; ok is false if the subtree is not a filtered base scan (e.g. a join).
// The index-nested-loop executor uses this to drive probes on the inner.
func BaseTable(n Node) (table string, filters []*query.Predicate, ok bool) {
	for {
		switch t := n.(type) {
		case *Filter:
			filters = append(filters, t.Pred)
			n = t.Input
		case *SeqScan:
			return t.Table, filters, true
		case *IndexScan:
			if t.Matched != nil {
				filters = append(filters, t.Matched)
			}
			return t.Table, filters, true
		default:
			return "", nil, false
		}
	}
}

// BaseTableNodes descends exactly like BaseTable but reports plan nodes: the
// base scan and, aligned one-to-one with BaseTable's filters slice, the node
// whose output each filter's survivors constitute (the Filter node itself;
// the IndexScan for its own Matched predicate). The profiler uses this to
// attribute an index-nested-loop's probe-driven inner chain — whose nodes
// are never built as iterators — back to the plan tree.
func BaseTableNodes(n Node) (base Node, predNodes []Node, ok bool) {
	for {
		switch t := n.(type) {
		case *Filter:
			predNodes = append(predNodes, t)
			n = t.Input
		case *SeqScan:
			return t, predNodes, true
		case *IndexScan:
			if t.Matched != nil {
				predNodes = append(predNodes, t)
			}
			return t, predNodes, true
		default:
			return nil, nil, false
		}
	}
}

// Walk visits every node of the subtree pre-order (parents before children,
// outer before inner).
func Walk(n Node, visit func(Node)) {
	visit(n)
	for _, c := range n.Children() {
		Walk(c, visit)
	}
}

// Tables returns the set of base tables referenced by the subtree.
func Tables(n Node) map[string]bool {
	out := map[string]bool{}
	var walk func(Node)
	walk = func(m Node) {
		switch t := m.(type) {
		case *SeqScan:
			out[t.Table] = true
		case *IndexScan:
			out[t.Table] = true
		}
		for _, c := range m.Children() {
			walk(c)
		}
	}
	walk(n)
	return out
}

// CollectFilters returns every Filter node in the subtree.
func CollectFilters(n Node) []*Filter {
	var out []*Filter
	var walk func(Node)
	walk = func(m Node) {
		if f, ok := m.(*Filter); ok {
			out = append(out, f)
		}
		for _, c := range m.Children() {
			walk(c)
		}
	}
	walk(n)
	return out
}
