package plan

import (
	"math"
	"strings"
	"testing"

	"predplace/internal/expr"
	"predplace/internal/query"
)

func cols(t, names string) []query.ColRef {
	var out []query.ColRef
	for _, n := range strings.Split(names, ",") {
		out = append(out, query.ColRef{Table: t, Col: n})
	}
	return out
}

func testTree() (*Join, *Filter, *SeqScan, *SeqScan) {
	r := &SeqScan{Table: "r", ColRefs: cols("r", "a,b"), EstCard: 100, EstCost: 10}
	s := &SeqScan{Table: "s", ColRefs: cols("s", "a,b"), EstCard: 1000, EstCost: 100}
	f := &Filter{
		Input: r,
		Pred: &query.Predicate{
			Kind:   query.KindFunc,
			Func:   expr.NewCostly("costly10", 1, 10, 0.5, 1),
			Args:   []query.ColRef{{Table: "r", Col: "b"}},
			Tables: []string{"r"}, CostPerTuple: 10, Selectivity: 0.5,
		},
		EstCard: 50, EstCost: 1010,
	}
	jp := &query.Predicate{
		Kind: query.KindJoinCmp, Op: expr.OpEQ,
		Left: query.ColRef{Table: "r", Col: "a"}, Right: query.ColRef{Table: "s", Col: "a"},
		Tables: []string{"r", "s"}, Selectivity: 0.001,
	}
	j := &Join{Method: HashJoin, Outer: f, Inner: s, Primary: jp}
	j.ColRefs = ConcatCols(f, s)
	j.EstCard, j.EstCost = 50, 2000
	return j, f, r, s
}

func TestColsAndConcat(t *testing.T) {
	j, f, r, _ := testTree()
	if len(j.Cols()) != 4 {
		t.Fatalf("join cols = %v", j.Cols())
	}
	if len(f.Cols()) != 2 || f.Cols()[0] != r.Cols()[0] {
		t.Fatal("filter must forward input cols")
	}
	if ColIndex(j, query.ColRef{Table: "s", Col: "b"}) != 3 {
		t.Fatalf("ColIndex = %d", ColIndex(j, query.ColRef{Table: "s", Col: "b"}))
	}
	if ColIndex(j, query.ColRef{Table: "x", Col: "y"}) != -1 {
		t.Fatal("missing col should be -1")
	}
}

func TestChildren(t *testing.T) {
	j, f, r, s := testTree()
	if c := j.Children(); len(c) != 2 || c[0] != f || c[1] != s {
		t.Fatal("join children wrong")
	}
	if c := f.Children(); len(c) != 1 || c[0] != r {
		t.Fatal("filter children wrong")
	}
	if r.Children() != nil {
		t.Fatal("scan has no children")
	}
}

func TestRender(t *testing.T) {
	j, _, _, _ := testTree()
	out := Render(j)
	for _, want := range []string{"HashJoin", "Filter*", "SeqScan r", "SeqScan s", "card="} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
	// Filter indented under join, scans under that.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "  ") || !strings.HasPrefix(lines[2], "    ") {
		t.Fatalf("indentation wrong:\n%s", out)
	}
}

func TestTopFilters(t *testing.T) {
	j, f, r, _ := testTree()
	chain, base := TopFilters(f)
	if len(chain) != 1 || chain[0] != f || base != r {
		t.Fatal("TopFilters on filter chain wrong")
	}
	chain, base = TopFilters(j)
	if len(chain) != 0 || base != j {
		t.Fatal("TopFilters on join should be empty")
	}
}

func TestBaseTable(t *testing.T) {
	j, f, _, _ := testTree()
	table, filters, ok := BaseTable(f)
	if !ok || table != "r" || len(filters) != 1 {
		t.Fatalf("BaseTable(filter) = %v %v %v", table, filters, ok)
	}
	if _, _, ok := BaseTable(j); ok {
		t.Fatal("BaseTable over a join must fail")
	}
	is := &IndexScan{Table: "x", Col: "k", Matched: &query.Predicate{Kind: query.KindSelCmp}}
	table, filters, ok = BaseTable(is)
	if !ok || table != "x" || len(filters) != 1 {
		t.Fatal("BaseTable(IndexScan) should include matched pred as filter")
	}
}

func TestTablesAndCollectFilters(t *testing.T) {
	j, _, _, _ := testTree()
	tabs := Tables(j)
	if !tabs["r"] || !tabs["s"] || len(tabs) != 2 {
		t.Fatalf("Tables = %v", tabs)
	}
	fs := CollectFilters(j)
	if len(fs) != 1 {
		t.Fatalf("CollectFilters = %d", len(fs))
	}
}

func TestJoinMethodString(t *testing.T) {
	want := map[JoinMethod]string{
		NestLoop: "NestLoop", IndexNestLoop: "IndexNestLoop",
		MergeJoin: "MergeJoin", HashJoin: "HashJoin",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	j, _, _, _ := testTree()
	if err := Validate(j); err != nil {
		t.Fatalf("Validate(testTree) = %v, want nil", err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		// build returns a malformed tree derived from testTree.
		build func() Node
		want  string // substring of the expected error
	}{
		{
			name: "nil root",
			build: func() Node {
				return nil
			},
			want: "nil root",
		},
		{
			name: "nil join child",
			build: func() Node {
				j, _, _, _ := testTree()
				j.Inner = nil
				return j
			},
			want: "nil child",
		},
		{
			name: "filter outputs more tuples than its input",
			build: func() Node {
				j, f, _, _ := testTree()
				f.EstCard = 200 // input r has EstCard 100
				return j
			},
			want: "outputs",
		},
		{
			name: "predicate reads a column not produced below it",
			build: func() Node {
				j, f, _, _ := testTree()
				f.Pred.Args = []query.ColRef{{Table: "z", Col: "q"}}
				return j
			},
			want: "not produced below",
		},
		{
			name: "same predicate applied twice on one path",
			build: func() Node {
				j, f, r, _ := testTree()
				dup := &Filter{Input: r, Pred: f.Pred, EstCard: 50, EstCost: 1010}
				f.Input = dup
				f.EstCost = 2010
				j.EstCost = 3000
				return j
			},
			want: "twice",
		},
		{
			name: "negative cost",
			build: func() Node {
				j, _, r, _ := testTree()
				r.EstCost = -1
				return j
			},
			want: "invalid estimated cost",
		},
		{
			name: "NaN cardinality",
			build: func() Node {
				j, _, _, s := testTree()
				s.EstCard = math.NaN()
				return j
			},
			want: "invalid estimated cardinality",
		},
		{
			name: "filter cheaper than its input",
			build: func() Node {
				j, f, _, _ := testTree()
				f.EstCost = 5 // input r costs 10
				return j
			},
			want: "cumulative",
		},
		{
			name: "join output columns out of order",
			build: func() Node {
				j, _, _, _ := testTree()
				j.ColRefs = ConcatCols(j.Inner, j.Outer) // inner++outer: wrong
				return j
			},
			want: "outer++inner",
		},
		{
			name: "unknown join method",
			build: func() Node {
				j, _, _, _ := testTree()
				j.Method = JoinMethod(99)
				return j
			},
			want: "unknown join method",
		},
		{
			name: "nested-loop inner is not a base table",
			build: func() Node {
				j, _, _, _ := testTree()
				inner, _, _, _ := testTree()
				j.Method = NestLoop
				j.Inner = inner
				j.ColRefs = ConcatCols(j.Outer, inner)
				j.EstCost = 1e6
				return j
			},
			want: "base table",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.build())
			if err == nil {
				t.Fatal("Validate accepted a malformed tree")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDescribe(t *testing.T) {
	j, f, r, _ := testTree()
	if !strings.Contains(j.Describe(), "HashJoin") {
		t.Fatal("join describe")
	}
	if !strings.Contains(f.Describe(), "Filter*") {
		t.Fatal("expensive filter should render Filter*")
	}
	if !strings.Contains(r.Describe(), "SeqScan r") {
		t.Fatal("scan describe")
	}
	v := expr.I(5)
	is := &IndexScan{Table: "t", Col: "k", Eq: &v}
	if !strings.Contains(is.Describe(), "= 5") {
		t.Fatalf("index scan describe: %s", is.Describe())
	}
	lo := expr.I(1)
	is2 := &IndexScan{Table: "t", Col: "k", Lo: &lo}
	if !strings.Contains(is2.Describe(), ">= 1") {
		t.Fatalf("range scan describe: %s", is2.Describe())
	}
}
