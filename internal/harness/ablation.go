package harness

import (
	"fmt"
	"strings"

	"predplace"
	"predplace/internal/optimizer"
	"predplace/internal/query"
	"predplace/internal/sqlparse"
)

// Ablations exercises the design choices DESIGN.md calls out, one at a time:
//
//  1. unpruneable-subplan retention (§4.4) — Migration with retention
//     disabled can miss group pullups whose join order ordinary pruning
//     discarded;
//  2. the value-based (caching-aware) rank model (§5.1) — without it, the
//     planner hoists cached selections whose repeat invocations are actually
//     free, losing the Figure 1 plan shape;
//  3. bounded predicate caches — shrinking the per-predicate tables revives
//     the duplicate invocations caching exists to absorb.
func (h *Harness) Ablations() (*Report, error) {
	var b strings.Builder
	var shapes []ShapeCheck

	// --- 1. unpruneable retention ---
	full, fullInfo, err := h.planWithOptions(Query4, optimizer.Options{Algorithm: optimizer.Migration})
	if err != nil {
		return nil, err
	}
	ablated, ablInfo, err := h.planWithOptions(Query4, optimizer.Options{
		Algorithm: optimizer.Migration, DisableUnpruneable: true,
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "1. unpruneable retention (Query 4):\n")
	fmt.Fprintf(&b, "   with retention:    est cost %.0f, %d plans retained (%d unpruneable extras)\n",
		full, fullInfo.PlansRetained, fullInfo.UnpruneableRetained)
	fmt.Fprintf(&b, "   without retention: est cost %.0f, %d plans retained\n", ablated, ablInfo.PlansRetained)
	shapes = append(shapes,
		check("retention never hurts plan quality", full <= ablated*1.0001,
			"with=%.0f without=%.0f", full, ablated),
		check("retention enlarges the plan space", fullInfo.PlansRetained >= ablInfo.PlansRetained,
			"%d vs %d plans", fullInfo.PlansRetained, ablInfo.PlansRetained),
	)

	// --- 2. value-based rank model ---
	h.DB.SetCaching(true)
	aware, err := h.DB.Explain(Fig1Query, predplace.Migration)
	if err != nil {
		return nil, err
	}
	h.DB.SetCaching(false)
	unaware, err := h.DB.Explain(Fig1Query, predplace.Migration)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "\n2. value-based rank model (Fig. 1 example, execution caching on):\n")
	fmt.Fprintf(&b, "   caching-aware planner keeps %d selections below the join; unaware keeps %d\n",
		filtersBelowJoin(aware), filtersBelowJoin(unaware))
	shapes = append(shapes, check(
		"the caching-aware model keeps more selections below the join",
		filtersBelowJoin(aware) > filtersBelowJoin(unaware),
		"aware=%d unaware=%d", filtersBelowJoin(aware), filtersBelowJoin(unaware)))

	// --- 3. bounded predicate caches ---
	h.DB.SetCaching(true)
	defer h.DB.SetCaching(false)
	defer h.DB.SetCacheLimit(0)
	fmt.Fprintf(&b, "\n3. bounded caches (Query 3 under PullUp, caching on):\n")
	var invs []int64
	for _, limit := range []int{0, 100, 10} {
		h.DB.SetCacheLimit(limit)
		res, err := h.DB.Query(Query3, predplace.PullUp)
		if err != nil {
			return nil, err
		}
		inv := res.Stats.Invocations["costly100"]
		invs = append(invs, inv)
		fmt.Fprintf(&b, "   limit %5d entries: %6d invocations (charged %.0f)\n",
			limit, inv, res.Stats.Charged())
	}
	// Eviction is deterministic FIFO, but a tighter limit can still evict a
	// binding right before its value recurs, so invocation counts are not
	// monotone in the limit — only bounded-vs-unbounded is meaningful.
	shapes = append(shapes, check(
		"bounding the cache revives duplicate invocations",
		invs[1] > invs[0] && invs[2] > invs[0],
		"unbounded=%d limit100=%d limit10=%d", invs[0], invs[1], invs[2]))

	return &Report{
		ID:    "ablations",
		Title: "Design-choice ablations (unpruneable retention, value-based ranks, bounded caches)",
		Text:  b.String(),
		Shape: shapes,
	}, nil
}

// planWithOptions plans one SQL text with explicit optimizer options,
// returning the estimated cost and diagnostics.
func (h *Harness) planWithOptions(sql string, opts optimizer.Options) (float64, *optimizer.Info, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return 0, nil, err
	}
	binder := &sqlparse.Binder{Cat: h.DB.Catalog()}
	bound, err := binder.Bind(stmt)
	if err != nil {
		return 0, nil, err
	}
	if err := query.Analyze(h.DB.Catalog(), bound.Query); err != nil {
		return 0, nil, err
	}
	opt := optimizer.New(h.DB.Catalog(), opts)
	root, info, err := opt.Plan(bound.Query)
	if err != nil {
		return 0, nil, err
	}
	return root.Cost(), info, nil
}
