package harness

// The benchmark queries, reconstructed from the paper's prose (the paper
// shows only Query 1's template and describes the others through their
// figures). Each reconstruction is justified in DESIGN.md §5.

// Query1 (Figure 3): join on unique unindexed columns with an expensive
// selection on the larger table (t9). With the reconstruction's 0-based
// nested domains, values(t3.ua1) ⊂ values(t9.ua1), so the join's selectivity
// over t9 is |t3|/|t9| = 1/3: evaluating costly100 after the join saves two
// thirds of its invocations, and PushDown is badly suboptimal (paper: ~3x).
const Query1 = `SELECT * FROM t3, t9
WHERE t3.ua1 = t9.ua1 AND costly100(t9.u20)`

// Query2 (Figure 4): the same as Query 1 with the small partner table
// substituted by a larger one (the paper swaps t3 for t9 against t10; our
// nested domains realize the same mechanism by swapping t3 for t10 against
// t9). Now values(t9.ua1) ⊆ values(t10.ua1), so the join has selectivity
// exactly 1 over t9: pulling the selection up provides no invocation savings
// and slightly increases the join's input. PullUp errs, but "this error is
// nearly insignificant".
const Query2 = `SELECT * FROM t10, t9
WHERE t10.ua1 = t9.ua1 AND costly100(t9.u20)`

// Query3 (Figure 5): a many-to-many join (each t3 tuple matches ≈10 t10
// tuples, so the join's selectivity over t3 exceeds 1). Pulling costly100 up
// multiplies its invocations by ~10 — "over-eager pullup can cause
// significant performance problems". Run with predicate caching off; §5.1
// notes caching bounds this damage (see the caching ablation).
const Query3 = `SELECT * FROM t3, t10
WHERE t3.a10 = t10.a10 AND costly100(t3.ua1)`

// Query4 (Figures 6–8): three-way join where, in the good order, the join
// above t3 has selectivity 1 over the stream (rank 0) while the next join
// filters the stream to ~10% (low rank). rank(costly100) lies between the
// two joins' ranks but above their *group* rank, so only Predicate
// Migration — which composes the out-of-rank-order pair — pulls the
// selection above both. PullRank either leaves it at the bottom or flees to
// a worse join order (Figure 7).
const Query4 = `SELECT * FROM t3, t10, t1
WHERE t3.ua1 = t10.ua1 AND t10.ua1 = t1.ua1 AND costly100(t3.u20)`

// Query5 (Figure 9): four relations where t7 connects only through an
// expensive join predicate, plus an expensive, selective predicate on t3
// (selective100: 100 I/Os per call, selectivity 0.1 — registered by the
// harness). PullUp hoists the selection above the expensive join, so the
// join predicate runs on the near-cross-product of t7 with the unfiltered
// t3⋈t6⋈t10 subtree — ten times the pairs. This is the plan that "used up
// all available swap space and never completed" in the paper; here it blows
// through the charged-cost budget and reports DNF.
const Query5 = `SELECT * FROM t3, t6, t7, t10
WHERE t3.ua1 = t10.ua1 AND t6.a1 = t10.a10
AND costly10join(t3.u20, t7.u20) AND selective100(t3.u10)`

// Fig1Query is the §3.1 example: SELECT * FROM R, S WHERE R.c1 = S.c1 AND
// p(R.c2) AND q(S.c2), where the optimal plan (the paper's Figure 1) places
// p and q directly above the scans. The join t1.ua1 = t10.u10 is over
// identical 0-based domains (it reduces neither input much), and with
// predicate caching on, p and q — whose arguments have few distinct values —
// cost almost nothing per tuple below the join, so the optimal plan keeps
// both at the scans: a shape no left-deep tree over the LDL rewrite can
// express (Figure 2). Run with caching enabled.
const Fig1Query = `SELECT * FROM t1, t10
WHERE t1.ua1 = t10.u10 AND costly1(t1.u100) AND costly1(t10.u100)`

// PlanTimeQuery is the §4.4 stress case: a 5-way join with expensive
// predicates everywhere, maximizing unpruneable subplan retention. The paper
// plans it in under 8 seconds on a SparcStation 10.
const PlanTimeQuery = `SELECT * FROM t1, t3, t6, t9, t10
WHERE t1.ua1 = t3.ua1 AND t3.ua1 = t10.ua1 AND t6.a1 = t10.a10 AND t9.a10 = t10.a10
AND costly100(t1.u20) AND costly100(t3.u20) AND costly10(t9.u10) AND costly10(t10.u10)`
