package harness

// The parallel-execution benchmark: each benchmark query runs twice on the
// same database — once with the serial executor, once with the parallel one
// — comparing wall time, result sets, and charged cost. With predicate
// caching off the charged cost must match bit for bit (the engine's
// accounting is parallelism-invariant), so the comparison doubles as a
// correctness gate in CI.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"predplace"
	"predplace/internal/expr"
)

// NewParallel builds the benchmark database at the given scale with a
// parallel-capable configuration (sharded buffer pool, worker fan-out of
// workers). SetParallelism toggles between the serial and parallel
// executors on the same handle.
func NewParallel(scale float64, workers int) (*Harness, error) {
	if scale <= 0 {
		scale = 0.05
	}
	if workers < 2 {
		workers = 2
	}
	db, err := predplace.Open(predplace.Config{Scale: scale, Parallelism: workers})
	if err != nil {
		return nil, err
	}
	if err := db.RegisterFunc("selective100", 1, 100, 0.1, expr.BoolStub(0.1, 424242)); err != nil {
		return nil, err
	}
	return &Harness{Scale: scale, DB: db}, nil
}

// ParallelQueryResult compares one query's serial and parallel runs.
type ParallelQueryResult struct {
	Query           string  `json:"query"`
	SerialMs        float64 `json:"serial_ms"`
	ParallelMs      float64 `json:"parallel_ms"`
	Speedup         float64 `json:"speedup"`
	SerialCharged   float64 `json:"serial_charged"`
	ParallelCharged float64 `json:"parallel_charged"`
	Rows            int     `json:"rows"`
	RowsEqual       bool    `json:"rows_equal"`
	ChargedEqual    bool    `json:"charged_equal"`
}

// ParallelBench is the full serial-vs-parallel comparison over Queries 1–5.
type ParallelBench struct {
	Scale   float64               `json:"scale"`
	Workers int                   `json:"workers"`
	Iters   int                   `json:"iters"`
	Queries []ParallelQueryResult `json:"queries"`
	// Pass is true when every query returned the same result set and
	// charged exactly the same cost under both executors.
	Pass bool `json:"pass"`
}

// canonicalRows renders a result set order-insensitively for comparison
// (parallel operators do not preserve row order).
func canonicalRows(res *predplace.Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		out = append(out, strings.Join(cells, "|"))
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunParallelBench runs Queries 1–5 under Predicate Migration with caching
// off, serially and then with workers-way parallelism, on the same database.
// Timings are single-shot; use RunParallelBenchIters for best-of-N numbers.
func (h *Harness) RunParallelBench(workers int) (*ParallelBench, error) {
	return h.RunParallelBenchIters(workers, 1)
}

// RunParallelBenchIters is RunParallelBench with best-of-iters timing: each
// mode runs iters times per query and the fastest run is reported, so
// millisecond-scale queries are not noise-dominated. Correctness checks
// compare the last run of each mode.
func (h *Harness) RunParallelBenchIters(workers, iters int) (*ParallelBench, error) {
	if iters < 1 {
		iters = 1
	}
	h.DB.SetCaching(false)
	h.DB.SetBudget(0)
	bench := &ParallelBench{Scale: h.Scale, Workers: workers, Iters: iters, Pass: true}
	for _, q := range benchQueries {
		h.DB.SetParallelism(1)
		serial, serialMs, _, err := h.measure(q.sql, iters)
		if err != nil {
			return nil, fmt.Errorf("%s serial: %w", q.name, err)
		}

		h.DB.SetParallelism(workers)
		par, parMs, _, err := h.measure(q.sql, iters)
		h.DB.SetParallelism(1)
		if err != nil {
			return nil, fmt.Errorf("%s parallel: %w", q.name, err)
		}

		r := ParallelQueryResult{
			Query:           q.name,
			SerialMs:        serialMs,
			ParallelMs:      parMs,
			SerialCharged:   serial.Stats.Charged(),
			ParallelCharged: par.Stats.Charged(),
			Rows:            serial.Stats.Rows,
			RowsEqual:       equalStrings(canonicalRows(serial), canonicalRows(par)),
			ChargedEqual:    serial.Stats.Charged() == par.Stats.Charged(),
		}
		if parMs > 0 {
			r.Speedup = serialMs / parMs
		}
		if !r.RowsEqual || !r.ChargedEqual {
			bench.Pass = false
		}
		bench.Queries = append(bench.Queries, r)
	}
	return bench, nil
}

// JSON renders the benchmark as indented JSON (BENCH_parallel.json).
func (b *ParallelBench) JSON() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// String renders the benchmark as an aligned table.
func (b *ParallelBench) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "parallel execution bench: scale=%.3g workers=%d (Migration, caching off)\n",
		b.Scale, b.Workers)
	fmt.Fprintf(&sb, "%-8s %10s %10s %8s %14s %14s %6s %8s\n",
		"query", "serial-ms", "par-ms", "speedup", "serial-cost", "par-cost", "rows", "verdict")
	for _, q := range b.Queries {
		verdict := "OK"
		if !q.RowsEqual {
			verdict = "ROWS!"
		} else if !q.ChargedEqual {
			verdict = "COST!"
		}
		fmt.Fprintf(&sb, "%-8s %10.1f %10.1f %7.2fx %14.0f %14.0f %6d %8s\n",
			q.Query, q.SerialMs, q.ParallelMs, q.Speedup,
			q.SerialCharged, q.ParallelCharged, q.Rows, verdict)
	}
	if b.Pass {
		sb.WriteString("PASS: parallel results and charged costs match serial exactly\n")
	} else {
		sb.WriteString("FAIL: parallel execution diverged from serial\n")
	}
	return sb.String()
}
