package harness

// The batch-execution benchmark: each benchmark query runs three times on
// the same database — tuple-at-a-time (BatchSize 1, the legacy executor),
// batched serial (default BatchSize), and batched parallel — comparing wall
// time, allocation counts, result sets, and charged cost. With caching off
// the charged cost must match bit for bit across all three modes (batching
// only amortizes per-row overheads; the paper's cost accounting is
// per-tuple), and the batched serial executor must reproduce the legacy
// row order exactly, so the comparison doubles as a correctness gate in CI.

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"predplace"
)

// benchQueries is the figure-query workload shared by the parallel and
// batch benchmarks.
var benchQueries = []struct {
	name string
	sql  string
}{
	{"query1", Query1},
	{"query2", Query2},
	{"query3", Query3},
	{"query4", Query4},
	{"query5", Query5},
}

// measure runs sql iters times under Predicate Migration, returning the
// last result, the best (minimum) wall time in ms, and the best (minimum)
// heap-allocation count of a single run.
func (h *Harness) measure(sql string, iters int) (*predplace.Result, float64, uint64, error) {
	var res *predplace.Result
	bestMs := math.MaxFloat64
	bestAllocs := uint64(math.MaxUint64)
	var m0, m1 runtime.MemStats
	for i := 0; i < iters; i++ {
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		r, err := h.DB.Query(sql, predplace.Migration)
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&m1)
		if err != nil {
			return nil, 0, 0, err
		}
		res = r
		if ms := float64(elapsed.Microseconds()) / 1000; ms < bestMs {
			bestMs = ms
		}
		if a := m1.Mallocs - m0.Mallocs; a < bestAllocs {
			bestAllocs = a
		}
	}
	return res, bestMs, bestAllocs, nil
}

// exactRows renders a result set order-sensitively: the serial batched
// executor must reproduce the legacy executor's row order, not just its
// multiset.
func exactRows(res *predplace.Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		out = append(out, strings.Join(cells, "|"))
	}
	return out
}

// BatchQueryResult compares one query's tuple-at-a-time, batched-serial,
// and batched-parallel runs.
type BatchQueryResult struct {
	Query           string  `json:"query"`
	TupleMs         float64 `json:"tuple_ms"`
	BatchMs         float64 `json:"batch_ms"`
	ParallelMs      float64 `json:"batch_parallel_ms"`
	SpeedupBatch    float64 `json:"speedup_batch"`
	SpeedupParallel float64 `json:"speedup_batch_parallel"`
	TupleAllocs     uint64  `json:"tuple_allocs"`
	BatchAllocs     uint64  `json:"batch_allocs"`
	TupleCharged    float64 `json:"tuple_charged"`
	Rows            int     `json:"rows"`
	// RowsEqual: all three modes produced the same result multiset.
	RowsEqual bool `json:"rows_equal"`
	// OrderEqual: the batched serial run reproduced the legacy row order
	// exactly (parallel runs are exempt — they do not preserve order).
	OrderEqual bool `json:"order_equal"`
	// ChargedEqual: all three modes charged exactly the same cost.
	ChargedEqual bool `json:"charged_equal"`
}

// BatchBench is the full tuple-vs-batch-vs-parallel comparison over
// Queries 1–5.
type BatchBench struct {
	Scale     float64            `json:"scale"`
	Workers   int                `json:"workers"`
	BatchSize int                `json:"batch_size"`
	Iters     int                `json:"iters"`
	Queries   []BatchQueryResult `json:"queries"`
	// Pass is true when every query returned the same rows (same order for
	// serial modes) and charged exactly the same cost in all three modes.
	Pass bool `json:"pass"`
}

// RunBatchBench runs Queries 1–5 under Predicate Migration with caching
// off in three executor modes on the same database: tuple-at-a-time
// (BatchSize 1), batched serial (default BatchSize), and batched
// workers-way parallel. Timings and allocation counts are best-of-iters.
func (h *Harness) RunBatchBench(workers, iters int) (*BatchBench, error) {
	if iters < 1 {
		iters = 1
	}
	h.DB.SetCaching(false)
	h.DB.SetBudget(0)
	defer h.DB.SetBatchSize(0)
	bench := &BatchBench{
		Scale: h.Scale, Workers: workers,
		BatchSize: predplace.DefaultBatchSize, Iters: iters, Pass: true,
	}
	for _, q := range benchQueries {
		h.DB.SetParallelism(1)
		h.DB.SetBatchSize(1)
		tuple, tupleMs, tupleAllocs, err := h.measure(q.sql, iters)
		if err != nil {
			return nil, fmt.Errorf("%s tuple: %w", q.name, err)
		}

		h.DB.SetBatchSize(0)
		batch, batchMs, batchAllocs, err := h.measure(q.sql, iters)
		if err != nil {
			return nil, fmt.Errorf("%s batch: %w", q.name, err)
		}

		h.DB.SetParallelism(workers)
		par, parMs, _, err := h.measure(q.sql, iters)
		h.DB.SetParallelism(1)
		if err != nil {
			return nil, fmt.Errorf("%s batch+parallel: %w", q.name, err)
		}

		tupleCanon := canonicalRows(tuple)
		r := BatchQueryResult{
			Query:        q.name,
			TupleMs:      tupleMs,
			BatchMs:      batchMs,
			ParallelMs:   parMs,
			TupleAllocs:  tupleAllocs,
			BatchAllocs:  batchAllocs,
			TupleCharged: tuple.Stats.Charged(),
			Rows:         tuple.Stats.Rows,
			RowsEqual: equalStrings(tupleCanon, canonicalRows(batch)) &&
				equalStrings(tupleCanon, canonicalRows(par)),
			OrderEqual: equalStrings(exactRows(tuple), exactRows(batch)),
			ChargedEqual: tuple.Stats.Charged() == batch.Stats.Charged() &&
				tuple.Stats.Charged() == par.Stats.Charged(),
		}
		if batchMs > 0 {
			r.SpeedupBatch = tupleMs / batchMs
		}
		if parMs > 0 {
			r.SpeedupParallel = tupleMs / parMs
		}
		if !r.RowsEqual || !r.OrderEqual || !r.ChargedEqual {
			bench.Pass = false
		}
		bench.Queries = append(bench.Queries, r)
	}
	return bench, nil
}

// JSON renders the benchmark as indented JSON (BENCH_batch.json).
func (b *BatchBench) JSON() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// String renders the benchmark as an aligned table.
func (b *BatchBench) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "batch execution bench: scale=%.3g workers=%d iters=%d (Migration, caching off)\n",
		b.Scale, b.Workers, b.Iters)
	fmt.Fprintf(&sb, "%-8s %9s %9s %9s %8s %8s %11s %11s %6s %8s\n",
		"query", "tuple-ms", "batch-ms", "b+par-ms", "batch-x", "b+par-x",
		"tup-allocs", "bat-allocs", "rows", "verdict")
	for _, q := range b.Queries {
		verdict := "OK"
		switch {
		case !q.RowsEqual:
			verdict = "ROWS!"
		case !q.OrderEqual:
			verdict = "ORDER!"
		case !q.ChargedEqual:
			verdict = "COST!"
		}
		fmt.Fprintf(&sb, "%-8s %9.1f %9.1f %9.1f %7.2fx %7.2fx %11d %11d %6d %8s\n",
			q.Query, q.TupleMs, q.BatchMs, q.ParallelMs,
			q.SpeedupBatch, q.SpeedupParallel,
			q.TupleAllocs, q.BatchAllocs, q.Rows, verdict)
	}
	if b.Pass {
		sb.WriteString("PASS: batched results, row order, and charged costs match tuple-at-a-time exactly\n")
	} else {
		sb.WriteString("FAIL: batched execution diverged from tuple-at-a-time\n")
	}
	return sb.String()
}
