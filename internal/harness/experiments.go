package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"predplace"
)

// Table1 reproduces Table 1: the algorithm summary with implementation
// effort. The paper reported C lines in Montage's optimizer; we report
// measured Go lines of this repository's optimizer sources (same spirit,
// honest units).
func (h *Harness) Table1() (*Report, error) {
	type row struct {
		algo  string
		works string
		files []string
		note  string
	}
	rows := []row{
		{"PushDown+", "queries without expensive predicates and queries without joins",
			[]string{"optimizer.go", "systemr.go"},
			"OK for single-table queries, and thus some ODBMSs."},
		{"PullUp", "queries with either free or very expensive selections",
			[]string{"optimizer.go", "systemr.go", "join.go"},
			"OK for MMDBMSs with standard primary join predicates."},
		{"PullRank", "queries with at most one join and standard primary join predicates",
			[]string{"optimizer.go", "systemr.go", "join.go"},
			"Also used as a preprocessor for Predicate Migration."},
		{"Predicate Migration", "queries with standard primary join predicates",
			[]string{"optimizer.go", "systemr.go", "join.go", "flat.go", "migrate.go"},
			"Widely effective. Can cause enlargement of plan space."},
		{"LDL", "queries where the optimal plan has no costly predicates over an inner",
			[]string{"ldl.go", "enumerate.go"},
			"Forced pullup from join inners (left-deep trees only)."},
		{"Exhaustive", "all queries, including those with expensive primary joins",
			[]string{"exhaustive.go", "enumerate.go"},
			"Prohibitive computational complexity."},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %9s  %-62s %s\n", "Algorithm", "Go lines", "Works for...", "Comments")
	metrics := map[string]float64{}
	for _, r := range rows {
		lines := optimizerLines(r.files)
		metrics["lines_"+r.algo] = float64(lines)
		count := "n/a"
		if lines > 0 {
			count = fmt.Sprintf("%d", lines)
		}
		fmt.Fprintf(&b, "%-20s %9s  %-62s %s\n", r.algo, count, r.works, r.note)
	}
	rep := &Report{
		ID:      "table1",
		Title:   "Summary of algorithms (paper Table 1)",
		Text:    b.String(),
		Metrics: metrics,
	}
	mig, pd := metrics["lines_Predicate Migration"], metrics["lines_PushDown+"]
	rep.Shape = append(rep.Shape, check(
		"Predicate Migration needs substantially more implementation than PushDown+ (paper: 3000 vs 900 C lines)",
		mig == 0 || pd == 0 || mig > pd*1.5, "migration=%0.f pushdown=%0.f", mig, pd))
	return rep, nil
}

// optimizerLines counts source lines of the named optimizer files; 0 when
// the sources are not present (e.g. a stripped binary install).
func optimizerLines(files []string) int {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		return 0
	}
	dir := filepath.Join(filepath.Dir(filepath.Dir(self)), "optimizer")
	total := 0
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			return 0
		}
		total += strings.Count(string(data), "\n")
	}
	return total
}

// Table2 reproduces Table 2: physical characteristics of the benchmark
// relations (cardinality scaled by h.Scale; the paper's database was ~110 MB
// at scale 1.0 with 100-byte tuples).
func (h *Harness) Table2() (*Report, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "scale factor %.3f (1.0 = the paper's database)\n", h.Scale)
	fmt.Fprintf(&b, "%-8s %10s %8s %10s %9s\n", "relation", "tuples", "pages", "size(MB)", "indexes")
	var totalMB float64
	metrics := map[string]float64{}
	for _, tab := range h.DB.Catalog().Tables() {
		mb := float64(tab.Pages()) * 8192 / 1e6
		// Index space estimate: ~16 bytes per entry per index.
		idxMB := float64(len(tab.Indexes)) * float64(tab.Card) * 16 / 1e6
		totalMB += mb + idxMB
		fmt.Fprintf(&b, "%-8s %10d %8d %10.2f %9d\n", tab.Name, tab.Card, tab.Pages(), mb, len(tab.Indexes))
		metrics["tuples_"+tab.Name] = float64(tab.Card)
	}
	fmt.Fprintf(&b, "total size incl. index estimate: %.1f MB (paper: ~110 MB at scale 1.0)\n", totalMB)
	metrics["total_mb"] = totalMB
	rep := &Report{ID: "table2", Title: "Benchmark relations (paper Table 2)",
		Text: b.String(), Metrics: metrics}
	rep.Shape = append(rep.Shape,
		check("tuples are 100 bytes wide", tupleWidthIs100(h), "—"),
		check("|tN| = N × 10,000 × scale", cardsScaleLinearly(h), "—"),
	)
	return rep, nil
}

func tupleWidthIs100(h *Harness) bool {
	for _, tab := range h.DB.Catalog().Tables() {
		if tab.TupleBytes != 100 {
			return false
		}
	}
	return true
}

func cardsScaleLinearly(h *Harness) bool {
	for n := 1; n <= 10; n++ {
		tab, err := h.DB.Catalog().Table(fmt.Sprintf("t%d", n))
		if err != nil {
			return false
		}
		want := int64(float64(n) * 10000 * h.Scale)
		if want < 10 {
			want = 10
		}
		if tab.Card != want {
			return false
		}
	}
	return true
}

// Fig1PlanTrees reproduces Figures 1 and 2: the optimal plan for the §3.1
// example places p and q directly above the scans (a shape no left-deep
// tree over the LDL rewrite can express); LDL's left-deep plan pulls the
// inner relation's selection above the join.
func (h *Harness) Fig1PlanTrees() (*Report, error) {
	h.DB.SetCaching(true)
	defer h.DB.SetCaching(false)
	opt, err := h.DB.Explain(Fig1Query, predplace.Migration)
	if err != nil {
		return nil, err
	}
	ldl, err := h.DB.Explain(Fig1Query, predplace.LDL)
	if err != nil {
		return nil, err
	}
	text := "Predicate Migration plan (Figure 1 — selections above their scans):\n" + opt +
		"\nLDL plan (Figure 2 — inner selection forced above the join):\n" + ldl
	rep := &Report{ID: "fig1", Title: "Optimal vs LDL plan trees (paper Figures 1–2)", Text: text}
	// The migration plan keeps each costly1 below the join; the LDL plan
	// keeps at most one (the base table's) below.
	rep.Shape = append(rep.Shape,
		check("Migration keeps both cheap-ish selections below the join",
			filtersBelowJoin(opt) == 2, "below=%d", filtersBelowJoin(opt)),
		check("LDL keeps at most one selection below the join (inner pullup forced)",
			filtersBelowJoin(ldl) <= 1, "below=%d", filtersBelowJoin(ldl)),
	)
	return rep, nil
}

// filtersBelowJoin counts Filter* lines rendered deeper than the root join.
func filtersBelowJoin(rendered string) int {
	lines := strings.Split(rendered, "\n")
	joinIndent := -1
	count := 0
	for _, l := range lines {
		trimmed := strings.TrimLeft(l, " ")
		indent := len(l) - len(trimmed)
		if isJoinLine(trimmed) && joinIndent == -1 {
			joinIndent = indent
		}
		if strings.HasPrefix(trimmed, "Filter*") && joinIndent >= 0 && indent > joinIndent {
			count++
		}
	}
	return count
}

func isJoinLine(trimmed string) bool {
	for _, m := range []string{"NestLoop", "IndexNestLoop", "MergeJoin", "HashJoin"} {
		if strings.HasPrefix(trimmed, m+" on") {
			return true
		}
	}
	return false
}

// figure runs one of the paper's bar-chart comparisons.
func (h *Harness) figure(id, title, sql string, caching bool, budgetFactor float64,
	shapes func(c *comparison) []ShapeCheck, extra ...predplace.Algorithm) (*Report, error) {
	algos := append(append([]predplace.Algorithm(nil), fourAlgos...), extra...)
	c, err := h.compare(sql, caching, budgetFactor, algos...)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    id,
		Title: title,
		Text:  "query:\n" + sql + "\n\n" + c.table(),
		Metrics: map[string]float64{
			"best": c.bestCharged(),
		},
	}
	for i, a := range algos {
		rep.Metrics[a.String()] = c.results[i].Stats.Charged()
		if c.results[i].DNF {
			rep.Metrics[a.String()+"_dnf"] = 1
		}
	}
	rep.Shape = shapes(c)
	return rep, nil
}

// Fig3Query1 reproduces Figure 3: PushDown produces a very poor plan for
// Query 1 while every pullup-capable algorithm agrees on the good plan.
func (h *Harness) Fig3Query1() (*Report, error) {
	return h.figure("fig3", "Query 1 relative performance (paper Figure 3)", Query1, false, 200,
		func(c *comparison) []ShapeCheck {
			best := c.bestCharged()
			pd := c.charged(predplace.PushDown)
			mg := c.charged(predplace.Migration)
			return []ShapeCheck{
				check("PushDown is much worse than the rest (paper: ~3x)",
					pd > 2*best, "pushdown=%.0f best=%.0f (%.2fx)", pd, best, pd/best),
				check("Migration matches the best plan",
					mg <= best*1.05, "migration=%.0f best=%.0f", mg, best),
				check("PullUp and PullRank agree with Migration here",
					c.charged(predplace.PullUp) <= mg*1.1 && c.charged(predplace.PullRank) <= mg*1.1, "—"),
			}
		}, predplace.Exhaustive)
}

// Fig4Query2 reproduces Figure 4: with join selectivity ≈1 over t10, PullUp's
// over-eager hoist costs a little, and "this error is nearly insignificant".
func (h *Harness) Fig4Query2() (*Report, error) {
	return h.figure("fig4", "Query 2 relative performance (paper Figure 4)", Query2, false, 200,
		func(c *comparison) []ShapeCheck {
			best := c.bestCharged()
			pu := c.charged(predplace.PullUp)
			return []ShapeCheck{
				check("PullUp errs (hoists a no-benefit selection)",
					pu >= best, "pullup=%.0f best=%.0f", pu, best),
				check("PullUp's error is nearly insignificant (within ~25%)",
					pu <= best*1.25, "pullup=%.2fx of best", pu/best),
				check("Migration and PushDown agree on keeping the selection low",
					c.charged(predplace.Migration) <= best*1.05 && c.charged(predplace.PushDown) <= best*1.05, "—"),
			}
		}, predplace.Exhaustive)
}

// Fig5Query3 reproduces Figure 5: over-eager pullup across a duplicating
// join multiplies invocations (caching off).
func (h *Harness) Fig5Query3() (*Report, error) {
	return h.figure("fig5", "Query 3 relative performance (paper Figure 5)", Query3, false, 200,
		func(c *comparison) []ShapeCheck {
			best := c.bestCharged()
			pu := c.charged(predplace.PullUp)
			return []ShapeCheck{
				check("over-eager PullUp is badly beaten (paper: 'significant performance problems')",
					pu > 2*best, "pullup=%.0f best=%.0f (%.2fx)", pu, best, pu/best),
				check("Migration keeps the selection below the duplicating join",
					c.charged(predplace.Migration) <= best*1.05, "migration=%.0f", c.charged(predplace.Migration)),
			}
		})
}

// Fig6PlanTrees reproduces Figures 6 and 7: in Query 4's natural join order
// the selection's rank lies between the two joins' ranks, so the single-join
// PullRank test leaves it stuck at the bottom (the PushDown plan) — only the
// grouped pair {J1,J2} justifies pulling it to the top, which Predicate
// Migration does. PullRank's own output (the Figure 7 "flight" to another
// join order) is also shown.
func (h *Harness) Fig6PlanTrees() (*Report, error) {
	mig, err := h.DB.Explain(Query4, predplace.Migration)
	if err != nil {
		return nil, err
	}
	pd, err := h.DB.Explain(Query4, predplace.PushDown)
	if err != nil {
		return nil, err
	}
	pr, err := h.DB.Explain(Query4, predplace.PullRank)
	if err != nil {
		return nil, err
	}
	text := "Migration plan (Figure 6 — selection pulled above the grouped join pair):\n" + mig +
		"\nStuck plan (what the per-join rank test alone achieves in this order):\n" + pd +
		"\nPullRank plan (Figure 7 — flees to a different join order):\n" + pr
	rep := &Report{ID: "fig6", Title: "Query 4 plan trees (paper Figures 6–7)", Text: text}
	rep.Shape = append(rep.Shape,
		check("Migration pulls the selection above both joins (group pullup)",
			filtersBelowJoin(mig) == 0 && strings.Count(mig, " on ") >= 2,
			"below=%d", filtersBelowJoin(mig)),
		check("the per-join test alone leaves the selection at the bottom",
			filtersBelowJoin(pd) == 1, "below=%d", filtersBelowJoin(pd)),
	)
	return rep, nil
}

// Fig8Query4 reproduces Figure 8: PullRank cannot consider multi-join
// pullups and loses to Predicate Migration on Query 4.
func (h *Harness) Fig8Query4() (*Report, error) {
	return h.figure("fig8", "Query 4 relative performance (paper Figure 8)", Query4, false, 200,
		func(c *comparison) []ShapeCheck {
			mg := c.charged(predplace.Migration)
			pr := c.charged(predplace.PullRank)
			pd := c.charged(predplace.PushDown)
			best := c.bestCharged()
			// PullRank cannot pull the selection over the grouped pair in
			// the natural join order, so it either ships the stuck plan
			// (PushDown-like, ~3x) or flees to another join order
			// (Figure 7). Montage's measured costs made that escape order
			// poor; our deliberately symmetric linear join costs make it
			// tie, so the structural failure shows as PushDown's stuck-plan
			// penalty plus PullRank's changed plan, with Migration never
			// worse (see EXPERIMENTS.md).
			return []ShapeCheck{
				check("the stuck plan (PushDown) is much worse than Migration",
					pd > mg*2, "pushdown=%.0f migration=%.0f", pd, mg),
				check("Migration never loses to PullRank",
					mg <= pr*1.0001, "pullrank=%.0f migration=%.0f", pr, mg),
				check("Migration is the best of the four (ties allowed)",
					mg <= best*1.05, "migration=%.0f best=%.0f", mg, best),
			}
		}, predplace.Exhaustive)
}

// Fig9Query5 reproduces Figure 9: with an expensive primary join predicate,
// PullUp's plan explodes (the paper's run never completed; ours aborts
// against the charged-cost budget), while Migration handles it.
func (h *Harness) Fig9Query5() (*Report, error) {
	return h.figure("fig9", "Query 5 relative performance (paper Figure 9)", Query5, false, 6,
		func(c *comparison) []ShapeCheck {
			mg := c.charged(predplace.Migration)
			best := c.bestCharged()
			return []ShapeCheck{
				check("PullUp does not finish (paper: 'used up all available swap space')",
					c.dnf(predplace.PullUp) || c.charged(predplace.PullUp) > 10*best,
					"dnf=%v", c.dnf(predplace.PullUp)),
				check("Migration is at or near the best completed plan",
					mg <= best*1.05, "migration=%.0f best=%.0f", mg, best),
			}
		})
}

// Fig10Spectrum reproduces Figure 10: the algorithms form a spectrum of
// eagerness to pull up selections. We measure eagerness as the fraction of
// expensive selections placed above at least one join across the five
// benchmark queries.
func (h *Harness) Fig10Spectrum() (*Report, error) {
	algos := []predplace.Algorithm{
		predplace.PushDown, predplace.PullRank, predplace.Migration,
		predplace.LDL, predplace.PullUp,
	}
	queries := []string{Query1, Query2, Query3, Query4, Fig1Query}
	eager := map[predplace.Algorithm]float64{}
	for _, a := range algos {
		hoisted, total := 0, 0
		for _, q := range queries {
			rendered, err := h.DB.Explain(q, a)
			if err != nil {
				return nil, err
			}
			below := filtersBelowJoin(rendered)
			all := strings.Count(rendered, "Filter*")
			total += all
			hoisted += all - below
		}
		if total > 0 {
			eager[a] = float64(hoisted) / float64(total)
		}
	}
	var b strings.Builder
	b.WriteString("pullup eagerness (fraction of expensive selections above a join)\n")
	for _, a := range algos {
		fmt.Fprintf(&b, "  %-18s %5.2f\n", a.String(), eager[a])
	}
	b.WriteString("paper Figure 10 spectrum: PushDown < PullRank ~ Migration < LDL < PullUp\n")
	rep := &Report{ID: "fig10", Title: "Spectrum of pullup eagerness (paper Figure 10)", Text: b.String()}
	rep.Shape = append(rep.Shape,
		check("PushDown is least eager (0)", eager[predplace.PushDown] == 0, "%.2f", eager[predplace.PushDown]),
		check("PullUp is most eager (1)", eager[predplace.PullUp] == 1, "%.2f", eager[predplace.PullUp]),
		check("PullRank and Migration sit between",
			eager[predplace.PullRank] >= eager[predplace.PushDown] &&
				eager[predplace.Migration] >= eager[predplace.PullRank]-0.21 &&
				eager[predplace.PullUp] >= eager[predplace.Migration], "—"),
		check("LDL is at least as eager as Migration",
			eager[predplace.LDL] >= eager[predplace.Migration]-0.01, "ldl=%.2f mig=%.2f",
			eager[predplace.LDL], eager[predplace.Migration]),
	)
	return rep, nil
}

// PlanTime5Way reproduces the §4.4 claim: even in the worst case where
// unpruneable subplans defeat pruning, a 5-way join with expensive
// predicates plans quickly (the paper: under 8 seconds on a SparcStation 10).
func (h *Harness) PlanTime5Way() (*Report, error) {
	start := time.Now()
	res, err := h.DB.Query("EXPLAIN "+PlanTimeQuery, predplace.Migration)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	var b strings.Builder
	fmt.Fprintf(&b, "5-way join with 4 expensive predicates\nplanning time: %v\nplans retained: %d (unpruneable extras: %d, migration passes: %d)\n",
		elapsed, res.Info.PlansRetained, res.Info.UnpruneableRetained, res.Info.MigrationPasses)
	rep := &Report{
		ID:    "plantime",
		Title: "Optimization time for a 5-way join with expensive predicates (paper §4.4)",
		Text:  b.String(),
		Metrics: map[string]float64{
			"seconds":        elapsed.Seconds(),
			"plans_retained": float64(res.Info.PlansRetained),
			"unpruneable":    float64(res.Info.UnpruneableRetained),
		},
	}
	rep.Shape = append(rep.Shape,
		check("plans in under 8 seconds (paper's bound on 1993 hardware)",
			elapsed < 8*time.Second, "%v", elapsed),
		check("unpruneable retention enlarges the plan space",
			res.Info.PlansRetained > 0, "%d plans", res.Info.PlansRetained),
	)
	return rep, nil
}

// CachingAblation reproduces §5.1's claim: predicate caching rescues
// over-eager pullup on Query 3 by bounding invocations at the number of
// distinct bindings (join selectivities on values are capped at 1).
func (h *Harness) CachingAblation() (*Report, error) {
	off, err := h.compare(Query3, false, 0, predplace.PullUp, predplace.Migration)
	if err != nil {
		return nil, err
	}
	on, err := h.compare(Query3, true, 0, predplace.PullUp, predplace.Migration)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("Query 3, caching OFF:\n" + off.table())
	b.WriteString("\nQuery 3, caching ON:\n" + on.table())
	puOff := off.charged(predplace.PullUp)
	puOn := on.charged(predplace.PullUp)
	rep := &Report{
		ID:    "caching",
		Title: "Predicate caching ablation on Query 3 (paper §5.1)",
		Text:  b.String(),
		Metrics: map[string]float64{
			"pullup_off": puOff, "pullup_on": puOn,
		},
	}
	rep.Shape = append(rep.Shape,
		check("caching sharply reduces PullUp's penalty on the duplicating join",
			puOn < puOff/2, "off=%.0f on=%.0f", puOff, puOn),
		check("with caching, PullUp is within ~40% of Migration (selectivity-on-values bound)",
			puOn <= on.charged(predplace.Migration)*1.4, "pullup=%.0f migration=%.0f",
			puOn, on.charged(predplace.Migration)),
	)
	return rep, nil
}
