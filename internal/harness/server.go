package harness

// The multi-session server benchmark: the benchmark queries run through
// predplace.Server from N concurrent client sessions, comparing every
// result against its single-session baseline (the divergence gate — the
// engine's per-query isolation claim is that concurrency never changes
// rows or charged cost), measuring throughput and tail latency as the
// session count grows, and exercising the admission controller's graceful
// shedding and the per-tenant quota clamp. check.sh runs the small-scale
// smoke via ppbench -server; BENCH_server.json is the artifact.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"predplace"
	"predplace/internal/expr"
)

// ServerSessionResult is one session-count leg of the throughput sweep.
type ServerSessionResult struct {
	Sessions int `json:"sessions"`
	// Queries is the total number of queries the leg executed.
	Queries int     `json:"queries"`
	WallMs  float64 `json:"wall_ms"`
	QPS     float64 `json:"qps"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
	// PlanHits/PlanMisses are this leg's plan-cache deltas: after the first
	// pass over the query mix every session should hit.
	PlanHits   int64 `json:"plan_hits"`
	PlanMisses int64 `json:"plan_misses"`
	// Diverged counts results whose rows or charged cost differed from the
	// single-session baseline. Any nonzero value fails the bench.
	Diverged int `json:"diverged"`
}

// ServerShedResult is the admission-control leg: a burst of concurrent
// queries against a one-slot, no-queue server must split cleanly into
// served and shed-with-ErrOverloaded, nothing else.
type ServerShedResult struct {
	Burst          int   `json:"burst"`
	Served         int64 `json:"served"`
	Shed           int64 `json:"shed"`
	UnexpectedErrs int   `json:"unexpected_errs"`
}

// ServerQuotaResult is the tenant-quota leg: a tenant whose quota is a
// fraction of one query's cost must get a DNF (the quota clamps the
// query's budget), then an ErrQuotaExceeded rejection.
type ServerQuotaResult struct {
	Quota        float64 `json:"quota"`
	FirstDNF     bool    `json:"first_dnf"`
	ThenRejected bool    `json:"then_rejected"`
}

// ServerBench is the whole multi-session benchmark.
type ServerBench struct {
	Scale    float64               `json:"scale"`
	Iters    int                   `json:"iters"`
	Sessions []ServerSessionResult `json:"sessions"`
	Shed     ServerShedResult      `json:"shed"`
	QuotaLeg ServerQuotaResult     `json:"quota"`
	// Pass is true when no result diverged from its baseline, at least one
	// leg hit the plan cache, shedding split the burst cleanly, and the
	// quota clamp produced DNF-then-reject.
	Pass bool `json:"pass"`
}

// serverBaseline is one query's single-session reference outcome.
type serverBaseline struct {
	rows    []string
	charged float64
}

// RunServerBench runs the query mix from each session count in sessions
// (iters queries per session), then the shedding and quota legs. The DB
// runs with caching off, serial intra-query execution, and no per-query
// budget, so every query's charged cost has a single correct value for the
// divergence gate to check.
func (h *Harness) RunServerBench(sessions []int, iters int) (*ServerBench, error) {
	if len(sessions) == 0 {
		sessions = []int{1, 2, 4, 8}
	}
	if iters < 1 {
		iters = 1
	}
	h.DB.SetCaching(false)
	h.DB.SetBudget(0)
	h.DB.SetParallelism(1)
	h.DB.SetBatchSize(0)

	// Single-session baselines.
	var base []serverBaseline
	for _, q := range benchQueries {
		res, err := h.DB.Query(q.sql, predplace.Migration)
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", q.name, err)
		}
		base = append(base, serverBaseline{rows: canonicalRows(res), charged: res.Stats.Charged()})
	}

	bench := &ServerBench{Scale: h.Scale, Iters: iters, Pass: true}
	for _, n := range sessions {
		leg, err := h.serverLeg(n, iters, base)
		if err != nil {
			return nil, err
		}
		if leg.Diverged > 0 {
			bench.Pass = false
		}
		bench.Sessions = append(bench.Sessions, *leg)
	}
	// The plan-cache gate: with every leg running the same five statements,
	// the hit path (skip parse/bind/optimize) must carry most executions.
	hits, misses := int64(0), int64(0)
	for _, leg := range bench.Sessions {
		hits += leg.PlanHits
		misses += leg.PlanMisses
	}
	if hits == 0 {
		bench.Pass = false
	}

	bench.Shed = h.serverShedLeg(16)
	if bench.Shed.Shed == 0 || bench.Shed.UnexpectedErrs > 0 ||
		bench.Shed.Served+bench.Shed.Shed != int64(bench.Shed.Burst) {
		bench.Pass = false
	}

	quota := base[0].charged / 2
	bench.QuotaLeg = h.serverQuotaLeg(quota)
	if !bench.QuotaLeg.FirstDNF || !bench.QuotaLeg.ThenRejected {
		bench.Pass = false
	}
	return bench, nil
}

// serverLeg runs n concurrent sessions × iters queries each, every session
// walking the query mix at its own offset, and checks each result against
// its baseline.
func (h *Harness) serverLeg(n, iters int, base []serverBaseline) (*ServerSessionResult, error) {
	srv := predplace.NewServer(h.DB, predplace.ServerConfig{
		// Every session gets a slot: this leg measures execution under
		// concurrency, not shedding.
		MaxConcurrent: n,
	})
	h0, m0, _, _ := h.DB.PlanCacheStats()

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []float64
		diverged  int
		firstErr  error
	)
	start := time.Now()
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(offset int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qi := (offset + i) % len(benchQueries)
				t0 := time.Now()
				res, err := srv.Query(context.Background(), fmt.Sprintf("session-%d", offset),
					benchQueries[qi].sql, predplace.Migration)
				lat := time.Since(t0).Seconds() * 1e3
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("%s: %w", benchQueries[qi].name, err)
					}
				} else {
					latencies = append(latencies, lat)
					if res.Stats.Charged() != base[qi].charged ||
						!equalStrings(canonicalRows(res), base[qi].rows) {
						diverged++
					}
				}
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	wall := time.Since(start).Seconds() * 1e3
	if firstErr != nil {
		return nil, firstErr
	}
	h1, m1, _, _ := h.DB.PlanCacheStats()

	leg := &ServerSessionResult{
		Sessions: n, Queries: n * iters, WallMs: wall,
		PlanHits: h1 - h0, PlanMisses: m1 - m0, Diverged: diverged,
	}
	if wall > 0 {
		leg.QPS = float64(leg.Queries) / (wall / 1e3)
	}
	leg.P50Ms, leg.P99Ms = percentiles(latencies)
	return leg, nil
}

// percentiles returns the p50 and p99 of latencies (ms).
func percentiles(lat []float64) (p50, p99 float64) {
	if len(lat) == 0 {
		return 0, 0
	}
	sort.Float64s(lat)
	at := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return lat[i]
	}
	return at(0.50), at(0.99)
}

// serverShedLeg fires burst concurrent queries at a one-slot server with no
// queue: the queries that find the slot busy must come back as
// ErrOverloaded, immediately, having consumed nothing. The query naps in
// its predicate so the slot holder yields the processor — on a single-core
// scheduler a pure-CPU query would finish before the next goroutine even
// attempted admission, and nothing would ever contend.
func (h *Harness) serverShedLeg(burst int) ServerShedResult {
	//pplint:ignore errdrop duplicate registration when the bench runs twice on one harness; the first registration is identical
	_ = h.DB.RegisterFunc("nap1ms", 1, 1, 0.5, func(args []expr.Value) predplace.Value {
		time.Sleep(time.Millisecond)
		return expr.B(true)
	})
	sql := "SELECT COUNT(*) FROM t1 WHERE nap1ms(t1.u10)"
	srv := predplace.NewServer(h.DB, predplace.ServerConfig{
		MaxConcurrent: 1,
		MaxQueue:      -1, // shed instead of queueing
	})
	out := ServerShedResult{Burst: burst}
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		unexpected int
	)
	start := make(chan struct{})
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, err := srv.Query(context.Background(), "burst", sql, predplace.Migration)
			if err != nil && !errors.Is(err, predplace.ErrOverloaded) {
				mu.Lock()
				unexpected++
				mu.Unlock()
			}
		}()
	}
	close(start)
	wg.Wait()
	st := srv.Stats()
	out.Served, out.Shed, out.UnexpectedErrs = st.Served, st.Shed, unexpected
	return out
}

// serverQuotaLeg gives a tenant a quota below one Query 1 and runs it
// twice: the first run's budget is clamped to the remaining quota (DNF at
// the clamp), the second finds the quota exhausted and is rejected.
func (h *Harness) serverQuotaLeg(quota float64) ServerQuotaResult {
	srv := predplace.NewServer(h.DB, predplace.ServerConfig{MaxConcurrent: 2})
	srv.SetTenantQuota("capped", quota)
	out := ServerQuotaResult{Quota: quota}
	res, err := srv.Query(context.Background(), "capped", benchQueries[0].sql, predplace.Migration)
	out.FirstDNF = err == nil && res.DNF
	_, err = srv.Query(context.Background(), "capped", benchQueries[0].sql, predplace.Migration)
	out.ThenRejected = errors.Is(err, predplace.ErrQuotaExceeded)
	return out
}

// JSON renders the benchmark as indented JSON (BENCH_server.json).
func (b *ServerBench) JSON() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// String renders the benchmark as an aligned table.
func (b *ServerBench) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "multi-session server bench: scale=%.3g iters=%d (Migration, caching off, serial intra-query)\n",
		b.Scale, b.Iters)
	fmt.Fprintf(&sb, "%-9s %8s %9s %9s %9s %9s %10s %9s\n",
		"sessions", "queries", "wall-ms", "qps", "p50-ms", "p99-ms", "plan-hit", "diverged")
	for _, leg := range b.Sessions {
		total := leg.PlanHits + leg.PlanMisses
		ratio := 0.0
		if total > 0 {
			ratio = float64(leg.PlanHits) / float64(total)
		}
		fmt.Fprintf(&sb, "%-9d %8d %9.1f %9.1f %9.2f %9.2f %9.0f%% %9d\n",
			leg.Sessions, leg.Queries, leg.WallMs, leg.QPS, leg.P50Ms, leg.P99Ms,
			100*ratio, leg.Diverged)
	}
	fmt.Fprintf(&sb, "shedding: burst=%d served=%d shed=%d unexpected=%d\n",
		b.Shed.Burst, b.Shed.Served, b.Shed.Shed, b.Shed.UnexpectedErrs)
	fmt.Fprintf(&sb, "quota: limit=%.0f first-dnf=%v then-rejected=%v\n",
		b.QuotaLeg.Quota, b.QuotaLeg.FirstDNF, b.QuotaLeg.ThenRejected)
	if b.Pass {
		sb.WriteString("PASS: concurrent sessions reproduced every single-session result exactly\n")
	} else {
		sb.WriteString("FAIL: divergence, missed plan-cache hits, or admission misbehavior\n")
	}
	return sb.String()
}
