// Package harness defines and runs the reproduction experiments: the
// benchmark queries reconstructed from the paper (Queries 1–5), one runner
// per table and figure of the evaluation, relative-cost reporting in the
// paper's style, and machine-checkable "shape" assertions (who wins, by
// roughly what factor) recorded into EXPERIMENTS.md.
package harness

import (
	"fmt"
	"strings"

	"predplace"
	"predplace/internal/expr"
)

// Harness owns a generated benchmark database and runs experiments on it.
type Harness struct {
	// Scale is the database scale factor (1.0 = the paper's ~110 MB).
	Scale float64
	// DB is the open database (all ten benchmark relations).
	DB *predplace.DB
}

// New builds the benchmark database at the given scale.
func New(scale float64) (*Harness, error) {
	if scale <= 0 {
		scale = 0.05
	}
	db, err := predplace.Open(predplace.Config{Scale: scale})
	if err != nil {
		return nil, err
	}
	// selective100 is Query 5's expensive, highly selective predicate
	// (100 random I/Os per call, selectivity 0.1).
	if err := db.RegisterFunc("selective100", 1, 100, 0.1, expr.BoolStub(0.1, 424242)); err != nil {
		return nil, err
	}
	return &Harness{Scale: scale, DB: db}, nil
}

// Report is one experiment's outcome.
type Report struct {
	// ID is the experiment identifier (e.g. "fig3").
	ID string
	// Title describes the paper artifact reproduced.
	Title string
	// Text is the printable report body.
	Text string
	// Metrics holds named numeric outcomes for programmatic checks.
	Metrics map[string]float64
	// Shape lists the paper's qualitative claims and whether they held.
	Shape []ShapeCheck
}

// ShapeCheck is one qualitative claim from the paper checked against our
// measurements.
type ShapeCheck struct {
	Claim  string
	Pass   bool
	Detail string
}

// Passed reports whether every shape check held.
func (r *Report) Passed() bool {
	for _, s := range r.Shape {
		if !s.Pass {
			return false
		}
	}
	return true
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n%s", r.ID, r.Title, r.Text)
	if len(r.Shape) > 0 {
		b.WriteString("shape checks:\n")
		for _, s := range r.Shape {
			mark := "PASS"
			if !s.Pass {
				mark = "FAIL"
			}
			fmt.Fprintf(&b, "  [%s] %s", mark, s.Claim)
			if s.Detail != "" {
				fmt.Fprintf(&b, " (%s)", s.Detail)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// comparison runs one SQL text under several algorithms, with a DNF budget
// derived from the best-known plan so that runaway plans (Figure 9's PullUp)
// abort instead of running forever, exactly as the paper reports "never
// completed".
type comparison struct {
	algos   []predplace.Algorithm
	results []*predplace.Result
}

// compare runs sql under the given algorithms. budgetFactor, when positive,
// caps each run's charged cost at budgetFactor × the cheapest observed so
// far (the first algorithm runs unbounded to establish the baseline).
func (h *Harness) compare(sql string, caching bool, budgetFactor float64,
	algos ...predplace.Algorithm) (*comparison, error) {
	h.DB.SetCaching(caching)
	defer h.DB.SetBudget(0)
	c := &comparison{algos: algos}
	best := 0.0
	for _, a := range algos {
		if budgetFactor > 0 && best > 0 {
			h.DB.SetBudget(budgetFactor * best)
		} else {
			h.DB.SetBudget(0)
		}
		r, err := h.DB.Query(sql, a)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", a, err)
		}
		c.results = append(c.results, r)
		if !r.DNF {
			charged := r.Stats.Charged()
			if best == 0 || charged < best {
				best = charged
			}
		}
	}
	return c, nil
}

// charged returns the charged cost of the named algorithm's run.
func (c *comparison) charged(a predplace.Algorithm) float64 {
	for i, x := range c.algos {
		if x == a {
			return c.results[i].Stats.Charged()
		}
	}
	return -1
}

// dnf reports whether the named algorithm's run was aborted.
func (c *comparison) dnf(a predplace.Algorithm) bool {
	for i, x := range c.algos {
		if x == a {
			return c.results[i].DNF
		}
	}
	return false
}

// bestCharged returns the minimum charged cost among completed runs.
func (c *comparison) bestCharged() float64 {
	best := -1.0
	for _, r := range c.results {
		if r.DNF {
			continue
		}
		if v := r.Stats.Charged(); best < 0 || v < best {
			best = v
		}
	}
	return best
}

// table renders the comparison in the paper's relative style.
func (c *comparison) table() string {
	return predplace.FormatComparison(c.algos, c.results)
}

// check builds a ShapeCheck from a condition.
func check(claim string, pass bool, detailFmt string, args ...interface{}) ShapeCheck {
	return ShapeCheck{Claim: claim, Pass: pass, Detail: fmt.Sprintf(detailFmt, args...)}
}

// fourAlgos are the algorithms the paper's bar charts compare.
var fourAlgos = []predplace.Algorithm{
	predplace.PushDown, predplace.PullUp, predplace.PullRank, predplace.Migration,
}

// RunAll executes every experiment in paper order.
func (h *Harness) RunAll() ([]*Report, error) {
	runners := []func() (*Report, error){
		h.Table1, h.Table2,
		h.Fig1PlanTrees,
		h.Fig3Query1, h.Fig4Query2, h.Fig5Query3,
		h.Fig6PlanTrees, h.Fig8Query4, h.Fig9Query5,
		h.Fig10Spectrum,
		h.PlanTime5Way, h.CachingAblation, h.Ablations, h.ScaleStability, h.ComplexSuite,
	}
	var out []*Report
	for _, run := range runners {
		r, err := run()
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Experiments maps experiment ids to runners.
func (h *Harness) Experiments() map[string]func() (*Report, error) {
	return map[string]func() (*Report, error){
		"table1":    h.Table1,
		"table2":    h.Table2,
		"fig1":      h.Fig1PlanTrees,
		"fig3":      h.Fig3Query1,
		"fig4":      h.Fig4Query2,
		"fig5":      h.Fig5Query3,
		"fig6":      h.Fig6PlanTrees,
		"fig8":      h.Fig8Query4,
		"fig9":      h.Fig9Query5,
		"fig10":     h.Fig10Spectrum,
		"plantime":  h.PlanTime5Way,
		"caching":   h.CachingAblation,
		"ablations": h.Ablations,
		"scaling":   h.ScaleStability,
		"complex":   h.ComplexSuite,
	}
}
