package harness

import (
	"fmt"
	"sort"
	"strings"

	"predplace"
)

// complexSuite is a set of TPC-D-shaped multi-join queries with expensive
// predicates — the paper's §5 lesson ("benchmarking is absolutely crucial to
// thoroughly debugging a query optimizer... complex query benchmarks such as
// TPC-D are critical debugging tools"). Each query runs under every
// algorithm; the suite asserts the paper's two debugging invariants: all
// plans compute the same answer, and Predicate Migration never does worse
// than the simpler heuristics.
var complexSuite = []struct {
	name string
	sql  string
}{
	{"star-2sel", `SELECT * FROM t1, t3, t10
		WHERE t1.ua1 = t10.ua1 AND t3.ua1 = t10.ua1
		AND costly100(t10.u20) AND costly10(t3.u10)`},
	{"chain-4way", `SELECT * FROM t1, t2, t3, t4
		WHERE t1.ua1 = t2.ua1 AND t2.ua1 = t3.ua1 AND t3.ua1 = t4.ua1
		AND costly100(t2.u20)`},
	{"dup-join-mixed", `SELECT * FROM t2, t4, t6
		WHERE t2.a10 = t4.a10 AND t4.ua1 = t6.ua1
		AND costly10(t4.u10) AND costly1(t6.u100) AND t2.u10 < 10`},
	{"cycle-extra-pred", `SELECT * FROM t1, t2, t3
		WHERE t1.ua1 = t2.ua1 AND t2.ua1 = t3.ua1 AND t1.a10 = t3.a10
		AND costly100(t3.u20)`},
	{"range-and-func", `SELECT * FROM t5, t10
		WHERE t5.ua1 = t10.ua1 AND t10.a1 < 500
		AND costly1000(t5.u100)`},
	{"two-expensive-same-table", `SELECT * FROM t3, t8
		WHERE t3.ua1 = t8.ua1
		AND costly1(t8.u10) AND costly100(t8.u20)`},
}

// ComplexSuite runs the suite and reports per-query relative costs.
func (h *Harness) ComplexSuite() (*Report, error) {
	algos := []predplace.Algorithm{
		predplace.PushDown, predplace.PullUp, predplace.PullRank,
		predplace.Migration, predplace.Exhaustive,
	}
	var b strings.Builder
	var shapes []ShapeCheck
	fmt.Fprintf(&b, "%-26s %-12s", "query", "rows")
	for _, a := range algos {
		fmt.Fprintf(&b, " %12s", shortName(a))
	}
	b.WriteByte('\n')

	for _, cq := range complexSuite {
		h.DB.SetCaching(false)
		results, err := h.DB.CompareAll(cq.sql, algos...)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cq.name, err)
		}
		best := -1.0
		rowCounts := map[int]bool{}
		for _, r := range results {
			rowCounts[r.Stats.Rows] = true
			if c := r.Stats.Charged(); best < 0 || c < best {
				best = c
			}
		}
		fmt.Fprintf(&b, "%-26s %-12d", cq.name, results[0].Stats.Rows)
		var mg, ex float64
		for i, r := range results {
			fmt.Fprintf(&b, " %11.2fx", r.Stats.Charged()/best)
			switch algos[i] {
			case predplace.Migration:
				mg = r.Stats.Charged()
			case predplace.Exhaustive:
				ex = r.Stats.Charged()
			default:
				// Only the Migration-vs-Exhaustive gap is asserted below.
			}
		}
		b.WriteByte('\n')
		shapes = append(shapes,
			check(cq.name+": every algorithm computes the same answer",
				len(rowCounts) == 1, "%v row counts", setKeys(rowCounts)),
			check(cq.name+": Migration within 10% of the best heuristic (estimation noise allowance)",
				mg <= best*1.10, "migration=%.0f best=%.0f", mg, best),
			check(cq.name+": Migration within 5% of the exhaustive oracle",
				mg <= ex*1.05, "migration=%.0f exhaustive=%.0f", mg, ex),
		)
	}
	return &Report{
		ID:    "complex",
		Title: "Complex-query debugging suite (paper §5's TPC-D lesson)",
		Text:  b.String(),
		Shape: shapes,
	}, nil
}

func shortName(a predplace.Algorithm) string {
	s := a.String()
	if len(s) > 12 {
		return s[:12]
	}
	return s
}

func setKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
