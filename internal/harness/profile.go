package harness

// The profiling benchmark: each benchmark query (Queries 1–5 plus the §3.1
// Figure 1 example) runs twice on the same database — once with per-operator
// profiling off, once on — comparing result sets and charged cost, which
// must match bit for bit (profiling is observational: wall time is never
// charged). The profiled run's per-operator tree is flattened into records
// pairing the optimizer's estimates with measured actuals, so the JSON
// artifact (BENCH_profile.json) doubles as the est-vs-actual feedback data
// the paper used to debug its optimizer.

import (
	"encoding/json"
	"fmt"
	"strings"

	"predplace"
)

// profileQueries is the profiling workload: the shared figure queries plus
// Fig1Query, which runs with predicate caching on so the profile exercises
// the cache-hit/miss counters.
var profileQueries = []struct {
	name    string
	sql     string
	caching bool
}{
	{"query1", Query1, false},
	{"query2", Query2, false},
	{"query3", Query3, false},
	{"query4", Query4, false},
	{"query5", Query5, false},
	{"fig1", Fig1Query, true},
}

// ProfileOpRecord is one plan operator's est-vs-actual line, flattened from
// the OpProfile tree in pre-order (Depth reconstructs the shape).
type ProfileOpRecord struct {
	Depth       int     `json:"depth"`
	Op          string  `json:"op"`
	EstRows     float64 `json:"est_rows"`
	ActRows     int64   `json:"actual_rows"`
	ErrFactor   float64 `json:"err_factor"`
	EstCost     float64 `json:"est_cost"`
	WallMs      float64 `json:"wall_ms"`
	IOTotal     int64   `json:"io_total"`
	PredEvals   int64   `json:"pred_evals,omitempty"`
	Invocations int64   `json:"invocations,omitempty"`
	CacheHits   int64   `json:"cache_hits,omitempty"`
	CacheMisses int64   `json:"cache_misses,omitempty"`
}

// ProfileQueryResult is one query's profiled run compared against its
// unprofiled twin.
type ProfileQueryResult struct {
	Query   string  `json:"query"`
	Caching bool    `json:"caching"`
	PlainMs float64 `json:"plain_ms"`
	ProfMs  float64 `json:"profiled_ms"`
	Charged float64 `json:"charged"`
	Rows    int     `json:"rows"`
	// RowsEqual and ChargedEqual: the profiled run returned the same result
	// set and charged exactly the same cost as the unprofiled run.
	RowsEqual    bool `json:"rows_equal"`
	ChargedEqual bool `json:"charged_equal"`
	// MaxErrFactor is the worst cardinality-estimation error in the tree.
	MaxErrFactor float64           `json:"max_err_factor"`
	MaxErrOp     string            `json:"max_err_op"`
	Operators    []ProfileOpRecord `json:"operators"`
}

// ProfileBench is the full profiling run over the six-query workload.
type ProfileBench struct {
	Scale   float64              `json:"scale"`
	Iters   int                  `json:"iters"`
	Queries []ProfileQueryResult `json:"queries"`
	// Pass is true when every query's profiled run matched its unprofiled
	// twin exactly and every operator reported an actual row count.
	Pass bool `json:"pass"`
}

// flattenProfile walks the OpProfile tree pre-order into flat records.
func flattenProfile(p *predplace.OpProfile, depth int, out []ProfileOpRecord) []ProfileOpRecord {
	out = append(out, ProfileOpRecord{
		Depth:       depth,
		Op:          p.Op,
		EstRows:     p.EstRows,
		ActRows:     p.ActRows,
		ErrFactor:   p.ErrFactor,
		EstCost:     p.EstCost,
		WallMs:      float64(p.WallNs) / 1e6,
		IOTotal:     p.IO.Total(),
		PredEvals:   p.PredEvals,
		Invocations: p.Invocations,
		CacheHits:   p.CacheHits,
		CacheMisses: p.CacheMisses,
	})
	for _, c := range p.Children {
		out = flattenProfile(c, depth+1, out)
	}
	return out
}

// RunProfileBench runs the six-query workload under Predicate Migration,
// serially, each query once unprofiled and once profiled, asserting the
// profiled run is observationally identical (same rows, same charged cost)
// and that every operator has a measured actual row count. Timings are
// best-of-iters.
func (h *Harness) RunProfileBench(iters int) (*ProfileBench, error) {
	if iters < 1 {
		iters = 1
	}
	h.DB.SetParallelism(1)
	h.DB.SetBudget(0)
	defer h.DB.SetProfile(false)
	defer h.DB.SetCaching(false)
	bench := &ProfileBench{Scale: h.Scale, Iters: iters, Pass: true}
	for _, q := range profileQueries {
		h.DB.SetCaching(q.caching)

		h.DB.SetProfile(false)
		plain, plainMs, _, err := h.measure(q.sql, iters)
		if err != nil {
			return nil, fmt.Errorf("%s plain: %w", q.name, err)
		}

		h.DB.SetProfile(true)
		prof, profMs, _, err := h.measure(q.sql, iters)
		h.DB.SetProfile(false)
		if err != nil {
			return nil, fmt.Errorf("%s profiled: %w", q.name, err)
		}
		if prof.Profile == nil {
			return nil, fmt.Errorf("%s: profiled run returned no profile", q.name)
		}

		r := ProfileQueryResult{
			Query:        q.name,
			Caching:      q.caching,
			PlainMs:      plainMs,
			ProfMs:       profMs,
			Charged:      plain.Stats.Charged(),
			Rows:         plain.Stats.Rows,
			RowsEqual:    equalStrings(canonicalRows(plain), canonicalRows(prof)),
			ChargedEqual: plain.Stats.Charged() == prof.Stats.Charged(),
			Operators:    flattenProfile(prof.Profile, 0, nil),
		}
		r.MaxErrFactor, r.MaxErrOp = prof.Profile.MaxErr()
		if !r.RowsEqual || !r.ChargedEqual {
			bench.Pass = false
		}
		bench.Queries = append(bench.Queries, r)
	}
	return bench, nil
}

// JSON renders the benchmark as indented JSON (BENCH_profile.json).
func (b *ProfileBench) JSON() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// String renders the benchmark: one header per query, one line per operator.
func (b *ProfileBench) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "profiling bench: scale=%.3g iters=%d (Migration, serial)\n", b.Scale, b.Iters)
	for _, q := range b.Queries {
		verdict := "OK"
		if !q.RowsEqual {
			verdict = "ROWS!"
		} else if !q.ChargedEqual {
			verdict = "COST!"
		}
		fmt.Fprintf(&sb, "%s: plain=%.1fms profiled=%.1fms charged=%.0f rows=%d maxErr=×%.2f (%s) %s\n",
			q.Query, q.PlainMs, q.ProfMs, q.Charged, q.Rows, q.MaxErrFactor, q.MaxErrOp, verdict)
		for _, op := range q.Operators {
			fmt.Fprintf(&sb, "  %s%-40s est=%.0f actual=%d (×%.2f) wall=%.2fms io=%d",
				strings.Repeat("  ", op.Depth), op.Op, op.EstRows, op.ActRows, op.ErrFactor,
				op.WallMs, op.IOTotal)
			if op.Invocations > 0 || op.CacheHits > 0 || op.CacheMisses > 0 {
				fmt.Fprintf(&sb, " inv=%d cache=%d/%d", op.Invocations,
					op.CacheHits, op.CacheHits+op.CacheMisses)
			}
			sb.WriteByte('\n')
		}
	}
	if b.Pass {
		sb.WriteString("PASS: profiled runs match unprofiled results and charged costs exactly\n")
	} else {
		sb.WriteString("FAIL: profiling changed results or charged costs\n")
	}
	return sb.String()
}
