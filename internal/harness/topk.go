package harness

// The top-k benchmark: ORDER BY … LIMIT k queries run with top-k execution
// off (facade sort over the full result) and on (bounded-heap TopK or
// early-terminating index-order Limit), tuple-at-a-time and batched, serial
// and workers-way parallel, over a k sweep. Top-k execution must never
// change the answer — every cell's on-rows must equal its off-rows in
// delivered order — and the flagship ordered-index query must cut the
// charged cost at least 2×: the point of the exercise is that the limit
// reaches the scan, not just the sort.

import (
	"encoding/json"
	"fmt"
	"strings"

	"predplace"
)

// topkQueries are the benchmark shapes. The flagship orders by the unique
// indexed key a1 — with TopK on, the plan is an early-terminating Limit over
// an index-order scan, so the expensive predicate runs only until k rows
// survive. The heap query orders by the unique unindexed key ua1, so the
// whole input is consumed through a k-bounded heap instead of a full sort.
var topkQueries = []struct {
	name string
	sql  string // %d is the LIMIT
	// flagship cells gate Pass on a ≥ 2× charged-cost reduction.
	flagship bool
}{
	{"ordered", "SELECT * FROM t1 WHERE costly100(t1.u20) ORDER BY t1.a1 LIMIT %d", true},
	{"heap", "SELECT * FROM t1 WHERE costly100(t1.u20) ORDER BY t1.ua1 LIMIT %d", false},
}

// topkKs is the LIMIT sweep.
var topkKs = []int{1, 10, 100, 1000}

// TopKCell compares one (executor mode, parallelism) configuration's
// top-k-off and top-k-on runs of a query at one k.
type TopKCell struct {
	// Mode is "tuple" (BatchSize 1) or "batch" (default batch width).
	Mode    string `json:"mode"`
	Workers int    `json:"workers"`
	// OffMs and OnMs are best-of-iters wall times; Speedup is their ratio.
	OffMs   float64 `json:"off_ms"`
	OnMs    float64 `json:"on_ms"`
	Speedup float64 `json:"speedup"`
	// OffCharged and OnCharged are the deterministic charged costs;
	// CostRatio is off/on (> 1 means top-k execution did less work).
	OffCharged float64 `json:"off_charged"`
	OnCharged  float64 `json:"on_charged"`
	CostRatio  float64 `json:"cost_ratio"`
	// RowsEqual: the on-run delivered exactly the off-run's rows, in order
	// (ORDER BY output is deterministic, ties included).
	RowsEqual bool `json:"rows_equal"`
}

// TopKQueryResult aggregates one (query, k)'s cells.
type TopKQueryResult struct {
	Query string     `json:"query"`
	K     int        `json:"k"`
	Rows  int        `json:"rows"`
	Cells []TopKCell `json:"cells"`
}

// TopKBench is the full top-k-off-vs-on comparison.
type TopKBench struct {
	Scale   float64           `json:"scale"`
	Workers int               `json:"workers"`
	Iters   int               `json:"iters"`
	Queries []TopKQueryResult `json:"queries"`
	// BestCostRatio is the largest off/on charged-cost ratio in any cell;
	// FlagshipRatio is the serial tuple-mode ratio of the ordered-index
	// query at k=10 (the acceptance headline).
	BestCostRatio float64 `json:"best_cost_ratio"`
	FlagshipRatio float64 `json:"flagship_ratio"`
	// Pass is true when every cell's rows matched and every flagship cell
	// cut the charged cost at least 2×.
	Pass bool `json:"pass"`
}

// topkOrderedRows renders a result set order-sensitively: both modes sort by
// the ORDER BY key with the full projected row as tie-break, so delivered
// order is deterministic and must match exactly.
func topkOrderedRows(res *predplace.Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		out = append(out, strings.Join(cells, "|"))
	}
	return out
}

// RunTopKBench runs the ORDER BY/LIMIT queries with top-k execution off and
// on across tuple/batch × serial/parallel configurations and k ∈ {1, 10,
// 100, 1000} (Migration plans, caching off), comparing delivered rows, wall
// time, and charged cost.
func (h *Harness) RunTopKBench(workers, iters int) (*TopKBench, error) {
	if iters < 1 {
		iters = 1
	}
	if workers < 2 {
		workers = 2
	}
	h.DB.SetCaching(false)
	h.DB.SetBudget(0)
	defer func() {
		h.DB.SetTopK(false)
		h.DB.SetBatchSize(0)
		h.DB.SetParallelism(1)
	}()
	bench := &TopKBench{Scale: h.Scale, Workers: workers, Iters: iters, Pass: true}
	modes := []struct {
		name  string
		batch int
	}{
		{"tuple", 1},
		{"batch", 0},
	}
	for _, q := range topkQueries {
		for _, k := range topkKs {
			sql := fmt.Sprintf(q.sql, k)
			qr := TopKQueryResult{Query: q.name, K: k}
			for _, m := range modes {
				for _, w := range []int{1, workers} {
					h.DB.SetBatchSize(m.batch)
					h.DB.SetParallelism(w)
					h.DB.SetTopK(false)
					off, offMs, _, err := h.measure(sql, iters)
					if err != nil {
						return nil, fmt.Errorf("%s k=%d %s P=%d topk off: %w", q.name, k, m.name, w, err)
					}
					h.DB.SetTopK(true)
					on, onMs, _, err := h.measure(sql, iters)
					if err != nil {
						return nil, fmt.Errorf("%s k=%d %s P=%d topk on: %w", q.name, k, m.name, w, err)
					}
					cell := TopKCell{
						Mode: m.name, Workers: w,
						OffMs: offMs, OnMs: onMs,
						OffCharged: off.Stats.Charged(), OnCharged: on.Stats.Charged(),
						RowsEqual: equalStrings(topkOrderedRows(off), topkOrderedRows(on)),
					}
					if onMs > 0 {
						cell.Speedup = offMs / onMs
					}
					if cell.OnCharged > 0 {
						cell.CostRatio = cell.OffCharged / cell.OnCharged
					}
					if !cell.RowsEqual {
						bench.Pass = false
					}
					if q.flagship && k == 10 && cell.CostRatio < 2 {
						bench.Pass = false
					}
					if q.flagship && k == 10 && m.name == "tuple" && w == 1 {
						bench.FlagshipRatio = cell.CostRatio
					}
					if cell.CostRatio > bench.BestCostRatio {
						bench.BestCostRatio = cell.CostRatio
					}
					qr.Rows = len(off.Rows)
					qr.Cells = append(qr.Cells, cell)
				}
			}
			bench.Queries = append(bench.Queries, qr)
		}
	}
	return bench, nil
}

// JSON renders the benchmark as indented JSON (BENCH_topk.json).
func (b *TopKBench) JSON() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// String renders the benchmark as an aligned table.
func (b *TopKBench) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "top-k bench: scale=%.3g workers=%d iters=%d (Migration, caching off)\n",
		b.Scale, b.Workers, b.Iters)
	fmt.Fprintf(&sb, "%-8s %5s %-6s %3s %9s %9s %8s %11s %11s %7s %7s\n",
		"query", "k", "mode", "P", "off-ms", "on-ms", "speedup", "off-cost", "on-cost", "ratio", "verdict")
	for _, q := range b.Queries {
		for _, c := range q.Cells {
			verdict := "OK"
			if !c.RowsEqual {
				verdict = "ROWS!"
			}
			fmt.Fprintf(&sb, "%-8s %5d %-6s %3d %9.2f %9.2f %7.2fx %11.0f %11.0f %6.1fx %7s\n",
				q.Query, q.K, c.Mode, c.Workers, c.OffMs, c.OnMs, c.Speedup,
				c.OffCharged, c.OnCharged, c.CostRatio, verdict)
		}
	}
	if b.Pass {
		fmt.Fprintf(&sb, "PASS: top-k rows identical everywhere; flagship charged-cost reduction %.1fx (best %.1fx)\n",
			b.FlagshipRatio, b.BestCostRatio)
	} else {
		sb.WriteString("FAIL: top-k execution changed a result set or missed the 2x flagship reduction\n")
	}
	return sb.String()
}
