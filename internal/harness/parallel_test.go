package harness

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunParallelBench(t *testing.T) {
	h, err := NewParallel(0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	bench, err := h.RunParallelBench(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(bench.Queries) != 5 {
		t.Fatalf("got %d query results, want 5", len(bench.Queries))
	}
	if !bench.Pass {
		t.Fatalf("parallel bench diverged from serial:\n%s", bench)
	}
	for _, q := range bench.Queries {
		if !q.ChargedEqual {
			t.Errorf("%s: charged cost diverged (serial %v, parallel %v)",
				q.Query, q.SerialCharged, q.ParallelCharged)
		}
		if !q.RowsEqual {
			t.Errorf("%s: result rows diverged", q.Query)
		}
	}
	data, err := bench.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var round ParallelBench
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("BENCH_parallel.json payload does not round-trip: %v", err)
	}
	if round.Workers != 3 || len(round.Queries) != 5 {
		t.Fatalf("round-trip lost fields: %+v", round)
	}
	if !strings.Contains(bench.String(), "PASS") {
		t.Fatalf("text rendering missing verdict:\n%s", bench)
	}
}
