package harness

import (
	"strings"
	"testing"
)

// sharedHarness is built once; experiments are read-only over the database.
var sharedHarness *Harness

func getHarness(t *testing.T) *Harness {
	t.Helper()
	if sharedHarness == nil {
		h, err := New(0.02)
		if err != nil {
			t.Fatal(err)
		}
		sharedHarness = h
	}
	return sharedHarness
}

func runAndCheck(t *testing.T, run func() (*Report, error)) *Report {
	t.Helper()
	rep, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("shape checks failed:\n%s", rep)
	}
	if rep.Text == "" || rep.ID == "" || rep.Title == "" {
		t.Fatal("incomplete report")
	}
	return rep
}

func TestTable1(t *testing.T) {
	rep := runAndCheck(t, getHarness(t).Table1)
	for _, name := range []string{"PushDown+", "PullUp", "PullRank", "Predicate Migration", "LDL", "Exhaustive"} {
		if !strings.Contains(rep.Text, name) {
			t.Fatalf("Table 1 missing %s:\n%s", name, rep.Text)
		}
	}
}

func TestTable2(t *testing.T) {
	rep := runAndCheck(t, getHarness(t).Table2)
	for n := 1; n <= 10; n++ {
		if rep.Metrics["tuples_t"+string(rune('0'+n%10))] < 0 {
			t.Fatal("missing table metric")
		}
	}
	if !strings.Contains(rep.Text, "t10") {
		t.Fatalf("Table 2 missing t10:\n%s", rep.Text)
	}
}

func TestFig1(t *testing.T)  { runAndCheck(t, getHarness(t).Fig1PlanTrees) }
func TestFig3(t *testing.T)  { runAndCheck(t, getHarness(t).Fig3Query1) }
func TestFig4(t *testing.T)  { runAndCheck(t, getHarness(t).Fig4Query2) }
func TestFig5(t *testing.T)  { runAndCheck(t, getHarness(t).Fig5Query3) }
func TestFig6(t *testing.T)  { runAndCheck(t, getHarness(t).Fig6PlanTrees) }
func TestFig8(t *testing.T)  { runAndCheck(t, getHarness(t).Fig8Query4) }
func TestFig9(t *testing.T)  { runAndCheck(t, getHarness(t).Fig9Query5) }
func TestFig10(t *testing.T) { runAndCheck(t, getHarness(t).Fig10Spectrum) }

func TestPlanTime(t *testing.T) { runAndCheck(t, getHarness(t).PlanTime5Way) }
func TestCaching(t *testing.T)  { runAndCheck(t, getHarness(t).CachingAblation) }

func TestExperimentIndexComplete(t *testing.T) {
	h := getHarness(t)
	exps := h.Experiments()
	for _, id := range []string{"table1", "table2", "fig1", "fig3", "fig4", "fig5", "fig6", "fig8", "fig9", "fig10", "plantime", "caching"} {
		if exps[id] == nil {
			t.Fatalf("experiment %s missing", id)
		}
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{ID: "x", Title: "T", Text: "body\n",
		Shape: []ShapeCheck{{Claim: "c", Pass: true}, {Claim: "d", Pass: false, Detail: "why"}}}
	s := rep.String()
	for _, want := range []string{"== x: T ==", "[PASS] c", "[FAIL] d (why)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
	if rep.Passed() {
		t.Fatal("Passed should be false")
	}
}

func TestAblations(t *testing.T) { runAndCheck(t, getHarness(t).Ablations) }

func TestScaleStability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds three databases")
	}
	runAndCheck(t, getHarness(t).ScaleStability)
}

func TestComplexSuite(t *testing.T) { runAndCheck(t, getHarness(t).ComplexSuite) }
