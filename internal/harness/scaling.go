package harness

import (
	"fmt"
	"strings"

	"predplace"
)

// ScaleStability verifies the methodological claim EXPERIMENTS.md relies on:
// the *relative* costs between placement algorithms are stable across
// database scales, so shapes measured at test scale transfer to the paper's
// full size. It runs Query 1 (the Figure 3 contrast) at three scales and
// compares the PushDown/Migration ratio.
func (h *Harness) ScaleStability() (*Report, error) {
	scales := []float64{0.01, 0.02, 0.05}
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %14s %14s %8s\n", "scale", "pushdown", "migration", "ratio")
	var ratios []float64
	for _, sc := range scales {
		db, err := predplace.Open(predplace.Config{Scale: sc, Tables: []int{3, 9}})
		if err != nil {
			return nil, err
		}
		pd, err := db.Query(Query1, predplace.PushDown)
		if err != nil {
			return nil, err
		}
		mg, err := db.Query(Query1, predplace.Migration)
		if err != nil {
			return nil, err
		}
		ratio := pd.Stats.Charged() / mg.Stats.Charged()
		ratios = append(ratios, ratio)
		fmt.Fprintf(&b, "%8.3f %14.0f %14.0f %7.2fx\n",
			sc, pd.Stats.Charged(), mg.Stats.Charged(), ratio)
	}
	rep := &Report{
		ID:    "scaling",
		Title: "Scale stability of relative results (methodology check)",
		Text:  b.String(),
	}
	minR, maxR := ratios[0], ratios[0]
	for _, r := range ratios[1:] {
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	rep.Shape = append(rep.Shape, check(
		"the PushDown/Migration ratio varies < 15% across a 5x scale range",
		maxR/minR < 1.15, "min=%.2f max=%.2f", minR, maxR))
	return rep, nil
}
