package harness

// The predicate-transfer benchmark: Queries 3–5 (the join queries whose
// tables prune each other through join-key filters) run with transfer off
// and on, tuple-at-a-time and batched, serial and workers-way parallel, on
// the same database (Migration plans, caching off). Transfer must never
// change the answer — every cell's on-rows must equal its off-rows — and
// the report pairs wall time with charged cost, rows pruned, and the Bloom
// filters' estimated (and, from one profiled run, actual) false-positive
// rate, so a wall-clock win that the honest cost accounting does not
// support is visible as such.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"predplace"
)

// transferQueries are the benchmark's join queries: Query 3 (a10 join),
// Query 4 (three-way ua1 chain), Query 5 (four tables, two key classes).
var transferQueries = []struct {
	name string
	sql  string
}{
	{"query3", Query3},
	{"query4", Query4},
	{"query5", Query5},
}

// transferCanonRows canonicalizes a result set independent of both row and
// column order: transfer-adjusted cardinalities may legitimately change the
// join order (and with it the output column order), and parallel runs do
// not preserve row order.
func transferCanonRows(res *predplace.Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		sort.Strings(cells)
		out = append(out, strings.Join(cells, "|"))
	}
	sort.Strings(out)
	return out
}

// TransferCell compares one (executor mode, parallelism) configuration's
// transfer-off and transfer-on runs of a query.
type TransferCell struct {
	// Mode is "tuple" (BatchSize 1) or "batch" (default batch width).
	Mode    string `json:"mode"`
	Workers int    `json:"workers"`
	// OffMs and OnMs are best-of-iters wall times; Speedup is their ratio.
	OffMs   float64 `json:"off_ms"`
	OnMs    float64 `json:"on_ms"`
	Speedup float64 `json:"speedup"`
	// OffCharged and OnCharged are the deterministic charged costs. OnCharged
	// includes the prepass's build and probe charges — transfer is never free.
	OffCharged float64 `json:"off_charged"`
	OnCharged  float64 `json:"on_charged"`
	// RowsPruned counts main-scan rows the received filters rejected.
	RowsPruned int64 `json:"rows_pruned"`
	// RowsEqual: the on-run's result multiset equals the off-run's.
	RowsEqual bool `json:"rows_equal"`
}

// TransferQueryResult aggregates one query's cells plus its filter quality
// from a single profiled run.
type TransferQueryResult struct {
	Query string         `json:"query"`
	Rows  int            `json:"rows"`
	Cells []TransferCell `json:"cells"`
	// FPEst is the filters' analytic false-positive estimate and FPActual
	// the measured rate from one profiled run (-1 when no non-member was
	// probed).
	FPEst    float64 `json:"fp_rate_est"`
	FPActual float64 `json:"fp_rate_actual"`
}

// TransferBench is the full transfer-off-vs-on comparison over Queries 3–5.
type TransferBench struct {
	Scale   float64               `json:"scale"`
	Workers int                   `json:"workers"`
	Iters   int                   `json:"iters"`
	Queries []TransferQueryResult `json:"queries"`
	// BestSpeedup is the largest off/on wall-time ratio in any cell.
	BestSpeedup float64 `json:"best_speedup"`
	// Pass is true when every cell's transfer-on rows matched transfer-off.
	Pass bool `json:"pass"`
}

// RunTransferBench runs Queries 3–5 with predicate transfer off and on
// across tuple/batch × serial/parallel configurations (Migration plans,
// caching off), comparing result sets, wall time, and charged cost.
func (h *Harness) RunTransferBench(workers, iters int) (*TransferBench, error) {
	if iters < 1 {
		iters = 1
	}
	if workers < 2 {
		workers = 2
	}
	h.DB.SetCaching(false)
	h.DB.SetBudget(0)
	defer func() {
		h.DB.SetTransfer(false)
		h.DB.SetBatchSize(0)
		h.DB.SetParallelism(1)
	}()
	bench := &TransferBench{Scale: h.Scale, Workers: workers, Iters: iters, Pass: true}
	modes := []struct {
		name  string
		batch int
	}{
		{"tuple", 1},
		{"batch", 0},
	}
	for _, q := range transferQueries {
		qr := TransferQueryResult{Query: q.name, FPEst: -1, FPActual: -1}
		for _, m := range modes {
			for _, w := range []int{1, workers} {
				h.DB.SetBatchSize(m.batch)
				h.DB.SetParallelism(w)
				// Each measured run starts from a cold pool: the preceding
				// transfer-on run may have executed a different join order,
				// and its leftover pages would make this run's physical I/O
				// (and charged cost) depend on cell sequencing.
				h.DB.SetTransfer(false)
				if err := h.DB.EvictPool(); err != nil {
					return nil, err
				}
				off, offMs, _, err := h.measure(q.sql, iters)
				if err != nil {
					return nil, fmt.Errorf("%s %s P=%d transfer off: %w", q.name, m.name, w, err)
				}
				h.DB.SetTransfer(true)
				if err := h.DB.EvictPool(); err != nil {
					return nil, err
				}
				on, onMs, _, err := h.measure(q.sql, iters)
				if err != nil {
					return nil, fmt.Errorf("%s %s P=%d transfer on: %w", q.name, m.name, w, err)
				}
				cell := TransferCell{
					Mode: m.name, Workers: w,
					OffMs: offMs, OnMs: onMs,
					OffCharged: off.Stats.Charged(), OnCharged: on.Stats.Charged(),
					RowsEqual: equalStrings(transferCanonRows(off), transferCanonRows(on)),
				}
				if onMs > 0 {
					cell.Speedup = offMs / onMs
				}
				if ts := on.Stats.Transfer; ts != nil {
					cell.RowsPruned = ts.Pruned
				}
				if !cell.RowsEqual {
					bench.Pass = false
				}
				if cell.Speedup > bench.BestSpeedup {
					bench.BestSpeedup = cell.Speedup
				}
				qr.Rows = off.Stats.Rows
				qr.Cells = append(qr.Cells, cell)
			}
		}
		// One profiled serial run measures the filters' actual FP rate
		// (profiling tracks exact key sets; timing cells stay unprofiled).
		h.DB.SetBatchSize(0)
		h.DB.SetParallelism(1)
		h.DB.SetTransfer(true)
		h.DB.SetProfile(true)
		prof, err := h.DB.Query(q.sql, predplace.Migration)
		h.DB.SetProfile(false)
		if err != nil {
			return nil, fmt.Errorf("%s profiled transfer run: %w", q.name, err)
		}
		if ts := prof.Stats.Transfer; ts != nil {
			qr.FPEst, qr.FPActual = ts.FPEst, ts.FPActual
		}
		bench.Queries = append(bench.Queries, qr)
	}
	return bench, nil
}

// JSON renders the benchmark as indented JSON (BENCH_transfer.json).
func (b *TransferBench) JSON() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// String renders the benchmark as an aligned table.
func (b *TransferBench) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "predicate transfer bench: scale=%.3g workers=%d iters=%d (Migration, caching off)\n",
		b.Scale, b.Workers, b.Iters)
	fmt.Fprintf(&sb, "%-8s %-6s %3s %9s %9s %8s %11s %11s %8s %7s\n",
		"query", "mode", "P", "off-ms", "on-ms", "speedup", "off-cost", "on-cost", "pruned", "verdict")
	for _, q := range b.Queries {
		for _, c := range q.Cells {
			verdict := "OK"
			if !c.RowsEqual {
				verdict = "ROWS!"
			}
			fmt.Fprintf(&sb, "%-8s %-6s %3d %9.1f %9.1f %7.2fx %11.0f %11.0f %8d %7s\n",
				q.Query, c.Mode, c.Workers, c.OffMs, c.OnMs, c.Speedup,
				c.OffCharged, c.OnCharged, c.RowsPruned, verdict)
		}
		if q.FPActual >= 0 {
			fmt.Fprintf(&sb, "%-8s filters: fp-actual=%.4f fp-est=%.4f rows=%d\n",
				q.Query, q.FPActual, q.FPEst, q.Rows)
		}
	}
	if b.Pass {
		fmt.Fprintf(&sb, "PASS: transfer-on results identical to transfer-off everywhere (best speedup %.2fx)\n",
			b.BestSpeedup)
	} else {
		sb.WriteString("FAIL: predicate transfer changed a result set\n")
	}
	return sb.String()
}
