package harness

import (
	"strings"
	"testing"

	"predplace"
)

// goldenPlans pins the exact plans the optimizer chooses for the benchmark
// queries at scale 0.02 — a regression net over join-order, method, and
// placement decisions (the enumerators break equal-cost ties
// deterministically, so these are stable).
var goldenPlans = []struct {
	name string
	sql  string
	algo predplace.Algorithm
	plan string
}{
	{"Query1/PushDown", Query1, predplace.PushDown,
		`HashJoin on t3.ua1 = t9.ua1  (card=300 cost=180071)
  Filter* costly100(t9.u20) (cost=100.0 sel=0.500)  (card=900 cost=180024)
    SeqScan t9  (card=1800 cost=24)
  SeqScan t3  (card=600 cost=8)
`},
	{"Query1/Migration", Query1, predplace.Migration,
		`Filter* costly100(t9.u20) (cost=100.0 sel=0.500)  (card=300 cost=60094)
  HashJoin on t3.ua1 = t9.ua1  (card=600 cost=94)
    SeqScan t9  (card=1800 cost=24)
    SeqScan t3  (card=600 cost=8)
`},
	{"Query2/Migration", Query2, predplace.Migration,
		`HashJoin on t10.ua1 = t9.ua1  (card=900 cost=180125)
  Filter* costly100(t9.u20) (cost=100.0 sel=0.500)  (card=900 cost=180024)
    SeqScan t9  (card=1800 cost=24)
  SeqScan t10  (card=2000 cost=26)
`},
	{"Query3/Migration", Query3, predplace.Migration,
		`HashJoin on t3.a10 = t10.a10  (card=3000 cost=60094)
  SeqScan t10  (card=2000 cost=26)
  Filter* costly100(t3.ua1) (cost=100.0 sel=0.500)  (card=300 cost=60008)
    SeqScan t3  (card=600 cost=8)
`},
	{"Query4/Migration", Query4, predplace.Migration,
		`Filter* costly100(t3.u20) (cost=100.0 sel=0.500)  (card=30 cost=6110)
  MergeJoin on t3.ua1 = t10.ua1  (card=60 cost=110)
    MergeJoin on t10.ua1 = t1.ua1  (card=200 cost=86)
      SeqScan t10  (card=2000 cost=26)
      SeqScan t1  (card=200 cost=3)
    SeqScan t3  (card=600 cost=8)
`},
}

func TestGoldenPlans(t *testing.T) {
	h := getHarness(t) // scale 0.02
	for _, g := range goldenPlans {
		got, err := h.DB.Explain(g.sql, g.algo)
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		if got != g.plan {
			t.Errorf("%s plan changed:\n--- got ---\n%s--- want ---\n%s", g.name, got, g.plan)
		}
	}
}

func TestGoldenPlansDeterministic(t *testing.T) {
	// Planning the same query repeatedly must yield byte-identical plans
	// (equal-cost ties are broken deterministically).
	h := getHarness(t)
	for trial := 0; trial < 5; trial++ {
		got, err := h.DB.Explain(Query1, predplace.Migration)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(got, "Filter* costly100") {
			t.Fatalf("unexpected plan:\n%s", got)
		}
		if got != goldenPlans[1].plan {
			t.Fatalf("plan flapped on trial %d:\n%s", trial, got)
		}
	}
}
