package harness

// The estimate-error benchmark: how much does a placement algorithm's charged
// cost degrade when the optimizer's selectivity estimate for an expensive
// predicate is wrong by a factor of e — and does closing the feedback loop
// repair it? A zero-cost stub predicate fbsel (true selectivity fixed, seeded
// evaluation) is re-registered with a declared selectivity of truth/e and
// truth×e for each error factor e, and PushDown, Migration, and Robust run
// the same join query under each misdeclaration. The stub's evaluation never
// changes, so every run must return the identical result multiset; only the
// chosen join strategy — and with it the charged cost — may move. A final
// leg turns Config.Feedback on and runs the worst misdeclaration twice: the
// first run harvests the observed selectivity, promotion refreshes the
// function's metadata and bumps the catalog version, and the second run must
// re-plan onto the cheaper strategy.

import (
	"encoding/json"
	"fmt"
	"strings"

	"predplace"
	"predplace/internal/cost"
	"predplace/internal/expr"
)

const (
	// fbTrueSel is fbsel's actual selectivity: chosen so the truth-optimal
	// join order differs from the one chosen under a 4× underestimate (the
	// order flip sits at declared selectivity 0.1, safely between
	// 0.3/2 = 0.15 and 0.3/4 = 0.075).
	fbTrueSel = 0.3
	// fbSeed fixes the stub's per-value coin flips, making every run's result
	// multiset identical regardless of the declared selectivity.
	fbSeed = 20260807
	// fbJoinCost and fbJoinSel are the expensive join predicate's accurate
	// metadata: its per-pair invocation charge is what the wrong join order
	// pays for.
	fbJoinCost = 5.0
	fbJoinSel  = 0.3
	fbJoinSeed = 424242321
	// fbRobustE is the Robust error-interval half-width the bench plans with.
	fbRobustE = 4.0
)

// FeedbackQuery hinges on fbsel(t3.ua1)'s declared selectivity s: the a10
// equijoin expands t3's survivors ×10/3 (est output 2000·s·scale against
// |t1| = 200·scale), so the expensive fbjoin evaluates over est 800000·s·scale
// pairs when the filtered t3 joins first and a flat 80000·scale pairs when
// t1 ⋈ t2 runs first. The orders cross at s = 0.1: with truth at 0.3 an
// underestimate of 4× or more flips the plan onto the order whose actual
// fbjoin input — and per-pair invocation charge — is about three times the
// truth-optimal one's. fbsel filters on ua1 (unique values) so the surviving
// rows are an uncorrelated sample and the a10 expansion survives the filter.
const FeedbackQuery = "SELECT * FROM t1, t2, t3 WHERE t3.a10 = t1.a10 AND fbsel(t3.ua1) AND fbjoin(t1.u20, t2.u20)"

// fbAlgos are the placement algorithms the bench compares.
var fbAlgos = []predplace.Algorithm{predplace.PushDown, predplace.Migration, predplace.Robust}

// FeedbackAlgoCell is one algorithm's charged costs at one error factor.
type FeedbackAlgoCell struct {
	Algo string `json:"algo"`
	// UnderCharged and OverCharged are the charged costs when fbsel's
	// selectivity was declared truth/e and truth×e; WorstCharged is the max.
	UnderCharged float64 `json:"under_charged"`
	OverCharged  float64 `json:"over_charged"`
	WorstCharged float64 `json:"worst_charged"`
	// RowsEqual: both runs' result multisets matched the baseline.
	RowsEqual bool `json:"rows_equal"`
}

// FeedbackErrPoint aggregates the algorithms' cells at one error factor.
type FeedbackErrPoint struct {
	E     float64            `json:"e"`
	Cells []FeedbackAlgoCell `json:"cells"`
	// RobustBeatsBoth: Robust's worst-case charged cost is strictly below
	// both PushDown's and Migration's (beyond cost.ApproxEq tolerance).
	RobustBeatsBoth bool `json:"robust_beats_both"`
	// AllMatch: every algorithm's worst-case charged cost agrees within
	// cost.ApproxEq (expected at e=1, where all estimates are correct).
	AllMatch bool `json:"all_match"`
}

// FeedbackLoop reports the closed-loop leg: the worst misdeclaration run
// twice under Config.Feedback.
type FeedbackLoop struct {
	DeclaredSel   float64 `json:"declared_sel"`
	FirstCharged  float64 `json:"first_charged"`
	SecondCharged float64 `json:"second_charged"`
	// PlanChanged: promotion re-planned the second run onto a different plan.
	PlanChanged bool `json:"plan_changed"`
	// Refreshes and Observations snapshot the feedback store after the leg.
	Refreshes    int64 `json:"refreshes"`
	Observations int64 `json:"observations"`
	// RowsEqual: both runs matched the baseline result multiset.
	RowsEqual bool `json:"rows_equal"`
	// Improved: the second run charged no more than the first.
	Improved bool `json:"improved"`
}

// FeedbackBench is the full estimate-error comparison plus the feedback loop.
type FeedbackBench struct {
	Scale   float64            `json:"scale"`
	TrueSel float64            `json:"true_sel"`
	RobustE float64            `json:"robust_e"`
	Query   string             `json:"query"`
	Points  []FeedbackErrPoint `json:"points"`
	Loop    FeedbackLoop       `json:"loop"`
	// Pass: rows identical everywhere, all algorithms match at e=1, Robust's
	// worst case beats both point-estimate algorithms at some e ≥ 4, and the
	// feedback loop's second run improved on (or matched) its first.
	Pass bool `json:"pass"`
}

// registerFbsel (re-)registers the stub with a declared selectivity (clamped
// to a valid probability). The evaluation closure is rebuilt from the same
// seed, so its behavior is byte-identical across registrations; only the
// optimizer-visible metadata moves. Re-registration bumps the catalog
// version, which is what forces cached plans for FeedbackQuery to
// re-optimize under the new declaration.
func (h *Harness) registerFbsel(declared float64) error {
	if declared > 1 {
		declared = 1
	}
	return h.DB.RegisterFunc("fbsel", 1, 0, declared, expr.BoolStub(fbTrueSel, fbSeed))
}

// registerFbjoin registers the expensive cross-table predicate with accurate
// metadata; only fbsel's declaration is ever perturbed.
func (h *Harness) registerFbjoin() error {
	return h.DB.RegisterFunc("fbjoin", 2, fbJoinCost, fbJoinSel, expr.BoolStub(fbJoinSel, fbJoinSeed))
}

// fbRun evicts the pool and runs FeedbackQuery under one algorithm, returning
// the result (cold-cache charged cost is then comparable across cells).
func (h *Harness) fbRun(algo predplace.Algorithm) (*predplace.Result, error) {
	if err := h.DB.EvictPool(); err != nil {
		return nil, err
	}
	res, err := h.DB.Query(FeedbackQuery, algo)
	if err != nil {
		return nil, fmt.Errorf("%v declared-sel run: %w", algo, err)
	}
	if res.DNF {
		return nil, fmt.Errorf("%v run hit the cost budget", algo)
	}
	return res, nil
}

// RunFeedbackBench runs the estimate-error sweep (e ∈ {1, 2, 4, 8}, both
// misdeclaration directions, PushDown vs Migration vs Robust) and the
// closed-loop leg on the harness database.
func (h *Harness) RunFeedbackBench() (*FeedbackBench, error) {
	h.DB.SetCaching(false)
	h.DB.SetBudget(0)
	h.DB.SetTransfer(false)
	h.DB.SetTopK(false)
	h.DB.SetParallelism(1)
	h.DB.SetBatchSize(0)
	h.DB.SetRobustE(fbRobustE)
	defer func() {
		h.DB.SetFeedback(false)
		h.DB.SetFeedbackThreshold(0)
		h.DB.SetRobustE(0)
	}()

	bench := &FeedbackBench{
		Scale: h.Scale, TrueSel: fbTrueSel, RobustE: fbRobustE,
		Query: FeedbackQuery, Pass: true,
	}

	// Baseline: the true declaration run once — every later run's result
	// multiset must equal this one (the stub's evaluation never changes).
	if err := h.registerFbjoin(); err != nil {
		return nil, err
	}
	if err := h.registerFbsel(fbTrueSel); err != nil {
		return nil, err
	}
	base, err := h.fbRun(predplace.Migration)
	if err != nil {
		return nil, err
	}
	baseline := transferCanonRows(base)

	for _, e := range []float64{1, 2, 4, 8} {
		point := FeedbackErrPoint{E: e, AllMatch: true}
		worst := map[predplace.Algorithm]float64{}
		for _, algo := range fbAlgos {
			cell := FeedbackAlgoCell{Algo: algo.String(), RowsEqual: true}
			for _, declared := range []float64{fbTrueSel / e, fbTrueSel * e} {
				if err := h.registerFbsel(declared); err != nil {
					return nil, err
				}
				res, err := h.fbRun(algo)
				if err != nil {
					return nil, fmt.Errorf("e=%g: %w", e, err)
				}
				charged := res.Stats.Charged()
				if declared < fbTrueSel || e == 1 {
					cell.UnderCharged = charged
				}
				if declared > fbTrueSel || e == 1 {
					cell.OverCharged = charged
				}
				if charged > cell.WorstCharged {
					cell.WorstCharged = charged
				}
				if !equalStrings(transferCanonRows(res), baseline) {
					cell.RowsEqual = false
					bench.Pass = false
				}
			}
			worst[algo] = cell.WorstCharged
			point.Cells = append(point.Cells, cell)
		}
		for _, algo := range fbAlgos[1:] {
			if !cost.ApproxEq(worst[algo], worst[fbAlgos[0]]) {
				point.AllMatch = false
			}
		}
		r, pd, mg := worst[predplace.Robust], worst[predplace.PushDown], worst[predplace.Migration]
		point.RobustBeatsBoth = r < pd && !cost.ApproxEq(r, pd) &&
			r < mg && !cost.ApproxEq(r, mg)
		if e == 1 && !point.AllMatch {
			bench.Pass = false
		}
		if e >= 4 && !point.RobustBeatsBoth {
			bench.Pass = false
		}
		bench.Points = append(bench.Points, point)
	}

	// Closed loop: the worst underestimate, run twice with feedback on. The
	// first run plans on the bad declaration and harvests the observed
	// selectivity; the ≈4× error exceeds the default threshold, so promotion
	// refreshes fbsel's metadata and bumps the catalog version, and the
	// second run re-plans against the corrected statistics.
	loopDeclared := fbTrueSel / 4
	if err := h.registerFbsel(loopDeclared); err != nil {
		return nil, err
	}
	h.DB.SetFeedback(true)
	h.DB.SetFeedbackThreshold(0)
	first, err := h.fbRun(predplace.Migration)
	if err != nil {
		return nil, fmt.Errorf("feedback loop first run: %w", err)
	}
	second, err := h.fbRun(predplace.Migration)
	if err != nil {
		return nil, fmt.Errorf("feedback loop second run: %w", err)
	}
	h.DB.SetFeedback(false)
	stats := h.DB.FeedbackStats()
	loop := FeedbackLoop{
		DeclaredSel:   loopDeclared,
		FirstCharged:  first.Stats.Charged(),
		SecondCharged: second.Stats.Charged(),
		PlanChanged:   first.Plan != second.Plan,
		Refreshes:     stats.Refreshes,
		Observations:  stats.Observations,
		RowsEqual: equalStrings(transferCanonRows(first), baseline) &&
			equalStrings(transferCanonRows(second), baseline),
	}
	loop.Improved = loop.SecondCharged < loop.FirstCharged ||
		cost.ApproxEq(loop.SecondCharged, loop.FirstCharged)
	if !loop.RowsEqual || !loop.Improved || loop.Refreshes < 1 {
		bench.Pass = false
	}
	bench.Loop = loop
	return bench, nil
}

// JSON renders the benchmark as indented JSON (BENCH_feedback.json).
func (b *FeedbackBench) JSON() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// String renders the benchmark as an aligned table.
func (b *FeedbackBench) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "estimate-error bench: scale=%.3g true-sel=%.3g robust-e=%g (caching off)\n",
		b.Scale, b.TrueSel, b.RobustE)
	fmt.Fprintf(&sb, "%-4s %-18s %12s %12s %12s %7s\n",
		"e", "algorithm", "under-cost", "over-cost", "worst-cost", "verdict")
	for _, p := range b.Points {
		for _, c := range p.Cells {
			verdict := "OK"
			if !c.RowsEqual {
				verdict = "ROWS!"
			}
			fmt.Fprintf(&sb, "%-4g %-18s %12.0f %12.0f %12.0f %7s\n",
				p.E, c.Algo, c.UnderCharged, c.OverCharged, c.WorstCharged, verdict)
		}
		if p.E >= 4 {
			fmt.Fprintf(&sb, "     robust beats both: %v\n", p.RobustBeatsBoth)
		}
	}
	fmt.Fprintf(&sb, "loop: declared=%.4g first=%.0f second=%.0f plan-changed=%v refreshes=%d improved=%v\n",
		b.Loop.DeclaredSel, b.Loop.FirstCharged, b.Loop.SecondCharged,
		b.Loop.PlanChanged, b.Loop.Refreshes, b.Loop.Improved)
	if b.Pass {
		sb.WriteString("PASS: rows identical everywhere; algorithms agree at e=1; Robust wins worst-case at e≥4; feedback repaired the misestimate\n")
	} else {
		sb.WriteString("FAIL: see cells above\n")
	}
	return sb.String()
}
