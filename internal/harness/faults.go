package harness

// The fault sweep: every benchmark query runs under injected storage read
// faults and under an aggressive deadline, across the executor's serial,
// parallel, tuple-at-a-time, and batched configurations. The contract under
// test is the executor's failure discipline, not the paper's figures: each
// run must end in exactly one of the acceptable outcomes — a clean result
// identical to the fault-free baseline, an error wrapping the injected
// fault, a DNF, or a deadline error — never a panic, a hang, or a silently
// truncated result. After every run, faulted or not, the leak audit asserts
// zero pinned buffer-pool frames and the goroutine baseline restored.
// Fault and timeout runs are excluded from every figure reproduction.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"predplace"
)

// faultConfigs are the executor configurations the sweep crosses faults
// with: serial and parallel, tuple-at-a-time (BatchSize 1) and batched
// (BatchSize 0 = tuned default). Parallelism 0 stands for the bench's
// worker fan-out.
var faultConfigs = []struct {
	name        string
	parallelism int
	batchSize   int
}{
	{"serial/tuple", 1, 1},
	{"serial/batch", 1, 0},
	{"parallel/tuple", 0, 1},
	{"parallel/batch", 0, 0},
}

// FaultRun is one query execution under injected faults or a deadline.
type FaultRun struct {
	Query     string `json:"query"`
	Config    string `json:"config"`
	Seed      int64  `json:"seed"`
	FailReadN int64  `json:"fail_read_n,omitempty"`
	// Outcome is "clean", "fault", "dnf", or "timeout".
	Outcome string `json:"outcome"`
	Err     string `json:"err,omitempty"`
	// OK is false when the run violated the failure contract (wrong rows,
	// unexpected error class, or a leak).
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// FaultBench is the whole sweep's outcome.
type FaultBench struct {
	Scale   float64    `json:"scale"`
	Workers int        `json:"workers"`
	Seeds   int        `json:"seeds"`
	Runs    []FaultRun `json:"runs"`
	// Pass is true when every run ended in an acceptable outcome with no
	// leaked frames or goroutines.
	Pass bool `json:"pass"`
}

// faultTimeout is the deadline of the sweep's timeout leg — short enough
// that large queries trip it, but a query finishing first is also a valid
// outcome (the leg asserts the error class and teardown, not that the
// deadline always fires).
const faultTimeout = 2 * time.Millisecond

// RunFaultBench sweeps Queries 1–5 under injected read faults and a
// deadline. For each query it first measures the fault-free read count and
// result set (the baseline), then for each seed derives a read index to
// fail and runs the query under every executor configuration, and finally
// runs one timeout leg per configuration. workers is the parallel fan-out;
// seeds is the number of per-query fault sites tried.
func (h *Harness) RunFaultBench(workers, seeds int) (*FaultBench, error) {
	if workers < 2 {
		workers = 2
	}
	if seeds < 1 {
		seeds = 1
	}
	h.DB.SetCaching(false)
	h.DB.SetBudget(0)
	defer h.DB.SetFaults(nil)
	defer h.DB.SetTimeout(0)
	defer h.DB.SetParallelism(1)
	defer h.DB.SetBatchSize(0)

	bench := &FaultBench{Scale: h.Scale, Workers: workers, Seeds: seeds, Pass: true}
	for _, q := range benchQueries {
		// Fault-free baseline: a zero FaultConfig injects nothing but counts
		// I/Os, sizing the fault sites against the query's real read count.
		h.DB.SetTimeout(0)
		h.DB.SetParallelism(1)
		h.DB.SetBatchSize(0)
		// Faults fire on physical reads only; start cold so every page read
		// of the query is observable (and the fault site space is the full
		// read sequence, reproducible run to run).
		if err := h.DB.EvictPool(); err != nil {
			return nil, fmt.Errorf("%s baseline: %w", q.name, err)
		}
		h.DB.SetFaults(&predplace.FaultConfig{})
		base, err := h.DB.Query(q.sql, predplace.Migration)
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", q.name, err)
		}
		reads, _, _ := h.DB.FaultCounts()
		h.DB.SetFaults(nil)
		if reads == 0 {
			return nil, fmt.Errorf("%s baseline: no page reads observed", q.name)
		}
		baseRows := canonicalRows(base)

		for seed := int64(1); seed <= int64(seeds); seed++ {
			// The fault site is drawn deterministically per (query, seed), so
			// a failing sweep is reproducible from its report alone.
			failN := 1 + rand.New(rand.NewSource(seed*7919)).Int63n(reads)
			for _, cfg := range faultConfigs {
				run := h.faultRun(q.name, q.sql, cfg.name, seed, failN,
					resolveWorkers(cfg.parallelism, workers), cfg.batchSize, baseRows)
				if !run.OK {
					bench.Pass = false
				}
				bench.Runs = append(bench.Runs, run)
			}
		}
		for _, cfg := range faultConfigs {
			run := h.timeoutRun(q.name, q.sql, cfg.name,
				resolveWorkers(cfg.parallelism, workers), cfg.batchSize, baseRows)
			if !run.OK {
				bench.Pass = false
			}
			bench.Runs = append(bench.Runs, run)
		}
	}
	return bench, nil
}

// resolveWorkers maps a faultConfigs parallelism entry to a fan-out.
func resolveWorkers(p, workers int) int {
	if p == 0 {
		return workers
	}
	return p
}

// faultRun executes one query under an injected read fault and classifies
// the outcome against the failure contract.
func (h *Harness) faultRun(name, sql, cfg string, seed, failN int64,
	workers, batchSize int, baseRows []string) FaultRun {
	run := FaultRun{Query: name, Config: cfg, Seed: seed, FailReadN: failN}
	h.DB.SetTimeout(0)
	h.DB.SetParallelism(workers)
	h.DB.SetBatchSize(batchSize)
	// Cold start before arming the injector: eviction's own write-backs must
	// not consume fault sites, and the run's physical read sequence must
	// match the baseline's so failN lands on the same page access.
	if err := h.DB.EvictPool(); err != nil {
		run.Outcome = "unexpected"
		run.Err = err.Error()
		run.Detail = "pool eviction before fault run failed"
		return run
	}
	h.DB.SetFaults(&predplace.FaultConfig{Seed: seed, FailReadN: failN})
	audit := StartLeakAudit()
	res, err := h.DB.Query(sql, predplace.Migration)
	h.DB.SetFaults(nil)
	classifyFaultOutcome(&run, res, err, baseRows)
	if lerr := audit.Verify(h.DB); lerr != nil {
		run.OK = false
		run.Detail = strings.TrimSpace(run.Detail + " " + lerr.Error())
	}
	return run
}

// timeoutRun executes one query under an aggressive deadline; a clean
// finish and a deadline error are both acceptable, anything else is not.
func (h *Harness) timeoutRun(name, sql, cfg string, workers, batchSize int,
	baseRows []string) FaultRun {
	run := FaultRun{Query: name, Config: cfg + "/timeout"}
	h.DB.SetParallelism(workers)
	h.DB.SetBatchSize(batchSize)
	h.DB.SetTimeout(faultTimeout)
	audit := StartLeakAudit()
	res, err := h.DB.Query(sql, predplace.Migration)
	h.DB.SetTimeout(0)
	switch {
	case err == nil && !res.DNF:
		run.Outcome = "clean"
		run.OK = equalStrings(canonicalRows(res), baseRows)
		if !run.OK {
			run.Detail = "clean finish with wrong rows"
		}
	case errors.Is(err, context.DeadlineExceeded):
		run.Outcome = "timeout"
		run.OK = true
		run.Err = err.Error()
	default:
		run.Outcome = "unexpected"
		run.OK = false
		if err != nil {
			run.Err = err.Error()
		}
		run.Detail = "timeout leg must finish cleanly or exceed the deadline"
	}
	if lerr := audit.Verify(h.DB); lerr != nil {
		run.OK = false
		run.Detail = strings.TrimSpace(run.Detail + " " + lerr.Error())
	}
	return run
}

// classifyFaultOutcome sorts a fault run's (result, error) into the
// contract's outcome classes.
func classifyFaultOutcome(run *FaultRun, res *predplace.Result, err error, baseRows []string) {
	switch {
	case err == nil && res.DNF:
		// Unreachable without a budget, but a DNF is a legal abort outcome.
		run.Outcome = "dnf"
		run.OK = true
	case err == nil:
		run.Outcome = "clean"
		run.OK = equalStrings(canonicalRows(res), baseRows)
		if !run.OK {
			run.Detail = "clean finish with rows differing from fault-free baseline"
		}
	case errors.Is(err, predplace.ErrInjectedFault):
		run.Outcome = "fault"
		run.OK = true
		run.Err = err.Error()
	default:
		run.Outcome = "unexpected"
		run.OK = false
		run.Err = err.Error()
		run.Detail = "error does not wrap the injected fault"
	}
}

// JSON renders the sweep as indented JSON (BENCH_faults.json).
func (b *FaultBench) JSON() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// String renders the sweep as an aligned table.
func (b *FaultBench) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fault/timeout sweep: scale=%.3g workers=%d seeds=%d (Migration, caching off)\n",
		b.Scale, b.Workers, b.Seeds)
	fmt.Fprintf(&sb, "%-8s %-16s %5s %10s %-8s %7s\n",
		"query", "config", "seed", "fail-read", "outcome", "verdict")
	for _, r := range b.Runs {
		verdict := "OK"
		if !r.OK {
			verdict = "FAIL"
		}
		fmt.Fprintf(&sb, "%-8s %-16s %5d %10d %-8s %7s\n",
			r.Query, r.Config, r.Seed, r.FailReadN, r.Outcome, verdict)
		if r.Detail != "" {
			fmt.Fprintf(&sb, "    %s\n", r.Detail)
		}
	}
	if b.Pass {
		sb.WriteString("PASS: every run ended in an accepted outcome with no leaks\n")
	} else {
		sb.WriteString("FAIL: failure contract violated\n")
	}
	return sb.String()
}
