package harness

// Leak auditing: the executor's teardown contract is that after any query —
// success, budget abort (DNF), cancellation, or injected storage fault — no
// buffer-pool frame stays pinned and no worker goroutine stays alive. The
// audit is stdlib-only: pinned frames come from the pool's own bookkeeping
// (DB.PinnedFrames) and goroutines from runtime.NumGoroutine against a
// baseline taken before the query.

import (
	"fmt"
	"runtime"
	"time"

	"predplace"
)

// leakPollBudget bounds how long Verify waits for asynchronous teardown:
// parallel workers exit after the consumer's Close returns, so the audit
// polls instead of asserting an instantaneous snapshot.
const leakPollBudget = 2 * time.Second

// LeakAudit captures the goroutine baseline ahead of one or more queries.
type LeakAudit struct {
	baseline int
}

// StartLeakAudit snapshots the current goroutine count. Take the snapshot
// before running the query under audit.
func StartLeakAudit() *LeakAudit {
	return &LeakAudit{baseline: runtime.NumGoroutine()}
}

// Verify asserts the teardown contract against db: zero pinned buffer-pool
// frames and a goroutine count back at (or below) the baseline. Worker
// goroutines unwind asynchronously after iterator Close, so the check polls
// briefly before declaring a leak.
func (a *LeakAudit) Verify(db *predplace.DB) error {
	deadline := time.Now().Add(leakPollBudget)
	for {
		pinned := db.PinnedFrames()
		gor := runtime.NumGoroutine()
		if pinned == 0 && gor <= a.baseline {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("harness: leak after query: %d pinned frames, %d goroutines (baseline %d)",
				pinned, gor, a.baseline)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
