package optimizer

import (
	"fmt"
	"math/bits"
	"sort"

	"predplace/internal/expr"
	"predplace/internal/plan"
	"predplace/internal/query"
)

// This file implements the bushy-tree exhaustive oracle — the extension
// §3.1 sketches for repairing LDL ("a System R optimizer can be modified to
// explore the space of bushy trees, but this increases the complexity yet
// further"). Nested-loop and index-nested-loop joins still require a
// base-table inner (footnote 3: one would sort or hash a materialized bushy
// inner anyway); hash and merge joins accept any inner.
//
// The DP state is (relation subset, set of expensive selections already
// applied): after each join, any subset of the now-coverable expensive
// selections may be applied immediately or deferred, which covers every
// placement a bushy tree admits.

// bushyState is one DP cell: which relations are joined and which expensive
// selections have been applied somewhere inside the subtree.
type bushyState struct {
	set     uint32
	applied uint32
}

// bushyEntry is one retained plan for a state.
type bushyEntry struct {
	root  plan.Node
	order query.ColRef
	cost  float64
}

// bushySearch carries the enumeration's working state.
type bushySearch struct {
	o      *Optimizer
	q      *query.Query
	exp    []*query.Predicate
	expBit map[*query.Predicate]uint32
	table  map[bushyState][]bushyEntry
}

func (o *Optimizer) planExhaustiveBushy(q *query.Query) (plan.Node, *Info, error) {
	n := len(q.Tables)
	if n > 7 {
		return nil, nil, fmt.Errorf("optimizer: bushy enumeration over %d tables is too large", n)
	}
	s := &bushySearch{o: o, q: q, expBit: map[*query.Predicate]uint32{}, table: map[bushyState][]bushyEntry{}}
	for _, p := range q.Preds {
		if p.IsExpensive() && !p.IsJoin() {
			s.expBit[p] = 1 << uint(len(s.exp))
			s.exp = append(s.exp, p)
		}
	}
	if len(s.exp) > 4 {
		return nil, nil, fmt.Errorf("optimizer: bushy enumeration over %d expensive selections is too large", len(s.exp))
	}

	// Base relations.
	for i := range q.Tables {
		paths, err := o.accessPathsPlace(q, i, false)
		if err != nil {
			return nil, nil, err
		}
		for _, sp := range paths {
			if err := s.applyVariants(sp.set, 0, sp.root, sp.order); err != nil {
				return nil, nil, err
			}
		}
	}

	full := uint32(1)<<uint(n) - 1
	for set := uint32(1); set <= full; set++ {
		if bits.OnesCount32(set) < 2 {
			continue
		}
		for sub := (set - 1) & set; sub > 0; sub = (sub - 1) & set {
			other := set &^ sub
			if other == 0 {
				continue
			}
			for _, ls := range s.statesFor(sub) {
				for _, rs := range s.statesFor(other) {
					for _, le := range s.table[ls] {
						for _, re := range s.table[rs] {
							if err := s.joins(set, other, ls.applied|rs.applied, le, re); err != nil {
								return nil, nil, err
							}
						}
					}
				}
			}
		}
	}

	allApplied := uint32(1)<<uint(len(s.exp)) - 1
	finals := s.table[bushyState{set: full, applied: allApplied}]
	if len(finals) == 0 {
		return nil, nil, fmt.Errorf("optimizer: bushy search found no plan")
	}
	best := finals[0]
	for _, e := range finals[1:] {
		if e.cost < best.cost {
			best = e
		}
	}
	info := &Info{}
	for _, list := range s.table {
		info.PlansRetained += len(list)
	}
	return best.root, info, nil
}

// statesFor lists the DP states covering a relation subset, in a
// deterministic order.
func (s *bushySearch) statesFor(set uint32) []bushyState {
	var out []bushyState
	for st := range s.table {
		if st.set == set {
			out = append(out, st)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].applied < out[b].applied })
	return out
}

func (s *bushySearch) addEntry(st bushyState, e bushyEntry) {
	list := s.table[st]
	for i, cur := range list {
		if cur.order == e.order {
			if e.cost < cur.cost {
				list[i] = e
			}
			return
		}
	}
	s.table[st] = append(list, e)
}

// homeSet returns the relation bitset a predicate needs.
func (s *bushySearch) homeSet(p *query.Predicate) uint32 {
	var out uint32
	for _, t := range p.Tables {
		out |= 1 << uint(tableIndex(s.q, t))
	}
	return out
}

// applyVariants layers every allowed subset of pending expensive selections
// on top of root, registering one DP entry per variant.
func (s *bushySearch) applyVariants(set, applied uint32, root plan.Node, order query.ColRef) error {
	var eligible []*query.Predicate
	for _, p := range s.exp {
		if applied&s.expBit[p] == 0 && s.homeSet(p)&^set == 0 {
			eligible = append(eligible, p)
		}
	}
	for mask := 0; mask < 1<<uint(len(eligible)); mask++ {
		var chosen []*query.Predicate
		add := uint32(0)
		for i, p := range eligible {
			if mask&(1<<uint(i)) != 0 {
				chosen = append(chosen, p)
				add |= s.expBit[p]
			}
		}
		cur := chainFilters(root, s.o.orderByRank(chosen, root.Card()))
		if err := s.o.model.Annotate(cur); err != nil {
			return err
		}
		s.addEntry(bushyState{set: set, applied: applied | add},
			bushyEntry{root: cur, order: order, cost: cur.Cost()})
	}
	return nil
}

// joins builds every join of two entries and registers the variants.
func (s *bushySearch) joins(set, rightSet, applied uint32, le, re bushyEntry) error {
	q := s.q
	conns := connectingBetween(q, set&^rightSet, rightSet)

	type method struct {
		m        plan.JoinMethod
		primary  *query.Predicate
		indexCol string
	}
	var methods []method
	innerTable, innerIsBase := baseOnly(re.root)
	for _, p := range conns {
		if p.Kind == query.KindJoinCmp && p.Op == expr.OpEQ && !p.IsExpensive() {
			methods = append(methods,
				method{m: plan.HashJoin, primary: p},
				method{m: plan.MergeJoin, primary: p})
			if innerIsBase {
				innerRef, _ := sides(p, innerTable)
				tab, err := s.o.cat.Table(innerTable)
				if err != nil {
					return err
				}
				if tab.HasIndex(innerRef.Col) {
					methods = append(methods, method{m: plan.IndexNestLoop, primary: p, indexCol: innerRef.Col})
				}
			}
		}
	}
	if innerIsBase {
		methods = append(methods, method{m: plan.NestLoop, primary: minRankPred(conns)})
	}
	// Cross products of composites are skipped: hash/merge need an equality
	// predicate and NL needs a base inner; a left-deep shape covers those.

	for _, md := range methods {
		j := &plan.Join{
			Method:           md.m,
			Outer:            le.root,
			Inner:            re.root,
			Primary:          md.primary,
			InnerIndexCol:    md.indexCol,
			ExpensivePrimary: md.primary != nil && md.primary.IsExpensive(),
		}
		var order query.ColRef
		if md.m == plan.MergeJoin {
			innerTables := plan.Tables(re.root)
			innerRef, outerRef := md.primary.Left, md.primary.Right
			if !innerTables[innerRef.Table] {
				innerRef, outerRef = outerRef, innerRef
			}
			j.SortOuter = le.order != outerRef
			j.SortInner = re.order != innerRef
			order = outerRef
		} else {
			order = le.order
		}
		j.ColRefs = plan.ConcatCols(le.root, re.root)
		var above []*query.Predicate
		for _, p := range conns {
			if p != md.primary {
				above = append(above, p)
			}
		}
		root := chainFilters(j, s.o.orderByRank(above, 0))
		if err := s.o.model.Annotate(root); err != nil {
			continue // invalid shape for this method
		}
		if err := s.applyVariants(set, applied, root, order); err != nil {
			return err
		}
	}
	return nil
}

// connectingBetween returns join predicates spanning exactly the two subsets.
func connectingBetween(q *query.Query, left, right uint32) []*query.Predicate {
	inSet := func(t string, set uint32) bool {
		i := tableIndex(q, t)
		return i >= 0 && set&(1<<uint(i)) != 0
	}
	var out []*query.Predicate
	for _, p := range q.Preds {
		if !p.IsJoin() {
			continue
		}
		touchL, touchR, outside := false, false, false
		for _, t := range p.Tables {
			switch {
			case inSet(t, left):
				touchL = true
			case inSet(t, right):
				touchR = true
			default:
				outside = true
			}
		}
		if touchL && touchR && !outside {
			out = append(out, p)
		}
	}
	return out
}

// baseOnly reports whether the subtree is a (filtered) base-table scan.
func baseOnly(n plan.Node) (string, bool) {
	t, _, ok := plan.BaseTable(n)
	return t, ok
}
