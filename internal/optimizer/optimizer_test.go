package optimizer

import (
	"math"
	"testing"

	"predplace/internal/expr"
	"predplace/internal/plan"
	"predplace/internal/query"
)

// filterDepth reports, for the filter holding pred, how many joins sit above
// it (0 = at the very top) and how many sit below it.
func filterPosition(t *testing.T, root plan.Node, pred *query.Predicate) (joinsAbove, joinsBelow int) {
	t.Helper()
	found := false
	var walk func(n plan.Node, above int)
	countJoins := func(n plan.Node) int {
		c := 0
		var w func(plan.Node)
		w = func(m plan.Node) {
			if _, ok := m.(*plan.Join); ok {
				c++
			}
			for _, ch := range m.Children() {
				w(ch)
			}
		}
		w(n)
		return c
	}
	walk = func(n plan.Node, above int) {
		switch x := n.(type) {
		case *plan.Filter:
			if x.Pred == pred {
				found = true
				joinsAbove = above
				joinsBelow = countJoins(x.Input)
				return
			}
			walk(x.Input, above)
		case *plan.Join:
			walk(x.Outer, above+1)
			walk(x.Inner, above+1)
		}
	}
	walk(root, 0)
	if !found {
		t.Fatalf("predicate %v not found in plan:\n%s", pred, plan.Render(root))
	}
	return joinsAbove, joinsBelow
}

func TestSingleTableRankOrdering(t *testing.T) {
	db := benchDB(t, 3)
	// Two expensive predicates: costly100 (rank (0.5-1)/100 = -0.005) and
	// costly1 (rank (0.5-1)/1 = -0.5). costly1 must be applied first.
	p100 := fp(t, db, "costly100", query.ColRef{Table: "t3", Col: "u20"})
	p1 := fp(t, db, "costly1", query.ColRef{Table: "t3", Col: "u10"})
	q := mkQuery(t, db, []string{"t3"}, []*query.Predicate{p100, p1})
	root, _ := planWith(t, db, PushDown, q)
	chain, _ := plan.TopFilters(root)
	if len(chain) != 2 {
		t.Fatalf("want 2 filters, got %d:\n%s", len(chain), plan.Render(root))
	}
	// Top of chain = applied last = higher rank = costly100.
	if chain[0].Pred != p100 || chain[1].Pred != p1 {
		t.Fatalf("rank ordering wrong (want costly1 below costly100):\n%s", plan.Render(root))
	}
}

func TestNaiveSkipsRankOrdering(t *testing.T) {
	db := benchDB(t, 3)
	p100 := fp(t, db, "costly100", query.ColRef{Table: "t3", Col: "u20"})
	p1 := fp(t, db, "costly1", query.ColRef{Table: "t3", Col: "u10"})
	q := mkQuery(t, db, []string{"t3"}, []*query.Predicate{p100, p1})
	naive, _ := planWith(t, db, NaivePushDown, q)
	ranked, _ := planWith(t, db, PushDown, q)
	// Naive applies in query order (costly100 first = bottom), which costs
	// more than the rank order.
	if naive.Cost() <= ranked.Cost() {
		t.Fatalf("naive (%v) should cost more than rank-ordered (%v)", naive.Cost(), ranked.Cost())
	}
}

func TestSingleTableIndexScanChosen(t *testing.T) {
	db := benchDB(t, 10)
	q := mkQuery(t, db, []string{"t10"}, []*query.Predicate{
		cp("t10", "a1", expr.OpEQ, 3),
	})
	root, _ := planWith(t, db, PushDown, q)
	_, base := plan.TopFilters(root)
	is, ok := base.(*plan.IndexScan)
	if !ok {
		t.Fatalf("expected IndexScan for selective indexed equality:\n%s", plan.Render(root))
	}
	if is.Col != "a1" || is.Eq == nil || is.Eq.I != 3 {
		t.Fatalf("wrong index scan: %s", is.Describe())
	}
}

func TestSeqScanForUnindexed(t *testing.T) {
	db := benchDB(t, 10)
	q := mkQuery(t, db, []string{"t10"}, []*query.Predicate{
		cp("t10", "u100", expr.OpEQ, 3), // u-prefixed: unindexed
	})
	root, _ := planWith(t, db, PushDown, q)
	_, base := plan.TopFilters(root)
	if _, ok := base.(*plan.SeqScan); !ok {
		t.Fatalf("expected SeqScan:\n%s", plan.Render(root))
	}
}

// Query 1 shape (Figure 3): t3 ⋈ t10 on unique unindexed columns with an
// expensive selection on t10. Join selectivity over t10 is 0.3, so the
// selection belongs ABOVE the join; PushDown leaves it below and loses.
func TestQuery1Placements(t *testing.T) {
	db := benchDB(t, 3, 10)
	sel := fp(t, db, "costly100", query.ColRef{Table: "t10", Col: "u20"})
	mk := func() *query.Query {
		return mkQuery(t, db, []string{"t3", "t10"}, []*query.Predicate{
			jp("t3", "ua1", "t10", "ua1"), sel,
		})
	}

	pd, _ := planWith(t, db, PushDown, mk())
	above, below := filterPosition(t, pd, sel)
	if above != 1 || below != 0 {
		t.Fatalf("PushDown must leave the selection below the join (above=%d below=%d):\n%s",
			above, below, plan.Render(pd))
	}

	for _, algo := range []Algorithm{PullUp, PullRank, Migration, Exhaustive} {
		root, _ := planWith(t, db, algo, mk())
		above, below = filterPosition(t, root, sel)
		if above != 0 || below != 1 {
			t.Fatalf("%v must pull the selection above the join (above=%d below=%d):\n%s",
				algo, above, below, plan.Render(root))
		}
		if root.Cost() >= pd.Cost() {
			t.Fatalf("%v (%v) should beat PushDown (%v)", algo, root.Cost(), pd.Cost())
		}
	}
}

// Query 2 shape (Figure 4): t9 ⋈ t10 — join selectivity over t10 ≈ 1, so
// pulling the selection up buys (almost) nothing; PushDown/PullRank leave it
// below, PullUp hoists it and pays a small penalty.
func TestQuery2Placements(t *testing.T) {
	db := benchDB(t, 9, 10)
	sel := fp(t, db, "costly100", query.ColRef{Table: "t10", Col: "u20"})
	mk := func() *query.Query {
		return mkQuery(t, db, []string{"t9", "t10"}, []*query.Predicate{
			jp("t9", "ua1", "t10", "ua1"), sel,
		})
	}
	pu, _ := planWith(t, db, PullUp, mk())
	pr, _ := planWith(t, db, PullRank, mk())
	if _, below := filterPosition(t, pu, sel); below != 1 {
		t.Fatalf("PullUp must hoist by definition:\n%s", plan.Render(pu))
	}
	// PullUp's error must be small relative to PushDown's error in Query 1
	// ("this error is nearly insignificant").
	if pu.Cost() > pr.Cost()*1.25 {
		t.Fatalf("PullUp error should be small: pullup=%v pullrank=%v", pu.Cost(), pr.Cost())
	}
	if pr.Cost() > pu.Cost() {
		t.Fatalf("PullRank should not lose to PullUp here: %v vs %v", pr.Cost(), pu.Cost())
	}
}

// Query 3 shape (Figure 5): duplicating join (selectivity over t3 > 1
// without caching) — over-eager pullup multiplies invocations.
func TestQuery3PullUpPenalty(t *testing.T) {
	db := benchDB(t, 3, 10)
	sel := fp(t, db, "costly100", query.ColRef{Table: "t3", Col: "ua1"})
	mk := func() *query.Query {
		return mkQuery(t, db, []string{"t3", "t10"}, []*query.Predicate{
			jp("t3", "a10", "t10", "a10"), sel,
		})
	}
	pu, _ := planWith(t, db, PullUp, mk())
	pd, _ := planWith(t, db, PushDown, mk())
	mg, _ := planWith(t, db, Migration, mk())
	if pu.Cost() < pd.Cost()*2 {
		t.Fatalf("PullUp should be badly beaten on a duplicating join: pullup=%v pushdown=%v",
			pu.Cost(), pd.Cost())
	}
	if mg.Cost() > pd.Cost()*1.001 {
		t.Fatalf("Migration (%v) must match PushDown (%v) here", mg.Cost(), pd.Cost())
	}
	if _, below := filterPosition(t, mg, sel); below != 0 {
		t.Fatalf("Migration must keep the selection below the duplicating join:\n%s", plan.Render(mg))
	}
}

// Query 4 shape (Figures 6–8): rank(J1) = 0 (non-reducing), rank(J2) low;
// the selection's rank lies between, so only the grouped pair {J1,J2}
// justifies the pullup. PullRank misses it; Migration finds it.
func TestQuery4MigrationBeatsPullRank(t *testing.T) {
	db := benchDB(t, 1, 3, 10)
	sel := fp(t, db, "costly100", query.ColRef{Table: "t3", Col: "u20"})
	mk := func() *query.Query {
		return mkQuery(t, db, []string{"t3", "t10", "t1"}, []*query.Predicate{
			jp("t3", "ua1", "t10", "ua1"),
			jp("t10", "ua1", "t1", "ua1"),
			sel,
		})
	}
	mg, _ := planWith(t, db, Migration, mk())
	pr, _ := planWith(t, db, PullRank, mk())
	ex, _ := planWith(t, db, Exhaustive, mk())
	if mg.Cost() > pr.Cost()*1.0001 {
		t.Fatalf("Migration (%v) must not lose to PullRank (%v)\nmigration:\n%s\npullrank:\n%s",
			mg.Cost(), pr.Cost(), plan.Render(mg), plan.Render(pr))
	}
	if mg.Cost() > ex.Cost()*1.05 {
		t.Fatalf("Migration (%v) should be near the exhaustive optimum (%v)", mg.Cost(), ex.Cost())
	}
}

func TestPullRankOptimalSingleJoin(t *testing.T) {
	// PullRank is optimal for queries with one join (§4.3): must match the
	// exhaustive oracle on two-table queries with expensive selections on
	// both sides.
	db := benchDB(t, 3, 10)
	cases := [][]*query.Predicate{
		{jp("t3", "ua1", "t10", "ua1"), fp(t, db, "costly100", query.ColRef{Table: "t10", Col: "u20"})},
		{jp("t3", "ua1", "t10", "ua1"),
			fp(t, db, "costly10", query.ColRef{Table: "t3", Col: "u10"}),
			fp(t, db, "costly100", query.ColRef{Table: "t10", Col: "u20"})},
		{jp("t3", "a10", "t10", "a10"), fp(t, db, "costly1", query.ColRef{Table: "t3", Col: "u20"})},
		{jp("t3", "a1", "t10", "a1"), fp(t, db, "costly1000", query.ColRef{Table: "t3", Col: "ua1"})},
	}
	for ci, preds := range cases {
		mk := func() *query.Query { return mkQuery(t, db, []string{"t3", "t10"}, clonePreds(preds)) }
		pr, _ := planWith(t, db, PullRank, mk())
		ex, _ := planWith(t, db, Exhaustive, mk())
		if pr.Cost() > ex.Cost()*1.02 {
			t.Fatalf("case %d: PullRank (%v) not optimal (exhaustive %v)\n%s\nvs\n%s",
				ci, pr.Cost(), ex.Cost(), plan.Render(pr), plan.Render(ex))
		}
	}
}

// clonePreds deep-copies predicates so each mkQuery gets fresh IDs.
func clonePreds(ps []*query.Predicate) []*query.Predicate {
	out := make([]*query.Predicate, len(ps))
	for i, p := range ps {
		c := *p
		out[i] = &c
	}
	return out
}

func TestExhaustiveNeverLoses(t *testing.T) {
	db := benchDB(t, 1, 3, 10)
	mk := func() *query.Query {
		return mkQuery(t, db, []string{"t3", "t10", "t1"}, []*query.Predicate{
			jp("t3", "ua1", "t10", "ua1"),
			jp("t10", "ua1", "t1", "ua1"),
			fp(t, db, "costly100", query.ColRef{Table: "t3", Col: "u20"}),
			fp(t, db, "costly1", query.ColRef{Table: "t10", Col: "u100"}),
		})
	}
	ex, _ := planWith(t, db, Exhaustive, mk())
	for _, algo := range []Algorithm{NaivePushDown, PushDown, PullUp, PullRank, Migration, LDL} {
		root, _ := planWith(t, db, algo, mk())
		if ex.Cost() > root.Cost()*1.0001 {
			t.Fatalf("Exhaustive (%v) lost to %v (%v)", ex.Cost(), algo, root.Cost())
		}
	}
}

func TestMigrationNeverLosesToPullRankOrPushDown(t *testing.T) {
	// The paper debugged its optimizer by checking exactly this invariant
	// (§5: "Predicate Migration always did at least as well as the
	// heuristics").
	db := benchDB(t, 1, 3, 9, 10)
	queries := []func() *query.Query{
		func() *query.Query {
			return mkQuery(t, db, []string{"t3", "t10"}, []*query.Predicate{
				jp("t3", "ua1", "t10", "ua1"),
				fp(t, db, "costly100", query.ColRef{Table: "t10", Col: "u20"}),
			})
		},
		func() *query.Query {
			return mkQuery(t, db, []string{"t9", "t10"}, []*query.Predicate{
				jp("t9", "ua1", "t10", "ua1"),
				fp(t, db, "costly100", query.ColRef{Table: "t10", Col: "u20"}),
			})
		},
		func() *query.Query {
			return mkQuery(t, db, []string{"t3", "t10", "t1"}, []*query.Predicate{
				jp("t3", "ua1", "t10", "ua1"),
				jp("t10", "ua1", "t1", "ua1"),
				fp(t, db, "costly100", query.ColRef{Table: "t3", Col: "u20"}),
			})
		},
		func() *query.Query {
			return mkQuery(t, db, []string{"t3", "t9", "t10"}, []*query.Predicate{
				jp("t3", "ua1", "t10", "ua1"),
				jp("t9", "a10", "t10", "a10"),
				fp(t, db, "costly10", query.ColRef{Table: "t9", Col: "u10"}),
				fp(t, db, "costly1000", query.ColRef{Table: "t3", Col: "u20"}),
			})
		},
	}
	for qi, mk := range queries {
		mg, _ := planWith(t, db, Migration, mk())
		for _, algo := range []Algorithm{PushDown, PullRank, PullUp} {
			other, _ := planWith(t, db, algo, mk())
			if mg.Cost() > other.Cost()*1.0001 {
				t.Fatalf("query %d: Migration (%v) lost to %v (%v)\nmigration:\n%s\nother:\n%s",
					qi, mg.Cost(), algo, other.Cost(), plan.Render(mg), plan.Render(other))
			}
		}
	}
}

func TestLDLForcedPullupFromInner(t *testing.T) {
	// §3.1: LDL cannot evaluate an expensive selection below a join when its
	// table is the join's inner. With the selection on the bigger table
	// (which the optimal order makes the inner), LDL must either pull it up
	// or flip the join order — either way every LDL plan keeps the
	// selection's filter with no join below it only if its table is the
	// outer base.
	db := benchDB(t, 3, 10)
	sel := fp(t, db, "costly1", query.ColRef{Table: "t10", Col: "ua1"})
	q := mkQuery(t, db, []string{"t3", "t10"}, []*query.Predicate{
		jp("t3", "a10", "t10", "a10"), sel,
	})
	root, _ := planWith(t, db, LDL, q)
	f, err := Flatten(root)
	if err != nil {
		t.Fatal(err)
	}
	// The selection may sit at scan level only when t10 is the base table.
	for _, s := range f.Steps {
		for _, p := range s.InnerFilters {
			if p == sel {
				t.Fatalf("LDL placed an expensive selection below a join inner:\n%s", plan.Render(root))
			}
		}
	}
}

func TestInfoDiagnostics(t *testing.T) {
	db := benchDB(t, 1, 3, 10)
	q := mkQuery(t, db, []string{"t3", "t10", "t1"}, []*query.Predicate{
		jp("t3", "ua1", "t10", "ua1"),
		jp("t10", "ua1", "t1", "ua1"),
		fp(t, db, "costly100", query.ColRef{Table: "t3", Col: "u20"}),
	})
	root, info := planWith(t, db, Migration, q)
	if info.PlansRetained == 0 {
		t.Fatal("PlansRetained not counted")
	}
	if info.EstCost != root.Cost() || info.EstCost <= 0 {
		t.Fatal("EstCost wrong")
	}
	if info.Elapsed <= 0 {
		t.Fatal("Elapsed not measured")
	}
	if info.Algorithm != Migration {
		t.Fatal("Algorithm not recorded")
	}
}

func TestAlgorithmString(t *testing.T) {
	for _, a := range Algorithms() {
		if a.String() == "" || a.String()[0] == 'A' && a != NaivePushDown {
			t.Fatalf("Algorithm %d has bad name %q", a, a.String())
		}
	}
	if Algorithm(99).String() != "Algorithm(99)" {
		t.Fatal("unknown algorithm name")
	}
}

func TestCrossProductWhenDisconnected(t *testing.T) {
	db := benchDB(t, 1, 3)
	q := mkQuery(t, db, []string{"t1", "t3"}, nil) // no predicates at all
	t1, _ := db.Cat.Table("t1")
	t3, _ := db.Cat.Table("t3")
	root, _ := planWith(t, db, PushDown, q)
	if math.Abs(root.Card()-float64(t1.Card*t3.Card)) > 1 {
		t.Fatalf("cross product card = %v, want %d", root.Card(), t1.Card*t3.Card)
	}
}

func TestHyperEdgeFunctionPredicate(t *testing.T) {
	// A three-table expensive predicate acts as a hyper-edge join predicate:
	// it can only be applied once all three tables are joined, and may serve
	// as a nested-loop primary for the last table in.
	db := benchDB(t, 1, 2, 3)
	f := expr.NewCostly("tri", 3, 20, 0.3, 7)
	if err := db.Cat.RegisterFunc(f); err != nil {
		t.Fatal(err)
	}
	mk := func() *query.Query {
		return mkQuery(t, db, []string{"t1", "t2", "t3"}, []*query.Predicate{
			jp("t1", "ua1", "t2", "ua1"),
			jp("t2", "ua1", "t3", "ua1"),
			{Kind: query.KindFunc, Func: f, Args: []query.ColRef{
				{Table: "t1", Col: "u10"}, {Table: "t2", Col: "u10"}, {Table: "t3", Col: "u10"},
			}},
		})
	}
	for _, algo := range []Algorithm{PushDown, PullUp, PullRank, Migration, Exhaustive} {
		root, _ := planWith(t, db, algo, mk())
		// The hyper predicate must appear exactly once, above all joins or
		// as an expensive NL primary.
		applied := 0
		var walk func(n plan.Node)
		walk = func(n plan.Node) {
			switch x := n.(type) {
			case *plan.Filter:
				if x.Pred.Func == f {
					applied++
				}
			case *plan.Join:
				if x.Primary != nil && x.Primary.Func == f {
					applied++
				}
			}
			for _, c := range n.Children() {
				walk(c)
			}
		}
		walk(root)
		if applied != 1 {
			t.Fatalf("%v: hyper predicate applied %d times:\n%s", algo, applied, plan.Render(root))
		}
	}
}

func TestSecondaryExpensiveJoinPredicate(t *testing.T) {
	// Two predicates connect the same pair: the cheap equality becomes the
	// primary, the expensive function rides as a secondary that must stay
	// above the join in every algorithm.
	db := benchDB(t, 3, 10)
	mk := func() *query.Query {
		return mkQuery(t, db, []string{"t3", "t10"}, []*query.Predicate{
			jp("t3", "ua1", "t10", "ua1"),
			fp(t, db, "costly10join",
				query.ColRef{Table: "t3", Col: "u20"}, query.ColRef{Table: "t10", Col: "u20"}),
		})
	}
	for _, algo := range []Algorithm{PushDown, Migration, Exhaustive} {
		root, _ := planWith(t, db, algo, mk())
		f, err := Flatten(root)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range f.BaseFilters {
			if p.IsJoin() {
				t.Fatalf("%v: join predicate sank below the join:\n%s", algo, plan.Render(root))
			}
		}
		for _, s := range f.Steps {
			for _, p := range s.InnerFilters {
				if p.IsJoin() {
					t.Fatalf("%v: join predicate on inner side:\n%s", algo, plan.Render(root))
				}
			}
		}
	}
}
