package optimizer

import (
	"fmt"
	"sort"

	"predplace/internal/cost"
	"predplace/internal/expr"
	"predplace/internal/plan"
	"predplace/internal/query"
)

// placement fixes where each expensive selection goes in an ordered plan:
// ScanLevel applies it at its home table's access path (below every join its
// stream allows); a value ≥ 0 applies it in AfterFilters of that step.
const ScanLevel = -1

// orderedPlans builds the Pareto set (cheapest per output order) of
// left-deep plans for a fixed table order with a fixed expensive-predicate
// placement. Cheap selections sit at scans; cheap secondary join predicates
// sit immediately above their join. Used by the LDL and Exhaustive planners.
func (o *Optimizer) orderedPlans(q *query.Query, order []int,
	place map[*query.Predicate]int) ([]*subplan, error) {

	if len(order) == 0 {
		return nil, fmt.Errorf("optimizer: empty table order")
	}
	scanLevelOf := func(t string) []*query.Predicate {
		var out []*query.Predicate
		for p, pos := range place {
			if pos == ScanLevel && len(p.Tables) == 1 && p.Tables[0] == t {
				out = append(out, p)
			}
		}
		return o.orderByRank(out, 1e18)
	}
	afterOf := func(step int) []*query.Predicate {
		var out []*query.Predicate
		for p, pos := range place {
			if pos == step {
				out = append(out, p)
			}
		}
		return o.orderByRank(out, 1e18)
	}

	// Base table.
	basePaths, err := o.accessPathsPlace(q, order[0], false)
	if err != nil {
		return nil, err
	}
	cur := make([]*subplan, 0, len(basePaths))
	for _, bp := range basePaths {
		root := chainFilters(bp.root, scanLevelOf(q.Tables[order[0]]))
		if err := o.model.Annotate(root); err != nil {
			return nil, err
		}
		cur = append(cur, &subplan{root: root, set: bp.set, order: bp.order,
			cost: root.Cost(), card: root.Card()})
	}

	for step, idx := range order[1:] {
		innerTable := q.Tables[idx]
		tab, err := o.cat.Table(innerTable)
		if err != nil {
			return nil, err
		}
		innerPaths, err := o.accessPathsPlace(q, idx, false)
		if err != nil {
			return nil, err
		}
		var next []*subplan
		for _, op := range cur {
			conns := connectingPreds(q, op.set, idx)
			var eqPreds []*query.Predicate
			for _, p := range conns {
				if p.Kind == query.KindJoinCmp && p.Op == expr.OpEQ && !p.IsExpensive() {
					eqPreds = append(eqPreds, p)
				}
			}
			type method struct {
				m        plan.JoinMethod
				primary  *query.Predicate
				indexCol string
			}
			var methods []method
			for _, p := range eqPreds {
				innerRef, _ := sides(p, innerTable)
				methods = append(methods,
					method{m: plan.HashJoin, primary: p},
					method{m: plan.MergeJoin, primary: p},
				)
				if tab.HasIndex(innerRef.Col) {
					methods = append(methods, method{m: plan.IndexNestLoop, primary: p, indexCol: innerRef.Col})
				}
			}
			methods = append(methods, method{m: plan.NestLoop, primary: minRankPred(conns)})

			for _, ip := range innerPaths {
				innerRoot := chainFilters(ip.root, scanLevelOf(innerTable))
				for _, md := range methods {
					j := &plan.Join{
						Method:           md.m,
						Outer:            op.root,
						Inner:            innerRoot,
						Primary:          md.primary,
						InnerIndexCol:    md.indexCol,
						ExpensivePrimary: md.primary != nil && md.primary.IsExpensive(),
					}
					var outOrder query.ColRef
					if md.m == plan.MergeJoin {
						innerRef, outerRef := sides(md.primary, innerTable)
						j.SortOuter = op.order != outerRef
						j.SortInner = ip.order != innerRef
						outOrder = outerRef
					} else {
						outOrder = op.order
					}
					j.ColRefs = plan.ConcatCols(op.root, innerRoot)
					var above []*query.Predicate
					for _, p := range conns {
						if p != md.primary {
							above = append(above, p)
						}
					}
					above = append(o.orderByRank(above, 1e18), afterOf(step)...)
					root := chainFilters(j, above)
					if err := o.model.Annotate(root); err != nil {
						continue // invalid method/shape combination
					}
					next = append(next, &subplan{
						root: root, set: op.set | ip.set, order: outOrder,
						cost: root.Cost(), card: root.Card(),
					})
				}
			}
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("optimizer: no join method applicable at step %d", step)
		}
		// Pareto prune: cheapest per output order, deterministically sorted.
		bestBy := map[query.ColRef]*subplan{}
		for _, sp := range next {
			if cur, ok := bestBy[sp.order]; !ok || sp.cost < cur.cost {
				bestBy[sp.order] = sp
			}
		}
		cur = cur[:0]
		for _, sp := range bestBy {
			cur = append(cur, sp)
		}
		sort.Slice(cur, func(a, b int) bool {
			if !cost.ApproxEq(cur[a].cost, cur[b].cost) {
				return cur[a].cost < cur[b].cost
			}
			return cur[a].order.String() < cur[b].order.String()
		})
	}
	return cur, nil
}

// permutations invokes fn with every permutation of items (in place; fn must
// not retain the slice).
func permutations(items []int, fn func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == len(items) {
			fn(items)
			return
		}
		for i := k; i < len(items); i++ {
			items[k], items[i] = items[i], items[k]
			rec(k + 1)
			items[k], items[i] = items[i], items[k]
		}
	}
	rec(0)
}
