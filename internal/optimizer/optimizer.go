package optimizer

import (
	"fmt"
	"sort"
	"time"

	"predplace/internal/catalog"
	"predplace/internal/cost"
	"predplace/internal/plan"
	"predplace/internal/query"
)

// Algorithm selects the predicate-placement scheme (Table 1 of the paper).
type Algorithm int

// The placement algorithms, ordered roughly by eagerness to pull selections
// up (the paper's Figure 10 spectrum runs PushDown < PullRank ≈ Migration <
// LDL < PullUp).
const (
	// NaivePushDown pushes every selection to the scans in query order —
	// the pre-PushDown+ baseline without rank ordering.
	NaivePushDown Algorithm = iota
	// PushDown is the paper's PushDown+ (selection pushdown with
	// rank-ordered selections). Optimal for single-table queries.
	PushDown
	// PullUp pulls every expensive selection to the top of each subplan.
	PullUp
	// PullRank pulls selections above a join when their rank exceeds the
	// join's per-input rank; optimal for single-join queries.
	PullRank
	// Migration is Predicate Migration: PullRank during enumeration with
	// unpruneable subplan retention, then the series-parallel
	// (parallel-chains) algorithm applied to every root-to-leaf stream of
	// each retained plan until fixpoint.
	Migration
	// LDL treats expensive selections as joins with virtual relations and
	// orders left-deep trees, which forces pullup from join inners.
	LDL
	// LDLIKKBZ is LDL with the polynomial IK-KBZ join orderer of [KZ88]
	// instead of exhaustive ordering; acyclic query graphs only.
	LDLIKKBZ
	// Exhaustive enumerates every left-deep join order and every valid
	// interleaving of expensive selections — exponential; the oracle.
	Exhaustive
	// ExhaustiveBushy extends the oracle to bushy join trees (§3.1's sketch
	// for repairing LDL); hash and merge joins accept composite inners.
	ExhaustiveBushy
	// Robust scores candidate plans over an estimate-error interval
	// [sel/e, sel·e] (and the analogous interval on expensive-predicate
	// costs) instead of at the point estimate, picking the plan whose
	// worst-case cost across the interval's corners is smallest — plans
	// stable under mis-estimation win over plans optimal only if the
	// estimates are exactly right (after arXiv 2502.15181).
	Robust
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case NaivePushDown:
		return "NaivePushDown"
	case PushDown:
		return "PushDown"
	case PullUp:
		return "PullUp"
	case PullRank:
		return "PullRank"
	case Migration:
		return "PredicateMigration"
	case LDL:
		return "LDL"
	case LDLIKKBZ:
		return "LDL-IKKBZ"
	case Exhaustive:
		return "Exhaustive"
	case ExhaustiveBushy:
		return "ExhaustiveBushy"
	case Robust:
		return "Robust"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Algorithms lists every implemented algorithm in eagerness order.
func Algorithms() []Algorithm {
	return []Algorithm{NaivePushDown, PushDown, PullUp, PullRank, Migration, LDL, LDLIKKBZ, Exhaustive, ExhaustiveBushy, Robust}
}

// Options configures an optimization run.
type Options struct {
	// Algorithm selects the placement scheme.
	Algorithm Algorithm
	// Caching tells the cost model predicate caching will be enabled at
	// execution: value-based join selectivities bounded by 1 (§5.1) and
	// distinct-capped invocation estimates.
	Caching bool
	// MaxMigrationPasses bounds the migration fixpoint loop (default 24).
	MaxMigrationPasses int
	// DisableUnpruneable turns off the §4.4 unpruneable-subplan retention
	// (ablation: Migration then post-processes only the plans ordinary
	// pruning kept, and can miss group pullups whose join order was pruned).
	DisableUnpruneable bool
	// Transfer tells the cost model the executor will run the predicate-
	// transfer prepass: scan cardinalities shrink by the received-filter
	// selectivities and probe/build work is charged, so placement and join
	// ordering are decided under transfer-adjusted estimates.
	Transfer bool
	// TopK, when non-nil, asks the optimizer to plan the query's ORDER BY +
	// LIMIT instead of leaving them to the facade: the chosen plan is wrapped
	// in a bounded-heap TopK root — or an early-terminating Limit when a
	// retained plan already delivers rows in the ORDER BY order — and the
	// cost model's post-LIMIT cardinalities price the ≤ k-invocations pullup
	// incentive for predicates above the top-k boundary.
	TopK *TopKSpec
	// Feedback overlays promoted feedback observations (observed
	// selectivities from past executions) onto the analyzed query before
	// planning; refreshed function metadata flows in through the catalog
	// regardless.
	Feedback bool
	// RobustE is the Robust algorithm's error-interval half-width e: each
	// candidate is scored over selectivities [sel/e, sel·e] and expensive
	// costs [cost/e, cost·e]. ≤ 1 uses DefaultRobustE. Ignored by the other
	// algorithms.
	RobustE float64
}

// Info reports planning diagnostics.
type Info struct {
	Algorithm Algorithm
	// EstCost and EstCard are the chosen plan's estimates.
	EstCost float64
	EstCard float64
	// PlansRetained counts subplans kept across all DP entries.
	PlansRetained int
	// UnpruneableRetained counts subplans kept only because they were
	// unpruneable (Predicate Migration's plan-space enlargement).
	UnpruneableRetained int
	// MigrationPasses counts stream passes until fixpoint.
	MigrationPasses int
	// TransferClasses counts the join-key equivalence classes the transfer
	// estimate found (0 when transfer is off or inapplicable), and
	// TransferPrepassCost is the estimated prepass cost included in EstCost.
	TransferClasses     int
	TransferPrepassCost float64
	// TopKKind reports the planned top-k root: "topk" (bounded heap over the
	// full input), "limit" (order-satisfying early termination), or ""
	// (top-k planning off or inapplicable).
	TopKKind string
	// RobustE and RobustWorst report the Robust algorithm's error-interval
	// half-width and the chosen plan's worst-case cost over that interval
	// (both 0 for the other algorithms). RobustCandidates counts the
	// distinct plan shapes scored.
	RobustE          float64
	RobustWorst      float64
	RobustCandidates int
	// Elapsed is the planning wall time.
	Elapsed time.Duration
}

// Optimizer plans queries against a catalog.
type Optimizer struct {
	cat   *catalog.Catalog
	model *cost.Model
	opts  Options
}

// New creates an optimizer.
func New(cat *catalog.Catalog, opts Options) *Optimizer {
	if opts.MaxMigrationPasses == 0 {
		opts.MaxMigrationPasses = 24
	}
	return &Optimizer{cat: cat, model: cost.NewModel(cat, opts.Caching), opts: opts}
}

// Model exposes the optimizer's cost model (used by the harness to report
// estimated costs of foreign plans).
func (o *Optimizer) Model() *cost.Model { return o.model }

// Plan optimizes the query, returning the chosen plan tree (annotated with
// estimates) and planning diagnostics.
func (o *Optimizer) Plan(q *query.Query) (plan.Node, *Info, error) {
	start := time.Now()
	if err := query.Analyze(o.cat, q); err != nil {
		return nil, nil, err
	}
	if o.opts.Feedback {
		query.ApplyFeedback(o.cat.Feedback(), q)
	}
	if len(q.Tables) == 0 {
		return nil, nil, fmt.Errorf("optimizer: query has no tables")
	}
	// Predicate transfer: estimate the filters once per query and plan the
	// whole search under the adjusted scans. The prepass's own cost is added
	// to the plan total below, never inside the recursive annotation — the
	// prepass runs once, not once per candidate subtree.
	o.model.Transfer = nil
	if o.opts.Transfer {
		ti, err := cost.ComputeTransfer(o.cat, q, o.opts.Caching)
		if err != nil {
			return nil, nil, err
		}
		o.model.Transfer = ti
	}
	var (
		root plan.Node
		info *Info
		err  error
	)
	switch o.opts.Algorithm {
	case LDL:
		root, info, err = o.planLDL(q)
	case LDLIKKBZ:
		root, info, err = o.planLDLIKKBZ(q)
	case Exhaustive:
		root, info, err = o.planExhaustive(q)
	case ExhaustiveBushy:
		root, info, err = o.planExhaustiveBushy(q)
	case Robust:
		root, info, err = o.planRobust(q)
	default:
		root, info, err = o.planSystemR(q)
	}
	if err != nil {
		return nil, nil, err
	}
	if o.opts.TopK != nil {
		switch root.(type) {
		case *plan.TopK, *plan.Limit:
			// planSystemR's finalize already chose and wrapped the root.
		default:
			// The LDL and exhaustive planners pick their root by unwrapped
			// cost; wrap it here so every algorithm executes ORDER BY + LIMIT
			// inside the plan when top-k planning is on.
			root, err = o.chooseTopK([]plan.Node{root}, info)
			if err != nil {
				return nil, nil, err
			}
		}
	}
	info.Algorithm = o.opts.Algorithm
	info.Elapsed = time.Since(start)
	info.EstCost = root.Cost()
	info.EstCard = root.Card()
	if ti := o.model.Transfer; ti != nil {
		info.TransferClasses = ti.Classes
		info.TransferPrepassCost = ti.PrepassCost
		info.EstCost += ti.PrepassCost
	}
	return root, info, nil
}

// selRank orders selections by the rank metric: (selectivity−1)/cost, with
// caching-aware per-tuple costs. streamCard contextualizes the caching
// discount.
func (o *Optimizer) selRank(p *query.Predicate, streamCard float64) float64 {
	return o.model.SelectionModule(p, streamCard).Rank()
}

// orderByRank sorts predicates ascending by rank (the provably optimal
// sequence for selections, §4.1); ties break by predicate ID for
// determinism. The Naive algorithm skips this ordering.
func (o *Optimizer) orderByRank(preds []*query.Predicate, streamCard float64) []*query.Predicate {
	out := append([]*query.Predicate(nil), preds...)
	if o.opts.Algorithm == NaivePushDown {
		sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		return out
	}
	sort.SliceStable(out, func(i, j int) bool {
		ri, rj := o.selRank(out[i], streamCard), o.selRank(out[j], streamCard)
		if !cost.ApproxEq(ri, rj) {
			return ri < rj
		}
		return out[i].ID < out[j].ID
	})
	return out
}
