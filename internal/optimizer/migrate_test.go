package optimizer

import (
	"testing"

	"predplace/internal/plan"
	"predplace/internal/query"
)

// q5 builds the Query 5 shape (Figure 9): t3, t6, t10 joined normally, t7
// connected only through an expensive join predicate, plus an expensive
// selection on t3. PullUp hoists the selection above the expensive join and
// explodes; Migration keeps it below.

func TestQuery5ExpensivePrimaryJoin(t *testing.T) {
	db := benchDB(t, 3, 6, 7, 10)
	sel := func() *query.Predicate {
		return fp(t, db, "costly100", query.ColRef{Table: "t3", Col: "u10"})
	}
	join := func() *query.Predicate {
		return fp(t, db, "costly10join",
			query.ColRef{Table: "t3", Col: "u20"}, query.ColRef{Table: "t7", Col: "u20"})
	}
	mk := func() *query.Query {
		return mkQuery(t, db, []string{"t3", "t6", "t7", "t10"}, []*query.Predicate{
			jp("t3", "ua1", "t10", "ua1"),
			jp("t6", "a1", "t10", "a10"),
			join(),
			sel(),
		})
	}
	pu, _ := planWith(t, db, PullUp, mk())
	mg, _ := planWith(t, db, Migration, mk())
	pd, _ := planWith(t, db, PushDown, mk())

	// The expensive-primary-join explosion: PullUp's plan must be
	// dramatically worse than Migration's.
	if pu.Cost() < mg.Cost()*3 {
		t.Fatalf("PullUp (%v) should explode vs Migration (%v)\npullup:\n%s\nmigration:\n%s",
			pu.Cost(), mg.Cost(), plan.Render(pu), plan.Render(mg))
	}
	if mg.Cost() > pd.Cost()*1.0001 {
		t.Fatalf("Migration (%v) must not lose to PushDown (%v)", mg.Cost(), pd.Cost())
	}
}

func TestMigrationFixpointTerminates(t *testing.T) {
	db := benchDB(t, 1, 3, 9, 10)
	q := mkQuery(t, db, []string{"t1", "t3", "t9", "t10"}, []*query.Predicate{
		jp("t1", "ua1", "t3", "ua1"),
		jp("t3", "ua1", "t10", "ua1"),
		jp("t9", "a10", "t10", "a10"),
		fp(t, db, "costly100", query.ColRef{Table: "t3", Col: "u20"}),
		fp(t, db, "costly10", query.ColRef{Table: "t10", Col: "u10"}),
		fp(t, db, "costly1", query.ColRef{Table: "t9", Col: "u100"}),
	})
	root, info := planWith(t, db, Migration, q)
	if info.MigrationPasses <= 0 {
		t.Fatal("migration did not run")
	}
	if info.MigrationPasses >= 24*5 {
		t.Fatalf("migration did not converge: %d passes", info.MigrationPasses)
	}
	if root.Cost() <= 0 {
		t.Fatal("bad cost")
	}
}

func TestMigrationIdempotent(t *testing.T) {
	// Running migrate on an already-migrated plan must not change its cost.
	db := benchDB(t, 1, 3, 10)
	q := mkQuery(t, db, []string{"t3", "t10", "t1"}, []*query.Predicate{
		jp("t3", "ua1", "t10", "ua1"),
		jp("t10", "ua1", "t1", "ua1"),
		fp(t, db, "costly100", query.ColRef{Table: "t3", Col: "u20"}),
	})
	opt := New(db.Cat, Options{Algorithm: Migration})
	root, _, err := opt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	again, _, err := opt.migrate(root)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cost() > root.Cost()*1.0001 || again.Cost() < root.Cost()*0.9999 {
		t.Fatalf("re-migration changed cost: %v -> %v", root.Cost(), again.Cost())
	}
}

func TestMigrationRespectsHomeConstraints(t *testing.T) {
	// A secondary join predicate must never sink below its primary join.
	db := benchDB(t, 3, 10)
	sec := jp("t3", "a10", "t10", "a10")
	q := mkQuery(t, db, []string{"t3", "t10"}, []*query.Predicate{
		jp("t3", "ua1", "t10", "ua1"),
		sec,
		fp(t, db, "costly100", query.ColRef{Table: "t10", Col: "u20"}),
	})
	root, _ := planWith(t, db, Migration, q)
	f, err := Flatten(root)
	if err != nil {
		t.Fatal(err)
	}
	// One of the two join predicates is primary; the other must live in
	// AfterFilters of step ≥ 0 — never in BaseFilters or InnerFilters.
	for _, p := range f.BaseFilters {
		if p.IsJoin() {
			t.Fatalf("join predicate sank to base filters:\n%s", plan.Render(root))
		}
	}
	for _, s := range f.Steps {
		for _, p := range s.InnerFilters {
			if p.IsJoin() {
				t.Fatalf("join predicate sank to inner filters:\n%s", plan.Render(root))
			}
		}
	}
}

func TestUnpruneableRetention(t *testing.T) {
	// With an expensive selection whose rank sits between a join's rank and
	// the group rank (Query 4 shape), the DP must retain unpruneable
	// subplans for the migration post-pass.
	db := benchDB(t, 1, 3, 10)
	q := mkQuery(t, db, []string{"t3", "t10", "t1"}, []*query.Predicate{
		jp("t3", "ua1", "t10", "ua1"),
		jp("t10", "ua1", "t1", "ua1"),
		fp(t, db, "costly100", query.ColRef{Table: "t3", Col: "u20"}),
	})
	_, info := planWith(t, db, Migration, q)
	if info.UnpruneableRetained == 0 {
		t.Fatal("expected unpruneable subplans to be retained (plan-space enlargement, §4.4)")
	}
}

func TestMigrateNeverIncreasesCost(t *testing.T) {
	// migrate() tracks the best placement seen (including the input), so
	// migrating any plan must never increase its estimated cost.
	db := benchDB(t, 1, 2, 3, 4)
	opt := New(db.Cat, Options{Algorithm: Migration})
	cases := [][]*query.Predicate{
		{jp("t1", "ua1", "t2", "ua1"), fp(t, db, "costly100", query.ColRef{Table: "t2", Col: "u20"})},
		{jp("t1", "ua1", "t3", "ua1"), jp("t3", "ua1", "t4", "ua1"),
			fp(t, db, "costly10", query.ColRef{Table: "t3", Col: "u10"}),
			fp(t, db, "costly1", query.ColRef{Table: "t4", Col: "u100"})},
		{jp("t2", "a10", "t4", "a10"), fp(t, db, "costly1000", query.ColRef{Table: "t2", Col: "ua1"})},
	}
	for ci, preds := range cases {
		tables := map[string]bool{}
		for _, p := range preds {
			for _, ref := range []query.ColRef{p.Left, p.Right} {
				if ref.Table != "" {
					tables[ref.Table] = true
				}
			}
			for _, a := range p.Args {
				tables[a.Table] = true
			}
		}
		var tlist []string
		for _, tb := range []string{"t1", "t2", "t3", "t4"} {
			if tables[tb] {
				tlist = append(tlist, tb)
			}
		}
		for _, seedAlgo := range []Algorithm{NaivePushDown, PushDown, PullUp} {
			q := mkQuery(t, db, tlist, clonePreds(preds))
			seed, _ := planWith(t, db, seedAlgo, q)
			migrated, _, err := opt.migrate(seed)
			if err != nil {
				t.Fatalf("case %d seed %v: %v", ci, seedAlgo, err)
			}
			if migrated.Cost() > seed.Cost()*1.0001 {
				t.Fatalf("case %d: migrate increased cost from %v (%v) to %v",
					ci, seed.Cost(), seedAlgo, migrated.Cost())
			}
		}
	}
}
