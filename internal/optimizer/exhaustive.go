package optimizer

import (
	"fmt"
	"math"

	"predplace/internal/plan"
	"predplace/internal/query"
)

// planExhaustive enumerates every left-deep join order crossed with every
// valid interleaving of the expensive selections into the plan — the
// brute-force oracle in Table 1 ("all queries, including those with
// expensive primary joins; prohibitive computational complexity").
//
// Expensive join predicates are not repositioned independently: they sit at
// their home join (as primary or immediately above), whose position the
// order enumeration already varies.
func (o *Optimizer) planExhaustive(q *query.Query) (plan.Node, *Info, error) {
	info := &Info{}
	n := len(q.Tables)
	var exp []*query.Predicate
	for _, p := range q.Preds {
		if p.IsExpensive() && !p.IsJoin() {
			exp = append(exp, p)
		}
	}
	if n > 7 || len(exp) > 4 {
		return nil, nil, fmt.Errorf("optimizer: exhaustive enumeration too large (%d tables, %d expensive selections)", n, len(exp))
	}

	tables := make([]int, n)
	for i := range tables {
		tables[i] = i
	}

	var best plan.Node
	bestCost := math.Inf(1)
	tried := 0

	permutations(tables, func(order []int) {
		ord := append([]int(nil), order...)
		// Legal positions per expensive selection given this order.
		posOf := make(map[string]int, n) // table -> step it enters (-1 = base)
		posOf[q.Tables[ord[0]]] = -1
		for s, idx := range ord[1:] {
			posOf[q.Tables[idx]] = s
		}
		options := make([][]int, len(exp))
		for i, p := range exp {
			home := -1
			for _, t := range p.Tables {
				if posOf[t] > home {
					home = posOf[t]
				}
			}
			var opts []int
			opts = append(opts, ScanLevel) // at the home table's scan
			for s := maxInt(home, 0); s < n-1; s++ {
				opts = append(opts, s)
			}
			if home >= 0 {
				// ScanLevel for an inner table means "below its join".
			}
			options[i] = opts
		}
		// Cartesian product of placements.
		place := map[*query.Predicate]int{}
		var rec func(i int)
		rec = func(i int) {
			if i == len(exp) {
				tried++
				plans, err := o.orderedPlans(q, ord, place)
				if err != nil {
					return
				}
				for _, sp := range plans {
					if sp.cost < bestCost {
						best, bestCost = sp.root, sp.cost
					}
				}
				return
			}
			for _, pos := range options[i] {
				place[exp[i]] = pos
				rec(i + 1)
			}
			delete(place, exp[i])
		}
		rec(0)
	})
	info.PlansRetained = tried
	if best == nil {
		return nil, nil, fmt.Errorf("optimizer: exhaustive search found no plan")
	}
	return best, info, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
