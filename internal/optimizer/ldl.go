package optimizer

import (
	"fmt"
	"math"

	"predplace/internal/plan"
	"predplace/internal/query"
)

// planLDL implements the LDL algorithm (§3.1): every expensive selection is
// treated as a join with a virtual relation of infinite cardinality, and a
// traditional join orderer plans the rewritten query over *left-deep* trees
// only. Because no left-deep tree can evaluate a virtual relation below the
// join its base relation enters as an inner, LDL is forced to pull expensive
// selections up from join inners — the over-eager pullup the paper
// demonstrates with Figures 1 and 2.
//
// Following Yajima et al. [YKY+91], the orderings are enumerated
// exhaustively (time exponential in the number of joins plus expensive
// selections).
func (o *Optimizer) planLDL(q *query.Query) (plan.Node, *Info, error) {
	info := &Info{}

	// Items: table indices 0..n-1, then virtual relations n..n+v-1 (one per
	// expensive single-table selection).
	n := len(q.Tables)
	var virtuals []*query.Predicate
	for _, p := range q.Preds {
		if p.IsExpensive() && !p.IsJoin() {
			virtuals = append(virtuals, p)
		}
	}
	v := len(virtuals)
	if n+v > 9 {
		return nil, nil, fmt.Errorf("optimizer: LDL enumeration over %d items is too large", n+v)
	}

	homeOf := func(vi int) int { return tableIndex(q, virtuals[vi].Tables[0]) }

	items := make([]int, n+v)
	for i := range items {
		items[i] = i
	}

	var best plan.Node
	bestCost := math.Inf(1)
	tried := 0
	permutations(items, func(perm []int) {
		// Validity: the first item must be a real table, and each virtual
		// item must appear after its base table.
		if perm[0] >= n {
			return
		}
		seen := make(map[int]bool, n)
		var tables []int
		place := map[*query.Predicate]int{}
		for _, it := range perm {
			if it < n {
				seen[it] = true
				tables = append(tables, it)
				continue
			}
			vi := it - n
			if !seen[homeOf(vi)] {
				return // virtual before its base relation
			}
			// Applying the virtual join here means filtering the current
			// stream: scan level if no join has happened yet, otherwise
			// above the latest join step.
			if len(tables) == 1 {
				place[virtuals[vi]] = ScanLevel
			} else {
				place[virtuals[vi]] = len(tables) - 2
			}
		}
		tried++
		plans, err := o.orderedPlans(q, tables, place)
		if err != nil {
			return
		}
		for _, sp := range plans {
			if sp.cost < bestCost {
				best, bestCost = sp.root, sp.cost
			}
		}
	})
	info.PlansRetained = tried
	if best == nil {
		return nil, nil, fmt.Errorf("optimizer: LDL found no plan")
	}
	return best, info, nil
}
