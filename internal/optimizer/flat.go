// Package optimizer implements a System R-style query optimizer with the
// paper's family of expensive-predicate placement algorithms: PushDown+ (with
// rank ordering), PullUp, PullRank, Predicate Migration (with unpruneable
// subplan retention), LDL (selections as virtual joins over left-deep trees),
// and an Exhaustive oracle.
package optimizer

import (
	"fmt"

	"predplace/internal/plan"
	"predplace/internal/query"
)

// FlatStep is one join step of a left-deep plan: the join itself, the
// selections applied below it on the inner side, and the selections applied
// directly above it (before the next join).
type FlatStep struct {
	Method        plan.JoinMethod
	Primary       *query.Predicate // nil = cross product (NestLoop only)
	Inner         plan.Node        // inner access path, no filters
	InnerTable    string
	InnerIndexCol string
	SortOuter     bool
	SortInner     bool
	// InnerFilters apply to the inner base table below the join, bottom first.
	InnerFilters []*query.Predicate
	// AfterFilters apply to the join's output, bottom first.
	AfterFilters []*query.Predicate
}

// FlatPlan is the flattened form of a left-deep plan tree. It is the working
// representation of the Predicate Migration algorithm (which moves
// predicates between the filter lists), the LDL rewriting, and the
// exhaustive oracle.
type FlatPlan struct {
	Base      plan.Node // outermost access path, no filters
	BaseTable string
	// BaseFilters apply to the base table before the first join, bottom first.
	BaseFilters []*query.Predicate
	Steps       []*FlatStep
}

// Flatten decomposes a left-deep plan tree. It errors on bushy trees.
func Flatten(root plan.Node) (*FlatPlan, error) {
	chain, node := plan.TopFilters(root)
	switch t := node.(type) {
	case *plan.Join:
		f, err := Flatten(t.Outer)
		if err != nil {
			return nil, err
		}
		innerChain, innerBase := plan.TopFilters(t.Inner)
		if _, isJoin := innerBase.(*plan.Join); isJoin {
			return nil, fmt.Errorf("optimizer: plan is not left-deep")
		}
		innerTable, _, _ := plan.BaseTable(innerBase)
		step := &FlatStep{
			Method:        t.Method,
			Primary:       t.Primary,
			Inner:         innerBase,
			InnerTable:    innerTable,
			InnerIndexCol: t.InnerIndexCol,
			SortOuter:     t.SortOuter,
			SortInner:     t.SortInner,
			InnerFilters:  bottomFirst(innerChain),
			AfterFilters:  bottomFirst(chain),
		}
		f.Steps = append(f.Steps, step)
		return f, nil
	case *plan.SeqScan, *plan.IndexScan:
		table, _, _ := plan.BaseTable(node)
		return &FlatPlan{
			Base:        node,
			BaseTable:   table,
			BaseFilters: bottomFirst(chain),
		}, nil
	default:
		return nil, fmt.Errorf("optimizer: cannot flatten node %T", node)
	}
}

// bottomFirst converts a TopFilters chain (outermost first) to a bottom-first
// predicate list.
func bottomFirst(chain []*plan.Filter) []*query.Predicate {
	out := make([]*query.Predicate, len(chain))
	for i, f := range chain {
		out[len(chain)-1-i] = f.Pred
	}
	return out
}

// chainFilters wraps node in fresh Filter nodes applying preds bottom-first.
func chainFilters(node plan.Node, preds []*query.Predicate) plan.Node {
	for _, p := range preds {
		node = &plan.Filter{Input: node, Pred: p}
	}
	return node
}

// Tree rebuilds the plan tree (with fresh Filter and Join nodes; access-path
// leaves are shared). Cost annotations are not filled; run Annotate.
func (f *FlatPlan) Tree() plan.Node {
	cur := chainFilters(f.Base, f.BaseFilters)
	for _, s := range f.Steps {
		inner := chainFilters(s.Inner, s.InnerFilters)
		j := &plan.Join{
			Method:           s.Method,
			Outer:            cur,
			Inner:            inner,
			Primary:          s.Primary,
			InnerIndexCol:    s.InnerIndexCol,
			ExpensivePrimary: s.Primary != nil && s.Primary.IsExpensive(),
			SortOuter:        s.SortOuter,
			SortInner:        s.SortInner,
		}
		j.ColRefs = plan.ConcatCols(cur, inner)
		cur = chainFilters(j, s.AfterFilters)
	}
	return cur
}

// Clone deep-copies the flat plan's mutable structure (filter slices and
// steps); access-path nodes and predicates are shared.
func (f *FlatPlan) Clone() *FlatPlan {
	out := &FlatPlan{
		Base:        f.Base,
		BaseTable:   f.BaseTable,
		BaseFilters: append([]*query.Predicate(nil), f.BaseFilters...),
	}
	for _, s := range f.Steps {
		cp := *s
		cp.InnerFilters = append([]*query.Predicate(nil), s.InnerFilters...)
		cp.AfterFilters = append([]*query.Predicate(nil), s.AfterFilters...)
		out.Steps = append(out.Steps, &cp)
	}
	return out
}

// signature encodes the plan's predicate placement for cycle detection.
func (f *FlatPlan) signature() string {
	var b []byte
	app := func(preds []*query.Predicate) {
		for _, p := range preds {
			b = append(b, byte(p.ID))
		}
		b = append(b, '|')
	}
	app(f.BaseFilters)
	for _, s := range f.Steps {
		app(s.InnerFilters)
		app(s.AfterFilters)
	}
	return string(b)
}

// homeStep returns the smallest step index j such that predicate p can be
// evaluated at or above step j's join: all tables p references are available
// in {base, inner(0..j)}. It returns -1 when p only references the base
// table (p may sit below every join) and -2 with ok=false when p references
// a table not in the plan.
func (f *FlatPlan) homeStep(p *query.Predicate) (int, bool) {
	pos := map[string]int{f.BaseTable: -1}
	for i, s := range f.Steps {
		pos[s.InnerTable] = i
	}
	home := -1
	for _, t := range p.Tables {
		j, ok := pos[t]
		if !ok {
			return -2, false
		}
		if j > home {
			home = j
		}
	}
	return home, true
}

// joinNodes returns the annotated tree's join nodes in step order; tree must
// have been produced by f.Tree() (same shape).
func joinNodes(root plan.Node) []*plan.Join {
	var out []*plan.Join
	_, node := plan.TopFilters(root)
	for {
		j, ok := node.(*plan.Join)
		if !ok {
			break
		}
		out = append(out, j)
		_, node = plan.TopFilters(j.Outer)
	}
	// Collected root-first; reverse to step order.
	for i, k := 0, len(out)-1; i < k; i, k = i+1, k-1 {
		out[i], out[k] = out[k], out[i]
	}
	return out
}
