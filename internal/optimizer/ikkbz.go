package optimizer

import (
	"fmt"
	"math"
	"sort"

	"predplace/internal/cost"
	"predplace/internal/plan"
	"predplace/internal/query"
)

// This file implements the IK-KBZ polynomial-time join-ordering algorithm
// (Ibaraki & Kameda 1984; Krishnamurthy, Boral & Zaniolo 1986) that [KZ88]
// proposed pairing with the LDL rewrite (§3.1 of the paper). Expensive
// selections enter as virtual relations: children of their base relation in
// the precedence tree, with T = selectivity and per-stream-tuple cost = the
// function's cost — exactly the LDL view of a selection as a join with an
// infinite relation whose join cost is the function cost.
//
// The algorithm requires an acyclic (tree) query graph; cyclic or
// disconnected graphs fall back to the exhaustive LDL enumerator.

// ikItem is one element of an IK-KBZ sequence: a real table or a virtual
// selection.
type ikItem struct {
	table   int              // table index, or -1 for a virtual selection
	virtual *query.Predicate // non-nil for virtual selections
}

// ikUnit is a (possibly compound) module of the ASI normalization: T is the
// multiplicative effect on the stream cardinality, C the cost per incoming
// stream tuple; compound units concatenate their members' items.
type ikUnit struct {
	T, C  float64
	items []ikItem
}

func (u ikUnit) rank() float64 { return query.Rank(u.T, u.C) }

// ikCompose fuses unit a followed by unit b (the ASI composition — the same
// law as the paper's join-group rank).
func ikCompose(a, b ikUnit) ikUnit {
	return ikUnit{
		T:     a.T * b.T,
		C:     a.C + a.T*b.C,
		items: append(append([]ikItem(nil), a.items...), b.items...),
	}
}

// ikNormalize merges adjacent out-of-rank-order units so ranks ascend.
func ikNormalize(chain []ikUnit) []ikUnit {
	var out []ikUnit
	for _, u := range chain {
		out = append(out, u)
		for len(out) >= 2 && out[len(out)-2].rank() > out[len(out)-1].rank() {
			merged := ikCompose(out[len(out)-2], out[len(out)-1])
			out = out[:len(out)-2]
			out = append(out, merged)
		}
	}
	return out
}

// ikMerge interleaves normalized chains by ascending rank (stable).
func ikMerge(chains [][]ikUnit) []ikUnit {
	var all []ikUnit
	for _, c := range chains {
		all = append(all, c...)
	}
	// Each chain is already ascending; a stable sort by rank preserves
	// intra-chain precedence because equal-traversal order is kept and
	// within a chain ranks ascend.
	sort.SliceStable(all, func(i, j int) bool { return all[i].rank() < all[j].rank() })
	return all
}

// ikEdge is a query-graph edge with combined selectivity.
type ikEdge struct {
	to  int
	sel float64
}

// buildIKGraph builds the table-level query graph, verifying it is a tree.
func buildIKGraph(q *query.Query) (map[int][]ikEdge, error) {
	n := len(q.Tables)
	idx := map[string]int{}
	for i, t := range q.Tables {
		idx[t] = i
	}
	type pair struct{ a, b int }
	sel := map[pair]float64{}
	for _, p := range q.Preds {
		if !p.IsJoin() {
			continue
		}
		if len(p.Tables) != 2 {
			return nil, fmt.Errorf("optimizer: hyper-edge predicate %v not supported by IK-KBZ", p)
		}
		a, b := idx[p.Tables[0]], idx[p.Tables[1]]
		if a > b {
			a, b = b, a
		}
		k := pair{a, b}
		if _, ok := sel[k]; !ok {
			sel[k] = 1
		}
		sel[k] *= p.Selectivity
	}
	if len(sel) != n-1 {
		return nil, fmt.Errorf("optimizer: query graph is not a tree (%d tables, %d edges)", n, len(sel))
	}
	adj := map[int][]ikEdge{}
	for k, s := range sel {
		adj[k.a] = append(adj[k.a], ikEdge{to: k.b, sel: s})
		adj[k.b] = append(adj[k.b], ikEdge{to: k.a, sel: s})
	}
	// Connectivity check (tree with n-1 edges is a tree iff connected).
	seen := map[int]bool{0: true}
	stack := []int{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range adj[v] {
			if !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	if len(seen) != n {
		return nil, fmt.Errorf("optimizer: query graph is disconnected")
	}
	return adj, nil
}

// ikkbzOrder runs IK-KBZ over every possible root and returns the best
// (table order, virtual placement) found, with its ASI cost.
func (o *Optimizer) ikkbzOrder(q *query.Query, virtuals []*query.Predicate) ([]int, map[*query.Predicate]int, error) {
	adj, err := buildIKGraph(q)
	if err != nil {
		return nil, nil, err
	}
	n := len(q.Tables)

	// Cardinalities after cheap local selections.
	card := make([]float64, n)
	for i, t := range q.Tables {
		tab, err := o.cat.Table(t)
		if err != nil {
			return nil, nil, err
		}
		c := float64(tab.Card)
		for _, p := range q.SelectionsOn(t) {
			if !p.IsExpensive() {
				c *= p.Selectivity
			}
		}
		card[i] = c
	}
	virtualsOf := make(map[int][]*query.Predicate)
	for _, p := range virtuals {
		i := tableIndex(q, p.Tables[0])
		virtualsOf[i] = append(virtualsOf[i], p)
	}

	// κ converts produced tuples into I/O-unit cost so join and selection
	// ranks are commensurable.
	const kappa = 2 * cost.HashSpillPerTuple

	bestCost := math.Inf(1)
	var bestSeq []ikItem
	for root := 0; root < n; root++ {
		var solve func(v, parent int, edgeSel float64) []ikUnit
		solve = func(v, parent int, edgeSel float64) []ikUnit {
			// Unit for v itself (relative to the incoming stream).
			T := edgeSel * card[v]
			u := ikUnit{T: T, C: math.Max(T*kappa, 1e-9), items: []ikItem{{table: v}}}
			var chains [][]ikUnit
			// Virtual selections hang off their base relation.
			for _, p := range virtualsOf[v] {
				chains = append(chains, []ikUnit{{
					T:     p.Selectivity,
					C:     p.CostPerTuple,
					items: []ikItem{{table: -1, virtual: p}},
				}})
			}
			for _, e := range adj[v] {
				if e.to == parent {
					continue
				}
				chains = append(chains, ikNormalize(solve(e.to, v, e.sel)))
			}
			return append([]ikUnit{u}, ikMerge(chains)...)
		}
		chain := solve(root, -1, 1)
		// Root unit: the initial scan.
		chain[0].T = card[root]
		chain[0].C = card[root] / 78 * cost.SeqPageCost // pages ≈ card/78
		// ASI cost of the sequence.
		total, prefix := 0.0, 1.0
		var seq []ikItem
		for _, u := range chain {
			total += prefix * u.C
			prefix *= u.T
			seq = append(seq, u.items...)
		}
		if total < bestCost {
			bestCost = total
			bestSeq = seq
		}
	}

	// Expand the item sequence into a table order plus virtual placements.
	var order []int
	place := map[*query.Predicate]int{}
	for _, it := range bestSeq {
		if it.virtual != nil {
			if len(order) <= 1 {
				place[it.virtual] = ScanLevel
			} else {
				place[it.virtual] = len(order) - 2
			}
			continue
		}
		order = append(order, it.table)
	}
	if len(order) != n {
		return nil, nil, fmt.Errorf("optimizer: IK-KBZ produced a bad sequence")
	}
	return order, place, nil
}

// planLDLIKKBZ is the LDL algorithm with IK-KBZ ordering (the [KZ88]
// combination): polynomial in the number of relations plus expensive
// selections, restricted to acyclic query graphs; cyclic graphs fall back to
// the exhaustive LDL enumeration.
func (o *Optimizer) planLDLIKKBZ(q *query.Query) (plan.Node, *Info, error) {
	var virtuals []*query.Predicate
	for _, p := range q.Preds {
		if p.IsExpensive() && !p.IsJoin() {
			virtuals = append(virtuals, p)
		}
	}
	if len(q.Tables) == 1 {
		return o.planSystemR(q)
	}
	order, place, err := o.ikkbzOrder(q, virtuals)
	if err != nil {
		return o.planLDL(q) // cyclic/disconnected: exhaustive LDL
	}
	plans, err := o.orderedPlans(q, order, place)
	if err != nil {
		return nil, nil, err
	}
	best := cheapest(plans)
	return best.root, &Info{PlansRetained: len(plans)}, nil
}
