package optimizer

// Robust predicate placement: instead of trusting the point estimates the
// rank metric is so sensitive to, score each candidate plan over an
// estimate-error interval and keep the plan whose worst case is best (after
// "Debunking the Myth of Join Ordering", arXiv 2502.15181, adapted to the
// paper's placement problem).
//
// Candidate generation reuses the System R planner under the placement
// spectrum's algorithms (PushDown, PullRank, Migration, PullUp) — and,
// because all of them share the same estimates, additionally re-plans the
// spectrum under the interval's endpoint selectivities (every selectivity
// ×e and ÷e): a join order or access path that only wins when the estimates
// are wrong by a factor of e is exactly the alternative a robust choice must
// have available. The deduplicated candidates are then costed at the four
// corners of the (selectivity ×e/÷e, expensive-cost ×e/÷e) error box by
// perturbing the shared predicate annotations and re-annotating each tree;
// the plan minimizing the maximum corner cost wins, with the nominal cost
// breaking ties.

import (
	"strings"

	"predplace/internal/cost"
	"predplace/internal/plan"
	"predplace/internal/query"
)

// DefaultRobustE is the error-interval half-width used when Options.RobustE
// is unset: estimates trusted up to a factor of 4 either way.
const DefaultRobustE = 4.0

// robustSpectrum is the set of placement algorithms whose System R runs seed
// the candidate pool — the Figure 10 eagerness spectrum.
var robustSpectrum = []Algorithm{PushDown, PullRank, Migration, PullUp}

// planRobust implements Algorithm Robust; see the file comment.
func (o *Optimizer) planRobust(q *query.Query) (plan.Node, *Info, error) {
	e := o.opts.RobustE
	if e <= 1 {
		e = DefaultRobustE
	}

	// Snapshot the nominal annotations; every perturbation below mutates the
	// shared predicates and must restore them.
	nominalSel := make([]float64, len(q.Preds))
	nominalCost := make([]float64, len(q.Preds))
	for i, p := range q.Preds {
		nominalSel[i] = p.Selectivity
		nominalCost[i] = p.CostPerTuple
	}
	restore := func() {
		for i, p := range q.Preds {
			p.Selectivity = nominalSel[i]
			p.CostPerTuple = nominalCost[i]
		}
	}

	type candidate struct {
		root    plan.Node
		info    *Info
		worst   float64
		nominal float64
	}
	var cands []*candidate
	seen := map[string]bool{}
	for _, selScale := range []float64{1, e, 1 / e} {
		for i, p := range q.Preds {
			p.Selectivity = clampSel(nominalSel[i] * selScale)
		}
		for _, a := range robustSpectrum {
			sub := *o
			sub.opts.Algorithm = a
			root, info, err := sub.planSystemR(q)
			if err != nil {
				restore()
				return nil, nil, err
			}
			key := planShapeKey(root)
			if seen[key] {
				continue
			}
			seen[key] = true
			cands = append(cands, &candidate{root: root, info: info})
		}
	}

	// Score every candidate at the four corners of the error box. A corner
	// scales all selectivities by one factor and all expensive per-tuple
	// costs by another; cheap predicates (cost 0) stay free.
	corners := [4][2]float64{{e, e}, {e, 1 / e}, {1 / e, e}, {1 / e, 1 / e}}
	for _, c := range cands {
		for _, corner := range corners {
			for i, p := range q.Preds {
				p.Selectivity = clampSel(nominalSel[i] * corner[0])
				p.CostPerTuple = nominalCost[i] * corner[1]
			}
			if err := o.model.Annotate(c.root); err != nil {
				restore()
				return nil, nil, err
			}
			if got := c.root.Cost(); got > c.worst {
				c.worst = got
			}
		}
	}

	// Restore the nominal annotations on every candidate tree — the chosen
	// plan leaves the planner carrying point-estimate cards and costs, like
	// every other algorithm's output.
	restore()
	for _, c := range cands {
		if err := o.model.Annotate(c.root); err != nil {
			return nil, nil, err
		}
		c.nominal = c.root.Cost()
	}

	best := cands[0]
	for _, c := range cands[1:] {
		switch {
		case !cost.ApproxEq(c.worst, best.worst):
			if c.worst < best.worst {
				best = c
			}
		case !cost.ApproxEq(c.nominal, best.nominal) && c.nominal < best.nominal:
			best = c
		}
	}
	info := best.info
	info.RobustE = e
	info.RobustWorst = best.worst
	info.RobustCandidates = len(cands)
	return best.root, info, nil
}

// clampSel keeps a perturbed selectivity a valid probability.
func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// planShapeKey reduces a plan to its operator structure, dropping the
// per-node estimate annotations: two candidates planned under different
// scenario selectivities are the same plan exactly when they run the same
// operators in the same tree.
func planShapeKey(n plan.Node) string {
	var b strings.Builder
	var walk func(plan.Node, int)
	walk = func(n plan.Node, depth int) {
		b.WriteString(strings.Repeat(" ", depth))
		b.WriteString(n.Describe())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}
