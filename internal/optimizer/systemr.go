package optimizer

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"predplace/internal/cost"
	"predplace/internal/expr"
	"predplace/internal/plan"
	"predplace/internal/query"
)

// subplan is one retained entry of the dynamic-programming table.
type subplan struct {
	root  plan.Node
	set   uint32       // bitset of q.Tables indices
	order query.ColRef // output ordering column (zero value = unordered)
	cost  float64
	card  float64
	// buried marks expensive predicates sitting below some join in this
	// subplan — the paper's "unpruneable" condition: PullRank declined a
	// pullup, so Predicate Migration must see this subplan later.
	buried uint64
}

func (s *subplan) unpruneable() bool { return s.buried != 0 }

// planSystemR runs the left-deep System R enumeration with the configured
// placement algorithm.
func (o *Optimizer) planSystemR(q *query.Query) (plan.Node, *Info, error) {
	n := len(q.Tables)
	if n > 12 {
		return nil, nil, fmt.Errorf("optimizer: %d-way join exceeds the System R enumerator's limit", n)
	}
	info := &Info{}

	base := make([][]*subplan, n)
	for i := range q.Tables {
		sps, err := o.accessPaths(q, i)
		if err != nil {
			return nil, nil, err
		}
		base[i] = sps
	}

	if n == 1 {
		info.PlansRetained = len(base[0])
		finalists := []*subplan{cheapest(base[0])}
		if o.opts.TopK != nil {
			// Keep every access path alive for finalize: a full index scan
			// on the ORDER BY key loses on unwrapped cost but can win once
			// an early-terminating Limit prices it.
			finalists = base[0]
		}
		root, err := o.finalize(q, finalists, info)
		return root, info, err
	}

	table := make(map[uint32][]*subplan)
	for i := range q.Tables {
		table[1<<uint(i)] = base[i]
	}
	full := uint32(1)<<uint(n) - 1
	for mask := uint32(1); mask <= full; mask++ {
		size := bits.OnesCount32(mask)
		if size < 2 {
			continue
		}
		var cands []*subplan
		for i := 0; i < n; i++ {
			bit := uint32(1) << uint(i)
			if mask&bit == 0 {
				continue
			}
			outerMask := mask &^ bit
			for _, op := range table[outerMask] {
				for _, ip := range base[i] {
					cs, err := o.joinCandidates(q, op, ip)
					if err != nil {
						return nil, nil, err
					}
					cands = append(cands, cs...)
				}
			}
		}
		kept, unpr := o.prune(cands)
		table[mask] = kept
		info.UnpruneableRetained += unpr
	}
	for _, sps := range table {
		info.PlansRetained += len(sps)
	}
	root, err := o.finalize(q, table[full], info)
	return root, info, err
}

// finalize applies the Predicate Migration post-pass (when selected) to every
// retained final plan and returns the cheapest. With top-k planning on, it is
// also the wrap site: wrapping happens after migration (Flatten cannot stream
// a TopK/Limit root), with the baseline best plan first so ties keep the plan
// the facade sort would have executed, and other finalists considered only
// when their output order satisfies the ORDER BY.
func (o *Optimizer) finalize(q *query.Query, finalists []*subplan, info *Info) (plan.Node, error) {
	if len(finalists) == 0 {
		return nil, fmt.Errorf("optimizer: no plan found")
	}
	var roots []plan.Node
	var baseline plan.Node
	if o.opts.Algorithm != Migration {
		baseline = cheapest(finalists).root
		if o.opts.TopK == nil {
			return baseline, nil
		}
		for _, sp := range finalists {
			roots = append(roots, sp.root)
		}
	} else {
		bestCost := math.Inf(1)
		for _, sp := range finalists {
			migrated, passes, err := o.migrate(sp.root)
			if err != nil {
				return nil, err
			}
			info.MigrationPasses += passes
			roots = append(roots, migrated)
			if migrated.Cost() < bestCost {
				baseline, bestCost = migrated, migrated.Cost()
			}
		}
		if o.opts.TopK == nil {
			return baseline, nil
		}
	}
	cands := []plan.Node{baseline}
	for _, r := range roots {
		if r != baseline && o.orderSatisfied(r) {
			cands = append(cands, r)
		}
	}
	return o.chooseTopK(cands, info)
}

func cheapest(sps []*subplan) *subplan {
	best := sps[0]
	for _, sp := range sps[1:] {
		if sp.cost < best.cost {
			best = sp
		}
	}
	return best
}

// prune keeps, per (order, buried-signature) bucket, only the cheapest plan.
// Plans with a non-empty buried set survive pruning they would otherwise
// lose (the unpruneable retention of §4.4); unpr counts them.
func (o *Optimizer) prune(cands []*subplan) (kept []*subplan, unpr int) {
	type key struct {
		order  query.ColRef
		buried uint64
	}
	bestBy := map[key]*subplan{}
	for _, sp := range cands {
		k := key{order: sp.order}
		if o.opts.Algorithm == Migration && !o.opts.DisableUnpruneable {
			k.buried = sp.buried
		}
		if cur, ok := bestBy[k]; !ok || sp.cost < cur.cost {
			bestBy[k] = sp
		}
	}
	// Count plans that survive only due to their buried signature.
	minCost := map[query.ColRef]float64{}
	for k, sp := range bestBy {
		if cur, ok := minCost[k.order]; !ok || sp.cost < cur {
			minCost[k.order] = sp.cost
		}
	}
	for k, sp := range bestBy {
		kept = append(kept, sp)
		if k.buried != 0 && sp.cost > minCost[k.order] {
			unpr++
		}
	}
	// Deterministic order (map iteration above is not): cost, then order
	// column, then buried signature — equal-cost ties always resolve the
	// same way, so plans are reproducible run to run.
	sort.Slice(kept, func(i, j int) bool {
		if !cost.ApproxEq(kept[i].cost, kept[j].cost) {
			return kept[i].cost < kept[j].cost
		}
		oi, oj := kept[i].order.String(), kept[j].order.String()
		if oi != oj {
			return oi < oj
		}
		return kept[i].buried < kept[j].buried
	})
	return kept, unpr
}

// accessPaths generates base subplans for table index i: a sequential scan
// and one index scan per matching cheap selection, each with the remaining
// selections layered per the configured algorithm (cheap first, expensive
// rank-ordered above — at base level every algorithm but Naive agrees).
func (o *Optimizer) accessPaths(q *query.Query, i int) ([]*subplan, error) {
	return o.accessPathsPlace(q, i, true)
}

// accessPathsPlace is accessPaths with control over whether the table's
// expensive selections are attached (the LDL and Exhaustive enumerators
// place them explicitly).
func (o *Optimizer) accessPathsPlace(q *query.Query, i int, withExpensive bool) ([]*subplan, error) {
	t := q.Tables[i]
	tab, err := o.cat.Table(t)
	if err != nil {
		return nil, err
	}
	cols := make([]query.ColRef, len(tab.Columns))
	for ci, c := range tab.Columns {
		cols[ci] = query.ColRef{Table: t, Col: c.Name}
	}
	sels := q.SelectionsOn(t)
	var cheap, exp []*query.Predicate
	for _, p := range sels {
		if p.IsExpensive() {
			if withExpensive {
				exp = append(exp, p)
			}
		} else {
			cheap = append(cheap, p)
		}
	}

	build := func(baseNode plan.Node, order query.ColRef, rest []*query.Predicate) (*subplan, error) {
		var preds []*query.Predicate
		if o.opts.Algorithm == NaivePushDown {
			preds = o.orderByRank(append(append([]*query.Predicate(nil), rest...), exp...), float64(tab.Card))
		} else {
			preds = append(preds, o.orderByRank(rest, float64(tab.Card))...)
			preds = append(preds, o.orderByRank(exp, float64(tab.Card))...)
		}
		root := chainFilters(baseNode, preds)
		if err := o.model.Annotate(root); err != nil {
			return nil, err
		}
		return &subplan{
			root:  root,
			set:   1 << uint(i),
			order: order,
			cost:  root.Cost(),
			card:  root.Card(),
		}, nil
	}

	var out []*subplan
	seq, err := build(&plan.SeqScan{Table: t, ColRefs: cols}, query.ColRef{}, cheap)
	if err != nil {
		return nil, err
	}
	out = append(out, seq)

	for _, p := range cheap {
		if p.Kind != query.KindSelCmp || !tab.HasIndex(p.Left.Col) || p.Value.Kind != expr.TInt {
			continue
		}
		is := &plan.IndexScan{Table: t, Col: p.Left.Col, Matched: p, ColRefs: cols}
		var order query.ColRef
		v := p.Value
		switch p.Op {
		case expr.OpEQ:
			is.Eq = &v
		case expr.OpLT, expr.OpLE:
			hi := v
			if p.Op == expr.OpLT {
				hi = expr.I(v.I - 1)
			}
			is.Hi = &hi
			order = p.Left
		case expr.OpGT, expr.OpGE:
			lo := v
			if p.Op == expr.OpGT {
				lo = expr.I(v.I + 1)
			}
			is.Lo = &lo
			order = p.Left
		default:
			continue
		}
		rest := make([]*query.Predicate, 0, len(cheap)-1)
		for _, c := range cheap {
			if c != p {
				rest = append(rest, c)
			}
		}
		sp, err := build(is, order, rest)
		if err != nil {
			return nil, err
		}
		out = append(out, sp)
	}
	// Top-k order propagation: a full ascending index scan on the ORDER BY
	// key delivers rows in query order with no sort node. On its own it loses
	// to a SeqScan (a random fetch per tuple), but under an ordered Limit
	// only the first k survivors' fetches are ever paid — finalize prices
	// that when it wraps the retained roots.
	if spec := o.opts.TopK; spec != nil && !spec.Desc && spec.Key.Table == t && tab.HasIndex(spec.Key.Col) {
		is := &plan.IndexScan{Table: t, Col: spec.Key.Col, ColRefs: cols}
		sp, err := build(is, spec.Key, cheap)
		if err != nil {
			return nil, err
		}
		out = append(out, sp)
	}
	return out, nil
}
