package optimizer

import (
	"testing"

	"predplace/internal/plan"
	"predplace/internal/query"
)

// isBushy reports whether any join in the tree has a join beneath its inner.
func isBushy(root plan.Node) bool {
	found := false
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if j, ok := n.(*plan.Join); ok {
			if _, inner := plan.TopFilters(j.Inner); true {
				if _, isJoin := inner.(*plan.Join); isJoin {
					found = true
				}
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(root)
	return found
}

func TestBushyNeverLosesToLeftDeepOracle(t *testing.T) {
	db := benchDB(t, 1, 2, 3, 4)
	queries := []func() *query.Query{
		func() *query.Query {
			return mkQuery(t, db, []string{"t1", "t2", "t3", "t4"}, []*query.Predicate{
				jp("t1", "ua1", "t2", "ua1"),
				jp("t3", "ua1", "t4", "ua1"),
				jp("t2", "a10", "t3", "a10"),
				fp(t, db, "costly100", query.ColRef{Table: "t2", Col: "u20"}),
			})
		},
		func() *query.Query {
			return mkQuery(t, db, []string{"t1", "t3", "t4"}, []*query.Predicate{
				jp("t1", "ua1", "t3", "ua1"),
				jp("t3", "ua1", "t4", "ua1"),
				fp(t, db, "costly10", query.ColRef{Table: "t4", Col: "u10"}),
			})
		},
	}
	for qi, mk := range queries {
		bushy, _ := planWith(t, db, ExhaustiveBushy, mk())
		ld, _ := planWith(t, db, Exhaustive, mk())
		if bushy.Cost() > ld.Cost()*1.0001 {
			t.Fatalf("query %d: bushy oracle (%v) lost to left-deep oracle (%v)",
				qi, bushy.Cost(), ld.Cost())
		}
	}
}

func TestBushyFindsBushyWinner(t *testing.T) {
	// Two selective pair-joins bridged by a weaker predicate: joining the
	// pairs independently first ((t1⋈t2) ⋈ (t3⋈t4)) beats every left-deep
	// order, which must drag a big intermediate through the bridge.
	db := benchDB(t, 1, 2, 3, 4)
	q := mkQuery(t, db, []string{"t4", "t2", "t3", "t1"}, []*query.Predicate{
		jp("t4", "a10", "t2", "a10"),
		jp("t2", "a10", "t3", "a10"),
		jp("t3", "ua1", "t1", "ua1"),
	})
	bushy, _ := planWith(t, db, ExhaustiveBushy, q)
	q2 := mkQuery(t, db, []string{"t4", "t2", "t3", "t1"}, []*query.Predicate{
		jp("t4", "a10", "t2", "a10"),
		jp("t2", "a10", "t3", "a10"),
		jp("t3", "ua1", "t1", "ua1"),
	})
	ld, _ := planWith(t, db, Exhaustive, q2)
	if !isBushy(bushy) {
		t.Logf("bushy oracle chose a left-deep plan here:\n%s", plan.Render(bushy))
	}
	if bushy.Cost() > ld.Cost()*1.0001 {
		t.Fatalf("bushy (%v) must not lose to left-deep (%v)", bushy.Cost(), ld.Cost())
	}
}

func TestBushyGuards(t *testing.T) {
	db := benchDB(t, 1, 2, 3, 4)
	tables := make([]string, 8)
	for i := range tables {
		tables[i] = "t1"
	}
	o := New(db.Cat, Options{Algorithm: ExhaustiveBushy})
	q, err := query.NewQuery([]string{"t1", "t2"}, []*query.Predicate{
		jp("t1", "ua1", "t2", "ua1"),
		fp(t, db, "costly1", query.ColRef{Table: "t1", Col: "u10"}),
		fp(t, db, "costly1", query.ColRef{Table: "t1", Col: "u20"}),
		fp(t, db, "costly10", query.ColRef{Table: "t1", Col: "u100"}),
		fp(t, db, "costly10", query.ColRef{Table: "t2", Col: "u10"}),
		fp(t, db, "costly100", query.ColRef{Table: "t2", Col: "u20"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := query.Analyze(db.Cat, q); err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.Plan(q); err == nil {
		t.Fatal("more than 4 expensive selections should be rejected")
	}
}

func TestBushyPlansExecuteCorrectly(t *testing.T) {
	// The bushy DP must place every predicate exactly once.
	db := benchDB(t, 1, 2, 3)
	sel := fp(t, db, "costly10", query.ColRef{Table: "t2", Col: "u10"})
	q := mkQuery(t, db, []string{"t1", "t2", "t3"}, []*query.Predicate{
		jp("t1", "ua1", "t2", "ua1"),
		jp("t2", "ua1", "t3", "ua1"),
		sel,
	})
	root, _ := planWith(t, db, ExhaustiveBushy, q)
	count := 0
	for _, f := range plan.CollectFilters(root) {
		if f.Pred == sel {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("expensive selection applied %d times:\n%s", count, plan.Render(root))
	}
}
