package optimizer

import (
	"testing"

	"predplace/internal/expr"
	"predplace/internal/plan"
	"predplace/internal/query"
)

// TestPlansSatisfyValidate holds every algorithm's output — across join
// chains, expensive selections, and cheap indexable selections, with and
// without caching — to plan.Validate's structural invariants. This is the
// dynamic counterpart of pplint: whatever placement an algorithm picks, the
// tree it hands the executor must be well-formed.
func TestPlansSatisfyValidate(t *testing.T) {
	db := benchDB(t, 1, 3, 10)
	queries := map[string]*query.Query{
		"chain3-costly-between-ranks": mkQuery(t, db, []string{"t1", "t3", "t10"}, []*query.Predicate{
			jp("t1", "ua1", "t3", "ua1"),
			jp("t3", "ua1", "t10", "ua1"),
			fp(t, db, "costly100", query.ColRef{Table: "t3", Col: "u20"}),
		}),
		"two-costly-plus-cheap": mkQuery(t, db, []string{"t1", "t3"}, []*query.Predicate{
			jp("t1", "ua1", "t3", "ua1"),
			fp(t, db, "costly10", query.ColRef{Table: "t1", Col: "u10"}),
			fp(t, db, "costly100", query.ColRef{Table: "t3", Col: "u20"}),
			cp("t3", "ua1", expr.OpLT, 50),
		}),
	}
	for name, q := range queries {
		for _, caching := range []bool{false, true} {
			for _, algo := range Algorithms() {
				opt := New(db.Cat, Options{Algorithm: algo, Caching: caching})
				root, _, err := opt.Plan(q)
				if err != nil {
					t.Fatalf("%s/%v caching=%v: Plan: %v", name, algo, caching, err)
				}
				if err := plan.Validate(root); err != nil {
					t.Errorf("%s/%v caching=%v: %v", name, algo, caching, err)
				}
			}
		}
	}
}
