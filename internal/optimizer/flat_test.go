package optimizer

import (
	"math"
	"strings"
	"testing"

	"predplace/internal/cost"
	"predplace/internal/datagen"
	"predplace/internal/expr"
	"predplace/internal/plan"
	"predplace/internal/query"
)

func benchDB(t *testing.T, tables ...int) *datagen.DB {
	t.Helper()
	db, err := datagen.Build(datagen.Config{Scale: 0.02, Tables: tables})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// mkQuery builds and analyzes a query.
func mkQuery(t *testing.T, db *datagen.DB, tables []string, preds []*query.Predicate) *query.Query {
	t.Helper()
	q, err := query.NewQuery(tables, preds)
	if err != nil {
		t.Fatal(err)
	}
	if err := query.Analyze(db.Cat, q); err != nil {
		t.Fatal(err)
	}
	return q
}

func jp(lt, lc, rt, rc string) *query.Predicate {
	return &query.Predicate{
		Kind: query.KindJoinCmp, Op: expr.OpEQ,
		Left: query.ColRef{Table: lt, Col: lc}, Right: query.ColRef{Table: rt, Col: rc},
	}
}

func fp(t *testing.T, db *datagen.DB, fn string, refs ...query.ColRef) *query.Predicate {
	t.Helper()
	f, err := db.Cat.Func(fn)
	if err != nil {
		t.Fatal(err)
	}
	return &query.Predicate{Kind: query.KindFunc, Func: f, Args: refs}
}

func cp(tb, col string, op expr.CmpOp, v int64) *query.Predicate {
	return &query.Predicate{
		Kind: query.KindSelCmp, Op: op,
		Left: query.ColRef{Table: tb, Col: col}, Value: expr.I(v),
	}
}

func planWith(t *testing.T, db *datagen.DB, algo Algorithm, q *query.Query) (plan.Node, *Info) {
	t.Helper()
	opt := New(db.Cat, Options{Algorithm: algo})
	root, info, err := opt.Plan(q)
	if err != nil {
		t.Fatalf("%v: %v", algo, err)
	}
	return root, info
}

func TestFlattenRoundTrip(t *testing.T) {
	db := benchDB(t, 1, 3, 10)
	q := mkQuery(t, db, []string{"t1", "t3", "t10"}, []*query.Predicate{
		jp("t1", "ua1", "t3", "ua1"),
		jp("t3", "ua1", "t10", "ua1"),
		fp(t, db, "costly100", query.ColRef{Table: "t3", Col: "u20"}),
	})
	root, _ := planWith(t, db, PushDown, q)
	f, err := Flatten(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(f.Steps))
	}
	rebuilt := f.Tree()
	m := cost.NewModel(db.Cat, false)
	if err := m.Annotate(rebuilt); err != nil {
		t.Fatal(err)
	}
	if math.Abs(rebuilt.Cost()-root.Cost()) > 1e-6*(1+root.Cost()) {
		t.Fatalf("round-trip changed cost: %v vs %v", rebuilt.Cost(), root.Cost())
	}
	// Same rendered structure.
	if plan.Render(rebuilt) != plan.Render(root) {
		t.Fatalf("round-trip changed structure:\n%s\nvs\n%s", plan.Render(rebuilt), plan.Render(root))
	}
}

func TestFlattenRejectsBushy(t *testing.T) {
	db := benchDB(t, 1, 3)
	q := mkQuery(t, db, []string{"t1", "t3"}, []*query.Predicate{jp("t1", "ua1", "t3", "ua1")})
	left, _ := planWith(t, db, PushDown, q)
	lj, ok := left.(*plan.Join)
	if !ok {
		// plan may have filters on top; strip
		_, base := plan.TopFilters(left)
		lj = base.(*plan.Join)
	}
	bushy := &plan.Join{Method: plan.HashJoin, Outer: lj, Inner: lj, Primary: q.Preds[0]}
	if _, err := Flatten(bushy); err == nil {
		t.Fatal("bushy plan should not flatten")
	}
}

func TestHomeStep(t *testing.T) {
	db := benchDB(t, 1, 3, 10)
	sel := fp(t, db, "costly100", query.ColRef{Table: "t3", Col: "u20"})
	q := mkQuery(t, db, []string{"t1", "t3", "t10"}, []*query.Predicate{
		jp("t1", "ua1", "t3", "ua1"),
		jp("t3", "ua1", "t10", "ua1"),
		sel,
	})
	root, _ := planWith(t, db, PushDown, q)
	f, err := Flatten(root)
	if err != nil {
		t.Fatal(err)
	}
	home, ok := f.homeStep(sel)
	if !ok {
		t.Fatal("homeStep failed")
	}
	if f.BaseTable == "t3" {
		if home != -1 {
			t.Fatalf("home = %d, want -1 (base)", home)
		}
	} else {
		if home < 0 || f.Steps[home].InnerTable != "t3" {
			t.Fatalf("home = %d does not point at t3's step", home)
		}
	}
	bogus := &query.Predicate{Kind: query.KindSelCmp, Left: query.ColRef{Table: "zzz", Col: "x"}, Tables: []string{"zzz"}}
	if _, ok := f.homeStep(bogus); ok {
		t.Fatal("foreign table should not resolve")
	}
}

func TestGroupModulesAscendingInvariant(t *testing.T) {
	cases := [][]cost.Module{
		{{Sel: 0.5, Cost: 1}, {Sel: 0.9, Cost: 1}},                      // already ascending
		{{Sel: 1.0, Cost: 3}, {Sel: 0.1, Cost: 3}},                      // descending: must group
		{{Sel: 0.9, Cost: 1}, {Sel: 0.5, Cost: 1}, {Sel: 0.1, Cost: 1}}, // all descending
		{{Sel: 0.2, Cost: 1}, {Sel: 1.5, Cost: 2}, {Sel: 0.3, Cost: 1}},
	}
	for ci, mods := range cases {
		groups := groupModules(mods, 0)
		for i := 1; i < len(groups); i++ {
			if groups[i-1].mod.Rank() > groups[i].mod.Rank() {
				t.Fatalf("case %d: group ranks not ascending", ci)
			}
		}
		// Steps covered exactly once, in order.
		want := 0
		for _, g := range groups {
			if g.firstStep != want {
				t.Fatalf("case %d: group coverage broken", ci)
			}
			want = g.lastStep + 1
		}
		if want != len(mods) {
			t.Fatalf("case %d: steps uncovered", ci)
		}
	}
}

func TestGroupModulesPaperExample(t *testing.T) {
	// §4.4: J1 (sel 1, cost 3) above J2 (sel 0.1, cost 3): out of rank
	// order, so grouped; group rank = (0.1−1)/(3+3) = −0.15.
	groups := groupModules([]cost.Module{{Sel: 1, Cost: 3}, {Sel: 0.1, Cost: 3}}, 0)
	if len(groups) != 1 {
		t.Fatalf("expected 1 group, got %d", len(groups))
	}
	if math.Abs(groups[0].mod.Rank()-(-0.15)) > 1e-12 {
		t.Fatalf("group rank = %v, want -0.15", groups[0].mod.Rank())
	}
}

func TestRenderShowsExpensiveFilters(t *testing.T) {
	db := benchDB(t, 3, 10)
	q := mkQuery(t, db, []string{"t3", "t10"}, []*query.Predicate{
		jp("t3", "ua1", "t10", "ua1"),
		fp(t, db, "costly100", query.ColRef{Table: "t10", Col: "u20"}),
	})
	root, _ := planWith(t, db, Migration, q)
	out := plan.Render(root)
	if !strings.Contains(out, "Filter*") || !strings.Contains(out, "costly100") {
		t.Fatalf("render missing expensive filter:\n%s", out)
	}
}
