package optimizer

import (
	"math"

	"predplace/internal/expr"
	"predplace/internal/plan"
	"predplace/internal/query"
)

// connectingPreds returns the predicates that span the outer set and the
// inner table: every referenced table is available in the join, and at least
// one lives on each side.
func connectingPreds(q *query.Query, outerSet uint32, innerIdx int) []*query.Predicate {
	avail := map[string]bool{}
	outerHas := map[string]bool{}
	for i, t := range q.Tables {
		if outerSet&(1<<uint(i)) != 0 {
			avail[t] = true
			outerHas[t] = true
		}
	}
	inner := q.Tables[innerIdx]
	avail[inner] = true
	var out []*query.Predicate
	for _, p := range q.Preds {
		if !p.IsJoin() || !p.CoveredBy(avail) || !p.References(inner) {
			continue
		}
		touchesOuter := false
		for _, t := range p.Tables {
			if outerHas[t] {
				touchesOuter = true
			}
		}
		if touchesOuter {
			out = append(out, p)
		}
	}
	return out
}

// tableIndex returns the position of t in q.Tables.
func tableIndex(q *query.Query, t string) int {
	for i, x := range q.Tables {
		if x == t {
			return i
		}
	}
	return -1
}

// joinCandidates builds every join of outer ⋈ inner the methods allow,
// applying the configured algorithm's pullup policy, and returns annotated
// subplans.
func (o *Optimizer) joinCandidates(q *query.Query, outer, inner *subplan) ([]*subplan, error) {
	innerIdx := bits32(inner.set)
	conns := connectingPreds(q, outer.set, innerIdx)
	innerTable := q.Tables[innerIdx]

	// Classify the connecting predicates.
	var eqPreds []*query.Predicate // cheap equality column-column joins
	for _, p := range conns {
		if p.Kind == query.KindJoinCmp && p.Op == expr.OpEQ && !p.IsExpensive() {
			eqPreds = append(eqPreds, p)
		}
	}

	type method struct {
		m        plan.JoinMethod
		primary  *query.Predicate
		indexCol string
	}
	var methods []method
	tab, err := o.cat.Table(innerTable)
	if err != nil {
		return nil, err
	}
	for _, p := range eqPreds {
		innerRef, _ := sides(p, innerTable)
		methods = append(methods,
			method{m: plan.HashJoin, primary: p},
			method{m: plan.MergeJoin, primary: p},
		)
		if tab.HasIndex(innerRef.Col) {
			methods = append(methods, method{m: plan.IndexNestLoop, primary: p, indexCol: innerRef.Col})
		}
	}
	// Nested loop with the minimal-rank connecting predicate as primary
	// (footnote 1 of the paper); a cross product when nothing connects.
	nlPrimary := minRankPred(conns)
	methods = append(methods, method{m: plan.NestLoop, primary: nlPrimary})

	var out []*subplan
	for _, md := range methods {
		var secondaries []*query.Predicate
		for _, p := range conns {
			if p != md.primary {
				secondaries = append(secondaries, p)
			}
		}
		sp, err := o.buildJoin(q, outer, inner, md.m, md.primary, md.indexCol, secondaries)
		if err != nil {
			return nil, err
		}
		if sp != nil {
			out = append(out, sp)
		}
	}
	return out, nil
}

// sides splits an equality join predicate into (innerSide, outerSide)
// references relative to innerTable.
func sides(p *query.Predicate, innerTable string) (innerRef, outerRef query.ColRef) {
	if p.Left.Table == innerTable {
		return p.Left, p.Right
	}
	return p.Right, p.Left
}

// minRankPred picks the minimal-rank predicate (nil if none).
func minRankPred(preds []*query.Predicate) *query.Predicate {
	var best *query.Predicate
	bestRank := math.Inf(1)
	for _, p := range preds {
		if r := p.Rank(); best == nil || r < bestRank {
			best, bestRank = p, r
		}
	}
	return best
}

func bits32(set uint32) int {
	for i := 0; i < 32; i++ {
		if set&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}

// buildJoin constructs one candidate join with the algorithm's pullup policy
// and returns its annotated subplan (nil when the combination is invalid).
func (o *Optimizer) buildJoin(q *query.Query, outer, inner *subplan,
	m plan.JoinMethod, primary *query.Predicate, indexCol string,
	secondaries []*query.Predicate) (*subplan, error) {

	outerChainF, outerBase := plan.TopFilters(outer.root)
	innerChainF, innerBase := plan.TopFilters(inner.root)
	outerChain := bottomFirst(outerChainF)
	innerChain := bottomFirst(innerChainF)

	// Tentative join with children as-is, to measure per-input ranks with
	// plan-time cardinalities (§5.2).
	mk := func(oPreds, iPreds []*query.Predicate) (*plan.Join, error) {
		on := chainFilters(outerBase, oPreds)
		in := chainFilters(innerBase, iPreds)
		j := &plan.Join{
			Method:           m,
			Outer:            on,
			Inner:            in,
			Primary:          primary,
			InnerIndexCol:    indexCol,
			ExpensivePrimary: primary != nil && primary.IsExpensive(),
		}
		if m == plan.MergeJoin {
			innerTable := q.Tables[bits32(inner.set)]
			innerRef, outerRef := sides(primary, innerTable)
			j.SortOuter = outer.order != outerRef
			j.SortInner = inner.order != innerRef
		}
		j.ColRefs = plan.ConcatCols(on, in)
		if err := o.model.Annotate(j); err != nil {
			return nil, err
		}
		return j, nil
	}

	tentative, err := mk(outerChain, innerChain)
	if err != nil {
		return nil, nil //nolint:nilerr // invalid method/shape combination: skip candidate
	}

	hoistOut, hoistIn := o.chooseHoists(tentative, outerChain, innerChain, outer.card, inner.card)

	keepOut := subtract(outerChain, hoistOut)
	keepIn := subtract(innerChain, hoistIn)
	j, err := mk(keepOut, keepIn)
	if err != nil {
		return nil, nil //nolint:nilerr
	}

	// Everything above the join: secondaries plus hoisted selections, in
	// ascending rank order (bottom first).
	above := append(append([]*query.Predicate(nil), secondaries...), hoistOut...)
	above = append(above, hoistIn...)
	above = o.orderByRank(above, j.EstCard)
	root := chainFilters(j, above)
	if err := o.model.Annotate(root); err != nil {
		return nil, err
	}

	// Output order: merge join emits join-column order; the others preserve
	// the outer stream's order.
	var order query.ColRef
	if m == plan.MergeJoin {
		innerTable := q.Tables[bits32(inner.set)]
		_, outerRef := sides(primary, innerTable)
		order = outerRef
	} else {
		order = outer.order
	}

	buried := outer.buried | inner.buried
	for _, p := range keepOut {
		if p.IsExpensive() {
			buried |= 1 << uint(p.ID)
		}
	}
	for _, p := range keepIn {
		if p.IsExpensive() {
			buried |= 1 << uint(p.ID)
		}
	}

	return &subplan{
		root:   root,
		set:    outer.set | inner.set,
		order:  order,
		cost:   root.Cost(),
		card:   root.Card(),
		buried: buried,
	}, nil
}

// chooseHoists decides which expensive selections to pull above the join,
// per the configured algorithm. Inner pullup is decided first (§5.2).
func (o *Optimizer) chooseHoists(j *plan.Join, outerChain, innerChain []*query.Predicate,
	outerCard, innerCard float64) (hoistOut, hoistIn []*query.Predicate) {

	switch o.opts.Algorithm {
	case NaivePushDown, PushDown:
		return nil, nil
	case PullUp:
		return expensiveOf(outerChain), expensiveOf(innerChain)
	default: // PullRank, Migration
		os, is := o.model.JoinInputStats(j)
		innerRank := is.Rank()
		for _, p := range expensiveOf(innerChain) {
			if o.selRank(p, innerCard) > innerRank {
				hoistIn = append(hoistIn, p)
			}
		}
		outerRank := os.Rank()
		for _, p := range expensiveOf(outerChain) {
			if o.selRank(p, outerCard) > outerRank {
				hoistOut = append(hoistOut, p)
			}
		}
		return hoistOut, hoistIn
	}
}

func expensiveOf(preds []*query.Predicate) []*query.Predicate {
	var out []*query.Predicate
	for _, p := range preds {
		if p.IsExpensive() {
			out = append(out, p)
		}
	}
	return out
}

// subtract returns preds minus remove, preserving order.
func subtract(preds, remove []*query.Predicate) []*query.Predicate {
	rm := map[*query.Predicate]bool{}
	for _, p := range remove {
		rm[p] = true
	}
	var out []*query.Predicate
	for _, p := range preds {
		if !rm[p] {
			out = append(out, p)
		}
	}
	return out
}
