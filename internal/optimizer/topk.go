package optimizer

// Top-k planning: wrapping finished plans with TopK/Limit roots and the
// order-propagation check that decides which of the two applies. The
// baseline-first tie-break in chooseTopK is a correctness lever, not a
// style choice: when no ordered plan is strictly cheaper, the heap path
// wraps the exact plan the facade sort would have executed, so rows,
// charged cost, and physical I/O match the TopK-off run except for the
// sort itself.

import (
	"math"

	"predplace/internal/cost"
	"predplace/internal/plan"
	"predplace/internal/query"
)

// TopKSpec carries a query's ORDER BY + LIMIT into the optimizer.
type TopKSpec struct {
	// Key is the ORDER BY column; Desc flips its direction.
	Key  query.ColRef
	Desc bool
	// K is the LIMIT bound (≥ 1).
	K int64
	// Tie lists the tie-break columns (the query's projected columns, in
	// projection order; nil means the whole plan output row). Rows equal on
	// Key and every Tie column project identically, which is what makes the
	// heap's choice among them invisible in the delivered result.
	Tie []query.ColRef
}

// orderSatisfied reports whether a plan's output order satisfies the ORDER
// BY: a chain of (serial) filters over an ascending index scan on the ORDER
// BY key, unbounded or range-bounded (an Eq scan yields one key value, not
// an order), with the key column unique so equal-key tie order never
// arises. Deliberately conservative: joins never satisfy an order here —
// multi-table queries always take the bounded-heap path.
func (o *Optimizer) orderSatisfied(n plan.Node) bool {
	spec := o.opts.TopK
	if spec == nil || spec.Desc {
		// The B-tree iterates ascending only; a descending ORDER BY always
		// needs the heap.
		return false
	}
	for {
		switch t := n.(type) {
		case *plan.Filter:
			n = t.Input
		case *plan.IndexScan:
			if t.Table != spec.Key.Table || t.Col != spec.Key.Col || t.Eq != nil {
				return false
			}
			tab, err := o.cat.Table(t.Table)
			if err != nil {
				return false
			}
			col, err := tab.Column(t.Col)
			if err != nil {
				return false
			}
			return tab.Card > 0 && col.Distinct >= tab.Card
		default:
			return false
		}
	}
}

// wrapTopK wraps one finished root with its top-k operator — an ordered
// Limit when the root already delivers the ORDER BY order, a bounded-heap
// TopK otherwise — and annotates the result.
func (o *Optimizer) wrapTopK(root plan.Node) (plan.Node, error) {
	spec := o.opts.TopK
	var wrapped plan.Node
	if o.orderSatisfied(root) {
		wrapped = &plan.Limit{Input: root, K: spec.K, Ordered: true, Key: spec.Key}
	} else {
		tie := spec.Tie
		if tie == nil {
			tie = root.Cols()
		}
		wrapped = &plan.TopK{Input: root, K: spec.K, Key: spec.Key, Desc: spec.Desc, Tie: tie}
	}
	if err := o.model.Annotate(wrapped); err != nil {
		return nil, err
	}
	return wrapped, nil
}

// chooseTopK wraps each candidate root and returns the cheapest. Candidates
// must lead with the baseline best plan: an alternative (an ordered scan
// whose Limit stops early) displaces it only when strictly cheaper beyond
// the float tolerance, so estimate noise never trades the known-identical
// baseline for a different plan shape.
func (o *Optimizer) chooseTopK(cands []plan.Node, info *Info) (plan.Node, error) {
	var best plan.Node
	bestCost := math.Inf(1)
	for _, root := range cands {
		wrapped, err := o.wrapTopK(root)
		if err != nil {
			return nil, err
		}
		if best == nil || (wrapped.Cost() < bestCost && !cost.ApproxEq(wrapped.Cost(), bestCost)) {
			best, bestCost = wrapped, wrapped.Cost()
		}
	}
	switch best.(type) {
	case *plan.Limit:
		info.TopKKind = "limit"
	default:
		info.TopKKind = "topk"
	}
	return best, nil
}
