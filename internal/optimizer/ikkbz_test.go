package optimizer

import (
	"math"
	"testing"
	"testing/quick"

	"predplace/internal/query"
)

func TestIKComposeMatchesGroupRankLaw(t *testing.T) {
	a := ikUnit{T: 1.0, C: 3}
	b := ikUnit{T: 0.1, C: 3}
	g := ikCompose(a, b)
	if math.Abs(g.T-0.1) > 1e-12 || math.Abs(g.C-6) > 1e-12 {
		t.Fatalf("compose = %+v", g)
	}
	want := (0.1 - 1) / 6.0
	if math.Abs(g.rank()-want) > 1e-12 {
		t.Fatalf("rank = %v, want %v", g.rank(), want)
	}
}

func TestIKNormalizeAscending(t *testing.T) {
	chain := []ikUnit{
		{T: 0.9, C: 1, items: []ikItem{{table: 0}}},
		{T: 0.5, C: 1, items: []ikItem{{table: 1}}},
		{T: 0.1, C: 1, items: []ikItem{{table: 2}}},
		{T: 2.0, C: 1, items: []ikItem{{table: 3}}},
	}
	out := ikNormalize(chain)
	for i := 1; i < len(out); i++ {
		if out[i-1].rank() > out[i].rank() {
			t.Fatal("ranks not ascending after normalization")
		}
	}
	// Item order must be preserved across merges.
	var items []int
	for _, u := range out {
		for _, it := range u.items {
			items = append(items, it.table)
		}
	}
	for i, want := range []int{0, 1, 2, 3} {
		if items[i] != want {
			t.Fatalf("items reordered: %v", items)
		}
	}
}

func TestIKNormalizePreservesTotalEffectQuick(t *testing.T) {
	f := func(ts, cs [4]float64) bool {
		chain := make([]ikUnit, 4)
		for i := range chain {
			chain[i] = ikUnit{
				T: math.Mod(math.Abs(ts[i]), 3) + 0.01,
				C: math.Mod(math.Abs(cs[i]), 10) + 0.01,
			}
		}
		// Total T (product) must be invariant under normalization; total C
		// must equal the ASI sequential cost, also invariant.
		prodT, seqC, prefix := 1.0, 0.0, 1.0
		for _, u := range chain {
			prodT *= u.T
			seqC += prefix * u.C
			prefix *= u.T
		}
		out := ikNormalize(chain)
		prodT2, seqC2, prefix2 := 1.0, 0.0, 1.0
		for _, u := range out {
			prodT2 *= u.T
			seqC2 += prefix2 * u.C
			prefix2 *= u.T
		}
		rel := func(a, b float64) float64 { return math.Abs(a-b) / (1 + math.Abs(a)) }
		return rel(prodT, prodT2) < 1e-9 && rel(seqC, seqC2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildIKGraphTree(t *testing.T) {
	db := benchDB(t, 1, 3, 10)
	q := mkQuery(t, db, []string{"t1", "t3", "t10"}, []*query.Predicate{
		jp("t1", "ua1", "t10", "ua1"),
		jp("t3", "ua1", "t10", "ua1"),
	})
	adj, err := buildIKGraph(q)
	if err != nil {
		t.Fatal(err)
	}
	// Star centered on t10 (index 2): degree 2.
	if len(adj[2]) != 2 || len(adj[0]) != 1 || len(adj[1]) != 1 {
		t.Fatalf("adjacency = %v", adj)
	}
}

func TestBuildIKGraphRejectsCycle(t *testing.T) {
	db := benchDB(t, 1, 3, 10)
	q := mkQuery(t, db, []string{"t1", "t3", "t10"}, []*query.Predicate{
		jp("t1", "ua1", "t10", "ua1"),
		jp("t3", "ua1", "t10", "ua1"),
		jp("t1", "a10", "t3", "a10"),
	})
	if _, err := buildIKGraph(q); err == nil {
		t.Fatal("cycle should be rejected")
	}
}

func TestBuildIKGraphRejectsDisconnected(t *testing.T) {
	db := benchDB(t, 1, 3)
	q := mkQuery(t, db, []string{"t1", "t3"}, nil)
	if _, err := buildIKGraph(q); err == nil {
		t.Fatal("disconnected graph should be rejected")
	}
}

func TestLDLIKKBZCloseToExhaustiveLDL(t *testing.T) {
	// On acyclic queries, the polynomial orderer should land within a small
	// factor of the exhaustive LDL enumeration (its ASI cost model is an
	// abstraction of the real one, so exact ties are not guaranteed).
	db := benchDB(t, 1, 3, 9, 10)
	queries := []func() *query.Query{
		func() *query.Query {
			return mkQuery(t, db, []string{"t3", "t9"}, []*query.Predicate{
				jp("t3", "ua1", "t9", "ua1"),
				fp(t, db, "costly100", query.ColRef{Table: "t9", Col: "u20"}),
			})
		},
		func() *query.Query {
			return mkQuery(t, db, []string{"t3", "t10", "t1"}, []*query.Predicate{
				jp("t3", "ua1", "t10", "ua1"),
				jp("t10", "ua1", "t1", "ua1"),
				fp(t, db, "costly100", query.ColRef{Table: "t3", Col: "u20"}),
			})
		},
		func() *query.Query {
			return mkQuery(t, db, []string{"t1", "t3", "t9", "t10"}, []*query.Predicate{
				jp("t1", "ua1", "t3", "ua1"),
				jp("t3", "ua1", "t10", "ua1"),
				jp("t9", "a10", "t10", "a10"),
				fp(t, db, "costly10", query.ColRef{Table: "t9", Col: "u10"}),
			})
		},
	}
	for qi, mk := range queries {
		ik, _ := planWith(t, db, LDLIKKBZ, mk())
		ldl, _ := planWith(t, db, LDL, mk())
		if ik.Cost() > ldl.Cost()*2.5 {
			t.Fatalf("query %d: IK-KBZ (%v) too far from exhaustive LDL (%v)", qi, ik.Cost(), ldl.Cost())
		}
		if ldl.Cost() > ik.Cost()*1.0001 {
			t.Fatalf("query %d: exhaustive LDL (%v) lost to IK-KBZ (%v)?", qi, ldl.Cost(), ik.Cost())
		}
	}
}

func TestLDLIKKBZFallsBackOnCycle(t *testing.T) {
	db := benchDB(t, 1, 3, 10)
	q := mkQuery(t, db, []string{"t1", "t3", "t10"}, []*query.Predicate{
		jp("t1", "ua1", "t10", "ua1"),
		jp("t3", "ua1", "t10", "ua1"),
		jp("t1", "a10", "t3", "a10"),
		fp(t, db, "costly100", query.ColRef{Table: "t3", Col: "u20"}),
	})
	root, _ := planWith(t, db, LDLIKKBZ, q) // must not error: exhaustive fallback
	if root.Cost() <= 0 {
		t.Fatal("fallback produced a bad plan")
	}
}

func TestLDLIKKBZSingleTable(t *testing.T) {
	db := benchDB(t, 3)
	q := mkQuery(t, db, []string{"t3"}, []*query.Predicate{
		fp(t, db, "costly100", query.ColRef{Table: "t3", Col: "u20"}),
		fp(t, db, "costly1", query.ColRef{Table: "t3", Col: "u10"}),
	})
	root, _ := planWith(t, db, LDLIKKBZ, q)
	if root.Card() <= 0 {
		t.Fatal("bad single-table plan")
	}
}

func TestDisableUnpruneableAblation(t *testing.T) {
	// With retention disabled, Migration may do worse (never better).
	db := benchDB(t, 1, 3, 10)
	mk := func() *query.Query {
		return mkQuery(t, db, []string{"t3", "t10", "t1"}, []*query.Predicate{
			jp("t3", "ua1", "t10", "ua1"),
			jp("t10", "ua1", "t1", "ua1"),
			fp(t, db, "costly100", query.ColRef{Table: "t3", Col: "u20"}),
		})
	}
	full := New(db.Cat, Options{Algorithm: Migration})
	ablated := New(db.Cat, Options{Algorithm: Migration, DisableUnpruneable: true})
	rootFull, infoFull, err := full.Plan(mk())
	if err != nil {
		t.Fatal(err)
	}
	rootAbl, infoAbl, err := ablated.Plan(mk())
	if err != nil {
		t.Fatal(err)
	}
	if rootFull.Cost() > rootAbl.Cost()*1.0001 {
		t.Fatalf("retention made Migration worse: %v vs %v", rootFull.Cost(), rootAbl.Cost())
	}
	if infoAbl.PlansRetained > infoFull.PlansRetained {
		t.Fatalf("ablation retained more plans (%d) than full (%d)?",
			infoAbl.PlansRetained, infoFull.PlansRetained)
	}
}
