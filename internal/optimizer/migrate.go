package optimizer

import (
	"sort"

	"predplace/internal/cost"
	"predplace/internal/plan"
	"predplace/internal/query"
)

// migrate runs the Predicate Migration algorithm (§4.4) on a left-deep plan:
// it repeatedly applies the series-parallel algorithm using parallel chains
// [MS79] to each root-to-leaf stream — inner streams before the spine, per
// §5.2's pull-from-inner-first policy — until no predicate moves. The
// returned tree is freshly annotated.
func (o *Optimizer) migrate(root plan.Node) (plan.Node, int, error) {
	f, err := Flatten(root)
	if err != nil {
		return nil, 0, err
	}
	passes := 0
	// Moving a selection changes cardinalities, which changes the ranks the
	// next pass sees, so the placement sequence can cycle instead of
	// converging (the cross-stream interdependency of §6). We detect cycles
	// by placement signature and keep the cheapest plan seen.
	seen := map[string]bool{}
	var best *FlatPlan
	bestCost := 0.0
	record := func() (float64, error) {
		tree := f.Tree()
		if err := o.model.Annotate(tree); err != nil {
			return 0, err
		}
		if best == nil || tree.Cost() < bestCost {
			best, bestCost = f.Clone(), tree.Cost()
		}
		return tree.Cost(), nil
	}
	if _, err := record(); err != nil {
		return nil, 0, err
	}
	for iter := 0; iter < o.opts.MaxMigrationPasses; iter++ {
		changed := false
		// Streams: k = len(Steps) … 1 are the inner streams (entering step
		// k-1 from the inner side); k = 0 is the spine.
		for k := len(f.Steps); k >= 0; k-- {
			ch, err := o.migrateStream(f, k)
			if err != nil {
				return nil, passes, err
			}
			changed = changed || ch
			passes++
		}
		if _, err := record(); err != nil {
			return nil, passes, err
		}
		sig := f.signature()
		if !changed || seen[sig] {
			break
		}
		seen[sig] = true
	}
	tree := best.Tree()
	if err := o.model.Annotate(tree); err != nil {
		return nil, passes, err
	}
	return tree, passes, nil
}

// moduleGroup is a maximal run of join modules composed because they were
// out of rank order (descending), carrying the paper's group rank.
type moduleGroup struct {
	mod       cost.Module
	firstStep int
	lastStep  int
}

// groupModules performs the parallel-chains step: adjacent modules whose
// ranks descend are fused with Compose until ranks ascend.
func groupModules(mods []cost.Module, firstStep int) []moduleGroup {
	var stack []moduleGroup
	for i, m := range mods {
		g := moduleGroup{mod: m, firstStep: firstStep + i, lastStep: firstStep + i}
		stack = append(stack, g)
		for len(stack) >= 2 {
			a, b := stack[len(stack)-2], stack[len(stack)-1]
			if a.mod.Rank() <= b.mod.Rank() {
				break
			}
			stack = stack[:len(stack)-2]
			stack = append(stack, moduleGroup{
				mod:       cost.Compose(a.mod, b.mod),
				firstStep: a.firstStep,
				lastStep:  b.lastStep,
			})
		}
	}
	return stack
}

// migrateStream optimally re-places the selections lying on one root-to-leaf
// stream of the plan. k = 0 is the spine (the stream of the outermost base
// table, passing every join from the outer side); k ≥ 1 is the stream of
// step k-1's inner table (entering that join from the inner side and every
// later join from the outer side).
//
// Constrained selections that want to sink below their home join (rank lower
// than their lowest legal position's neighborhood) are *pinned* immediately
// above their home step and composed into the module chain — a pinned free
// filter (e.g. a highly selective secondary join predicate) lowers its home
// join's effective rank, which can trigger further grouping and justify
// pulling other selections over the whole group. The pinning loop iterates
// to fixpoint before the remaining selections are placed.
func (o *Optimizer) migrateStream(f *FlatPlan, k int) (bool, error) {
	startStep := 0
	innerEntry := false
	if k >= 1 {
		startStep = k - 1
		innerEntry = true
	}

	tree := f.Tree()
	if err := o.model.Annotate(tree); err != nil {
		return false, err
	}
	joins := joinNodes(tree)

	// Fixed join modules of this stream, with per-input stats (§3.2).
	nSteps := len(f.Steps) - startStep
	baseMods := make([]cost.Module, 0, nSteps)
	for i := startStep; i < len(f.Steps); i++ {
		os, is := o.model.JoinInputStats(joins[i])
		st := os
		if innerEntry && i == startStep {
			st = is
		}
		baseMods = append(baseMods, st.Module())
	}

	// Leaf info for gap-0 eligibility and caching-aware selection ranks.
	var leafTable string
	if innerEntry {
		leafTable = f.Steps[startStep].InnerTable
	} else {
		leafTable = f.BaseTable
	}
	leafCard := 1.0
	if tab, err := o.cat.Table(leafTable); err == nil {
		leafCard = float64(tab.Card)
	}

	// Collect the movable selections on this stream with current positions
	// (in step units: -1 = gap 0, otherwise the AfterFilters step index).
	type placed struct {
		pred *query.Predicate
		pos  int
	}
	var movable []placed
	gap0 := func() *[]*query.Predicate {
		if innerEntry {
			return &f.Steps[startStep].InnerFilters
		}
		return &f.BaseFilters
	}
	for _, p := range *gap0() {
		movable = append(movable, placed{pred: p, pos: -1})
	}
	for i := startStep; i < len(f.Steps); i++ {
		for _, p := range f.Steps[i].AfterFilters {
			movable = append(movable, placed{pred: p, pos: i})
		}
	}
	if len(movable) == 0 {
		return false, nil
	}

	// homeStepOf returns the lowest step a selection must stay above on this
	// stream, or -1 when it may sit at gap 0 (homed on the stream's leaf).
	homeStepOf := func(p *query.Predicate) (int, error) {
		if len(p.Tables) == 1 && p.Tables[0] == leafTable {
			return -1, nil
		}
		home, ok := f.homeStep(p)
		if !ok {
			return 0, errBadPred(p)
		}
		if home < startStep {
			home = startStep
		}
		return home, nil
	}

	// Pinning loop: compose stuck selections into their home modules.
	pinStep := map[*query.Predicate]int{}
	var groups []moduleGroup
	for iter := 0; iter <= len(movable); iter++ {
		aug := make([]cost.Module, nSteps)
		copy(aug, baseMods)
		// Compose pinned selections onto their home modules, rank order.
		byStep := map[int][]*query.Predicate{}
		for p, s := range pinStep {
			byStep[s] = append(byStep[s], p)
		}
		for s, preds := range byStep {
			sort.Slice(preds, func(a, b int) bool {
				ra, rb := o.selRank(preds[a], leafCard), o.selRank(preds[b], leafCard)
				if !cost.ApproxEq(ra, rb) {
					return ra < rb
				}
				return preds[a].ID < preds[b].ID
			})
			for _, p := range preds {
				aug[s-startStep] = cost.Compose(aug[s-startStep], o.model.SelectionModule(p, leafCard))
			}
		}
		groups = groupModules(aug, startStep)

		newPins := false
		for _, pl := range movable {
			p := pl.pred
			if _, done := pinStep[p]; done {
				continue
			}
			home, err := homeStepOf(p)
			if err != nil {
				return false, err
			}
			if home < 0 {
				continue // leaf-homed: gap 0 always legal, never stuck
			}
			minGap := gapAfterStep(groups, home)
			g := desiredGap(groups, o.selRank(p, leafCard))
			if g < minGap {
				pinStep[p] = home
				newPins = true
			}
		}
		if !newPins {
			break
		}
	}

	// Final placement.
	assign := make([]placed, len(movable))
	for i, pl := range movable {
		p := pl.pred
		if s, ok := pinStep[p]; ok {
			assign[i] = placed{pred: p, pos: s}
			continue
		}
		home, err := homeStepOf(p)
		if err != nil {
			return false, err
		}
		g := desiredGap(groups, o.selRank(p, leafCard))
		if home >= 0 {
			if min := gapAfterStep(groups, home); g < min {
				g = min
			}
		}
		if g == 0 {
			assign[i] = placed{pred: p, pos: -1}
		} else {
			assign[i] = placed{pred: p, pos: groups[g-1].lastStep}
		}
	}

	changed := false
	for i := range movable {
		if movable[i].pos != assign[i].pos {
			changed = true
		}
	}

	// Rewrite the stream's filter lists.
	*gap0() = nil
	for i := startStep; i < len(f.Steps); i++ {
		f.Steps[i].AfterFilters = nil
	}
	sort.SliceStable(assign, func(a, b int) bool {
		if assign[a].pos != assign[b].pos {
			return assign[a].pos < assign[b].pos
		}
		ra, rb := o.selRank(assign[a].pred, leafCard), o.selRank(assign[b].pred, leafCard)
		if !cost.ApproxEq(ra, rb) {
			return ra < rb
		}
		return assign[a].pred.ID < assign[b].pred.ID
	})
	for _, pl := range assign {
		if pl.pos < 0 {
			*gap0() = append(*gap0(), pl.pred)
			continue
		}
		f.Steps[pl.pos].AfterFilters = append(f.Steps[pl.pos].AfterFilters, pl.pred)
	}
	return changed, nil
}

// desiredGap returns the gap after every group of rank ≤ r.
func desiredGap(groups []moduleGroup, r float64) int {
	g := 0
	for _, grp := range groups {
		if grp.mod.Rank() <= r {
			g++
		} else {
			break
		}
	}
	return g
}

// gapAfterStep maps a step index to its gap number: the gap immediately
// above the group containing the step.
func gapAfterStep(groups []moduleGroup, step int) int {
	for gi, g := range groups {
		if step >= g.firstStep && step <= g.lastStep {
			return gi + 1
		}
	}
	return len(groups)
}

type badPredError struct{ p *query.Predicate }

func errBadPred(p *query.Predicate) error { return &badPredError{p} }

func (e *badPredError) Error() string {
	return "optimizer: predicate " + e.p.String() + " references a table outside the plan"
}
