package sqlparse

import "fmt"

// SelectStmt is a parsed SELECT query.
type SelectStmt struct {
	// Explain is set when the statement is prefixed with EXPLAIN.
	Explain bool
	// Analyze is set for EXPLAIN ANALYZE: execute the plan and annotate it
	// with actual row counts.
	Analyze bool
	// Star is SELECT *.
	Star bool
	// Columns are the projected columns when not Star.
	Columns []ColExpr
	// Tables is the FROM list.
	Tables []string
	// Where is the AND-ed predicate list (may be empty).
	Where []PredExpr
	// CountStar is SELECT COUNT(*).
	CountStar bool
	// OrderBy names the sort column (zero value = none); Desc reverses.
	OrderBy ColExpr
	Desc    bool
	// Limit caps the result rows (-1 = no limit).
	Limit int64
}

// ColExpr names a column, optionally table-qualified.
type ColExpr struct {
	Table string // may be empty (resolved by the binder)
	Col   string
}

// String renders the reference.
func (c ColExpr) String() string {
	if c.Table == "" {
		return c.Col
	}
	return c.Table + "." + c.Col
}

// PredExpr is one conjunct of the WHERE clause.
type PredExpr interface{ predNode() }

// CmpPred is `operand op operand`.
type CmpPred struct {
	Op          string // = <> < <= > >=
	Left, Right Operand
}

func (*CmpPred) predNode() {}

// FuncPred is `fname(args…)` used as a boolean predicate.
type FuncPred struct {
	Name string
	Args []Operand
}

func (*FuncPred) predNode() {}

// InPred is `col [NOT] IN (SELECT …)`.
type InPred struct {
	Left ColExpr
	Not  bool
	Sub  *SelectStmt
}

func (*InPred) predNode() {}

// Operand is a column reference or a literal.
type Operand struct {
	IsCol bool
	Col   ColExpr
	// literal
	IsString bool
	Str      string
	IsNull   bool
	Int      int64
	IsBool   bool
	Bool     bool
}

// String renders the operand.
func (o Operand) String() string {
	switch {
	case o.IsCol:
		return o.Col.String()
	case o.IsString:
		return "'" + o.Str + "'"
	case o.IsNull:
		return "NULL"
	case o.IsBool:
		return fmt.Sprintf("%v", o.Bool)
	default:
		return fmt.Sprintf("%d", o.Int)
	}
}

// DeleteStmt is a parsed DELETE statement.
type DeleteStmt struct {
	// Table is the target relation.
	Table string
	// Where is the AND-ed predicate list (empty deletes every row).
	Where []PredExpr
}
