// Package sqlparse implements the SQL front-end for the conjunctive
// SELECT–FROM–WHERE subset the paper's example queries use: multi-table FROM
// lists, AND-ed comparison predicates, user-defined boolean function
// predicates (the expensive predicates), and correlated IN-subqueries (the
// System R-era form of expensive selections, §1.1 and §5.1).
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // one of ( ) , ; . = < > <= >= <> *
	tokKeyword // upper-cased SQL keyword
)

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"IN": true, "NOT": true, "TRUE": true, "FALSE": true, "NULL": true,
	"EXPLAIN": true, "ANALYZE": true,
	"ORDER": true, "BY": true, "LIMIT": true, "DESC": true, "ASC": true, "COUNT": true,
	"DELETE": true,
}

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex tokenizes SQL text.
func lex(src string) ([]token, error) {
	var out []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-': // comment to end of line
			for i < n && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			word := src[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				out = append(out, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				out = append(out, token{kind: tokIdent, text: word, pos: start})
			}
		case unicode.IsDigit(rune(c)) || (c == '-' && i+1 < n && unicode.IsDigit(rune(src[i+1]))):
			start := i
			i++
			for i < n && unicode.IsDigit(rune(src[i])) {
				i++
			}
			out = append(out, token{kind: tokNumber, text: src[start:i], pos: start})
		case c == '\'':
			start := i
			i++
			for i < n && src[i] != '\'' {
				i++
			}
			if i >= n {
				return nil, fmt.Errorf("sqlparse: unterminated string at offset %d", start)
			}
			out = append(out, token{kind: tokString, text: src[start+1 : i], pos: start})
			i++
		case c == '<':
			if i+1 < n && (src[i+1] == '=' || src[i+1] == '>') {
				out = append(out, token{kind: tokSymbol, text: src[i : i+2], pos: i})
				i += 2
			} else {
				out = append(out, token{kind: tokSymbol, text: "<", pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				out = append(out, token{kind: tokSymbol, text: ">=", pos: i})
				i += 2
			} else {
				out = append(out, token{kind: tokSymbol, text: ">", pos: i})
				i++
			}
		case strings.ContainsRune("(),;.=*!", rune(c)):
			if c == '!' {
				if i+1 < n && src[i+1] == '=' {
					out = append(out, token{kind: tokSymbol, text: "<>", pos: i})
					i += 2
					continue
				}
				return nil, fmt.Errorf("sqlparse: unexpected '!' at offset %d", i)
			}
			out = append(out, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, i)
		}
	}
	out = append(out, token{kind: tokEOF, pos: n})
	return out, nil
}
