package sqlparse

import (
	"fmt"
	"strconv"
)

// Parse parses one SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	stmt, err := ParseAny(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqlparse: expected a SELECT statement")
	}
	return sel, nil
}

// ParseAny parses one statement: a *SelectStmt or a *DeleteStmt.
func ParseAny(src string) (interface{}, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmt interface{}
	if p.peek().kind == tokKeyword && p.peek().text == "DELETE" {
		stmt, err = p.deleteStmt()
	} else {
		stmt, err = p.selectStmt()
	}
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sqlparse: trailing input at %s", p.peek())
	}
	return stmt, nil
}

// deleteStmt parses DELETE FROM table [WHERE conj].
func (p *parser) deleteStmt() (*DeleteStmt, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("sqlparse: expected table name, got %s", t)
	}
	stmt := &DeleteStmt{Table: t.text}
	if p.peek().kind == tokKeyword && p.peek().text == "WHERE" {
		p.next()
		for {
			pred, err := p.pred()
			if err != nil {
				return nil, err
			}
			stmt.Where = append(stmt.Where, pred)
			if p.peek().kind == tokKeyword && p.peek().text == "AND" {
				p.next()
				continue
			}
			break
		}
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return fmt.Errorf("sqlparse: expected %s, got %s", kw, t)
	}
	return nil
}

func (p *parser) expectSymbol(s string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != s {
		return fmt.Errorf("sqlparse: expected %q, got %s", s, t)
	}
	return nil
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	stmt := &SelectStmt{Limit: -1}
	if p.peek().kind == tokKeyword && p.peek().text == "EXPLAIN" {
		p.next()
		stmt.Explain = true
		if p.peek().kind == tokKeyword && p.peek().text == "ANALYZE" {
			p.next()
			stmt.Analyze = true
		}
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if p.peek().kind == tokSymbol && p.peek().text == "*" {
		p.next()
		stmt.Star = true
	} else if p.peek().kind == tokKeyword && p.peek().text == "COUNT" {
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("*"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		stmt.CountStar = true
	} else {
		for {
			c, err := p.colExpr()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, c)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("sqlparse: expected table name, got %s", t)
		}
		stmt.Tables = append(stmt.Tables, t.text)
		if p.peek().kind == tokSymbol && p.peek().text == "," {
			p.next()
			continue
		}
		break
	}
	if p.peek().kind == tokKeyword && p.peek().text == "WHERE" {
		p.next()
		for {
			pred, err := p.pred()
			if err != nil {
				return nil, err
			}
			stmt.Where = append(stmt.Where, pred)
			if p.peek().kind == tokKeyword && p.peek().text == "AND" {
				p.next()
				continue
			}
			break
		}
	}
	if p.peek().kind == tokKeyword && p.peek().text == "ORDER" {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		c, err := p.colExpr()
		if err != nil {
			return nil, err
		}
		stmt.OrderBy = c
		if p.peek().kind == tokKeyword && (p.peek().text == "DESC" || p.peek().text == "ASC") {
			stmt.Desc = p.next().text == "DESC"
		}
	}
	if p.peek().kind == tokKeyword && p.peek().text == "LIMIT" {
		p.next()
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sqlparse: LIMIT needs a number, got %s", t)
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sqlparse: bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

// colExpr parses ident[.ident].
func (p *parser) colExpr() (ColExpr, error) {
	t := p.next()
	if t.kind != tokIdent {
		return ColExpr{}, fmt.Errorf("sqlparse: expected column, got %s", t)
	}
	if p.peek().kind == tokSymbol && p.peek().text == "." {
		p.next()
		c := p.next()
		if c.kind != tokIdent {
			return ColExpr{}, fmt.Errorf("sqlparse: expected column after '.', got %s", c)
		}
		return ColExpr{Table: t.text, Col: c.text}, nil
	}
	return ColExpr{Col: t.text}, nil
}

// pred parses one conjunct.
func (p *parser) pred() (PredExpr, error) {
	// Function predicate: ident '(' …
	if p.peek().kind == tokIdent && p.pos+1 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
		name := p.next().text
		p.next() // (
		var args []Operand
		if !(p.peek().kind == tokSymbol && p.peek().text == ")") {
			for {
				op, err := p.operand()
				if err != nil {
					return nil, err
				}
				args = append(args, op)
				if p.peek().kind == tokSymbol && p.peek().text == "," {
					p.next()
					continue
				}
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		// Optional `= literal` comparison after the call is not supported;
		// the call itself is the boolean predicate.
		return &FuncPred{Name: name, Args: args}, nil
	}

	left, err := p.operand()
	if err != nil {
		return nil, err
	}

	// IN-subquery.
	if p.peek().kind == tokKeyword && (p.peek().text == "IN" || p.peek().text == "NOT") {
		not := false
		if p.peek().text == "NOT" {
			p.next()
			not = true
			if err := p.expectKeyword("IN"); err != nil {
				return nil, err
			}
		} else {
			p.next()
		}
		if !left.IsCol {
			return nil, fmt.Errorf("sqlparse: IN requires a column on the left")
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		sub, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InPred{Left: left.Col, Not: not, Sub: sub}, nil
	}

	t := p.next()
	if t.kind != tokSymbol {
		return nil, fmt.Errorf("sqlparse: expected comparison operator, got %s", t)
	}
	switch t.text {
	case "=", "<>", "<", "<=", ">", ">=":
	default:
		return nil, fmt.Errorf("sqlparse: bad operator %q", t.text)
	}
	right, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &CmpPred{Op: t.text, Left: left, Right: right}, nil
}

// operand parses a column reference or literal.
func (p *parser) operand() (Operand, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("sqlparse: bad number %q", t.text)
		}
		return Operand{Int: v}, nil
	case tokString:
		p.next()
		return Operand{IsString: true, Str: t.text}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return Operand{IsNull: true}, nil
		case "TRUE":
			p.next()
			return Operand{IsBool: true, Bool: true}, nil
		case "FALSE":
			p.next()
			return Operand{IsBool: true, Bool: false}, nil
		}
		return Operand{}, fmt.Errorf("sqlparse: unexpected keyword %s", t)
	case tokIdent:
		c, err := p.colExpr()
		if err != nil {
			return Operand{}, err
		}
		return Operand{IsCol: true, Col: c}, nil
	default:
		return Operand{}, fmt.Errorf("sqlparse: unexpected token %s", t)
	}
}
