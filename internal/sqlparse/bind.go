package sqlparse

import (
	"fmt"

	"predplace/internal/catalog"
	"predplace/internal/expr"
	"predplace/internal/query"
)

// Bound is the result of semantic analysis: a logical query plus the
// projection to apply to its SELECT-* output.
type Bound struct {
	Query *query.Query
	// Explain mirrors the EXPLAIN prefix.
	Explain bool
	// Analyze mirrors EXPLAIN ANALYZE.
	Analyze bool
	// Star reports SELECT *.
	Star bool
	// CountStar reports SELECT COUNT(*).
	CountStar bool
	// Projection lists the resolved output columns when not Star.
	Projection []query.ColRef
	// OrderBy is the resolved sort column (nil = none); Desc reverses.
	OrderBy *query.ColRef
	Desc    bool
	// Limit caps result rows (-1 = none).
	Limit int64
}

// SubqueryCompiler turns a parsed IN-subquery into an expensive predicate
// function. lhs is the IN operand; args lists the function's inputs (the lhs
// column followed by each correlated outer column). The returned function is
// invoked with values bound in that order.
type SubqueryCompiler func(sub *SelectStmt, not bool, args []query.ColRef) (*expr.FuncDef, error)

// Binder resolves a parsed statement against a catalog.
type Binder struct {
	Cat *catalog.Catalog
	// CompileSubquery handles IN-subqueries; nil rejects them.
	CompileSubquery SubqueryCompiler
}

// Bind type-checks the statement and lowers it to a logical query.
func (b *Binder) Bind(stmt *SelectStmt) (*Bound, error) {
	if len(stmt.Tables) == 0 {
		return nil, fmt.Errorf("sqlparse: empty FROM list")
	}
	tabs := make(map[string]*catalog.Table, len(stmt.Tables))
	for _, t := range stmt.Tables {
		tab, err := b.Cat.Table(t)
		if err != nil {
			return nil, err
		}
		if _, dup := tabs[t]; dup {
			return nil, fmt.Errorf("sqlparse: table %s listed twice (self-joins need aliases, which are unsupported)", t)
		}
		tabs[t] = tab
	}

	resolve := func(c ColExpr) (query.ColRef, error) {
		if c.Table != "" {
			tab, ok := tabs[c.Table]
			if !ok {
				return query.ColRef{}, fmt.Errorf("sqlparse: table %s not in FROM list", c.Table)
			}
			if tab.ColIndex(c.Col) < 0 {
				return query.ColRef{}, fmt.Errorf("sqlparse: no column %s in table %s", c.Col, c.Table)
			}
			return query.ColRef{Table: c.Table, Col: c.Col}, nil
		}
		var found query.ColRef
		hits := 0
		for name, tab := range tabs {
			if tab.ColIndex(c.Col) >= 0 {
				found = query.ColRef{Table: name, Col: c.Col}
				hits++
			}
		}
		switch hits {
		case 0:
			return query.ColRef{}, fmt.Errorf("sqlparse: unknown column %s", c.Col)
		case 1:
			return found, nil
		default:
			return query.ColRef{}, fmt.Errorf("sqlparse: ambiguous column %s", c.Col)
		}
	}

	var preds []*query.Predicate
	for _, w := range stmt.Where {
		p, err := b.bindPred(w, resolve)
		if err != nil {
			return nil, err
		}
		preds = append(preds, p)
	}

	q, err := query.NewQuery(stmt.Tables, preds)
	if err != nil {
		return nil, err
	}
	if err := query.Analyze(b.Cat, q); err != nil {
		return nil, err
	}

	out := &Bound{Query: q, Explain: stmt.Explain, Analyze: stmt.Analyze,
		Star: stmt.Star, CountStar: stmt.CountStar, Desc: stmt.Desc, Limit: stmt.Limit}
	for _, c := range stmt.Columns {
		ref, err := resolve(c)
		if err != nil {
			return nil, err
		}
		out.Projection = append(out.Projection, ref)
	}
	if stmt.OrderBy.Col != "" {
		ref, err := resolve(stmt.OrderBy)
		if err != nil {
			return nil, err
		}
		out.OrderBy = &ref
	}
	return out, nil
}

func operandValue(o Operand) expr.Value {
	switch {
	case o.IsString:
		return expr.S(o.Str)
	case o.IsNull:
		return expr.Null
	case o.IsBool:
		return expr.B(o.Bool)
	default:
		return expr.I(o.Int)
	}
}

func cmpOp(s string) (expr.CmpOp, error) {
	switch s {
	case "=":
		return expr.OpEQ, nil
	case "<>":
		return expr.OpNE, nil
	case "<":
		return expr.OpLT, nil
	case "<=":
		return expr.OpLE, nil
	case ">":
		return expr.OpGT, nil
	case ">=":
		return expr.OpGE, nil
	}
	return 0, fmt.Errorf("sqlparse: bad operator %q", s)
}

func (b *Binder) bindPred(w PredExpr, resolve func(ColExpr) (query.ColRef, error)) (*query.Predicate, error) {
	switch t := w.(type) {
	case *CmpPred:
		op, err := cmpOp(t.Op)
		if err != nil {
			return nil, err
		}
		switch {
		case t.Left.IsCol && t.Right.IsCol:
			l, err := resolve(t.Left.Col)
			if err != nil {
				return nil, err
			}
			r, err := resolve(t.Right.Col)
			if err != nil {
				return nil, err
			}
			if l.Table == r.Table {
				return nil, fmt.Errorf("sqlparse: same-table column comparisons are unsupported (%s vs %s)", l, r)
			}
			return &query.Predicate{Kind: query.KindJoinCmp, Op: op, Left: l, Right: r}, nil
		case t.Left.IsCol:
			l, err := resolve(t.Left.Col)
			if err != nil {
				return nil, err
			}
			return &query.Predicate{Kind: query.KindSelCmp, Op: op, Left: l, Value: operandValue(t.Right)}, nil
		case t.Right.IsCol:
			r, err := resolve(t.Right.Col)
			if err != nil {
				return nil, err
			}
			return &query.Predicate{Kind: query.KindSelCmp, Op: op.Flip(), Left: r, Value: operandValue(t.Left)}, nil
		default:
			return nil, fmt.Errorf("sqlparse: constant comparison has no table")
		}

	case *FuncPred:
		f, err := b.Cat.Func(t.Name)
		if err != nil {
			return nil, err
		}
		if f.Arity != len(t.Args) {
			return nil, fmt.Errorf("sqlparse: %s takes %d arguments, got %d", t.Name, f.Arity, len(t.Args))
		}
		var args []query.ColRef
		for _, a := range t.Args {
			if !a.IsCol {
				return nil, fmt.Errorf("sqlparse: function arguments must be columns")
			}
			ref, err := resolve(a.Col)
			if err != nil {
				return nil, err
			}
			args = append(args, ref)
		}
		return &query.Predicate{Kind: query.KindFunc, Func: f, Args: args}, nil

	case *InPred:
		if b.CompileSubquery == nil {
			return nil, fmt.Errorf("sqlparse: IN-subqueries are not supported here")
		}
		lhs, err := resolve(t.Left)
		if err != nil {
			return nil, err
		}
		args := []query.ColRef{lhs}
		// Correlated references: columns in the subquery's WHERE clause that
		// resolve against the *outer* FROM list rather than the subquery's.
		corr, err := b.correlatedRefs(t.Sub, resolve)
		if err != nil {
			return nil, err
		}
		args = append(args, corr...)
		f, err := b.CompileSubquery(t.Sub, t.Not, args)
		if err != nil {
			return nil, err
		}
		return &query.Predicate{Kind: query.KindFunc, Func: f, Args: args}, nil
	}
	return nil, fmt.Errorf("sqlparse: unknown predicate type %T", w)
}

// correlatedRefs finds outer-table column references inside a subquery.
func (b *Binder) correlatedRefs(sub *SelectStmt, outerResolve func(ColExpr) (query.ColRef, error)) ([]query.ColRef, error) {
	subTabs := map[string]bool{}
	for _, t := range sub.Tables {
		subTabs[t] = true
	}
	var out []query.ColRef
	seen := map[query.ColRef]bool{}
	addIfOuter := func(c ColExpr) error {
		if c.Table == "" || subTabs[c.Table] {
			return nil
		}
		ref, err := outerResolve(c)
		if err != nil {
			return err
		}
		if !seen[ref] {
			seen[ref] = true
			out = append(out, ref)
		}
		return nil
	}
	for _, w := range sub.Where {
		switch t := w.(type) {
		case *CmpPred:
			if t.Left.IsCol {
				if err := addIfOuter(t.Left.Col); err != nil {
					return nil, err
				}
			}
			if t.Right.IsCol {
				if err := addIfOuter(t.Right.Col); err != nil {
					return nil, err
				}
			}
		case *FuncPred:
			for _, a := range t.Args {
				if a.IsCol {
					if err := addIfOuter(a.Col); err != nil {
						return nil, err
					}
				}
			}
		case *InPred:
			return nil, fmt.Errorf("sqlparse: nested IN-subqueries are unsupported")
		}
	}
	return out, nil
}

// BindDelete resolves a DELETE statement into the target table and its
// analyzed predicate list.
func (b *Binder) BindDelete(stmt *DeleteStmt) (*query.Query, error) {
	sel := &SelectStmt{Star: true, Tables: []string{stmt.Table}, Where: stmt.Where}
	bound, err := b.Bind(sel)
	if err != nil {
		return nil, err
	}
	return bound.Query, nil
}
