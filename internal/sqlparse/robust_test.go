package sqlparse

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds mutated fragments of valid SQL to the parser:
// it may reject them, but it must never panic or hang.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		"SELECT * FROM t3, t10 WHERE t3.ua1 = t10.ua1 AND costly100(t10.u20)",
		"EXPLAIN SELECT a, b FROM r WHERE a < 5 AND f(x, y) AND s = 'lit'",
		"SELECT name FROM student WHERE student.mother IN (SELECT name FROM professor WHERE professor.dept = student.dept)",
		"SELECT * FROM r WHERE x NOT IN (SELECT y FROM s WHERE z >= -42)",
	}
	alphabet := []byte("abcSELT*,.()<>='; \n\t0123NULq")
	rng := rand.New(rand.NewSource(1994))
	for _, seed := range seeds {
		for trial := 0; trial < 400; trial++ {
			b := []byte(seed)
			for m := 1 + rng.Intn(4); m > 0; m-- {
				switch rng.Intn(3) {
				case 0: // mutate a byte
					b[rng.Intn(len(b))] = alphabet[rng.Intn(len(alphabet))]
				case 1: // delete a span
					i := rng.Intn(len(b))
					j := i + 1 + rng.Intn(5)
					if j > len(b) {
						j = len(b)
					}
					b = append(b[:i], b[j:]...)
				case 2: // duplicate a span
					i := rng.Intn(len(b))
					j := i + 1 + rng.Intn(8)
					if j > len(b) {
						j = len(b)
					}
					b = append(b[:j], append(append([]byte{}, b[i:j]...), b[j:]...)...)
				}
				if len(b) == 0 {
					b = []byte("S")
				}
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("parser panicked on %q: %v", b, r)
					}
				}()
				_, _ = Parse(string(b))
			}()
		}
	}
}

// TestParseRoundTripStability re-parses reconstructions of parsed queries:
// tables, predicates, and projections survive a parse → render → parse loop.
func TestParseRoundTripStability(t *testing.T) {
	queries := []string{
		"SELECT * FROM t3, t10 WHERE t3.ua1 = t10.ua1 AND costly100(t10.u20)",
		"SELECT a, r.b FROM r WHERE a <= 5",
		"SELECT * FROM x WHERE f(x.a, x.b) AND x.c <> 'q'",
	}
	for _, q := range queries {
		s1, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		rendered := renderStmt(s1)
		s2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", rendered, err)
		}
		if renderStmt(s2) != rendered {
			t.Fatalf("round-trip unstable:\n%q\nvs\n%q", rendered, renderStmt(s2))
		}
	}
}

// renderStmt regenerates SQL text from an AST (test helper).
func renderStmt(s *SelectStmt) string {
	var b strings.Builder
	if s.Explain {
		b.WriteString("EXPLAIN ")
	}
	b.WriteString("SELECT ")
	if s.Star {
		b.WriteString("*")
	} else {
		cols := make([]string, len(s.Columns))
		for i, c := range s.Columns {
			cols[i] = c.String()
		}
		b.WriteString(strings.Join(cols, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(s.Tables, ", "))
	if len(s.Where) > 0 {
		b.WriteString(" WHERE ")
		parts := make([]string, len(s.Where))
		for i, w := range s.Where {
			parts[i] = renderPred(w)
		}
		b.WriteString(strings.Join(parts, " AND "))
	}
	return b.String()
}

func renderPred(w PredExpr) string {
	switch p := w.(type) {
	case *CmpPred:
		return p.Left.String() + " " + p.Op + " " + p.Right.String()
	case *FuncPred:
		args := make([]string, len(p.Args))
		for i, a := range p.Args {
			args[i] = a.String()
		}
		return p.Name + "(" + strings.Join(args, ", ") + ")"
	case *InPred:
		not := ""
		if p.Not {
			not = "NOT "
		}
		return p.Left.String() + " " + not + "IN (" + renderStmt(p.Sub) + ")"
	}
	return "?"
}
