package sqlparse

import (
	"strings"
	"testing"

	"predplace/internal/datagen"
	"predplace/internal/expr"
	"predplace/internal/query"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT * FROM t3 WHERE t3.ua1 <= 10 AND name = 'ann' -- comment\n;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind == tokEOF {
			break
		}
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "*", "FROM", "t3", "WHERE", "t3", ".", "ua1", "<=", "10", "AND", "name", "=", "ann", ";"}
	if strings.Join(texts, " ") != strings.Join(want, " ") {
		t.Fatalf("lex = %v", texts)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("'unterminated"); err == nil {
		t.Fatal("unterminated string should fail")
	}
	if _, err := lex("a @ b"); err == nil {
		t.Fatal("bad char should fail")
	}
	if _, err := lex("a ! b"); err == nil {
		t.Fatal("lone ! should fail")
	}
}

func TestParseStar(t *testing.T) {
	s, err := Parse("SELECT * FROM r, s WHERE r.a = s.b AND costly100(r.c)")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Star || len(s.Tables) != 2 || len(s.Where) != 2 {
		t.Fatalf("parse = %+v", s)
	}
	cmp, ok := s.Where[0].(*CmpPred)
	if !ok || cmp.Op != "=" || !cmp.Left.IsCol || cmp.Left.Col.Table != "r" {
		t.Fatalf("first pred = %+v", s.Where[0])
	}
	fn, ok := s.Where[1].(*FuncPred)
	if !ok || fn.Name != "costly100" || len(fn.Args) != 1 {
		t.Fatalf("second pred = %+v", s.Where[1])
	}
}

func TestParseColumnsAndExplain(t *testing.T) {
	s, err := Parse("EXPLAIN SELECT r.a, b FROM r WHERE a < 5;")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Explain || s.Star || len(s.Columns) != 2 {
		t.Fatalf("parse = %+v", s)
	}
	if s.Columns[0].Table != "r" || s.Columns[1].Table != "" {
		t.Fatalf("columns = %+v", s.Columns)
	}
}

func TestParseInSubquery(t *testing.T) {
	s, err := Parse(`SELECT name FROM student WHERE student.mother IN
		(SELECT name FROM professor WHERE professor.dept = student.dept)`)
	if err != nil {
		t.Fatal(err)
	}
	in, ok := s.Where[0].(*InPred)
	if !ok || in.Not || in.Left.Col != "mother" {
		t.Fatalf("in pred = %+v", s.Where[0])
	}
	if len(in.Sub.Tables) != 1 || in.Sub.Tables[0] != "professor" {
		t.Fatalf("subquery = %+v", in.Sub)
	}
	s2, err := Parse("SELECT * FROM r WHERE r.x NOT IN (SELECT y FROM s)")
	if err != nil {
		t.Fatal(err)
	}
	if in2 := s2.Where[0].(*InPred); !in2.Not {
		t.Fatal("NOT IN not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM r WHERE",
		"SELECT * FROM r WHERE a ==",
		"SELECT * FROM r extra",
		"SELECT * FROM r WHERE 5 IN (SELECT x FROM s)",
		"SELECT * FROM r WHERE f(1,",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func testBinder(t *testing.T) (*Binder, *datagen.DB) {
	t.Helper()
	db, err := datagen.Build(datagen.Config{Scale: 0.01, Tables: []int{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return &Binder{Cat: db.Cat}, db
}

func TestBindJoinQuery(t *testing.T) {
	b, _ := testBinder(t)
	s, err := Parse("SELECT * FROM t1, t3 WHERE t1.ua1 = t3.ua1 AND costly100(t3.u20) AND t1.u10 < 3")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := b.Bind(s)
	if err != nil {
		t.Fatal(err)
	}
	q := bound.Query
	if len(q.Tables) != 2 || len(q.Preds) != 3 {
		t.Fatalf("bound = %+v", q)
	}
	if q.Preds[0].Kind != query.KindJoinCmp {
		t.Fatal("join pred kind")
	}
	if q.Preds[1].Kind != query.KindFunc || q.Preds[1].CostPerTuple != 100 {
		t.Fatalf("func pred not analyzed: %+v", q.Preds[1])
	}
	if q.Preds[2].Kind != query.KindSelCmp || q.Preds[2].Selectivity <= 0 {
		t.Fatal("sel pred not analyzed")
	}
}

func TestBindResolvesUnqualified(t *testing.T) {
	b, _ := testBinder(t)
	// ua1 exists in both tables: ambiguous. a1 too. So qualify one side.
	s, _ := Parse("SELECT * FROM t1 WHERE ua1 = 5")
	bound, err := b.Bind(s)
	if err != nil {
		t.Fatal(err)
	}
	if bound.Query.Preds[0].Left.Table != "t1" {
		t.Fatal("unqualified column not resolved")
	}
	s2, _ := Parse("SELECT * FROM t1, t3 WHERE ua1 = 5")
	if _, err := b.Bind(s2); err == nil {
		t.Fatal("ambiguous column should fail")
	}
}

func TestBindErrors(t *testing.T) {
	b, _ := testBinder(t)
	bad := []string{
		"SELECT * FROM missing",
		"SELECT * FROM t1 WHERE t1.nocol = 1",
		"SELECT * FROM t1 WHERE t9.ua1 = 1",
		"SELECT * FROM t1, t1",
		"SELECT * FROM t1 WHERE nosuchfunc(t1.ua1)",
		"SELECT * FROM t1 WHERE costly100(t1.ua1, t1.u10)", // arity
		"SELECT * FROM t1 WHERE t1.ua1 = t1.u10",           // same-table compare
		"SELECT nocol FROM t1",
		"SELECT * FROM t1 WHERE t1.ua1 IN (SELECT ua1 FROM t3)", // no compiler
	}
	for _, src := range bad {
		s, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := b.Bind(s); err == nil {
			t.Errorf("Bind(%q) should fail", src)
		}
	}
}

func TestBindReversedConstantComparison(t *testing.T) {
	b, _ := testBinder(t)
	s, _ := Parse("SELECT * FROM t1 WHERE 5 > t1.ua1")
	bound, err := b.Bind(s)
	if err != nil {
		t.Fatal(err)
	}
	p := bound.Query.Preds[0]
	if p.Op != expr.OpLT || p.Left.Col != "ua1" || p.Value.I != 5 {
		t.Fatalf("flip failed: %+v", p)
	}
}

func TestBindSubqueryCompiler(t *testing.T) {
	b, _ := testBinder(t)
	var gotArgs []query.ColRef
	b.CompileSubquery = func(sub *SelectStmt, not bool, args []query.ColRef) (*expr.FuncDef, error) {
		gotArgs = args
		return expr.NewCostly("in_sub", len(args), 50, 0.3, 1), nil
	}
	s, _ := Parse("SELECT * FROM t1 WHERE t1.ua1 IN (SELECT ua1 FROM t3 WHERE t3.u10 = t1.u10)")
	bound, err := b.Bind(s)
	if err != nil {
		t.Fatal(err)
	}
	p := bound.Query.Preds[0]
	if p.Kind != query.KindFunc || p.CostPerTuple != 50 {
		t.Fatalf("subquery pred = %+v", p)
	}
	// args: lhs + correlated t1.u10
	if len(gotArgs) != 2 || gotArgs[0].Col != "ua1" || gotArgs[1] != (query.ColRef{Table: "t1", Col: "u10"}) {
		t.Fatalf("args = %v", gotArgs)
	}
}

func TestBindProjection(t *testing.T) {
	b, _ := testBinder(t)
	s, _ := Parse("SELECT t1.ua1, t1.u10 FROM t1")
	bound, err := b.Bind(s)
	if err != nil {
		t.Fatal(err)
	}
	if bound.Star || len(bound.Projection) != 2 || bound.Projection[1].Col != "u10" {
		t.Fatalf("projection = %+v", bound.Projection)
	}
}
