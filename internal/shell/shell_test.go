package shell

import (
	"strings"
	"testing"

	"predplace"
)

func newSession(t *testing.T) *Session {
	t.Helper()
	db, err := predplace.Open(predplace.Config{Scale: 0.01, Tables: []int{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return New(db)
}

func run(t *testing.T, s *Session, line string) (string, bool) {
	t.Helper()
	var b strings.Builder
	cont := s.Execute(line, &b)
	return b.String(), cont
}

func TestQuit(t *testing.T) {
	s := newSession(t)
	for _, q := range []string{`\q`, "quit", "exit"} {
		if _, cont := run(t, s, q); cont {
			t.Fatalf("%q should end the session", q)
		}
	}
	if _, cont := run(t, s, ""); !cont {
		t.Fatal("empty line should continue")
	}
}

func TestAlgoSwitch(t *testing.T) {
	s := newSession(t)
	out, _ := run(t, s, `\algo pullup`)
	if s.Algo != predplace.PullUp || !strings.Contains(out, "PullUp") {
		t.Fatalf("algo switch failed: %q algo=%v", out, s.Algo)
	}
	out, _ = run(t, s, `\algo bogus`)
	if !strings.Contains(out, "migration") || s.Algo != predplace.PullUp {
		t.Fatalf("bad algo should list options and keep current: %q", out)
	}
	// Every published name resolves.
	for name := range AlgoNames {
		if _, cont := run(t, s, `\algo `+name); !cont {
			t.Fatalf("algo %s ended session", name)
		}
	}
}

func TestTablesAndFuncs(t *testing.T) {
	s := newSession(t)
	out, _ := run(t, s, `\tables`)
	if !strings.Contains(out, "t1") || !strings.Contains(out, "t3") {
		t.Fatalf("tables output: %q", out)
	}
	if !strings.Contains(out, "a1") {
		t.Fatalf("tables should list indexes: %q", out)
	}
	out, _ = run(t, s, `\funcs`)
	if !strings.Contains(out, "costly100") {
		t.Fatalf("funcs output: %q", out)
	}
}

func TestCachingToggle(t *testing.T) {
	s := newSession(t)
	out, _ := run(t, s, `\caching on`)
	if !strings.Contains(out, "true") {
		t.Fatalf("caching on: %q", out)
	}
	out, _ = run(t, s, `\caching off`)
	if !strings.Contains(out, "false") {
		t.Fatalf("caching off: %q", out)
	}
}

func TestTransferToggle(t *testing.T) {
	s := newSession(t)
	out, _ := run(t, s, `\transfer on`)
	if !strings.Contains(out, "true") {
		t.Fatalf("transfer on: %q", out)
	}
	if !s.DB.Transfer() {
		t.Fatal("transfer not enabled on DB")
	}
	out, _ = run(t, s, `\transfer off`)
	if !strings.Contains(out, "false") {
		t.Fatalf("transfer off: %q", out)
	}
}

func TestTopKToggle(t *testing.T) {
	s := newSession(t)
	out, _ := run(t, s, `\topk on`)
	if !strings.Contains(out, "true") {
		t.Fatalf("topk on: %q", out)
	}
	if !s.DB.TopK() {
		t.Fatal("top-k execution not enabled on DB")
	}
	out, _ = run(t, s, `\topk off`)
	if !strings.Contains(out, "false") {
		t.Fatalf("topk off: %q", out)
	}
	if s.DB.TopK() {
		t.Fatal("top-k execution not disabled on DB")
	}
}

func TestRunQuery(t *testing.T) {
	s := newSession(t)
	out, _ := run(t, s, "SELECT * FROM t1 WHERE t1.ua1 < 3")
	if !strings.Contains(out, "3 rows;") {
		t.Fatalf("query output: %q", out)
	}
	if !strings.Contains(out, "t1.ua1") {
		t.Fatalf("missing header: %q", out)
	}
}

func TestRowCap(t *testing.T) {
	s := newSession(t)
	s.MaxRows = 5
	out, _ := run(t, s, "SELECT * FROM t1")
	if !strings.Contains(out, "more rows)") {
		t.Fatalf("row cap not applied: %q", out)
	}
}

func TestExplain(t *testing.T) {
	s := newSession(t)
	out, _ := run(t, s, "EXPLAIN SELECT * FROM t1, t3 WHERE t1.ua1 = t3.ua1 AND costly100(t3.u20)")
	if !strings.Contains(out, "Filter*") || !strings.Contains(out, "estimated cost") {
		t.Fatalf("explain output: %q", out)
	}
	if strings.Contains(out, "rows;") {
		t.Fatal("EXPLAIN must not execute")
	}
}

func TestCompare(t *testing.T) {
	s := newSession(t)
	out, _ := run(t, s, "COMPARE SELECT * FROM t1, t3 WHERE t1.ua1 = t3.ua1 AND costly100(t3.u20)")
	if !strings.Contains(out, "PredicateMigration") || !strings.Contains(out, "relative") {
		t.Fatalf("compare output: %q", out)
	}
}

func TestErrorsSurface(t *testing.T) {
	s := newSession(t)
	out, _ := run(t, s, "SELECT * FROM missing")
	if !strings.Contains(out, "error:") {
		t.Fatalf("error not surfaced: %q", out)
	}
	out, _ = run(t, s, "NOT SQL AT ALL")
	if !strings.Contains(out, "error:") {
		t.Fatalf("parse error not surfaced: %q", out)
	}
}

func TestHelp(t *testing.T) {
	s := newSession(t)
	out, _ := run(t, s, `\help`)
	for _, want := range []string{`\algo`, `\tables`, "COMPARE"} {
		if !strings.Contains(out, want) {
			t.Fatalf("help missing %q: %q", want, out)
		}
	}
}

func TestDNFReported(t *testing.T) {
	s := newSession(t)
	s.DB.SetBudget(10)
	out, _ := run(t, s, "SELECT * FROM t1, t3 WHERE t1.ua1 = t3.ua1 AND costly1000(t3.u20)")
	if !strings.Contains(out, "aborted") {
		t.Fatalf("DNF not reported: %q", out)
	}
	s.DB.SetBudget(0)
}

func TestSaveOpenCommands(t *testing.T) {
	s := newSession(t)
	path := t.TempDir() + "/snap.ppdb"
	out, _ := run(t, s, `\save `+path)
	if !strings.Contains(out, "saved to") {
		t.Fatalf("save failed: %q", out)
	}
	out, _ = run(t, s, `\open `+path)
	if !strings.Contains(out, "opened") {
		t.Fatalf("open failed: %q", out)
	}
	out, _ = run(t, s, "SELECT COUNT(*) FROM t1")
	if !strings.Contains(out, "1 rows;") {
		t.Fatalf("query after open: %q", out)
	}
	out, _ = run(t, s, `\open /nonexistent.ppdb`)
	if !strings.Contains(out, "error:") {
		t.Fatalf("bad open should error: %q", out)
	}
}

func TestDeleteStatement(t *testing.T) {
	s := newSession(t)
	out, _ := run(t, s, "DELETE FROM t1 WHERE t1.ua1 < 10")
	if !strings.Contains(out, "10 rows deleted") {
		t.Fatalf("delete output: %q", out)
	}
	out, _ = run(t, s, "SELECT COUNT(*) FROM t1")
	if !strings.Contains(out, "90") {
		t.Fatalf("count after delete: %q", out)
	}
	out, _ = run(t, s, "DELETE FROM nope")
	if !strings.Contains(out, "error:") {
		t.Fatalf("bad delete: %q", out)
	}
}
