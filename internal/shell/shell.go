// Package shell implements the interactive SQL shell logic behind cmd/ppsql:
// meta-command dispatch, result formatting, and session state (current
// algorithm, caching toggle). It is separated from the binary so the REPL
// behaviour is testable.
package shell

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"predplace"
)

// AlgoNames maps shell names to algorithms.
var AlgoNames = map[string]predplace.Algorithm{
	"naive":      predplace.NaivePushDown,
	"pushdown":   predplace.PushDown,
	"pullup":     predplace.PullUp,
	"pullrank":   predplace.PullRank,
	"migration":  predplace.Migration,
	"ldl":        predplace.LDL,
	"ldl-ikkbz":  predplace.LDLIKKBZ,
	"exhaustive": predplace.Exhaustive,
	"robust":     predplace.Robust,
}

// Session is one interactive shell session over a database.
type Session struct {
	DB *predplace.DB
	// Algo is the current placement algorithm (default Migration).
	Algo predplace.Algorithm
	// MaxRows caps printed rows per result (default 20).
	MaxRows int
}

// New creates a session with defaults.
func New(db *predplace.DB) *Session {
	return &Session{DB: db, Algo: predplace.Migration, MaxRows: 20}
}

// say writes one line of REPL output. A write failure means the user's
// terminal (or the test buffer) is gone; the next read ends the session, so
// the error is deliberately dropped here — and only here.
func say(w io.Writer, args ...interface{}) {
	//pplint:ignore errdrop REPL terminal write; session ends on next read anyway
	fmt.Fprintln(w, args...)
}

// sayf is say with Printf formatting and no implicit newline.
func sayf(w io.Writer, format string, args ...interface{}) {
	//pplint:ignore errdrop REPL terminal write; session ends on next read anyway
	fmt.Fprintf(w, format, args...)
}

// Execute handles one input line, writing output to w. It returns false when
// the session should end.
func (s *Session) Execute(line string, w io.Writer) bool {
	line = strings.TrimSpace(line)
	switch {
	case line == "":
		return true
	case line == `\q` || line == "quit" || line == "exit":
		return false
	case strings.HasPrefix(line, `\algo`):
		s.cmdAlgo(strings.TrimSpace(strings.TrimPrefix(line, `\algo`)), w)
	case strings.HasPrefix(line, `\caching`) || strings.HasPrefix(line, `\cache`):
		on := strings.HasSuffix(line, "on")
		s.DB.SetCaching(on)
		say(w, "predicate caching:", on)
	case strings.HasPrefix(line, `\transfer`):
		on := strings.HasSuffix(line, "on")
		s.DB.SetTransfer(on)
		say(w, "predicate transfer:", on)
	case strings.HasPrefix(line, `\topk`):
		on := strings.HasSuffix(line, "on")
		s.DB.SetTopK(on)
		say(w, "top-k execution:", on)
	case strings.HasPrefix(line, `\feedback`):
		on := strings.HasSuffix(line, "on")
		s.DB.SetFeedback(on)
		say(w, "feedback-driven statistics:", on)
	case line == `\tables`:
		s.cmdTables(w)
	case strings.HasPrefix(line, `\save `):
		path := strings.TrimSpace(strings.TrimPrefix(line, `\save `))
		if err := s.DB.Save(path); err != nil {
			say(w, "error:", err)
		} else {
			say(w, "saved to", path)
		}
	case strings.HasPrefix(line, `\open `):
		path := strings.TrimSpace(strings.TrimPrefix(line, `\open `))
		db, err := predplace.OpenFile(path, predplace.Config{})
		if err != nil {
			say(w, "error:", err)
		} else {
			s.DB = db
			say(w, "opened", path)
		}
	case line == `\funcs`:
		s.cmdFuncs(w)
	case line == `\compare` || strings.HasPrefix(line, `\compare `):
		say(w, `usage: \compare is implicit — prefix a query with COMPARE`)
	case line == `\help` || line == `\?`:
		s.cmdHelp(w)
	case strings.HasPrefix(strings.ToUpper(line), "COMPARE "):
		s.cmdCompare(strings.TrimSpace(line[len("COMPARE"):]), w)
	case strings.HasPrefix(strings.ToUpper(line), "DELETE"):
		n, err := s.DB.Exec(line)
		if err != nil {
			say(w, "error:", err)
		} else {
			sayf(w, "%d rows deleted\n", n)
		}
	default:
		s.runSQL(line, w)
	}
	return true
}

func (s *Session) cmdHelp(w io.Writer) {
	sayf(w, "%s", `commands:
  \algo <name>      switch placement algorithm
  \caching on|off   toggle predicate caching
  \transfer on|off  toggle predicate transfer (Bloom pre-filtering)
  \topk on|off      toggle top-k execution (bounded-heap ORDER BY/LIMIT)
  \feedback on|off  toggle feedback-driven statistics (observed selectivities)
  \tables           list relations
  \funcs            list registered functions
  \save <path>      snapshot the database to a file
  \open <path>      load a database snapshot
  \help             this help
  \q                quit
  EXPLAIN SELECT …  show the plan without running
  COMPARE SELECT …  run under every algorithm and compare
`)
}

func (s *Session) cmdAlgo(name string, w io.Writer) {
	if a, ok := AlgoNames[name]; ok {
		s.Algo = a
		say(w, "algorithm:", a)
		return
	}
	names := make([]string, 0, len(AlgoNames))
	for n := range AlgoNames {
		names = append(names, n)
	}
	sort.Strings(names)
	say(w, "algorithms:", strings.Join(names, " "))
}

func (s *Session) cmdTables(w io.Writer) {
	for _, t := range s.DB.Catalog().Tables() {
		idx := make([]string, 0, len(t.Indexes))
		for col := range t.Indexes {
			idx = append(idx, col)
		}
		sort.Strings(idx)
		sayf(w, "  %-10s %10d tuples %8d pages  indexes: %s\n",
			t.Name, t.Card, t.Pages(), strings.Join(idx, ","))
	}
}

func (s *Session) cmdFuncs(w io.Writer) {
	for _, f := range s.DB.Catalog().Funcs() {
		sayf(w, "  %s\n", f)
	}
}

func (s *Session) cmdCompare(sql string, w io.Writer) {
	algos := predplace.Algorithms()
	results, err := s.DB.CompareAll(sql, algos...)
	if err != nil {
		say(w, "error:", err)
		return
	}
	sayf(w, "%s", predplace.FormatComparison(algos, results))
}

func (s *Session) runSQL(sql string, w io.Writer) {
	res, err := s.DB.Query(sql, s.Algo)
	if err != nil {
		say(w, "error:", err)
		return
	}
	if res.Explained {
		sayf(w, "%s", res.Plan)
		sayf(w, "estimated cost: %.0f (plans retained %d, planning %v)\n",
			res.EstCost, res.Info.PlansRetained, res.Info.Elapsed)
		return
	}
	if res.DNF {
		say(w, "aborted: charged-cost budget exceeded")
		return
	}
	say(w, strings.Join(res.Cols, " | "))
	for i, row := range res.Rows {
		if i == s.MaxRows {
			sayf(w, "… (%d more rows)\n", len(res.Rows)-s.MaxRows)
			break
		}
		cells := make([]string, len(row))
		for k, v := range row {
			cells[k] = v.String()
		}
		say(w, strings.Join(cells, " | "))
	}
	sayf(w, "%d rows; %s\n", res.Stats.Rows, res.Stats)
	if res.Profile != nil {
		if buf, err := json.MarshalIndent(res.Profile, "", "  "); err == nil {
			sayf(w, "%s\n", buf)
		}
	}
}
