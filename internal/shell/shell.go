// Package shell implements the interactive SQL shell logic behind cmd/ppsql:
// meta-command dispatch, result formatting, and session state (current
// algorithm, caching toggle). It is separated from the binary so the REPL
// behaviour is testable.
package shell

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"predplace"
)

// AlgoNames maps shell names to algorithms.
var AlgoNames = map[string]predplace.Algorithm{
	"naive":      predplace.NaivePushDown,
	"pushdown":   predplace.PushDown,
	"pullup":     predplace.PullUp,
	"pullrank":   predplace.PullRank,
	"migration":  predplace.Migration,
	"ldl":        predplace.LDL,
	"ldl-ikkbz":  predplace.LDLIKKBZ,
	"exhaustive": predplace.Exhaustive,
}

// Session is one interactive shell session over a database.
type Session struct {
	DB *predplace.DB
	// Algo is the current placement algorithm (default Migration).
	Algo predplace.Algorithm
	// MaxRows caps printed rows per result (default 20).
	MaxRows int
}

// New creates a session with defaults.
func New(db *predplace.DB) *Session {
	return &Session{DB: db, Algo: predplace.Migration, MaxRows: 20}
}

// Execute handles one input line, writing output to w. It returns false when
// the session should end.
func (s *Session) Execute(line string, w io.Writer) bool {
	line = strings.TrimSpace(line)
	switch {
	case line == "":
		return true
	case line == `\q` || line == "quit" || line == "exit":
		return false
	case strings.HasPrefix(line, `\algo`):
		s.cmdAlgo(strings.TrimSpace(strings.TrimPrefix(line, `\algo`)), w)
	case strings.HasPrefix(line, `\caching`) || strings.HasPrefix(line, `\cache`):
		on := strings.HasSuffix(line, "on")
		s.DB.SetCaching(on)
		fmt.Fprintln(w, "predicate caching:", on)
	case line == `\tables`:
		s.cmdTables(w)
	case strings.HasPrefix(line, `\save `):
		path := strings.TrimSpace(strings.TrimPrefix(line, `\save `))
		if err := s.DB.Save(path); err != nil {
			fmt.Fprintln(w, "error:", err)
		} else {
			fmt.Fprintln(w, "saved to", path)
		}
	case strings.HasPrefix(line, `\open `):
		path := strings.TrimSpace(strings.TrimPrefix(line, `\open `))
		db, err := predplace.OpenFile(path, predplace.Config{})
		if err != nil {
			fmt.Fprintln(w, "error:", err)
		} else {
			s.DB = db
			fmt.Fprintln(w, "opened", path)
		}
	case line == `\funcs`:
		s.cmdFuncs(w)
	case line == `\compare` || strings.HasPrefix(line, `\compare `):
		fmt.Fprintln(w, `usage: \compare is implicit — prefix a query with COMPARE`)
	case line == `\help` || line == `\?`:
		s.cmdHelp(w)
	case strings.HasPrefix(strings.ToUpper(line), "COMPARE "):
		s.cmdCompare(strings.TrimSpace(line[len("COMPARE"):]), w)
	case strings.HasPrefix(strings.ToUpper(line), "DELETE"):
		n, err := s.DB.Exec(line)
		if err != nil {
			fmt.Fprintln(w, "error:", err)
		} else {
			fmt.Fprintf(w, "%d rows deleted\n", n)
		}
	default:
		s.runSQL(line, w)
	}
	return true
}

func (s *Session) cmdHelp(w io.Writer) {
	fmt.Fprint(w, `commands:
  \algo <name>      switch placement algorithm
  \caching on|off   toggle predicate caching
  \tables           list relations
  \funcs            list registered functions
  \save <path>      snapshot the database to a file
  \open <path>      load a database snapshot
  \help             this help
  \q                quit
  EXPLAIN SELECT …  show the plan without running
  COMPARE SELECT …  run under every algorithm and compare
`)
}

func (s *Session) cmdAlgo(name string, w io.Writer) {
	if a, ok := AlgoNames[name]; ok {
		s.Algo = a
		fmt.Fprintln(w, "algorithm:", a)
		return
	}
	names := make([]string, 0, len(AlgoNames))
	for n := range AlgoNames {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "algorithms:", strings.Join(names, " "))
}

func (s *Session) cmdTables(w io.Writer) {
	for _, t := range s.DB.Catalog().Tables() {
		idx := make([]string, 0, len(t.Indexes))
		for col := range t.Indexes {
			idx = append(idx, col)
		}
		sort.Strings(idx)
		fmt.Fprintf(w, "  %-10s %10d tuples %8d pages  indexes: %s\n",
			t.Name, t.Card, t.Pages(), strings.Join(idx, ","))
	}
}

func (s *Session) cmdFuncs(w io.Writer) {
	for _, f := range s.DB.Catalog().Funcs() {
		fmt.Fprintf(w, "  %s\n", f)
	}
}

func (s *Session) cmdCompare(sql string, w io.Writer) {
	algos := predplace.Algorithms()
	results, err := s.DB.CompareAll(sql, algos...)
	if err != nil {
		fmt.Fprintln(w, "error:", err)
		return
	}
	fmt.Fprint(w, predplace.FormatComparison(algos, results))
}

func (s *Session) runSQL(sql string, w io.Writer) {
	res, err := s.DB.Query(sql, s.Algo)
	if err != nil {
		fmt.Fprintln(w, "error:", err)
		return
	}
	if res.Explained {
		fmt.Fprint(w, res.Plan)
		fmt.Fprintf(w, "estimated cost: %.0f (plans retained %d, planning %v)\n",
			res.EstCost, res.Info.PlansRetained, res.Info.Elapsed)
		return
	}
	if res.DNF {
		fmt.Fprintln(w, "aborted: charged-cost budget exceeded")
		return
	}
	fmt.Fprintln(w, strings.Join(res.Cols, " | "))
	for i, row := range res.Rows {
		if i == s.MaxRows {
			fmt.Fprintf(w, "… (%d more rows)\n", len(res.Rows)-s.MaxRows)
			break
		}
		cells := make([]string, len(row))
		for k, v := range row {
			cells[k] = v.String()
		}
		fmt.Fprintln(w, strings.Join(cells, " | "))
	}
	fmt.Fprintf(w, "%d rows; %s\n", res.Stats.Rows, res.Stats)
}
