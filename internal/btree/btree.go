// Package btree implements a B+tree index mapping int64 keys to tuple
// identifiers, supporting duplicates, equality probes, and range scans.
//
// Nodes are sized so that one node corresponds to roughly one disk page;
// probes charge random I/Os to a storage.Accountant under the standard
// assumption that the root and internal levels stay cached (the paper's cost
// model prices an index probe at "typically 3 I/Os or less"; we charge one
// random I/O per leaf visited, and heap fetches for matching tuples are
// charged separately by the buffer pool).
package btree

import (
	"fmt"
	"sort"

	"predplace/internal/storage"
)

// order is the maximum number of keys per node (fanout-1). 256 keys of
// 8 bytes plus child pointers approximates an 8 KiB page.
const order = 256

// Entry is one (key, tid) pair stored in a leaf.
type Entry struct {
	Key int64
	TID storage.TID
}

type node struct {
	leaf     bool
	keys     []int64
	children []*node // internal nodes: len(keys)+1 children
	entries  []Entry // leaf nodes: entries sorted by (Key, insertion order)
	next     *node   // leaf chain for range scans
}

// Tree is a B+tree index. Not safe for concurrent mutation; concurrent
// read-only probes are safe after loading, matching the read-only benchmark
// workloads.
type Tree struct {
	root   *node
	height int
	size   int
	acct   *storage.Accountant
}

// New creates an empty tree charging probe I/O to acct (nil = no charging).
func New(acct *storage.Accountant) *Tree {
	return &Tree{root: &node{leaf: true}, height: 1, acct: acct}
}

// WithAcct returns a read-only view of the tree whose probes charge into
// acct instead of the tree's own accountant — how a query attributes index
// probe I/O to its private ledger while sharing the loaded tree. The view
// shares all nodes; it must not be used to mutate the tree while other
// probes are in flight (the same contract as the Tree itself).
func (t *Tree) WithAcct(acct *storage.Accountant) *Tree {
	if acct == nil {
		return t
	}
	v := *t
	v.acct = acct
	return &v
}

// Len returns the number of entries in the tree.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 for a lone leaf).
func (t *Tree) Height() int { return t.height }

func (t *Tree) chargeLeaf() {
	if t.acct != nil {
		t.acct.RecordRandRead()
	}
}

// Insert adds (key, tid). Duplicate keys are allowed.
func (t *Tree) Insert(key int64, tid storage.TID) {
	t.size++
	newChild, splitKey := t.insert(t.root, key, tid)
	if newChild != nil {
		root := &node{
			keys:     []int64{splitKey},
			children: []*node{t.root, newChild},
		}
		t.root = root
		t.height++
	}
}

// insert descends into n; if n splits, returns the new right sibling and the
// key separating it from n.
func (t *Tree) insert(n *node, key int64, tid storage.TID) (*node, int64) {
	if n.leaf {
		i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].Key > key })
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = Entry{Key: key, TID: tid}
		if len(n.entries) <= order {
			return nil, 0
		}
		mid := len(n.entries) / 2
		right := &node{leaf: true, entries: append([]Entry(nil), n.entries[mid:]...), next: n.next}
		n.entries = n.entries[:mid]
		n.next = right
		return right, right.entries[0].Key
	}
	i := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
	newChild, splitKey := t.insert(n.children[i], key, tid)
	if newChild == nil {
		return nil, 0
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = splitKey
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = newChild
	if len(n.keys) <= order {
		return nil, 0
	}
	mid := len(n.keys) / 2
	right := &node{
		keys:     append([]int64(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	sk := n.keys[mid]
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return right, sk
}

// findLeaf returns the leftmost leaf that may contain key: equal separators
// route left, because a duplicate run can straddle the split point.
func (t *Tree) findLeaf(key int64) *node {
	n := t.root
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return key <= n.keys[i] })
		n = n.children[i]
	}
	return n
}

// Probe returns the TIDs of all entries with exactly the given key, charging
// one random I/O per leaf visited.
func (t *Tree) Probe(key int64) []storage.TID {
	var out []storage.TID
	n := t.findLeaf(key)
	t.chargeLeaf()
	for n != nil {
		i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].Key >= key })
		for ; i < len(n.entries); i++ {
			if n.entries[i].Key > key {
				return out
			}
			out = append(out, n.entries[i].TID)
		}
		n = n.next
		if n != nil {
			t.chargeLeaf()
		}
	}
	return out
}

// Range returns an iterator over entries with lo <= key <= hi in key order.
func (t *Tree) Range(lo, hi int64) *Iter {
	n := t.findLeaf(lo)
	t.chargeLeaf()
	i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].Key >= lo })
	return &Iter{t: t, n: n, i: i, hi: hi}
}

// ScanAll returns an iterator over every entry in key order.
func (t *Tree) ScanAll() *Iter {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	t.chargeLeaf()
	return &Iter{t: t, n: n, i: 0, hi: int64(^uint64(0) >> 1)}
}

// Iter walks leaf entries in key order up to an inclusive upper bound.
type Iter struct {
	t  *Tree
	n  *node
	i  int
	hi int64
}

// Next returns the next entry, or ok=false at the end of the range.
func (it *Iter) Next() (Entry, bool) {
	for it.n != nil {
		if it.i < len(it.n.entries) {
			e := it.n.entries[it.i]
			if e.Key > it.hi {
				it.n = nil
				return Entry{}, false
			}
			it.i++
			return e, true
		}
		it.n = it.n.next
		it.i = 0
		if it.n != nil {
			it.t.chargeLeaf()
		}
	}
	return Entry{}, false
}

// check validates B+tree invariants; used by tests.
func (t *Tree) check() error {
	return t.checkNode(t.root, nil, nil, t.height)
}

func (t *Tree) checkNode(n *node, lo, hi *int64, depth int) error {
	if n.leaf {
		if depth != 1 {
			return fmt.Errorf("btree: leaves at unequal depth")
		}
		for i, e := range n.entries {
			if i > 0 && n.entries[i-1].Key > e.Key {
				return fmt.Errorf("btree: leaf keys out of order")
			}
			if lo != nil && e.Key < *lo {
				return fmt.Errorf("btree: key %d below bound %d", e.Key, *lo)
			}
			if hi != nil && e.Key > *hi { // equality allowed: duplicate runs may straddle separators

				return fmt.Errorf("btree: key %d above bound %d", e.Key, *hi)
			}
		}
		return nil
	}
	if len(n.children) != len(n.keys)+1 {
		return fmt.Errorf("btree: child/key count mismatch")
	}
	for i := range n.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = &n.keys[i-1]
		}
		if i < len(n.keys) {
			chi = &n.keys[i]
		}
		if err := t.checkNode(n.children[i], clo, chi, depth-1); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes one (key, tid) entry, returning whether it was found. The
// tree uses lazy deletion (no rebalancing): underfull leaves are tolerated,
// which keeps reads correct and suits the benchmark's read-mostly workloads.
func (t *Tree) Delete(key int64, tid storage.TID) bool {
	n := t.findLeaf(key)
	for n != nil {
		i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].Key >= key })
		for ; i < len(n.entries); i++ {
			if n.entries[i].Key > key {
				return false
			}
			if n.entries[i].TID == tid {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				t.size--
				return true
			}
		}
		n = n.next
	}
	return false
}
