package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"predplace/internal/storage"
)

func tid(i int) storage.TID {
	return storage.TID{Page: storage.PageID(i / 100), Slot: storage.SlotID(i % 100)}
}

func TestInsertProbeSmall(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 100; i++ {
		tr.Insert(int64(i), tid(i))
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 100; i++ {
		got := tr.Probe(int64(i))
		if len(got) != 1 || got[0] != tid(i) {
			t.Fatalf("Probe(%d) = %v", i, got)
		}
	}
	if got := tr.Probe(1000); len(got) != 0 {
		t.Fatalf("Probe(missing) = %v", got)
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertManySplits(t *testing.T) {
	tr := New(nil)
	const n = 50000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, k := range perm {
		tr.Insert(int64(k), tid(k))
	}
	if tr.Height() < 2 {
		t.Fatalf("expected splits, height = %d", tr.Height())
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 997 {
		got := tr.Probe(int64(i))
		if len(got) != 1 || got[0] != tid(i) {
			t.Fatalf("Probe(%d) = %v", i, got)
		}
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 1000; i++ {
		tr.Insert(int64(i%10), tid(i))
	}
	for k := int64(0); k < 10; k++ {
		got := tr.Probe(k)
		if len(got) != 100 {
			t.Fatalf("Probe(%d) returned %d tids, want 100", k, len(got))
		}
		seen := map[storage.TID]bool{}
		for _, g := range got {
			seen[g] = true
		}
		if len(seen) != 100 {
			t.Fatalf("Probe(%d) returned duplicated tids", k)
		}
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateRunSpanningLeaves(t *testing.T) {
	tr := New(nil)
	// A run of one key longer than a node forces the run to span leaves.
	for i := 0; i < 3*order; i++ {
		tr.Insert(42, tid(i))
	}
	tr.Insert(41, tid(90000))
	tr.Insert(43, tid(90001))
	got := tr.Probe(42)
	if len(got) != 3*order {
		t.Fatalf("Probe(42) = %d tids, want %d", len(got), 3*order)
	}
	if len(tr.Probe(41)) != 1 || len(tr.Probe(43)) != 1 {
		t.Fatal("neighbors lost")
	}
}

func TestRangeScan(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 10000; i++ {
		tr.Insert(int64(i), tid(i))
	}
	it := tr.Range(100, 199)
	var keys []int64
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		keys = append(keys, e.Key)
	}
	if len(keys) != 100 || keys[0] != 100 || keys[99] != 199 {
		t.Fatalf("range scan wrong: %d keys, first %v last %v", len(keys), keys[0], keys[len(keys)-1])
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("range scan out of order")
	}
}

func TestRangeEmptyAndEdges(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 100; i++ {
		tr.Insert(int64(i*2), tid(i)) // even keys only
	}
	it := tr.Range(1001, 2000)
	if _, ok := it.Next(); ok {
		t.Fatal("range past end should be empty")
	}
	it = tr.Range(3, 3)
	if _, ok := it.Next(); ok {
		t.Fatal("range on absent key should be empty")
	}
	it = tr.Range(0, 0)
	if e, ok := it.Next(); !ok || e.Key != 0 {
		t.Fatal("single-key range failed")
	}
	if _, ok := it.Next(); ok {
		t.Fatal("single-key range should yield once")
	}
}

func TestScanAll(t *testing.T) {
	tr := New(nil)
	const n = 5000
	for _, k := range rand.New(rand.NewSource(3)).Perm(n) {
		tr.Insert(int64(k), tid(k))
	}
	it := tr.ScanAll()
	prev := int64(-1)
	count := 0
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if e.Key < prev {
			t.Fatal("ScanAll out of order")
		}
		prev = e.Key
		count++
	}
	if count != n {
		t.Fatalf("ScanAll visited %d, want %d", count, n)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil)
	if got := tr.Probe(1); len(got) != 0 {
		t.Fatal("probe on empty tree")
	}
	if _, ok := tr.ScanAll().Next(); ok {
		t.Fatal("scan on empty tree")
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatal("empty tree shape")
	}
}

func TestNegativeKeys(t *testing.T) {
	tr := New(nil)
	for i := -500; i < 500; i++ {
		tr.Insert(int64(i), tid(i+500))
	}
	if got := tr.Probe(-500); len(got) != 1 {
		t.Fatalf("Probe(-500) = %v", got)
	}
	it := tr.Range(-10, 10)
	count := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		count++
	}
	if count != 21 {
		t.Fatalf("range(-10,10) = %d entries, want 21", count)
	}
}

func TestProbeChargesIO(t *testing.T) {
	acct := &storage.Accountant{}
	tr := New(acct)
	for i := 0; i < 1000; i++ {
		tr.Insert(int64(i), tid(i))
	}
	acct.Reset()
	tr.Probe(500)
	if acct.Stats().RandReads == 0 {
		t.Fatal("probe should charge random I/O")
	}
}

// TestAgainstReferenceQuick compares the tree to a map-based reference under
// random workloads (property-based equivalence).
func TestAgainstReferenceQuick(t *testing.T) {
	f := func(keys []int16) bool {
		tr := New(nil)
		ref := map[int64][]storage.TID{}
		for i, k16 := range keys {
			k := int64(k16)
			tr.Insert(k, tid(i))
			ref[k] = append(ref[k], tid(i))
		}
		if err := tr.check(); err != nil {
			return false
		}
		for k, want := range ref {
			got := tr.Probe(k)
			if len(got) != len(want) {
				return false
			}
			seen := map[storage.TID]int{}
			for _, g := range got {
				seen[g]++
			}
			for _, w := range want {
				if seen[w] != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeAgainstReferenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := New(nil)
	var all []int64
	for i := 0; i < 20000; i++ {
		k := int64(rng.Intn(5000))
		tr.Insert(k, tid(i))
		all = append(all, k)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for trial := 0; trial < 50; trial++ {
		lo := int64(rng.Intn(5000))
		hi := lo + int64(rng.Intn(1000))
		want := 0
		for _, k := range all {
			if k >= lo && k <= hi {
				want++
			}
		}
		got := 0
		it := tr.Range(lo, hi)
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			if e.Key < lo || e.Key > hi {
				t.Fatalf("range [%d,%d] yielded key %d", lo, hi, e.Key)
			}
			got++
		}
		if got != want {
			t.Fatalf("range [%d,%d]: got %d entries, want %d", lo, hi, got, want)
		}
	}
}

func TestDelete(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 1000; i++ {
		tr.Insert(int64(i%100), tid(i))
	}
	// Delete one specific duplicate.
	if !tr.Delete(42, tid(42)) {
		t.Fatal("delete of present entry failed")
	}
	if tr.Delete(42, tid(42)) {
		t.Fatal("double delete should fail")
	}
	if tr.Len() != 999 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.Probe(42)
	if len(got) != 9 {
		t.Fatalf("Probe(42) = %d entries, want 9", len(got))
	}
	for _, g := range got {
		if g == tid(42) {
			t.Fatal("deleted tid still present")
		}
	}
	if tr.Delete(424242, tid(1)) {
		t.Fatal("delete of absent key should fail")
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAllThenReinsert(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 500; i++ {
		tr.Insert(int64(i), tid(i))
	}
	for i := 0; i < 500; i++ {
		if !tr.Delete(int64(i), tid(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	for i := 0; i < 500; i++ {
		tr.Insert(int64(i), tid(i))
	}
	if len(tr.Probe(250)) != 1 {
		t.Fatal("reinsert after full delete broken")
	}
}
