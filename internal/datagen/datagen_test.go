package datagen

import (
	"testing"

	"predplace/internal/expr"
)

func TestBuildSmall(t *testing.T) {
	db, err := Build(Config{Scale: 0.01, Tables: []int{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := db.Cat.Table("t1")
	if err != nil {
		t.Fatal(err)
	}
	if t1.Card != 100 {
		t.Fatalf("t1 card = %d, want 100", t1.Card)
	}
	t3, err := db.Cat.Table("t3")
	if err != nil {
		t.Fatal(err)
	}
	if t3.Card != 300 {
		t.Fatalf("t3 card = %d, want 300", t3.Card)
	}
	if _, err := db.Cat.Table("t2"); err == nil {
		t.Fatal("t2 should not exist")
	}
}

func TestTupleWidthIs100Bytes(t *testing.T) {
	db, err := Build(Config{Scale: 0.01, Tables: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := db.Cat.Table("t1")
	if t1.TupleBytes != 100 {
		t.Fatalf("tuple width = %d, want 100 (the paper's schema)", t1.TupleBytes)
	}
}

func TestIndexConvention(t *testing.T) {
	db, err := Build(Config{Scale: 0.01, Tables: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := db.Cat.Table("t1")
	for _, d := range DupFactors {
		if d.Indexed != t1.HasIndex(d.Name) {
			t.Errorf("column %s: indexed=%v, HasIndex=%v", d.Name, d.Indexed, t1.HasIndex(d.Name))
		}
	}
	// 'u'-prefixed columns unindexed, others indexed (§2).
	for _, d := range DupFactors {
		if (d.Name[0] == 'u') == d.Indexed {
			t.Errorf("naming convention violated for %s", d.Name)
		}
	}
}

func TestDuplicationFactors(t *testing.T) {
	db, err := Build(Config{Scale: 0.1, Tables: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Cat.Table("t2")
	// card 2000: a10 must have 200 distinct values each ~10 times.
	counts := map[int64]int{}
	it := tab.Heap.Scan()
	defer it.Close()
	idx := tab.ColIndex("a10")
	n := 0
	for {
		rec, _, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		v, err := tab.Codec.DecodeCol(rec, idx)
		if err != nil {
			t.Fatal(err)
		}
		counts[v.I]++
		n++
	}
	if n != 2000 {
		t.Fatalf("scanned %d tuples", n)
	}
	if len(counts) != 200 {
		t.Fatalf("a10 distinct = %d, want 200", len(counts))
	}
	for v, c := range counts {
		if c != 10 {
			t.Fatalf("value %d repeated %d times, want exactly 10", v, c)
		}
		if v < 0 || v >= 200 {
			t.Fatalf("value %d outside 0-based domain", v)
		}
	}
}

func TestDomainContainment(t *testing.T) {
	// values(t1.ua1) ⊂ values(t3.ua1): the property driving Q1 vs Q2.
	db, err := Build(Config{Scale: 0.05, Tables: []int{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	vals := func(name string) map[int64]bool {
		tab, _ := db.Cat.Table(name)
		idx := tab.ColIndex("ua1")
		out := map[int64]bool{}
		it := tab.Heap.Scan()
		defer it.Close()
		for {
			rec, _, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			v, _ := tab.Codec.DecodeCol(rec, idx)
			out[v.I] = true
		}
		return out
	}
	v1, v3 := vals("t1"), vals("t3")
	for v := range v1 {
		if !v3[v] {
			t.Fatalf("t1.ua1 value %d missing from t3.ua1: domains must nest", v)
		}
	}
	if len(v1) != 500 || len(v3) != 1500 {
		t.Fatalf("distinct counts: t1=%d t3=%d", len(v1), len(v3))
	}
}

func TestIndexesConsistentWithHeap(t *testing.T) {
	db, err := Build(Config{Scale: 0.02, Tables: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Cat.Table("t2")
	idxCol := "a10"
	tree := tab.Indexes[idxCol]
	if tree == nil {
		t.Fatal("a10 index missing")
	}
	if tree.Len() != int(tab.Card) {
		t.Fatalf("index has %d entries, table has %d tuples", tree.Len(), tab.Card)
	}
	ci := tab.ColIndex(idxCol)
	// Every probe result must point at tuples with the probed value.
	for key := int64(0); key < 5; key++ {
		tids := tree.Probe(key)
		if len(tids) == 0 {
			t.Fatalf("no matches for key %d", key)
		}
		for _, tid := range tids {
			rec, err := tab.Heap.Get(tid)
			if err != nil {
				t.Fatal(err)
			}
			v, _ := tab.Codec.DecodeCol(rec, ci)
			if v.I != key {
				t.Fatalf("index points at tuple with %s=%d, probed %d", idxCol, v.I, key)
			}
		}
	}
}

func TestStatsMatchData(t *testing.T) {
	db, err := Build(Config{Scale: 0.02, Tables: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Cat.Table("t4")
	for _, d := range DupFactors {
		col, _ := tab.Column(d.Name)
		want := tab.Card / d.Dup
		if col.Distinct != want {
			t.Errorf("%s distinct stat = %d, want %d", d.Name, col.Distinct, want)
		}
		if col.Min != 0 || col.Max != want-1 {
			t.Errorf("%s bounds = [%d,%d], want [0,%d]", d.Name, col.Min, col.Max, want-1)
		}
	}
}

func TestStandardFuncsRegistered(t *testing.T) {
	db, err := Build(Config{Scale: 0.01, Tables: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"costly1", "costly10", "costly100", "costly1000", "costly10join", "costly100join"} {
		f, err := db.Cat.Func(name)
		if err != nil {
			t.Fatalf("%s not registered: %v", name, err)
		}
		if f.Cost <= 0 {
			t.Fatalf("%s has no cost", name)
		}
	}
	f, _ := db.Cat.Func("costly100")
	if f.Cost != 100 || f.Arity != 1 {
		t.Fatalf("costly100 metadata wrong: %+v", f)
	}
	j, _ := db.Cat.Func("costly100join")
	if j.Arity != 2 {
		t.Fatal("join variant must be binary")
	}
}

func TestDeterminism(t *testing.T) {
	sum := func() int64 {
		db, err := Build(Config{Scale: 0.02, Tables: []int{3}})
		if err != nil {
			t.Fatal(err)
		}
		tab, _ := db.Cat.Table("t3")
		var s int64
		it := tab.Heap.Scan()
		defer it.Close()
		for {
			rec, _, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			row, _ := tab.Codec.Decode(rec)
			for _, v := range row {
				if v.Kind == expr.TInt {
					s = s*31 + v.I
				}
			}
		}
		return s
	}
	if sum() != sum() {
		t.Fatal("generation is not deterministic")
	}
}

func TestComputeStats(t *testing.T) {
	db, err := Build(Config{Scale: 0.02, Tables: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Cat.Table("t1")
	// Wreck the stats, then recompute from data.
	for i := range tab.Columns {
		tab.Columns[i].Distinct = -1
	}
	if err := ComputeStats(db, "t1"); err != nil {
		t.Fatal(err)
	}
	col, _ := tab.Column("u10")
	if col.Distinct != tab.Card/10 {
		t.Fatalf("recomputed distinct = %d, want %d", col.Distinct, tab.Card/10)
	}
	if err := ComputeStats(db, "missing"); err == nil {
		t.Fatal("missing table should error")
	}
}

func TestLoadIONotCharged(t *testing.T) {
	db, err := Build(Config{Scale: 0.02, Tables: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Disk.Accountant().Stats().Total(); got != 0 {
		t.Fatalf("load I/O leaked into accountant: %d", got)
	}
}

func TestPermutationBijective(t *testing.T) {
	for _, n := range []int64{1, 2, 10, 97, 1000} {
		p := newPermutation(n, 42)
		seen := make(map[int64]bool, n)
		for i := int64(0); i < n; i++ {
			v := p.apply(i)
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("n=%d: permutation not bijective at %d (v=%d)", n, i, v)
			}
			seen[v] = true
		}
	}
}
