// Package datagen builds the reproduction of the paper's benchmark database:
// the Hong–Stonebraker schema with cardinalities scaled up by 10 (§2).
// Relations t1 … t10 hold N×10,000 tuples of exactly 100 bytes. Attribute
// names follow the paper's convention: a numeric suffix gives the
// approximate number of times each value repeats, and names starting with
// 'u' are unindexed while all others carry B-tree indices.
//
// All domains are 0-based, so values(tM.c) ⊆ values(tN.c) for M ≤ N; this
// containment produces the join-selectivity contrast between Query 1 (t3⋈t9,
// selectivity 1/3 over t9) and Query 2 (t10⋈t9, selectivity exactly 1 over
// t9) that the paper's Figures 3 and 4 hinge on.
package datagen

import (
	"fmt"

	"predplace/internal/btree"
	"predplace/internal/catalog"
	"predplace/internal/expr"
	"predplace/internal/storage"
)

// BaseCard is the unscaled cardinality unit: |tN| = N × BaseCard.
const BaseCard = 10000

// DupFactors lists the duplication factors of the generated attributes.
// Columns: aK indexed, uK unindexed; ua1 is the paper's "ua"/"ua1" unique
// unindexed attribute.
var DupFactors = []struct {
	Name    string
	Dup     int64
	Indexed bool
}{
	{"a1", 1, true},
	{"a10", 10, true},
	{"a100", 100, true},
	{"ua1", 1, false},
	{"u10", 10, false},
	{"u20", 20, false},
	{"u100", 100, false},
}

// FillerLen pads tuples to exactly 100 bytes:
// 7 int columns × 9 bytes + (1 + FillerLen) = 100.
const FillerLen = 36

// Config controls database generation.
type Config struct {
	// Scale multiplies every table's cardinality (1.0 = the paper's 110 MB
	// database; tests use much smaller scales — relative results are stable).
	Scale float64
	// Tables selects which tN to build (nil = all of t1 … t10).
	Tables []int
	// PoolPages sets the buffer pool size; 0 derives it from the data size
	// (≈1/8 of the data pages, min 64), echoing the paper's 32 MB host
	// against a 110 MB database.
	PoolPages int
	// PoolShards stripes the buffer pool into independently locked shards
	// for parallel execution (0 or 1 = the single classic LRU pool).
	PoolShards int
	// Seed perturbs the value permutations.
	Seed int64
}

// DB bundles the storage substrate and catalog of a generated database.
type DB struct {
	Disk *storage.Disk
	Pool *storage.BufferPool
	Cat  *catalog.Catalog
}

// Build generates the benchmark database.
func Build(cfg Config) (*DB, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	tables := cfg.Tables
	if tables == nil {
		tables = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	}

	// Estimate total pages to size the pool.
	var totalTuples int64
	for _, n := range tables {
		totalTuples += scaledCard(n, cfg.Scale)
	}
	perPage := int64((storage.PageSize - 8) / (100 + 4))
	pool := cfg.PoolPages
	if pool == 0 {
		pool = int(totalTuples/perPage/8) + 64
	}

	acct := &storage.Accountant{}
	disk := storage.NewDisk(acct)
	shards := cfg.PoolShards
	if shards < 1 {
		shards = 1
	}
	db := &DB{
		Disk: disk,
		Pool: storage.NewShardedBufferPool(disk, pool, shards),
		Cat:  catalog.New(),
	}
	if err := RegisterStandardFuncs(db.Cat); err != nil {
		return nil, err
	}
	for _, n := range tables {
		if n < 1 {
			return nil, fmt.Errorf("datagen: bad table number %d", n)
		}
		if err := buildTable(db, n, cfg); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func scaledCard(n int, scale float64) int64 {
	c := int64(float64(n) * float64(BaseCard) * scale)
	if c < 10 {
		c = 10
	}
	return c
}

// buildTable creates and loads tN.
func buildTable(db *DB, n int, cfg Config) error {
	card := scaledCard(n, cfg.Scale)
	name := fmt.Sprintf("t%d", n)

	cols := make([]catalog.Column, 0, len(DupFactors)+1)
	for _, d := range DupFactors {
		distinct := card / d.Dup
		if distinct < 1 {
			distinct = 1
		}
		cols = append(cols, catalog.Column{
			Name: d.Name, Type: expr.TInt,
			Distinct: distinct, Min: 0, Max: distinct - 1,
		})
	}
	cols = append(cols, catalog.Column{Name: "str", Type: expr.TString, FixedLen: FillerLen})

	codec, err := catalog.NewRowCodec(cols)
	if err != nil {
		return err
	}
	tab := &catalog.Table{
		Name:       name,
		Columns:    cols,
		Heap:       storage.NewHeapFile(db.Pool),
		Indexes:    make(map[string]*btree.Tree),
		Card:       card,
		TupleBytes: codec.Width(),
		Codec:      codec,
	}
	for _, d := range DupFactors {
		if d.Indexed {
			tab.Indexes[d.Name] = btree.New(db.Disk.Accountant())
		}
	}

	perms := make([]permutation, len(DupFactors))
	for i := range DupFactors {
		perms[i] = newPermutation(card, cfg.Seed+int64(n*31+i*7))
	}
	filler := make([]byte, FillerLen)
	for i := range filler {
		filler[i] = 'x'
	}
	fillerStr := string(filler)

	row := make(expr.Row, len(cols))
	for i := int64(0); i < card; i++ {
		for ci, d := range DupFactors {
			v := perms[ci].apply(i) / d.Dup
			row[ci] = expr.I(v)
		}
		row[len(cols)-1] = expr.S(fillerStr)
		rec, err := codec.Encode(row)
		if err != nil {
			return err
		}
		tid, err := tab.Heap.Insert(rec)
		if err != nil {
			return err
		}
		for ci, d := range DupFactors {
			if d.Indexed {
				tab.Indexes[d.Name].Insert(row[ci].I, tid)
			}
		}
	}
	if err := db.Cat.AddTable(tab); err != nil {
		return err
	}
	// Loading I/O is not part of any measured query.
	db.Disk.Accountant().Reset()
	db.Pool.ResetCounters()
	return nil
}

// permutation is a cheap deterministic bijection on [0, n): i ↦ (a·i+b) mod n
// with gcd(a, n) = 1. It spreads each duplication class evenly through the
// heap, which is all the benchmark queries require.
type permutation struct {
	a, b, n int64
}

func newPermutation(n, seed int64) permutation {
	if n <= 1 {
		return permutation{a: 1, b: 0, n: maxI64(n, 1)}
	}
	a := (n*618)/1000 | 1
	for gcd(a, n) != 1 {
		a += 2
	}
	b := (seed*2654435761 + 12345) % n
	if b < 0 {
		b += n
	}
	return permutation{a: a, b: b, n: n}
}

func (p permutation) apply(i int64) int64 { return (p.a*i%p.n + p.b) % p.n }

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// RegisterStandardFuncs registers the costlyN benchmark functions used by
// the paper's example queries: per-call cost N random I/Os, selectivity 0.5,
// deterministic, cacheable.
func RegisterStandardFuncs(cat *catalog.Catalog) error {
	for _, c := range []float64{1, 10, 100, 1000} {
		f := expr.NewCostly(fmt.Sprintf("costly%d", int(c)), 1, c, 0.5, int64ToSeed(int64(c)))
		if err := cat.RegisterFunc(f); err != nil {
			return err
		}
	}
	// Two-argument variants act as expensive join predicates (Query 5).
	for _, c := range []float64{10, 100} {
		f := expr.NewCostly(fmt.Sprintf("costly%djoin", int(c)), 2, c, 0.1, int64ToSeed(int64(c)+5000))
		if err := cat.RegisterFunc(f); err != nil {
			return err
		}
	}
	return nil
}

func int64ToSeed(x int64) uint64 { return uint64(x)*0x9e3779b9 + 0x1234567 }

// ComputeStats rescans a user-created table and fills per-column Distinct,
// Min and Max statistics (examples use this after ad-hoc loads).
func ComputeStats(db *DB, name string) error {
	tab, err := db.Cat.Table(name)
	if err != nil {
		return err
	}
	type colStat struct {
		distinct map[int64]struct{}
		values   []int64
		min, max int64
		seen     bool
	}
	stats := make([]colStat, len(tab.Columns))
	for i := range stats {
		stats[i].distinct = make(map[int64]struct{})
	}
	it := tab.Heap.Scan()
	defer it.Close()
	var card int64
	for {
		rec, _, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		card++
		row, err := tab.Codec.Decode(rec)
		if err != nil {
			return err
		}
		for i, v := range row {
			if v.Kind != expr.TInt {
				continue
			}
			st := &stats[i]
			st.distinct[v.I] = struct{}{}
			st.values = append(st.values, v.I)
			if !st.seen || v.I < st.min {
				st.min = v.I
			}
			if !st.seen || v.I > st.max {
				st.max = v.I
			}
			st.seen = true
		}
	}
	tab.Card = card
	for i := range tab.Columns {
		if tab.Columns[i].Type == expr.TInt && stats[i].seen {
			tab.Columns[i].Distinct = int64(len(stats[i].distinct))
			tab.Columns[i].Min = stats[i].min
			tab.Columns[i].Max = stats[i].max
			tab.Columns[i].Hist = catalog.BuildHistogram(stats[i].values, 32)
		}
	}
	return nil
}
