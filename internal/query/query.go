// Package query defines the logical representation of a conjunctive query —
// tables, predicates (cheap comparisons, expensive user-defined function
// predicates, join predicates) — and the statistics-driven analysis that
// annotates each predicate with its per-tuple cost and selectivity, the two
// inputs to the paper's rank metric.
package query

import (
	"fmt"
	"sort"
	"strings"

	"predplace/internal/catalog"
	"predplace/internal/expr"
)

// ColRef names a column of a query table.
type ColRef struct {
	Table string
	Col   string
}

// String renders the reference as table.col.
func (c ColRef) String() string { return c.Table + "." + c.Col }

// PredKind classifies a predicate.
type PredKind uint8

// Predicate kinds.
const (
	// KindSelCmp is a simple selection `col op constant` (zero cost).
	KindSelCmp PredKind = iota + 1
	// KindJoinCmp is a comparison between columns of two tables.
	KindJoinCmp
	// KindFunc is a (possibly expensive) boolean function over columns; when
	// the argument columns span two tables it acts as a join predicate.
	KindFunc
)

// Predicate is one conjunct of the WHERE clause.
type Predicate struct {
	// ID uniquely identifies the predicate within its query.
	ID int
	// Kind classifies the predicate.
	Kind PredKind

	// Op, Left and (Right|Value) describe comparison predicates.
	Op    expr.CmpOp
	Left  ColRef
	Right ColRef     // KindJoinCmp
	Value expr.Value // KindSelCmp

	// Func and Args describe function predicates.
	Func *expr.FuncDef
	Args []ColRef

	// Tables is the sorted, deduplicated set of tables referenced.
	Tables []string

	// CostPerTuple and Selectivity are filled by Analyze from catalog
	// statistics and function metadata. CostPerTuple is in random-I/O units.
	CostPerTuple float64
	Selectivity  float64
}

// IsJoin reports whether the predicate references more than one table.
func (p *Predicate) IsJoin() bool { return len(p.Tables) > 1 }

// IsExpensive reports whether the predicate has non-trivial per-tuple cost
// (the paper's threshold for "expensive" is anything costlier than a simple
// attribute comparison; we use any strictly positive declared cost).
func (p *Predicate) IsExpensive() bool { return p.CostPerTuple > 0 }

// References reports whether the predicate mentions table t.
func (p *Predicate) References(t string) bool {
	for _, x := range p.Tables {
		if x == t {
			return true
		}
	}
	return false
}

// CoveredBy reports whether every table the predicate references is in the
// given set.
func (p *Predicate) CoveredBy(set map[string]bool) bool {
	for _, x := range p.Tables {
		if !set[x] {
			return false
		}
	}
	return true
}

// String renders the predicate as SQL-ish text.
func (p *Predicate) String() string {
	switch p.Kind {
	case KindSelCmp:
		return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Value)
	case KindJoinCmp:
		return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
	case KindFunc:
		args := make([]string, len(p.Args))
		for i, a := range p.Args {
			args[i] = a.String()
		}
		return fmt.Sprintf("%s(%s)", p.Func.Name, strings.Join(args, ", "))
	}
	return "?"
}

// Rank returns the paper's ordering metric (selectivity − 1) / cost.
// Zero-cost predicates get -Inf (apply as early as possible) unless their
// selectivity is ≥ 1, in which case +Inf (never beneficial to apply early).
func (p *Predicate) Rank() float64 {
	return Rank(p.Selectivity, p.CostPerTuple)
}

// Rank computes (selectivity−1)/cost with the conventional limits at cost=0.
func Rank(sel, cost float64) float64 {
	if cost <= 0 {
		if sel >= 1 {
			return inf
		}
		return -inf
	}
	return (sel - 1) / cost
}

const inf = 1e308 // finite stand-in for ±infinity keeps arithmetic total

// Query is a conjunctive SELECT–FROM–WHERE query over named tables.
type Query struct {
	// Tables lists the FROM-clause tables (no duplicates).
	Tables []string
	// Preds are the WHERE-clause conjuncts.
	Preds []*Predicate
}

// NewQuery builds a query and assigns predicate IDs and table sets.
func NewQuery(tables []string, preds []*Predicate) (*Query, error) {
	seen := map[string]bool{}
	for _, t := range tables {
		if seen[t] {
			return nil, fmt.Errorf("query: duplicate table %q", t)
		}
		seen[t] = true
	}
	for i, p := range preds {
		p.ID = i
		p.Tables = referencedTables(p)
		for _, t := range p.Tables {
			if !seen[t] {
				return nil, fmt.Errorf("query: predicate %s references unknown table %q", p, t)
			}
		}
	}
	return &Query{Tables: append([]string(nil), tables...), Preds: preds}, nil
}

func referencedTables(p *Predicate) []string {
	set := map[string]bool{}
	switch p.Kind {
	case KindSelCmp:
		set[p.Left.Table] = true
	case KindJoinCmp:
		set[p.Left.Table] = true
		set[p.Right.Table] = true
	case KindFunc:
		for _, a := range p.Args {
			set[a.Table] = true
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// SelectionsOn returns the non-join predicates over table t.
func (q *Query) SelectionsOn(t string) []*Predicate {
	var out []*Predicate
	for _, p := range q.Preds {
		if !p.IsJoin() && p.References(t) {
			out = append(out, p)
		}
	}
	return out
}

// JoinPreds returns all predicates referencing more than one table.
func (q *Query) JoinPreds() []*Predicate {
	var out []*Predicate
	for _, p := range q.Preds {
		if p.IsJoin() {
			out = append(out, p)
		}
	}
	return out
}

// HasExpensivePreds reports whether any predicate carries non-trivial cost.
func (q *Query) HasExpensivePreds() bool {
	for _, p := range q.Preds {
		if p.IsExpensive() {
			return true
		}
	}
	return false
}

// Analyze fills CostPerTuple and Selectivity on every predicate using
// catalog statistics and function metadata (the paper's "system metadata").
func Analyze(cat *catalog.Catalog, q *Query) error {
	for _, p := range q.Preds {
		switch p.Kind {
		case KindSelCmp:
			sel, err := cmpSelectivity(cat, p.Left, p.Op, p.Value)
			if err != nil {
				return err
			}
			p.Selectivity, p.CostPerTuple = sel, 0
		case KindJoinCmp:
			sel, err := joinSelectivity(cat, p.Left, p.Right, p.Op)
			if err != nil {
				return err
			}
			p.Selectivity, p.CostPerTuple = sel, 0
		case KindFunc:
			if p.Func == nil {
				return fmt.Errorf("query: function predicate %d has no function", p.ID)
			}
			p.Selectivity, p.CostPerTuple = p.Func.Selectivity, p.Func.Cost
		}
	}
	return nil
}

// ApplyFeedback overlays promoted feedback observations onto an analyzed
// query: a comparison or join predicate whose rendered fingerprint has an
// applied observed selectivity uses it ahead of the histogram/default guess
// Analyze just filled in. Function predicates are deliberately skipped —
// their refreshed metadata lives on the re-registered FuncDef, which Analyze
// already read (feedback promotion bumps the catalog version, so every
// cached plan re-binds against the refreshed definition).
func ApplyFeedback(fb *catalog.FeedbackStore, q *Query) {
	if fb == nil {
		return
	}
	for _, p := range q.Preds {
		if p.Kind == KindFunc {
			continue
		}
		if sel, ok := fb.AppliedSel(p.String()); ok {
			p.Selectivity = sel
		}
	}
}

// cmpSelectivity estimates the fraction of tuples satisfying col op value,
// System R style: 1/distinct for equality, interpolation on [min,max] for
// ranges, with the classic fallback constants.
func cmpSelectivity(cat *catalog.Catalog, ref ColRef, op expr.CmpOp, v expr.Value) (float64, error) {
	tab, err := cat.Table(ref.Table)
	if err != nil {
		return 0, err
	}
	col, err := tab.Column(ref.Col)
	if err != nil {
		return 0, err
	}
	switch op {
	case expr.OpEQ:
		if col.Distinct > 0 {
			return 1 / float64(col.Distinct), nil
		}
		return 0.1, nil
	case expr.OpNE:
		if col.Distinct > 0 {
			return 1 - 1/float64(col.Distinct), nil
		}
		return 0.9, nil
	default:
		if v.Kind == expr.TInt && col.Hist != nil {
			// Equi-depth histogram: accurate under skew.
			switch op {
			case expr.OpLT:
				return col.Hist.SelLT(v.I), nil
			case expr.OpLE:
				return col.Hist.SelLE(v.I), nil
			case expr.OpGT:
				return col.Hist.SelGT(v.I), nil
			case expr.OpGE:
				return col.Hist.SelGE(v.I), nil
			default:
				// EQ/NE handled above; fall through to the constant.
			}
		}
		if v.Kind == expr.TInt && col.Max > col.Min {
			// System R uniform interpolation on [min, max].
			f := float64(v.I-col.Min) / float64(col.Max-col.Min)
			if f < 0 {
				f = 0
			} else if f > 1 {
				f = 1
			}
			switch op {
			case expr.OpLT, expr.OpLE:
				return f, nil
			case expr.OpGT, expr.OpGE:
				return 1 - f, nil
			default:
				// EQ/NE handled above; fall through to the constant.
			}
		}
		return 1.0 / 3.0, nil
	}
}

// joinSelectivity estimates the selectivity of L op R, System R style:
// 1/max(distinct(L), distinct(R)) for equality.
func joinSelectivity(cat *catalog.Catalog, l, r ColRef, op expr.CmpOp) (float64, error) {
	lt, err := cat.Table(l.Table)
	if err != nil {
		return 0, err
	}
	lc, err := lt.Column(l.Col)
	if err != nil {
		return 0, err
	}
	rt, err := cat.Table(r.Table)
	if err != nil {
		return 0, err
	}
	rc, err := rt.Column(r.Col)
	if err != nil {
		return 0, err
	}
	if op == expr.OpEQ {
		d := lc.Distinct
		if rc.Distinct > d {
			d = rc.Distinct
		}
		if d > 0 {
			return 1 / float64(d), nil
		}
		return 0.01, nil
	}
	return 1.0 / 3.0, nil
}
