package query

import (
	"math"
	"testing"

	"predplace/internal/catalog"
	"predplace/internal/expr"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	mk := func(name string, card int64) {
		tab := &catalog.Table{
			Name: name,
			Columns: []catalog.Column{
				{Name: "a1", Type: expr.TInt, Distinct: card, Min: 0, Max: card - 1},
				{Name: "u20", Type: expr.TInt, Distinct: card / 20, Min: 0, Max: card/20 - 1},
			},
			Card:       card,
			TupleBytes: 100,
		}
		if err := c.AddTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	mk("r", 1000)
	mk("s", 10000)
	if err := c.RegisterFunc(expr.NewCostly("costly100", 1, 100, 0.5, 1)); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewQueryAssignsTables(t *testing.T) {
	f := expr.NewCostly("f", 1, 10, 0.5, 2)
	q, err := NewQuery([]string{"r", "s"}, []*Predicate{
		{Kind: KindJoinCmp, Op: expr.OpEQ, Left: ColRef{"r", "a1"}, Right: ColRef{"s", "a1"}},
		{Kind: KindSelCmp, Op: expr.OpEQ, Left: ColRef{"s", "u20"}, Value: expr.I(3)},
		{Kind: KindFunc, Func: f, Args: []ColRef{{"r", "u20"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Preds[0].Tables; len(got) != 2 || got[0] != "r" || got[1] != "s" {
		t.Fatalf("join pred tables = %v", got)
	}
	if got := q.Preds[1].Tables; len(got) != 1 || got[0] != "s" {
		t.Fatalf("sel pred tables = %v", got)
	}
	if !q.Preds[0].IsJoin() || q.Preds[1].IsJoin() || q.Preds[2].IsJoin() {
		t.Fatal("IsJoin misclassified")
	}
	if q.Preds[0].ID != 0 || q.Preds[2].ID != 2 {
		t.Fatal("IDs not assigned")
	}
}

func TestNewQueryRejectsBadInput(t *testing.T) {
	if _, err := NewQuery([]string{"r", "r"}, nil); err == nil {
		t.Fatal("duplicate table should fail")
	}
	if _, err := NewQuery([]string{"r"}, []*Predicate{
		{Kind: KindSelCmp, Left: ColRef{"zzz", "a"}, Op: expr.OpEQ, Value: expr.I(1)},
	}); err == nil {
		t.Fatal("unknown table in predicate should fail")
	}
}

func TestAnalyzeSelectionEquality(t *testing.T) {
	c := testCatalog(t)
	q, _ := NewQuery([]string{"s"}, []*Predicate{
		{Kind: KindSelCmp, Op: expr.OpEQ, Left: ColRef{"s", "u20"}, Value: expr.I(3)},
	})
	if err := Analyze(c, q); err != nil {
		t.Fatal(err)
	}
	p := q.Preds[0]
	if math.Abs(p.Selectivity-1.0/500.0) > 1e-12 {
		t.Fatalf("equality selectivity = %v, want 1/500", p.Selectivity)
	}
	if p.CostPerTuple != 0 || p.IsExpensive() {
		t.Fatal("simple comparison must be free")
	}
}

func TestAnalyzeRangeSelectivity(t *testing.T) {
	c := testCatalog(t)
	q, _ := NewQuery([]string{"s"}, []*Predicate{
		{Kind: KindSelCmp, Op: expr.OpLT, Left: ColRef{"s", "a1"}, Value: expr.I(2500)},
		{Kind: KindSelCmp, Op: expr.OpGE, Left: ColRef{"s", "a1"}, Value: expr.I(2500)},
	})
	if err := Analyze(c, q); err != nil {
		t.Fatal(err)
	}
	if s := q.Preds[0].Selectivity; math.Abs(s-0.25) > 0.01 {
		t.Fatalf("LT selectivity = %v, want ~0.25", s)
	}
	if s := q.Preds[1].Selectivity; math.Abs(s-0.75) > 0.01 {
		t.Fatalf("GE selectivity = %v, want ~0.75", s)
	}
}

func TestAnalyzeJoinSelectivity(t *testing.T) {
	c := testCatalog(t)
	q, _ := NewQuery([]string{"r", "s"}, []*Predicate{
		{Kind: KindJoinCmp, Op: expr.OpEQ, Left: ColRef{"r", "a1"}, Right: ColRef{"s", "a1"}},
	})
	if err := Analyze(c, q); err != nil {
		t.Fatal(err)
	}
	// 1/max(1000, 10000)
	if s := q.Preds[0].Selectivity; math.Abs(s-1e-4) > 1e-12 {
		t.Fatalf("join selectivity = %v, want 1e-4", s)
	}
}

func TestAnalyzeFuncPredicate(t *testing.T) {
	c := testCatalog(t)
	f, _ := c.Func("costly100")
	q, _ := NewQuery([]string{"r"}, []*Predicate{
		{Kind: KindFunc, Func: f, Args: []ColRef{{"r", "u20"}}},
	})
	if err := Analyze(c, q); err != nil {
		t.Fatal(err)
	}
	p := q.Preds[0]
	if p.CostPerTuple != 100 || p.Selectivity != 0.5 {
		t.Fatalf("func pred: cost=%v sel=%v", p.CostPerTuple, p.Selectivity)
	}
	if !p.IsExpensive() {
		t.Fatal("costly100 must be expensive")
	}
}

func TestRankMetric(t *testing.T) {
	// rank = (sel-1)/cost: cheaper and more selective sorts earlier.
	if Rank(0.5, 10) >= Rank(0.5, 100) {
		t.Fatal("cheaper predicate must have lower (earlier) rank")
	}
	if Rank(0.1, 10) >= Rank(0.9, 10) {
		t.Fatal("more selective predicate must have lower rank")
	}
	if Rank(0.5, 0) >= 0 {
		t.Fatal("free filtering predicate must rank -inf")
	}
	if Rank(1.5, 0) <= 0 {
		t.Fatal("free expanding predicate must rank +inf")
	}
	// Selectivity > 1 (expanding) gives positive rank: apply late.
	if Rank(2, 10) <= 0 {
		t.Fatal("expanding predicate must have positive rank")
	}
}

func TestQueryHelpers(t *testing.T) {
	c := testCatalog(t)
	f, _ := c.Func("costly100")
	q, _ := NewQuery([]string{"r", "s"}, []*Predicate{
		{Kind: KindJoinCmp, Op: expr.OpEQ, Left: ColRef{"r", "a1"}, Right: ColRef{"s", "a1"}},
		{Kind: KindSelCmp, Op: expr.OpEQ, Left: ColRef{"s", "u20"}, Value: expr.I(3)},
		{Kind: KindFunc, Func: f, Args: []ColRef{{"r", "u20"}}},
	})
	Analyze(c, q)
	if got := q.SelectionsOn("s"); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("SelectionsOn(s) = %v", got)
	}
	if got := q.SelectionsOn("r"); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("SelectionsOn(r) = %v", got)
	}
	if got := q.JoinPreds(); len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("JoinPreds = %v", got)
	}
	if !q.HasExpensivePreds() {
		t.Fatal("query has costly100")
	}
	if !q.Preds[0].CoveredBy(map[string]bool{"r": true, "s": true}) {
		t.Fatal("CoveredBy full set")
	}
	if q.Preds[0].CoveredBy(map[string]bool{"r": true}) {
		t.Fatal("CoveredBy partial set should be false")
	}
}

func TestPredicateString(t *testing.T) {
	f := expr.NewCostly("costly10", 2, 10, 0.5, 1)
	p := &Predicate{Kind: KindFunc, Func: f, Args: []ColRef{{"r", "x"}, {"s", "y"}}}
	if got := p.String(); got != "costly10(r.x, s.y)" {
		t.Fatalf("String = %q", got)
	}
	p2 := &Predicate{Kind: KindJoinCmp, Op: expr.OpEQ, Left: ColRef{"r", "a"}, Right: ColRef{"s", "b"}}
	if got := p2.String(); got != "r.a = s.b" {
		t.Fatalf("String = %q", got)
	}
	p3 := &Predicate{Kind: KindSelCmp, Op: expr.OpLT, Left: ColRef{"r", "a"}, Value: expr.I(5)}
	if got := p3.String(); got != "r.a < 5" {
		t.Fatalf("String = %q", got)
	}
}

func TestAnalyzeNotEqualAndFallbacks(t *testing.T) {
	c := testCatalog(t)
	q, _ := NewQuery([]string{"s"}, []*Predicate{
		{Kind: KindSelCmp, Op: expr.OpNE, Left: ColRef{"s", "u20"}, Value: expr.I(3)},
	})
	if err := Analyze(c, q); err != nil {
		t.Fatal(err)
	}
	if s := q.Preds[0].Selectivity; math.Abs(s-(1-1.0/500)) > 1e-12 {
		t.Fatalf("NE selectivity = %v", s)
	}

	// Unknown-statistics fallbacks.
	c2 := catalog.New()
	c2.AddTable(&catalog.Table{Name: "x", Columns: []catalog.Column{
		{Name: "c", Type: expr.TInt}, // Distinct 0, Min == Max
	}, Card: 100})
	mk := func(op expr.CmpOp) float64 {
		q, _ := NewQuery([]string{"x"}, []*Predicate{
			{Kind: KindSelCmp, Op: op, Left: ColRef{"x", "c"}, Value: expr.I(1)},
		})
		if err := Analyze(c2, q); err != nil {
			t.Fatal(err)
		}
		return q.Preds[0].Selectivity
	}
	if mk(expr.OpEQ) != 0.1 {
		t.Fatalf("EQ fallback = %v", mk(expr.OpEQ))
	}
	if mk(expr.OpNE) != 0.9 {
		t.Fatalf("NE fallback = %v", mk(expr.OpNE))
	}
	if mk(expr.OpLT) != 1.0/3.0 {
		t.Fatalf("range fallback = %v", mk(expr.OpLT))
	}
}

func TestAnalyzeJoinFallbacks(t *testing.T) {
	c2 := catalog.New()
	for _, n := range []string{"x", "y"} {
		c2.AddTable(&catalog.Table{Name: n, Columns: []catalog.Column{
			{Name: "c", Type: expr.TInt},
		}, Card: 100})
	}
	q, _ := NewQuery([]string{"x", "y"}, []*Predicate{
		{Kind: KindJoinCmp, Op: expr.OpEQ, Left: ColRef{"x", "c"}, Right: ColRef{"y", "c"}},
		{Kind: KindJoinCmp, Op: expr.OpLT, Left: ColRef{"x", "c"}, Right: ColRef{"y", "c"}},
	})
	if err := Analyze(c2, q); err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Selectivity != 0.01 {
		t.Fatalf("equijoin fallback = %v", q.Preds[0].Selectivity)
	}
	if q.Preds[1].Selectivity != 1.0/3.0 {
		t.Fatalf("inequality join = %v", q.Preds[1].Selectivity)
	}
}

func TestPredicateRankMethod(t *testing.T) {
	p := &Predicate{Selectivity: 0.5, CostPerTuple: 10}
	if p.Rank() != Rank(0.5, 10) {
		t.Fatal("Predicate.Rank disagrees with Rank")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	c := testCatalog(t)
	q := &Query{Tables: []string{"r"}, Preds: []*Predicate{
		{Kind: KindSelCmp, Op: expr.OpEQ, Left: ColRef{"zzz", "a"}, Value: expr.I(1), Tables: []string{"zzz"}},
	}}
	if err := Analyze(c, q); err == nil {
		t.Fatal("missing table should error")
	}
	q2 := &Query{Tables: []string{"r"}, Preds: []*Predicate{
		{Kind: KindFunc, Tables: []string{"r"}}, // nil Func
	}}
	if err := Analyze(c, q2); err == nil {
		t.Fatal("nil function should error")
	}
	q3 := &Query{Tables: []string{"r"}, Preds: []*Predicate{
		{Kind: KindSelCmp, Op: expr.OpEQ, Left: ColRef{"r", "nocol"}, Value: expr.I(1), Tables: []string{"r"}},
	}}
	if err := Analyze(c, q3); err == nil {
		t.Fatal("missing column should error")
	}
}

func TestHistogramSelectivityUsed(t *testing.T) {
	c := testCatalog(t)
	tab, _ := c.Table("s")
	// Install a skewed histogram on u20 and check the estimate follows it.
	values := make([]int64, 0, 1000)
	for i := 0; i < 900; i++ {
		values = append(values, int64(i%5))
	}
	for i := 0; i < 100; i++ {
		values = append(values, int64(5+i*4))
	}
	ci := tab.ColIndex("u20")
	tab.Columns[ci].Hist = catalog.BuildHistogram(values, 16)
	tab.Columns[ci].Min, tab.Columns[ci].Max = 0, 401

	q, _ := NewQuery([]string{"s"}, []*Predicate{
		{Kind: KindSelCmp, Op: expr.OpLT, Left: ColRef{"s", "u20"}, Value: expr.I(5)},
	})
	if err := Analyze(c, q); err != nil {
		t.Fatal(err)
	}
	if s := q.Preds[0].Selectivity; math.Abs(s-0.9) > 0.05 {
		t.Fatalf("histogram not used: selectivity = %v, want ~0.9", s)
	}
	tab.Columns[ci].Hist = nil
}
