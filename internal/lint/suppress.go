package lint

import "fmt"

// SuppressAuditAnalyzer keeps `//pplint:ignore` directives honest. It has no
// Run of its own: RunAnalyzers special-cases it, because the audit needs to
// know which findings the package's directives actually silenced. It reports:
//
//   - a directive with no reason text — suppressions must carry a
//     justification a reviewer can evaluate;
//   - a directive naming an analyzer that does not exist (usually a typo
//     that silently suppresses nothing);
//   - a stale directive: the named analyzer ran over the package and the
//     directive silenced no finding, so the code it excused has been fixed
//     (or moved) and the directive now only hides future regressions.
//
// Wildcard (`*`) directives are exempt from staleness — they express intent
// about the line, not about one analyzer's current findings — but still
// require a reason. Audit diagnostics are themselves unsuppressible.
var SuppressAuditAnalyzer = &Analyzer{
	Name: "suppress",
	Doc:  "pplint:ignore directives must carry reasons and match live findings",
	Run:  func(*Pass) error { return nil },
}

// auditDirectives inspects one package's parsed directives after every other
// analyzer has run; ran names the analyzers that executed.
func auditDirectives(ig *ignores, ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	report := func(d *ignoreDirective, format string, args ...interface{}) {
		out = append(out, Diagnostic{
			Pos:      d.pos,
			Analyzer: SuppressAuditAnalyzer.Name,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, d := range ig.directives {
		if d.reason == "" {
			report(d, "pplint:ignore without a reason; state why the finding is safe to suppress")
		}
		for _, name := range d.names {
			if name == "*" {
				continue
			}
			if _, known := ByName(name); !known {
				report(d, "pplint:ignore names unknown analyzer %q; it suppresses nothing", name)
				continue
			}
			if ran[name] && !d.fired[name] {
				report(d, "stale pplint:ignore: %s no longer reports a finding here; delete the directive", name)
			}
		}
	}
	return out
}
