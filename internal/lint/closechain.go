package lint

import (
	"go/ast"
	"go/types"
)

// CloseChainAnalyzer enforces the executor's resource contract: any struct
// type implementing the Volcano iterator shape (Open() error, Next(...), and
// Close() error) whose fields store child iterators must call Close on every
// such field somewhere inside its own Close method. A skipped child leaks
// heap-file cursors and — worse for the paper's methodology — lets a child's
// buffered I/O accounting escape the charged-cost measurement.
//
// Child-iterator fields are fields whose type (interface or concrete,
// including slices of either) itself exposes the iterator shape.
var CloseChainAnalyzer = &Analyzer{
	Name: "closechain",
	Doc:  "flags iterator types whose Close skips a stored child iterator's Close",
	Run:  runCloseChain,
}

func runCloseChain(pass *Pass) error {
	pkg := pass.Pkg
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok || !isIteratorShape(named) {
			continue
		}
		// Collect child-iterator fields.
		var children []*types.Var
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			ft := f.Type()
			if sl, ok := ft.Underlying().(*types.Slice); ok {
				ft = sl.Elem()
			}
			if isIteratorShape(ft) {
				children = append(children, f)
			}
		}
		if len(children) == 0 {
			continue
		}
		closeDecl := methodDecl(pkg, name, "Close")
		if closeDecl == nil {
			continue // Close inherited through embedding; out of scope
		}
		closed := closedFields(pkg, closeDecl)
		for _, f := range children {
			if !closed[f] {
				pass.Reportf(closeDecl.Name.Pos(),
					"%s.Close does not close child iterator field %q; every stored child iterator must be closed", name, f.Name())
			}
		}
	}
	return nil
}

// isIteratorShape reports whether t's method set (through a pointer, for
// concrete types) carries the Volcano contract: Open() error, a Next method,
// and Close() error.
func isIteratorShape(t types.Type) bool {
	ms := types.NewMethodSet(t)
	if _, isIface := t.Underlying().(*types.Interface); !isIface {
		if _, isPtr := t.(*types.Pointer); !isPtr {
			ms = types.NewMethodSet(types.NewPointer(t))
		}
	}
	var open, next, close_ bool
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok {
			continue
		}
		sig := fn.Type().(*types.Signature)
		switch fn.Name() {
		case "Open":
			open = sig.Params().Len() == 0 && sig.Results().Len() == 1 && isErrorType(sig.Results().At(0).Type())
		case "Next":
			next = true
		case "Close":
			close_ = sig.Params().Len() == 0 && sig.Results().Len() == 1 && isErrorType(sig.Results().At(0).Type())
		}
	}
	return open && next && close_
}

// methodDecl finds the declaration of recvType's method with the given name.
func methodDecl(pkg *Package, recvType, method string) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != method || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			t := fd.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if id, ok := t.(*ast.Ident); ok && id.Name == recvType {
				return fd
			}
		}
	}
	return nil
}

// closedFields returns the set of struct fields on which a `.Close()` call
// appears anywhere inside the method body (directly, through intermediate
// selectors, or on elements of a ranged-over slice field).
func closedFields(pkg *Package, fd *ast.FuncDecl) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	if fd.Body == nil {
		return out
	}
	// rangeVars maps loop variables to the slice field they iterate.
	rangeVars := map[types.Object]*types.Var{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			if fv := fieldOf(pkg, rs.X); fv != nil {
				if id, ok := rs.Value.(*ast.Ident); ok {
					if obj := pkg.Info.Defs[id]; obj != nil {
						rangeVars[obj] = fv
					}
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		if fv := fieldOf(pkg, sel.X); fv != nil {
			out[fv] = true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil {
				if fv, ok := rangeVars[obj]; ok {
					out[fv] = true
				}
			}
		}
		return true
	})
	return out
}

// fieldOf resolves an expression like `n.inner` (possibly parenthesized) to
// the struct field it selects, or nil.
func fieldOf(pkg *Package, e ast.Expr) *types.Var {
	e = ast.Unparen(e)
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	if v, ok := s.Obj().(*types.Var); ok {
		return v
	}
	return nil
}
