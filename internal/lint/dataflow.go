package lint

import (
	"go/ast"
	"go/token"
)

// This file is the generic forward-dataflow engine the CFG analyzers share:
// a worklist solver parameterized on a lattice (join + equality), a block
// transfer function, and an optional edge refinement that sharpens facts
// along conditional edges (`if err != nil` branches). Must-style analyses
// express themselves through an intersecting Join, may-style ones through a
// union Join; the solver itself is agnostic.

// Lattice defines the fact domain of one analysis.
type Lattice[F any] interface {
	// Entry is the fact at function entry.
	Entry() F
	// Join combines facts flowing into a block from two predecessors.
	Join(a, b F) F
	// Equal reports whether two facts are indistinguishable (fixpoint test).
	Equal(a, b F) bool
}

// FlowResult holds the solved per-block facts.
type FlowResult[F any] struct {
	// In maps each reached block to the fact holding on entry to it.
	In map[*Block]F
	// Out maps each reached block to the fact after its transfer.
	Out map[*Block]F
	// Converged is false when the iteration cap was hit before a fixpoint;
	// analyzers should then report nothing for the function (best effort
	// beats flapping false positives).
	Converged bool
}

// Reached reports whether the solver ever saw the block (blocks after a
// return, or a select's unreachable join, are never reached).
func (r *FlowResult[F]) Reached(b *Block) bool {
	_, ok := r.In[b]
	return ok
}

// ForwardSolve runs a forward worklist iteration to fixpoint. transfer maps
// a block's in-fact to its out-fact; edgeRefine (optional, may be nil)
// sharpens the out-fact along a specific edge before it joins into the
// successor. Only blocks reachable from Entry are visited.
func ForwardSolve[F any](g *CFG, lat Lattice[F], transfer func(*Block, F) F, edgeRefine func(*Edge, F) F) *FlowResult[F] {
	res := &FlowResult[F]{
		In:        map[*Block]F{},
		Out:       map[*Block]F{},
		Converged: true,
	}
	res.In[g.Entry] = lat.Entry()

	queue := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	// The cap is far above what these small per-function lattices need; it
	// exists so a non-monotone transfer can never hang the linter.
	budget := 64 + 32*len(g.Blocks)*(len(g.Blocks)+1)
	for len(queue) > 0 {
		if budget--; budget < 0 {
			res.Converged = false
			break
		}
		b := queue[0]
		queue = queue[1:]
		queued[b] = false

		out := transfer(b, res.In[b])
		res.Out[b] = out
		for _, e := range b.Succs {
			v := out
			if edgeRefine != nil {
				v = edgeRefine(e, v)
			}
			prev, seen := res.In[e.To]
			next := v
			if seen {
				next = lat.Join(prev, v)
				if lat.Equal(prev, next) {
					continue
				}
			}
			res.In[e.To] = next
			if !queued[e.To] {
				queued[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return res
}

// condIdent decomposes a conditional edge into (ident, nilWhenTaken):
// for edges guarded by `x != nil` / `x == nil` over a plain identifier it
// returns the identifier and whether x is nil on the path this edge takes.
// ok is false for any other condition shape. This is the decomposition the
// resource analyzers use to drop acquisitions on their failure branches.
func condIdent(e *Edge) (id *ast.Ident, isNil bool, ok bool) {
	if e.Cond == nil {
		return nil, false, false
	}
	bin, okc := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !okc {
		return nil, false, false
	}
	var x *ast.Ident
	if i, oki := ast.Unparen(bin.X).(*ast.Ident); oki && isNilIdent(bin.Y) {
		x = i
	} else if i, oki := ast.Unparen(bin.Y).(*ast.Ident); oki && isNilIdent(bin.X) {
		x = i
	} else {
		return nil, false, false
	}
	switch bin.Op {
	case token.NEQ:
		// Taken-when-true means x != nil holds, i.e. x is non-nil on the
		// path this edge takes.
		return x, !e.When, true
	case token.EQL:
		return x, e.When, true
	default:
		return nil, false, false
	}
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
