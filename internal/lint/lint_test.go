package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// fixturePkg type-checks one in-memory source file as a package with the
// given import path (the path matters: floatcmp and nodecontract are
// path-scoped). Fixtures are import-free so no importer is needed.
func fixturePkg(t *testing.T, path, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	fname := strings.ReplaceAll(strings.TrimPrefix(path, "example.com/"), "/", "_") + ".go"
	f, err := parser.ParseFile(fset, fname, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{}
	tpkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	return &Package{Path: path, Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

// runOn runs one analyzer over one fixture package.
func runOn(t *testing.T, analyzer string, pkg *Package) []Diagnostic {
	t.Helper()
	a, ok := ByName(analyzer)
	if !ok {
		t.Fatalf("no analyzer %q", analyzer)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	return diags
}

func TestAnalyzersFixtures(t *testing.T) {
	cases := []struct {
		name     string
		analyzer string
		path     string
		src      string
		// want is the number of expected diagnostics; wantSub must appear in
		// each diagnostic message.
		want    int
		wantSub string
	}{
		{
			name:     "floatcmp flags == and switch on float",
			analyzer: "floatcmp",
			path:     "example.com/internal/cost",
			src: `package cost
func eq(a, b float64) bool { return a == b }
func ne(a, b float64) bool { return a != b }
func sw(x float64) int {
	switch x {
	case 1:
		return 1
	}
	return 0
}
`,
			want:    3,
			wantSub: "cost.ApproxEq",
		},
		{
			name:     "floatcmp exempts the epsilon helper and non-floats",
			analyzer: "floatcmp",
			path:     "example.com/internal/cost",
			src: `package cost
func ApproxEq(a, b float64) bool { return a == b }
func ints(a, b int) bool { return a == b }
func lt(a, b float64) bool { return a < b }
`,
			want: 0,
		},
		{
			name:     "floatcmp ignores packages outside cost/optimizer",
			analyzer: "floatcmp",
			path:     "example.com/internal/storage",
			src: `package storage
func eq(a, b float64) bool { return a == b }
`,
			want: 0,
		},
		{
			name:     "closechain flags a skipped child iterator",
			analyzer: "closechain",
			path:     "example.com/internal/exec",
			src: `package exec
type child struct{}

func (c *child) Open() error                { return nil }
func (c *child) Next() (int, bool, error)   { return 0, false, nil }
func (c *child) Close() error               { return nil }

type badJoin struct {
	left  *child
	right *child
	count int
}

func (j *badJoin) Open() error              { return nil }
func (j *badJoin) Next() (int, bool, error) { return 0, false, nil }
func (j *badJoin) Close() error             { return j.left.Close() }
`,
			want:    1,
			wantSub: `child iterator field "right"`,
		},
		{
			name:     "closechain accepts closing every child including ranged slices",
			analyzer: "closechain",
			path:     "example.com/internal/exec",
			src: `package exec
type child struct{}

func (c *child) Open() error                { return nil }
func (c *child) Next() (int, bool, error)   { return 0, false, nil }
func (c *child) Close() error               { return nil }

type goodJoin struct {
	left *child
	kids []*child
}

func (j *goodJoin) Open() error              { return nil }
func (j *goodJoin) Next() (int, bool, error) { return 0, false, nil }
func (j *goodJoin) Close() error {
	err := j.left.Close()
	for _, k := range j.kids {
		if cerr := k.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
`,
			want: 0,
		},
		{
			name:     "errdrop flags blank assigns and bare calls",
			analyzer: "errdrop",
			path:     "example.com/internal/exec",
			src: `package exec
func fallible() error       { return nil }
func pair() (int, error)    { return 0, nil }
func bad() {
	_ = fallible()
	fallible()
	_, _ = pair()
}
`,
			want:    3,
			wantSub: "error",
		},
		{
			name:     "errdrop accepts handled and deferred errors",
			analyzer: "errdrop",
			path:     "example.com/internal/exec",
			src: `package exec
func fallible() error { return nil }
func good() error {
	defer fallible()
	if err := fallible(); err != nil {
		return err
	}
	n, err := pair()
	_ = n
	return err
}
func pair() (int, error) { return 0, nil }
`,
			want: 0,
		},
		{
			name:     "errdrop honours pplint:ignore",
			analyzer: "errdrop",
			path:     "example.com/internal/exec",
			src: `package exec
func fallible() error { return nil }
func deliberate() {
	//pplint:ignore errdrop fixture says this drop is fine
	_ = fallible()
}
`,
			want: 0,
		},
		{
			name:     "exhaustiveswitch flags a missing constant",
			analyzer: "exhaustiveswitch",
			path:     "example.com/internal/plan",
			src: `package plan
type Kind uint8

const (
	KindA Kind = iota + 1
	KindB
	KindC
)

func dispatch(k Kind) string {
	switch k {
	case KindA:
		return "a"
	case KindB:
		return "b"
	}
	return "?"
}
`,
			want:    1,
			wantSub: "missing KindC",
		},
		{
			name:     "exhaustiveswitch accepts full coverage or a default",
			analyzer: "exhaustiveswitch",
			path:     "example.com/internal/plan",
			src: `package plan
type Kind uint8

const (
	KindA Kind = iota + 1
	KindB
)

func full(k Kind) string {
	switch k {
	case KindA:
		return "a"
	case KindB:
		return "b"
	}
	return "?"
}

func defaulted(k Kind) string {
	switch k {
	case KindA:
		return "a"
	default:
		return "?"
	}
}
`,
			want: 0,
		},
		{
			name:     "nodecontract flags undocumented nodes and Cols aliasing",
			analyzer: "nodecontract",
			path:     "example.com/internal/plan",
			src: `package plan

// Ref names a column.
type Ref struct{ T, C string }

type BadNode struct {
	kid  *BadNode
	cols []Ref
}

func (n *BadNode) Cols() []Ref {
	return append(n.kid.Cols(), n.cols...)
}
func (n *BadNode) Children() []*BadNode { return nil }
func (n *BadNode) Card() float64        { return 0 }
func (n *BadNode) Cost() float64        { return 0 }
func (n *BadNode) Describe() string     { return "" }
`,
			want:    2, // missing doc + aliasing append
			wantSub: "",
		},
		{
			name:     "nodecontract accepts documented nodes with fresh slices",
			analyzer: "nodecontract",
			path:     "example.com/internal/plan",
			src: `package plan

// Ref names a column.
type Ref struct{ T, C string }

// GoodNode is a documented operator that copies its column list.
type GoodNode struct {
	kid  *GoodNode
	cols []Ref
}

func (n *GoodNode) Cols() []Ref {
	out := make([]Ref, 0, len(n.cols))
	out = append(out, n.cols...)
	return out
}
func (n *GoodNode) Children() []*GoodNode { return nil }
func (n *GoodNode) Card() float64         { return 0 }
func (n *GoodNode) Cost() float64         { return 0 }
func (n *GoodNode) Describe() string      { return "good" }
`,
			want: 0,
		},
		{
			name:     "batchcontract flags dst retention, append growth, and n-with-err returns",
			analyzer: "batchcontract",
			path:     "example.com/internal/exec",
			src: `package exec

type badIter struct {
	saved []int
	err   error
}

func (b *badIter) NextBatch(dst []int) (int, error) {
	b.saved = dst[:2]
	dst = append(dst, 7)
	n := len(dst)
	if b.err != nil {
		return n, b.err
	}
	return n, nil
}
`,
			want:    3, // field retention + append(dst, ...) + return n, err
			wantSub: "NextBatch",
		},
		{
			name:     "batchcontract flags call sites that blank the error",
			analyzer: "batchcontract",
			path:     "example.com/internal/exec",
			src: `package exec

type src struct{}

func (s *src) NextBatch(dst []int) (int, error) { return 0, nil }

func drain(s *src, buf []int) int {
	n, _ := s.NextBatch(buf)
	return n
}
`,
			want:    1,
			wantSub: "discards a NextBatch error",
		},
		{
			name:     "batchcontract accepts a compliant implementation",
			analyzer: "batchcontract",
			path:     "example.com/internal/exec",
			src: `package exec

type okIter struct {
	in  *okIter
	buf []int
}

func (o *okIter) NextBatch(dst []int) (int, error) {
	n, err := o.in.NextBatch(dst)
	if err != nil {
		return 0, err
	}
	o.buf = o.buf[:0]
	for i := 0; i < n; i++ {
		dst[i] = dst[i] + 1
	}
	return n, nil
}
`,
			want: 0,
		},
		{
			name:     "batchcontract ignores packages outside exec",
			analyzer: "batchcontract",
			path:     "example.com/internal/storage",
			src: `package storage

type iter struct{ saved []int }

func (i *iter) NextBatch(dst []int) (int, error) {
	i.saved = dst
	return len(dst), nil
}
`,
			want: 0,
		},
		{
			name:     "ctxabort flags charging loop without abort check",
			analyzer: "ctxabort",
			path:     "example.com/internal/exec",
			src: `package exec

type env struct{}

func (e *env) ChargeSpillTuple()   {}
func (e *env) checkAbort() error   { return nil }

func build(e *env, rows []int) {
	for range rows {
		e.ChargeSpillTuple()
	}
}
`,
			want:    1,
			wantSub: "checkAbort",
		},
		{
			name:     "ctxabort accepts loop with abort on its cadence",
			analyzer: "ctxabort",
			path:     "example.com/internal/exec",
			src: `package exec

type env struct{}

func (e *env) ChargeSpillTuple()   {}
func (e *env) checkAbort() error   { return nil }

func build(e *env, rows []int) error {
	count := 0
	for range rows {
		e.ChargeSpillTuple()
		count++
		if count%1024 == 0 {
			if err := e.checkAbort(); err != nil {
				return err
			}
		}
	}
	return nil
}
`,
			want: 0,
		},
		{
			name:     "ctxabort accepts abort in a nested loop node",
			analyzer: "ctxabort",
			path:     "example.com/internal/exec",
			src: `package exec

type env struct{}

func (e *env) ChargeSynthetic(f float64) {}
func (e *env) checkAbort() error         { return nil }

func drain(e *env, batches [][]int) error {
	for _, b := range batches {
		for range b {
			e.ChargeSynthetic(1)
			if err := e.checkAbort(); err != nil {
				return err
			}
		}
	}
	return nil
}
`,
			want: 0,
		},
		{
			name:     "ctxabort ignores charge-free loops",
			analyzer: "ctxabort",
			path:     "example.com/internal/exec",
			src: `package exec

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
`,
			want: 0,
		},
		{
			name:     "ctxabort ignores packages outside exec",
			analyzer: "ctxabort",
			path:     "example.com/internal/storage",
			src: `package storage

type env struct{}

func (e *env) ChargeSpillTuple() {}

func build(e *env, rows []int) {
	for range rows {
		e.ChargeSpillTuple()
	}
}
`,
			want: 0,
		},
		{
			name:     "profileclean flags per-call allocation in Next",
			analyzer: "profileclean",
			path:     "example.com/internal/exec",
			src: `package exec

type badIter struct{ vals []int }

func (b *badIter) Next() ([]int, bool, error) {
	row := make([]int, 4)
	return row, true, nil
}
`,
			want:    1,
			wantSub: "allocation-free",
		},
		{
			name:     "profileclean flags slice literal in NextBatch",
			analyzer: "profileclean",
			path:     "example.com/internal/exec",
			src: `package exec

type badIter struct{}

func (b *badIter) NextBatch(dst []int) (int, error) {
	tmp := []int{1, 2, 3}
	return len(tmp), nil
}
`,
			want:    1,
			wantSub: "grow-once",
		},
		{
			name:     "profileclean accepts the grow-once idiom and helpers",
			analyzer: "profileclean",
			path:     "example.com/internal/exec",
			src: `package exec

type okIter struct {
	buf  []int
	keep []bool
}

func (o *okIter) NextBatch(dst []int) (int, error) {
	if cap(o.buf) < len(dst) {
		o.buf = make([]int, len(dst))
		o.keep = make([]bool, len(dst))
	}
	if o.keep == nil {
		o.keep = make([]bool, len(dst))
	}
	return 0, nil
}

func (o *okIter) scratch(n int) []int { return make([]int, n) }

func alloc(n int) []int { return make([]int, n) }
`,
			want: 0,
		},
		{
			name:     "profileclean ignores non-iterator methods and other packages",
			analyzer: "profileclean",
			path:     "example.com/internal/storage",
			src: `package storage

type it struct{}

func (i *it) Next() []int { return make([]int, 8) }
`,
			want: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := fixturePkg(t, tc.path, tc.src)
			diags := runOn(t, tc.analyzer, pkg)
			if len(diags) != tc.want {
				t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), tc.want, renderDiags(diags))
			}
			for _, d := range diags {
				if tc.wantSub != "" && !strings.Contains(d.Message, tc.wantSub) {
					t.Errorf("diagnostic %q does not mention %q", d.Message, tc.wantSub)
				}
				if d.Pos.Line == 0 {
					t.Errorf("diagnostic %q has no line number", d)
				}
			}
		})
	}
}

func renderDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

func TestSuiteRegistry(t *testing.T) {
	all := Analyzers()
	if len(all) != 13 {
		t.Fatalf("suite has %d analyzers, want 13", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incompletely declared", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if got, ok := ByName(a.Name); !ok || got != a {
			t.Errorf("ByName(%q) failed to round-trip", a.Name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName should reject unknown names")
	}
}

// TestLoadRepoAndSelfLint is the dogfood test: the repository's own source
// must load, type-check, and come out clean under the full suite (real
// violations are fixed or carry a written pplint:ignore justification).
func TestLoadRepoAndSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped in -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadRepo(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages", len(pkgs))
	}
	diags, err := RunAnalyzers(pkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) > 0 {
		t.Errorf("repository is not pplint-clean:\n%s", renderDiags(diags))
	}
}
