package lint

import (
	"go/ast"
)

// PinBalanceAnalyzer is the static twin of the runtime PinnedFrames leak
// audit (DESIGN.md §13): every page pinned by BufferPool.Fetch / Pin /
// NewPage must be unpinned on every path out of the pinning function, unless
// the pin escapes (stored in a field, returned, or captured by a closure), in
// which case the release obligation transfers and the closechain analyzer
// plus the runtime audit take over. It runs the shared resource-balance
// dataflow (balance.go) over each function's CFG.
var PinBalanceAnalyzer = &Analyzer{
	Name: "pinbalance",
	Doc:  "every BufferPool pin must be unpinned (or escape) on every path",
	Run:  runPinBalance,
}

func runPinBalance(pass *Pass) error {
	return runBalance(pass, pinBalanceRules())
}

// pinBalanceRules recognizes the buffer-pool pin/unpin protocol:
//
//	pg, err := pool.Fetch(f, p)   // pins (f, p) iff err == nil
//	pid, pg, err := pool.NewPage(f) // pins (f, pid) iff err == nil
//	pool.Unpin(f, p, dirty)       // releases (f, p)
//
// Fetch/Pin sites are matched to Unpin by the printed (file, page) argument
// pair; NewPage sites have no static page id, so Unpin matches through the
// bound pid variable (or the engine's single-held fallback).
func pinBalanceRules() *balanceRules {
	return &balanceRules{
		noun:        "pinned page",
		releaseHint: "Unpin",
		classifyAcquire: func(pkg *Package, call *ast.CallExpr) (acquireSpec, bool) {
			method, recv, _ := methodCallInfo(pkg, call)
			if recv != "BufferPool" {
				return acquireSpec{}, false
			}
			switch method {
			case "Fetch", "Pin":
				return acquireSpec{
					callee: "BufferPool." + method,
					key:    argKey(call.Args, 2),
					valIdx: 0,
					pidIdx: -1,
					errIdx: 1,
				}, true
			case "NewPage":
				return acquireSpec{
					callee: "BufferPool.NewPage",
					pidIdx: 0,
					valIdx: 1,
					errIdx: 2,
				}, true
			default:
				return acquireSpec{}, false
			}
		},
		classifyRelease: func(pkg *Package, call *ast.CallExpr) (releaseSpec, bool) {
			method, recv, _ := methodCallInfo(pkg, call)
			if recv != "BufferPool" || method != "Unpin" {
				return releaseSpec{}, false
			}
			spec := releaseSpec{key: argKey(call.Args, 2)}
			if len(call.Args) >= 2 {
				spec.idArg = call.Args[1]
			}
			return spec, true
		},
	}
}
