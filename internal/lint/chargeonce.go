package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ChargeOnceAnalyzer enforces the accounting contract of DESIGN.md §12/§14:
// each physical transfer is charged to the Accountant exactly once, and in
// fault-injected code the injector check dominates the charge — a failed I/O
// is never charged (PR 5's "failed I/O never charged" invariant, checked
// statically instead of only by the fault-matrix tests).
//
// The dataflow runs over the CFG with a powerset lattice. Each element is a
// (phase, charged-site-set) pair describing one class of paths reaching a
// block:
//
//	phase ∈ {unchecked, checked, poisoned}
//
// unchecked: the fault injector has not been consulted yet; checked: it was
// consulted and passed (including the vacuous `fi == nil` branch — no
// injector means nothing can fail); poisoned: a fault-check error was taken,
// so the I/O did not happen. Edge refinement transitions phases along
// `fi == nil` and `err != nil` edges.
//
// At each Record* site the analyzer reports: an unchecked element in a
// function that consults the injector (charge not dominated by the check), a
// poisoned element (failed I/O reaching a charge), and a second charge with
// the same (method, arguments) identity on one path (double charge). At the
// function exit, a checked element with no charges means a successful I/O
// went uncharged. Functions that never consult an injector (e.g. the B-tree
// leaf probe's unconditional RecordRandRead) carry no dominance obligation.
var ChargeOnceAnalyzer = &Analyzer{
	Name: "chargeonce",
	Doc:  "every storage charge is fault-checked first and charged exactly once",
	Run:  runChargeOnce,
}

// chargePhase is the fault-check state of one path class.
type chargePhase uint32

const (
	phaseUnchecked chargePhase = iota
	phaseChecked
	phasePoisoned
)

// chargeElem packs (phase, charged-site bitmask) into one comparable word.
type chargeElem uint32

func elemOf(ph chargePhase, mask uint32) chargeElem { return chargeElem(ph<<16) | chargeElem(mask) }
func (e chargeElem) phase() chargePhase             { return chargePhase(e >> 16) }
func (e chargeElem) mask() uint32                   { return uint32(e) & 0xffff }

// chargeFact is a set of path-class elements.
type chargeFact map[chargeElem]bool

// chargeLattice: union join (may analysis over path classes).
type chargeLattice struct{}

func (chargeLattice) Entry() chargeFact {
	return chargeFact{elemOf(phaseUnchecked, 0): true}
}

func (chargeLattice) Join(a, b chargeFact) chargeFact {
	out := make(chargeFact, len(a)+len(b))
	for e := range a {
		out[e] = true
	}
	for e := range b {
		out[e] = true
	}
	return out
}

func (chargeLattice) Equal(a, b chargeFact) bool {
	if len(a) != len(b) {
		return false
	}
	for e := range a {
		if !b[e] {
			return false
		}
	}
	return true
}

// chargeSite is one static Record* call.
type chargeSite struct {
	pos token.Pos
	// key is the charge identity (method name + printed arguments): two
	// sites with the same key on one path charge the same transfer twice.
	key  string
	name string
	bit  uint32
}

// chargeEngine analyzes one function.
type chargeEngine struct {
	pass *Pass
	cfg  *CFG
	// sites maps each Record* call position to its site record.
	sites map[token.Pos]*chargeSite
	// ordered lists sites in source order (bit i = ordered[i]).
	ordered []*chargeSite
	// consults: the function reads the injector or calls beforeRead/Write,
	// so charge sites owe a dominating check.
	consults bool
	// firstCheck anchors the missed-charge diagnostic.
	firstCheck token.Pos
	// injObjs are variables bound to the injector (fi := d.faults.Load()).
	injObjs map[types.Object]bool
	// checkErrObjs are variables bound to a fault-check result.
	checkErrObjs map[types.Object]bool
	// reported dedupes diagnostics per (site, kind).
	reported map[string]bool
}

const maxChargeSites = 16

func runChargeOnce(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, cfg := range FuncCFGs(f) {
			eng := &chargeEngine{
				pass:         pass,
				cfg:          cfg,
				sites:        map[token.Pos]*chargeSite{},
				injObjs:      map[types.Object]bool{},
				checkErrObjs: map[types.Object]bool{},
				reported:     map[string]bool{},
			}
			if !eng.prescan() {
				continue
			}
			res := ForwardSolve[chargeFact](cfg, chargeLattice{}, eng.transfer, eng.refine)
			if !res.Converged {
				continue
			}
			eng.checkExit(res)
		}
	}
	return nil
}

// prescan enumerates charge sites and fault-check evidence; false means the
// function needs no analysis (or exceeds the site budget).
func (eng *chargeEngine) prescan() bool {
	for _, b := range eng.cfg.Blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(x ast.Node) bool {
				if _, ok := x.(*ast.FuncLit); ok {
					return false // literals are separate CFGs
				}
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := chargeCallName(eng.pass.Pkg, call); ok {
					if _, seen := eng.sites[call.Pos()]; !seen {
						s := &chargeSite{
							pos:  call.Pos(),
							key:  name + "\x00" + argKey(call.Args, len(call.Args)),
							name: name,
						}
						eng.sites[call.Pos()] = s
						eng.ordered = append(eng.ordered, s)
					}
				}
				if isFaultCheckCall(call) || isInjectorBindingCall(call) {
					eng.consults = true
					if !eng.firstCheck.IsValid() {
						eng.firstCheck = call.Pos()
					}
				}
				return true
			})
		}
	}
	if len(eng.ordered) == 0 {
		return false
	}
	if len(eng.ordered) > maxChargeSites {
		return false // site budget exceeded; skip rather than misreport
	}
	sort.Slice(eng.ordered, func(i, j int) bool { return eng.ordered[i].pos < eng.ordered[j].pos })
	for i, s := range eng.ordered {
		s.bit = 1 << uint(i)
	}
	return true
}

// chargeCallName matches acct.RecordRead / RecordRandRead / RecordWrite.
func chargeCallName(pkg *Package, call *ast.CallExpr) (string, bool) {
	method, recv, _ := methodCallInfo(pkg, call)
	if recv != "Accountant" {
		return "", false
	}
	switch method {
	case "RecordRead", "RecordRandRead", "RecordWrite":
		return method, true
	default:
		return "", false
	}
}

// isFaultCheckCall matches fi.beforeRead(...) / fi.beforeWrite(...).
func isFaultCheckCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return sel.Sel.Name == "beforeRead" || sel.Sel.Name == "beforeWrite"
}

// isInjectorBindingCall matches d.faults.Load() and d.Faults(): expressions
// producing the injector pointer whose nil check is the vacuous pass.
func isInjectorBindingCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Faults":
		return true
	case "Load":
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		return ok && inner.Sel.Name == "faults"
	default:
		return false
	}
}

// transfer applies one block's calls and bindings to the fact.
func (eng *chargeEngine) transfer(b *Block, in chargeFact) chargeFact {
	fact := make(chargeFact, len(in))
	for e := range in {
		fact[e] = true
	}
	for _, n := range b.Nodes {
		eng.bindings(n)
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isFaultCheckCall(call) {
				fact = mapPhases(fact, func(ph chargePhase) chargePhase {
					if ph == phaseUnchecked {
						return phaseChecked
					}
					return ph
				})
				return true
			}
			if site, ok := eng.sites[call.Pos()]; ok {
				fact = eng.charge(site, fact)
			}
			return true
		})
	}
	return fact
}

// bindings records injector and fault-check-error variable bindings from an
// assignment or declaration node (flow-insensitive side tables).
func (eng *chargeEngine) bindings(n ast.Node) {
	var lhs []ast.Expr
	var rhs []ast.Expr
	switch n := n.(type) {
	case *ast.AssignStmt:
		lhs, rhs = n.Lhs, n.Rhs
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						eng.bindOne(name, vs.Values[i])
					}
				}
			}
		}
		return
	default:
		return
	}
	if len(lhs) != 1 || len(rhs) != 1 {
		return
	}
	if id, ok := ast.Unparen(lhs[0]).(*ast.Ident); ok {
		eng.bindOne(id, rhs[0])
	}
}

// bindOne classifies one name := value binding.
func (eng *chargeEngine) bindOne(id *ast.Ident, value ast.Expr) {
	if id.Name == "_" {
		return
	}
	call, ok := ast.Unparen(value).(*ast.CallExpr)
	if !ok {
		return
	}
	obj := eng.pass.Pkg.Info.Defs[id]
	if obj == nil {
		obj = eng.pass.Pkg.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	if isInjectorBindingCall(call) {
		eng.injObjs[obj] = true
	}
	if isFaultCheckCall(call) {
		eng.checkErrObjs[obj] = true
	}
}

// charge applies one Record* site to every element, reporting violations.
func (eng *chargeEngine) charge(site *chargeSite, fact chargeFact) chargeFact {
	out := make(chargeFact, len(fact))
	for e := range fact {
		ph, mask := e.phase(), e.mask()
		if eng.consults && ph == phaseUnchecked {
			eng.reportOnce("dom", site.pos,
				"%s is reachable without consulting the fault injector this function checks; the fault check must dominate the charge",
				site.name)
		}
		if ph == phasePoisoned {
			eng.reportOnce("poison", site.pos,
				"a failed fault-injector check can reach this %s; failed I/O must never be charged (return the error before charging)",
				site.name)
		}
		for _, other := range eng.ordered {
			if other != site && other.key == site.key && mask&other.bit != 0 {
				eng.reportOnce("double", site.pos,
					"this path already charged the same transfer at line %d; each physical I/O must be charged exactly once",
					eng.pass.Pkg.Fset.Position(other.pos).Line)
				break
			}
		}
		out[elemOf(ph, mask|site.bit)] = true
	}
	return out
}

// refine transitions phases along injector-nil and check-error edges.
func (eng *chargeEngine) refine(e *Edge, f chargeFact) chargeFact {
	id, isNil, ok := condIdent(e)
	if !ok {
		return f
	}
	obj := eng.pass.Pkg.Info.Uses[id]
	if obj == nil {
		return f
	}
	if eng.injObjs[obj] && isNil {
		// No injector installed: nothing can fail, the check is vacuously
		// satisfied on this branch.
		return mapPhases(f, func(ph chargePhase) chargePhase {
			if ph == phaseUnchecked {
				return phaseChecked
			}
			return ph
		})
	}
	if eng.checkErrObjs[obj] && !isNil {
		// The fault check failed on this branch: the I/O never happened.
		return mapPhases(f, func(chargePhase) chargePhase { return phasePoisoned })
	}
	return f
}

// checkExit reports checked-but-uncharged paths at the function exit.
func (eng *chargeEngine) checkExit(res *FlowResult[chargeFact]) {
	if !eng.consults {
		return
	}
	exit, ok := res.In[eng.cfg.Exit]
	if !ok {
		return
	}
	for e := range exit {
		if e.phase() == phaseChecked && e.mask() == 0 {
			eng.reportOnce("missed", eng.firstCheck,
				"a path passes this fault check but returns without charging; successful I/O must be charged exactly once")
			return
		}
	}
}

// reportOnce emits one diagnostic per (kind, position).
func (eng *chargeEngine) reportOnce(kind string, pos token.Pos, format string, args ...interface{}) {
	k := kind + "\x00" + eng.pass.Pkg.Fset.Position(pos).String()
	if eng.reported[k] {
		return
	}
	eng.reported[k] = true
	eng.pass.Reportf(pos, format, args...)
}

// mapPhases rewrites every element's phase through fn.
func mapPhases(f chargeFact, fn func(chargePhase) chargePhase) chargeFact {
	out := make(chargeFact, len(f))
	for e := range f {
		out[elemOf(fn(e.phase()), e.mask())] = true
	}
	return out
}
