package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicConsistencyAnalyzer enforces the parallelism-invariant-cost contract
// (DESIGN.md §12): counters shared across exchange workers are touched only
// atomically. Two complementary checks:
//
//  1. Mixed access: a variable or struct field that is ever the target of a
//     sync/atomic function call (atomic.AddInt64(&x.f, ...)) must never be
//     read or written plainly anywhere else in the package — one plain access
//     is a data race and silently corrupts charged costs under parallelism.
//  2. Value copies: a value of a typed atomic (atomic.Int64, atomic.Uint64,
//     atomic.Pointer[T], ...) must not be copied — assigned, passed, indexed
//     out, or returned by value — because the copy severs it from the word
//     the other workers update. Taking its address and calling its methods
//     are the only sound uses.
//
// The checks are whole-package and flow-insensitive: atomicity is a property
// of the field, not of any one path.
var AtomicConsistencyAnalyzer = &Analyzer{
	Name: "atomicconsistency",
	Doc:  "fields accessed via sync/atomic must never be accessed plainly or copied",
	Run:  runAtomicConsistency,
}

func runAtomicConsistency(pass *Pass) error {
	// Pass 1: find every variable targeted by an atomic.* call, remembering
	// the operand nodes themselves (they are sanctioned accesses).
	targets := map[*types.Var]token.Pos{}
	sanctioned := map[ast.Node]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isAtomicFuncCall(pass.Pkg, call) || len(call.Args) == 0 {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			operand := ast.Unparen(un.X)
			if v := varOf(pass.Pkg, operand); v != nil {
				if _, seen := targets[v]; !seen {
					targets[v] = call.Pos()
				}
				sanctioned[operand] = true
			}
			return true
		})
	}

	// Pass 2: report plain accesses of atomic targets and value copies of
	// typed atomics.
	type finding struct {
		pos token.Pos
		msg string
	}
	var found []finding
	seen := map[token.Pos]bool{}
	add := func(pos token.Pos, msg string) {
		if !seen[pos] {
			seen[pos] = true
			found = append(found, finding{pos, msg})
		}
	}
	for _, f := range pass.Pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch e := n.(type) {
			case *ast.Ident, *ast.SelectorExpr:
				expr := n.(ast.Expr)
				if sanctioned[expr] || selIdentOfParent(n, stack) {
					return true
				}
				if v := varOf(pass.Pkg, expr); v != nil {
					if atomicAt, ok := targets[v]; ok && !selectorChild(expr, stack) {
						add(expr.Pos(), sprintfDiag(
							"%s is updated with sync/atomic (line %d); this plain access races with those updates — use atomic operations here too",
							v.Name(), pass.Pkg.Fset.Position(atomicAt).Line))
					}
				}
				if isAtomicValueCopy(pass.Pkg, expr, stack) {
					add(expr.Pos(), sprintfDiag(
						"this copies the %s value out of the shared word; atomic values must not be copied — call its methods through the original variable",
						typeLabel(pass.Pkg, expr)))
				}
			case *ast.IndexExpr:
				if isAtomicValueCopy(pass.Pkg, e, stack) {
					add(e.Pos(), sprintfDiag(
						"this copies the %s value out of the shared word; atomic values must not be copied — call its methods through the original element",
						typeLabel(pass.Pkg, e)))
				}
			case *ast.StarExpr:
				if isAtomicValueCopy(pass.Pkg, e, stack) {
					add(e.Pos(), sprintfDiag(
						"this dereference copies the %s value; atomic values must not be copied — call its methods through the pointer",
						typeLabel(pass.Pkg, e)))
				}
			default:
			}
			return true
		})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].pos < found[j].pos })
	for _, fi := range found {
		pass.Reportf(fi.pos, "%s", fi.msg)
	}
	return nil
}

// sprintfDiag exists so messages are formatted once at detection time.
func sprintfDiag(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}

// isAtomicFuncCall reports whether call invokes a function of package
// sync/atomic (atomic.AddInt64 style, not a typed-atomic method).
func isAtomicFuncCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// varOf resolves an identifier or field selector to the *types.Var it uses.
// Definitions (struct field declarations, var declarations) are not uses and
// resolve to nil: declaring a field is not an access of it.
func varOf(pkg *Package, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// selIdentOfParent reports whether n is the Sel identifier of an enclosing
// selector expression; the access is judged once, at the selector itself.
func selIdentOfParent(n ast.Node, stack []ast.Node) bool {
	id, ok := n.(*ast.Ident)
	if !ok || len(stack) == 0 {
		return false
	}
	parent, ok := stack[len(stack)-1].(*ast.SelectorExpr)
	return ok && parent.Sel == id
}

// selectorChild reports whether e is the X of an enclosing selector (x.f.g:
// the access to x.f is part of the deeper access, judged at the leaf).
func selectorChild(e ast.Expr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	parent, ok := stack[len(stack)-1].(*ast.SelectorExpr)
	return ok && parent.X == e
}

// isAtomicValueCopy reports whether e is a typed-atomic value being used as
// a value (copied) rather than addressed or used as a method receiver.
func isAtomicValueCopy(pkg *Package, e ast.Expr, stack []ast.Node) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || !tv.IsValue() {
		return false
	}
	if !isTypedAtomic(tv.Type) {
		return false
	}
	if len(stack) == 0 {
		return true
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.UnaryExpr:
		if parent.Op == token.AND {
			return false // &x.counter: address taken, sound
		}
	case *ast.SelectorExpr:
		if parent.X == e {
			return false // x.counter.Add(1): method (or field) access, sound
		}
	case *ast.ParenExpr:
		return isAtomicValueCopy(pkg, parent, stack[:len(stack)-1])
	default:
	}
	return true
}

// isTypedAtomic reports whether t is a named type declared in sync/atomic
// (atomic.Int64, atomic.Pointer[T], atomic.Value, ...).
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// typeLabel renders e's type for messages (atomic.Int64).
func typeLabel(pkg *Package, e ast.Expr) string {
	if tv, ok := pkg.Info.Types[e]; ok {
		return types.TypeString(tv.Type, func(p *types.Package) string { return p.Name() })
	}
	return "atomic"
}
