package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// cfgOf parses src as a complete file and returns the CFG of the function
// named fn (FuncCFGs covers declarations and literals alike).
func cfgOf(t *testing.T, src, fn string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfgtest.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, g := range FuncCFGs(f) {
		if g.Name == fn {
			return g
		}
	}
	t.Fatalf("no CFG named %q", fn)
	return nil
}

// reachableLattice collects the indices of blocks on some path into each
// block: a may-union analysis exercising join and loop convergence.
type reachableLattice struct{}

func (reachableLattice) Entry() map[int]bool { return map[int]bool{} }
func (reachableLattice) Join(a, b map[int]bool) map[int]bool {
	out := map[int]bool{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}
func (reachableLattice) Equal(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func solveReachable(g *CFG) *FlowResult[map[int]bool] {
	return ForwardSolve[map[int]bool](g, reachableLattice{}, func(b *Block, in map[int]bool) map[int]bool {
		out := map[int]bool{}
		for k := range in {
			out[k] = true
		}
		out[b.Index] = true
		return out
	}, nil)
}

func TestCFGIfElseEdges(t *testing.T) {
	g := cfgOf(t, `package p
func f(x int) int {
	if x > 0 {
		return 1
	}
	return 0
}`, "f")
	// The condition block must have exactly one true edge and one false
	// edge, both annotated with the same condition expression.
	var condEdges []*Edge
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.Cond != nil {
				condEdges = append(condEdges, e)
			}
		}
	}
	if len(condEdges) != 2 {
		t.Fatalf("got %d condition-annotated edges, want 2", len(condEdges))
	}
	if condEdges[0].Cond != condEdges[1].Cond {
		t.Errorf("true and false edges carry different Cond expressions")
	}
	if condEdges[0].When == condEdges[1].When {
		t.Errorf("both condition edges have When=%v; want one true, one false", condEdges[0].When)
	}
	if len(g.Exit.Preds) != 2 {
		t.Errorf("exit has %d predecessors, want 2 (both returns)", len(g.Exit.Preds))
	}
}

func TestCFGLoopHasBackEdge(t *testing.T) {
	g := cfgOf(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, "f")
	// Some edge must target a block that dominates it in source order —
	// i.e., the CFG has a cycle.
	if !hasCycle(g) {
		t.Fatalf("for-loop CFG has no cycle")
	}
	res := solveReachable(g)
	if !res.Converged {
		t.Fatalf("solver did not converge on a simple loop")
	}
	if !res.Reached(g.Exit) {
		t.Fatalf("exit not reached through loop-false edge")
	}
}

func TestCFGInfiniteLoopExitUnreached(t *testing.T) {
	g := cfgOf(t, `package p
func f() {
	for {
	}
}`, "f")
	res := solveReachable(g)
	if res.Reached(g.Exit) {
		t.Fatalf("exit reached despite infinite loop with no break")
	}
}

func TestCFGBreakReachesExit(t *testing.T) {
	g := cfgOf(t, `package p
func f(n int) {
	for {
		if n > 0 {
			break
		}
	}
}`, "f")
	res := solveReachable(g)
	if !res.Reached(g.Exit) {
		t.Fatalf("break did not connect the loop to the function exit")
	}
}

func TestCFGPanicEdgesToExit(t *testing.T) {
	g := cfgOf(t, `package p
func f(x int) int {
	if x < 0 {
		panic("negative")
	}
	return x
}`, "f")
	// Both the panic and the return must flow to Exit so the dataflow sees
	// every way out of the function (the resource analyzers audit panics
	// like any other exit).
	if len(g.Exit.Preds) != 2 {
		t.Fatalf("exit has %d predecessors, want 2 (panic + return)", len(g.Exit.Preds))
	}
}

func TestCFGUnreachableAfterReturn(t *testing.T) {
	g := cfgOf(t, `package p
func f() int {
	return 1
	println("dead")
}`, "f")
	res := solveReachable(g)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if call, ok := n.(*ast.ExprStmt); ok {
				if isPrintln(call.X) && res.Reached(b) {
					t.Fatalf("statement after return is reached by the solver")
				}
			}
		}
	}
}

func TestCFGSwitchCoversAllCases(t *testing.T) {
	g := cfgOf(t, `package p
func f(k int) int {
	switch k {
	case 0:
		return 10
	case 1:
		return 11
	default:
		return 12
	}
}`, "f")
	// The unreachable post-switch join keeps its structural edge to Exit;
	// count only predecessors the solver can actually reach.
	res := solveReachable(g)
	reached := 0
	for _, e := range g.Exit.Preds {
		if res.Reached(e.From) {
			reached++
		}
	}
	if reached != 3 {
		t.Fatalf("exit has %d reached predecessors, want 3 (one per case)", reached)
	}
}

func TestCFGSwitchWithoutDefaultFallsThrough(t *testing.T) {
	g := cfgOf(t, `package p
func f(k int) int {
	switch k {
	case 0:
		return 10
	}
	return 0
}`, "f")
	res := solveReachable(g)
	if !res.Reached(g.Exit) {
		t.Fatalf("switch without default must fall through to the join")
	}
	if len(g.Exit.Preds) != 2 {
		t.Fatalf("exit has %d predecessors, want 2 (case return + fallthrough return)", len(g.Exit.Preds))
	}
}

func TestFuncCFGsIncludesLiterals(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfgtest.go", `package p
func a() {}
func b() {
	fn := func() int { return 1 }
	fn()
}`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := FuncCFGs(f)
	if len(cfgs) != 3 {
		t.Fatalf("got %d CFGs, want 3 (a, b, and b's literal)", len(cfgs))
	}
}

func TestCondIdentDecomposition(t *testing.T) {
	g := cfgOf(t, `package p
func f() {
	var err error
	if err != nil {
		return
	}
}`, "f")
	found := 0
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			id, isNil, ok := condIdent(e)
			if !ok {
				continue
			}
			found++
			if id.Name != "err" {
				t.Errorf("condIdent ident = %q, want err", id.Name)
			}
			// On the edge taken when `err != nil` holds, err is non-nil.
			if e.When && isNil {
				t.Errorf("true edge of err != nil reported isNil=true")
			}
			if !e.When && !isNil {
				t.Errorf("false edge of err != nil reported isNil=false")
			}
		}
	}
	if found != 2 {
		t.Fatalf("condIdent decomposed %d edges, want 2", found)
	}
}

func TestForwardSolveJoinsBranches(t *testing.T) {
	g := cfgOf(t, `package p
func f(x int) {
	if x > 0 {
		println("a")
	} else {
		println("b")
	}
	println("join")
}`, "f")
	res := solveReachable(g)
	if !res.Converged {
		t.Fatal("no convergence")
	}
	in := res.In[g.Exit]
	// The exit's in-fact must contain both branch blocks: the union join
	// merged both paths.
	branches := 0
	for _, b := range g.Blocks {
		if len(b.Nodes) == 1 && in[b.Index] {
			if es, ok := b.Nodes[0].(*ast.ExprStmt); ok && isPrintln(es.X) {
				branches++
			}
		}
	}
	if branches < 2 {
		t.Fatalf("exit in-fact reaches %d println blocks, want at least both branches", branches)
	}
}

// hasCycle detects any cycle in the CFG by DFS coloring.
func hasCycle(g *CFG) bool {
	state := map[*Block]int{}
	var visit func(*Block) bool
	visit = func(b *Block) bool {
		switch state[b] {
		case 1:
			return true
		case 2:
			return false
		}
		state[b] = 1
		for _, e := range b.Succs {
			if visit(e.To) {
				return true
			}
		}
		state[b] = 2
		return false
	}
	return visit(g.Entry)
}

// isPrintln matches a println(...) call expression.
func isPrintln(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "println"
}
