package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// floatCmpPathFragments restricts floatcmp to the packages where float64
// values are rank/cost quantities whose exact-equality comparison is a
// correctness hazard (see Hellerstein §4: rank ties decide predicate order,
// and accumulated float error must not make placement nondeterministic).
var floatCmpPathFragments = []string{"internal/cost", "internal/optimizer"}

// FloatCmpAnalyzer flags raw ==/!= comparisons (and switch statements) on
// floating-point expressions in the cost and optimizer packages. Rank and
// cost values accumulate rounding error across Compose/Annotate, so exact
// equality is order-dependent noise; comparisons must go through the epsilon
// helper cost.ApproxEq. Functions whose names begin with Approx/approx are
// exempt — they are the epsilon helpers themselves.
var FloatCmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= and switch on float64 in cost/optimizer; use cost.ApproxEq",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	if !pathMatchesAny(pass.Pkg.Path, floatCmpPathFragments) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch t := n.(type) {
			case *ast.BinaryExpr:
				if t.Op != token.EQL && t.Op != token.NEQ {
					return true
				}
				if !isFloat(pass.Pkg.Info, t.X) && !isFloat(pass.Pkg.Info, t.Y) {
					return true
				}
				if name := enclosingFuncName(stack); strings.HasPrefix(strings.ToLower(name), "approx") {
					return true // the epsilon helper itself
				}
				pass.Reportf(t.OpPos,
					"float %s comparison on rank/cost value; use cost.ApproxEq (epsilon compare) instead", t.Op)
			case *ast.SwitchStmt:
				if t.Tag != nil && isFloat(pass.Pkg.Info, t.Tag) {
					pass.Reportf(t.Switch,
						"switch on a float expression compares with ==; restructure with cost.ApproxEq")
				}
			}
			return true
		})
	}
	return nil
}

// isFloat reports whether the expression's type is (or has underlying)
// float32/float64.
func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// pathMatchesAny reports whether the import path contains any fragment.
func pathMatchesAny(path string, fragments []string) bool {
	for _, f := range fragments {
		if strings.Contains(path, f) {
			return true
		}
	}
	return false
}
