package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// batchContractPathFragment restricts batchcontract to the exec package,
// where the BatchIterator contract and its implementations live.
var batchContractPathFragment = "internal/exec"

// BatchContractAnalyzer enforces the exec.BatchIterator implementation
// contract (see the BatchIterator doc comment):
//
//  1. A NextBatch method must not retain its dst buffer: assigning dst (or
//     any reslice of it) to a field keeps a caller-owned buffer alive past
//     the call, and the caller is free to recycle or overwrite it.
//  2. n must never exceed len(dst): growing dst with append silently
//     produces counts the caller's buffer cannot hold.
//  3. An error return implies n == 0: `return n, err` with a possibly
//     non-nil error hands the caller an ambiguous (rows, error) pair; every
//     error return must yield the literal 0.
//  4. Call sites must not blank a NextBatch error: the n==0-on-error
//     guarantee only helps callers that actually look at the error.
var BatchContractAnalyzer = &Analyzer{
	Name: "batchcontract",
	Doc:  "enforces the NextBatch contract: no dst retention, no dst growth, errors return n==0, call sites keep the error",
	Run:  runBatchContract,
}

func runBatchContract(pass *Pass) error {
	if !strings.Contains(pass.Pkg.Path, batchContractPathFragment) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "NextBatch" && fd.Recv != nil {
				checkNextBatchBody(pass, fd)
			}
			checkBatchCallSites(pass, fd)
		}
	}
	return nil
}

// dstParamName returns the name of a NextBatch method's buffer parameter
// (its first parameter, which the contract requires to be a slice), or ""
// when the shape does not match.
func dstParamName(fd *ast.FuncDecl) string {
	if fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
		return ""
	}
	first := fd.Type.Params.List[0]
	if _, ok := first.Type.(*ast.ArrayType); !ok {
		return ""
	}
	if len(first.Names) == 0 {
		return ""
	}
	return first.Names[0].Name
}

// isDstAlias reports whether e is the dst buffer or a reslice of it
// (dst, dst[i:j], dst[i:j:k], possibly parenthesized).
func isDstAlias(e ast.Expr, dst string) bool {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		case *ast.Ident:
			return t.Name == dst
		default:
			return false
		}
	}
}

// checkNextBatchBody enforces rules 1–3 inside one NextBatch method.
func checkNextBatchBody(pass *Pass, fd *ast.FuncDecl) {
	dst := dstParamName(fd)
	if dst == "" {
		return
	}
	recv := fd.Recv.List[0].Names
	recvName := ""
	if len(recv) > 0 {
		recvName = recv[0].Name
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range t.Lhs {
				if i >= len(t.Rhs) {
					break
				}
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if isDstAlias(t.Rhs[i], dst) {
					target := recvName
					if id, ok := sel.X.(*ast.Ident); ok {
						target = id.Name
					}
					pass.Reportf(t.Pos(),
						"NextBatch stores its dst buffer into %s.%s; dst is caller-owned and must not be retained across calls",
						target, sel.Sel.Name)
				}
			}
		case *ast.CallExpr:
			if id, ok := t.Fun.(*ast.Ident); ok && id.Name == "append" && len(t.Args) > 0 {
				if isDstAlias(t.Args[0], dst) {
					pass.Reportf(t.Pos(),
						"NextBatch appends to its dst buffer; n must never exceed len(dst) — write through dst[i] and return the count")
				}
			}
		case *ast.ReturnStmt:
			checkBatchReturn(pass, t)
		}
		return true
	})
}

// checkBatchReturn enforces rule 3 on one `return n, err` statement: when
// the error operand is not the nil literal, the count operand must be the
// literal 0.
func checkBatchReturn(pass *Pass, ret *ast.ReturnStmt) {
	if len(ret.Results) != 2 {
		return
	}
	if id, ok := ret.Results[1].(*ast.Ident); ok && id.Name == "nil" {
		return
	}
	if lit, ok := ret.Results[0].(*ast.BasicLit); ok && lit.Kind == token.INT && lit.Value == "0" {
		return
	}
	pass.Reportf(ret.Pos(),
		"NextBatch returns a possibly non-zero count alongside a possibly non-nil error; the contract requires `return 0, err` on every error path")
}

// checkBatchCallSites enforces rule 4: assignments that blank the error
// result of a NextBatch/nextBatch call.
func checkBatchCallSites(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isNextBatchCall(call) {
			return true
		}
		if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(as.Pos(),
				"call discards a NextBatch error; n==0-on-error only helps callers that check it")
		}
		return true
	})
}

// isNextBatchCall reports whether the call target is named NextBatch (the
// interface method) or nextBatch (the adapter helper).
func isNextBatchCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "nextBatch"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "NextBatch" || fun.Sel.Name == "nextBatch"
	}
	return false
}
