package lint

import (
	"go/ast"
	"go/types"
)

// lockBalancePaths scopes the analyzer to the packages the issue names: the
// page cache and the storage layer, whose striped/sharded locking is the
// hottest and the easiest to unbalance in a refactor. (exec's two mutexes are
// straight-line or deferred and covered by tests.)
var lockBalancePaths = []string{"internal/pcache", "internal/storage"}

// LockBalanceAnalyzer proves Lock/RLock is matched by Unlock/RUnlock on
// every path out of the function, with defer modeling, and flags re-locking
// a mutex that may still be held on some path (self-deadlock). It shares the
// resource-balance dataflow with pinbalance; locks are matched by the
// printed receiver expression and the lock kind (exclusive vs. shared).
var LockBalanceAnalyzer = &Analyzer{
	Name: "lockbalance",
	Doc:  "Lock/Unlock paired on all paths in internal/pcache and internal/storage",
	Run:  runLockBalance,
}

func runLockBalance(pass *Pass) error {
	if !pathMatchesAny(pass.Pkg.Path, lockBalancePaths) {
		return nil
	}
	return runBalance(pass, lockBalanceRules())
}

// lockBalanceRules recognizes sync.Mutex / sync.RWMutex acquisition and
// release, including promoted methods of embedded mutexes (the method
// object's declared receiver is the mutex type either way).
func lockBalanceRules() *balanceRules {
	return &balanceRules{
		noun:          "lock",
		releaseHint:   "Unlock",
		doubleAcquire: true,
		classifyAcquire: func(pkg *Package, call *ast.CallExpr) (acquireSpec, bool) {
			method, recv, sel := methodCallInfo(pkg, call)
			if recv != "Mutex" && recv != "RWMutex" {
				return acquireSpec{}, false
			}
			switch method {
			case "Lock", "RLock":
				target := types.ExprString(sel.X)
				return acquireSpec{
					callee:   target + "." + method,
					key:      lockKey(method == "RLock", target),
					clashKey: target,
					valIdx:   -1,
					pidIdx:   -1,
					errIdx:   -1,
					shared:   method == "RLock",
				}, true
			default:
				return acquireSpec{}, false
			}
		},
		classifyRelease: func(pkg *Package, call *ast.CallExpr) (releaseSpec, bool) {
			method, recv, sel := methodCallInfo(pkg, call)
			if recv != "Mutex" && recv != "RWMutex" {
				return releaseSpec{}, false
			}
			switch method {
			case "Unlock", "RUnlock":
				return releaseSpec{key: lockKey(method == "RUnlock", types.ExprString(sel.X))}, true
			default:
				return releaseSpec{}, false
			}
		},
	}
}

// lockKey builds the release-matching key: the lock kind (shared vs.
// exclusive) plus the spelled receiver, so m.mu.RLock() only pairs with
// m.mu.RUnlock().
func lockKey(shared bool, target string) string {
	if shared {
		return "R\x00" + target
	}
	return "W\x00" + target
}
