package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// ExhaustiveSwitchAnalyzer flags switch statements over enum-like named
// integer types (plan.JoinMethod, query.PredKind, optimizer.Algorithm, …)
// that neither cover every declared constant of the type nor carry a default
// clause. Adding a new join method or predicate kind must fail loudly in
// every dispatch site, not silently fall through — the executor returning
// "unknown plan node" at runtime is exactly the bug class this removes.
//
// A type is enum-like when its package declares at least two exported or
// unexported constants of exactly that type. A `default` clause counts as
// exhaustive (it is the author's explicit catch-all).
var ExhaustiveSwitchAnalyzer = &Analyzer{
	Name: "exhaustiveswitch",
	Doc:  "flags switches over enum-like integer types missing constants and lacking default",
	Run:  runExhaustiveSwitch,
}

func runExhaustiveSwitch(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := info.Types[sw.Tag]
			if !ok || tv.Type == nil {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok {
				return true
			}
			b, ok := named.Underlying().(*types.Basic)
			if !ok || b.Info()&types.IsInteger == 0 {
				return true
			}
			declared := enumConstants(named)
			if len(declared) < 2 {
				return true // not an enum
			}
			covered := map[string]bool{}
			hasDefault := false
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					for _, id := range constIdents(e) {
						if obj, ok := info.Uses[id]; ok {
							if c, ok := obj.(*types.Const); ok && types.Identical(c.Type(), named) {
								covered[c.Name()] = true
							}
						}
					}
				}
			}
			if hasDefault {
				return true
			}
			var missing []string
			for _, name := range declared {
				if !covered[name] {
					missing = append(missing, name)
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Switch,
					"switch on %s is not exhaustive: missing %s (add the cases or a default clause)",
					named.Obj().Name(), strings.Join(missing, ", "))
			}
			return true
		})
	}
	return nil
}

// enumConstants lists the names of every constant of exactly type named
// declared in the type's own package, sorted by constant value then name.
func enumConstants(named *types.Named) []string {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	scope := pkg.Scope()
	type nc struct {
		name string
		val  string
	}
	var consts []nc
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named.Obj().Type()) {
			continue
		}
		consts = append(consts, nc{name: c.Name(), val: c.Val().ExactString()})
	}
	sort.Slice(consts, func(i, j int) bool {
		if consts[i].val != consts[j].val {
			return consts[i].val < consts[j].val
		}
		return consts[i].name < consts[j].name
	})
	out := make([]string, len(consts))
	for i, c := range consts {
		out[i] = c.name
	}
	return out
}

// constIdents collects the identifiers of a case expression (the identifier
// itself, or the selector's field for pkg.Const references).
func constIdents(e ast.Expr) []*ast.Ident {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		return []*ast.Ident{t}
	case *ast.SelectorExpr:
		return []*ast.Ident{t.Sel}
	}
	return nil
}
