// Package lint is a from-scratch static-analysis suite over this repository's
// own source, built exclusively on the standard library's go/ast, go/parser,
// go/types, and go/token (the repo is stdlib-only; no x/tools).
//
// The analyzers encode invariants the Go type system cannot see but the
// paper's correctness depends on:
//
//   - floatcmp:         no raw ==/!= (or switch) on float64 rank/cost values
//     in internal/cost and internal/optimizer; route
//     comparisons through the epsilon helper cost.ApproxEq.
//   - closechain:       every executor iterator's Close must close every
//     stored child iterator (resource/accounting leaks otherwise).
//   - errdrop:          no silently discarded error returns (`_ =` or bare
//     calls) outside tests.
//   - exhaustiveswitch: a switch over an enum-like named integer type must
//     either cover every declared constant or carry a
//     default clause.
//   - nodecontract:     plan.Node implementations need doc comments and must
//     not return aliased child slices from Cols().
//   - batchcontract:    exec NextBatch implementations must not retain or
//     grow their caller-owned dst buffer, must return 0 on
//     error, and call sites must not blank the error.
//   - ctxabort:         internal/exec loops that charge cost (Charge*) must
//     also observe the abort check (checkAbort), or
//     cancellation cannot interrupt them.
//   - profileclean:     exec Next/NextBatch methods must not allocate per
//     call outside the grow-once idiom, keeping the
//     profiling-off hot path allocation-free.
//
// Four analyzers (pplint v2) are built on a per-function control-flow graph
// and forward-dataflow solver (cfg.go, dataflow.go) and prove "on all paths"
// properties the per-statement matchers above cannot:
//
//   - pinbalance:        every BufferPool.Fetch/Pin/NewPage is matched by
//     Unpin on every path out of the function (or the pin
//     escapes); static twin of the PinnedFrames audit.
//   - chargeonce:        each storage charge site is dominated by the fault-
//     injector check and each transfer is charged exactly
//     once; failed I/O is never charged.
//   - atomicconsistency: a field updated via sync/atomic is never accessed
//     plainly elsewhere, and typed atomic values are
//     never copied.
//   - lockbalance:       Lock/Unlock paired on all paths (with defer
//     modeling) in internal/pcache and internal/storage,
//     plus re-lock-while-held detection.
//
// A diagnostic can be suppressed with a `//pplint:ignore <analyzer> <reason>`
// comment on the flagged line or the line directly above it. The suppress
// audit (suppress.go) keeps directives honest: a directive without a reason
// is itself a diagnostic, as is one that names an unknown analyzer or no
// longer matches any finding (stale).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	// Pos is the resolved file:line:column position.
	Pos token.Position
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Message describes the violation and the expected fix.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name is the flag-facing identifier (e.g. "floatcmp").
	Name string
	// Doc is a one-line description shown by pplint -list.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Pkg is the loaded, type-checked package under inspection.
	Pkg *Package
	// report collects diagnostics (set by RunAnalyzers).
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns every analyzer in the suite, in report order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		FloatCmpAnalyzer,
		CloseChainAnalyzer,
		ErrDropAnalyzer,
		ExhaustiveSwitchAnalyzer,
		NodeContractAnalyzer,
		BatchContractAnalyzer,
		CtxAbortAnalyzer,
		ProfileCleanAnalyzer,
		PinBalanceAnalyzer,
		ChargeOnceAnalyzer,
		AtomicConsistencyAnalyzer,
		LockBalanceAnalyzer,
		SuppressAuditAnalyzer,
	}
}

// ByName resolves an analyzer by its flag name.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// RunAnalyzers runs the given analyzers over the given packages and returns
// the surviving diagnostics sorted by position. pplint:ignore comments are
// honoured here so every analyzer gets suppression for free; when the
// suppress audit is among the analyzers, the directives themselves are
// audited after the package's findings are known (audit diagnostics are not
// suppressible — an ignore must not silence the audit of ignores).
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	audit := false
	for _, a := range analyzers {
		if a.Name == SuppressAuditAnalyzer.Name {
			audit = true
		}
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignored := ignoreIndex(pkg)
		collect := func(d Diagnostic) {
			if ignored.covers(d.Pos.Filename, d.Pos.Line, d.Analyzer) {
				return
			}
			diags = append(diags, d)
		}
		ran := map[string]bool{}
		for _, a := range analyzers {
			if a.Name == SuppressAuditAnalyzer.Name {
				continue // special-cased below: needs the package's findings
			}
			ran[a.Name] = true
			pass := &Pass{Analyzer: a, Pkg: pkg, report: collect}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		if audit {
			diags = append(diags, auditDirectives(ignored, ran)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ignoreKey identifies one suppressed (file, line, analyzer) cell.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// ignoreDirective is one parsed `//pplint:ignore` comment, tracked so the
// suppress audit can demand a reason and detect staleness.
type ignoreDirective struct {
	// pos is the directive's own position.
	pos token.Position
	// names are the analyzers it silences ("*" = all).
	names []string
	// reason is the justification text after the analyzer list ("" = none).
	reason string
	// fired records which named analyzers actually had a finding silenced.
	fired map[string]bool
}

// ignores maps pplint:ignore comments to the lines they cover.
type ignores struct {
	set map[ignoreKey]*ignoreDirective
	// directives lists every parsed directive in file order for the audit.
	directives []*ignoreDirective
}

func (ig *ignores) covers(file string, line int, analyzer string) bool {
	if d := ig.set[ignoreKey{file, line, analyzer}]; d != nil {
		d.fired[analyzer] = true
		return true
	}
	if d := ig.set[ignoreKey{file, line, "*"}]; d != nil {
		d.fired["*"] = true
		return true
	}
	return false
}

// ignoreIndex scans a package's comments for `//pplint:ignore a[,b] [reason]`
// directives. A directive covers its own line and the line below it, so it
// works both as a trailing comment and as a line above the flagged statement.
func ignoreIndex(pkg *Package) *ignores {
	ig := &ignores{set: map[ignoreKey]*ignoreDirective{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "pplint:ignore") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "pplint:ignore"))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := &ignoreDirective{
					pos:    pos,
					reason: strings.TrimSpace(strings.TrimPrefix(rest, fields[0])),
					fired:  map[string]bool{},
				}
				for _, name := range strings.Split(fields[0], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					d.names = append(d.names, name)
					ig.set[ignoreKey{pos.Filename, pos.Line, name}] = d
					ig.set[ignoreKey{pos.Filename, pos.Line + 1, name}] = d
				}
				if len(d.names) > 0 {
					ig.directives = append(ig.directives, d)
				}
			}
		}
	}
	return ig
}

// enclosingFunc walks the path stack maintained by inspectWithStack and
// returns the innermost enclosing function declaration name ("" if none).
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

// inspectWithStack is ast.Inspect with an ancestor stack passed to the
// visitor (pre-order; the stack excludes n itself).
func inspectWithStack(root ast.Node, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := visit(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}
