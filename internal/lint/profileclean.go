package lint

import (
	"go/ast"
	"strings"
)

// profileCleanPathFragments restricts profileclean to the executor, whose
// row-at-a-time contract the check protects.
var profileCleanPathFragments = []string{"internal/exec"}

// ProfileCleanAnalyzer guards the executor's allocation-free hot path: with
// profiling off, Next and NextBatch must not allocate per call, or the
// default path's allocation counts — which the batch benchmark gates on —
// silently regress. The check is syntactic: inside an iterator method named
// Next or NextBatch, a make, new, or slice/map composite literal is flagged
// unless it sits under an if statement whose condition reads cap, len, or a
// nil comparison (the grow-once idiom: allocate only when a reused buffer is
// too small, never on the steady state). Allocation that is genuinely per
// call belongs in Open, a helper with its own amortization, or behind the
// profiling gate — profIter itself must stay allocation-free too, since it
// wraps every operator when profiling is on.
var ProfileCleanAnalyzer = &Analyzer{
	Name: "profileclean",
	Doc:  "flags per-call allocation in exec Next/NextBatch outside the grow-once idiom",
	Run:  runProfileClean,
}

func runProfileClean(pass *Pass) error {
	if !pathMatchesAny(pass.Pkg.Path, profileCleanPathFragments) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		name := pass.Pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if fn.Name.Name != "Next" && fn.Name.Name != "NextBatch" {
				continue
			}
			checkHotPathAllocs(pass, fn)
		}
	}
	return nil
}

// checkHotPathAllocs flags allocation expressions in a hot-path method body
// that are not under a grow-once guard.
func checkHotPathAllocs(pass *Pass, fn *ast.FuncDecl) {
	inspectWithStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		var what string
		switch t := n.(type) {
		case *ast.CallExpr:
			if id, ok := t.Fun.(*ast.Ident); ok && (id.Name == "make" || id.Name == "new") {
				what = id.Name
			}
		case *ast.CompositeLit:
			// Only composite literals that heap-allocate a container: slice
			// and map literals. Struct literals are usually stack values
			// (storage.TID{}, IOStats snapshots); taking their address is
			// caught when it escapes via make/new-style growth anyway.
			switch t.Type.(type) {
			case *ast.ArrayType, *ast.MapType:
				what = "composite literal"
			}
		}
		if what == "" {
			return true
		}
		if underGrowOnceGuard(stack) {
			return true
		}
		pass.Reportf(n.Pos(),
			"%s %s allocates on every call; with profiling off the hot path must stay allocation-free — use the grow-once idiom (allocate under an if cap/len/nil check) or move the allocation to Open",
			fn.Name.Name, what)
		return true
	})
}

// underGrowOnceGuard reports whether any enclosing if statement's condition
// consults cap or len or compares against nil — the shapes of the grow-once
// idiom (`if cap(buf) < want { buf = make(...) }`, `if x == nil { ... }`).
func underGrowOnceGuard(stack []ast.Node) bool {
	for _, n := range stack {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		if condChecksCapacity(ifStmt.Cond) {
			return true
		}
	}
	return false
}

// condChecksCapacity reports whether an if condition contains a cap or len
// call or a nil comparison.
func condChecksCapacity(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.CallExpr:
			if id, ok := t.Fun.(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
				found = true
			}
		case *ast.Ident:
			if t.Name == "nil" {
				found = true
			}
		}
		return !found
	})
	return found
}
