package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The corpus harness: every file under testdata/corpus is a standalone
// package exercising one analyzer, chosen by the filename prefix up to the
// first underscore ("pinbalance_loops.go" runs pinbalance; "suppress_*"
// files run the whole suite so the directive audit sees real findings).
//
// Expectations are `// want "substring"` comments: each line carrying wants
// must produce exactly those diagnostics (matched by substring), and lines
// without wants must produce none. _bad files seed violations, _good files
// are their fixed twins and must be silent; the TestCorpusCoversSuite
// meta-test pins that every new analyzer has both.

// corpusPathDirective overrides the type-check import path of a corpus file
// so path-scoped analyzers (lockbalance) see the package they target.
const corpusPathDirective = "//corpus:path "

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

func TestCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "corpus")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus dir: %v", err)
	}
	ran := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		ran++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			runCorpusFile(t, filepath.Join(dir, name))
		})
	}
	if ran == 0 {
		t.Fatal("corpus is empty")
	}
}

// TestCorpusCoversSuite is the meta-test: each CFG-based analyzer (and the
// suppression audit) must have at least one seeded-violation file that
// produces findings and one fixed twin that is silent.
func TestCorpusCoversSuite(t *testing.T) {
	dir := filepath.Join("testdata", "corpus")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus dir: %v", err)
	}
	kinds := map[string]map[string]bool{} // analyzer -> {"bad":, "good":}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		analyzer, rest, ok := strings.Cut(strings.TrimSuffix(name, ".go"), "_")
		if !ok {
			continue
		}
		if kinds[analyzer] == nil {
			kinds[analyzer] = map[string]bool{}
		}
		switch {
		case strings.HasPrefix(rest, "bad"):
			kinds[analyzer]["bad"] = true
		case strings.HasPrefix(rest, "good"):
			kinds[analyzer]["good"] = true
		}
	}
	for _, want := range []string{"pinbalance", "chargeonce", "atomicconsistency", "lockbalance", "suppress", "ctxabort", "profileclean"} {
		if !kinds[want]["bad"] || !kinds[want]["good"] {
			t.Errorf("corpus lacks %s_bad*/%s_good* pair (have %v)", want, want, kinds[want])
		}
	}
}

// runCorpusFile type-checks one corpus file, runs its analyzer(s), and
// compares diagnostics against the file's want markers line by line.
func runCorpusFile(t *testing.T, path string) {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}

	pkgPath := "example.com/corpus/" + strings.TrimSuffix(filepath.Base(path), ".go")
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, corpusPathDirective); ok {
				pkgPath = strings.TrimSpace(rest)
			}
		}
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkgPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	pkg := &Package{Path: pkgPath, Dir: filepath.Dir(path), Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}

	analyzerName, _, _ := strings.Cut(filepath.Base(path), "_")
	var analyzers []*Analyzer
	if analyzerName == "suppress" {
		analyzers = Analyzers()
	} else {
		a, ok := ByName(analyzerName)
		if !ok {
			t.Fatalf("corpus file %s names unknown analyzer %q", path, analyzerName)
		}
		analyzers = []*Analyzer{a}
	}

	diags, err := RunAnalyzers([]*Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	gotByLine := map[int][]string{}
	for _, d := range diags {
		gotByLine[d.Pos.Line] = append(gotByLine[d.Pos.Line], fmt.Sprintf("[%s] %s", d.Analyzer, d.Message))
	}
	wantByLine := corpusWants(t, string(src))

	for line, wants := range wantByLine {
		got := gotByLine[line]
		for _, w := range wants {
			if !anyContains(got, w) {
				t.Errorf("line %d: no diagnostic matching %q (got %v)", line, w, got)
			}
		}
		if len(got) != len(wants) {
			t.Errorf("line %d: got %d diagnostics %v, want %d matching %v", line, len(got), got, len(wants), wants)
		}
	}
	for line, got := range gotByLine {
		if _, ok := wantByLine[line]; !ok {
			t.Errorf("line %d: unexpected diagnostics %v", line, got)
		}
	}
}

// corpusWants extracts `// want "a" "b"` expectations per line. A
// `// want-below "a"` comment on its own line attaches the expectation to
// the following line instead — needed when the expected diagnostic lands on
// a line that is itself a whole-line comment (a pplint:ignore directive
// flagged by the suppress audit), where a trailing want would merge into the
// directive's own text.
func corpusWants(t *testing.T, src string) map[int][]string {
	t.Helper()
	out := map[int][]string{}
	for i, line := range strings.Split(src, "\n") {
		target := i + 1
		_, rest, ok := strings.Cut(line, "// want-below ")
		if ok {
			target = i + 2
		} else {
			_, rest, ok = strings.Cut(line, "// want ")
			if !ok {
				continue
			}
		}
		var wants []string
		for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
			wants = append(wants, m[1])
		}
		if len(wants) == 0 {
			t.Fatalf("line %d: malformed want comment %q", i+1, line)
		}
		out[target] = append(out[target], wants...)
	}
	return out
}

// anyContains reports whether any string in got contains want.
func anyContains(got []string, want string) bool {
	for _, g := range got {
		if strings.Contains(g, want) {
			return true
		}
	}
	return false
}
