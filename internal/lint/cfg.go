package lint

import (
	"go/ast"
	"go/token"
)

// This file builds per-function control-flow graphs for the dataflow
// analyzers (pinbalance, chargeonce, lockbalance). The graph is intentionally
// statement-granular: a Block holds the straight-line statements (plus guard
// expressions) executed in order, and Edges carry the branch condition they
// are taken under, so analyzers can refine facts along `if err != nil`-style
// branches — the path-sensitivity the resource analyzers need to tell a
// failed acquisition from a leaked one.
//
// Covered control flow: if/else chains (including init statements), for and
// range loops, switch/type-switch (with fallthrough), select, labeled
// break/continue, goto, return, and explicit panic calls. Returns and panics
// both edge into the single Exit block; deferred calls are ordinary DeferStmt
// nodes inside blocks, and it is the analyzers that give them their
// runs-on-every-exit meaning. Function literals are opaque: a FuncLit is
// never inlined into its enclosing function's graph (analyzers build a
// separate CFG per literal).

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Name labels the function in diagnostics ("(*HeapFile).Insert").
	Name string
	// Pos is the function's declaration position.
	Pos token.Pos
	// Blocks lists every block, entry first; unreachable blocks may appear
	// (e.g. statements after a return) and are skipped by the solver.
	Blocks []*Block
	// Entry is the block control enters at.
	Entry *Block
	// Exit is the single synthetic exit: every return, explicit panic, and
	// fall-off-the-end path edges into it. It holds no nodes.
	Exit *Block
}

// Block is one straight-line run of statements.
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Nodes holds the statements and guard expressions of the block in
	// evaluation order. Control statements contribute their init statement
	// and condition/tag expression here; their bodies live in other blocks.
	Nodes []ast.Node
	// Succs and Preds are the outgoing and incoming edges.
	Succs []*Edge
	Preds []*Edge
}

// Edge is one control-flow transfer, optionally guarded by a condition.
type Edge struct {
	From, To *Block
	// Cond, when non-nil, is the boolean branch expression; the edge is
	// taken when Cond evaluates to When. nil means unconditional.
	Cond ast.Expr
	// When is the condition value under which the edge is taken.
	When bool
}

// BuildCFG constructs the graph of one function body. name and pos label
// diagnostics; body may be any block statement (FuncDecl.Body, FuncLit.Body).
func BuildCFG(name string, pos token.Pos, body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{Name: name, Pos: pos},
		labels: map[string]*labelTarget{},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit, nil, false)
	}
	b.patchGotos()
	return b.cfg
}

// cfgBuilder carries the construction state.
type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminating statement
	// (return, break, panic) until new control flow starts a fresh block.
	cur *Block
	// frames is the stack of enclosing breakable/continuable constructs.
	frames []frame
	// pendingLabel is the label of the directly enclosing LabeledStmt, to be
	// consumed by the loop/switch/select it labels.
	pendingLabel string
	// labels maps label names to their targets for goto and labeled branches.
	labels map[string]*labelTarget
	// gotos are forward gotos awaiting their label's block.
	gotos []pendingGoto
	// fallTo is the next case clause's block while building a switch clause
	// body (the fallthrough target); nil outside switch clauses.
	fallTo *Block
}

// frame is one enclosing construct a break/continue can target.
type frame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select (not continuable)
}

// labelTarget records where a label's statement begins.
type labelTarget struct{ block *Block }

// pendingGoto is a goto seen before its label.
type pendingGoto struct {
	from  *Block
	label string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block, cond ast.Expr, when bool) {
	e := &Edge{From: from, To: to, Cond: cond, When: when}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// use returns the current block, starting a fresh (unreachable) one after a
// terminator so later statements still have a home.
func (b *cfgBuilder) use() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) addNode(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.use()
	blk.Nodes = append(blk.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct that owns it.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// Start a fresh block so goto can land here; labeled loops and
		// switches additionally consume the label for break/continue.
		target := b.newBlock()
		if cur := b.cur; cur != nil {
			b.edge(cur, target, nil, false)
		}
		b.cur = target
		b.labels[s.Label.Name] = &labelTarget{block: target}
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.addNode(s.Init)
		}
		b.addNode(s.Cond)
		condBlk := b.use()
		b.cur = nil

		then := b.newBlock()
		b.edge(condBlk, then, s.Cond, true)
		b.cur = then
		b.stmt(s.Body)
		thenEnd := b.cur

		join := b.newBlock()
		if s.Else != nil {
			els := b.newBlock()
			b.edge(condBlk, els, s.Cond, false)
			b.cur = els
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, join, nil, false)
			}
		} else {
			b.edge(condBlk, join, s.Cond, false)
		}
		if thenEnd != nil {
			b.edge(thenEnd, join, nil, false)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.addNode(s.Init)
		}
		head := b.newBlock()
		if cur := b.cur; cur != nil {
			b.edge(cur, head, nil, false)
		}
		join := b.newBlock()
		body := b.newBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.edge(head, body, s.Cond, true)
			b.edge(head, join, s.Cond, false)
		} else {
			b.edge(head, body, nil, false) // for {}: join reached via break only
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head, nil, false)
			cont = post
		}
		b.frames = append(b.frames, frame{label: label, breakTo: join, continueTo: cont})
		b.cur = body
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, cont, nil, false)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = join

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		// The RangeStmt itself is the head's node: it evaluates the range
		// operand and rebinds the iteration variables each trip.
		head.Nodes = append(head.Nodes, s)
		if cur := b.cur; cur != nil {
			b.edge(cur, head, nil, false)
		}
		join := b.newBlock()
		body := b.newBlock()
		b.edge(head, body, nil, false)
		b.edge(head, join, nil, false)
		b.frames = append(b.frames, frame{label: label, breakTo: join, continueTo: head})
		b.cur = body
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, head, nil, false)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = join

	case *ast.SwitchStmt:
		b.switchLike(s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchLike(s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		condBlk := b.use()
		b.cur = nil
		join := b.newBlock()
		b.frames = append(b.frames, frame{label: label, breakTo: join})
		empty := true
		for _, c := range s.Body.List {
			comm, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			empty = false
			clause := b.newBlock()
			b.edge(condBlk, clause, nil, false)
			b.cur = clause
			if comm.Comm != nil {
				b.addNode(comm.Comm)
			}
			b.stmtList(comm.Body)
			if b.cur != nil {
				b.edge(b.cur, join, nil, false)
			}
		}
		b.frames = b.frames[:len(b.frames)-1]
		if empty {
			// select {} blocks forever; join is unreachable.
			b.cur = join
			return
		}
		b.cur = join

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.ReturnStmt:
		b.addNode(s)
		b.edge(b.use(), b.cfg.Exit, nil, false)
		b.cur = nil

	case *ast.ExprStmt:
		b.addNode(s)
		if isPanicCall(s.X) {
			b.edge(b.use(), b.cfg.Exit, nil, false)
			b.cur = nil
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, Decl, Defer, Go, IncDec, Send, and anything new: one node.
		b.addNode(s)
	}
}

// switchLike builds switch and type-switch graphs: every case clause branches
// from the tag block; fallthrough chains a clause into the next one; a
// missing default means the tag block can flow straight to the join.
func (b *cfgBuilder) switchLike(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.addNode(init)
	}
	if tag != nil {
		b.addNode(tag)
	}
	if assign != nil {
		b.addNode(assign)
	}
	condBlk := b.use()
	b.cur = nil
	join := b.newBlock()

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		b.edge(condBlk, blocks[i], nil, false)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(condBlk, join, nil, false)
	}
	b.frames = append(b.frames, frame{label: label, breakTo: join})
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.addNode(e)
		}
		var fallTo *Block
		if i+1 < len(blocks) {
			fallTo = blocks[i+1]
		}
		saved := b.fallTo
		b.fallTo = fallTo
		b.stmtList(cc.Body)
		b.fallTo = saved
		if b.cur != nil {
			b.edge(b.cur, join, nil, false)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

// branch handles break/continue/goto/fallthrough.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if label == "" || f.label == label {
				b.edge(b.use(), f.breakTo, nil, false)
				break
			}
		}
		b.cur = nil
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.continueTo == nil {
				continue // switch/select frames are not continue targets
			}
			if label == "" || f.label == label {
				b.edge(b.use(), f.continueTo, nil, false)
				break
			}
		}
		b.cur = nil
	case token.GOTO:
		from := b.use()
		if t, ok := b.labels[label]; ok {
			b.edge(from, t.block, nil, false)
		} else {
			b.gotos = append(b.gotos, pendingGoto{from: from, label: label})
		}
		b.cur = nil
	case token.FALLTHROUGH:
		if b.fallTo != nil {
			b.edge(b.use(), b.fallTo, nil, false)
		}
		b.cur = nil
	default:
		// no other branch tokens exist; nothing to do
	}
}

// patchGotos resolves gotos that preceded their labels.
func (b *cfgBuilder) patchGotos() {
	for _, g := range b.gotos {
		if t, ok := b.labels[g.label]; ok {
			b.edge(g.from, t.block, nil, false)
		}
	}
	b.gotos = nil
}

// isPanicCall reports whether e is a call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// FuncCFGs builds a CFG for every function declaration and function literal
// of a file. Literal bodies are analyzed as separate functions and excluded
// from their enclosing function's graph.
func FuncCFGs(f *ast.File) []*CFG {
	var out []*CFG
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, BuildCFG(funcDisplayName(fd), fd.Pos(), fd.Body))
		// Function literals nested anywhere inside (including in other
		// literals) each get their own graph.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, BuildCFG(funcDisplayName(fd)+".func", lit.Pos(), lit.Body))
			}
			return true
		})
	}
	return out
}

// funcDisplayName renders a function declaration name with its receiver.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(*" + id.Name + ")." + fd.Name.Name
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		if id, ok := idx.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	}
	return fd.Name.Name
}
