package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the resource-balance engine shared by pinbalance and
// lockbalance: a forward may-leak dataflow over the CFG that tracks, per
// acquisition site, whether the resource is still held, whether a deferred
// release covers it, and whether its identifying error variable still
// carries acquisition-failure information. The engine understands the three
// idioms that make naive matching wrong:
//
//   - error-conditional acquisition: after `pg, err := bp.Fetch(f, p)`, the
//     pin exists only where err == nil; the `if err != nil { return }` branch
//     exits without a pin, and the engine drops the resource along that edge
//     (condIdent refinement).
//   - defer: `defer bp.Unpin(f, p, false)` (or a deferred closure releasing
//     inside) satisfies every exit reachable after the defer executes,
//     including error returns and explicit panics.
//   - escape: a resource stored into a struct field (`it.cur = pg`), captured
//     by a function literal, or returned transfers its release obligation to
//     another function (iterator Close chains, audited by closechain and the
//     runtime leak audit); the local function is off the hook.
//
// At the function's Exit block, any site still held with no deferred release
// and no escape is reported: some path out of the function leaks it.

// balFlags is the per-site dataflow state.
type balFlags uint8

const (
	// balHeld: the resource is (may be) held on this path.
	balHeld balFlags = 1 << iota
	// balDeferred: a deferred release covering this site has been registered
	// on this path.
	balDeferred
	// balErrValid: the site's error variable still reflects the acquisition
	// outcome (cleared when the variable is reassigned).
	balErrValid
	// balValValid: the site's value variable still names the resource.
	balValValid
	// balPidValid: the site's id variable (NewPage's PageID) is still live
	// for release-argument matching.
	balPidValid
)

// balSite is one static acquisition site plus its flow-insensitive state.
type balSite struct {
	pos token.Pos
	// callee is the acquiring method name, for messages.
	callee string
	// key identifies the resource for release matching (printed argument
	// list for pins, lock kind + printed receiver for mutexes); "" unknown.
	key string
	// clashKey groups sites that contend for the same underlying resource
	// (double-acquire detection); "" disables the check for this site.
	clashKey string
	// val, pid, err are the result variables bound at the acquisition.
	val, pid, err types.Object
	// shared marks shared acquisitions (RLock): re-acquiring shared-over-
	// shared is legal and not reported.
	shared bool
	// escaped: the resource's obligation moved out of this function.
	escaped bool
	// reportedLeak / reportedDouble dedupe diagnostics per site.
	reportedLeak   bool
	reportedDouble bool
}

// balFact maps live acquisition sites to their path state.
type balFact map[*balSite]balFlags

func (f balFact) clone() balFact {
	out := make(balFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// balLattice is the may-leak join: held accumulates across paths (a leak on
// any path is a leak), while deferred and the variable-validity bits must
// hold on every path to be trusted.
type balLattice struct{}

func (balLattice) Entry() balFact { return balFact{} }

func (balLattice) Join(a, b balFact) balFact {
	out := make(balFact, len(a)+len(b))
	for s, fa := range a {
		if fb, ok := b[s]; ok {
			held := (fa | fb) & balHeld
			must := fa & fb & (balDeferred | balErrValid | balValValid | balPidValid)
			out[s] = held | must
		} else {
			out[s] = fa
		}
	}
	for s, fb := range b {
		if _, ok := a[s]; !ok {
			out[s] = fb
		}
	}
	return out
}

func (balLattice) Equal(a, b balFact) bool {
	if len(a) != len(b) {
		return false
	}
	for s, fa := range a {
		if fb, ok := b[s]; !ok || fa != fb {
			return false
		}
	}
	return true
}

// acquireSpec describes one recognized acquisition call.
type acquireSpec struct {
	callee   string
	key      string
	clashKey string
	// valIdx/pidIdx/errIdx locate the value, id, and error results in the
	// call's assignment (-1 = none).
	valIdx, pidIdx, errIdx int
	shared                 bool
}

// releaseSpec describes one recognized release call.
type releaseSpec struct {
	key string
	// idArg, when non-nil, is the argument identifying the resource (Unpin's
	// page argument), matched against sites' pid/val variables.
	idArg ast.Expr
}

// balanceRules parameterizes the engine for one resource family.
type balanceRules struct {
	// noun names the resource in diagnostics ("pinned page", "lock").
	noun string
	// releaseHint completes the fix suggestion ("Unpin", "Unlock").
	releaseHint string
	// classifyAcquire returns the spec when call acquires the resource.
	classifyAcquire func(pkg *Package, call *ast.CallExpr) (acquireSpec, bool)
	// classifyRelease returns the spec when call releases the resource.
	classifyRelease func(pkg *Package, call *ast.CallExpr) (releaseSpec, bool)
	// doubleAcquire enables re-acquire-while-held reporting (locks).
	doubleAcquire bool
}

// balanceEngine runs one function's analysis.
type balanceEngine struct {
	pass  *Pass
	rules *balanceRules
	cfg   *CFG
	// sites gives every acquisition call a stable identity across the
	// solver's repeated transfer evaluations.
	sites map[token.Pos]*balSite
}

// runBalance applies the rules to every function (and function literal) of
// the package.
func runBalance(pass *Pass, rules *balanceRules) error {
	for _, f := range pass.Pkg.Files {
		for _, cfg := range FuncCFGs(f) {
			eng := &balanceEngine{pass: pass, rules: rules, cfg: cfg, sites: map[token.Pos]*balSite{}}
			res := ForwardSolve[balFact](cfg, balLattice{}, eng.transfer, eng.refine)
			if !res.Converged {
				continue // bail without reporting: no flapping positives
			}
			exitFact, ok := res.In[cfg.Exit]
			if !ok {
				continue // no path reaches the exit (e.g. infinite loop)
			}
			leaked := make([]*balSite, 0, len(exitFact))
			for s, flags := range exitFact {
				if flags&balHeld != 0 && flags&balDeferred == 0 && !s.escaped && !s.reportedLeak {
					s.reportedLeak = true
					leaked = append(leaked, s)
				}
			}
			sort.Slice(leaked, func(i, j int) bool { return leaked[i].pos < leaked[j].pos })
			for _, s := range leaked {
				pass.Reportf(s.pos,
					"%s acquired by %s is not released on every path out of %s; call %s on all paths or defer it (a deferred %s covers error returns and panics)",
					rules.noun, s.callee, cfg.Name, rules.releaseHint, rules.releaseHint)
			}
		}
	}
	return nil
}

// transfer interprets one block's nodes over the fact.
func (eng *balanceEngine) transfer(b *Block, in balFact) balFact {
	fact := in.clone()
	for _, n := range b.Nodes {
		eng.node(n, fact)
	}
	return fact
}

// node applies one statement's (or guard expression's) effects.
func (eng *balanceEngine) node(n ast.Node, fact balFact) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		eng.assign(n.Lhs, n.Rhs, fact)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) == 0 {
				continue
			}
			lhs := make([]ast.Expr, len(vs.Names))
			for i, id := range vs.Names {
				lhs[i] = id
			}
			eng.assign(lhs, vs.Values, fact)
		}
	case *ast.DeferStmt:
		eng.deferred(n.Call, fact)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			eng.escapeIfTracked(r, fact)
		}
	case *ast.RangeStmt:
		// The head node rebinds Key/Value each iteration.
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				eng.invalidate(eng.obj(id), fact)
			}
		}
		eng.scan(n.X, fact)
	default:
		if nn, ok := n.(ast.Node); ok {
			eng.scan(nn, fact)
		}
	}
}

// assign handles acquisition binding, variable invalidation, and escapes.
func (eng *balanceEngine) assign(lhs, rhs []ast.Expr, fact balFact) {
	var acquired *balSite
	// Form 1: v..., err := acquire(...).
	if len(rhs) == 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			if spec, ok := eng.rules.classifyAcquire(eng.pass.Pkg, call); ok {
				acquired = eng.acquire(call, spec, lhs, fact)
			}
		}
	}
	// Rebinding any tracked variable ends its association with older sites.
	for _, l := range lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
			eng.invalidateExcept(eng.obj(id), acquired, fact)
		}
	}
	// Escapes: a tracked value flowing into a non-local location.
	if len(lhs) == len(rhs) {
		for i := range rhs {
			if acquired != nil && i < len(rhs) && rhs[i] == nil {
				continue
			}
			if _, isIdent := ast.Unparen(lhs[i]).(*ast.Ident); !isIdent {
				eng.escapeIfTracked(rhs[i], fact)
			} else {
				// Plain-ident aliasing (pg2 := pg) is rare; treating the
				// alias as an escape loses the leak check, so only non-ident
				// destinations escape. Scan for releases inside the rhs.
				eng.scanCallsOnly(rhs[i], fact)
			}
		}
	} else {
		for _, r := range rhs {
			if acquired == nil || len(rhs) != 1 {
				eng.scanCallsOnly(r, fact)
			}
		}
	}
}

// acquire registers (or re-enters) an acquisition site and returns it.
func (eng *balanceEngine) acquire(call *ast.CallExpr, spec acquireSpec, lhs []ast.Expr, fact balFact) *balSite {
	site, ok := eng.sites[call.Pos()]
	if !ok {
		site = &balSite{
			pos:      call.Pos(),
			callee:   spec.callee,
			key:      spec.key,
			clashKey: spec.clashKey,
			shared:   spec.shared,
		}
		bind := func(idx int) types.Object {
			if idx < 0 || idx >= len(lhs) {
				return nil
			}
			if id, ok := ast.Unparen(lhs[idx]).(*ast.Ident); ok && id.Name != "_" {
				return eng.obj(id)
			}
			// Acquisition assigned straight into a field (it.cur, err =
			// Fetch(...)): the resource escapes at birth.
			if idx == spec.valIdx {
				site.escaped = true
			}
			return nil
		}
		site.val = bind(spec.valIdx)
		site.pid = bind(spec.pidIdx)
		site.err = bind(spec.errIdx)
		eng.sites[call.Pos()] = site
	}
	if eng.rules.doubleAcquire && !site.reportedDouble && site.clashKey != "" {
		for other, flags := range fact {
			if flags&balHeld == 0 || other.clashKey != site.clashKey {
				continue
			}
			if site.shared && other.shared {
				continue // RLock over RLock is legal
			}
			site.reportedDouble = true
			pos := site.pos
			eng.pass.Reportf(pos,
				"%s %s may be acquired here while already held (acquired at line %d and not yet released on some path); possible self-deadlock",
				eng.rules.noun, site.clashKey, eng.pass.Pkg.Fset.Position(other.pos).Line)
			break
		}
	}
	flags := balHeld
	if site.err != nil {
		flags |= balErrValid
	}
	if site.val != nil {
		flags |= balValValid
	}
	if site.pid != nil {
		flags |= balPidValid
	}
	fact[site] = flags
	return site
}

// deferred registers a deferred call's releases against held sites.
func (eng *balanceEngine) deferred(call *ast.CallExpr, fact balFact) {
	apply := func(c *ast.CallExpr) {
		if spec, ok := eng.rules.classifyRelease(eng.pass.Pkg, c); ok {
			eng.release(spec, fact, true)
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// defer func() { ... release ... }(): every release inside counts.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				apply(c)
			}
			return true
		})
		return
	}
	apply(call)
}

// release clears (or defers) held sites matching the spec: first by key,
// then by identifier argument, and as a last resort the single held site.
func (eng *balanceEngine) release(spec releaseSpec, fact balFact, asDefer bool) {
	mark := func(s *balSite) {
		if asDefer {
			fact[s] |= balDeferred
		} else {
			fact[s] &^= balHeld
		}
	}
	matched := false
	for s, flags := range fact {
		if flags&balHeld == 0 && asDefer == false {
			continue
		}
		if s.key != "" && spec.key != "" && s.key == spec.key {
			mark(s)
			matched = true
		}
	}
	if matched {
		return
	}
	// Identifier match: Unpin(file, pid, ...) releasing a NewPage site.
	if id, ok := ast.Unparen(spec.idArg).(*ast.Ident); ok && spec.idArg != nil {
		obj := eng.obj(id)
		if obj != nil {
			for s, flags := range fact {
				if (s.pid == obj && flags&balPidValid != 0) || (s.val == obj && flags&balValValid != 0) {
					mark(s)
					matched = true
				}
			}
		}
	}
	if matched {
		return
	}
	// Single-held fallback: an unambiguous release of the only outstanding
	// resource — but only when one side has no key to match on (NewPage has
	// no static page id). When both sides carry keys that failed to match,
	// the mismatch is the finding (RLock released by Unlock, wrong page),
	// not a spelling variant to paper over.
	var only *balSite
	for s, flags := range fact {
		if flags&balHeld != 0 {
			if only != nil {
				return // ambiguous; leave the fact alone
			}
			only = s
		}
	}
	if only != nil && (only.key == "" || spec.key == "") {
		mark(only)
	}
}

// scan walks a statement or expression subtree applying call effects and
// escape detection. Function-literal bodies are opaque for control flow but
// capturing a tracked value in one transfers its obligation (escape).
func (eng *balanceEngine) scan(root ast.Node, fact balFact) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			eng.escapeCaptures(n, fact)
			return false
		case *ast.CallExpr:
			eng.call(n, fact)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				eng.escapeIfTracked(n.X, fact)
			}
		default:
		}
		return true
	})
}

// scanCallsOnly applies call effects without treating the expression's
// identifiers as escaping (used for rhs expressions feeding plain locals).
func (eng *balanceEngine) scanCallsOnly(root ast.Node, fact balFact) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			eng.escapeCaptures(n, fact)
			return false
		case *ast.CallExpr:
			eng.call(n, fact)
		default:
		}
		return true
	})
}

// call applies one call's acquire/release effect.
func (eng *balanceEngine) call(call *ast.CallExpr, fact balFact) {
	if spec, ok := eng.rules.classifyRelease(eng.pass.Pkg, call); ok {
		eng.release(spec, fact, false)
		return
	}
	if spec, ok := eng.rules.classifyAcquire(eng.pass.Pkg, call); ok {
		// Result-discarding acquisition (bare `bp.Fetch(f, p)`): no bound
		// variables, but the pin is real and must still be released.
		eng.acquire(call, spec, nil, fact)
	}
}

// escapeIfTracked marks sites whose value variable appears anywhere in e.
func (eng *balanceEngine) escapeIfTracked(e ast.Expr, fact balFact) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			eng.escapeCaptures(lit, fact)
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := eng.obj(id)
		if obj == nil {
			return true
		}
		for s, flags := range fact {
			if s.val == obj && flags&balValValid != 0 {
				s.escaped = true
			}
		}
		return true
	})
}

// escapeCaptures marks tracked values referenced inside a function literal.
func (eng *balanceEngine) escapeCaptures(lit *ast.FuncLit, fact balFact) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := eng.obj(id)
		if obj == nil {
			return true
		}
		for s, flags := range fact {
			if s.val == obj && flags&balValValid != 0 {
				s.escaped = true
			}
		}
		return true
	})
}

// invalidate clears variable associations with obj on every site.
func (eng *balanceEngine) invalidate(obj types.Object, fact balFact) {
	eng.invalidateExcept(obj, nil, fact)
}

// invalidateExcept clears associations with obj on every site but keep.
func (eng *balanceEngine) invalidateExcept(obj types.Object, keep *balSite, fact balFact) {
	if obj == nil {
		return
	}
	for s, flags := range fact {
		if s == keep {
			continue
		}
		if s.err == obj {
			fact[s] = flags &^ balErrValid
			flags = fact[s]
		}
		if s.val == obj {
			fact[s] = flags &^ balValValid
			flags = fact[s]
		}
		if s.pid == obj {
			fact[s] = flags &^ balPidValid
		}
	}
}

// refine drops acquisitions along their failure edges: on an edge taken only
// when the site's error variable is non-nil, the acquisition never happened.
func (eng *balanceEngine) refine(e *Edge, f balFact) balFact {
	id, isNil, ok := condIdent(e)
	if !ok {
		return f
	}
	obj := eng.obj(id)
	if obj == nil {
		return f
	}
	var out balFact
	for s, flags := range f {
		if !isNil && flags&balErrValid != 0 && s.err == obj {
			if out == nil {
				out = f.clone()
			}
			delete(out, s)
		}
	}
	if out == nil {
		return f
	}
	return out
}

// obj resolves an identifier to its object (definition or use).
func (eng *balanceEngine) obj(id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	info := eng.pass.Pkg.Info
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// methodCallInfo resolves a call of the form recv.Method(...) to the method
// name and the name of its declared receiver type ("" when the call is not a
// method call). The receiver type is the method's own, so promoted methods
// of embedded fields resolve to the embedded type (sync.Mutex).
func methodCallInfo(pkg *Package, call *ast.CallExpr) (method, recvType string, sel *ast.SelectorExpr) {
	s, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", nil
	}
	obj := pkg.Info.Uses[s.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", "", nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", "", nil
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return "", "", nil
	}
	return fn.Name(), named.Obj().Name(), s
}

// argKey renders the first n arguments as a resource identity string.
func argKey(args []ast.Expr, n int) string {
	if len(args) < n {
		n = len(args)
	}
	parts := make([]string, 0, n)
	for _, a := range args[:n] {
		parts = append(parts, types.ExprString(a))
	}
	return strings.Join(parts, "\x00")
}
