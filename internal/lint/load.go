package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed, type-checked package of the repository.
type Package struct {
	// Path is the import path (module path + relative directory).
	Path string
	// Dir is the absolute directory holding the package's files.
	Dir string
	// Fset is the file set shared by every package of one load.
	Fset *token.FileSet
	// Files are the parsed non-test source files, sorted by filename.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries expression types, definitions, uses, and selections.
	Info *types.Info
}

// LoadRepo parses and type-checks every non-test package under root (a
// directory containing go.mod), resolving intra-module imports from source
// and standard-library imports through the stdlib source importer. No
// external tooling and no x/tools — parser + types only.
func LoadRepo(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	byPath := map[string]*Package{}
	var order []string
	for _, dir := range dirs {
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := module
		if rel != "." {
			path = module + "/" + filepath.ToSlash(rel)
		}
		byPath[path] = &Package{Path: path, Dir: dir, Fset: fset, Files: files}
		order = append(order, path)
	}

	sorted, err := topoSort(module, byPath, order)
	if err != nil {
		return nil, err
	}

	std := importer.ForCompiler(fset, "source", nil)
	imp := &repoImporter{module: module, pkgs: byPath, std: std}
	for _, path := range sorted {
		pkg := byPath[path]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, pkg.Files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
		}
		pkg.Types, pkg.Info = tpkg, info
	}

	out := make([]*Package, 0, len(sorted))
	for _, path := range sorted {
		out = append(out, byPath[path])
	}
	return out, nil
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mod := strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(mod); err == nil {
				mod = unq
			}
			if mod != "" {
				return mod, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// packageDirs lists every directory under root that may hold a package,
// skipping VCS metadata, testdata, and underscore/dot directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// parseDir parses the non-test .go files of one directory (nil if none).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// topoSort orders the module's packages so every package follows its
// intra-module dependencies.
func topoSort(module string, byPath map[string]*Package, order []string) ([]string, error) {
	deps := map[string][]string{}
	for _, path := range order {
		for _, f := range byPath[path].Files {
			for _, spec := range f.Imports {
				ip, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if ip == module || strings.HasPrefix(ip, module+"/") {
					deps[path] = append(deps[path], ip)
				}
			}
		}
	}
	sort.Strings(order)
	var sorted []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		for _, d := range deps[path] {
			if _, ok := byPath[d]; !ok {
				return fmt.Errorf("lint: %s imports %s, which is not in the module", path, d)
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[path] = 2
		sorted = append(sorted, path)
		return nil
	}
	for _, path := range order {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return sorted, nil
}

// repoImporter resolves intra-module imports to the packages type-checked by
// LoadRepo and delegates everything else (the standard library) to the
// stdlib source importer.
type repoImporter struct {
	module string
	pkgs   map[string]*Package
	std    types.Importer
}

// Import implements types.Importer.
func (r *repoImporter) Import(path string) (*types.Package, error) {
	if path == r.module || strings.HasPrefix(path, r.module+"/") {
		pkg, ok := r.pkgs[path]
		if !ok || pkg.Types == nil {
			return nil, fmt.Errorf("lint: package %s not loaded (import cycle or missing dir)", path)
		}
		return pkg.Types, nil
	}
	return r.std.Import(path)
}
