package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// nodeContractPathFragment restricts nodecontract to the plan package, where
// the Node interface and its implementations live.
var nodeContractPathFragment = "internal/plan"

// NodeContractAnalyzer enforces the plan.Node implementation contract:
//
//  1. Every struct type implementing the Node shape (methods Cols, Children,
//     Card, Cost, Describe) carries a doc comment — plan nodes are the
//     optimizer/executor interchange format and EXPLAIN's vocabulary, so an
//     undocumented node is an undocumented file format.
//  2. Cols() must not build its result by appending onto another node's
//     Cols() slice: append may write through to the child's backing array,
//     silently corrupting a sibling's column list (use a fresh slice, a
//     stored field, or plain delegation; plan.ConcatCols does the copy
//     correctly).
var NodeContractAnalyzer = &Analyzer{
	Name: "nodecontract",
	Doc:  "flags plan.Node impls missing doc comments or aliasing child Cols() slices",
	Run:  runNodeContract,
}

func runNodeContract(pass *Pass) error {
	if !strings.Contains(pass.Pkg.Path, nodeContractPathFragment) {
		return nil
	}
	pkg := pass.Pkg
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			continue
		}
		if !isNodeShape(named) {
			continue
		}
		spec, doc := typeSpecWithDoc(pkg, name)
		if spec != nil && doc == "" {
			pass.Reportf(spec.Pos(),
				"plan node %s has no doc comment; document the operator's semantics", name)
		}
		if cols := methodDecl(pkg, name, "Cols"); cols != nil {
			checkColsAliasing(pass, name, cols)
		}
	}
	return nil
}

// isNodeShape reports whether the type's pointer method set carries the
// plan.Node contract's method names with plausible shapes (Cols returning a
// slice, Children returning a slice, Card/Cost returning a float).
func isNodeShape(t types.Type) bool {
	ms := types.NewMethodSet(types.NewPointer(t))
	need := map[string]bool{"Cols": false, "Children": false, "Card": false, "Cost": false, "Describe": false}
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok {
			continue
		}
		sig := fn.Type().(*types.Signature)
		switch fn.Name() {
		case "Cols", "Children":
			if sig.Results().Len() == 1 {
				if _, ok := sig.Results().At(0).Type().Underlying().(*types.Slice); ok {
					need[fn.Name()] = true
				}
			}
		case "Card", "Cost":
			if sig.Results().Len() == 1 {
				if b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
					need[fn.Name()] = true
				}
			}
		case "Describe":
			need["Describe"] = true
		}
	}
	for _, ok := range need {
		if !ok {
			return false
		}
	}
	return true
}

// typeSpecWithDoc finds a named type's TypeSpec and its effective doc
// comment (the spec's own doc, or the enclosing GenDecl's for single-spec
// declarations).
func typeSpecWithDoc(pkg *Package, name string) (*ast.TypeSpec, string) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				doc := ts.Doc.Text()
				if doc == "" && len(gd.Specs) == 1 {
					doc = gd.Doc.Text()
				}
				return ts, strings.TrimSpace(doc)
			}
		}
	}
	return nil, ""
}

// checkColsAliasing flags `append(x.Cols(), …)` patterns inside a Cols
// method body.
func checkColsAliasing(pass *Pass, typeName string, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" || len(call.Args) == 0 {
			return true
		}
		if exprCallsCols(call.Args[0]) {
			pass.Reportf(call.Pos(),
				"%s.Cols appends onto a child's Cols() slice; append may alias the child's backing array — copy into a fresh slice (see plan.ConcatCols)", typeName)
		}
		return true
	})
}

// exprCallsCols reports whether the expression contains a `.Cols()` call.
func exprCallsCols(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Cols" {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
