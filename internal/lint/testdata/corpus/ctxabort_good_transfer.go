//corpus:path example.com/internal/exec

// Package corpus12 holds the fixed twins of ctxabort_bad_transfer.go: the
// executor's two sanctioned shapes for charging inside transfer loops —
// count locally and charge once after the loop, or keep the charge in the
// loop with the abort check on the same cadence. Both are silent.
package corpus12

type env struct{ aborted bool }

func (e *env) ChargeBloomAdd(n int)   {}
func (e *env) ChargeBloomProbe(n int) {}
func (e *env) checkAbort() error      { return nil }

// buildFilter accumulates the adds in a local and charges once after the
// loop — the loop body contains no charge at all.
func (e *env) buildFilter(keys []uint64) {
	added := 0
	for range keys {
		added++
	}
	e.ChargeBloomAdd(added)
}

// probeFilters keeps the per-probe charge but observes the abort check on
// the loop's own cadence, so cancellation interrupts the scan.
func (e *env) probeFilters(hs []uint64, keep []bool) error {
	for i := range hs {
		if i%1024 == 0 {
			if err := e.checkAbort(); err != nil {
				return err
			}
		}
		keep[i] = hs[i]%2 == 0
		e.ChargeBloomProbe(1)
	}
	return nil
}
