//corpus:path example.com/internal/exec

// Package corpus14 holds the fixed twins of profileclean_bad_transfer.go:
// the probe scratch grows once under a capacity guard and is reused on the
// steady state, so Next/NextBatch stay allocation-free per call.
package corpus14

type row []int64

type probeScanIter struct {
	hs   []uint64
	keep []bool
	pos  int
}

// Next reuses the hash buffer, growing it only when too small.
func (s *probeScanIter) Next() (row, bool, error) {
	if cap(s.hs) < 256 {
		s.hs = make([]uint64, 256)
	}
	s.pos++
	return nil, false, nil
}

// NextBatch grows the keep mask under the same guard and reslices otherwise.
func (s *probeScanIter) NextBatch(dst []row) (int, error) {
	if cap(s.keep) < len(dst) {
		s.keep = make([]bool, len(dst))
	}
	s.keep = s.keep[:len(dst)]
	return 0, nil
}
