// Package corpus9 seeds suppression-audit violations. The whole suite runs
// over this file: the errdrop findings give the directives something real to
// suppress, and the audit flags the directives that are reasonless, stale,
// or aimed at analyzers that do not exist. Fixed twins live in
// suppress_good.go.
package corpus9

func mightFail() error { return nil }

// noReason suppresses a live finding but offers no justification: the drop
// itself stays silenced, the missing reason is the diagnostic.
func noReason() {
	// want-below "pplint:ignore without a reason"
	//pplint:ignore errdrop
	mightFail()
}

// staleDirective excuses a finding that no longer exists: the error below is
// handled, so the directive suppresses nothing and only hides regressions.
func staleDirective() {
	// want-below "stale pplint:ignore"
	//pplint:ignore errdrop handled via the if below, directive left behind by an old revision
	if err := mightFail(); err != nil {
		_ = err.Error()
	}
}

// typoDirective names an analyzer that does not exist, so the drop it meant
// to excuse is reported anyway — both the typo and the drop are findings.
func typoDirective() {
	// want-below "unknown analyzer"
	//pplint:ignore errdorp transient best-effort flush
	mightFail() // want "silently discarded"
}
