//corpus:path example.com/internal/exec

// Package corpus18 holds the fixed twins of profileclean_bad_topk.go: the
// heap storage grows once under a capacity guard (or comes from the row
// pool at fill time) and is resliced on reuse, so Next/NextBatch stay
// allocation-free per call.
package corpus18

type row []int64

type heapIter struct {
	heap []row
	out  []row
	pos  int
}

// Next reuses the heap backing, growing it only when too small.
func (h *heapIter) Next() (row, bool, error) {
	if cap(h.heap) < 64 {
		h.heap = make([]row, 0, 64)
	}
	h.heap = h.heap[:0]
	h.pos++
	return nil, false, nil
}

// NextBatch grows the emission scratch under the same guard and reslices
// otherwise.
func (h *heapIter) NextBatch(dst []row) (int, error) {
	if cap(h.out) < len(dst) {
		h.out = make([]row, len(dst))
	}
	h.out = h.out[:len(dst)]
	return 0, nil
}
