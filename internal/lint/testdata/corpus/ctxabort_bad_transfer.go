//corpus:path example.com/internal/exec

// Package corpus11 seeds ctxabort violations in predicate-transfer shapes:
// the filter-build scan loop and the batched probe loop charging cost per
// iteration with no reachable abort check — exactly the loops that would
// keep a canceled query scanning and charging through the whole prepass.
// Fixed twins live in ctxabort_good_transfer.go.
package corpus11

type env struct{ aborted bool }

func (e *env) ChargeBloomAdd(n int)   {}
func (e *env) ChargeBloomProbe(n int) {}
func (e *env) checkAbort() error      { return nil }

// buildFilter inserts every surviving key, charging each add inside the scan
// loop without ever consulting the abort check.
func (e *env) buildFilter(keys []uint64) {
	for range keys { // want "without a reachable checkAbort"
		e.ChargeBloomAdd(1)
	}
}

// probeFilters tests each buffered hash against the received filters,
// charging per probe; a canceled query keeps probing to the end of the heap.
func (e *env) probeFilters(hs []uint64, keep []bool) {
	for i := range hs { // want "without a reachable checkAbort"
		keep[i] = hs[i]%2 == 0
		e.ChargeBloomProbe(1)
	}
}
