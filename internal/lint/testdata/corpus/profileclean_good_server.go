//corpus:path example.com/internal/exec

// Package corpus22 holds the fixed twins of profileclean_bad_server.go:
// the session stream's hot path reuses its buffers, allocating only under
// the grow-once guard (when a reused buffer is too small), never on the
// steady state. Both methods are silent.
package corpus22

type row []int64

type sessionStreamIter struct {
	buf  []int64
	cols []bool
	pos  int
}

// Next reuses the iterator's row buffer, growing it only when a wider row
// arrives.
func (s *sessionStreamIter) Next() (row, bool, error) {
	if cap(s.buf) < 8 {
		s.buf = make([]int64, 8)
	}
	s.buf = s.buf[:8]
	s.pos++
	return nil, false, nil
}

// NextBatch builds the column mask once and keeps it across calls.
func (s *sessionStreamIter) NextBatch(dst []row) (int, error) {
	if s.cols == nil {
		s.cols = []bool{true, true}
	}
	return 0, nil
}
