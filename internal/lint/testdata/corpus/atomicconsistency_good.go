// Package corpus6 holds the fixed twins of atomicconsistency_bad.go: fields
// touched by sync/atomic are touched atomically everywhere, and typed atomic
// values are only addressed or used as method receivers. The analyzer must
// be silent on this file.
package corpus6

import "sync/atomic"

// counters is accessed atomically at every site.
type counters struct {
	hits  int64
	total int64
}

func (c *counters) record() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) snapshot() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) reset() {
	atomic.StoreInt64(&c.hits, 0)
	atomic.StoreInt64(&c.total, 0)
}

// typed uses method-style atomics through the original word only.
type typed struct {
	n atomic.Int64
}

func load(t *typed) int64 {
	return t.n.Load()
}

func bump(t *typed) {
	t.n.Add(1)
}

// byPointer passes the word's address, not a copy.
func byPointer(t *typed) {
	consume(&t.n)
}

func consume(v *atomic.Int64) { v.Load() }

// plainOnly is never touched atomically, so plain access is fine.
type plainOnly struct {
	n int64
}

func (p *plainOnly) bump() {
	p.n++
}
