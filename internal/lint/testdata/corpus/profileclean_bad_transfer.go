//corpus:path example.com/internal/exec

// Package corpus13 seeds profileclean violations in predicate-transfer
// shapes: a scan iterator that allocates its probe scratch (hash buffer,
// keep mask) inside Next/NextBatch on every call, regressing the hot path's
// allocation-free contract. Fixed twins live in
// profileclean_good_transfer.go.
package corpus13

type row []int64

type probeScanIter struct {
	hs   []uint64
	keep []bool
	pos  int
}

// Next allocates a fresh hash buffer per row — per-call garbage on the
// default path.
func (s *probeScanIter) Next() (row, bool, error) {
	hs := make([]uint64, 256) // want "allocates on every call"
	_ = hs
	s.pos++
	return nil, false, nil
}

// NextBatch rebuilds the keep mask as a literal on every batch.
func (s *probeScanIter) NextBatch(dst []row) (int, error) {
	s.keep = []bool{} // want "allocates on every call"
	return 0, nil
}
