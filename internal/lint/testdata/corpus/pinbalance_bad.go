//corpus:path example.com/internal/storage

// Package corpus seeds pin-leak violations: every function here loses a
// pinned page on at least one path. Fixed twins live in pinbalance_good.go.
package corpus

type FileID uint32
type PageID uint32
type Page struct{}
type BufferPool struct{}

func (b *BufferPool) Fetch(f FileID, p PageID) (*Page, error) { return &Page{}, nil }
func (b *BufferPool) NewPage(f FileID) (PageID, *Page, error) { return 0, &Page{}, nil }
func (b *BufferPool) Unpin(f FileID, p PageID, dirty bool)    {}

func use(pg *Page) bool { return pg != nil }

// earlyReturn leaks the pin when the predicate holds.
func earlyReturn(bp *BufferPool, f FileID, p PageID) error {
	pg, err := bp.Fetch(f, p) // want "not released on every path"
	if err != nil {
		return err
	}
	if use(pg) {
		return nil // leak: no Unpin on this path
	}
	bp.Unpin(f, p, false)
	return nil
}

// loopContinue leaks the pin on iterations that continue early.
func loopContinue(bp *BufferPool, f FileID, n int) {
	for i := 0; i < n; i++ {
		pg, err := bp.Fetch(f, PageID(i)) // want "not released on every path"
		if err != nil {
			continue
		}
		if !use(pg) {
			continue // leak: skips the Unpin below
		}
		bp.Unpin(f, PageID(i), false)
	}
}

// deferInBranch only registers the deferred Unpin on one branch; the other
// branch's exits leak.
func deferInBranch(bp *BufferPool, f FileID, p PageID, cond bool) error {
	pg, err := bp.Fetch(f, p) // want "not released on every path"
	if err != nil {
		return err
	}
	if cond {
		defer bp.Unpin(f, p, false)
	}
	use(pg)
	return nil
}

// panicPath leaks the pin when the explicit panic fires.
func panicPath(bp *BufferPool, f FileID, p PageID) {
	pg, err := bp.Fetch(f, p) // want "not released on every path"
	if err != nil {
		return
	}
	if !use(pg) {
		panic("corrupt page") // leak: pin still held when unwinding
	}
	bp.Unpin(f, p, false)
}

// newPageLeak drops the page allocated on the error-free path.
func newPageLeak(bp *BufferPool, f FileID) (PageID, error) {
	pid, pg, err := bp.NewPage(f) // want "not released on every path"
	if err != nil {
		return 0, err
	}
	use(pg)
	return pid, nil // leak: NewPage pins, nothing unpins pid
}
