//corpus:path example.com/internal/storage

// Package corpusfb2 holds the fixed twins of chargeonce_badfeedback.go: the
// feedback store's harvest/refresh/promote/flush paths each check the fault
// injector ahead of exactly one charge per transfer, and failed checks
// return before any charge. The analyzer must be silent on this file.
package corpusfb2

import "sync/atomic"

type FileID uint32
type PageID uint32

type Accountant struct{ reads atomic.Int64 }

func (a *Accountant) RecordRead(f FileID, p PageID) { a.reads.Add(1) }
func (a *Accountant) RecordRandRead()               { a.reads.Add(1) }
func (a *Accountant) RecordWrite()                  { a.reads.Add(1) }

type FaultInjector struct{}

func (fi *FaultInjector) beforeRead(f FileID, p PageID) error  { return nil }
func (fi *FaultInjector) beforeWrite(f FileID, p PageID) error { return nil }

type obs struct {
	page PageID
	err  float64
}

type fbstore struct {
	acct    *Accountant
	faults  atomic.Pointer[FaultInjector]
	pending []obs
}

// harvestNode charges the statistics page exactly once, behind the check.
func (s *fbstore) harvestNode(f FileID, p PageID) error {
	if fi := s.faults.Load(); fi != nil {
		if err := fi.beforeRead(f, p); err != nil {
			return err
		}
	}
	s.acct.RecordRead(f, p)
	return nil
}

// refreshStats reads the old and new catalog page as two distinct transfers,
// each checked and charged once.
func (s *fbstore) refreshStats(f FileID, p PageID) error {
	if fi := s.faults.Load(); fi != nil {
		if err := fi.beforeRead(f, p); err != nil {
			return err
		}
		if err := fi.beforeRead(f, p+1); err != nil {
			return err
		}
	}
	s.acct.RecordRead(f, p)
	s.acct.RecordRead(f, p+1)
	return nil
}

// promotePending returns the failed check before the write charge.
func (s *fbstore) promotePending(f FileID, p PageID) error {
	if fi := s.faults.Load(); fi != nil {
		if err := fi.beforeWrite(f, p); err != nil {
			return err
		}
	}
	s.acct.RecordWrite()
	return nil
}

// peekPending decides whether there is anything to flush before touching the
// page at all: no transfer on the empty path, so nothing to charge.
func (s *fbstore) peekPending(f FileID, p PageID) error {
	if len(s.pending) == 0 {
		return nil // no read was issued: no charge owed
	}
	if fi := s.faults.Load(); fi != nil {
		if err := fi.beforeRead(f, p); err != nil {
			return err
		}
	}
	s.acct.RecordRead(f, p)
	return nil
}

// countObservation is pure in-memory accounting of a harvested observation:
// the random-read charge for the statistics block it samples carries no
// dominance obligation when no injector is in scope.
func (s *fbstore) countObservation(o obs) {
	if s.acct != nil && o.err > 1 {
		s.acct.RecordRandRead()
	}
}
