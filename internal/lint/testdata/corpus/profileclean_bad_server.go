//corpus:path example.com/internal/exec

// Package corpus21 seeds profileclean violations in server result-stream
// shapes: the iterator feeding a session's response builds a fresh row
// buffer and a fresh column mask on every Next/NextBatch call — per-call
// garbage multiplied by every concurrent session. Fixed twins live in
// profileclean_good_server.go.
package corpus21

type row []int64

type sessionStreamIter struct {
	buf  []int64
	cols []bool
	pos  int
}

// Next allocates the response row on every call instead of reusing the
// iterator's buffer.
func (s *sessionStreamIter) Next() (row, bool, error) {
	out := make([]int64, 8) // want "allocates on every call"
	_ = out
	s.pos++
	return nil, false, nil
}

// NextBatch rebuilds the projected-column mask as a literal per batch.
func (s *sessionStreamIter) NextBatch(dst []row) (int, error) {
	s.cols = []bool{true, true} // want "allocates on every call"
	return 0, nil
}
