// Package corpus10 holds the fixed twins of suppress_bad.go: every
// directive carries a reason, names a real analyzer, and silences a live
// finding. The suite (audit included) must be silent on this file.
package corpus10

func mightFail() error { return nil }

// justified suppresses a live errdrop finding with a written reason.
func justified() {
	//pplint:ignore errdrop best-effort cache warm-up; a failure only costs a re-read
	mightFail()
}

// handled needs no directive at all: the error is propagated.
func handled() error {
	if err := mightFail(); err != nil {
		return err
	}
	return nil
}

// wildcard silences every analyzer on one line; wildcards are exempt from
// staleness (they express intent about the line) but still need the reason.
func wildcard() {
	//pplint:ignore * generated-style shim line, kept byte-identical to the exemplar
	mightFail()
}
