//corpus:path example.com/internal/pcache

// Package corpus8 holds the fixed twins of lockbalance_bad.go: every lock is
// released on every path, kinds match, and no path re-locks a held mutex.
// The analyzer must be silent on this file.
package corpus8

import "sync"

type shard struct {
	mu sync.Mutex
	m  map[string]int
}

type table struct {
	mu sync.RWMutex
	n  int
}

// deferred releases on the early return and the fallthrough alike.
func deferred(s *shard, key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.m[key]; ok {
		return v
	}
	return 0
}

// bothPaths unlocks explicitly before every exit.
func bothPaths(s *shard, key string) int {
	s.mu.Lock()
	if v, ok := s.m[key]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return 0
}

// loopBalanced releases before every continuation.
func loopBalanced(s *shard, keys []string) {
	for _, k := range keys {
		s.mu.Lock()
		if k == "" {
			s.mu.Unlock()
			continue
		}
		s.m[k] = 1
		s.mu.Unlock()
	}
}

// readSide pairs the shared kinds correctly.
func readSide(t *table) int {
	t.mu.RLock()
	v := t.n
	t.mu.RUnlock()
	return v
}

// writeSide pairs the exclusive kinds correctly, via defer.
func writeSide(t *table) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.n++
}

// twoMutexes holds two locks with correct nesting; distinct receivers do not
// trip the double-acquire check.
func twoMutexes(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// switchPaths releases in every case of a switch.
func switchPaths(s *shard, k int) {
	s.mu.Lock()
	switch k {
	case 0:
		s.mu.Unlock()
	case 1:
		s.m["a"] = 1
		s.mu.Unlock()
	default:
		s.mu.Unlock()
	}
}
