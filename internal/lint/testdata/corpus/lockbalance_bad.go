//corpus:path example.com/internal/pcache

// Package corpus7 seeds lock-balance violations: unlock misses on early
// returns, double locking, and shared/exclusive kind mismatches. Fixed twins
// live in lockbalance_good.go.
package corpus7

import "sync"

type shard struct {
	mu sync.Mutex
	m  map[string]int
}

type table struct {
	mu sync.RWMutex
	n  int
}

// unlockMiss leaves the shard locked on the early return.
func unlockMiss(s *shard, key string) int {
	s.mu.Lock() // want "not released on every path"
	if v, ok := s.m[key]; ok {
		return v // BUG: returns with the lock held
	}
	s.mu.Unlock()
	return 0
}

// doubleLock re-locks a mutex that is still held: self-deadlock.
func doubleLock(s *shard) {
	s.mu.Lock()
	s.mu.Lock() // want "already held"
	s.mu.Unlock()
	s.mu.Unlock()
}

// loopRelock can re-enter the Lock while the continue path still holds it.
func loopRelock(s *shard, keys []string) {
	for _, k := range keys {
		s.mu.Lock() // want "already held" "not released on every path"
		if k == "" {
			continue // BUG: next iteration locks again while held
		}
		s.mu.Unlock()
	}
}

// kindMismatch takes a read lock but releases the write side: a runtime
// panic, and the read lock is never released.
func kindMismatch(t *table) int {
	t.mu.RLock() // want "not released on every path"
	v := t.n
	t.mu.Unlock()
	return v
}

// deferInBranch only schedules the unlock on one branch.
func deferInBranch(s *shard, cond bool) {
	s.mu.Lock() // want "not released on every path"
	if cond {
		defer s.mu.Unlock()
	}
	s.m["x"] = 1
}
