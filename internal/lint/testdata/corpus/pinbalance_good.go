//corpus:path example.com/internal/storage

// Package corpus2 holds the fixed twins of pinbalance_bad.go: every pin is
// released on every path (or legitimately escapes), so the analyzer must be
// silent on this file.
package corpus2

type FileID uint32
type PageID uint32
type Page struct{}
type BufferPool struct{}

func (b *BufferPool) Fetch(f FileID, p PageID) (*Page, error) { return &Page{}, nil }
func (b *BufferPool) NewPage(f FileID) (PageID, *Page, error) { return 0, &Page{}, nil }
func (b *BufferPool) Unpin(f FileID, p PageID, dirty bool)    {}

func use(pg *Page) bool { return pg != nil }

// deferred covers the early return and the fallthrough exit alike.
func deferred(bp *BufferPool, f FileID, p PageID) error {
	pg, err := bp.Fetch(f, p)
	if err != nil {
		return err // no pin on the failed-Fetch path: nothing to release
	}
	defer bp.Unpin(f, p, false)
	if use(pg) {
		return nil
	}
	return nil
}

// bothBranches releases explicitly on every path.
func bothBranches(bp *BufferPool, f FileID, p PageID) error {
	pg, err := bp.Fetch(f, p)
	if err != nil {
		return err
	}
	if use(pg) {
		bp.Unpin(f, p, false)
		return nil
	}
	bp.Unpin(f, p, true)
	return nil
}

// loopBalanced unpins before every continuation of the loop body.
func loopBalanced(bp *BufferPool, f FileID, n int) {
	for i := 0; i < n; i++ {
		pg, err := bp.Fetch(f, PageID(i))
		if err != nil {
			continue
		}
		if !use(pg) {
			bp.Unpin(f, PageID(i), false)
			continue
		}
		bp.Unpin(f, PageID(i), false)
	}
}

// iter models an iterator that owns a pin across calls.
type iter struct {
	pool *BufferPool
	cur  *Page
	file FileID
	page PageID
}

// escapes transfers the release obligation to the iterator's Close: storing
// the page in a field is not a local leak.
func (it *iter) escapes(f FileID, p PageID) error {
	pg, err := it.pool.Fetch(f, p)
	if err != nil {
		return err
	}
	it.cur, it.file, it.page = pg, f, p
	return nil
}

// Close releases the pin escaped into the iterator.
func (it *iter) Close() {
	if it.cur != nil {
		it.pool.Unpin(it.file, it.page, false)
		it.cur = nil
	}
}

// newPageBalanced unpins the allocated page through its bound id.
func newPageBalanced(bp *BufferPool, f FileID) error {
	pid, pg, err := bp.NewPage(f)
	if err != nil {
		return err
	}
	use(pg)
	bp.Unpin(f, pid, true)
	return nil
}

// deferClosure releases inside a deferred function literal.
func deferClosure(bp *BufferPool, f FileID, p PageID) error {
	pg, err := bp.Fetch(f, p)
	if err != nil {
		return err
	}
	defer func() {
		bp.Unpin(f, p, false)
	}()
	use(pg)
	return nil
}

// panicChecked panics only on the no-pin path.
func panicChecked(bp *BufferPool, f FileID, p PageID) {
	pg, err := bp.Fetch(f, p)
	if err != nil {
		panic(err) // Fetch failed: no pin outstanding
	}
	defer bp.Unpin(f, p, false)
	use(pg)
}
