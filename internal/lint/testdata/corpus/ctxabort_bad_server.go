//corpus:path example.com/internal/exec

// Package corpus19 seeds ctxabort violations in server loop shapes: the
// session drain loop charging each statement it serves and the admission
// retry loop charging queue-wait cost, neither with a reachable abort
// check — exactly the loops that would keep a draining server burning
// budget for sessions whose clients are gone. Fixed twins live in
// ctxabort_good_server.go.
package corpus19

type env struct{ aborted bool }

func (e *env) ChargeStatement(n int) {}
func (e *env) ChargeQueueWait(n int) {}
func (e *env) checkAbort() error     { return nil }

// drainSession serves every queued statement of one session, charging each
// one, without ever consulting the abort check: a canceled session drains
// its whole backlog anyway.
func (e *env) drainSession(stmts []int64) int {
	served := 0
	for range stmts { // want "without a reachable checkAbort"
		e.ChargeStatement(1)
		served++
	}
	return served
}

// awaitSlot spins for an execution slot, charging each wait round; shutdown
// cannot interrupt the spin.
func (e *env) awaitSlot(tries int) bool {
	for i := 0; i < tries; i++ { // want "without a reachable checkAbort"
		e.ChargeQueueWait(1)
		if i == tries-1 {
			return true
		}
	}
	return false
}
