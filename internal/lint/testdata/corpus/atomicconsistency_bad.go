// Package corpus5 seeds atomic-consistency violations: fields updated via
// sync/atomic read or written plainly elsewhere, and typed atomic values
// copied out of their shared word. Fixed twins live in
// atomicconsistency_good.go.
package corpus5

import "sync/atomic"

// counters mixes atomic.* function access with plain access.
type counters struct {
	hits  int64
	total int64
}

// record updates hits atomically: from here on, every access must be atomic.
func (c *counters) record() {
	atomic.AddInt64(&c.hits, 1)
}

// snapshot reads hits plainly: a data race against record.
func (c *counters) snapshot() int64 {
	return c.hits // want "plain access races"
}

// reset writes hits plainly: same race on the store side.
func (c *counters) reset() {
	c.hits = 0 // want "plain access races"
	atomic.StoreInt64(&c.total, 0)
}

// typed uses method-style atomics.
type typed struct {
	n atomic.Int64
}

// copyField copies the atomic value out of the shared word.
func copyField(t *typed) int64 {
	v := t.n // want "must not be copied"
	return v.Load()
}

// passByValue hands a detached copy to the callee.
func passByValue(t *typed) {
	consume(t.n) // want "must not be copied"
}

func consume(v atomic.Int64) { v.Load() }

// returnByValue returns a detached copy.
func returnByValue(t *typed) atomic.Int64 {
	return t.n // want "must not be copied"
}
