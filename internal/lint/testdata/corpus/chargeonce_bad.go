//corpus:path example.com/internal/storage

// Package corpus3 seeds accounting violations: double charges, charges not
// dominated by the fault check, failed I/O reaching a charge, and checked
// I/O that is never charged. Fixed twins live in chargeonce_good.go.
package corpus3

import "sync/atomic"

type FileID uint32
type PageID uint32

type Accountant struct{ reads atomic.Int64 }

func (a *Accountant) RecordRead(f FileID, p PageID) { a.reads.Add(1) }
func (a *Accountant) RecordRandRead()               { a.reads.Add(1) }
func (a *Accountant) RecordWrite()                  { a.reads.Add(1) }

type FaultInjector struct{}

func (fi *FaultInjector) beforeRead(f FileID, p PageID) error  { return nil }
func (fi *FaultInjector) beforeWrite(f FileID, p PageID) error { return nil }

type dev struct {
	acct   *Accountant
	faults atomic.Pointer[FaultInjector]
}

// doubleCharge charges the same (file, page) transfer at two sites on one
// path.
func (d *dev) doubleCharge(f FileID, p PageID) {
	d.acct.RecordRead(f, p)
	d.acct.RecordRead(f, p) // want "already charged the same transfer"
}

// chargeBeforeCheck consults the injector but only after the charge: the
// charge is reachable with the check still pending.
func (d *dev) chargeBeforeCheck(f FileID, p PageID) error {
	d.acct.RecordRead(f, p) // want "fault check must dominate the charge"
	if fi := d.faults.Load(); fi != nil {
		if err := fi.beforeRead(f, p); err != nil {
			return err
		}
	}
	return nil
}

// faultedCharge lets a failed check fall through to the charge instead of
// returning the error.
func (d *dev) faultedCharge(f FileID, p PageID) error {
	var failed error
	if fi := d.faults.Load(); fi != nil {
		if err := fi.beforeRead(f, p); err != nil {
			failed = err // BUG: should return; the path continues to the charge
		}
	}
	d.acct.RecordRead(f, p) // want "failed fault-injector check can reach this"
	return failed
}

// missedCharge passes the fault check and then returns on one path without
// charging the successful I/O.
func (d *dev) missedCharge(f FileID, p PageID, skip bool) error {
	if fi := d.faults.Load(); fi != nil { // want "returns without charging"
		if err := fi.beforeRead(f, p); err != nil {
			return err
		}
	}
	if skip {
		return nil // BUG: the read happened but is not charged here
	}
	d.acct.RecordRead(f, p)
	return nil
}
