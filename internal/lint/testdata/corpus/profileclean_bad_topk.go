//corpus:path example.com/internal/exec

// Package corpus17 seeds profileclean violations in top-k shapes: a
// bounded-heap iterator that allocates its heap storage and emission
// scratch inside Next/NextBatch on every call, regressing the hot path's
// allocation-free contract. Fixed twins live in profileclean_good_topk.go.
package corpus17

type row []int64

type heapIter struct {
	heap []row
	out  []row
	pos  int
}

// Next rebuilds the heap backing per row — per-call garbage on the default
// path.
func (h *heapIter) Next() (row, bool, error) {
	h.heap = make([]row, 0, 64) // want "allocates on every call"
	h.pos++
	return nil, false, nil
}

// NextBatch rebuilds the emission scratch as a literal on every batch.
func (h *heapIter) NextBatch(dst []row) (int, error) {
	h.out = []row{} // want "allocates on every call"
	return 0, nil
}
