//corpus:path example.com/internal/exec

// Package corpus15 seeds ctxabort violations in top-k shapes: the bounded
// heap's fill loop charging per admitted row and the limit's drain loop
// charging per pulled row, neither with a reachable abort check — exactly
// the loops that would keep a canceled ORDER BY/LIMIT query consuming its
// whole input. Fixed twins live in ctxabort_good_topk.go.
package corpus15

type env struct{ aborted bool }

func (e *env) ChargeHeapPush(n int) {}
func (e *env) ChargeRow(n int)      {}
func (e *env) checkAbort() error    { return nil }

// fillHeap drains the whole input into the bounded heap, charging each
// admission inside the loop without ever consulting the abort check.
func (e *env) fillHeap(keys []int64, k int) []int64 {
	heap := make([]int64, 0, k)
	for _, key := range keys { // want "without a reachable checkAbort"
		if len(heap) < k {
			heap = append(heap, key)
		}
		e.ChargeHeapPush(1)
	}
	return heap
}

// drainLimit pulls rows until the limit is met, charging per row; a
// canceled query keeps pulling until k rows arrive no matter how sparse the
// survivors are.
func (e *env) drainLimit(rows []int64, k int) int {
	seen := 0
	for range rows { // want "without a reachable checkAbort"
		e.ChargeRow(1)
		seen++
		if seen >= k {
			break
		}
	}
	return seen
}
