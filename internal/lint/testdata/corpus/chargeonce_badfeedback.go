//corpus:path example.com/internal/storage

// Package corpusfb1 seeds accounting violations in feedback-harvest-shaped
// code: a store that walks observed statistics and reads catalog pages while
// charging the accountant. Same analyzer contract as chargeonce_bad.go —
// exactly one charge per transfer, dominated by the fault check — but the
// shapes mirror the harvest/promote/flush loop of a feedback store. Fixed
// twins live in chargeonce_goodfeedback.go.
package corpusfb1

import "sync/atomic"

type FileID uint32
type PageID uint32

type Accountant struct{ reads atomic.Int64 }

func (a *Accountant) RecordRead(f FileID, p PageID) { a.reads.Add(1) }
func (a *Accountant) RecordRandRead()               { a.reads.Add(1) }
func (a *Accountant) RecordWrite()                  { a.reads.Add(1) }

type FaultInjector struct{}

func (fi *FaultInjector) beforeRead(f FileID, p PageID) error  { return nil }
func (fi *FaultInjector) beforeWrite(f FileID, p PageID) error { return nil }

type obs struct {
	page PageID
	err  float64
}

type fbstore struct {
	acct    *Accountant
	faults  atomic.Pointer[FaultInjector]
	pending []obs
}

// harvestNode re-charges the statistics page it just charged: the second
// site repeats the same (file, page) transfer on the same path.
func (s *fbstore) harvestNode(f FileID, p PageID) {
	s.acct.RecordRead(f, p)
	s.acct.RecordRead(f, p) // want "already charged the same transfer"
}

// refreshStats charges the catalog page before consulting the injector it
// goes on to check: the charge is reachable with the check still pending.
func (s *fbstore) refreshStats(f FileID, p PageID) error {
	s.acct.RecordRead(f, p) // want "fault check must dominate the charge"
	if fi := s.faults.Load(); fi != nil {
		if err := fi.beforeRead(f, p); err != nil {
			return err
		}
	}
	return nil
}

// promotePending records the failed check instead of returning it, so the
// poisoned path still reaches the write charge.
func (s *fbstore) promotePending(f FileID, p PageID) error {
	var failed error
	if fi := s.faults.Load(); fi != nil {
		if err := fi.beforeWrite(f, p); err != nil {
			failed = err // BUG: should return; the path continues to the charge
		}
	}
	s.acct.RecordWrite() // want "failed fault-injector check can reach this"
	return failed
}

// flushObservations passes the fault check, then bails out on the
// nothing-pending path without charging the read it already performed.
func (s *fbstore) flushObservations(f FileID, p PageID) error {
	if fi := s.faults.Load(); fi != nil { // want "returns without charging"
		if err := fi.beforeRead(f, p); err != nil {
			return err
		}
	}
	if len(s.pending) == 0 {
		return nil // BUG: the read happened but is not charged here
	}
	s.acct.RecordRead(f, p)
	return nil
}
