//corpus:path example.com/internal/exec

// Package corpus20 holds the fixed twins of ctxabort_bad_server.go: the
// server's two sanctioned loop shapes — observe the abort check on the
// drain's own cadence, or count locally and charge once after the loop.
// Both are silent.
package corpus20

type env struct{ aborted bool }

func (e *env) ChargeStatement(n int) {}
func (e *env) ChargeQueueWait(n int) {}
func (e *env) checkAbort() error     { return nil }

// drainSession checks for abort between statements, so a canceled session
// stops at the next statement boundary instead of draining its backlog.
func (e *env) drainSession(stmts []int64) (int, error) {
	served := 0
	for range stmts {
		if err := e.checkAbort(); err != nil {
			return served, err
		}
		e.ChargeStatement(1)
		served++
	}
	return served, nil
}

// awaitSlot counts wait rounds in a local and charges once after the loop —
// the loop body itself charges nothing.
func (e *env) awaitSlot(tries int) bool {
	waited := 0
	got := false
	for i := 0; i < tries; i++ {
		waited++
		if i == tries-1 {
			got = true
			break
		}
	}
	e.ChargeQueueWait(waited)
	return got
}
