//corpus:path example.com/internal/exec

// Package corpus16 holds the fixed twins of ctxabort_bad_topk.go: the
// executor's two sanctioned shapes for top-k loops — count admissions
// locally and charge once after the fill, or keep the per-row charge with
// the abort check on the loop's own cadence. Both are silent.
package corpus16

type env struct{ aborted bool }

func (e *env) ChargeHeapPush(n int) {}
func (e *env) ChargeRow(n int)      {}
func (e *env) checkAbort() error    { return nil }

// fillHeap accumulates the admissions in a local and charges once after the
// loop — the loop body contains no charge at all.
func (e *env) fillHeap(keys []int64, k int) []int64 {
	heap := make([]int64, 0, k)
	pushed := 0
	for _, key := range keys {
		if len(heap) < k {
			heap = append(heap, key)
			pushed++
		}
	}
	e.ChargeHeapPush(pushed)
	return heap
}

// drainLimit keeps the per-row charge but observes the abort check on the
// drain's own cadence, so cancellation interrupts a sparse-survivor scan.
func (e *env) drainLimit(rows []int64, k int) (int, error) {
	seen := 0
	for i := range rows {
		if i%1024 == 0 {
			if err := e.checkAbort(); err != nil {
				return seen, err
			}
		}
		e.ChargeRow(1)
		seen++
		if seen >= k {
			break
		}
	}
	return seen, nil
}
