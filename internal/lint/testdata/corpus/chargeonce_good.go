//corpus:path example.com/internal/storage

// Package corpus4 holds the fixed twins of chargeonce_bad.go, mirroring the
// real Disk.ReadPage/WritePage shape: bounds check, fault check dominating
// the charge (vacuously satisfied when no injector is installed), exactly
// one charge per transfer. The analyzer must be silent on this file.
package corpus4

import "sync/atomic"

type FileID uint32
type PageID uint32

type Accountant struct{ reads atomic.Int64 }

func (a *Accountant) RecordRead(f FileID, p PageID) { a.reads.Add(1) }
func (a *Accountant) RecordRandRead()               { a.reads.Add(1) }
func (a *Accountant) RecordWrite()                  { a.reads.Add(1) }

type FaultInjector struct{}

func (fi *FaultInjector) beforeRead(f FileID, p PageID) error  { return nil }
func (fi *FaultInjector) beforeWrite(f FileID, p PageID) error { return nil }

type dev struct {
	acct   *Accountant
	faults atomic.Pointer[FaultInjector]
	n      int
}

// readPage is the canonical shape: the fault check dominates the single
// charge, and the failed check returns before charging.
func (d *dev) readPage(f FileID, p PageID) error {
	if int(p) >= d.n {
		return nil // out of bounds: no transfer, no charge
	}
	if fi := d.faults.Load(); fi != nil {
		if err := fi.beforeRead(f, p); err != nil {
			return err
		}
	}
	d.acct.RecordRead(f, p)
	return nil
}

// writePage mirrors readPage for writes.
func (d *dev) writePage(f FileID, p PageID) error {
	if fi := d.faults.Load(); fi != nil {
		if err := fi.beforeWrite(f, p); err != nil {
			return err
		}
	}
	d.acct.RecordWrite()
	return nil
}

// twoTransfers charges two *different* transfers once each: not a double
// charge.
func (d *dev) twoTransfers(f FileID, p PageID) error {
	if fi := d.faults.Load(); fi != nil {
		if err := fi.beforeRead(f, p); err != nil {
			return err
		}
		if err := fi.beforeRead(f, p+1); err != nil {
			return err
		}
	}
	d.acct.RecordRead(f, p)
	d.acct.RecordRead(f, p+1)
	return nil
}

// probeLeaf charges unconditionally with no injector in scope: index-layer
// accounting (the B-tree leaf probe) carries no dominance obligation.
func (d *dev) probeLeaf() {
	if d.acct != nil {
		d.acct.RecordRandRead()
	}
}
