package lint

import (
	"go/ast"
	"strings"
)

// ctxAbortPathFragments restricts ctxabort to the executor, where the
// cancellation contract lives.
var ctxAbortPathFragments = []string{"internal/exec"}

// CtxAbortAnalyzer flags executor loops that charge cost without observing
// the abort check. Cancellation and deadlines piggyback on the budget-check
// cadence (Env.checkAbort); a loop that calls Charge* but never reaches a
// checkAbort call keeps charging — and keeps running — after the query was
// canceled, turning a deadline into a hang. The check is syntactic: a for or
// range statement whose body contains a Charge* call must also contain a
// checkAbort call (directly or in a nested node). Loops whose cadence lives
// in a helper the loop calls can suppress with `//pplint:ignore ctxabort
// <reason>`.
var CtxAbortAnalyzer = &Analyzer{
	Name: "ctxabort",
	Doc:  "flags internal/exec loops calling Charge* without a checkAbort call",
	Run:  runCtxAbort,
}

func runCtxAbort(pass *Pass) error {
	if !pathMatchesAny(pass.Pkg.Path, ctxAbortPathFragments) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		name := pass.Pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch t := n.(type) {
			case *ast.ForStmt:
				body = t.Body
			case *ast.RangeStmt:
				body = t.Body
			default:
				return true
			}
			charge, abort := loopCallNames(body)
			if charge != "" && !abort {
				pass.Reportf(n.Pos(),
					"loop charges cost (%s) without a reachable checkAbort call; cancellation cannot interrupt it — add the abort check on the loop's cadence", charge)
			}
			return true
		})
	}
	return nil
}

// loopCallNames scans a loop body (including nested statements) for Charge*
// and checkAbort calls, returning the first Charge* callee name seen and
// whether any checkAbort call is present.
func loopCallNames(body *ast.BlockStmt) (charge string, abort bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var callee string
		switch f := call.Fun.(type) {
		case *ast.Ident:
			callee = f.Name
		case *ast.SelectorExpr:
			callee = f.Sel.Name
		default:
			return true
		}
		if callee == "checkAbort" {
			abort = true
		} else if isChargeCall(callee) && charge == "" {
			charge = callee
		}
		return true
	})
	return charge, abort
}

// isChargeCall matches the Env charging mutators (Charge, ChargeSynthetic,
// ChargeSpillTuple, …) while excluding Charged*/ChargedCost — those are
// accounting reads, not charges.
func isChargeCall(name string) bool {
	return strings.HasPrefix(name, "Charge") && !strings.HasPrefix(name, "Charged")
}
