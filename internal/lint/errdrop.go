package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDropAnalyzer flags silently discarded error returns: blank-assigned
// errors (`_ = f()`, `a, _ := g()` where the blank hides an error) and bare
// call statements whose results include an error. The paper's measured
// charged costs depend on FlushAll/Close/Stats actually happening; a dropped
// error turns an I/O accounting failure into silently wrong numbers.
//
// Deliberate, safe drops are exempt:
//   - defer'd calls (close-on-the-way-out; Go offers no good channel for
//     their errors without named-result gymnastics),
//   - fmt.Print/Printf/Println to stdout,
//   - fmt.Fprint* into strings.Builder, bytes.Buffer, os.Stdout, os.Stderr,
//   - methods on strings.Builder / bytes.Buffer (their Write* never fail),
//   - Write on hash.Hash implementations ("It never returns an error" —
//     hash package docs).
//
// Anything else needs handling, propagation, or a `//pplint:ignore errdrop
// <reason>` with a written justification.
var ErrDropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded error returns (`_ =` and bare calls) outside tests",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		name := pass.Pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.DeferStmt:
				return false // deferred cleanup: exempt
			case *ast.AssignStmt:
				checkBlankErr(pass, t)
			case *ast.ExprStmt:
				call, ok := t.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !callReturnsError(info, call) || allowlistedCall(info, call) {
					return true
				}
				pass.Reportf(call.Pos(), "result of %s includes an error that is silently discarded; handle or propagate it", callName(call))
			}
			return true
		})
	}
	return nil
}

// checkBlankErr flags `_` on the left-hand side of an assignment when the
// corresponding right-hand value is an error.
func checkBlankErr(pass *Pass, a *ast.AssignStmt) {
	info := pass.Pkg.Info
	// Either a 1:1 assignment list or a single multi-value call.
	rhsType := func(i int) types.Type {
		if len(a.Rhs) == len(a.Lhs) {
			if tv, ok := info.Types[a.Rhs[i]]; ok {
				return tv.Type
			}
			return nil
		}
		if len(a.Rhs) != 1 {
			return nil
		}
		tv, ok := info.Types[a.Rhs[0]]
		if !ok {
			return nil
		}
		if tup, ok := tv.Type.(*types.Tuple); ok && i < tup.Len() {
			return tup.At(i).Type()
		}
		return nil
	}
	for i, lhs := range a.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if t := rhsType(i); t != nil && isErrorType(t) {
			pass.Reportf(id.Pos(), "error assigned to blank identifier; handle or propagate it")
		}
	}
}

// callReturnsError reports whether any result of the call is an error.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// allowlistedCall exempts calls whose error results are structurally
// uninteresting (see the analyzer doc).
func allowlistedCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// fmt.Print* and fmt.Fprint* into infallible or best-effort writers.
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj, ok := info.Uses[id]; ok {
			if pn, ok := obj.(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				switch sel.Sel.Name {
				case "Print", "Printf", "Println":
					return true
				case "Fprint", "Fprintf", "Fprintln":
					return len(call.Args) > 0 && infallibleWriter(info, call.Args[0])
				}
				return false
			}
		}
	}
	// Methods on strings.Builder / bytes.Buffer never return a non-nil
	// error, and neither does hash.Hash.Write (per the hash package docs).
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		if isBuilderOrBuffer(s.Recv()) {
			return true
		}
		return sel.Sel.Name == "Write" && isHashHash(s.Recv())
	}
	return false
}

// isHashHash reports whether t's method set carries the hash.Hash contract
// (Write, Sum, Reset, Size, BlockSize) — identified structurally so the
// check needs no import of the hash package.
func isHashHash(t types.Type) bool {
	ms := types.NewMethodSet(t)
	if _, ok := t.Underlying().(*types.Interface); !ok {
		if _, ok := t.(*types.Pointer); !ok {
			ms = types.NewMethodSet(types.NewPointer(t))
		}
	}
	need := map[string]bool{"Sum": false, "Reset": false, "Size": false, "BlockSize": false}
	for i := 0; i < ms.Len(); i++ {
		name := ms.At(i).Obj().Name()
		if _, ok := need[name]; ok {
			need[name] = true
		}
	}
	for _, ok := range need {
		if !ok {
			return false
		}
	}
	return true
}

// infallibleWriter reports whether the expression is a writer whose Write
// cannot meaningfully fail for our purposes: an in-memory builder/buffer or
// the process's own stdout/stderr.
func infallibleWriter(info *types.Info, e ast.Expr) bool {
	if tv, ok := info.Types[e]; ok && isBuilderOrBuffer(tv.Type) {
		return true
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj, ok := info.Uses[id]; ok {
				if pn, ok := obj.(*types.PkgName); ok && pn.Imported().Path() == "os" {
					return sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr"
				}
			}
		}
	}
	return false
}

// isBuilderOrBuffer matches strings.Builder and bytes.Buffer (possibly
// behind a pointer).
func isBuilderOrBuffer(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	pkg, name := n.Obj().Pkg().Path(), n.Obj().Name()
	return (pkg == "strings" && name == "Builder") || (pkg == "bytes" && name == "Buffer")
}

// callName renders a short name for the called function.
func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}
