// Package pcache implements Montage-style predicate caching (paper §5.1):
// each expensive predicate owns a main-memory dynamic hash table keyed on
// the binding of its input variables, storing the result of the *entire
// predicate* — true, false, or NULL — never the raw function result (whose
// type may be an arbitrarily large derived object, e.g. a subquery's set).
package pcache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"predplace/internal/expr"
)

// Scope selects the caching granularity of §5.1: Montage caches the result
// of the *whole predicate* per binding (ByPredicate, the default); the
// alternative proposed in [Jhi88] and [HS93a] caches per *function*, which
// shares entries between predicates that call the same function.
type Scope uint8

// Caching scopes.
const (
	ByPredicate Scope = iota
	ByFunction
)

// stripes is the number of lock shards per unbounded cache table. Parallel
// workers evaluating the same predicate hash their bindings across shards,
// so lookups and stores rarely contend on one mutex.
const stripes = 16

// Manager holds one cache per predicate (or per function, depending on
// Scope) for the duration of a query. Caches are dropped between queries,
// exactly like the per-query hash tables in Montage.
//
// The manager is safe for concurrent use: hit/miss counters are atomics and
// each cache table is striped into lock shards keyed by a hash of the
// binding. Bounded tables (maxEntries > 0) use a single shard so the FIFO
// eviction order below is exact.
type Manager struct {
	// enabled gates all caching; a disabled manager misses on every lookup.
	enabled bool
	scope   Scope
	// maxEntries bounds each predicate's table (0 = unbounded); when full,
	// the oldest entry is evicted (deterministic FIFO — the paper notes any
	// of a variety of replacement schemes may be used, and a deterministic
	// one keeps bounded-cache runs reproducible across processes).
	maxEntries int
	hits       atomic.Int64
	misses     atomic.Int64

	mu     sync.RWMutex
	caches map[string]*cache
}

// cache is one predicate's (or function's) table, striped into lock shards.
type cache struct {
	shards []cacheShard
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]expr.Value
	// order and head form a FIFO queue of keys for bounded tables
	// (max > 0); unbounded tables skip order tracking entirely.
	order []string
	head  int
	max   int
}

// NewManager creates a predicate-scoped cache manager. maxEntriesPerPred of
// 0 means unbounded tables.
func NewManager(enabled bool, maxEntriesPerPred int) *Manager {
	return NewManagerScoped(enabled, maxEntriesPerPred, ByPredicate)
}

// NewManagerScoped creates a cache manager with an explicit scope.
func NewManagerScoped(enabled bool, maxEntriesPerPred int, scope Scope) *Manager {
	return &Manager{
		enabled:    enabled,
		scope:      scope,
		maxEntries: maxEntriesPerPred,
		caches:     make(map[string]*cache),
	}
}

// newCache builds one owner's table: striped when unbounded, single-shard
// FIFO when bounded.
func newCache(maxEntries int) *cache {
	n := stripes
	if maxEntries > 0 {
		n = 1
	}
	c := &cache{shards: make([]cacheShard, n)}
	for i := range c.shards {
		c.shards[i] = cacheShard{m: make(map[string]expr.Value), max: maxEntries}
	}
	return c
}

// shardFor hashes a binding key to one of the cache's lock shards (FNV-1a).
func (c *cache) shardFor(key string) *cacheShard {
	if len(c.shards) == 1 {
		return &c.shards[0]
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[h%uint64(len(c.shards))]
}

// shardIdx is shardFor over a raw key, allocation-free for the batched
// paths (converting a []byte to string for a function argument would copy).
func (c *cache) shardIdx(key []byte) int {
	if len(c.shards) == 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h % uint64(len(c.shards)))
}

// Scope returns the manager's caching granularity.
func (m *Manager) Scope() Scope {
	if m == nil {
		return ByPredicate
	}
	return m.scope
}

// Owner computes the cache-table identifier for a predicate: its ID under
// ByPredicate, its function's name under ByFunction.
func (m *Manager) Owner(predID int, funcName string) string {
	if m.Scope() == ByFunction {
		return "f:" + funcName
	}
	return fmt.Sprintf("p:%d", predID)
}

// Enabled reports whether caching is on.
func (m *Manager) Enabled() bool { return m != nil && m.enabled }

// Key encodes an argument binding into a cache key.
func Key(args []expr.Value) string {
	var buf []byte
	for _, a := range args {
		buf = a.AppendKey(buf)
	}
	return string(buf)
}

// table returns the owner's cache, creating it when create is set.
func (m *Manager) table(owner string, create bool) *cache {
	m.mu.RLock()
	c := m.caches[owner]
	m.mu.RUnlock()
	if c != nil || !create {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.caches[owner]; c == nil {
		c = newCache(m.maxEntries)
		m.caches[owner] = c
	}
	return c
}

// Lookup returns the cached tri-state result of the owner's table on the
// given binding (owner comes from Owner).
func (m *Manager) Lookup(owner string, key string) (expr.Value, bool) {
	if !m.Enabled() {
		return expr.Null, false
	}
	c := m.table(owner, false)
	if c == nil {
		m.misses.Add(1)
		return expr.Null, false
	}
	s := c.shardFor(key)
	s.mu.Lock()
	v, ok := s.m[key]
	s.mu.Unlock()
	if ok {
		m.hits.Add(1)
	} else {
		m.misses.Add(1)
	}
	return v, ok
}

// Store records the predicate's result for a binding. When the table is
// bounded and full, the oldest binding is evicted (FIFO).
func (m *Manager) Store(owner string, key string, v expr.Value) {
	if !m.Enabled() {
		return
	}
	c := m.table(owner, true)
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store(key, v)
}

// store records one binding in the shard; the caller holds the shard lock.
func (s *cacheShard) store(key string, v expr.Value) {
	if _, exists := s.m[key]; exists {
		s.m[key] = v
		return
	}
	if s.max > 0 {
		if len(s.m) >= s.max {
			victim := s.order[s.head]
			s.order[s.head] = "" // release the string for GC
			s.head++
			delete(s.m, victim)
			if s.head == len(s.order) {
				s.order, s.head = s.order[:0], 0
			}
		}
		s.order = append(s.order, key)
	}
	s.m[key] = v
}

// Batch lookup states: the outcome of one binding in a GetBatch call.
const (
	// BatchMiss marks a binding absent from the cache; the caller must
	// evaluate it and hand the result back through PutBatch.
	BatchMiss uint8 = iota
	// BatchHit marks a cached binding; Val carries the stored result.
	BatchHit
	// BatchDup marks a binding equal to an earlier BatchMiss in the same
	// batch (index in Dup). Under tuple-at-a-time execution the earlier
	// row's store would have completed before this row's lookup, so the
	// duplicate counts as a hit and takes the earlier row's result.
	BatchDup
)

// BatchEntry is one binding's outcome in a GetBatch call.
type BatchEntry struct {
	// Val is the cached result for BatchHit entries (and is filled in by
	// the caller for misses before PutBatch).
	Val expr.Value
	// State is BatchMiss, BatchHit, or BatchDup.
	State uint8
	// Dup is the index of the earlier miss sharing this binding
	// (BatchDup only; -1 otherwise).
	Dup int32
}

// Batchable reports whether the batched lookup path may be used: only
// enabled managers with unbounded tables qualify. Bounded tables evict in
// FIFO order, which is sensitive to the exact interleaving of lookups and
// stores, so batching them could change hit patterns versus
// tuple-at-a-time execution; unbounded tables are monotone (a cached
// binding stays cached), making GetBatch/PutBatch exactly equivalent to
// the sequential per-row protocol.
func (m *Manager) Batchable() bool { return m.Enabled() && m.maxEntries == 0 }

// GetBatch looks up a batch of bindings, taking each shard lock at most
// once per call instead of once per row. Semantics are as-if-sequential:
// out[i] reports what the i'th Lookup of a tuple-at-a-time loop would have
// seen, assuming each miss is stored before the next lookup — duplicates
// of an earlier miss therefore report BatchDup (counted as hits). Keys are
// raw binding encodings; GetBatch does not retain them.
func (m *Manager) GetBatch(owner string, keys [][]byte, out []BatchEntry) {
	var c *cache
	if m.Enabled() {
		c = m.table(owner, false)
	}
	var hits, misses int64
	// pending maps a missed binding to its first index, for duplicate
	// detection. Allocated lazily: batches with no misses never touch it.
	var pending map[string]int32
	miss := func(i int, key []byte) {
		if j, ok := pending[string(key)]; ok {
			out[i] = BatchEntry{State: BatchDup, Dup: j}
			hits++
			return
		}
		if pending == nil {
			pending = make(map[string]int32, 8)
		}
		pending[string(key)] = int32(i)
		out[i] = BatchEntry{State: BatchMiss, Dup: -1}
		misses++
	}
	if c == nil {
		for i, key := range keys {
			miss(i, key)
		}
	} else {
		// One pass per shard, locking each shard once; equal bindings hash
		// to the same shard, so duplicate detection stays in order.
		for si := range c.shards {
			s := &c.shards[si]
			locked := false
			for i, key := range keys {
				if c.shardIdx(key) != si {
					continue
				}
				if !locked {
					//pplint:ignore lockbalance the locked flag guards both Lock and the Unlock below, giving exactly one Lock/Unlock per shard pass; the flag correlation is outside the analyzer's path model
					s.mu.Lock()
					locked = true
				}
				if v, ok := s.m[string(key)]; ok {
					out[i] = BatchEntry{Val: v, State: BatchHit, Dup: -1}
					hits++
				} else {
					miss(i, key)
				}
			}
			if locked {
				s.mu.Unlock()
			}
		}
	}
	m.hits.Add(hits)
	m.misses.Add(misses)
}

// PutBatch stores the results of a GetBatch's misses (entries whose State
// is BatchMiss, with Val filled in by the caller), taking each shard lock
// at most once. Hits and duplicates are skipped.
func (m *Manager) PutBatch(owner string, keys [][]byte, entries []BatchEntry) {
	if !m.Enabled() {
		return
	}
	c := m.table(owner, true)
	for si := range c.shards {
		s := &c.shards[si]
		locked := false
		for i := range entries {
			if entries[i].State != BatchMiss || c.shardIdx(keys[i]) != si {
				continue
			}
			if !locked {
				//pplint:ignore lockbalance the locked flag guards both Lock and the Unlock below, giving exactly one Lock/Unlock per shard pass; the flag correlation is outside the analyzer's path model
				s.mu.Lock()
				locked = true
			}
			s.store(string(keys[i]), entries[i].Val)
		}
		if locked {
			s.mu.Unlock()
		}
	}
}

// Stats returns (hits, misses, totalEntries).
func (m *Manager) Stats() (hits, misses int64, entries int) {
	if m == nil {
		return 0, 0, 0
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, c := range m.caches {
		for i := range c.shards {
			s := &c.shards[i]
			s.mu.Lock()
			entries += len(s.m)
			s.mu.Unlock()
		}
	}
	return m.hits.Load(), m.misses.Load(), entries
}

// Reset clears all cached entries and counters (between queries).
func (m *Manager) Reset() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.caches = make(map[string]*cache)
	m.hits.Store(0)
	m.misses.Store(0)
}
