// Package pcache implements Montage-style predicate caching (paper §5.1):
// each expensive predicate owns a main-memory dynamic hash table keyed on
// the binding of its input variables, storing the result of the *entire
// predicate* — true, false, or NULL — never the raw function result (whose
// type may be an arbitrarily large derived object, e.g. a subquery's set).
package pcache

import (
	"fmt"
	"sync"

	"predplace/internal/expr"
)

// Scope selects the caching granularity of §5.1: Montage caches the result
// of the *whole predicate* per binding (ByPredicate, the default); the
// alternative proposed in [Jhi88] and [HS93a] caches per *function*, which
// shares entries between predicates that call the same function.
type Scope uint8

// Caching scopes.
const (
	ByPredicate Scope = iota
	ByFunction
)

// Manager holds one cache per predicate (or per function, depending on
// Scope) for the duration of a query. Caches are dropped between queries,
// exactly like the per-query hash tables in Montage.
type Manager struct {
	mu sync.Mutex
	// Enabled gates all caching; a disabled manager misses on every lookup.
	enabled bool
	scope   Scope
	// maxEntries bounds each predicate's table (0 = unbounded); when full,
	// an arbitrary entry is evicted (the paper notes any of a variety of
	// replacement schemes may be used).
	maxEntries int
	caches     map[string]*cache
	hits       int64
	misses     int64
}

type cache struct {
	m map[string]expr.Value
}

// NewManager creates a predicate-scoped cache manager. maxEntriesPerPred of
// 0 means unbounded tables.
func NewManager(enabled bool, maxEntriesPerPred int) *Manager {
	return NewManagerScoped(enabled, maxEntriesPerPred, ByPredicate)
}

// NewManagerScoped creates a cache manager with an explicit scope.
func NewManagerScoped(enabled bool, maxEntriesPerPred int, scope Scope) *Manager {
	return &Manager{
		enabled:    enabled,
		scope:      scope,
		maxEntries: maxEntriesPerPred,
		caches:     make(map[string]*cache),
	}
}

// Scope returns the manager's caching granularity.
func (m *Manager) Scope() Scope {
	if m == nil {
		return ByPredicate
	}
	return m.scope
}

// Owner computes the cache-table identifier for a predicate: its ID under
// ByPredicate, its function's name under ByFunction.
func (m *Manager) Owner(predID int, funcName string) string {
	if m.Scope() == ByFunction {
		return "f:" + funcName
	}
	return fmt.Sprintf("p:%d", predID)
}

// Enabled reports whether caching is on.
func (m *Manager) Enabled() bool { return m != nil && m.enabled }

// Key encodes an argument binding into a cache key.
func Key(args []expr.Value) string {
	var buf []byte
	for _, a := range args {
		buf = a.AppendKey(buf)
	}
	return string(buf)
}

// Lookup returns the cached tri-state result of the owner's table on the
// given binding (owner comes from Owner).
func (m *Manager) Lookup(owner string, key string) (expr.Value, bool) {
	if !m.Enabled() {
		return expr.Null, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.caches[owner]
	if !ok {
		m.misses++
		return expr.Null, false
	}
	v, ok := c.m[key]
	if ok {
		m.hits++
	} else {
		m.misses++
	}
	return v, ok
}

// Store records the predicate's result for a binding.
func (m *Manager) Store(owner string, key string, v expr.Value) {
	if !m.Enabled() {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.caches[owner]
	if !ok {
		c = &cache{m: make(map[string]expr.Value)}
		m.caches[owner] = c
	}
	if m.maxEntries > 0 && len(c.m) >= m.maxEntries {
		for k := range c.m { // evict an arbitrary victim
			delete(c.m, k)
			break
		}
	}
	c.m[key] = v
}

// Stats returns (hits, misses, totalEntries).
func (m *Manager) Stats() (hits, misses int64, entries int) {
	if m == nil {
		return 0, 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.caches {
		entries += len(c.m)
	}
	return m.hits, m.misses, entries
}

// Reset clears all cached entries and counters (between queries).
func (m *Manager) Reset() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.caches = make(map[string]*cache)
	m.hits, m.misses = 0, 0
}
