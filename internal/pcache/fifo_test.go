package pcache

import (
	"testing"

	"predplace/internal/expr"
)

// TestFIFOEvictionOrder pins the bounded cache's replacement policy: the
// oldest-inserted binding is evicted first, deterministically, and updating
// an existing binding neither evicts nor refreshes its queue position.
func TestFIFOEvictionOrder(t *testing.T) {
	m := NewManager(true, 2)
	owner := m.Owner(1, "f")

	m.Store(owner, "A", expr.B(true))
	m.Store(owner, "B", expr.B(false))
	// Updating A in place must not consume a queue slot or evict.
	m.Store(owner, "A", expr.B(false))
	if _, _, entries := m.Stats(); entries != 2 {
		t.Fatalf("entries = %d, want 2", entries)
	}
	if v, ok := m.Lookup(owner, "A"); !ok || v != expr.B(false) {
		t.Fatalf("A after update = %v, %v", v, ok)
	}

	// Third distinct binding: A (oldest) is the victim, not B.
	m.Store(owner, "C", expr.B(true))
	if _, ok := m.Lookup(owner, "A"); ok {
		t.Fatal("A should have been evicted first (FIFO)")
	}
	if _, ok := m.Lookup(owner, "B"); !ok {
		t.Fatal("B evicted out of order")
	}
	if _, ok := m.Lookup(owner, "C"); !ok {
		t.Fatal("C missing right after Store")
	}

	// Fourth: B (now oldest) goes next.
	m.Store(owner, "D", expr.B(true))
	if _, ok := m.Lookup(owner, "B"); ok {
		t.Fatal("B should have been evicted second (FIFO)")
	}
	if _, _, entries := m.Stats(); entries != 2 {
		t.Fatalf("entries = %d, want 2 (bounded)", entries)
	}
}

// TestFIFOQueueCompaction exercises the order-slice compaction path (head
// reaching the end of the queue) across many evictions.
func TestFIFOQueueCompaction(t *testing.T) {
	m := NewManager(true, 3)
	owner := m.Owner(7, "g")
	keys := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8", "k9"}
	for _, k := range keys {
		m.Store(owner, k, expr.B(true))
	}
	// Only the newest three survive.
	for i, k := range keys {
		_, ok := m.Lookup(owner, k)
		if want := i >= len(keys)-3; ok != want {
			t.Fatalf("Lookup(%s) = %v, want %v", k, ok, want)
		}
	}
	if _, _, entries := m.Stats(); entries != 3 {
		t.Fatalf("entries = %d, want 3", entries)
	}
}
