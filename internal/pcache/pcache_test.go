package pcache

import (
	"sync"
	"testing"

	"predplace/internal/expr"
)

func TestLookupStore(t *testing.T) {
	m := NewManager(true, 0)
	k := Key([]expr.Value{expr.I(1), expr.S("x")})
	if _, ok := m.Lookup("p:0", k); ok {
		t.Fatal("fresh cache should miss")
	}
	m.Store("p:0", k, expr.B(true))
	v, ok := m.Lookup("p:0", k)
	if !ok || !v.Equal(expr.B(true)) {
		t.Fatalf("Lookup = %v %v", v, ok)
	}
	// Different predicate id: separate table.
	if _, ok := m.Lookup("p:1", k); ok {
		t.Fatal("caches must be per-predicate")
	}
	hits, misses, entries := m.Stats()
	if hits != 1 || misses != 2 || entries != 1 {
		t.Fatalf("stats = %d %d %d", hits, misses, entries)
	}
}

func TestTriState(t *testing.T) {
	// The cache stores true, false, or NULL — NULL is a real entry
	// (beardless people, per the paper's example), not a miss.
	m := NewManager(true, 0)
	m.Store("p:7", "k", expr.Null)
	v, ok := m.Lookup("p:7", "k")
	if !ok || !v.IsNull() {
		t.Fatal("NULL result must be cached and distinguishable from a miss")
	}
}

func TestDisabled(t *testing.T) {
	m := NewManager(false, 0)
	m.Store("p:0", "k", expr.B(true))
	if _, ok := m.Lookup("p:0", "k"); ok {
		t.Fatal("disabled cache must always miss")
	}
	if m.Enabled() {
		t.Fatal("Enabled should be false")
	}
	var nilMgr *Manager
	if nilMgr.Enabled() {
		t.Fatal("nil manager must be disabled")
	}
	nilMgr.Reset() // must not panic
}

func TestMaxEntriesEviction(t *testing.T) {
	m := NewManager(true, 10)
	for i := 0; i < 100; i++ {
		m.Store("p:0", Key([]expr.Value{expr.I(int64(i))}), expr.B(true))
	}
	_, _, entries := m.Stats()
	if entries > 10 {
		t.Fatalf("cache exceeded bound: %d entries", entries)
	}
}

func TestReset(t *testing.T) {
	m := NewManager(true, 0)
	m.Store("p:0", "k", expr.B(false))
	m.Lookup("p:0", "k")
	m.Reset()
	if _, ok := m.Lookup("p:0", "k"); ok {
		t.Fatal("Reset must clear entries")
	}
	hits, misses, entries := m.Stats()
	if hits != 0 || misses != 1 || entries != 0 {
		t.Fatalf("counters after reset: %d %d %d", hits, misses, entries)
	}
}

func TestKeyDistinguishesBindings(t *testing.T) {
	k1 := Key([]expr.Value{expr.I(1), expr.I(2)})
	k2 := Key([]expr.Value{expr.I(12)})
	if k1 == k2 {
		t.Fatal("keys must be binding-injective")
	}
	// Multi-column binding, as in the paper's (student.mother, student.dept) example.
	k3 := Key([]expr.Value{expr.S("ann"), expr.S("cs")})
	k4 := Key([]expr.Value{expr.S("ann"), expr.S("ee")})
	if k3 == k4 {
		t.Fatal("composite bindings must differ")
	}
}

func TestScopeOwner(t *testing.T) {
	pred := NewManagerScoped(true, 0, ByPredicate)
	fn := NewManagerScoped(true, 0, ByFunction)
	if pred.Owner(3, "costly10") != "p:3" {
		t.Fatalf("predicate owner = %q", pred.Owner(3, "costly10"))
	}
	if fn.Owner(3, "costly10") != "f:costly10" {
		t.Fatalf("function owner = %q", fn.Owner(3, "costly10"))
	}
	if pred.Scope() != ByPredicate || fn.Scope() != ByFunction {
		t.Fatal("Scope() wrong")
	}
	var nilMgr *Manager
	if nilMgr.Scope() != ByPredicate {
		t.Fatal("nil manager should default to ByPredicate")
	}
}

func TestByFunctionSharesAcrossPredicates(t *testing.T) {
	m := NewManagerScoped(true, 0, ByFunction)
	k := Key([]expr.Value{expr.I(7)})
	// Predicate 0 stores; predicate 1 calling the same function hits.
	m.Store(m.Owner(0, "costly10"), k, expr.B(true))
	if v, ok := m.Lookup(m.Owner(1, "costly10"), k); !ok || !v.Equal(expr.B(true)) {
		t.Fatal("per-function cache must share across predicates")
	}
	// A different function does not share.
	if _, ok := m.Lookup(m.Owner(1, "costly100"), k); ok {
		t.Fatal("different functions must not share")
	}
}

func TestTernaryEntriesDistinct(t *testing.T) {
	// One table holding all three truth values: each entry must come back
	// as itself, and all three must be distinguishable from a miss.
	m := NewManager(true, 0)
	want := map[string]expr.Value{
		"kt": expr.B(true),
		"kf": expr.B(false),
		"kn": expr.Null,
	}
	for k, v := range want {
		m.Store("p:0", k, v)
	}
	for k, v := range want {
		got, ok := m.Lookup("p:0", k)
		if !ok {
			t.Fatalf("stored %s entry reported as a miss", v)
		}
		if got.IsNull() != v.IsNull() || (!v.IsNull() && !got.Equal(v)) {
			t.Fatalf("Lookup(%q) = %s, want %s", k, got, v)
		}
	}
	if _, ok := m.Lookup("p:0", "absent"); ok {
		t.Fatal("unknown binding must miss")
	}
	if _, _, entries := m.Stats(); entries != 3 {
		t.Fatalf("entries = %d, want 3", entries)
	}
}

func TestConcurrentAccess(t *testing.T) {
	// The manager guards its tables with a mutex; hammer every method from
	// many goroutines so `go test -race` proves it. (Execution today is
	// single-threaded per Env, but the manager's API promises safety.)
	m := NewManager(true, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			owner := m.Owner(g%3, "costly10")
			for i := 0; i < 500; i++ {
				k := Key([]expr.Value{expr.I(int64(i % 16))})
				switch i % 5 {
				case 0:
					m.Store(owner, k, expr.B(i%2 == 0))
				case 1:
					m.Store(owner, k, expr.Null)
				case 2:
					m.Lookup(owner, k)
				case 3:
					m.Stats()
				default:
					if i%100 == 4 {
						m.Reset()
					} else {
						m.Lookup(owner, k)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses, entries := m.Stats()
	if hits < 0 || misses < 0 || entries < 0 {
		t.Fatalf("stats went negative: %d %d %d", hits, misses, entries)
	}
}
