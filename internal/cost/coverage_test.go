package cost

import (
	"math"
	"testing"

	"predplace/internal/expr"
	"predplace/internal/plan"
	"predplace/internal/query"
)

func TestInputStatsRankAndModule(t *testing.T) {
	s := InputStats{Sel: 0.5, Cost: 10}
	if s.Rank() != query.Rank(0.5, 10) {
		t.Fatal("InputStats.Rank disagrees with query.Rank")
	}
	m := s.Module()
	if m.Sel != 0.5 || m.Cost != 10 {
		t.Fatalf("Module = %+v", m)
	}
}

func TestJoinSelNilIsCrossProduct(t *testing.T) {
	if JoinSel(nil) != 1 {
		t.Fatal("nil primary must mean selectivity 1 (cross product)")
	}
	p := &query.Predicate{Selectivity: 0.25}
	if JoinSel(p) != 0.25 {
		t.Fatal("JoinSel should return the predicate's selectivity")
	}
}

func TestAnnotateIndexScanVariants(t *testing.T) {
	cat := testCatalog(t)
	m := NewModel(cat, false)
	cols := []query.ColRef{{Table: "s", Col: "a1"}}

	eq := expr.I(5)
	q, _ := query.NewQuery([]string{"s"}, []*query.Predicate{{
		Kind: query.KindSelCmp, Op: expr.OpEQ,
		Left: query.ColRef{Table: "s", Col: "a1"}, Value: eq,
	}})
	query.Analyze(cat, q)

	is := &plan.IndexScan{Table: "s", Col: "a1", Eq: &eq, Matched: q.Preds[0], ColRefs: cols}
	if err := m.Annotate(is); err != nil {
		t.Fatal(err)
	}
	if math.Abs(is.EstCard-1) > 1e-9 {
		t.Fatalf("unique equality card = %v", is.EstCard)
	}
	if is.EstCost < ProbeCost || is.EstCost > ProbeCost+2 {
		t.Fatalf("probe cost = %v", is.EstCost)
	}

	// Full-index scan (no bounds): leaf walk plus a fetch per tuple.
	full := &plan.IndexScan{Table: "s", Col: "a1", ColRefs: cols}
	if err := m.Annotate(full); err != nil {
		t.Fatal(err)
	}
	if full.EstCost <= 10000*RandPageCost*0.9 {
		t.Fatalf("full index scan should cost ≈ a fetch per tuple: %v", full.EstCost)
	}

	// Range scan.
	lo := expr.I(100)
	rng := &plan.IndexScan{Table: "s", Col: "a1", Lo: &lo, Matched: q.Preds[0], ColRefs: cols}
	if err := m.Annotate(rng); err != nil {
		t.Fatal(err)
	}
	if rng.EstCost <= 0 {
		t.Fatal("range scan cost missing")
	}
}

func TestAnnotateMergeJoinSortFlags(t *testing.T) {
	cat := testCatalog(t)
	m := NewModel(cat, false)
	jp := joinPred(t, cat, "r", "a1", "s", "a1")
	mk := func(sortOuter, sortInner bool) float64 {
		j := &plan.Join{Method: plan.MergeJoin, Outer: scan(cat, t, "r"), Inner: scan(cat, t, "s"),
			Primary: jp, SortOuter: sortOuter, SortInner: sortInner}
		if err := m.Annotate(j); err != nil {
			t.Fatal(err)
		}
		return j.EstCost
	}
	both := mk(true, true)
	neither := mk(false, false)
	want := 1000*SortSpillPerTuple + 10000*SortSpillPerTuple
	if math.Abs((both-neither)-want) > 1e-6 {
		t.Fatalf("sort flags should add %v, added %v", want, both-neither)
	}
}

func TestAnnotateRejectsUnknownNodes(t *testing.T) {
	cat := testCatalog(t)
	m := NewModel(cat, false)
	if err := m.Annotate(nil); err == nil {
		t.Fatal("nil node should error")
	}
	bad := &plan.Join{Method: plan.JoinMethod(99), Outer: scan(cat, t, "r"), Inner: scan(cat, t, "s")}
	if err := m.Annotate(bad); err == nil {
		t.Fatal("unknown method should error")
	}
	missing := &plan.SeqScan{Table: "missing"}
	if err := m.Annotate(missing); err == nil {
		t.Fatal("missing table should error")
	}
}

func TestJoinInputStatsMergeAndNL(t *testing.T) {
	cat := testCatalog(t)
	m := NewModel(cat, false)
	jp := joinPred(t, cat, "r", "a1", "s", "a1")

	merge := &plan.Join{Method: plan.MergeJoin, Outer: scan(cat, t, "r"), Inner: scan(cat, t, "s"),
		Primary: jp, SortOuter: true, SortInner: false}
	if err := m.Annotate(merge); err != nil {
		t.Fatal(err)
	}
	o, i := m.JoinInputStats(merge)
	if o.Cost != SortSpillPerTuple {
		t.Fatalf("sorted outer differential = %v", o.Cost)
	}
	if i.Cost != 0 {
		t.Fatalf("pre-sorted inner differential = %v", i.Cost)
	}

	nl := &plan.Join{Method: plan.NestLoop, Outer: scan(cat, t, "r"), Inner: scan(cat, t, "s"), Primary: jp}
	if err := m.Annotate(nl); err != nil {
		t.Fatal(err)
	}
	o, i = m.JoinInputStats(nl)
	stab, _ := cat.Table("s")
	if math.Abs(o.Cost-float64(stab.Pages())*SeqPageCost) > 1e-9 {
		t.Fatalf("NL outer differential should be inner pages: %v", o.Cost)
	}
	if i.Cost != 0 {
		t.Fatalf("NL inner differential should be zero (pages constant): %v", i.Cost)
	}

	inl := &plan.Join{Method: plan.IndexNestLoop, Outer: scan(cat, t, "r"), Inner: scan(cat, t, "s"),
		Primary: jp, InnerIndexCol: "a1"}
	if err := m.Annotate(inl); err != nil {
		t.Fatal(err)
	}
	o, i = m.JoinInputStats(inl)
	if o.Cost < ProbeCost {
		t.Fatalf("index NL outer differential should include a probe: %v", o.Cost)
	}
	if i.Cost != 0 {
		t.Fatalf("index NL inner differential should be zero: %v", i.Cost)
	}
}

func TestJoinInputStatsExpensivePrimaryTerm(t *testing.T) {
	cat := testCatalog(t)
	f, _ := cat.Func("costly100")
	q, _ := query.NewQuery([]string{"r", "s"}, []*query.Predicate{{
		Kind: query.KindFunc, Func: f,
		Args: []query.ColRef{{Table: "r", Col: "u20"}, {Table: "s", Col: "u20"}},
	}})
	query.Analyze(cat, q)
	m := NewModel(cat, false)
	j := &plan.Join{Method: plan.NestLoop, Outer: scan(cat, t, "r"), Inner: scan(cat, t, "s"),
		Primary: q.Preds[0], ExpensivePrimary: true}
	if err := m.Annotate(j); err != nil {
		t.Fatal(err)
	}
	o, i := m.JoinInputStats(j)
	// c_p × {S} = 100 × 10000 dominates the outer differential (§5.2).
	if o.Cost < 100*10000 {
		t.Fatalf("outer differential missing c_p·S term: %v", o.Cost)
	}
	if i.Cost < 100*1000 {
		t.Fatalf("inner differential missing c_p·R term: %v", i.Cost)
	}
}
