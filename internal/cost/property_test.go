package cost

import (
	"math"
	"testing"
	"testing/quick"

	"predplace/internal/plan"
	"predplace/internal/query"
)

// TestFilterStatsProperties checks the filter estimator's algebra: output
// cardinality scales linearly with selectivity, added cost is monotone in
// input cardinality, and a zero-cost predicate adds no cost.
func TestFilterStatsProperties(t *testing.T) {
	cat := testCatalog(t)
	m := NewModel(cat, false)
	f := func(card uint16, selRaw, costRaw uint8) bool {
		sel := float64(selRaw%100) / 100.0
		cost := float64(costRaw % 50)
		p := &query.Predicate{Kind: query.KindFunc, Selectivity: sel, CostPerTuple: cost,
			Tables: []string{"r"}}
		in := float64(card)
		outCard, added := m.FilterStats(p, in)
		if math.Abs(outCard-in*sel) > 1e-9 {
			return false
		}
		if math.Abs(added-in*cost) > 1e-9 {
			return false
		}
		// Monotone in input.
		outCard2, added2 := m.FilterStats(p, in+100)
		return outCard2 >= outCard && added2 >= added
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestJoinCostMonotoneInInputs verifies the linear model: join cost never
// decreases when an input grows (fixing everything else).
func TestJoinCostMonotoneInInputs(t *testing.T) {
	cat := testCatalog(t)
	m := NewModel(cat, false)
	jp := joinPred(t, cat, "r", "a1", "s", "a1")
	mk := func(method plan.JoinMethod, filterSel float64) float64 {
		// A cheap filter below the outer shrinks {R}.
		outer := plan.Node(scan(cat, t, "r"))
		if filterSel < 1 {
			outer = &plan.Filter{Input: outer, Pred: &query.Predicate{
				Kind: query.KindSelCmp, Selectivity: filterSel, Tables: []string{"r"},
			}}
		}
		j := &plan.Join{Method: method, Outer: outer, Inner: scan(cat, t, "s"), Primary: jp,
			SortOuter: true, SortInner: true}
		if method == plan.IndexNestLoop {
			j.InnerIndexCol = "a1"
		}
		if err := m.Annotate(j); err != nil {
			t.Fatal(err)
		}
		return j.EstCost - j.Outer.Cost() // incremental join cost
	}
	for _, method := range []plan.JoinMethod{plan.HashJoin, plan.MergeJoin, plan.NestLoop, plan.IndexNestLoop} {
		full := mk(method, 1.0)
		half := mk(method, 0.5)
		tenth := mk(method, 0.1)
		if !(tenth <= half+1e-9 && half <= full+1e-9) {
			t.Errorf("%v: join cost not monotone in outer cardinality: %.2f %.2f %.2f",
				method, tenth, half, full)
		}
	}
}

// TestRanksOrderIndependentOfScale checks the rank metric is invariant to
// stream cardinality without caching (rank is a per-tuple quantity).
func TestRanksOrderIndependentOfScale(t *testing.T) {
	cat := testCatalog(t)
	m := NewModel(cat, false)
	p := funcPred(t, cat, "costly100", "s", "u20")
	r1 := m.SelectionModule(p, 100).Rank()
	r2 := m.SelectionModule(p, 1e6).Rank()
	if r1 != r2 {
		t.Fatalf("uncached rank depends on stream card: %v vs %v", r1, r2)
	}
}

// TestGroupRankMonotoneComposition: composing a group with a filtering cheap
// module can only lower (or keep) its rank — the property behind the pinning
// step of migration.
func TestGroupRankMonotoneCompositionQuick(t *testing.T) {
	f := func(selRaw, costRaw, fselRaw uint8) bool {
		j := Module{Sel: 0.1 + float64(selRaw%200)/100, Cost: 0.01 + float64(costRaw%100)/10}
		filterSel := float64(fselRaw%99) / 100.0 // < 1: filtering
		free := Module{Sel: filterSel, Cost: 0}
		composed := Compose(j, free)
		return composed.Rank() <= j.Rank()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestAnnotateIdempotent: re-annotating a tree yields identical estimates.
func TestAnnotateIdempotent(t *testing.T) {
	cat := testCatalog(t)
	m := NewModel(cat, false)
	jp := joinPred(t, cat, "r", "a1", "s", "a1")
	fp := funcPred(t, cat, "costly100", "s", "u20")
	inner := &plan.Filter{Input: scan(cat, t, "s"), Pred: fp}
	j := &plan.Join{Method: plan.HashJoin, Outer: scan(cat, t, "r"), Inner: inner, Primary: jp}
	j.ColRefs = plan.ConcatCols(j.Outer, j.Inner)
	root := &plan.Filter{Input: j, Pred: fp}
	if err := m.Annotate(root); err != nil {
		t.Fatal(err)
	}
	c1, k1 := root.Cost(), root.Card()
	if err := m.Annotate(root); err != nil {
		t.Fatal(err)
	}
	if root.Cost() != c1 || root.Card() != k1 {
		t.Fatalf("Annotate not idempotent: (%v,%v) vs (%v,%v)", c1, k1, root.Cost(), root.Card())
	}
}
