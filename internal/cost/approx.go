package cost

import "math"

// ApproxEqTol is the relative tolerance of ApproxEq. Ranks and costs are
// built from catalog statistics by short chains of arithmetic (Compose,
// Annotate), so genuine ties agree to far better than 1e-9 while genuinely
// different placements differ by far more; 1e-9 cleanly separates
// "accumulated rounding noise" from "real difference".
const ApproxEqTol = 1e-9

// ApproxEq reports whether two float64 rank/cost values are equal up to
// accumulated floating-point rounding error: exactly equal, within
// ApproxEqTol absolutely (near-zero values), or within ApproxEqTol
// relatively. Every equality comparison of ranks or costs in the optimizer
// must go through this helper rather than ==/!= (enforced by pplint's
// floatcmp analyzer): raw equality makes tie-breaking — and therefore plan
// choice — depend on evaluation order.
func ApproxEq(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	if d <= ApproxEqTol {
		return true
	}
	return d <= ApproxEqTol*math.Max(math.Abs(a), math.Abs(b))
}
