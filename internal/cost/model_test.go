package cost

import (
	"math"
	"testing"
	"testing/quick"

	"predplace/internal/catalog"
	"predplace/internal/expr"
	"predplace/internal/plan"
	"predplace/internal/query"
)

// testCatalog builds two tables: r (1k tuples) and s (10k tuples), both with
// a unique column a1 (indexed), a 20-dup column u20, and a 10-dup column a10.
func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	for name, card := range map[string]int64{"r": 1000, "s": 10000} {
		tab := &catalog.Table{
			Name: name,
			Columns: []catalog.Column{
				{Name: "a1", Type: expr.TInt, Distinct: card, Min: 0, Max: card - 1},
				{Name: "a10", Type: expr.TInt, Distinct: card / 10, Min: 0, Max: card/10 - 1},
				{Name: "u20", Type: expr.TInt, Distinct: card / 20, Min: 0, Max: card/20 - 1},
			},
			Card:       card,
			TupleBytes: 100,
		}
		if err := c.AddTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	c.RegisterFunc(expr.NewCostly("costly100", 1, 100, 0.5, 1))
	return c
}

func scan(cat *catalog.Catalog, t *testing.T, table string) *plan.SeqScan {
	t.Helper()
	tab, err := cat.Table(table)
	if err != nil {
		t.Fatal(err)
	}
	cols := make([]query.ColRef, len(tab.Columns))
	for i, c := range tab.Columns {
		cols[i] = query.ColRef{Table: table, Col: c.Name}
	}
	return &plan.SeqScan{Table: table, ColRefs: cols}
}

func joinPred(t *testing.T, cat *catalog.Catalog, lt, lc, rt, rc string) *query.Predicate {
	t.Helper()
	q, err := query.NewQuery([]string{lt, rt}, []*query.Predicate{{
		Kind: query.KindJoinCmp, Op: expr.OpEQ,
		Left: query.ColRef{Table: lt, Col: lc}, Right: query.ColRef{Table: rt, Col: rc},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := query.Analyze(cat, q); err != nil {
		t.Fatal(err)
	}
	return q.Preds[0]
}

func funcPred(t *testing.T, cat *catalog.Catalog, fname, table, col string) *query.Predicate {
	t.Helper()
	f, err := cat.Func(fname)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.NewQuery([]string{table}, []*query.Predicate{{
		Kind: query.KindFunc, Func: f, Args: []query.ColRef{{Table: table, Col: col}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := query.Analyze(cat, q); err != nil {
		t.Fatal(err)
	}
	return q.Preds[0]
}

func TestAnnotateSeqScan(t *testing.T) {
	cat := testCatalog(t)
	m := NewModel(cat, false)
	s := scan(cat, t, "s")
	if err := m.Annotate(s); err != nil {
		t.Fatal(err)
	}
	if s.EstCard != 10000 {
		t.Fatalf("card = %v", s.EstCard)
	}
	tab, _ := cat.Table("s")
	if s.EstCost != float64(tab.Pages()) {
		t.Fatalf("cost = %v, want pages %d", s.EstCost, tab.Pages())
	}
}

func TestAnnotateFilter(t *testing.T) {
	cat := testCatalog(t)
	m := NewModel(cat, false)
	p := funcPred(t, cat, "costly100", "s", "u20")
	f := &plan.Filter{Input: scan(cat, t, "s"), Pred: p}
	if err := m.Annotate(f); err != nil {
		t.Fatal(err)
	}
	if f.EstCard != 5000 {
		t.Fatalf("card = %v, want 5000", f.EstCard)
	}
	// 10000 invocations × 100 plus the scan cost.
	scanCost := f.Input.Cost()
	if got := f.EstCost - scanCost; math.Abs(got-1e6) > 1 {
		t.Fatalf("filter added cost = %v, want 1e6", got)
	}
}

func TestFilterInvocationsCachingCap(t *testing.T) {
	cat := testCatalog(t)
	p := funcPred(t, cat, "costly100", "s", "u20") // 500 distinct values
	uncached := NewModel(cat, false)
	cached := NewModel(cat, true)
	if got := uncached.FilterInvocations(p, 30000); got != 30000 {
		t.Fatalf("uncached invocations = %v", got)
	}
	if got := cached.FilterInvocations(p, 30000); got != 500 {
		t.Fatalf("cached invocations = %v, want 500 (distinct cap)", got)
	}
	if got := cached.FilterInvocations(p, 100); got != 100 {
		t.Fatalf("cached invocations below cap = %v, want 100", got)
	}
}

func TestAnnotateHashJoin(t *testing.T) {
	cat := testCatalog(t)
	m := NewModel(cat, false)
	jp := joinPred(t, cat, "r", "a1", "s", "a1")
	j := &plan.Join{
		Method:  plan.HashJoin,
		Outer:   scan(cat, t, "r"),
		Inner:   scan(cat, t, "s"),
		Primary: jp,
	}
	j.ColRefs = plan.ConcatCols(j.Outer, j.Inner)
	if err := m.Annotate(j); err != nil {
		t.Fatal(err)
	}
	// Key join r(1k) ⋈ s(10k) on unique cols: |out| = s·R·S = 1e-4·1e3·1e4 = 1000.
	if math.Abs(j.EstCard-1000) > 1 {
		t.Fatalf("join card = %v, want 1000", j.EstCard)
	}
	want := j.Outer.Cost() + j.Inner.Cost() + 11000*HashSpillPerTuple
	if math.Abs(j.EstCost-want) > 1 {
		t.Fatalf("join cost = %v, want %v", j.EstCost, want)
	}
}

func TestAnnotateIndexNestLoop(t *testing.T) {
	cat := testCatalog(t)
	m := NewModel(cat, false)
	jp := joinPred(t, cat, "r", "a1", "s", "a1")
	j := &plan.Join{
		Method:        plan.IndexNestLoop,
		Outer:         scan(cat, t, "r"),
		Inner:         scan(cat, t, "s"),
		Primary:       jp,
		InnerIndexCol: "a1",
	}
	if err := m.Annotate(j); err != nil {
		t.Fatal(err)
	}
	if math.Abs(j.EstCard-1000) > 1 {
		t.Fatalf("card = %v", j.EstCard)
	}
	// outer scan + 1000 probes + 1000 fetches.
	want := j.Outer.Cost() + 1000*ProbeCost + 1000*RandPageCost
	if math.Abs(j.EstCost-want) > 1 {
		t.Fatalf("cost = %v, want %v", j.EstCost, want)
	}
}

func TestAnnotateNestLoopRescans(t *testing.T) {
	cat := testCatalog(t)
	m := NewModel(cat, false)
	jp := joinPred(t, cat, "r", "a1", "s", "a1")
	j := &plan.Join{
		Method:  plan.NestLoop,
		Outer:   scan(cat, t, "r"),
		Inner:   scan(cat, t, "s"),
		Primary: jp,
	}
	if err := m.Annotate(j); err != nil {
		t.Fatal(err)
	}
	stab, _ := cat.Table("s")
	want := j.Outer.Cost() + 1000*float64(stab.Pages())
	if math.Abs(j.EstCost-want) > 1 {
		t.Fatalf("NL cost = %v, want %v (1000 rescans)", j.EstCost, want)
	}
}

func TestNestLoopInnerExpensiveFilterIsCatastrophicUncached(t *testing.T) {
	cat := testCatalog(t)
	jp := joinPred(t, cat, "r", "a1", "s", "a1")
	fp := funcPred(t, cat, "costly100", "s", "u20")
	mk := func() *plan.Join {
		return &plan.Join{
			Method:  plan.NestLoop,
			Outer:   scan(cat, t, "r"),
			Inner:   &plan.Filter{Input: scan(cat, t, "s"), Pred: fp},
			Primary: jp,
		}
	}
	uncachedJ, cachedJ := mk(), mk()
	if err := NewModel(cat, false).Annotate(uncachedJ); err != nil {
		t.Fatal(err)
	}
	if err := NewModel(cat, true).Annotate(cachedJ); err != nil {
		t.Fatal(err)
	}
	// Uncached: 1000 passes × 10000 tuples × 100 = 1e9 function charge.
	if uncachedJ.EstCost < 1e9 {
		t.Fatalf("uncached NL inner filter cost = %v, want >= 1e9", uncachedJ.EstCost)
	}
	// Cached: at most 500 distinct bindings × 100 = 5e4 charge.
	if cachedJ.EstCost > 1e6 {
		t.Fatalf("cached NL inner filter cost = %v, should be bounded by cache", cachedJ.EstCost)
	}
}

func TestExpensivePrimaryJoinPairsCharge(t *testing.T) {
	cat := testCatalog(t)
	f, _ := cat.Func("costly100")
	q, _ := query.NewQuery([]string{"r", "s"}, []*query.Predicate{{
		Kind: query.KindFunc, Func: f,
		Args: []query.ColRef{{Table: "r", Col: "u20"}, {Table: "s", Col: "u20"}},
	}})
	query.Analyze(cat, q)
	jp := q.Preds[0]
	m := NewModel(cat, false)
	j := &plan.Join{
		Method:           plan.NestLoop,
		Outer:            scan(cat, t, "r"),
		Inner:            scan(cat, t, "s"),
		Primary:          jp,
		ExpensivePrimary: true,
	}
	if err := m.Annotate(j); err != nil {
		t.Fatal(err)
	}
	// 1e3 × 1e4 pairs × 100 = 1e9 dominates.
	if j.EstCost < 1e9 {
		t.Fatalf("expensive primary join cost = %v, want >= 1e9", j.EstCost)
	}
	if math.Abs(j.EstCard-0.5*1e7) > 1 {
		t.Fatalf("card = %v, want 5e6", j.EstCard)
	}
}

func TestJoinInputStatsPerInputSelectivity(t *testing.T) {
	// The paper's motivating example (§3.2): R(100) ⋈ S(1000) on primary
	// keys has selectivity 1 over R and 1/10 over S — the global model
	// cannot express this.
	cat := catalog.New()
	for name, card := range map[string]int64{"rr": 100, "ss": 1000} {
		cat.AddTable(&catalog.Table{
			Name:       name,
			Columns:    []catalog.Column{{Name: "k", Type: expr.TInt, Distinct: card, Min: 0, Max: card - 1}},
			Card:       card,
			TupleBytes: 100,
		})
	}
	q, _ := query.NewQuery([]string{"rr", "ss"}, []*query.Predicate{{
		Kind: query.KindJoinCmp, Op: expr.OpEQ,
		Left: query.ColRef{Table: "rr", Col: "k"}, Right: query.ColRef{Table: "ss", Col: "k"},
	}})
	query.Analyze(cat, q)
	m := NewModel(cat, false)
	mkScan := func(tb string, card int64) *plan.SeqScan {
		return &plan.SeqScan{Table: tb, ColRefs: []query.ColRef{{Table: tb, Col: "k"}}}
	}
	j := &plan.Join{Method: plan.HashJoin, Outer: mkScan("rr", 100), Inner: mkScan("ss", 1000), Primary: q.Preds[0]}
	if err := m.Annotate(j); err != nil {
		t.Fatal(err)
	}
	outer, inner := m.JoinInputStats(j)
	if math.Abs(outer.Sel-1.0) > 1e-9 {
		t.Fatalf("sel over outer = %v, want 1", outer.Sel)
	}
	if math.Abs(inner.Sel-0.1) > 1e-9 {
		t.Fatalf("sel over inner = %v, want 0.1", inner.Sel)
	}
}

func TestGroupRankFormula(t *testing.T) {
	// rank(J1J2) = (s1·s2 − 1)/(c1 + s1·c2), §4.4.
	j1 := Module{Sel: 1.0, Cost: 3}
	j2 := Module{Sel: 0.1, Cost: 3}
	g := Compose(j1, j2)
	if math.Abs(g.Sel-0.1) > 1e-12 || math.Abs(g.Cost-6) > 1e-12 {
		t.Fatalf("compose = %+v", g)
	}
	want := (0.1 - 1) / 6.0
	if math.Abs(g.Rank()-want) > 1e-12 {
		t.Fatalf("group rank = %v, want %v", g.Rank(), want)
	}
	if math.Abs(GroupRank(j1, j2)-want) > 1e-12 {
		t.Fatal("GroupRank disagrees with Compose().Rank()")
	}
}

func TestComposeAssociativeQuick(t *testing.T) {
	f := func(s1, s2, s3, c1, c2, c3 float64) bool {
		abs := func(x float64) float64 { return math.Abs(x) }
		// constrain to sane positive ranges
		norm := func(x float64, scale float64) float64 { return math.Mod(abs(x), scale) + 0.001 }
		a := Module{Sel: norm(s1, 2), Cost: norm(c1, 100)}
		b := Module{Sel: norm(s2, 2), Cost: norm(c2, 100)}
		c := Module{Sel: norm(s3, 2), Cost: norm(c3, 100)}
		l := Compose(Compose(a, b), c)
		r := Compose(a, Compose(b, c))
		return math.Abs(l.Sel-r.Sel) < 1e-6*(1+abs(l.Sel)) &&
			math.Abs(l.Cost-r.Cost) < 1e-6*(1+abs(l.Cost))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupRankBetweenMembers(t *testing.T) {
	// For out-of-order pairs (rank(a) > rank(b)), the group rank lies
	// strictly between rank(b) and rank(a) — the property Predicate
	// Migration relies on for the parallel-chains step.
	a := Module{Sel: 1.0, Cost: 3} // rank 0
	b := Module{Sel: 0.1, Cost: 3} // rank -0.3
	g := GroupRank(a, b)
	if !(g > b.Rank() && g < a.Rank()) {
		t.Fatalf("group rank %v not between %v and %v", g, b.Rank(), a.Rank())
	}
}

func TestCachingBoundsJoinSelectivityAtOne(t *testing.T) {
	cat := testCatalog(t)
	// Many-to-many join r.a10 = s.a10: over r the tuple-based selectivity is
	// 10 (each r tuple matches ~10 s tuples); with caching it must be ≤ 1.
	jp := joinPred(t, cat, "r", "a10", "s", "a10")
	mk := func(caching bool) (InputStats, InputStats) {
		m := NewModel(cat, caching)
		j := &plan.Join{Method: plan.HashJoin, Outer: scan(cat, t, "r"), Inner: scan(cat, t, "s"), Primary: jp}
		if err := m.Annotate(j); err != nil {
			t.Fatal(err)
		}
		o, i := m.JoinInputStats(j)
		return o, i
	}
	o, _ := mk(false)
	if o.Sel <= 1 {
		t.Fatalf("uncached sel over outer = %v, want > 1 (duplicating join)", o.Sel)
	}
	oc, ic := mk(true)
	if oc.Sel > 1 || ic.Sel > 1 {
		t.Fatalf("cached selectivities must be bounded by 1: %v %v", oc.Sel, ic.Sel)
	}
}

func TestSelectionModuleCachingDiscount(t *testing.T) {
	cat := testCatalog(t)
	p := funcPred(t, cat, "costly100", "s", "u20") // 500 distinct
	m := NewModel(cat, true)
	mod := m.SelectionModule(p, 10000)
	// 500 invocations over 10000 tuples: effective per-tuple cost = 5.
	if math.Abs(mod.Cost-5) > 1e-9 {
		t.Fatalf("cached per-tuple cost = %v, want 5", mod.Cost)
	}
	mu := NewModel(cat, false).SelectionModule(p, 10000)
	if mu.Cost != 100 {
		t.Fatalf("uncached per-tuple cost = %v, want 100", mu.Cost)
	}
}

func TestAnnotateErrorsOnBadInner(t *testing.T) {
	cat := testCatalog(t)
	m := NewModel(cat, false)
	jp := joinPred(t, cat, "r", "a1", "s", "a1")
	inner := &plan.Join{Method: plan.HashJoin, Outer: scan(cat, t, "r"), Inner: scan(cat, t, "s"), Primary: jp}
	j := &plan.Join{Method: plan.NestLoop, Outer: scan(cat, t, "r"), Inner: inner, Primary: jp}
	if err := m.Annotate(j); err == nil {
		t.Fatal("NL over a join inner should be rejected (left-deep only)")
	}
}
