package cost

import (
	"math"

	"predplace/internal/plan"
	"predplace/internal/query"
)

// Module is a stream operator viewed through the lens of the rank metric:
// a per-stream-tuple selectivity and a per-stream-tuple differential cost.
// Selections and (per-input views of) joins are both Modules; the Predicate
// Migration algorithm composes adjacent out-of-rank-order join modules into
// groups using Compose.
type Module struct {
	Sel  float64
	Cost float64
}

// Rank returns (selectivity − 1)/cost with the conventional ±∞ limits.
func (m Module) Rank() float64 { return query.Rank(m.Sel, m.Cost) }

// Compose fuses module a followed by module b into one group module:
//
//	sel  = sel(a)·sel(b)
//	cost = cost(a) + sel(a)·cost(b)
//
// which yields the paper's group rank (§4.4):
// (s₁s₂ − 1) / (c₁ + s₁c₂).
func Compose(a, b Module) Module {
	return Module{Sel: a.Sel * b.Sel, Cost: a.Cost + a.Sel*b.Cost}
}

// GroupRank is the rank of the composition of a then b.
func GroupRank(a, b Module) float64 { return Compose(a, b).Rank() }

// InputStats is a join's behaviour as seen from one of its inputs: the
// selectivity the join applies to that input stream and the differential
// cost per tuple of that input — the two quantities the revised (non-global)
// cost model of §3.2 tracks separately per input.
type InputStats struct {
	Sel  float64
	Cost float64
}

// Rank of the join with respect to this input.
func (s InputStats) Rank() float64 { return query.Rank(s.Sel, s.Cost) }

// Module converts the stats to a Module for grouping.
func (s InputStats) Module() Module { return Module{Sel: s.Sel, Cost: s.Cost} }

// JoinInputStats computes the per-input selectivities and differential costs
// of an annotated join node. The join's children must carry current
// estimates (run Annotate first).
//
// Selectivities follow §3.2: sel over R is s·{S} (tuple-based), computed as
// outCard/{R}; under predicate caching they are computed on values and
// bounded by 1 (§5.1). Differential costs follow the linear model; expensive
// primary join predicates add c_p·{other side} using plan-time cardinalities
// (§5.2's deliberate under-estimate).
func (m *Model) JoinInputStats(j *plan.Join) (outer, inner InputStats) {
	R := math.Max(j.Outer.Card(), 1e-9)
	S := math.Max(j.Inner.Card(), 1e-9)
	out := j.EstCard

	outer.Sel = out / R
	inner.Sel = out / S
	if m.Caching && j.Primary != nil && j.Primary.Kind == query.KindJoinCmp {
		// Value-based selectivity: s · number_of_values(other.col), ≤ 1.
		s := j.Primary.Selectivity
		dl := math.Min(m.distinctOf(j.Primary.Left), R)
		dr := math.Min(m.distinctOf(j.Primary.Right), S)
		// Left/Right orientation: whichever side belongs to the outer stream.
		outerTables := plan.Tables(j.Outer)
		lv, rv := dl, dr
		if !outerTables[j.Primary.Left.Table] {
			lv, rv = dr, dl
		}
		outer.Sel = math.Min(1, s*rv)
		inner.Sel = math.Min(1, s*lv)
	}

	var cp float64 // expensive primary per-pair cost
	if j.Primary != nil && j.Primary.IsExpensive() {
		cp = j.Primary.CostPerTuple
	}

	switch j.Method {
	case plan.IndexNestLoop:
		matchesPerOuter := out / R
		outer.Cost = ProbeCost + matchesPerOuter*RandPageCost + cp*S
		inner.Cost = 0 + cp*R
	case plan.NestLoop:
		pages := m.innerBasePages(j)
		outer.Cost = pages*SeqPageCost + cp*S
		inner.Cost = 0 + cp*R
	case plan.HashJoin:
		outer.Cost = HashSpillPerTuple + cp*S
		inner.Cost = HashSpillPerTuple + cp*R
	case plan.MergeJoin:
		if j.SortOuter {
			outer.Cost = SortSpillPerTuple
		}
		if j.SortInner {
			inner.Cost = SortSpillPerTuple
		}
		outer.Cost += cp * S
		inner.Cost += cp * R
	}
	return outer, inner
}

// innerBasePages returns the page count of the nested-loop join's inner base
// table (constant w.r.t. predicate placement).
func (m *Model) innerBasePages(j *plan.Join) float64 {
	table, _, ok := plan.BaseTable(j.Inner)
	if !ok {
		return 0
	}
	tab, err := m.Cat.Table(table)
	if err != nil {
		return 0
	}
	return float64(tab.Pages())
}

// SelectionModule views a selection predicate as a stream module, honouring
// caching: with caching on, the effective per-stream-tuple cost of a
// cacheable predicate shrinks when the stream has fewer distinct bindings
// than tuples.
func (m *Model) SelectionModule(p *query.Predicate, streamCard float64) Module {
	cost := p.CostPerTuple
	if m.Caching && streamCard > 0 {
		inv := m.FilterInvocations(p, streamCard)
		cost = p.CostPerTuple * inv / streamCard
	}
	return Module{Sel: p.Selectivity, Cost: cost}
}
