package cost

// Transfer-side estimation (DESIGN.md §16): before planning, the optimizer
// derives each table's received-filter selectivity from the query's join-key
// equivalence classes, so the DP, the rank calculations, and PushDown vs
// Migration decisions all see the post-transfer cardinalities. The estimate
// mirrors the executor's prepass: classes from equality join predicates,
// per-table local selectivities from the predicates the prepass actually
// applies (cheap comparisons always, expensive functions only when the
// cache makes their prepass evaluation pay for itself).

import (
	"math"
	"sort"

	"predplace/internal/catalog"
	"predplace/internal/expr"
	"predplace/internal/query"
)

// transferMinSel floors the combined per-table selectivity; estimates below
// it are indistinguishable from "everything pruned" and would destabilize
// join-order comparisons.
const transferMinSel = 1e-6

// TransferInfo carries the optimizer's transfer estimates: set as
// Model.Transfer it adjusts every scan's cardinality and cost, and its
// PrepassCost is added once to the plan's total (optimizer.Info.EstCost),
// never inside the recursive annotation — the prepass runs once per query,
// not once per candidate subtree.
type TransferInfo struct {
	// Sel maps table → the combined selectivity of its received filters
	// (product over its equivalence classes of the containment ratio
	// against the class's smallest surviving member).
	Sel map[string]float64
	// Recv maps table → its own join-key columns with received filters,
	// sorted — what the scans will probe, and what EXPLAIN annotates.
	Recv map[string][]string
	// Classes counts the equivalence classes spanning two or more tables.
	Classes int
	// PrepassCost estimates the transfer prepass's charged cost: up to two
	// heap scans per participating table plus its filter probes and builds.
	// Deliberately conservative (the backward pass often skips tables, and
	// builds happen only on survivors).
	PrepassCost float64
}

// ComputeTransfer estimates predicate transfer's effect for a query, or nil
// when no equality-join equivalence class spans two tables (transfer would
// be a no-op). Caching mirrors the executor: with the predicate cache on,
// cacheable expensive selections participate in the prepass, exporting
// their selectivity into the filters their table seeds.
func ComputeTransfer(cat *catalog.Catalog, q *query.Query, caching bool) (*TransferInfo, error) {
	// Union-find over "table.col" keys, seeded by equality join predicates.
	parent := map[string]string{}
	refs := map[string]query.ColRef{}
	key := func(r query.ColRef) string {
		k := r.Table + "." + r.Col
		refs[k] = r
		return k
	}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	for _, p := range q.Preds {
		if p.Kind == query.KindJoinCmp && p.Op == expr.OpEQ && len(p.Tables) == 2 {
			ra, rb := find(key(p.Left)), find(key(p.Right))
			if ra != rb {
				if rb < ra {
					ra, rb = rb, ra
				}
				parent[rb] = ra
			}
		}
	}
	groups := map[string][]string{}
	for k := range parent {
		r := find(k)
		groups[r] = append(groups[r], k)
	}

	// Per-table local selectivity, matching what the prepass applies.
	localSel := func(t string) float64 {
		sel := 1.0
		for _, p := range q.SelectionsOn(t) {
			include := false
			switch p.Kind {
			case query.KindSelCmp:
				include = true
			case query.KindFunc:
				include = caching && p.Func != nil && p.Func.Cacheable
			default: // join predicates are not local selections
			}
			if include && p.Selectivity > 0 && p.Selectivity < 1 {
				sel *= p.Selectivity
			}
		}
		return sel
	}

	info := &TransferInfo{Sel: map[string]float64{}, Recv: map[string][]string{}}
	classTables := map[string]int{} // table → number of classes it is in
	for _, members := range groups {
		tabs := map[string]bool{}
		for _, m := range members {
			tabs[refs[m].Table] = true
		}
		if len(tabs) < 2 {
			continue
		}
		info.Classes++
		// Surviving distinct values per member: min(distinct, card×localSel).
		type member struct {
			ref      query.ColRef
			distinct float64
			sd       float64
		}
		ms := make([]member, 0, len(members))
		for _, k := range members {
			ref := refs[k]
			tab, err := cat.Table(ref.Table)
			if err != nil {
				return nil, err
			}
			col, err := tab.Column(ref.Col)
			if err != nil {
				return nil, err
			}
			d := float64(col.Distinct)
			if d <= 0 {
				d = float64(tab.Card)
			}
			ms = append(ms, member{ref: ref, distinct: d, sd: math.Min(d, float64(tab.Card)*localSel(ref.Table))})
		}
		for i, m := range ms {
			// Containment: of this member's distinct values, at most the
			// smallest other member's surviving distinct count can join.
			minOther := math.Inf(1)
			for j, o := range ms {
				if j != i && o.ref.Table != m.ref.Table && o.sd < minOther {
					minOther = o.sd
				}
			}
			if math.IsInf(minOther, 1) {
				continue
			}
			sel := math.Min(1, minOther/m.distinct)
			t := m.ref.Table
			if _, ok := info.Sel[t]; !ok {
				info.Sel[t] = 1
			}
			info.Sel[t] = math.Max(info.Sel[t]*sel, transferMinSel)
			info.Recv[t] = append(info.Recv[t], m.ref.Col)
			classTables[t]++
		}
	}
	if info.Classes == 0 {
		return nil, nil
	}
	for t := range info.Recv {
		sort.Strings(info.Recv[t])
	}
	for t, n := range classTables {
		tab, err := cat.Table(t)
		if err != nil {
			return nil, err
		}
		info.PrepassCost += 2 * (float64(tab.Pages())*SeqPageCost +
			float64(tab.Card)*float64(n)*(BloomProbePerTuple+BloomAddPerTuple))
	}
	return info, nil
}
