// Package cost implements the paper's cost model (§3.2, revised from the
// "global" model of HS93a): strictly linear join costs of the form
// k·{R} + l·{S} + m with *per-input* differential costs and *per-input*
// selectivities, the rank metric, group ranks for out-of-order join pairs,
// and value-based selectivities under predicate caching (§5.1).
//
// All costs are in random-I/O units — the same unit the executor reports, so
// estimated and measured costs are directly comparable.
package cost

import (
	"fmt"
	"math"

	"predplace/internal/catalog"
	"predplace/internal/plan"
	"predplace/internal/query"
)

// Cost-model constants, shared with the executor's synthetic charging so the
// estimates and the measured charged costs agree in shape.
const (
	// SeqPageCost is the charge for reading one heap page sequentially.
	SeqPageCost = 1.0
	// RandPageCost is the charge for one random page fetch (heap tuple fetch
	// driven by an index probe).
	RandPageCost = 1.0
	// ProbeCost is the charge per B-tree probe (leaf access; upper levels
	// are assumed cached — the paper prices a probe at "typically 3 I/Os or
	// less"; our simulated tree charges one leaf I/O).
	ProbeCost = 1.0
	// SortSpillPerTuple simulates external-sort spill traffic per tuple
	// (write + read of runs at ~78 tuples per 8 KiB page ≈ 2/78).
	SortSpillPerTuple = 0.026
	// HashSpillPerTuple simulates Grace-hash partition traffic per tuple on
	// each side (write + read of partitions).
	HashSpillPerTuple = 0.026
	// BloomAddPerTuple and BloomProbePerTuple charge predicate-transfer
	// Bloom filter insertions and probes (CPU-only, but the model prices
	// them so transfer is never free; an add hashes once and touches a
	// cache line eight times, a probe does the same read-only).
	BloomAddPerTuple   = 0.002
	BloomProbePerTuple = 0.001
	// TopKCmpPerTuple prices one bounded-heap comparison round (offer a row
	// against the current k-th boundary, sift on accept). CPU-only and tiny
	// next to a page fetch, but nonzero so a TopK plan never looks free and
	// the n·log₂(k+1) heap term can discriminate between candidate roots.
	TopKCmpPerTuple = 0.001
)

// Model estimates cardinalities and costs over plan trees.
type Model struct {
	// Cat supplies table statistics and function metadata.
	Cat *catalog.Catalog
	// Caching reflects whether predicate caching is enabled: join
	// selectivities used in rank calculations become value-based and are
	// bounded by 1, and expensive-filter invocation estimates are capped by
	// the distinct count of the filter's argument columns (§5.1).
	Caching bool
	// Transfer, when non-nil, makes scans reflect predicate transfer: each
	// receiving table's cardinality shrinks by its combined filter
	// selectivity and its cost grows by the per-record probe charge. Set by
	// the optimizer (ComputeTransfer) before planning, so every placement
	// and join-order decision is taken under transfer-adjusted estimates —
	// an expensive predicate whose survivors seed a filter exports its
	// selectivity, which moves the (s−1)/c rank knife-edge.
	Transfer *TransferInfo
}

// transferSel returns the combined received-filter selectivity for a base
// table (1 when transfer is off or the table receives nothing).
func (m *Model) transferSel(table string) float64 {
	if m.Transfer == nil {
		return 1
	}
	if s, ok := m.Transfer.Sel[table]; ok && s > 0 && s < 1 {
		return s
	}
	return 1
}

// transferRecv returns the filter columns a base table receives (nil when
// transfer is off).
func (m *Model) transferRecv(table string) []string {
	if m.Transfer == nil {
		return nil
	}
	return m.Transfer.Recv[table]
}

// NewModel builds a cost model over the given catalog.
func NewModel(cat *catalog.Catalog, caching bool) *Model {
	return &Model{Cat: cat, Caching: caching}
}

// distinctOf returns the distinct-value statistic of a base column, or 0 if
// unknown.
func (m *Model) distinctOf(ref query.ColRef) float64 {
	tab, err := m.Cat.Table(ref.Table)
	if err != nil {
		return 0
	}
	col, err := tab.Column(ref.Col)
	if err != nil {
		return 0
	}
	return float64(col.Distinct)
}

// FilterInvocations estimates how many times a filter's predicate is
// actually evaluated on a stream of inputCard tuples. With caching on and a
// cacheable predicate, invocations are capped by the number of distinct
// argument bindings (product of the argument columns' distinct counts).
func (m *Model) FilterInvocations(p *query.Predicate, inputCard float64) float64 {
	if inputCard < 0 {
		inputCard = 0
	}
	if !m.Caching || p.Kind != query.KindFunc || p.Func == nil || !p.Func.Cacheable {
		return inputCard
	}
	distinct := 1.0
	for _, a := range p.Args {
		d := m.distinctOf(a)
		if d <= 0 {
			return inputCard
		}
		distinct *= d
	}
	return math.Min(inputCard, distinct)
}

// FilterStats returns the output cardinality and the added cost of applying
// predicate p to a stream of inputCard tuples.
func (m *Model) FilterStats(p *query.Predicate, inputCard float64) (outCard, addedCost float64) {
	outCard = inputCard * p.Selectivity
	addedCost = m.FilterInvocations(p, inputCard) * p.CostPerTuple
	return outCard, addedCost
}

// streamInfo carries what Annotate computes per subtree.
type streamInfo struct {
	card float64
	cost float64
}

// Annotate recomputes EstCard and EstCost bottom-up over the whole tree.
// It is the single source of truth for plan costs: the DP, the migration
// re-costing pass, the exhaustive oracle, and the tests all use it.
func (m *Model) Annotate(n plan.Node) error {
	_, err := m.annotate(n)
	return err
}

func (m *Model) annotate(n plan.Node) (streamInfo, error) {
	switch t := n.(type) {
	case *plan.SeqScan:
		tab, err := m.Cat.Table(t.Table)
		if err != nil {
			return streamInfo{}, err
		}
		info := streamInfo{card: float64(tab.Card), cost: float64(tab.Pages()) * SeqPageCost}
		// Received transfer filters: every record is probed before the
		// full-row decode, and only the filtered fraction flows upstream.
		t.TransferRecv, t.TransferSel = nil, 0
		if recv := m.transferRecv(t.Table); len(recv) > 0 {
			info.cost += float64(tab.Card) * float64(len(recv)) * BloomProbePerTuple
			info.card *= m.transferSel(t.Table)
			t.TransferRecv, t.TransferSel = recv, m.transferSel(t.Table)
		}
		t.EstCard, t.EstCost = info.card, info.cost
		return info, nil

	case *plan.IndexScan:
		tab, err := m.Cat.Table(t.Table)
		if err != nil {
			return streamInfo{}, err
		}
		card := float64(tab.Card)
		if t.Matched != nil {
			card *= t.Matched.Selectivity
		}
		// One probe plus a random heap fetch per matching tuple; full-index
		// scans (no bounds) walk all leaves plus fetch every tuple.
		cost := ProbeCost + card*RandPageCost
		if t.Eq == nil && t.Lo == nil && t.Hi == nil {
			leaves := float64(tab.Card) / 256
			cost = leaves*RandPageCost + card*RandPageCost
		}
		// Transfer filters are probed on the already-fetched rows (the
		// random I/O is paid either way); pruning shrinks the output.
		t.TransferRecv, t.TransferSel = nil, 0
		if recv := m.transferRecv(t.Table); len(recv) > 0 {
			cost += card * float64(len(recv)) * BloomProbePerTuple
			card *= m.transferSel(t.Table)
			t.TransferRecv, t.TransferSel = recv, m.transferSel(t.Table)
		}
		info := streamInfo{card: card, cost: cost}
		t.EstCard, t.EstCost = info.card, info.cost
		return info, nil

	case *plan.Filter:
		in, err := m.annotate(t.Input)
		if err != nil {
			return streamInfo{}, err
		}
		outCard, added := m.FilterStats(t.Pred, in.card)
		info := streamInfo{card: outCard, cost: in.cost + added}
		t.EstCard, t.EstCost = info.card, info.cost
		return info, nil

	case *plan.Join:
		return m.annotateJoin(t)

	case *plan.TopK:
		in, err := m.annotate(t.Input)
		if err != nil {
			return streamInfo{}, err
		}
		// The heap consumes the whole input (n·log₂(k+1) comparisons) but
		// releases at most k rows upstream — the post-LIMIT cardinality that
		// gives pulled-up expensive predicates their ≤ k-invocations bound.
		k := float64(t.K)
		info := streamInfo{
			card: math.Min(in.card, k),
			cost: in.cost + in.card*math.Log2(k+1)*TopKCmpPerTuple,
		}
		t.EstCard, t.EstCost = info.card, info.cost
		return info, nil

	case *plan.Limit:
		in, err := m.annotate(t.Input)
		if err != nil {
			return streamInfo{}, err
		}
		// Early termination: the limit stops pulling once k rows arrive, so
		// under a uniform-production assumption only the k/card fraction of
		// the input's work is ever paid. This is the one place estimated cost
		// legitimately shrinks below the input's (plan.Validate sanctions it).
		k := float64(t.K)
		info := streamInfo{card: math.Min(in.card, k), cost: in.cost}
		if in.card > k && in.card > 0 {
			info.cost = in.cost * (k / in.card)
		}
		t.EstCard, t.EstCost = info.card, info.cost
		return info, nil
	}
	return streamInfo{}, fmt.Errorf("cost: unknown node type %T", n)
}

// JoinSel returns the tuple-based total selectivity s of a join predicate.
func JoinSel(p *query.Predicate) float64 {
	if p == nil {
		return 1 // cross product
	}
	return p.Selectivity
}

func (m *Model) annotateJoin(j *plan.Join) (streamInfo, error) {
	outer, err := m.annotate(j.Outer)
	if err != nil {
		return streamInfo{}, err
	}
	inner, err := m.annotate(j.Inner)
	if err != nil {
		return streamInfo{}, err
	}
	s := JoinSel(j.Primary)
	R, S := outer.card, inner.card

	var cost float64
	var outCard float64

	switch j.Method {
	case plan.IndexNestLoop:
		// Probes run against the *base* inner table's index; inner-side
		// filters apply to fetched matches. The inner subtree is never
		// scanned, so its scan cost is not added.
		table, filters, ok := plan.BaseTable(j.Inner)
		if !ok {
			return streamInfo{}, fmt.Errorf("cost: index-nested-loop inner is not a base table")
		}
		tab, err := m.Cat.Table(table)
		if err != nil {
			return streamInfo{}, err
		}
		base := float64(tab.Card)
		matches := s * R * base
		cost = outer.cost + R*ProbeCost + matches*RandPageCost
		outCard = matches
		for _, f := range filters {
			if f == j.Primary {
				continue
			}
			c, added := m.FilterStats(f, outCard)
			outCard = c
			cost += added
		}

	case plan.NestLoop:
		// The inner (a possibly filtered base table) is rescanned once per
		// outer tuple; the page count of the base table is constant
		// regardless of predicate placement (§3.2), which is exactly why NL
		// fits the linear cost model.
		table, filters, ok := plan.BaseTable(j.Inner)
		if !ok {
			return streamInfo{}, fmt.Errorf("cost: nested-loop inner is not a base table")
		}
		tab, err := m.Cat.Table(table)
		if err != nil {
			return streamInfo{}, err
		}
		passes := math.Max(R, 1)
		cost = outer.cost + passes*float64(tab.Pages())*SeqPageCost
		// Inner-side filters are re-evaluated on every pass; with caching,
		// total invocations are bounded by distinct argument bindings.
		streamCard := float64(tab.Card)
		// The rescanned inner probes its received transfer filters on every
		// pass (the executor rebuilds the scan per outer tuple), pruning the
		// stream before the inner-side filters see it.
		if recv := m.transferRecv(table); len(recv) > 0 {
			cost += passes * streamCard * float64(len(recv)) * BloomProbePerTuple
			streamCard *= m.transferSel(table)
		}
		for _, f := range filters {
			inv := m.FilterInvocations(f, passes*streamCard)
			cost += inv * f.CostPerTuple
			streamCard *= f.Selectivity
		}
		pairs := R * streamCard
		if j.Primary != nil && j.Primary.IsExpensive() {
			inv := m.FilterInvocations(j.Primary, pairs)
			cost += inv * j.Primary.CostPerTuple
		}
		outCard = s * R * streamCard

	case plan.HashJoin:
		cost = outer.cost + inner.cost + S*HashSpillPerTuple + R*HashSpillPerTuple
		if j.Primary != nil && j.Primary.IsExpensive() {
			pairs := R * S
			cost += m.FilterInvocations(j.Primary, pairs) * j.Primary.CostPerTuple
		}
		outCard = s * R * S

	case plan.MergeJoin:
		cost = outer.cost + inner.cost
		if j.SortOuter {
			cost += R * SortSpillPerTuple
		}
		if j.SortInner {
			cost += S * SortSpillPerTuple
		}
		if j.Primary != nil && j.Primary.IsExpensive() {
			pairs := R * S
			cost += m.FilterInvocations(j.Primary, pairs) * j.Primary.CostPerTuple
		}
		outCard = s * R * S

	default:
		return streamInfo{}, fmt.Errorf("cost: unknown join method %v", j.Method)
	}

	j.EstCard, j.EstCost = outCard, cost
	return streamInfo{card: outCard, cost: cost}, nil
}
