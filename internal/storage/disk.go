package storage

import (
	"fmt"
	"sync"
)

// Disk simulates a disk: a set of files, each an append-only array of pages.
// All physical page traffic is recorded in the Accountant. The contents live
// in memory (the module is self-contained and deterministic), but the access
// discipline — page granularity, read-before-use, explicit writeback — is
// that of a real disk manager, so I/O counts are faithful.
type Disk struct {
	mu    sync.Mutex
	files map[FileID][]*Page
	next  FileID
	acct  *Accountant
}

// NewDisk creates an empty disk recording I/O into acct.
func NewDisk(acct *Accountant) *Disk {
	if acct == nil {
		acct = &Accountant{}
	}
	return &Disk{files: make(map[FileID][]*Page), next: 1, acct: acct}
}

// Accountant returns the disk's I/O accountant.
func (d *Disk) Accountant() *Accountant { return d.acct }

// CreateFile allocates a new empty file and returns its id.
func (d *Disk) CreateFile() FileID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.next
	d.next++
	d.files[id] = nil
	return id
}

// NumPages returns the number of pages in file f.
func (d *Disk) NumPages(f FileID) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.files[f])
}

// AllocPage appends a fresh page to file f and returns its page id.
// Allocation itself is not charged as an I/O; the subsequent write is.
func (d *Disk) AllocPage(f FileID) (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pages, ok := d.files[f]
	if !ok {
		return 0, fmt.Errorf("storage: no such file %d", f)
	}
	d.files[f] = append(pages, NewPage())
	return PageID(len(pages)), nil
}

// ReadPage fetches a copy-by-reference of page p of file f, recording the
// physical read. Callers go through the buffer pool, which avoids re-reading
// resident pages.
func (d *Disk) ReadPage(f FileID, p PageID) (*Page, error) {
	d.mu.Lock()
	pages, ok := d.files[f]
	var pg *Page
	if ok && int(p) < len(pages) {
		pg = pages[p]
	}
	d.mu.Unlock()
	if pg == nil {
		return nil, fmt.Errorf("storage: read beyond EOF: file %d page %d", f, p)
	}
	d.acct.RecordRead(f, p)
	return pg, nil
}

// WritePage records a physical write of page p of file f. Because pages are
// shared by reference with the buffer pool, the data is already current; only
// the accounting and bounds check are performed.
func (d *Disk) WritePage(f FileID, p PageID) error {
	d.mu.Lock()
	pages, ok := d.files[f]
	bad := !ok || int(p) >= len(pages)
	d.mu.Unlock()
	if bad {
		return fmt.Errorf("storage: write beyond EOF: file %d page %d", f, p)
	}
	d.acct.RecordWrite()
	return nil
}
