package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Disk simulates a disk: a set of files, each an append-only array of pages.
// All physical page traffic is recorded in the Accountant. The contents live
// in memory (the module is self-contained and deterministic), but the access
// discipline — page granularity, read-before-use, explicit writeback — is
// that of a real disk manager, so I/O counts are faithful.
type Disk struct {
	mu    sync.Mutex
	files map[FileID][]*Page
	next  FileID
	acct  *Accountant
	// faults, when set, is consulted before every physical read and write;
	// an injected fault fails the I/O without charging it (the page never
	// transferred). See faultfs.go.
	faults atomic.Pointer[FaultInjector]
}

// NewDisk creates an empty disk recording I/O into acct.
func NewDisk(acct *Accountant) *Disk {
	if acct == nil {
		acct = &Accountant{}
	}
	return &Disk{files: make(map[FileID][]*Page), next: 1, acct: acct}
}

// Accountant returns the disk's I/O accountant.
func (d *Disk) Accountant() *Accountant { return d.acct }

// SetFaults installs (or, with nil, removes) a fault injector under every
// subsequent page read and write.
func (d *Disk) SetFaults(fi *FaultInjector) { d.faults.Store(fi) }

// Faults returns the installed fault injector (nil when fault-free).
func (d *Disk) Faults() *FaultInjector { return d.faults.Load() }

// CreateFile allocates a new empty file and returns its id.
func (d *Disk) CreateFile() FileID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.next
	d.next++
	d.files[id] = nil
	return id
}

// NumPages returns the number of pages in file f.
func (d *Disk) NumPages(f FileID) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.files[f])
}

// AllocPage appends a fresh page to file f and returns its page id.
// Allocation itself is not charged as an I/O; the subsequent write is.
func (d *Disk) AllocPage(f FileID) (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pages, ok := d.files[f]
	if !ok {
		return 0, fmt.Errorf("storage: no such file %d", f)
	}
	d.files[f] = append(pages, NewPage())
	return PageID(len(pages)), nil
}

// ReadPage fetches a copy-by-reference of page p of file f, recording the
// physical read. Callers go through the buffer pool, which avoids re-reading
// resident pages.
func (d *Disk) ReadPage(f FileID, p PageID) (*Page, error) {
	d.mu.Lock()
	pages, ok := d.files[f]
	var pg *Page
	if ok && int(p) < len(pages) {
		pg = pages[p]
	}
	d.mu.Unlock()
	if pg == nil {
		return nil, fmt.Errorf("storage: read beyond EOF: file %d page %d", f, p)
	}
	if fi := d.faults.Load(); fi != nil {
		if err := fi.beforeRead(f, p); err != nil {
			return nil, err
		}
	}
	d.acct.RecordRead(f, p)
	return pg, nil
}

// WritePage records a physical write of page p of file f. Because pages are
// shared by reference with the buffer pool, the data is already current; only
// the accounting and bounds check are performed.
func (d *Disk) WritePage(f FileID, p PageID) error {
	d.mu.Lock()
	pages, ok := d.files[f]
	bad := !ok || int(p) >= len(pages)
	d.mu.Unlock()
	if bad {
		return fmt.Errorf("storage: write beyond EOF: file %d page %d", f, p)
	}
	if fi := d.faults.Load(); fi != nil {
		if err := fi.beforeWrite(f, p); err != nil {
			return err
		}
	}
	d.acct.RecordWrite()
	return nil
}
