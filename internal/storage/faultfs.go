package storage

// Deterministic storage fault injection: a FaultInjector sits under the
// buffer pool and heap files (hooked into Disk.ReadPage/WritePage) and fails
// page I/Os on demand — the Nth read or write of a run, or each I/O with a
// seeded probability. Injection is deterministic in the sequence of I/O
// calls: the same seed and the same call sequence produce the same faults,
// so error-path tests are reproducible. Under parallel execution the call
// *order* may vary between runs, but every decision is still drawn from the
// same seeded stream, so sweeps assert outcomes ("wrapped error or clean
// rows"), not specific fault sites.
//
// A failed I/O is not charged to the accountant: the page never transferred.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// ErrInjectedFault is the sentinel wrapped by every injected I/O failure.
// Callers detect injected faults with errors.Is.
var ErrInjectedFault = errors.New("storage: injected fault")

// FaultConfig selects which I/Os fail. Zero values disable each trigger; a
// zero config injects nothing (but still counts I/Os, which sweeps use to
// size FailReadN against a query's real read count).
type FaultConfig struct {
	// Seed drives the probabilistic triggers (ReadProb/WriteProb).
	Seed int64
	// FailReadN fails the Nth page read of the run (1-based; 0 = disabled).
	FailReadN int64
	// FailWriteN fails the Nth page write of the run (1-based; 0 = disabled).
	FailWriteN int64
	// ReadProb fails each page read with this probability.
	ReadProb float64
	// WriteProb fails each page write with this probability.
	WriteProb float64
}

// FaultInjector implements FaultConfig over a mutex-guarded seeded stream.
// Safe for concurrent use by parallel workers.
type FaultInjector struct {
	mu       sync.Mutex
	cfg      FaultConfig
	rng      *rand.Rand
	reads    int64
	writes   int64
	injected int64
}

// NewFaultInjector creates an injector for one run of cfg.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	return &FaultInjector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Counts reports the I/Os observed and the faults injected so far.
func (fi *FaultInjector) Counts() (reads, writes, injected int64) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.reads, fi.writes, fi.injected
}

// beforeRead is consulted by Disk.ReadPage before performing a read; a
// non-nil return fails the read.
func (fi *FaultInjector) beforeRead(f FileID, p PageID) error {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.reads++
	if fi.cfg.FailReadN > 0 && fi.reads == fi.cfg.FailReadN {
		fi.injected++
		return fmt.Errorf("read %d of file %d page %d: %w", fi.reads, f, p, ErrInjectedFault)
	}
	if fi.cfg.ReadProb > 0 && fi.rng.Float64() < fi.cfg.ReadProb {
		fi.injected++
		return fmt.Errorf("read %d of file %d page %d (probabilistic): %w", fi.reads, f, p, ErrInjectedFault)
	}
	return nil
}

// beforeWrite is consulted by Disk.WritePage before performing a write; a
// non-nil return fails the write.
func (fi *FaultInjector) beforeWrite(f FileID, p PageID) error {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.writes++
	if fi.cfg.FailWriteN > 0 && fi.writes == fi.cfg.FailWriteN {
		fi.injected++
		return fmt.Errorf("write %d of file %d page %d: %w", fi.writes, f, p, ErrInjectedFault)
	}
	if fi.cfg.WriteProb > 0 && fi.rng.Float64() < fi.cfg.WriteProb {
		fi.injected++
		return fmt.Errorf("write %d of file %d page %d (probabilistic): %w", fi.writes, f, p, ErrInjectedFault)
	}
	return nil
}
