package storage

import (
	"container/list"
	"sync"
)

// IOTracker gives one query private, deterministic I/O accounting over a
// shared BufferPool. Before the multi-session engine, per-query charged cost
// was a delta against the disk's single global Accountant, and every query
// began by flushing the whole buffer pool so it was measured cold; neither
// survives two queries running at once — concurrent queries would observe
// each other's page traffic, and a flush would evict pages out from under a
// running scan.
//
// The tracker replaces both with a per-query simulation: it mirrors the
// pool's exact replacement geometry (shard hash, per-shard capacities, LRU
// with pinned-frame skipping) starting from an empty — cold — state, and
// charges a read into its own Accountant exactly when the page access would
// have missed in a cold, private pool. Physical page traffic still flows
// through the shared pool (which may hit where the simulation misses — that
// is the performance win of sharing); the tracker's accountant is the
// measurement. A query's charged cost is therefore byte-identical to what
// the same query charges running alone on a freshly flushed pool, no matter
// what other sessions do to the shared pool in the meantime.
//
// One tracker serves one query. Within that query the engine's parallel
// operators may drive it from many goroutines; shard mutexes and the atomic
// Accountant make that safe, with the same best-effort sequential/random
// split the real pool has under parallelism.
type IOTracker struct {
	acct   Accountant
	shards []trackShard
}

type trackShard struct {
	mu       sync.Mutex
	capacity int
	frames   map[frameKey]*trackFrame
	lru      *list.List // front = most recently used; holds *trackFrame
}

type trackFrame struct {
	key   frameKey
	pins  int
	dirty bool
	elem  *list.Element
}

// NewIOTracker creates a tracker simulating a cold private pool with the
// same capacity and shard layout as pool.
func NewIOTracker(pool *BufferPool) *IOTracker {
	capacity, shards := pool.Capacity(), pool.Shards()
	t := &IOTracker{shards: make([]trackShard, shards)}
	base, extra := capacity/shards, capacity%shards
	for i := range t.shards {
		cap := base
		if i < extra {
			cap++
		}
		t.shards[i] = trackShard{
			capacity: cap,
			frames:   make(map[frameKey]*trackFrame, cap),
			lru:      list.New(),
		}
	}
	return t
}

// Acct returns the tracker's private accountant — the query's I/O ledger.
// Index probes charge their synthetic random reads here directly.
func (t *IOTracker) Acct() *Accountant { return &t.acct }

// Stats snapshots the query's accumulated I/O.
func (t *IOTracker) Stats() IOStats { return t.acct.Stats() }

func (t *IOTracker) shardFor(key frameKey) *trackShard {
	return &t.shards[pageShard(key, len(t.shards))]
}

// OnFetch records one successful BufferPool.Fetch of page p of file f: a hit
// in the simulated private pool costs nothing; a miss evicts to capacity
// (writing back simulated-dirty victims) and charges one read. Pins mirror
// the real pool's so a pinned page is never chosen as the simulated victim.
func (t *IOTracker) OnFetch(f FileID, p PageID) {
	key := frameKey{f, p}
	s := t.shardFor(key)
	s.mu.Lock()
	if fr, ok := s.frames[key]; ok {
		fr.pins++
		s.lru.MoveToFront(fr.elem)
		s.mu.Unlock()
		return
	}
	s.evictToCapacity(&t.acct)
	fr := &trackFrame{key: key, pins: 1}
	fr.elem = s.lru.PushFront(fr)
	s.frames[key] = fr
	s.mu.Unlock()
	t.acct.RecordRead(f, p)
}

// OnNewPage records a successful BufferPool.NewPage: the fresh page becomes
// resident, pinned, and dirty without charging a read (it was never on
// disk), exactly as in the real pool.
func (t *IOTracker) OnNewPage(f FileID, p PageID) {
	key := frameKey{f, p}
	s := t.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if fr, ok := s.frames[key]; ok {
		fr.pins++
		fr.dirty = true
		s.lru.MoveToFront(fr.elem)
		return
	}
	s.evictToCapacity(&t.acct)
	fr := &trackFrame{key: key, pins: 1, dirty: true}
	fr.elem = s.lru.PushFront(fr)
	s.frames[key] = fr
}

// OnUnpin mirrors BufferPool.Unpin in the simulation.
func (t *IOTracker) OnUnpin(f FileID, p PageID, dirty bool) {
	key := frameKey{f, p}
	s := t.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	fr, ok := s.frames[key]
	if !ok || fr.pins == 0 {
		return
	}
	fr.pins--
	if dirty {
		fr.dirty = true
	}
}

// evictToCapacity makes room for one more simulated frame, charging a write
// for each dirty victim (the real pool writes dirty victims back). Caller
// holds the shard lock. When every frame is pinned the real pool would fail
// the query; the simulation inserts over capacity instead and keeps
// counting — an accounting layer must never abort what the engine allows.
func (s *trackShard) evictToCapacity(acct *Accountant) {
	for len(s.frames) >= s.capacity {
		var victim *trackFrame
		for e := s.lru.Back(); e != nil; e = e.Prev() {
			fr := e.Value.(*trackFrame)
			if fr.pins == 0 {
				victim = fr
				break
			}
		}
		if victim == nil {
			return
		}
		if victim.dirty {
			acct.RecordWrite()
		}
		s.lru.Remove(victim.elem)
		delete(s.frames, victim.key)
	}
}

// EvictUnpinned drops every unpinned simulated frame, charging writes for
// dirty ones — the simulation of BufferPool.EvictUnpinned, used by query
// phases (the predicate-transfer prepass) that deliberately return to a
// cold state so the main plan's charged I/O stays deterministic.
func (t *IOTracker) EvictUnpinned() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for key, fr := range s.frames {
			if fr.pins > 0 {
				continue
			}
			if fr.dirty {
				t.acct.RecordWrite()
			}
			s.lru.Remove(fr.elem)
			delete(s.frames, key)
		}
		s.mu.Unlock()
	}
}

// PinnedFrames returns the number of simulated frames with at least one pin;
// like the real pool's count it must be zero between queries (the simulation
// mirrors every Fetch/Unpin, so a leak here is a leak there).
func (t *IOTracker) PinnedFrames() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, fr := range s.frames {
			if fr.pins > 0 {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}
