package storage

import (
	"bytes"
	"fmt"
	"testing"
)

func newTestPool(capacity int) (*Disk, *BufferPool) {
	d := NewDisk(nil)
	return d, NewBufferPool(d, capacity)
}

func TestHeapFileInsertGet(t *testing.T) {
	_, bp := newTestPool(8)
	h := NewHeapFile(bp)
	var tids []TID
	for i := 0; i < 1000; i++ {
		rec := []byte(fmt.Sprintf("record-%04d-%s", i, "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"))
		tid, err := h.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, tid)
	}
	if h.NumPages() < 2 {
		t.Fatalf("expected multiple pages, got %d", h.NumPages())
	}
	for i, tid := range tids {
		want := []byte(fmt.Sprintf("record-%04d-%s", i, "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"))
		got, err := h.Get(tid)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("Get(%v) = %q, %v", tid, got, err)
		}
	}
}

func TestHeapFileScanOrderAndCompleteness(t *testing.T) {
	_, bp := newTestPool(4)
	h := NewHeapFile(bp)
	const n = 500
	for i := 0; i < n; i++ {
		if _, err := h.Insert([]byte(fmt.Sprintf("%06d-padpadpadpadpadpadpadpad", i))); err != nil {
			t.Fatal(err)
		}
	}
	it := h.Scan()
	defer it.Close()
	i := 0
	for {
		rec, _, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		want := fmt.Sprintf("%06d-padpadpadpadpadpadpadpad", i)
		if string(rec) != want {
			t.Fatalf("scan[%d] = %q, want %q", i, rec, want)
		}
		i++
	}
	if i != n {
		t.Fatalf("scanned %d records, want %d", i, n)
	}
	// Next after exhaustion stays exhausted.
	if _, _, ok, _ := it.Next(); ok {
		t.Fatal("iterator should stay exhausted")
	}
}

func TestHeapFileScanIsMostlySequential(t *testing.T) {
	d, bp := newTestPool(2) // tiny pool: cold scan
	h := NewHeapFile(bp)
	rec := make([]byte, 100)
	for i := 0; i < 2000; i++ {
		if _, err := h.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	d.Accountant().Reset()
	bp.FlushAll()
	d.Accountant().Reset()
	it := h.Scan()
	for {
		_, _, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	it.Close()
	s := d.Accountant().Stats()
	if s.SeqReads < s.RandReads {
		t.Fatalf("cold heap scan should be mostly sequential: %+v", s)
	}
	if s.SeqReads+s.RandReads != int64(h.NumPages()) {
		t.Fatalf("scan should read each page once: %+v vs %d pages", s, h.NumPages())
	}
}

func TestHeapFileRecordTooLarge(t *testing.T) {
	_, bp := newTestPool(4)
	h := NewHeapFile(bp)
	if _, err := h.Insert(make([]byte, PageSize)); err == nil {
		t.Fatal("oversized record should be rejected")
	}
}

func TestHeapFileGetBadTID(t *testing.T) {
	_, bp := newTestPool(4)
	h := NewHeapFile(bp)
	h.Insert([]byte("x"))
	if _, err := h.Get(TID{Page: 99, Slot: 0}); err == nil {
		t.Fatal("bad page should error")
	}
	if _, err := h.Get(TID{Page: 0, Slot: 99}); err == nil {
		t.Fatal("bad slot should error")
	}
}

func TestBufferPoolHitMiss(t *testing.T) {
	d, bp := newTestPool(4)
	h := NewHeapFile(bp)
	tid, _ := h.Insert([]byte("hello"))
	bp.ResetCounters()
	for i := 0; i < 5; i++ {
		if _, err := h.Get(tid); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := bp.HitRate()
	if hits != 5 || misses != 0 {
		t.Fatalf("hits=%d misses=%d (page should be resident)", hits, misses)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	bp.ResetCounters()
	d.Accountant().Reset()
	if _, err := h.Get(tid); err != nil {
		t.Fatal(err)
	}
	hits, misses = bp.HitRate()
	if misses != 1 {
		t.Fatalf("after flush expected 1 miss, got hits=%d misses=%d", hits, misses)
	}
	if d.Accountant().Stats().Total() != 1 {
		t.Fatalf("miss should cost exactly one physical read: %+v", d.Accountant().Stats())
	}
}

func TestBufferPoolEviction(t *testing.T) {
	d, bp := newTestPool(3)
	h := NewHeapFile(bp)
	rec := make([]byte, 1000)
	for i := 0; i < 100; i++ {
		if _, err := h.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	n := h.NumPages()
	if n <= 3 {
		t.Fatalf("need more pages than pool capacity, got %d", n)
	}
	// Dirty pages must have been written back during eviction.
	if d.Accountant().Stats().Writes == 0 {
		t.Fatal("expected writebacks of dirty evicted pages")
	}
	// All data still intact.
	it := h.Scan()
	count := 0
	for {
		_, _, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	it.Close()
	if count != 100 {
		t.Fatalf("scan found %d records, want 100", count)
	}
}

func TestBufferPoolAllPinnedError(t *testing.T) {
	d, bp := newTestPool(1)
	f := d.CreateFile()
	pid1, _, err := bp.NewPage(f)
	if err != nil {
		t.Fatal(err)
	}
	// Pool of 1, page pinned: allocating another must fail.
	if _, _, err := bp.NewPage(f); err == nil {
		t.Fatal("expected pool-exhausted error")
	}
	bp.Unpin(f, pid1, false)
	if _, _, err := bp.NewPage(f); err != nil {
		t.Fatalf("after unpin allocation should succeed: %v", err)
	}
}

func TestDiskErrors(t *testing.T) {
	d := NewDisk(nil)
	if _, err := d.ReadPage(42, 0); err == nil {
		t.Fatal("read of missing file should error")
	}
	if _, err := d.AllocPage(42); err == nil {
		t.Fatal("alloc in missing file should error")
	}
	f := d.CreateFile()
	if err := d.WritePage(f, 0); err == nil {
		t.Fatal("write beyond EOF should error")
	}
	if d.NumPages(f) != 0 {
		t.Fatal("fresh file should be empty")
	}
}

func TestHeapIterCloseMidway(t *testing.T) {
	_, bp := newTestPool(4)
	h := NewHeapFile(bp)
	for i := 0; i < 300; i++ {
		h.Insert(make([]byte, 100))
	}
	it := h.Scan()
	it.Next()
	it.Close()
	if _, _, ok, _ := it.Next(); ok {
		t.Fatal("closed iterator should be exhausted")
	}
	// Page must be unpinned: FlushAll should succeed and a 1-capacity pool fetch works.
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
}
