package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// diskMagic identifies the on-disk snapshot format.
const diskMagic = 0x70706431 // "ppd1"

// Serialize writes the disk's files: magic, file count, then per file its
// id, page count, and raw page images. The snapshot is self-contained; the
// caller persists catalog metadata separately.
func (d *Disk) Serialize(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	bw := bufio.NewWriter(w)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], diskMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(d.files)))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(d.next))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for id, pages := range d.files {
		var fh [8]byte
		binary.LittleEndian.PutUint32(fh[0:4], uint32(id))
		binary.LittleEndian.PutUint32(fh[4:8], uint32(len(pages)))
		if _, err := bw.Write(fh[:]); err != nil {
			return err
		}
		for _, pg := range pages {
			if _, err := bw.Write(pg.Data()); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadDisk deserializes a disk snapshot produced by Serialize, charging I/O to
// acct (nil allocates a fresh accountant).
func ReadDisk(r io.Reader, acct *Accountant) (*Disk, error) {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("storage: truncated snapshot header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != diskMagic {
		return nil, fmt.Errorf("storage: not a disk snapshot")
	}
	nFiles := binary.LittleEndian.Uint32(hdr[4:8])
	next := binary.LittleEndian.Uint32(hdr[8:12])
	d := NewDisk(acct)
	d.next = FileID(next)
	for f := uint32(0); f < nFiles; f++ {
		var fh [8]byte
		if _, err := io.ReadFull(br, fh[:]); err != nil {
			return nil, fmt.Errorf("storage: truncated file header: %w", err)
		}
		id := FileID(binary.LittleEndian.Uint32(fh[0:4]))
		nPages := binary.LittleEndian.Uint32(fh[4:8])
		pages := make([]*Page, nPages)
		for p := uint32(0); p < nPages; p++ {
			pg := NewPage()
			if _, err := io.ReadFull(br, pg.Data()); err != nil {
				return nil, fmt.Errorf("storage: truncated page: %w", err)
			}
			pages[p] = pg
		}
		d.files[id] = pages
	}
	return d, nil
}

// OpenHeapFile attaches a heap file handle to an existing disk file
// (snapshot restore).
func OpenHeapFile(bp *BufferPool, id FileID) (*HeapFile, error) {
	bp.disk.mu.Lock()
	_, ok := bp.disk.files[id]
	bp.disk.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("storage: no such file %d in snapshot", id)
	}
	return &HeapFile{bp: bp, file: id}, nil
}
